//! End-to-end integration of search → schedule → execution: a
//! `wino-search` heterogeneous VGG16-D design lowers to a `wino-exec`
//! schedule and executes, oracle-verified, through the facade prelude.

use winofpga::dse::map_workload;
use winofpga::prelude::*;

/// The full pipeline the workspace exists for: explore the heterogeneous
/// per-layer design space on the paper's workload and device, lower the
/// winning genome to an executable schedule, and run it.
#[test]
fn heterogeneous_vgg16d_design_lowers_and_executes_end_to_end() {
    // 1. Search the real (un-shrunk) VGG16-D space — evaluation is
    //    analytical, so full scale is cheap.
    let full = vgg16d(1);
    let evaluator = Evaluator::new(full.clone(), virtex7_485t());
    let space = HeterogeneousSpace::new(&evaluator, vec![2, 3, 4], vec![0.5, 1.0], 700, 200e6);
    let cache = EvalCache::new();
    let mut archive = ParetoArchive::new();
    let outcome =
        Greedy::default().search(&space, &cache, SearchObjective::Throughput, &mut archive);
    let (genome, best) = outcome.best.expect("a feasible design exists");
    assert!(best.feasible);

    // 2. Lower the winning design to a schedule against the workload it
    //    was searched on. VGG16-D is all 3x3 stride-1, so every layer
    //    lands on a Winograd engine.
    let designs = space.layer_designs(&genome).expect("valid genome");
    let schedule = Schedule::from_layer_designs(&full, &designs).expect("design lowers");
    assert_eq!(schedule.len(), 13);
    assert_eq!(schedule.winograd_layers(), 13);
    for (plan, design) in schedule.plans().iter().zip(&designs) {
        assert!(
            matches!((plan.engine, design.algo),
                (EnginePlan::Winograd(pp), AlgorithmChoice::Winograd(dp)) if pp == dp),
            "{}",
            plan.layer
        );
    }

    // 3. Execute the same per-layer engine assignments on a
    //    structurally-identical reduced workload (full-scale VGG is a
    //    bench-only job; the scalar oracle would dominate test time) and
    //    verify every layer against the spatial oracle.
    let small = shrink(&full, 14, 8);
    let small_schedule = Schedule::from_layer_designs(&small, &designs).expect("design lowers");
    let exec = NetworkExecutor::new(small, small_schedule, ExecConfig::with_threads(2))
        .expect("schedule validates");
    let report = exec.run();
    assert_eq!(report.layers.len(), 13);
    assert!(report.layers.iter().all(|l| l.millis > 0.0 && l.gflops > 0.0));
    let worst = exec.verify(1e-3).expect("execution matches the spatial oracle");
    assert!(worst < 1e-3, "worst deviation {worst:.3e}");
}

/// A dse workload mapping lowers to the same executable form: ResNet-18
/// sends its strided layers to the spatial fallback, and the executed
/// network still matches the oracle.
#[test]
fn dse_mapping_of_resnet18_executes_with_spatial_fallback() {
    let full = resnet18(1);
    let point = DesignPoint::with_mult_budget(
        WinogradParams::new(4, 3).expect("valid"),
        Architecture::SharedTransform,
        700,
        200e6,
    );
    let mapping = map_workload(&full, &point, TileModel::Ceil);
    let small = shrink(&full, 14, 8);
    let schedule = Schedule::from_mapping(&small, &mapping, point.params).expect("mapping lowers");
    assert_eq!(schedule.len() - schedule.winograd_layers(), 4, "four strided layers fall back");

    let exec = NetworkExecutor::new(small, schedule, ExecConfig::with_threads(2))
        .expect("schedule validates");
    let worst = exec.verify(1e-3).expect("execution matches the spatial oracle");
    assert!(worst < 1e-3);
}
