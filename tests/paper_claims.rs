//! Integration tests pinning every headline claim of the paper to the
//! reproduction's output. Each test names the claim it checks.

use winofpga::core::{overhead_ratio_per_pe, overhead_ratio_shared, CostModel, TransformOps};
use winofpga::dse::figures::{self, paper};
use winofpga::prelude::*;

fn evaluator() -> Evaluator {
    Evaluator::new(vgg16d(1), virtex7_485t())
}

#[test]
fn abstract_claim_4_75x_throughput_with_2_67x_multipliers() {
    let ev = evaluator();
    let sweep = sweep_m(&ev, &[2, 4], 3, 700, 200e6);
    let (p2, m2) = &sweep[0]; // F(2x2,3x3): paper's [3] baseline geometry at 43 PEs
    let (p4, m4) = &sweep[1];
    // Compare against [3]'s original 16-PE configuration (256 mults).
    let podili = ev.evaluate(&DesignPoint {
        params: p2.params,
        arch: Architecture::PerPeTransform,
        pe_count: 16,
        freq_hz: 200e6,
        pipeline_depth: 8,
    });
    let speedup = m4.throughput_gops / podili.throughput_gops;
    assert!((speedup - 4.75).abs() < 0.02, "throughput speedup {speedup:.3}");
    let mults = p4.multipliers() as f64 / 256.0;
    assert!((mults - 2.67).abs() < 0.01, "multiplier ratio {mults:.3}");
    let _ = m2;
}

#[test]
fn abstract_claim_53_6_percent_logic_savings() {
    let t1 = table1(&virtex7_485t());
    assert!((t1.lut_saving * 100.0 - 53.6).abs() < 0.5, "got {:.2}%", t1.lut_saving * 100.0);
}

#[test]
fn abstract_claim_power_efficiency_band() {
    // Paper: 1.44x better power efficiency at m = 2 vs [3]a (41.34/28.66).
    // Our calibrated power model brackets the paper's two inconsistent
    // m = 2 power values (13.03 W printed / 14.98 W implied), so the
    // improvement lands in [1.44, 1.66].
    let ev = evaluator();
    let ours = ev.evaluate(&DesignPoint {
        params: WinogradParams::new(2, 3).unwrap(),
        arch: Architecture::SharedTransform,
        pe_count: 43,
        freq_hz: 200e6,
        pipeline_depth: 8,
    });
    let improvement = ours.power_efficiency / 28.66;
    assert!((1.40..1.70).contains(&improvement), "got {improvement:.3}");
}

#[test]
fn section3_quadratic_mult_decrease_and_transform_increase() {
    // Fig. 1 / Fig. 2 directions: multiplications fall, transforms rise.
    let wl = vgg16d(1);
    let mut mults = Vec::new();
    let mut transforms = Vec::new();
    for m in 2..=7 {
        let params = WinogradParams::new(m, 3).unwrap();
        mults.push(wl.winograd_mults(params, TileModel::Fractional));
        let ops = transform_ops_for(params, CostModel::ShiftFree);
        transforms.push(wl.transform_complexity(params, ops, TileModel::Fractional).online_total());
    }
    assert!(mults.windows(2).all(|w| w[1] < w[0]), "{mults:?}");
    assert!(transforms.windows(2).all(|w| w[1] > w[0]), "{transforms:?}");
}

#[test]
fn section3c_m4_favorable_m5_not() {
    let fig = fig3(&vgg16d(1), CostModel::ShiftFree);
    let dec = &fig.series[0].1;
    let inc = &fig.series[1].1;
    // m = 4 (index 2): saving beats overhead; m = 5 (index 3): reversed.
    assert!(dec[2] > inc[2]);
    assert!(inc[3] > dec[3]);
}

#[test]
fn section4a_pe_ratios() {
    let ours = WinogradParams::new(3, 3).unwrap();
    let podili = WinogradParams::new(2, 3).unwrap();
    assert_eq!(ours.outputs_per_tile_2d() * 4, podili.outputs_per_tile_2d() * 9); // 2.25x
    assert_eq!(ours.mults_per_tile_2d() * 16, podili.mults_per_tile_2d() * 25); // 1.5625x
}

#[test]
fn section4c_overhead_1_5x_vs_2_33x() {
    let ops = TransformOps::LAVIN_F2X2_3X3;
    let params = WinogradParams::new(2, 3).unwrap();
    assert!((overhead_ratio_shared(params, ops, 16.0) - 1.5).abs() < 1e-12);
    assert!((overhead_ratio_per_pe(params, ops) - 7.0 / 3.0).abs() < 1e-12);
}

#[test]
fn table2_latency_column_reproduction() {
    let ev = evaluator();
    let cols = table2(&ev);
    // Spot-check every published latency cell across all six columns.
    let paper_cells: [(&str, [f64; 5], f64); 6] = [
        ("[12]", [31.29, 23.58, 39.29, 36.30, 32.95], 163.4),
        ("[3]", [16.81, 24.08, 40.14, 40.14, 12.04], 133.22),
        ("[3]a", [6.25, 8.96, 14.94, 14.94, 4.48], 49.57),
        ("Ours 2,3", [6.25, 8.96, 14.94, 14.94, 4.48], 49.57),
        ("Ours 3,3", [4.27, 6.12, 10.19, 10.19, 3.06], 33.83),
        ("Ours 4,3", [3.54, 5.07, 8.45, 8.45, 2.54], 28.05),
    ];
    for (label, conv, overall) in paper_cells {
        let col = cols.iter().find(|c| c.label == label).unwrap_or_else(|| panic!("{label}"));
        for (got, want) in col.conv_ms.iter().zip(&conv) {
            assert!((got - want).abs() < 0.02, "{label}: {got:.3} vs {want}");
        }
        assert!((col.overall_ms - overall).abs() < 0.15, "{label} overall {:.2}", col.overall_ms);
    }
}

#[test]
fn table2_efficiency_rows() {
    let ev = evaluator();
    let cols = table2(&ev);
    for (label, eff) in [("[12]", 0.24), ("[3]", 0.90), ("Ours 3,3", 1.29), ("Ours 4,3", 1.60)] {
        let col = cols.iter().find(|c| c.label == label).unwrap();
        assert!((col.mult_efficiency - eff).abs() < 0.01, "{label}: {}", col.mult_efficiency);
    }
}

#[test]
fn conclusion_5_83x_vs_qiu_with_0_88x_multipliers() {
    let ev = evaluator();
    let ours = ev.evaluate(&DesignPoint {
        params: WinogradParams::new(4, 3).unwrap(),
        arch: Architecture::SharedTransform,
        pe_count: 19,
        freq_hz: 200e6,
        pipeline_depth: 8,
    });
    let qiu = winofpga::dse::qiu_fpga16();
    let speedup = ours.throughput_gops / qiu.throughput_gops;
    assert!((speedup - 5.83).abs() < 0.02, "got {speedup:.3}");
    let mults = 684.0 / qiu.multipliers as f64;
    assert!((mults - 0.88).abs() < 0.005, "got {mults:.3}");
}

#[test]
fn fig6_full_grid_against_paper() {
    let fig = fig6(&vgg16d(1), 200e6);
    for (row, (_, values)) in fig.series.iter().enumerate() {
        for (col, &v) in values.iter().enumerate() {
            let expect = paper::FIG6_GOPS[row][col];
            assert!((v - expect).abs() / expect < 0.002, "[{row}][{col}]: {v} vs {expect}");
        }
    }
}

#[test]
fn figure_generators_share_the_workload_groups() {
    let wl = vgg16d(1);
    let f1 = figures::fig1(&wl);
    assert_eq!(f1.x_labels.len(), 5);
    assert_eq!(f1.series.len(), 7);
    let f2 = figures::fig2(&wl, CostModel::ShiftFree);
    assert_eq!(f2.x_labels.len(), 6);
}
