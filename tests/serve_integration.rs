//! Facade-level integration: the serving subsystem end to end through
//! `winofpga::prelude` — standard registry (four models × two
//! precisions, kernel banks pre-transformed), a running server, mixed
//! priorities, and the two serving invariants (bitwise equality with
//! direct execution; every admitted request answered).

use winofpga::prelude::*;

#[test]
fn standard_registry_serves_mixed_traffic_end_to_end() {
    let registry = ModelRegistry::standard(4, 1).expect("standard registry");
    assert_eq!(registry.len(), 8, "four models x {{f32, Q24.8}}");

    // Direct references computed before the server exists.
    let direct: Vec<_> = (0..registry.len())
        .map(|i| (registry.entry(i).id().clone(), registry.entry(i).infer_one(42 + i as u64)))
        .collect();

    let config = ServeConfig {
        workers: 2,
        exec_threads_per_worker: None,
        batch: BatchConfig {
            max_batch: 4,
            max_wait: std::time::Duration::from_micros(300),
            queue_capacity: 64,
        },
        slo: None,
    };
    let server = Server::start(registry, config);

    // One request per variant, cycling priorities.
    let priorities = [Priority::High, Priority::Normal, Priority::Low];
    let handles: Vec<_> = direct
        .iter()
        .enumerate()
        .map(|(i, (id, _))| {
            server
                .submit(id, priorities[i % 3], 42 + i as u64)
                .expect("queue has room for one request per model")
        })
        .collect();

    for (handle, (id, reference)) in handles.iter().zip(&direct) {
        let result = handle.wait();
        assert_eq!(&result.model, id);
        assert_eq!(&result.output, reference, "served '{id}' must be bitwise the direct run");
    }

    let snapshot = server.shutdown();
    assert_eq!(snapshot.total_completed(), 8, "every admitted request answered");
    assert_eq!(snapshot.total_rejected(), 0);
    assert!(snapshot.per_model.iter().all(|m| m.completed == 1));
}

#[test]
fn served_quantized_variant_differs_from_float_as_designed() {
    // The -q8 variants run a genuinely different (saturating Q24.8)
    // datapath: same seed, different bits. Serving preserves exactly
    // that distinction.
    let registry = ModelRegistry::standard(2, 1).expect("standard registry");
    let f32_out = registry.get(&"tinycnn-f32".into()).unwrap().infer_one(7);
    let q8_out = registry.get(&"tinycnn-q8".into()).unwrap().infer_one(7);
    assert_ne!(f32_out, q8_out);

    let server = Server::start(registry, ServeConfig::default());
    let a = server.submit(&"tinycnn-f32".into(), Priority::Normal, 7).unwrap();
    let b = server.submit(&"tinycnn-q8".into(), Priority::Normal, 7).unwrap();
    assert_eq!(a.wait().output, f32_out);
    assert_eq!(b.wait().output, q8_out);
    drop(server);
}
