//! Facade-level integration: the serving subsystem end to end through
//! `winofpga::prelude` — standard registry (four models × two
//! precisions, kernel banks pre-transformed), a running server, mixed
//! priorities, and the two serving invariants (bitwise equality with
//! direct execution; every admitted request answered) — including the
//! sharded, work-stealing, continuously-batched configuration.

use winofpga::prelude::*;

#[test]
fn standard_registry_serves_mixed_traffic_end_to_end() {
    let registry = ModelRegistry::standard(4, 1).expect("standard registry");
    assert_eq!(registry.len(), 8, "four models x {{f32, Q24.8}}");

    // Direct references computed before the server exists.
    let direct: Vec<_> = (0..registry.len())
        .map(|i| (registry.entry(i).id().clone(), registry.entry(i).infer_one(42 + i as u64)))
        .collect();

    let config = ServeConfig {
        workers: 2,
        exec_threads_per_worker: None,
        batch: BatchConfig {
            max_batch: 4,
            max_wait: std::time::Duration::from_micros(300),
            queue_capacity: 64,
        },
        slo: None,
        ..ServeConfig::default()
    };
    let server = Server::start(registry, config);

    // One request per variant, cycling priorities.
    let priorities = [Priority::High, Priority::Normal, Priority::Low];
    let handles: Vec<_> = direct
        .iter()
        .enumerate()
        .map(|(i, (id, _))| {
            server
                .submit(id, priorities[i % 3], 42 + i as u64)
                .expect("queue has room for one request per model")
        })
        .collect();

    for (handle, (id, reference)) in handles.iter().zip(&direct) {
        let result = handle.wait().expect("served");
        assert_eq!(&result.model, id);
        assert_eq!(&result.output, reference, "served '{id}' must be bitwise the direct run");
    }

    let snapshot = server.shutdown();
    assert_eq!(snapshot.total_completed(), 8, "every admitted request answered");
    assert_eq!(snapshot.total_rejected(), 0);
    assert!(snapshot.per_model.iter().all(|m| m.completed == 1));
}

#[test]
fn served_quantized_variant_differs_from_float_as_designed() {
    // The -q8 variants run a genuinely different (saturating Q24.8)
    // datapath: same seed, different bits. Serving preserves exactly
    // that distinction.
    let registry = ModelRegistry::standard(2, 1).expect("standard registry");
    let f32_out = registry.get(&"tinycnn-f32".into()).unwrap().infer_one(7);
    let q8_out = registry.get(&"tinycnn-q8".into()).unwrap().infer_one(7);
    assert_ne!(f32_out, q8_out);

    let server = Server::start(registry, ServeConfig::default());
    let a = server.submit(&"tinycnn-f32".into(), Priority::Normal, 7).unwrap();
    let b = server.submit(&"tinycnn-q8".into(), Priority::Normal, 7).unwrap();
    assert_eq!(a.wait().expect("served").output, f32_out);
    assert_eq!(b.wait().expect("served").output, q8_out);
    drop(server);
}

#[test]
fn sharded_continuous_server_stays_bitwise_under_bursty_traffic() {
    // The full tentpole configuration through the facade: 3 shards of
    // 2 workers, stealing and continuous batching on, 8 models routed
    // across shards by home index, 96 rapid-fire mixed-priority
    // requests. Every response must equal its solo run bitwise and
    // every admitted request must be answered.
    let registry = ModelRegistry::standard(4, 1).expect("standard registry");
    let ids: Vec<_> = registry.entries().iter().map(|e| e.id().clone()).collect();
    let direct: Vec<_> = (0..96u64)
        .map(|i| {
            let model = (i % ids.len() as u64) as usize;
            (model, i, registry.entry(model).infer_one(i))
        })
        .collect();

    let server = Server::start(
        registry,
        ServeConfig {
            shards: 3,
            workers: 2,
            steal: true,
            continuous: true,
            exec_threads_per_worker: Some(1),
            batch: BatchConfig {
                max_batch: 4,
                max_wait: std::time::Duration::from_micros(200),
                queue_capacity: 128,
            },
            slo: None,
            inject_panic_seed: None,
            ..ServeConfig::default()
        },
    );
    assert_eq!(server.shard_count(), 3);

    let priorities = [Priority::High, Priority::Normal, Priority::Low];
    let handles: Vec<_> = direct
        .iter()
        .map(|&(model, seed, _)| {
            server
                .submit(&ids[model], priorities[seed as usize % 3], seed)
                .expect("queue sized for the burst")
        })
        .collect();
    for (handle, (model, seed, reference)) in handles.iter().zip(&direct) {
        let result = handle.wait().expect("served");
        assert_eq!(result.seed, *seed);
        assert_eq!(
            &result.output, reference,
            "'{}' seed {seed} must be bitwise the solo run",
            ids[*model]
        );
    }

    let snapshot = server.shutdown();
    assert_eq!(snapshot.total_completed(), 96, "every admitted request answered");
    assert_eq!(snapshot.total_rejected(), 0);
    assert_eq!(snapshot.total_failed(), 0);
    assert_eq!(snapshot.per_shard.len(), 3);
    assert_eq!(snapshot.per_shard.iter().map(|s| s.completed).sum::<u64>(), 96);
    // All three shards saw work: eight models spread across three
    // shards leaves no shard without a home model.
    assert!(
        snapshot.per_shard.iter().all(|s| s.batches > 0),
        "some shard sat idle: {:?}",
        snapshot.per_shard.iter().map(|s| s.batches).collect::<Vec<_>>()
    );
}
