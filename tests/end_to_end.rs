//! Cross-crate functional pipeline tests: the same layer computed by
//! every implementation in the workspace must agree.

use winofpga::core::WinogradAlgorithm;
use winofpga::prelude::*;
use winofpga::tensor::Ratio;

fn random_layer(
    seed: u64,
    n: usize,
    c: usize,
    hw: usize,
    k: usize,
) -> (Tensor4<f32>, Tensor4<f32>) {
    let mut rng = SplitMix64::new(seed);
    let input =
        Tensor4::from_fn(Shape4 { n, c, h: hw, w: hw }, |_, _, _, _| rng.uniform_f32(-1.0, 1.0));
    let kernels =
        Tensor4::from_fn(Shape4 { n: k, c, h: 3, w: 3 }, |_, _, _, _| rng.uniform_f32(-0.5, 0.5));
    (input, kernels)
}

#[test]
fn five_implementations_agree() {
    let (input, kernels) = random_layer(100, 1, 4, 12, 6);
    let reference = spatial_convolve(&input, &kernels, 1);

    // 1. im2col + GEMM
    let im2col = im2col_convolve(&input, &kernels, 1);
    assert!(ErrorStats::between(im2col.as_slice(), reference.as_slice()).within_abs(1e-4));

    // 2. FFT
    let fft = fft_convolve(&input, &kernels, 1);
    assert!(ErrorStats::between(fft.as_slice(), reference.as_slice()).within_abs(1e-4));

    // 3. Functional Winograd (several tile sizes)
    for m in [2usize, 3, 4] {
        let algo =
            WinogradAlgorithm::<f32>::for_params(WinogradParams::new(m, 3).unwrap()).unwrap();
        let wino = algo.convolve_layer(&input, &kernels, 1);
        let stats = ErrorStats::between(wino.as_slice(), reference.as_slice());
        assert!(stats.within_abs(1e-4), "functional m={m}: {stats}");
    }

    // 4. Cycle-level engine (both architectures)
    for arch_ref in [false, true] {
        let params = WinogradParams::new(4, 3).unwrap();
        let config = if arch_ref {
            EngineConfig::reference(params, 3)
        } else {
            EngineConfig::proposed(params, 3)
        };
        let engine = WinogradEngine::new(config).unwrap();
        let (out, report) = engine.run_layer(&input, &kernels, 1);
        let stats = ErrorStats::between(out.as_slice(), reference.as_slice());
        assert!(stats.within_abs(1e-4), "engine(ref={arch_ref}): {stats}");
        assert_eq!(report.cycles, engine.predicted_cycles(input.shape(), 6, 1));
    }
}

#[test]
fn exact_rational_chain_is_bit_identical() {
    // Over exact rationals, Winograd == im2col == spatial, with zero
    // tolerance — algebra, not luck.
    let mut rng = SplitMix64::new(7);
    let shape = Shape4 { n: 1, c: 3, h: 8, w: 9 };
    let input = Tensor4::from_fn(shape, |_, _, _, _| ratio(rng.below(9) as i128 - 4, 2));
    let kernels = Tensor4::from_fn(Shape4 { n: 2, c: 3, h: 3, w: 3 }, |_, _, _, _| {
        ratio(rng.below(9) as i128 - 4, 3)
    });
    let reference = spatial_convolve(&input, &kernels, 1);
    assert_eq!(im2col_convolve(&input, &kernels, 1), reference);
    for m in [2usize, 3, 5] {
        let set = TransformSet::generate(WinogradParams::new(m, 3).unwrap()).unwrap();
        let algo = WinogradAlgorithm::<Ratio>::exact(&set);
        assert_eq!(algo.convolve_layer(&input, &kernels, 1), reference, "m={m}");
    }
}

#[test]
fn engine_latency_model_consistent_with_dse_evaluator() {
    // The DSE evaluator (analytical, fractional tiles) and the cycle
    // simulator (exact tiles) must agree when shapes divide evenly.
    let params = WinogradParams::new(2, 3).unwrap();
    let engine = WinogradEngine::new(EngineConfig::proposed(params, 4)).unwrap();
    let (input, kernels) = random_layer(8, 1, 8, 16, 8);
    let (_, report) = engine.run_layer(&input, &kernels, 1);

    // Analytical: tiles = (16/2)^2 = 64, groups = 2, C = 8.
    let analytical = 64 * 2 * 8 + engine.config().pipeline_depth() as u64 - 1;
    assert_eq!(report.cycles, analytical);

    // DSE layer model (per-layer seconds at 200 MHz).
    let mut wl = Workload::new("one-layer", 1);
    wl.push("l", "G", ConvShape::same_padded(16, 16, 8, 8, 3));
    let lat =
        wl.latency_seconds(params, 4.0, engine.config().pipeline_depth(), 200e6, TileModel::Ceil);
    assert!((lat - report.latency_seconds(200e6)).abs() < 1e-12);
}

#[test]
fn batch_and_padding_variants() {
    for (n, hw, pad) in [(2usize, 9usize, 0usize), (1, 11, 1), (3, 8, 1)] {
        let (input, kernels) = random_layer(n as u64 * 31 + hw as u64, n, 2, hw, 3);
        let reference = spatial_convolve(&input, &kernels, pad);
        let algo =
            WinogradAlgorithm::<f32>::for_params(WinogradParams::new(3, 3).unwrap()).unwrap();
        let wino = algo.convolve_layer(&input, &kernels, pad);
        assert_eq!(wino.shape(), reference.shape());
        let stats = ErrorStats::between(wino.as_slice(), reference.as_slice());
        assert!(stats.within_abs(1e-4), "n={n} hw={hw} pad={pad}: {stats}");
    }
}

#[test]
fn quantized_pipeline_runs_end_to_end() {
    use winofpga::tensor::Fixed;
    let (input, kernels) = random_layer(55, 1, 2, 8, 2);
    let reference = spatial_convolve(&input, &kernels, 1);
    let algo =
        WinogradAlgorithm::<Fixed<20>>::for_params(WinogradParams::new(2, 3).unwrap()).unwrap();
    let qi = input.map(Fixed::<20>::from_f32);
    let qk = kernels.map(Fixed::<20>::from_f32);
    let out = algo.convolve_layer(&qi, &qk, 1);
    let back: Vec<f32> = out.as_slice().iter().map(|q| q.to_f32()).collect();
    let stats = ErrorStats::between(&back, reference.as_slice());
    // 20 fractional bits keep the error near the quantization step.
    assert!(stats.within_abs(1e-3), "{stats}");
}

#[test]
fn dse_figures_and_tables_render_without_panicking() {
    let wl = vgg16d(1);
    let ev = Evaluator::new(wl.clone(), virtex7_485t());
    let _ = fig1(&wl).to_table(3).to_ascii();
    let _ = fig2(&wl, CostModel::ShiftFree).to_table(1).to_csv();
    let _ = fig3(&wl, CostModel::Naive).to_table(2).to_ascii();
    let _ = fig6(&wl, 200e6).to_table(2).to_csv();
    let _ = table1(ev.device()).to_text().to_ascii();
    let _ = table2_text(&table2(&ev)).to_ascii();
}
