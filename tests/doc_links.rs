//! Markdown link checker: every relative link in the repository's
//! documentation must resolve to a file that exists, so doc
//! cross-references (README → DESIGN → EXPERIMENTS → ARCHITECTURE)
//! cannot dangle again. External (`http...`) and intra-page (`#...`)
//! links are out of scope — the build environment is offline and
//! anchors are renderer-specific.

use std::path::{Path, PathBuf};

/// The documentation spine whose cross-references are pinned. Each
/// file must both exist and contain only resolvable relative links.
const CHECKED: [&str; 6] = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "docs/ARCHITECTURE.md",
    "ROADMAP.md",
    "CHANGES.md",
];

/// Extracts `(link text, target)` pairs from inline markdown links,
/// skipping images and code spans well enough for these hand-written
/// docs (no reference-style links are in use).
fn inline_links(markdown: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let bytes = markdown.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'[' {
            if let Some(close) = markdown[i..].find("](") {
                let rest = &markdown[i + close + 2..];
                if let Some(end) = rest.find(')') {
                    targets.push(rest[..end].trim().to_owned());
                    i += close + 2 + end;
                    continue;
                }
            }
        }
        i += 1;
    }
    targets
}

#[test]
fn every_relative_doc_link_resolves() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut broken = Vec::new();
    for doc in CHECKED {
        let path = root.join(doc);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{doc} must exist and be readable: {e}"));
        let base = path.parent().unwrap_or(Path::new("")).to_path_buf();
        for target in inline_links(&text) {
            // External links, mailto, and pure anchors are out of scope.
            if target.starts_with("http")
                || target.starts_with("mailto:")
                || target.starts_with('#')
            {
                continue;
            }
            let file_part = target.split('#').next().unwrap_or("");
            if file_part.is_empty() {
                continue;
            }
            if !base.join(file_part).exists() {
                broken.push(format!("{doc}: ({target})"));
            }
        }
    }
    assert!(broken.is_empty(), "dangling documentation links:\n{}", broken.join("\n"));
}

#[test]
fn the_documentation_spine_cross_references_itself() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let read = |p: &str| std::fs::read_to_string(root.join(p)).expect(p);
    // README links the architecture map and the experiment book…
    let readme = read("README.md");
    assert!(readme.contains("docs/ARCHITECTURE.md"), "README must link the crate map");
    assert!(readme.contains("EXPERIMENTS.md"), "README must link the experiment book");
    // …DESIGN links the architecture map…
    assert!(read("DESIGN.md").contains("docs/ARCHITECTURE.md"), "DESIGN must link the crate map");
    // …and the architecture map links back to both.
    let arch = read("docs/ARCHITECTURE.md");
    assert!(arch.contains("../DESIGN.md") && arch.contains("../EXPERIMENTS.md"));
    // The quantization and serving studies are documented where
    // EXPERIMENTS promises.
    let experiments = read("EXPERIMENTS.md");
    assert!(experiments.contains("BENCH_quant.json"));
    assert!(experiments.contains("BENCH_serve.json"));
    // The serving subsystem is on the architecture map.
    assert!(arch.contains("wino-serve"), "ARCHITECTURE must map the serve crate");
    // The SLO study and the storm's trace artifacts are documented:
    // CI uploads them, so the experiment book must say what they are.
    assert!(experiments.contains("\"slo\""), "EXPERIMENTS must document the slo section");
    assert!(experiments.contains("STORM_trace.json"), "EXPERIMENTS must document STORM_trace.json");
    assert!(
        experiments.contains("STORM_flight.json"),
        "EXPERIMENTS must document STORM_flight.json"
    );
    // The request-trace vocabulary and black box are on the map.
    assert!(arch.contains("TraceIndex"), "ARCHITECTURE must describe request tracing");
    assert!(arch.contains("FlightRecorder"), "ARCHITECTURE must describe the black box");
    assert!(arch.contains("SloEngine"), "ARCHITECTURE must describe the SLO engine");
    // The pluggable backend layer and the FFT engine are on the map…
    assert!(arch.contains("ConvBackend"), "ARCHITECTURE must describe the backend trait");
    assert!(arch.contains("PreparedFft"), "ARCHITECTURE must describe the FFT backend");
    // …and the algorithm crossover study is in the experiment book.
    assert!(
        experiments.contains("\"algorithms\""),
        "EXPERIMENTS must document the algorithms section of BENCH_exec.json"
    );
    assert!(
        experiments.contains("Algorithm crossover study"),
        "EXPERIMENTS must document the crossover study"
    );
}

#[test]
fn every_bench_binary_is_documented_in_experiments() {
    // EXPERIMENTS.md is the experiment book: a bench binary nobody can
    // find the command for might as well not exist. Every file in
    // crates/bench/src/bin must be mentioned by name.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let experiments = std::fs::read_to_string(root.join("EXPERIMENTS.md")).expect("EXPERIMENTS.md");
    let bin_dir = root.join("crates/bench/src/bin");
    let mut missing = Vec::new();
    for entry in std::fs::read_dir(&bin_dir).expect("bench bin dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            let name = path.file_stem().expect("stem").to_string_lossy().to_string();
            if !experiments.contains(&name) {
                missing.push(name);
            }
        }
    }
    missing.sort();
    assert!(
        missing.is_empty(),
        "bench binaries undocumented in EXPERIMENTS.md: {}",
        missing.join(", ")
    );
}
