//! Cross-crate integration tests for the `wino-search` strategy engine:
//! the acceptance criteria of the subsystem.
//!
//! * On a homogeneous `m ∈ {2, 3, 4}` space, all four strategies return
//!   the exhaustive optimum (the paper's m = 4 design).
//! * On VGG16-D × Virtex-7 485T, heterogeneous per-layer search finds a
//!   design at least as fast as the paper's homogeneous m = 4 design.
//! * On a space small enough to enumerate, metaheuristics never beat
//!   exhaustive search, and the Pareto archive matches a brute-force
//!   non-dominated filter.

use winofpga::prelude::*;

fn paper_evaluator() -> Evaluator {
    Evaluator::new(vgg16d(1), virtex7_485t())
}

fn paper_m4_metrics() -> Metrics {
    let point = DesignPoint::with_mult_budget(
        WinogradParams::new(4, 3).expect("valid"),
        Architecture::SharedTransform,
        700,
        200e6,
    );
    paper_evaluator().evaluate(&point)
}

#[test]
fn all_strategies_agree_with_exhaustive_on_homogeneous_m234() {
    let space = HomogeneousSpace::new(&paper_evaluator(), vec![2, 3, 4], 3, 700, 200e6);
    let exhaustive = Exhaustive::default();
    let greedy = Greedy::default();
    let annealing = SimulatedAnnealing::default();
    let genetic = Genetic::default();
    let strategies: Vec<&dyn Strategy> = vec![&exhaustive, &greedy, &annealing, &genetic];
    let (outcomes, _, cache) = compare_strategies(&space, &strategies, SearchObjective::Throughput);

    let optimum = outcomes[0].best_score(SearchObjective::Throughput);
    // The optimum is the paper's m = 4 design (Table II: 1094.3 GOPS).
    assert!((optimum - 1094.3).abs() < 2.0, "exhaustive found {optimum}");
    let (genome, _) = outcomes[0].best.as_ref().expect("feasible");
    assert!(space.describe(genome).contains("F(4x4, 3x3)"));

    for outcome in &outcomes[1..] {
        assert_eq!(
            outcome.best_score(SearchObjective::Throughput),
            optimum,
            "{} disagrees with exhaustive on a 3-point space",
            outcome.strategy
        );
    }
    // Three distinct designs exist; everything else is cache traffic.
    assert_eq!(cache.misses(), 3);
    assert!(cache.hits() > 0);
}

#[test]
fn heterogeneous_search_matches_or_beats_the_papers_m4_design() {
    let evaluator = paper_evaluator();
    let baseline = paper_m4_metrics();
    assert!((baseline.throughput_gops - 1094.3).abs() < 2.0, "baseline sanity");

    let space = HeterogeneousSpace::new(&evaluator, vec![2, 3, 4], vec![0.5, 1.0], 700, 200e6);
    // 6^13 designs: enumeration is impossible, metaheuristics required.
    assert!(space.size() > 1u128 << 33);

    // Greedy reaching the global optimum here is structural, not seed
    // luck: throughput decomposes over layers (each dimension affects
    // exactly one layer's latency) and every design in this space fits
    // the device, so coordinate ascent has no local optima to fall into.
    let cache = EvalCache::new();
    let mut archive = ParetoArchive::new();
    let outcome =
        Greedy::default().search(&space, &cache, SearchObjective::Throughput, &mut archive);
    let (genome, best) = outcome.best.expect("a feasible design exists");
    assert!(
        best.throughput_gops >= baseline.throughput_gops - 1e-9,
        "heterogeneous search ({:.1} GOPS) must match or beat the paper ({:.1} GOPS)",
        best.throughput_gops,
        baseline.throughput_gops
    );
    assert!(best.feasible);
    // The winning design runs every layer under F(4x4, 3x3) at full
    // allocation — the paper's conclusion, rediscovered per layer.
    let designs = space.layer_designs(&genome).expect("valid genome");
    assert!(designs
        .iter()
        .all(|d| matches!(d.algo, AlgorithmChoice::Winograd(p) if p.m() == 4) && d.pe_count == 19));
}

#[test]
fn exhaustive_heterogeneous_on_tiny_cnn_confirms_metaheuristics() {
    // TinyCNN has 3 eligible layers; with 2 tile and 2 allocation
    // choices the space has 4^3 = 64 designs — enumerable, so exhaustive
    // is ground truth for every other strategy.
    let evaluator = Evaluator::new(tiny_cnn(1), virtex7_485t());
    let space = HeterogeneousSpace::new(&evaluator, vec![2, 4], vec![0.5, 1.0], 700, 200e6);
    assert_eq!(space.size(), 64);

    let exhaustive = Exhaustive::default();
    let greedy = Greedy::default();
    let annealing = SimulatedAnnealing::default();
    let genetic = Genetic::default();
    let strategies: Vec<&dyn Strategy> = vec![&exhaustive, &greedy, &annealing, &genetic];

    for objective in [
        SearchObjective::Throughput,
        SearchObjective::PowerEfficiency,
        SearchObjective::Latency,
        SearchObjective::ResourceHeadroom,
    ] {
        let (outcomes, archive, _) = compare_strategies(&space, &strategies, objective);
        let optimum = outcomes[0].best_score(objective);
        assert!(optimum.is_finite(), "{objective}: no feasible design");
        for outcome in &outcomes {
            let score = outcome.best_score(objective);
            assert!(
                score <= optimum + 1e-12,
                "{} beat exhaustive on {objective}: {score} > {optimum}",
                outcome.strategy
            );
        }
        // Exhaustive saw every design, so the archive's best equals the
        // exhaustive optimum.
        let archived = archive.best_by(objective).expect("non-empty archive");
        assert!((objective.score(&archived.evaluation) - optimum).abs() < 1e-12);
    }
}

#[test]
fn archive_equals_brute_force_pareto_filter() {
    let evaluator = Evaluator::new(tiny_cnn(1), virtex7_485t());
    let space = HeterogeneousSpace::new(&evaluator, vec![2, 3, 4], vec![1.0], 700, 200e6);
    assert_eq!(space.size(), 27);

    let cache = EvalCache::new();
    let mut archive = ParetoArchive::new();
    Exhaustive::default().search(&space, &cache, SearchObjective::Throughput, &mut archive);

    // Brute force: a feasible design belongs to the front iff nothing
    // dominates it.
    let evals: Vec<(Genome, Evaluation)> = (0..27)
        .map(|i| {
            let g = space.genome_at(i);
            let e = space.evaluate(&g);
            (g, e)
        })
        .collect();
    let front: Vec<&(Genome, Evaluation)> = evals
        .iter()
        .filter(|(_, e)| e.feasible && !evals.iter().any(|(_, o)| o.dominates(e)))
        .collect();
    // Compare as objective-vector sets (the archive dedups identical
    // vectors, so compare through them).
    let mut expected: Vec<_> = front.iter().map(|(_, e)| format!("{:?}", e.objectives())).collect();
    expected.sort();
    expected.dedup();
    let mut got: Vec<_> =
        archive.entries().iter().map(|e| format!("{:?}", e.evaluation.objectives())).collect();
    got.sort();
    assert_eq!(got, expected);
}

#[test]
fn design_key_memoizes_equal_points() {
    let a = DesignPoint::with_mult_budget(
        WinogradParams::new(4, 3).expect("valid"),
        Architecture::SharedTransform,
        700,
        200e6,
    );
    let b = a.clone();
    assert_eq!(a.key(), b.key());
    let mut map = std::collections::HashMap::new();
    map.insert(a.key(), paper_evaluator().evaluate(&a));
    assert!(map.contains_key(&b.key()));
}
