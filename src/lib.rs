//! # winofpga
//!
//! A full reproduction, as a Rust library, of
//! *"Towards Design Space Exploration and Optimization of Fast Algorithms
//! for Convolutional Neural Networks (CNNs) on FPGAs"*
//! (Afzal Ahmad & Muhammad Adeel Pasha, DATE 2019, arXiv:1903.01811).
//!
//! The workspace re-implements everything the paper's evaluation rests
//! on — Winograd minimal filtering with exact transform generation, the
//! baseline convolution algorithms, the VGG16-D workload, a cycle-level
//! simulator of the proposed pipelined engine and of the Podili et al.
//! baseline, calibrated FPGA resource/power models, and the design space
//! exploration that regenerates every figure and table — and goes
//! beyond the paper with `wino-search`, a pluggable strategy engine
//! over heterogeneous per-layer design spaces, and `wino-exec`, a
//! batched thread-parallel Winograd execution engine — generic over the
//! datapath scalar, so the same kernels run the paper's `f32` and the
//! saturating fixed-point arithmetic of the quantization study — that
//! turns search results into runnable, oracle-verified schedules, and
//! `wino-serve`, a multi-tenant serving subsystem (model registry,
//! dynamic batcher, SLO-aware admission, sharded worker groups with
//! work stealing and continuous batching, per-shard latency metrics)
//! that puts a request path in front of the execution engine, and
//! `wino-obs`, a dependency-free, zero-cost-when-disabled
//! observability layer (tracing spans, phase-level profiling,
//! Prometheus/JSON metrics exposition) threaded through both. See
//! `DESIGN.md` at the repository root for the system inventory,
//! `docs/ARCHITECTURE.md` for the crate map, and `EXPERIMENTS.md`
//! for the command reproducing every paper artifact.
//!
//! This crate is the facade: it re-exports the sub-crates under stable
//! names and hosts the runnable examples and cross-crate integration
//! tests.
//!
//! ## Quick start
//!
//! ```
//! use winofpga::prelude::*;
//!
//! // 1. The algorithm: F(4x4, 3x3) does 36 multiplies where direct
//! //    convolution does 144, exactly.
//! let params = WinogradParams::new(4, 3)?;
//! let algo = WinogradAlgorithm::<f32>::for_params(params)?;
//!
//! // 2. The design space: the paper's best design on its Virtex-7.
//! let evaluator = Evaluator::new(vgg16d(1), virtex7_485t());
//! let (best, metrics) =
//!     best_design(&evaluator, &[2, 3, 4], 3, 700, 200e6, Objective::Throughput)
//!         .expect("a design fits");
//! assert_eq!(best.params.m(), 4);
//! assert!((metrics.total_latency_ms - 28.05).abs() < 0.05); // Table II
//!
//! // 3. Beyond the paper: search a heterogeneous per-layer space (each
//! //    eligible layer picks its own tile size and PE allocation) with
//! //    a pluggable strategy. On THIS space greedy provably reaches the
//! //    paper's all-m=4 corner: throughput decomposes over layers (each
//! //    dimension touches one layer's latency) and every design here
//! //    fits the device, so coordinate ascent has no local optima.
//! let evaluator = Evaluator::new(vgg16d(1), virtex7_485t());
//! let space = HeterogeneousSpace::new(&evaluator, vec![2, 3, 4], vec![0.5, 1.0], 700, 200e6);
//! let cache = EvalCache::new();
//! let mut archive = ParetoArchive::new();
//! let outcome = Greedy::default()
//!     .search(&space, &cache, SearchObjective::Throughput, &mut archive);
//! let (_, best_found) = outcome.best.expect("a design fits");
//! assert!(best_found.throughput_gops >= metrics.throughput_gops - 1e-9);
//! # let _ = algo;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`tensor`] | `wino-tensor` | exact rationals, fixed point, tensors |
//! | [`core`] | `wino-core` | transforms, fast convolution, Eqs. 4–10 |
//! | [`baselines`] | `wino-baselines` | spatial, im2col+GEMM, FFT |
//! | [`models`] | `wino-models` | VGG16-D, AlexNet, ResNet-18 |
//! | [`fpga`] | `wino-fpga` | devices, resources, power |
//! | [`engine`] | `wino-engine` | cycle-level engine simulator |
//! | [`dse`] | `wino-dse` | exploration, figures, tables |
//! | [`search`] | `wino-search` | strategy engine, heterogeneous spaces, Pareto archive |
//! | [`obs`] | `wino-obs` | tracing spans, phase profiling, metrics exposition |
//! | [`exec`] | `wino-exec` | batched thread-parallel execution engine, schedules |
//! | [`serve`] | `wino-serve` | multi-tenant batched inference serving |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use wino_baselines as baselines;
pub use wino_core as core;
pub use wino_dse as dse;
pub use wino_engine as engine;
pub use wino_exec as exec;
pub use wino_fpga as fpga;
pub use wino_models as models;
pub use wino_obs as obs;
pub use wino_search as search;
pub use wino_serve as serve;
pub use wino_tensor as tensor;

/// One-stop imports for applications.
pub mod prelude {
    pub use wino_baselines::{fft_convolve, im2col_convolve, spatial_convolve};
    pub use wino_core::{
        canonical_points, cse_optimize, fast_convolve_layer, transform_ops_2d, transform_ops_for,
        ConvShape, CostModel, FastKernel, TileModel, TransformOps, TransformSet, WinogradAlgorithm,
        WinogradParams, Workload,
    };
    pub use wino_dse::{
        best_design, fft_context_latency_seconds, fig1, fig2, fig3, fig6, pareto_front, sweep_m,
        table1, table2, table2_text, CachedEvaluator, DesignKey, DesignPoint, Evaluator, Metrics,
        Objective,
    };
    pub use wino_engine::{EngineConfig, SimReport, WinogradEngine};
    pub use wino_exec::{
        execute_plan, execute_plan_quantized, fft_error_bound, quant_error_bound,
        spatial_convolve_mt, winograd_convolve, ConvBackend, EnginePlan, ExecConfig, LayerPlan,
        LayerReport, NetworkExecutor, NetworkReport, Precision, PreparedFft, PreparedPlan,
        PreparedSpatial, PreparedWinograd, QuantConfig, QuantError, Schedule, ScheduleError,
        VerifyError,
    };
    pub use wino_fpga::{
        fft_engine, paper_calibrated_model, stratix_v_gt, virtex7_485t, zynq_7045, Architecture,
        EngineResources, FpgaDevice, PowerModel, ResourceUsage,
    };
    pub use wino_models::{alexnet, model_zoo, resnet18, shrink, tiny_cnn, vgg16d};
    pub use wino_obs::{
        AggregatingProfiler, MetricFamily, MetricKind, MetricSample, ObsReport, ProfileSnapshot,
        Recorder, Span, SpanRecord, TraceRecorder,
    };
    pub use wino_search::{
        compare_strategies, AlgorithmChoice, EvalCache, Evaluation, Exhaustive, Genetic, Genome,
        Greedy, HeterogeneousSpace, HomogeneousSpace, LayerDesign, ParetoArchive, SearchObjective,
        SearchOutcome, SearchSpace, SimulatedAnnealing, Strategy,
    };
    pub use wino_serve::{
        AdmissionError, BatchConfig, ClassWaitSnapshot, Clock, DynamicBatcher, InferOutput,
        InferResult, MetricsSnapshot, ModelEntry, ModelId, ModelRegistry, Priority, RequestError,
        ResponseHandle, ServeConfig, Server, ShardPoll, ShardSet, SystemClock, VirtualClock,
    };
    pub use wino_tensor::{
        ratio, ErrorStats, Fixed, Ratio, Scalar, Shape4, SplitMix64, Tensor2, Tensor4,
    };
}
