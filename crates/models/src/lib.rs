//! # wino-models
//!
//! CNN workload definitions for the `winofpga` reproduction of Ahmad &
//! Pasha (DATE 2019).
//!
//! [`vgg16d`] is the paper's evaluation network (all-3×3 kernels, five
//! conv groups — the "Conv1…Conv5" rows of Table II and the bars of
//! Fig. 1). [`alexnet`] and [`resnet18`] are included to exercise the
//! design space beyond the paper: mixed kernel sizes and strided layers
//! that force a Winograd engine into its spatial fallback. [`tiny_cnn`]
//! is a four-layer synthetic network whose heterogeneous per-layer
//! design space is small enough for exhaustive search.
//!
//! ```
//! use wino_models::vgg16d;
//!
//! let wl = vgg16d(1);
//! assert_eq!(wl.layers().len(), 13);
//! assert_eq!(wl.groups().len(), 5);
//! // The paper's headline workload size: 30.69 GOP per image.
//! assert!((wl.spatial_gop() - 30.69).abs() < 0.01);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use wino_core::{ConvShape, Workload};

/// VGG16 configuration D (Simonyan & Zisserman) — the paper's CNN model.
///
/// 13 convolutional layers, all `3×3` stride-1 same-padded, grouped into
/// the five "group layers" the paper reports (`Conv1`…`Conv5`). `batch`
/// is the paper's `N` (Table II uses 1).
pub fn vgg16d(batch: usize) -> Workload {
    let mut wl = Workload::new("VGG16-D", batch);
    let groups: [(usize, usize, &[usize]); 5] = [
        (224, 3, &[64, 64]),
        (112, 64, &[128, 128]),
        (56, 128, &[256, 256, 256]),
        (28, 256, &[512, 512, 512]),
        (14, 512, &[512, 512, 512]),
    ];
    for (gi, &(hw, c_in, ks)) in groups.iter().enumerate() {
        let group = format!("Conv{}", gi + 1);
        let mut c = c_in;
        for (li, &k) in ks.iter().enumerate() {
            let name = format!("conv{}_{}", gi + 1, li + 1);
            wl.push(name, group.clone(), ConvShape::same_padded(hw, hw, c, k, 3));
            c = k;
        }
    }
    wl
}

/// A four-layer synthetic CNN small enough for exhaustive per-layer
/// design space exploration, with one strided layer to exercise the
/// spatial fallback. Used by the `wino-search` tests and benches, where
/// VGG16-D's 13 layers make heterogeneous spaces too large to
/// enumerate.
pub fn tiny_cnn(batch: usize) -> Workload {
    let mut wl = Workload::new("TinyCNN", batch);
    wl.push("conv1", "Conv1", ConvShape::same_padded(32, 32, 3, 16, 3));
    wl.push("conv2", "Conv2", ConvShape { h: 32, w: 32, c: 16, k: 32, r: 3, stride: 2, pad: 1 });
    wl.push("conv3", "Conv3", ConvShape::same_padded(16, 16, 32, 32, 3));
    wl.push("conv4", "Conv4", ConvShape::same_padded(16, 16, 32, 64, 3));
    wl
}

/// AlexNet's five convolutional layers (Krizhevsky et al.) — mixed kernel
/// sizes (11/5/3) and a strided first layer, beyond the paper's all-3×3
/// evaluation.
pub fn alexnet(batch: usize) -> Workload {
    let mut wl = Workload::new("AlexNet", batch);
    wl.push("conv1", "Conv1", ConvShape { h: 227, w: 227, c: 3, k: 96, r: 11, stride: 4, pad: 0 });
    wl.push("conv2", "Conv2", ConvShape { h: 27, w: 27, c: 96, k: 256, r: 5, stride: 1, pad: 2 });
    wl.push("conv3", "Conv3", ConvShape::same_padded(13, 13, 256, 384, 3));
    wl.push("conv4", "Conv4", ConvShape::same_padded(13, 13, 384, 384, 3));
    wl.push("conv5", "Conv5", ConvShape::same_padded(13, 13, 384, 256, 3));
    wl
}

/// ResNet-18's convolutional stack (He et al.): a strided 7×7 stem, then
/// four stages of 3×3 basic blocks whose first convolution downsamples
/// with stride 2 — the layers a Winograd engine must run spatially.
pub fn resnet18(batch: usize) -> Workload {
    let mut wl = Workload::new("ResNet-18", batch);
    wl.push("conv1", "Stem", ConvShape { h: 224, w: 224, c: 3, k: 64, r: 7, stride: 2, pad: 3 });
    let stages: [(usize, usize, usize); 4] =
        [(56, 64, 64), (56, 64, 128), (28, 128, 256), (14, 256, 512)];
    for (si, &(h, c_in, c_out)) in stages.iter().enumerate() {
        let group = format!("Stage{}", si + 1);
        if si == 0 {
            // Stage 1 keeps resolution: four 3x3 convolutions.
            for li in 0..4 {
                wl.push(
                    format!("s1_conv{}", li + 1),
                    group.clone(),
                    ConvShape::same_padded(h, h, c_in, c_out, 3),
                );
            }
        } else {
            // Downsampling block: stride-2 entry conv, then three stride-1.
            wl.push(
                format!("s{}_conv1", si + 1),
                group.clone(),
                ConvShape { h, w: h, c: c_in, k: c_out, r: 3, stride: 2, pad: 1 },
            );
            let h2 = h / 2;
            for li in 1..4 {
                wl.push(
                    format!("s{}_conv{}", si + 1, li + 1),
                    group.clone(),
                    ConvShape::same_padded(h2, h2, c_out, c_out, 3),
                );
            }
        }
    }
    wl
}

/// The four model workloads under their canonical names, in a stable
/// order — the roster the serving subsystem's `ModelRegistry` and the
/// study binaries iterate over, so "all models" means the same thing
/// everywhere.
///
/// ```
/// use wino_models::model_zoo;
///
/// let names: Vec<String> =
///     model_zoo(1).iter().map(|wl| wl.name().to_owned()).collect();
/// assert_eq!(names, ["VGG16-D", "AlexNet", "ResNet-18", "TinyCNN"]);
/// ```
pub fn model_zoo(batch: usize) -> Vec<Workload> {
    vec![vgg16d(batch), alexnet(batch), resnet18(batch), tiny_cnn(batch)]
}

/// A structurally-identical reduced copy of `workload` with spatial
/// extents capped at `max_hw` and channel counts capped at
/// `max_channels` — same layer names, groups, kernel sizes, strides and
/// padding, but small enough that the scalar spatial oracle can verify
/// an execution engine over *every* layer in test time.
///
/// Extents already below the caps are kept; nothing is ever rounded up.
///
/// ```
/// use wino_models::{shrink, vgg16d};
///
/// let small = shrink(&vgg16d(1), 16, 8);
/// assert_eq!(small.layers().len(), 13);
/// assert!(small.layers().iter().all(|l| l.shape.h <= 16 && l.shape.c <= 8));
/// // Structure survives: all 3x3 stride-1 same-padded.
/// assert!(small.layers().iter().all(|l| l.shape.r == 3 && l.shape.stride == 1));
/// ```
///
/// # Panics
///
/// Panics when `max_hw` or `max_channels` is zero.
pub fn shrink(workload: &Workload, max_hw: usize, max_channels: usize) -> Workload {
    assert!(max_hw > 0, "max_hw must be positive");
    assert!(max_channels > 0, "max_channels must be positive");
    let mut out = Workload::new(format!("{}-small", workload.name()), workload.batch());
    for l in workload.layers() {
        let s = l.shape;
        out.push(
            l.name.clone(),
            l.group.clone(),
            ConvShape {
                h: s.h.min(max_hw),
                w: s.w.min(max_hw),
                c: s.c.min(max_channels),
                k: s.k.min(max_channels),
                ..s
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_core::{TileModel, WinogradParams};

    #[test]
    fn vgg16d_headline_numbers() {
        let wl = vgg16d(1);
        assert_eq!(wl.layers().len(), 13);
        assert_eq!(wl.batch(), 1);
        // Paper: "30.69 GOP" (derivable from Table II: 619.2 GOPS x 49.57 ms).
        assert!((wl.spatial_gop() - 30.69).abs() < 0.01, "got {}", wl.spatial_gop());
        assert_eq!(wl.spatial_mults(), 15_346_630_656);
    }

    #[test]
    fn vgg16d_fig1_spatial_bars() {
        // Fig. 1 spatial series: 1.936, 2.775, 4.624, 4.624, 1.387 (x1e9).
        let wl = vgg16d(1);
        let spatial = WinogradParams::new(1, 3).unwrap();
        let bars = wl.group_mults(spatial, TileModel::Fractional);
        let expect = [1.936e9, 2.775e9, 4.624e9, 4.624e9, 1.387e9];
        assert_eq!(bars.len(), 5);
        for ((name, value), &paper) in bars.iter().zip(&expect) {
            assert!((value - paper).abs() / paper < 0.001, "{name}: got {value}, paper {paper}");
        }
    }

    #[test]
    fn vgg16d_fig1_winograd_bars() {
        // Fig. 1 F(2x2,3x3) series: 0.861, 1.233, 2.055, 2.055, 0.617 (x1e9)
        // and F(4x4,3x3): 0.484, 0.694, 1.156, 1.156, 0.347.
        let wl = vgg16d(1);
        for (m, expect) in [
            (2, [0.861e9, 1.233e9, 2.055e9, 2.055e9, 0.617e9]),
            (4, [0.484e9, 0.694e9, 1.156e9, 1.156e9, 0.347e9]),
        ] {
            let p = WinogradParams::new(m, 3).unwrap();
            let bars = wl.group_mults(p, TileModel::Fractional);
            for ((name, value), &paper) in bars.iter().zip(&expect) {
                assert!(
                    (value - paper).abs() / paper < 0.005,
                    "m={m} {name}: got {value}, paper {paper}"
                );
            }
        }
    }

    #[test]
    fn vgg16d_layer_chaining_is_consistent() {
        // Each layer's input channel count equals the previous layer's K;
        // every layer is 3x3, stride 1, pad 1 (configuration D).
        let wl = vgg16d(1);
        let mut prev_k = None;
        for l in wl.layers() {
            if let Some(k) = prev_k {
                assert_eq!(l.shape.c, k, "channel chain broken at {}", l.name);
            }
            prev_k = Some(l.shape.k);
            assert_eq!(l.shape.r, 3);
            assert_eq!(l.shape.stride, 1);
            assert_eq!(l.shape.pad, 1);
        }
    }

    #[test]
    fn batch_scales_vgg_linearly() {
        assert_eq!(vgg16d(4).spatial_ops(), 4 * vgg16d(1).spatial_ops());
    }

    #[test]
    fn tiny_cnn_structure() {
        let wl = tiny_cnn(1);
        assert_eq!(wl.layers().len(), 4);
        let eligible = wl.layers().iter().filter(|l| l.shape.winograd_compatible()).count();
        assert_eq!(eligible, 3, "conv2 is strided and must fall back");
        assert!(wl.spatial_gop() < 0.2, "small enough for exhaustive DSE");
    }

    #[test]
    fn alexnet_shapes() {
        let wl = alexnet(1);
        assert_eq!(wl.layers().len(), 5);
        let conv1 = &wl.layers()[0];
        assert_eq!(conv1.shape.out_h(), 55); // (227 - 11)/4 + 1
        assert!(!conv1.shape.winograd_compatible());
        assert!(wl.layers()[2].shape.winograd_compatible());
        // Ungrouped AlexNet (single-tower, as in most reimplementations):
        // ~1.08 GMAC = 2.15 GOP of convolution per image. The original
        // two-GPU grouped variant would be ~35% less.
        assert!((2.0..2.3).contains(&wl.spatial_gop()), "got {}", wl.spatial_gop());
    }

    #[test]
    fn shrink_preserves_structure_and_caps_extents() {
        let full = resnet18(1);
        let small = shrink(&full, 14, 16);
        assert_eq!(small.layers().len(), full.layers().len());
        for (a, b) in full.layers().iter().zip(small.layers()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.group, b.group);
            assert_eq!(a.shape.r, b.shape.r);
            assert_eq!(a.shape.stride, b.shape.stride);
            assert_eq!(a.shape.pad, b.shape.pad);
            assert!(b.shape.h <= 14 && b.shape.c <= 16 && b.shape.k <= 16);
        }
        // Winograd eligibility is unchanged: the same layers fall back.
        let eligible = |wl: &Workload| {
            wl.layers().iter().map(|l| l.shape.winograd_compatible()).collect::<Vec<_>>()
        };
        assert_eq!(eligible(&full), eligible(&small));
    }

    #[test]
    fn resnet18_stride_structure() {
        let wl = resnet18(1);
        assert_eq!(wl.layers().len(), 17);
        let strided: Vec<&str> = wl
            .layers()
            .iter()
            .filter(|l| !l.shape.winograd_compatible())
            .map(|l| l.name.as_str())
            .collect();
        assert_eq!(strided, vec!["conv1", "s2_conv1", "s3_conv1", "s4_conv1"]);
        // Stride-1 layers preserve spatial dims.
        for l in wl.layers().iter().filter(|l| l.shape.stride == 1) {
            assert_eq!(l.shape.out_h(), l.shape.h, "{}", l.name);
        }
    }
}
