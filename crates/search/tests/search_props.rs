//! Property tests for the search invariants:
//!
//! * no metaheuristic ever reports a better objective than exhaustive
//!   enumeration on a space small enough to enumerate;
//! * the Pareto archive never retains a dominated (or infeasible) point
//!   and never loses the per-objective optimum.

use proptest::prelude::*;
use wino_fpga::ResourceUsage;
use wino_search::{
    EvalCache, Evaluation, Exhaustive, Genetic, Greedy, ParetoArchive, SearchObjective,
    SearchSpace, SimulatedAnnealing, Strategy,
};
use wino_tensor::SplitMix64;

/// A synthetic space whose landscape is a deterministic hash of the
/// genome — rugged, multi-modal, with a configurable infeasibility rate.
struct HashedSpace {
    seed: u64,
    cards: Vec<usize>,
    infeasible_percent: u64,
}

impl HashedSpace {
    fn eval_rng(&self, genome: &[usize]) -> SplitMix64 {
        let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for &g in genome {
            h = h.wrapping_mul(0x100_0000_01b3).wrapping_add(g as u64 + 1);
        }
        SplitMix64::new(h)
    }
}

impl SearchSpace for HashedSpace {
    fn dims(&self) -> usize {
        self.cards.len()
    }
    fn cardinality(&self, dim: usize) -> usize {
        self.cards[dim]
    }
    fn evaluate(&self, genome: &[usize]) -> Evaluation {
        let mut rng = self.eval_rng(genome);
        let feasible = rng.below(100) >= self.infeasible_percent;
        Evaluation {
            throughput_gops: (rng.below(10_000) as f64) / 10.0,
            power_efficiency: (rng.below(1_000) as f64) / 10.0,
            latency_ms: 1.0 + rng.below(500) as f64,
            power_w: 5.0 + rng.below(30) as f64,
            headroom: rng.next_f64() - 0.2,
            quant_error: (rng.below(100) as f64) / 1000.0,
            resources: ResourceUsage::default(),
            feasible,
        }
    }
    fn describe(&self, genome: &[usize]) -> String {
        format!("{genome:?}")
    }
}

fn objective_from(index: usize) -> SearchObjective {
    [
        SearchObjective::Throughput,
        SearchObjective::PowerEfficiency,
        SearchObjective::Latency,
        SearchObjective::ResourceHeadroom,
    ][index % 4]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn metaheuristics_never_beat_exhaustive(
        seed in 0u64..1_000_000,
        cards in prop::collection::vec(2usize..5, 3),
        infeasible_percent in 0u64..60,
        objective_index in 0usize..4,
    ) {
        let space = HashedSpace { seed, cards, infeasible_percent };
        let objective = objective_from(objective_index);
        let cache = EvalCache::new();
        let mut archive = ParetoArchive::new();
        let optimum = Exhaustive { threads: 2 }
            .search(&space, &cache, objective, &mut archive)
            .best_score(objective);

        let greedy = Greedy { seed, restarts: 3, max_evaluations: 500 };
        let annealing = SimulatedAnnealing { seed, iterations: 300, ..Default::default() };
        let genetic = Genetic { seed, population: 8, generations: 6, ..Default::default() };
        for strategy in [&greedy as &dyn Strategy, &annealing, &genetic] {
            let score = strategy
                .search(&space, &cache, objective, &mut archive)
                .best_score(objective);
            prop_assert!(
                score <= optimum,
                "{} reported {score}, exhaustive optimum is {optimum}",
                strategy.name()
            );
        }
    }

    #[test]
    fn archive_never_retains_a_dominated_point(
        seed in 0u64..1_000_000,
        count in 1usize..60,
        infeasible_percent in 0u64..60,
    ) {
        let space = HashedSpace { seed, cards: vec![64], infeasible_percent };
        let mut archive = ParetoArchive::new();
        let mut inserted = Vec::new();
        for i in 0..count {
            let genome = vec![i % 64];
            let evaluation = space.evaluate(&genome);
            inserted.push(evaluation);
            archive.insert(genome, evaluation);
        }

        // Pairwise non-dominance and feasibility.
        let entries = archive.entries();
        for a in entries {
            prop_assert!(a.evaluation.feasible, "archive retained an infeasible point");
            for b in entries {
                prop_assert!(
                    !a.evaluation.dominates(&b.evaluation),
                    "archive retained a dominated point: {:?} dominates {:?}",
                    a.evaluation.objectives(),
                    b.evaluation.objectives()
                );
            }
        }

        // Completeness: every feasible inserted point is dominated by,
        // or objective-equal to, something retained.
        for e in inserted.iter().filter(|e| e.feasible) {
            prop_assert!(
                entries.iter().any(|kept| {
                    kept.evaluation.dominates(e)
                        || kept.evaluation.objectives() == e.objectives()
                }),
                "a feasible point is neither retained nor dominated"
            );
        }

        // The per-objective optimum is always represented.
        for objective_index in 0..4 {
            let objective = objective_from(objective_index);
            let best_inserted = inserted
                .iter()
                .map(|e| objective.score(e))
                .fold(f64::NEG_INFINITY, f64::max);
            if let Some(best_kept) = archive.best_by(objective) {
                prop_assert!(objective.score(&best_kept.evaluation) >= best_inserted);
            } else {
                prop_assert!(best_inserted == f64::NEG_INFINITY);
            }
        }
    }

    #[test]
    fn exhaustive_is_thread_count_invariant(
        seed in 0u64..1_000_000,
        threads in 1usize..9,
    ) {
        let space = HashedSpace { seed, cards: vec![4, 4, 4], infeasible_percent: 20 };
        let serial = Exhaustive { threads: 1 }.search(
            &space,
            &EvalCache::new(),
            SearchObjective::Throughput,
            &mut ParetoArchive::new(),
        );
        let parallel = Exhaustive { threads }.search(
            &space,
            &EvalCache::new(),
            SearchObjective::Throughput,
            &mut ParetoArchive::new(),
        );
        prop_assert_eq!(serial.best, parallel.best);
        prop_assert_eq!(serial.evaluations, parallel.evaluations);
    }
}
