//! # wino-search
//!
//! A pluggable, parallel design-space-exploration strategy engine for
//! the `winofpga` reproduction of Ahmad & Pasha (DATE 2019).
//!
//! The paper's evaluation sweeps a tiny homogeneous space — one
//! `F(m×m, r×r)` for the whole network — which `wino_dse::sweep_m`
//! reproduces exactly. This crate turns that sweep into a subsystem:
//!
//! * [`SearchSpace`] — integer-encoded design spaces: the paper's
//!   [`HomogeneousSpace`] and a [`HeterogeneousSpace`] where every
//!   Winograd-eligible layer picks its own output-tile size *and* PE
//!   allocation (the space real toolflows face, far too large to
//!   enumerate);
//! * [`Strategy`] — pluggable search algorithms sharing one memoizing
//!   [`EvalCache`]: [`Exhaustive`] (parallelized across threads),
//!   [`Greedy`] hill climbing, [`SimulatedAnnealing`], and [`Genetic`],
//!   all deterministic under seeded [`wino_tensor::SplitMix64`] streams;
//! * [`ParetoArchive`] — the multi-objective result set over
//!   throughput, power efficiency, latency, and resource head-room.
//!
//! ```
//! use wino_dse::Evaluator;
//! use wino_fpga::virtex7_485t;
//! use wino_models::vgg16d;
//! use wino_search::{
//!     compare_strategies, Exhaustive, Greedy, HomogeneousSpace, SearchObjective, Strategy,
//! };
//!
//! // The paper's homogeneous space, searched by two strategies that
//! // must agree on so small a space.
//! let evaluator = Evaluator::new(vgg16d(1), virtex7_485t());
//! let space = HomogeneousSpace::new(&evaluator, vec![2, 3, 4], 3, 700, 200e6);
//! let exhaustive = Exhaustive::default();
//! let greedy = Greedy::default();
//! let (outcomes, archive, cache) = compare_strategies(
//!     &space,
//!     &[&exhaustive as &dyn Strategy, &greedy],
//!     SearchObjective::Throughput,
//! );
//! let best = outcomes[0].best.as_ref().expect("a design fits");
//! assert!((best.1.throughput_gops - 1094.3).abs() < 2.0); // the paper's m = 4 design
//! assert_eq!(outcomes[0].best_score(SearchObjective::Throughput),
//!            outcomes[1].best_score(SearchObjective::Throughput));
//! assert!(!archive.is_empty());
//! assert!(cache.hits() > 0, "strategies share one evaluation cache");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod objective;
mod pareto;
mod space;
mod strategy;

pub use cache::EvalCache;
pub use objective::{resource_headroom, Evaluation, SearchObjective, OBJECTIVE_COUNT};
pub use pareto::{ArchiveEntry, ParetoArchive};
pub use space::{
    AlgorithmChoice, Genome, HeterogeneousSpace, HomogeneousSpace, LayerDesign, SearchSpace,
};
pub use strategy::{
    compare_strategies, Exhaustive, Genetic, Greedy, SearchOutcome, SimulatedAnnealing, Strategy,
};
