//! Search spaces: the homogeneous `m`-sweep of the paper and the
//! heterogeneous per-layer space that goes beyond it.
//!
//! A design candidate is a [`Genome`] — one choice index per decision
//! dimension. Encoding candidates as small integer vectors gives every
//! strategy (exhaustive enumeration, hill climbing, annealing, genetic
//! operators) a uniform representation and gives the
//! [`crate::EvalCache`] a cheap hashable key.

use crate::{resource_headroom, Evaluation};
use std::collections::HashMap;
use std::fmt;
use wino_core::{latency_seconds, pe_count, TileModel, WinogradParams, Workload};
use wino_dse::{fft_context_latency_seconds, CachedEvaluator, DesignPoint, Evaluator};
use wino_fpga::{fft_engine, Architecture, EngineResources, FpgaDevice, PowerModel, ResourceUsage};
use wino_tensor::SplitMix64;

/// One design candidate: a choice index per dimension of a
/// [`SearchSpace`].
pub type Genome = Vec<usize>;

/// A finite, integer-encoded design space.
///
/// Implementations must be `Sync`: the exhaustive strategy fans
/// evaluation out across threads.
pub trait SearchSpace: Sync {
    /// Number of decision dimensions.
    fn dims(&self) -> usize;

    /// Number of choices in dimension `dim`.
    fn cardinality(&self, dim: usize) -> usize;

    /// Evaluates the candidate encoded by `genome` (one index per
    /// dimension, each `< cardinality(dim)`).
    fn evaluate(&self, genome: &[usize]) -> Evaluation;

    /// Human-readable summary of the candidate.
    fn describe(&self, genome: &[usize]) -> String;

    /// Total number of candidates.
    fn size(&self) -> u128 {
        (0..self.dims()).map(|d| self.cardinality(d) as u128).product()
    }

    /// The `index`-th candidate in mixed-radix order (dimension 0 is the
    /// least significant digit).
    fn genome_at(&self, mut index: u128) -> Genome {
        (0..self.dims())
            .map(|d| {
                let card = self.cardinality(d) as u128;
                let digit = (index % card) as usize;
                index /= card;
                digit
            })
            .collect()
    }

    /// A uniformly random candidate.
    fn random_genome(&self, rng: &mut SplitMix64) -> Genome {
        (0..self.dims()).map(|d| rng.below(self.cardinality(d) as u64) as usize).collect()
    }
}

/// The paper's design space: one `F(m×m, r×r)` for the whole network,
/// PE count fixed by the multiplier budget via Eq. 8.
///
/// One dimension whose choices are the entries of `ms` — exactly the
/// space `wino_dse::sweep_m` enumerates, packaged for the strategy
/// engine.
pub struct HomogeneousSpace {
    evaluator: CachedEvaluator,
    ms: Vec<usize>,
    r: usize,
    mult_budget: usize,
    freq_hz: f64,
}

impl HomogeneousSpace {
    /// A homogeneous space over output-tile sizes `ms` for `r×r`
    /// kernels under `mult_budget` multipliers at `freq_hz`.
    ///
    /// Evaluations go through a [`CachedEvaluator`] (keyed by
    /// [`wino_dse::DesignKey`]), so re-evaluating a genome never
    /// regenerates transforms or resource estimates.
    ///
    /// # Panics
    ///
    /// Panics when `ms` is empty.
    pub fn new(
        evaluator: &Evaluator,
        ms: Vec<usize>,
        r: usize,
        mult_budget: usize,
        freq_hz: f64,
    ) -> HomogeneousSpace {
        assert!(!ms.is_empty(), "homogeneous space needs at least one m");
        HomogeneousSpace { evaluator: evaluator.clone().cached(), ms, r, mult_budget, freq_hz }
    }

    /// The underlying evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        self.evaluator.evaluator()
    }

    /// Decodes a genome to the design point it denotes. Returns `None`
    /// for genomes of the wrong length or with an out-of-range choice.
    pub fn design_point(&self, genome: &[usize]) -> Option<DesignPoint> {
        if genome.len() != 1 {
            return None;
        }
        let m = *self.ms.get(*genome.first()?)?;
        let params = WinogradParams::new(m, self.r).ok()?;
        Some(DesignPoint::with_mult_budget(
            params,
            Architecture::SharedTransform,
            self.mult_budget,
            self.freq_hz,
        ))
    }
}

impl SearchSpace for HomogeneousSpace {
    fn dims(&self) -> usize {
        1
    }

    fn cardinality(&self, _dim: usize) -> usize {
        self.ms.len()
    }

    fn evaluate(&self, genome: &[usize]) -> Evaluation {
        let Some(point) = self.design_point(genome) else {
            return Evaluation::infeasible();
        };
        if point.pe_count == 0 {
            return Evaluation::infeasible();
        }
        let metrics = self.evaluator.evaluate(&point);
        Evaluation {
            throughput_gops: metrics.throughput_gops,
            power_efficiency: metrics.power_efficiency,
            latency_ms: metrics.total_latency_ms,
            power_w: metrics.power_w,
            headroom: resource_headroom(&metrics.resources, self.evaluator().device()),
            // The analytical models assume the paper's exact f32 datapath.
            quant_error: 0.0,
            resources: metrics.resources,
            feasible: metrics.fits_device,
        }
    }

    fn describe(&self, genome: &[usize]) -> String {
        match self.design_point(genome) {
            Some(point) => point.to_string(),
            None => format!("invalid genome {genome:?}"),
        }
    }
}

/// The convolution algorithm assigned to one layer of a heterogeneous
/// design — the per-layer counterpart of `wino_exec::EnginePlan`, kept
/// separate so the search layer stays independent of the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmChoice {
    /// Direct spatial convolution (the universal fallback engine).
    Spatial,
    /// Tiled `F(m×m, r×r)` Winograd convolution.
    Winograd(WinogradParams),
    /// Overlap–save FFT convolution with per-layer FFT size `n`.
    Fft {
        /// FFT size (power of two, at least the layer's kernel size).
        n: usize,
    },
}

impl fmt::Display for AlgorithmChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgorithmChoice::Spatial => write!(f, "spatial"),
            AlgorithmChoice::Winograd(p) => write!(f, "{p}"),
            AlgorithmChoice::Fft { n } => write!(f, "FFT({n})"),
        }
    }
}

/// Per-layer engine configuration of a heterogeneous design.
///
/// This is the hand-off point from search to execution: a full vector
/// of these (one per workload layer, from
/// [`HeterogeneousSpace::layer_designs`]) lowers to a runnable
/// schedule via `wino_exec::Schedule::from_layer_designs`.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDesign {
    /// Layer name.
    pub layer: String,
    /// Algorithm the layer runs under.
    pub algo: AlgorithmChoice,
    /// Parallel PEs of this layer's engine context.
    pub pe_count: usize,
    /// Latency in milliseconds.
    pub latency_ms: f64,
}

/// The heterogeneous per-layer space: every Winograd-eligible layer
/// picks its own algorithm — an output-tile size `m` from `m_choices`
/// or (when [`HeterogeneousSpace::with_fft_sizes`] widens the space) an
/// overlap–save FFT size `N` — *and* its own PE allocation (a fraction
/// of the multiplier budget), while ineligible layers run on a spatial
/// fallback engine built from the full budget.
///
/// The hardware model is a time-multiplexed engine: layer contexts
/// execute sequentially, the fabric must fit the largest context
/// (element-wise maximum of per-context resources), and power is the
/// time-weighted average over contexts. Choosing the same `m` and full
/// allocation everywhere degenerates to the paper's homogeneous design,
/// so the heterogeneous optimum can never be worse than the paper's.
pub struct HeterogeneousSpace {
    workload: Workload,
    device: FpgaDevice,
    power: PowerModel,
    tiles: TileModel,
    m_choices: Vec<usize>,
    fft_choices: Vec<usize>,
    alloc_choices: Vec<f64>,
    mult_budget: usize,
    freq_hz: f64,
    pipeline_depth: usize,
    /// Indices into `workload.layers()` of Winograd-eligible layers.
    eligible: Vec<usize>,
    /// Pre-generated resource estimators per `(m, r)`; `None` when the
    /// transform is out of range.
    engines: HashMap<(usize, usize), Option<EngineResources>>,
}

impl HeterogeneousSpace {
    /// Builds the space from an existing [`Evaluator`] (workload,
    /// device, power model and tile accounting are inherited), with
    /// per-layer tile choices `m_choices` and PE-allocation fractions
    /// `alloc_choices` under `mult_budget` multipliers at `freq_hz`.
    ///
    /// Transform sets for every `(m, r)` pair the space can reach are
    /// generated once here, so per-candidate evaluation stays cheap.
    ///
    /// # Panics
    ///
    /// Panics when `m_choices` or `alloc_choices` is empty, or when an
    /// allocation fraction is outside `(0, 1]`.
    pub fn new(
        evaluator: &Evaluator,
        m_choices: Vec<usize>,
        alloc_choices: Vec<f64>,
        mult_budget: usize,
        freq_hz: f64,
    ) -> HeterogeneousSpace {
        assert!(!m_choices.is_empty(), "heterogeneous space needs at least one m choice");
        assert!(!alloc_choices.is_empty(), "heterogeneous space needs at least one allocation");
        assert!(
            alloc_choices.iter().all(|&a| a > 0.0 && a <= 1.0),
            "allocation fractions must lie in (0, 1]"
        );
        let workload = evaluator.workload().clone();
        let eligible: Vec<usize> = workload
            .layers()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.shape.winograd_compatible())
            .map(|(i, _)| i)
            .collect();

        let mut engines = HashMap::new();
        for layer in workload.layers() {
            let r = layer.shape.r;
            // Candidate engines for eligible layers...
            for &m in &m_choices {
                engines.entry((m, r)).or_insert_with(|| {
                    WinogradParams::new(m, r).ok().and_then(|p| EngineResources::new(p).ok())
                });
            }
            // ...and the spatial fallback for every kernel size present.
            engines.entry((1, r)).or_insert_with(|| {
                WinogradParams::new(1, r).ok().and_then(|p| EngineResources::new(p).ok())
            });
        }

        HeterogeneousSpace {
            workload,
            device: evaluator.device().clone(),
            power: evaluator.power_model().clone(),
            tiles: evaluator.tile_model(),
            m_choices,
            fft_choices: Vec::new(),
            alloc_choices,
            mult_budget,
            freq_hz,
            pipeline_depth: 8,
            eligible,
            engines,
        }
    }

    /// Overrides the pipeline depth `D_p` (default 8, as in the paper's
    /// engine).
    pub fn with_pipeline_depth(mut self, depth: usize) -> HeterogeneousSpace {
        self.pipeline_depth = depth;
        self
    }

    /// Widens every eligible layer's algorithm dimension with
    /// overlap–save FFT engines of the given sizes, making the choice a
    /// three-way {spatial, `F(m×m)`, `FFT(N)`} decision. The `m`
    /// choices keep the low indices, so genomes built for the
    /// Winograd-only space decode unchanged.
    ///
    /// An `FFT(N)` choice on a layer whose kernel exceeds `N` decodes
    /// as invalid (the candidate evaluates infeasible), mirroring how
    /// out-of-range `F(m, r)` transforms are handled.
    ///
    /// # Panics
    ///
    /// Panics when a size is not a power of two of at least 4.
    pub fn with_fft_sizes(mut self, sizes: Vec<usize>) -> HeterogeneousSpace {
        assert!(
            sizes.iter().all(|&n| n >= 4 && n.is_power_of_two()),
            "FFT sizes must be powers of two >= 4"
        );
        self.fft_choices = sizes;
        self
    }

    /// The workload being mapped.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Number of Winograd-eligible layers (two decision dimensions
    /// each).
    pub fn eligible_layers(&self) -> usize {
        self.eligible.len()
    }

    /// The genome selecting tile choice `m_index` and allocation
    /// `alloc_index` for every eligible layer — the homogeneous corner
    /// of the space.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    pub fn uniform_genome(&self, m_index: usize, alloc_index: usize) -> Genome {
        assert!(m_index < self.m_choices.len(), "m_index out of range");
        assert!(alloc_index < self.alloc_choices.len(), "alloc_index out of range");
        (0..self.dims()).map(|d| if d % 2 == 0 { m_index } else { alloc_index }).collect()
    }

    /// Raw (algorithm-choice index, allocation fraction) of one
    /// eligible-layer slot.
    fn slot(&self, genome: &[usize], slot: usize) -> (usize, f64) {
        (genome[2 * slot], self.alloc_choices[genome[2 * slot + 1]])
    }

    /// One eligible layer's design under algorithm-choice index `idx`
    /// with `budget` multipliers: indices below `m_choices.len()` pick
    /// a Winograd tile (with `m = 1` the spatial engine, as before),
    /// the rest pick an FFT size. `None` when the choice cannot run the
    /// layer (out-of-range transform, `N < r`, or an empty context).
    fn decode_algo(
        &self,
        idx: usize,
        shape: &wino_core::ConvShape,
        budget: usize,
    ) -> Option<(AlgorithmChoice, usize, f64)> {
        let batch = self.workload.batch();
        if let Some(&m) = self.m_choices.get(idx) {
            let params = WinogradParams::new(m, shape.r).ok()?;
            self.engines.get(&(m, shape.r))?.as_ref()?;
            let pe = pe_count(budget, params);
            if pe == 0 {
                return None;
            }
            let latency_s = latency_seconds(
                batch,
                shape,
                params,
                pe as f64,
                self.pipeline_depth,
                self.freq_hz,
                self.tiles,
            );
            let algo =
                if m == 1 { AlgorithmChoice::Spatial } else { AlgorithmChoice::Winograd(params) };
            return Some((algo, pe, latency_s));
        }
        let n = *self.fft_choices.get(idx - self.m_choices.len())?;
        if n < shape.r {
            return None;
        }
        // The FFT context's unit of parallelism is a complex MAC built
        // from four real multipliers, so the budget packs budget/4 PEs.
        let pe = budget / 4;
        if pe == 0 {
            return None;
        }
        let latency_s = fft_context_latency_seconds(
            batch,
            shape,
            n,
            (pe * 4) as f64,
            self.pipeline_depth,
            self.freq_hz,
        );
        Some((AlgorithmChoice::Fft { n }, pe, latency_s))
    }

    /// Decodes a genome into per-layer engine configurations (including
    /// spatial-fallback layers). Returns `None` when any layer's engine
    /// is invalid or empty.
    pub fn layer_designs(&self, genome: &[usize]) -> Option<Vec<LayerDesign>> {
        if genome.len() != self.dims()
            || genome.iter().enumerate().any(|(d, &g)| g >= self.cardinality(d))
        {
            return None;
        }
        let mut out = Vec::with_capacity(self.workload.layers().len());
        let mut next_slot = 0usize;
        for (li, layer) in self.workload.layers().iter().enumerate() {
            let (idx, frac) = if self.eligible.contains(&li) {
                let s = self.slot(genome, next_slot);
                next_slot += 1;
                s
            } else {
                // Ineligible layers always run the spatial fallback,
                // which sits at whatever index m = 1 occupies (or would
                // occupy): decode it directly.
                let budget = self.mult_budget;
                let params = WinogradParams::new(1, layer.shape.r).ok()?;
                self.engines.get(&(1, layer.shape.r))?.as_ref()?;
                let pe = pe_count(budget, params);
                if pe == 0 {
                    return None;
                }
                let latency_s = latency_seconds(
                    self.workload.batch(),
                    &layer.shape,
                    params,
                    pe as f64,
                    self.pipeline_depth,
                    self.freq_hz,
                    self.tiles,
                );
                out.push(LayerDesign {
                    layer: layer.name.clone(),
                    algo: AlgorithmChoice::Spatial,
                    pe_count: pe,
                    latency_ms: latency_s * 1e3,
                });
                continue;
            };
            let budget = (self.mult_budget as f64 * frac) as usize;
            let (algo, pe, latency_s) = self.decode_algo(idx, &layer.shape, budget)?;
            out.push(LayerDesign {
                layer: layer.name.clone(),
                algo,
                pe_count: pe,
                latency_ms: latency_s * 1e3,
            });
        }
        Some(out)
    }

    /// Resource usage of one design's engine context.
    fn context_usage(&self, design: &LayerDesign, r: usize) -> ResourceUsage {
        match design.algo {
            AlgorithmChoice::Fft { n } => fft_engine(n, (design.pe_count * 4) as u64),
            AlgorithmChoice::Winograd(params) => self.engines[&(params.m(), params.r())]
                .as_ref()
                .expect("layer_designs validated engines")
                .estimate(Architecture::SharedTransform, design.pe_count),
            AlgorithmChoice::Spatial => self.engines[&(1, r)]
                .as_ref()
                .expect("layer_designs validated engines")
                .estimate(Architecture::SharedTransform, design.pe_count),
        }
    }
}

fn max_usage(a: ResourceUsage, b: ResourceUsage) -> ResourceUsage {
    ResourceUsage {
        luts: a.luts.max(b.luts),
        registers: a.registers.max(b.registers),
        dsps: a.dsps.max(b.dsps),
        multipliers: a.multipliers.max(b.multipliers),
    }
}

impl SearchSpace for HeterogeneousSpace {
    fn dims(&self) -> usize {
        2 * self.eligible.len()
    }

    fn cardinality(&self, dim: usize) -> usize {
        if dim.is_multiple_of(2) {
            self.m_choices.len() + self.fft_choices.len()
        } else {
            self.alloc_choices.len()
        }
    }

    fn evaluate(&self, genome: &[usize]) -> Evaluation {
        let Some(designs) = self.layer_designs(genome) else {
            return Evaluation::infeasible();
        };
        let mut total_s = 0.0f64;
        let mut energy = 0.0f64;
        let mut fabric = ResourceUsage::default();
        for (design, layer) in designs.iter().zip(self.workload.layers()) {
            let usage = self.context_usage(design, layer.shape.r);
            let latency_s = design.latency_ms / 1e3;
            total_s += latency_s;
            energy += latency_s * self.power.power_w(&usage, self.freq_hz);
            fabric = max_usage(fabric, usage);
        }
        if total_s <= 0.0 {
            return Evaluation::infeasible();
        }
        let throughput = self.workload.spatial_ops() as f64 / total_s / 1e9;
        let power_w = energy / total_s;
        Evaluation {
            throughput_gops: throughput,
            power_efficiency: throughput / power_w,
            latency_ms: total_s * 1e3,
            power_w,
            headroom: resource_headroom(&fabric, &self.device),
            // The analytical models assume the paper's exact f32 datapath.
            quant_error: 0.0,
            resources: fabric,
            feasible: fabric.fits(&self.device),
        }
    }

    fn describe(&self, genome: &[usize]) -> String {
        match self.layer_designs(genome) {
            Some(designs) => designs
                .iter()
                .map(|d| format!("{}:{}x{}", d.layer, d.algo, d.pe_count))
                .collect::<Vec<_>>()
                .join(" "),
            None => format!("invalid genome {genome:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_dse::Objective;
    use wino_fpga::virtex7_485t;
    use wino_models::vgg16d;

    fn evaluator() -> Evaluator {
        Evaluator::new(vgg16d(1), virtex7_485t())
    }

    #[test]
    fn homogeneous_space_matches_sweep_m() {
        let space = HomogeneousSpace::new(&evaluator(), vec![2, 3, 4], 3, 700, 200e6);
        assert_eq!(space.dims(), 1);
        assert_eq!(space.size(), 3);
        let by_space: Vec<f64> = (0..3).map(|i| space.evaluate(&[i]).throughput_gops).collect();
        let sweep = wino_dse::sweep_m(space.evaluator(), &[2, 3, 4], 3, 700, 200e6);
        for (ours, (_, theirs)) in by_space.iter().zip(&sweep) {
            assert!((ours - theirs.throughput_gops).abs() < 1e-9);
        }
        assert!(space.describe(&[2]).contains("F(4x4, 3x3)"));
    }

    #[test]
    fn homogeneous_headroom_and_feasibility() {
        let space = HomogeneousSpace::new(&evaluator(), vec![4, 8], 3, 700, 200e6);
        let m4 = space.evaluate(&[0]);
        assert!(m4.feasible);
        assert!(m4.headroom > 0.0);
        // F(8x8,3x3): 100 mults/PE, 7 PEs, transform LUTs explode.
        let m8 = space.evaluate(&[1]);
        assert!(!m8.feasible);
        assert!(m8.headroom < 0.0);
    }

    #[test]
    fn heterogeneous_uniform_m4_reproduces_paper_design() {
        let ev = evaluator();
        let space = HeterogeneousSpace::new(&ev, vec![2, 3, 4], vec![1.0], 700, 200e6);
        assert_eq!(space.dims(), 26, "13 eligible layers, two dims each");
        let genome = space.uniform_genome(2, 0);
        let eval = space.evaluate(&genome);
        // Same model as the paper's m=4 homogeneous design: 28.05 ms,
        // 1094.3 GOPS (Table II).
        assert!((eval.latency_ms - 28.05).abs() < 0.05, "got {}", eval.latency_ms);
        assert!((eval.throughput_gops - 1094.3).abs() < 2.0, "got {}", eval.throughput_gops);
        assert!(eval.feasible);
        // Fabric is exactly the paper's 19-PE engine.
        assert_eq!(eval.resources.multipliers, 684);
    }

    #[test]
    fn heterogeneous_fabric_is_max_over_contexts() {
        let ev = evaluator();
        let space = HeterogeneousSpace::new(&ev, vec![2, 4], vec![0.5, 1.0], 700, 200e6);
        // All m=2 at half allocation: fabric must be the m=2 engine at
        // pe_count(350, F(2)) = 21 PEs.
        let genome = space.uniform_genome(0, 0);
        let eval = space.evaluate(&genome);
        assert_eq!(eval.resources.multipliers, 21 * 16);
        assert!(eval.feasible);
        // Mixing in a full-allocation m=4 layer raises fabric to the
        // element-wise max of both contexts.
        let mut mixed = genome.clone();
        mixed[0] = 1; // layer 0 tile choice -> m = 4
        mixed[1] = 1; // layer 0 allocation -> 1.0
        let mixed_eval = space.evaluate(&mixed);
        assert!(mixed_eval.resources.luts >= eval.resources.luts);
        assert_eq!(mixed_eval.resources.multipliers, 19 * 36);
    }

    #[test]
    fn heterogeneous_invalid_and_empty_engines_are_infeasible() {
        let ev = evaluator();
        // m = 15 with r = 3 exceeds m + r - 1 <= 16.
        let space = HeterogeneousSpace::new(&ev, vec![15], vec![1.0], 700, 200e6);
        let genome = space.uniform_genome(0, 0);
        assert!(!space.evaluate(&genome).feasible);
        // A budget too small for even one PE is infeasible.
        let tiny = HeterogeneousSpace::new(&ev, vec![4], vec![1.0], 20, 200e6);
        assert!(!tiny.evaluate(&tiny.uniform_genome(0, 0)).feasible);
    }

    #[test]
    fn genome_indexing_is_mixed_radix() {
        let ev = evaluator();
        let space = HeterogeneousSpace::new(&ev, vec![2, 3, 4], vec![0.5, 1.0], 700, 200e6);
        assert_eq!(space.size(), 6u128.pow(13));
        let g = space.genome_at(0);
        assert_eq!(g, vec![0; 26]);
        let g1 = space.genome_at(1);
        assert_eq!(g1[0], 1);
        assert!(g1[1..].iter().all(|&x| x == 0));
        let mut rng = SplitMix64::new(7);
        let r = space.random_genome(&mut rng);
        assert_eq!(r.len(), 26);
        for (d, &v) in r.iter().enumerate() {
            assert!(v < space.cardinality(d));
        }
    }

    #[test]
    fn fft_sizes_widen_the_algorithm_dimension_without_moving_m_indices() {
        let ev = evaluator();
        let space = HeterogeneousSpace::new(&ev, vec![2, 3, 4], vec![1.0], 700, 200e6)
            .with_fft_sizes(vec![16, 32]);
        assert_eq!(space.dims(), 26, "FFT widens cardinality, not dimensionality");
        assert_eq!(space.cardinality(0), 5, "3 tile sizes + 2 FFT sizes");
        assert_eq!(space.cardinality(1), 1, "allocation dimension untouched");
        // The Winograd-only genome decodes exactly as before.
        let genome = space.uniform_genome(2, 0);
        let designs = space.layer_designs(&genome).unwrap();
        assert!(designs
            .iter()
            .all(|d| matches!(d.algo, AlgorithmChoice::Winograd(p) if p.m() == 4)));
        // Index 3 = FFT(16) everywhere: decodes, runs, and describes.
        let fft_genome: Genome =
            (0..space.dims()).map(|d| if d % 2 == 0 { 3 } else { 0 }).collect();
        let designs = space.layer_designs(&fft_genome).unwrap();
        assert!(designs
            .iter()
            .filter(|d| d.algo != AlgorithmChoice::Spatial)
            .all(|d| d.algo == AlgorithmChoice::Fft { n: 16 }));
        assert!(space.describe(&fft_genome).contains("FFT(16)"));
        let eval = space.evaluate(&fft_genome);
        assert!(eval.latency_ms > 0.0);
    }

    #[test]
    fn fft_wins_the_large_kernel_layer() {
        // The acceptance scenario: a large-kernel stride-1 layer where
        // the search should prefer FFT(32) over every Winograd tile.
        let mut wl = wino_core::Workload::new("large-kernel", 1);
        wl.push(
            "conv_big",
            "G",
            wino_core::ConvShape { h: 64, w: 64, c: 24, k: 24, r: 11, stride: 1, pad: 5 },
        );
        let ev = Evaluator::new(wl, virtex7_485t());
        let space = HeterogeneousSpace::new(&ev, vec![1, 2], vec![1.0], 700, 200e6)
            .with_fft_sizes(vec![16, 32]);
        assert_eq!(space.dims(), 2);
        let latency_of = |algo_idx: usize| {
            let designs = space.layer_designs(&[algo_idx, 0]).unwrap();
            designs[0].latency_ms
        };
        let spatial = latency_of(0);
        let wino = latency_of(1);
        let fft32 = latency_of(3);
        assert!(
            fft32 < wino && fft32 < spatial,
            "FFT(32) {fft32} vs F(2,11) {wino} / spatial {spatial}"
        );
        // And exhaustive search over the space lands on an FFT design.
        let best = (0..space.size())
            .map(|i| space.genome_at(i))
            .filter(|g| space.evaluate(g).feasible)
            .min_by(|a, b| space.evaluate(a).latency_ms.total_cmp(&space.evaluate(b).latency_ms))
            .unwrap();
        let designs = space.layer_designs(&best).unwrap();
        assert!(matches!(designs[0].algo, AlgorithmChoice::Fft { .. }), "{:?}", designs[0].algo);
    }

    #[test]
    fn fft_below_kernel_size_is_infeasible() {
        let mut wl = wino_core::Workload::new("large-kernel", 1);
        wl.push(
            "conv_big",
            "G",
            wino_core::ConvShape { h: 64, w: 64, c: 8, k: 8, r: 11, stride: 1, pad: 5 },
        );
        let ev = Evaluator::new(wl, virtex7_485t());
        let space =
            HeterogeneousSpace::new(&ev, vec![1], vec![1.0], 700, 200e6).with_fft_sizes(vec![8]);
        // Choice index 1 = FFT(8), but r = 11 > 8.
        assert!(space.layer_designs(&[1, 0]).is_none());
        assert!(!space.evaluate(&[1, 0]).feasible);
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn non_power_of_two_fft_size_panics() {
        let ev = evaluator();
        let _ =
            HeterogeneousSpace::new(&ev, vec![2], vec![1.0], 700, 200e6).with_fft_sizes(vec![12]);
    }

    #[test]
    fn power_efficiency_favors_smaller_context_than_throughput() {
        // Sanity: on the homogeneous space the m=2 design has the best
        // power efficiency, m=4 the best throughput (Table II), and the
        // same ordering is visible through the space API.
        let space = HomogeneousSpace::new(&evaluator(), vec![2, 3, 4], 3, 700, 200e6);
        let evals: Vec<Evaluation> = (0..3).map(|i| space.evaluate(&[i])).collect();
        let best_thr =
            (0..3).max_by(|&a, &b| evals[a].throughput_gops.total_cmp(&evals[b].throughput_gops));
        let best_eff =
            (0..3).max_by(|&a, &b| evals[a].power_efficiency.total_cmp(&evals[b].power_efficiency));
        assert_eq!(best_thr, Some(2));
        assert_eq!(best_eff, Some(0));
        // Matches the seed's best_design on the same objectives.
        let ev = evaluator();
        let (p, _) = wino_dse::best_design(&ev, &[2, 3, 4], 3, 700, 200e6, Objective::Throughput)
            .expect("fits");
        assert_eq!(p.params.m(), 4);
    }
}
