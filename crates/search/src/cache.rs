//! A shared, thread-safe memoizing evaluation cache.
//!
//! Design evaluation (transform-aware resource estimation + the Eq. 4–10
//! analytical models) is the hot path of every strategy, and
//! metaheuristics revisit points constantly — a hill climb probes the
//! same neighbors from both sides, a genetic population converges onto
//! few genotypes. Memoizing by genome makes revisits free and lets all
//! strategies in a comparison share one pool of evaluated designs.

use crate::{Evaluation, Genome, SearchSpace};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards; a power of two so the shard
/// index is a mask of the genome hash.
const SHARDS: usize = 16;

/// Memoizing wrapper around [`SearchSpace::evaluate`], shared by all
/// strategies of a run (and safe to use from the exhaustive strategy's
/// worker threads). The map is sharded across `SHARDS` independent
/// locks by genome hash, so parallel workers rarely contend.
///
/// A cache belongs to **one** space: entries are keyed by genome, and
/// the same genome means different designs in different spaces.
/// Dimension counts are checked (mismatched spaces panic), but two
/// same-shaped spaces cannot be told apart — use one cache per space.
#[derive(Debug)]
pub struct EvalCache {
    shards: [Mutex<HashMap<Genome, Evaluation>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    /// Dimension count of the space this cache serves; `u64::MAX` until
    /// the first lookup pins it.
    dims: AtomicU64,
}

/// FNV-1a over the genome, for shard selection.
fn shard_of(genome: &[usize]) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &g in genome {
        h ^= g as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) & (SHARDS - 1)
}

impl Default for EvalCache {
    fn default() -> EvalCache {
        EvalCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            dims: AtomicU64::new(u64::MAX),
        }
    }
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> EvalCache {
        EvalCache::default()
    }

    /// Evaluates `genome` on `space`, returning the memoized result when
    /// available.
    ///
    /// The shard lock is not held during evaluation, so concurrent
    /// callers may race to evaluate the same genome; both compute the
    /// same value and one insert wins.
    ///
    /// # Panics
    ///
    /// Panics when `space` has a different dimension count than the
    /// space this cache first served — a cache must not be reused
    /// across spaces.
    pub fn evaluate(&self, space: &dyn SearchSpace, genome: &[usize]) -> Evaluation {
        let dims = space.dims() as u64;
        if let Err(bound) =
            self.dims.compare_exchange(u64::MAX, dims, Ordering::Relaxed, Ordering::Relaxed)
        {
            assert_eq!(
                bound, dims,
                "EvalCache reused across spaces: bound to {bound} dims, got {dims}"
            );
        }
        let shard = &self.shards[shard_of(genome)];
        if let Some(hit) = shard.lock().expect("cache lock").get(genome) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *hit;
        }
        let evaluation = space.evaluate(genome);
        self.misses.fetch_add(1, Ordering::Relaxed);
        shard.lock().expect("cache lock").insert(genome.to_vec(), evaluation);
        evaluation
    }

    /// Lookups answered from memory.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran a fresh evaluation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct designs evaluated.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache lock").len()).sum()
    }

    /// `true` when nothing has been evaluated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A space that counts real evaluations.
    struct Counting {
        calls: AtomicUsize,
    }

    impl SearchSpace for Counting {
        fn dims(&self) -> usize {
            2
        }
        fn cardinality(&self, _dim: usize) -> usize {
            4
        }
        fn evaluate(&self, genome: &[usize]) -> Evaluation {
            self.calls.fetch_add(1, Ordering::Relaxed);
            Evaluation {
                throughput_gops: genome.iter().sum::<usize>() as f64,
                power_efficiency: 1.0,
                latency_ms: 1.0,
                power_w: 1.0,
                headroom: 0.5,
                quant_error: 0.0,
                resources: Default::default(),
                feasible: true,
            }
        }
        fn describe(&self, genome: &[usize]) -> String {
            format!("{genome:?}")
        }
    }

    #[test]
    fn memoizes_repeat_lookups() {
        let space = Counting { calls: AtomicUsize::new(0) };
        let cache = EvalCache::new();
        let a = cache.evaluate(&space, &[1, 2]);
        let b = cache.evaluate(&space, &[1, 2]);
        assert_eq!(a, b);
        assert_eq!(space.calls.load(Ordering::Relaxed), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        cache.evaluate(&space, &[2, 1]);
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
    }

    #[test]
    #[should_panic(expected = "EvalCache reused across spaces")]
    fn rejects_reuse_across_spaces() {
        struct OtherShape;
        impl SearchSpace for OtherShape {
            fn dims(&self) -> usize {
                3
            }
            fn cardinality(&self, _dim: usize) -> usize {
                4
            }
            fn evaluate(&self, _genome: &[usize]) -> Evaluation {
                Evaluation::infeasible()
            }
            fn describe(&self, _genome: &[usize]) -> String {
                String::new()
            }
        }
        let space = Counting { calls: AtomicUsize::new(0) };
        let cache = EvalCache::new();
        cache.evaluate(&space, &[0, 0]);
        cache.evaluate(&OtherShape, &[0, 0, 0]);
    }

    #[test]
    fn concurrent_use_is_consistent() {
        let space = Counting { calls: AtomicUsize::new(0) };
        let cache = EvalCache::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..4usize {
                        for j in 0..4usize {
                            let e = cache.evaluate(&space, &[i, j]);
                            assert_eq!(e.throughput_gops, (i + j) as f64);
                        }
                    }
                });
            }
        });
        assert_eq!(cache.len(), 16);
        assert_eq!(cache.hits() + cache.misses(), 64);
        assert!(cache.misses() >= 16);
    }
}
