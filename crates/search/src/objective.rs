//! Multi-objective quality of an evaluated design and scalar objectives
//! for single-objective strategies.

use std::fmt;
use wino_fpga::{FpgaDevice, ResourceUsage};

/// Number of axes in the multi-objective vector.
pub const OBJECTIVE_COUNT: usize = 5;

/// Quality of one design candidate on the target workload and device.
///
/// The five reported axes generalize the paper's two headline metrics
/// (throughput and power efficiency, Table II) with whole-network
/// latency, resource head-room, and the datapath's quantization error,
/// so a [`crate::ParetoArchive`] can carry the trade-off surface
/// instead of a single winner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Modeled throughput in GOPS (Eq. 10).
    pub throughput_gops: f64,
    /// GOPS per watt.
    pub power_efficiency: f64,
    /// Whole-workload latency in milliseconds.
    pub latency_ms: f64,
    /// Modeled power in watts (time-weighted over engine contexts for
    /// heterogeneous designs).
    pub power_w: f64,
    /// Smallest fractional slack across LUTs, registers and DSPs —
    /// negative when the design overflows the device.
    pub headroom: f64,
    /// Maximum absolute numerical error of the design's datapath
    /// against the float oracle — `0.0` for the paper's exact-model
    /// `f32` designs, and the measured (or bounded) quantization noise
    /// for fixed-point datapaths, fed in by the quantization study so
    /// DSE can trade tile size against arithmetic precision.
    pub quant_error: f64,
    /// Peak fabric usage.
    pub resources: ResourceUsage,
    /// Whether the design fits the device (and is structurally valid).
    pub feasible: bool,
}

impl Evaluation {
    /// The canonical "invalid design" marker: all-zero, infeasible.
    pub fn infeasible() -> Evaluation {
        Evaluation {
            throughput_gops: 0.0,
            power_efficiency: 0.0,
            latency_ms: f64::INFINITY,
            power_w: 0.0,
            headroom: -1.0,
            quant_error: f64::INFINITY,
            resources: ResourceUsage::default(),
            feasible: false,
        }
    }

    /// Returns this evaluation with its datapath error axis set — the
    /// hand-off point where the quantization study's measured
    /// max-abs-error joins the modeled axes before archive insertion.
    pub fn with_quant_error(mut self, max_abs_error: f64) -> Evaluation {
        self.quant_error = max_abs_error;
        self
    }

    /// The maximization vector (latency and quantization error are
    /// negated so that larger is uniformly better).
    pub fn objectives(&self) -> [f64; OBJECTIVE_COUNT] {
        [
            self.throughput_gops,
            self.power_efficiency,
            -self.latency_ms,
            self.headroom,
            -self.quant_error,
        ]
    }

    /// Pareto dominance: `self` is no worse on every axis and strictly
    /// better on at least one. Infeasible designs never dominate.
    pub fn dominates(&self, other: &Evaluation) -> bool {
        if !self.feasible {
            return false;
        }
        if !other.feasible {
            return true;
        }
        let a = self.objectives();
        let b = other.objectives();
        let mut strictly = false;
        for (x, y) in a.iter().zip(&b) {
            if x < y {
                return false;
            }
            if x > y {
                strictly = true;
            }
        }
        strictly
    }
}

impl fmt::Display for Evaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} GOPS, {:.2} GOPS/W, {:.2} ms, {:.1} W, {:.1}% head-room",
            self.throughput_gops,
            self.power_efficiency,
            self.latency_ms,
            self.power_w,
            self.headroom * 100.0,
        )?;
        if self.quant_error > 0.0 && self.quant_error.is_finite() {
            write!(f, ", {:.2e} quant err", self.quant_error)?;
        }
        if !self.feasible {
            write!(f, " (infeasible)")?;
        }
        Ok(())
    }
}

/// Smallest fractional slack of `usage` on `device` across LUTs,
/// registers and DSPs.
pub fn resource_headroom(usage: &ResourceUsage, device: &FpgaDevice) -> f64 {
    let slack = |used: u64, cap: u64| 1.0 - used as f64 / cap as f64;
    slack(usage.luts, device.luts)
        .min(slack(usage.registers, device.registers))
        .min(slack(usage.dsps, device.dsps))
}

/// Scalar objective a single-objective [`crate::Strategy`] optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchObjective {
    /// Maximize GOPS.
    Throughput,
    /// Maximize GOPS/W.
    PowerEfficiency,
    /// Minimize whole-workload latency.
    Latency,
    /// Maximize the minimum resource slack.
    ResourceHeadroom,
    /// Minimize the datapath's numerical error against the float
    /// oracle (only discriminates once the quantization study has fed
    /// measured errors in; all-float spaces tie at zero).
    QuantError,
}

impl SearchObjective {
    /// Score to maximize; `-inf` for infeasible designs.
    pub fn score(&self, evaluation: &Evaluation) -> f64 {
        if !evaluation.feasible {
            return f64::NEG_INFINITY;
        }
        match self {
            SearchObjective::Throughput => evaluation.throughput_gops,
            SearchObjective::PowerEfficiency => evaluation.power_efficiency,
            SearchObjective::Latency => -evaluation.latency_ms,
            SearchObjective::ResourceHeadroom => evaluation.headroom,
            SearchObjective::QuantError => -evaluation.quant_error,
        }
    }

    /// Finite variant of [`SearchObjective::score`] for annealing
    /// acceptance arithmetic.
    pub fn finite_score(&self, evaluation: &Evaluation) -> f64 {
        self.score(evaluation).max(-1e30)
    }
}

impl fmt::Display for SearchObjective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchObjective::Throughput => write!(f, "throughput"),
            SearchObjective::PowerEfficiency => write!(f, "power efficiency"),
            SearchObjective::Latency => write!(f, "latency"),
            SearchObjective::ResourceHeadroom => write!(f, "resource head-room"),
            SearchObjective::QuantError => write!(f, "quantization error"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_fpga::virtex7_485t;

    fn eval(thr: f64, eff: f64, lat: f64, head: f64, feasible: bool) -> Evaluation {
        Evaluation {
            throughput_gops: thr,
            power_efficiency: eff,
            latency_ms: lat,
            power_w: 10.0,
            headroom: head,
            quant_error: 0.0,
            resources: ResourceUsage::default(),
            feasible,
        }
    }

    #[test]
    fn dominance_requires_strict_improvement() {
        let a = eval(100.0, 10.0, 5.0, 0.5, true);
        let same = a;
        assert!(!a.dominates(&same), "equal vectors do not dominate");
        let better = eval(110.0, 10.0, 5.0, 0.5, true);
        assert!(better.dominates(&a));
        assert!(!a.dominates(&better));
    }

    #[test]
    fn tradeoffs_do_not_dominate() {
        let fast = eval(200.0, 5.0, 2.0, 0.1, true);
        let frugal = eval(100.0, 20.0, 4.0, 0.6, true);
        assert!(!fast.dominates(&frugal));
        assert!(!frugal.dominates(&fast));
    }

    #[test]
    fn infeasible_never_dominates_and_is_always_dominated() {
        let bad = eval(1e9, 1e9, 0.0, 1.0, false);
        let ok = eval(1.0, 1.0, 100.0, 0.0, true);
        assert!(!bad.dominates(&ok));
        assert!(ok.dominates(&bad));
        assert_eq!(SearchObjective::Throughput.score(&bad), f64::NEG_INFINITY);
        assert!(SearchObjective::Throughput.finite_score(&bad).is_finite());
    }

    #[test]
    fn latency_scores_negated() {
        let slow = eval(1.0, 1.0, 50.0, 0.0, true);
        let quick = eval(1.0, 1.0, 10.0, 0.0, true);
        assert!(SearchObjective::Latency.score(&quick) > SearchObjective::Latency.score(&slow));
    }

    #[test]
    fn headroom_is_min_slack() {
        let dev = virtex7_485t();
        let usage = ResourceUsage {
            luts: dev.luts / 2,
            registers: dev.registers / 4,
            dsps: dev.dsps - 28,
            multipliers: 0,
        };
        let h = resource_headroom(&usage, &dev);
        assert!((h - 0.01).abs() < 1e-9, "DSPs are the binding constraint: {h}");
    }

    #[test]
    fn display_mentions_feasibility() {
        assert!(Evaluation::infeasible().to_string().contains("infeasible"));
    }
}
