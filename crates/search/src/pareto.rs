//! Multi-objective Pareto archive.
//!
//! The paper reports a two-axis trade-off (throughput vs power
//! efficiency, Table II) and picks a single winner per axis. The archive
//! generalizes that: every feasible evaluated design is offered to it,
//! and it retains exactly the non-dominated set over the five-axis
//! objective vector of [`Evaluation::objectives`].

use crate::{Evaluation, Genome, SearchObjective};
use std::fmt;

/// One retained non-dominated design.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveEntry {
    /// The design's genome.
    pub genome: Genome,
    /// Its evaluation.
    pub evaluation: Evaluation,
}

/// The non-dominated set of all designs offered via
/// [`ParetoArchive::insert`].
#[derive(Debug, Clone, Default)]
pub struct ParetoArchive {
    entries: Vec<ArchiveEntry>,
}

impl ParetoArchive {
    /// An empty archive.
    pub fn new() -> ParetoArchive {
        ParetoArchive::default()
    }

    /// Offers a design. Returns `true` when it was retained: feasible,
    /// not dominated by (or objective-identical to) a retained entry.
    /// Entries the newcomer dominates are evicted.
    ///
    /// Dominance is judged over the **five-axis** objective vector of
    /// [`Evaluation::objectives`] — throughput, power efficiency,
    /// (negated) latency, resource head-room, and (negated) datapath
    /// quantization error (DESIGN.md §7) — so a
    /// design that trades throughput for head-room coexists with the
    /// throughput winner instead of displacing it:
    ///
    /// ```
    /// use wino_search::{Evaluation, ParetoArchive};
    /// use wino_fpga::ResourceUsage;
    ///
    /// let eval = |thr: f64, head: f64| Evaluation {
    ///     throughput_gops: thr,
    ///     power_efficiency: 10.0,
    ///     latency_ms: 1.0,
    ///     power_w: 10.0,
    ///     headroom: head,
    ///     quant_error: 0.0,
    ///     resources: ResourceUsage::default(),
    ///     feasible: true,
    /// };
    /// let mut archive = ParetoArchive::new();
    /// assert!(archive.insert(vec![0], eval(1000.0, 0.1)));
    /// assert!(archive.insert(vec![1], eval(800.0, 0.4)), "head-room trade-off retained");
    /// assert!(!archive.insert(vec![2], eval(900.0, 0.05)), "dominated on all five axes");
    /// assert_eq!(archive.len(), 2);
    /// ```
    pub fn insert(&mut self, genome: Genome, evaluation: Evaluation) -> bool {
        if !evaluation.feasible {
            return false;
        }
        let objectives = evaluation.objectives();
        if self
            .entries
            .iter()
            .any(|e| e.evaluation.dominates(&evaluation) || e.evaluation.objectives() == objectives)
        {
            return false;
        }
        self.entries.retain(|e| !evaluation.dominates(&e.evaluation));
        self.entries.push(ArchiveEntry { genome, evaluation });
        true
    }

    /// Retained entries in insertion order.
    pub fn entries(&self) -> &[ArchiveEntry] {
        &self.entries
    }

    /// Number of retained designs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The retained design maximizing `objective` (first-retained wins
    /// ties, keeping results deterministic).
    pub fn best_by(&self, objective: SearchObjective) -> Option<&ArchiveEntry> {
        let mut best: Option<&ArchiveEntry> = None;
        for entry in &self.entries {
            let better = match best {
                None => true,
                Some(b) => objective.score(&entry.evaluation) > objective.score(&b.evaluation),
            };
            if better {
                best = Some(entry);
            }
        }
        best
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: ParetoArchive) {
        for entry in other.entries {
            self.insert(entry.genome, entry.evaluation);
        }
    }
}

impl fmt::Display for ParetoArchive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Pareto archive ({} designs):", self.len())?;
        for entry in &self.entries {
            writeln!(f, "  {}", entry.evaluation)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_fpga::ResourceUsage;

    fn eval(thr: f64, eff: f64) -> Evaluation {
        Evaluation {
            throughput_gops: thr,
            power_efficiency: eff,
            latency_ms: 1.0,
            power_w: 1.0,
            headroom: 0.5,
            quant_error: 0.0,
            resources: ResourceUsage::default(),
            feasible: true,
        }
    }

    #[test]
    fn keeps_tradeoffs_drops_dominated() {
        let mut archive = ParetoArchive::new();
        assert!(archive.insert(vec![0], eval(100.0, 10.0)));
        assert!(archive.insert(vec![1], eval(50.0, 20.0)), "trade-off retained");
        assert!(!archive.insert(vec![2], eval(40.0, 5.0)), "dominated rejected");
        assert_eq!(archive.len(), 2);
        // A new design dominating the first evicts it.
        assert!(archive.insert(vec![3], eval(120.0, 12.0)));
        assert_eq!(archive.len(), 2);
        assert!(archive.entries().iter().all(|e| e.genome != vec![0]));
    }

    #[test]
    fn rejects_infeasible_and_duplicates() {
        let mut archive = ParetoArchive::new();
        let mut bad = eval(1e6, 1e6);
        bad.feasible = false;
        assert!(!archive.insert(vec![0], bad));
        assert!(archive.is_empty());
        assert!(archive.insert(vec![1], eval(10.0, 10.0)));
        assert!(!archive.insert(vec![2], eval(10.0, 10.0)), "objective-identical rejected");
        assert_eq!(archive.len(), 1);
    }

    #[test]
    fn best_by_is_deterministic_on_ties() {
        let mut archive = ParetoArchive::new();
        // Equal throughput, trade-off between efficiency and latency, so
        // neither dominates and both stay in the archive.
        let mut slow_efficient = eval(100.0, 20.0);
        slow_efficient.latency_ms = 2.0;
        archive.insert(vec![0], eval(100.0, 10.0));
        archive.insert(vec![1], slow_efficient);
        assert_eq!(archive.len(), 2);
        let best = archive.best_by(SearchObjective::Throughput).expect("non-empty");
        assert_eq!(best.genome, vec![0], "first retained wins the tie");
        let eff = archive.best_by(SearchObjective::PowerEfficiency).expect("non-empty");
        assert_eq!(eff.genome, vec![1]);
    }

    #[test]
    fn merge_preserves_invariant() {
        let mut a = ParetoArchive::new();
        a.insert(vec![0], eval(100.0, 10.0));
        let mut b = ParetoArchive::new();
        b.insert(vec![1], eval(120.0, 12.0));
        b.insert(vec![2], eval(10.0, 50.0));
        a.merge(b);
        assert_eq!(a.len(), 2);
        for i in 0..a.entries().len() {
            for j in 0..a.entries().len() {
                if i != j {
                    assert!(!a.entries()[i].evaluation.dominates(&a.entries()[j].evaluation));
                }
            }
        }
        let text = a.to_string();
        assert!(text.contains("Pareto archive (2 designs)"));
    }
}
