//! Pluggable search strategies.
//!
//! Exhaustive enumeration re-derives the paper's conclusions on small
//! homogeneous spaces; the heterogeneous per-layer space explodes
//! combinatorially (6¹³ ≈ 1.3·10¹⁰ candidates for VGG16-D with three
//! tile and two allocation choices), which is exactly why real toolflows
//! treat search strategy as a pluggable subsystem. All strategies drive
//! the same [`EvalCache`] and feed the same [`ParetoArchive`], and all
//! randomized strategies draw from a seeded [`SplitMix64`], so runs are
//! reproducible.

use crate::{EvalCache, Evaluation, Genome, ParetoArchive, SearchObjective, SearchSpace};
use wino_tensor::SplitMix64;

/// Result of one strategy run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Strategy name.
    pub strategy: &'static str,
    /// Number of design evaluations requested (cache hits included).
    pub evaluations: usize,
    /// Best feasible design found under the run's objective.
    pub best: Option<(Genome, Evaluation)>,
}

impl SearchOutcome {
    /// Score of the best design, `-inf` when none was feasible.
    pub fn best_score(&self, objective: SearchObjective) -> f64 {
        self.best.as_ref().map_or(f64::NEG_INFINITY, |(_, e)| objective.score(e))
    }
}

/// A design-space search strategy.
///
/// Implementations evaluate candidates through the shared `cache`, offer
/// every evaluated candidate to `archive`, and return the best feasible
/// design under `objective`.
pub trait Strategy {
    /// Strategy name for reports.
    fn name(&self) -> &'static str;

    /// Runs the search.
    fn search(
        &self,
        space: &dyn SearchSpace,
        cache: &EvalCache,
        objective: SearchObjective,
        archive: &mut ParetoArchive,
    ) -> SearchOutcome;
}

/// Tracks the incumbent with strict-improvement replacement, so the
/// first design reaching the best score wins ties deterministically.
#[derive(Default)]
struct Incumbent {
    best: Option<(Genome, Evaluation, f64)>,
}

impl Incumbent {
    fn offer(&mut self, genome: &[usize], evaluation: Evaluation, score: f64) {
        let improved = match &self.best {
            None => score > f64::NEG_INFINITY,
            Some((_, _, incumbent)) => score > *incumbent,
        };
        if improved {
            self.best = Some((genome.to_vec(), evaluation, score));
        }
    }

    fn into_best(self) -> Option<(Genome, Evaluation)> {
        self.best.map(|(g, e, _)| (g, e))
    }
}

/// Exhaustive enumeration, parallelized across worker threads.
///
/// Guaranteed optimal; only viable on enumerable spaces, so
/// [`Exhaustive::search`] refuses spaces larger than
/// [`Exhaustive::MAX_POINTS`].
#[derive(Debug, Clone)]
pub struct Exhaustive {
    /// Worker threads to fan evaluation across.
    pub threads: usize,
}

impl Default for Exhaustive {
    fn default() -> Exhaustive {
        Exhaustive { threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }
    }
}

impl Exhaustive {
    /// Upper bound on enumerable space size (2²⁴ designs).
    pub const MAX_POINTS: u128 = 1 << 24;
}

impl Strategy for Exhaustive {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    /// # Panics
    ///
    /// Panics when the space holds more than [`Exhaustive::MAX_POINTS`]
    /// candidates — use a metaheuristic there.
    fn search(
        &self,
        space: &dyn SearchSpace,
        cache: &EvalCache,
        objective: SearchObjective,
        archive: &mut ParetoArchive,
    ) -> SearchOutcome {
        let total = space.size();
        assert!(
            total <= Exhaustive::MAX_POINTS,
            "exhaustive search over {total} designs is not enumerable; use a metaheuristic"
        );
        let total = total as usize;
        let threads = self.threads.clamp(1, total.max(1));
        let chunk = total.div_ceil(threads);

        // Each worker scans a contiguous index range and reports its
        // local incumbent and local Pareto front; merging in chunk order
        // keeps the outcome deterministic regardless of thread timing.
        type WorkerReport = (Option<(Genome, Evaluation, f64)>, ParetoArchive);
        let mut locals: Vec<WorkerReport> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|w| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(total);
                    scope.spawn(move || {
                        let mut incumbent = Incumbent::default();
                        let mut local = ParetoArchive::new();
                        for index in lo..hi {
                            let genome = space.genome_at(index as u128);
                            let evaluation = cache.evaluate(space, &genome);
                            incumbent.offer(&genome, evaluation, objective.score(&evaluation));
                            local.insert(genome, evaluation);
                        }
                        (incumbent.best, local)
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().expect("worker panicked")).collect()
        });

        let mut incumbent = Incumbent::default();
        for (local_best, local_archive) in locals.drain(..) {
            if let Some((genome, evaluation, score)) = local_best {
                incumbent.offer(&genome, evaluation, score);
            }
            archive.merge(local_archive);
        }
        SearchOutcome { strategy: self.name(), evaluations: total, best: incumbent.into_best() }
    }
}

/// Steepest-ascent hill climbing with random restarts.
///
/// From each restart, every ±1 neighbor along every dimension is probed
/// and the best strict improvement is taken until a local optimum.
#[derive(Debug, Clone)]
pub struct Greedy {
    /// RNG seed for restart positions.
    pub seed: u64,
    /// Number of independent restarts.
    pub restarts: usize,
    /// Hard cap on evaluations across all restarts.
    pub max_evaluations: usize,
}

impl Default for Greedy {
    fn default() -> Greedy {
        Greedy { seed: 0x5EED_0001, restarts: 8, max_evaluations: 20_000 }
    }
}

impl Strategy for Greedy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn search(
        &self,
        space: &dyn SearchSpace,
        cache: &EvalCache,
        objective: SearchObjective,
        archive: &mut ParetoArchive,
    ) -> SearchOutcome {
        let mut rng = SplitMix64::new(self.seed);
        let mut incumbent = Incumbent::default();
        let mut evaluations = 0usize;

        'restarts: for _ in 0..self.restarts.max(1) {
            let mut current = space.random_genome(&mut rng);
            let current_eval = cache.evaluate(space, &current);
            evaluations += 1;
            archive.insert(current.clone(), current_eval);
            let mut current_score = objective.finite_score(&current_eval);
            incumbent.offer(&current, current_eval, objective.score(&current_eval));

            loop {
                let mut step: Option<(Genome, Evaluation, f64)> = None;
                for dim in 0..space.dims() {
                    for delta in [-1isize, 1] {
                        let value = current[dim] as isize + delta;
                        if value < 0 || value >= space.cardinality(dim) as isize {
                            continue;
                        }
                        if evaluations >= self.max_evaluations {
                            break 'restarts;
                        }
                        let mut neighbor = current.clone();
                        neighbor[dim] = value as usize;
                        let evaluation = cache.evaluate(space, &neighbor);
                        evaluations += 1;
                        archive.insert(neighbor.clone(), evaluation);
                        incumbent.offer(&neighbor, evaluation, objective.score(&evaluation));
                        let score = objective.finite_score(&evaluation);
                        if score > current_score && step.as_ref().is_none_or(|(_, _, s)| score > *s)
                        {
                            step = Some((neighbor, evaluation, score));
                        }
                    }
                }
                match step {
                    Some((genome, _, score)) => {
                        current = genome;
                        current_score = score;
                    }
                    None => break,
                }
            }
        }

        SearchOutcome { strategy: self.name(), evaluations, best: incumbent.into_best() }
    }
}

/// Simulated annealing with geometric cooling.
///
/// The temperature scale is relative to the first feasible score, so one
/// configuration works across objectives of very different magnitudes
/// (GOPS in the thousands vs head-room fractions).
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    /// RNG seed.
    pub seed: u64,
    /// Total proposal steps.
    pub iterations: usize,
    /// Initial temperature as a fraction of the starting score scale.
    pub initial_temperature: f64,
    /// Geometric cooling factor per step.
    pub cooling: f64,
}

impl Default for SimulatedAnnealing {
    fn default() -> SimulatedAnnealing {
        SimulatedAnnealing {
            seed: 0x5EED_0002,
            iterations: 4_000,
            initial_temperature: 0.05,
            cooling: 0.999,
        }
    }
}

impl Strategy for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "simulated-annealing"
    }

    fn search(
        &self,
        space: &dyn SearchSpace,
        cache: &EvalCache,
        objective: SearchObjective,
        archive: &mut ParetoArchive,
    ) -> SearchOutcome {
        let mut rng = SplitMix64::new(self.seed);
        let mut incumbent = Incumbent::default();

        let mut current = space.random_genome(&mut rng);
        let current_eval = cache.evaluate(space, &current);
        let mut evaluations = 1usize;
        archive.insert(current.clone(), current_eval);
        incumbent.offer(&current, current_eval, objective.score(&current_eval));
        let mut current_score = objective.finite_score(&current_eval);

        // The temperature scale must come from a *feasible* score: an
        // infeasible start scores the -1e30 sentinel, and a temperature
        // derived from it would accept every proposal for the whole run.
        let mut calibrated = current_eval.feasible;
        let mut temperature = if calibrated {
            self.initial_temperature * current_score.abs().max(1.0)
        } else {
            0.0 // greedy walk until the first feasible design appears
        };

        if space.dims() == 0 {
            return SearchOutcome {
                strategy: self.name(),
                evaluations,
                best: incumbent.into_best(),
            };
        }

        for _ in 0..self.iterations {
            let dim = rng.below(space.dims() as u64) as usize;
            let card = space.cardinality(dim);
            if card <= 1 {
                continue;
            }
            let mut candidate = current.clone();
            // Draw a different value for the chosen dimension.
            let offset = 1 + rng.below(card as u64 - 1) as usize;
            candidate[dim] = (candidate[dim] + offset) % card;

            let evaluation = cache.evaluate(space, &candidate);
            evaluations += 1;
            archive.insert(candidate.clone(), evaluation);
            incumbent.offer(&candidate, evaluation, objective.score(&evaluation));

            let score = objective.finite_score(&evaluation);
            if !calibrated && evaluation.feasible {
                calibrated = true;
                temperature = self.initial_temperature * score.abs().max(1.0);
            }
            let delta = score - current_score;
            // Before calibration the walk sits in an infeasible region:
            // accept lateral (equal-sentinel) moves so it keeps moving
            // instead of resampling the start's neighborhood forever.
            let accept = delta > 0.0
                || (!calibrated && delta >= 0.0)
                || (temperature > 0.0 && rng.next_f64() < (delta / temperature).exp());
            if accept {
                current = candidate;
                current_score = score;
            }
            temperature *= self.cooling;
        }

        SearchOutcome { strategy: self.name(), evaluations, best: incumbent.into_best() }
    }
}

/// A generational genetic algorithm: tournament selection, uniform
/// crossover, per-gene mutation, and elitism.
#[derive(Debug, Clone)]
pub struct Genetic {
    /// RNG seed.
    pub seed: u64,
    /// Population size.
    pub population: usize,
    /// Number of generations after the initial one.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Individuals copied unchanged into the next generation.
    pub elites: usize,
}

impl Default for Genetic {
    fn default() -> Genetic {
        Genetic {
            seed: 0x5EED_0003,
            population: 32,
            generations: 40,
            mutation_rate: 0.15,
            tournament: 3,
            elites: 2,
        }
    }
}

impl Genetic {
    fn pick_parent<'a>(&self, rng: &mut SplitMix64, ranked: &'a [(Genome, f64)]) -> &'a Genome {
        let mut best = rng.below(ranked.len() as u64) as usize;
        for _ in 1..self.tournament.max(1) {
            let challenger = rng.below(ranked.len() as u64) as usize;
            if ranked[challenger].1 > ranked[best].1 {
                best = challenger;
            }
        }
        &ranked[best].0
    }
}

impl Strategy for Genetic {
    fn name(&self) -> &'static str {
        "genetic"
    }

    fn search(
        &self,
        space: &dyn SearchSpace,
        cache: &EvalCache,
        objective: SearchObjective,
        archive: &mut ParetoArchive,
    ) -> SearchOutcome {
        let mut rng = SplitMix64::new(self.seed);
        let mut incumbent = Incumbent::default();
        let mut evaluations = 0usize;
        let population = self.population.max(2);

        let mut ranked: Vec<(Genome, f64)> = (0..population)
            .map(|_| {
                let genome = space.random_genome(&mut rng);
                let evaluation = cache.evaluate(space, &genome);
                evaluations += 1;
                archive.insert(genome.clone(), evaluation);
                incumbent.offer(&genome, evaluation, objective.score(&evaluation));
                let score = objective.finite_score(&evaluation);
                (genome, score)
            })
            .collect();

        for _ in 0..self.generations {
            // Deterministic ranking: score descending, genome ascending.
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            let mut next: Vec<(Genome, f64)> =
                ranked.iter().take(self.elites.min(population)).cloned().collect();
            while next.len() < population {
                let mother = self.pick_parent(&mut rng, &ranked).clone();
                let father = self.pick_parent(&mut rng, &ranked).clone();
                let mut child: Genome = mother
                    .iter()
                    .zip(&father)
                    .map(|(&m, &f)| if rng.next_u64() & 1 == 0 { m } else { f })
                    .collect();
                for (dim, gene) in child.iter_mut().enumerate() {
                    if rng.next_f64() < self.mutation_rate {
                        *gene = rng.below(space.cardinality(dim) as u64) as usize;
                    }
                }
                let evaluation = cache.evaluate(space, &child);
                evaluations += 1;
                archive.insert(child.clone(), evaluation);
                incumbent.offer(&child, evaluation, objective.score(&evaluation));
                let score = objective.finite_score(&evaluation);
                next.push((child, score));
            }
            ranked = next;
        }

        SearchOutcome { strategy: self.name(), evaluations, best: incumbent.into_best() }
    }
}

/// Runs several strategies over one space with a shared cache and
/// archive — the subsystem's front door.
///
/// Returns the per-strategy outcomes, the merged Pareto archive, and the
/// cache (whose hit/miss counters show how much the strategies shared).
pub fn compare_strategies(
    space: &dyn SearchSpace,
    strategies: &[&dyn Strategy],
    objective: SearchObjective,
) -> (Vec<SearchOutcome>, ParetoArchive, EvalCache) {
    let cache = EvalCache::new();
    let mut archive = ParetoArchive::new();
    let outcomes =
        strategies.iter().map(|s| s.search(space, &cache, objective, &mut archive)).collect();
    (outcomes, archive, cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_fpga::ResourceUsage;

    /// A synthetic separable space: score is the sum of per-dimension
    /// values, maximum at all-(card-1). Cardinality 4, 6 dims.
    struct SumSpace;

    impl SearchSpace for SumSpace {
        fn dims(&self) -> usize {
            6
        }
        fn cardinality(&self, _dim: usize) -> usize {
            4
        }
        fn evaluate(&self, genome: &[usize]) -> Evaluation {
            let s: usize = genome.iter().sum();
            Evaluation {
                throughput_gops: s as f64,
                power_efficiency: 1.0,
                latency_ms: 1.0,
                power_w: 1.0,
                headroom: 0.5,
                quant_error: 0.0,
                resources: ResourceUsage::default(),
                feasible: true,
            }
        }
        fn describe(&self, genome: &[usize]) -> String {
            format!("{genome:?}")
        }
    }

    fn run(strategy: &dyn Strategy) -> SearchOutcome {
        let cache = EvalCache::new();
        let mut archive = ParetoArchive::new();
        strategy.search(&SumSpace, &cache, SearchObjective::Throughput, &mut archive)
    }

    #[test]
    fn exhaustive_finds_the_global_optimum() {
        let outcome = run(&Exhaustive::default());
        assert_eq!(outcome.evaluations, 4096);
        let (genome, evaluation) = outcome.best.expect("feasible space");
        assert_eq!(genome, vec![3; 6]);
        assert_eq!(evaluation.throughput_gops, 18.0);
    }

    #[test]
    fn exhaustive_single_thread_agrees_with_parallel() {
        let serial = run(&Exhaustive { threads: 1 });
        let parallel = run(&Exhaustive { threads: 8 });
        assert_eq!(serial.best, parallel.best);
    }

    #[test]
    fn greedy_climbs_separable_spaces_to_the_top() {
        let outcome = run(&Greedy { seed: 1, restarts: 1, max_evaluations: 10_000 });
        let (genome, _) = outcome.best.expect("feasible space");
        assert_eq!(genome, vec![3; 6], "steepest ascent solves separable objectives");
    }

    /// Feasible only when every gene is at least 2 — a random start is
    /// infeasible ~94% of the time, so this pins the annealing
    /// temperature calibration (an infeasible start must not melt the
    /// schedule into a pure random walk, nor freeze it in place).
    struct MostlyInfeasible;

    impl SearchSpace for MostlyInfeasible {
        fn dims(&self) -> usize {
            4
        }
        fn cardinality(&self, _dim: usize) -> usize {
            4
        }
        fn evaluate(&self, genome: &[usize]) -> Evaluation {
            let mut e = SumSpace.evaluate(genome);
            e.feasible = genome.iter().all(|&g| g >= 2);
            e
        }
        fn describe(&self, genome: &[usize]) -> String {
            format!("{genome:?}")
        }
    }

    #[test]
    fn annealing_recovers_from_an_infeasible_start() {
        for seed in 0..8 {
            let strategy = SimulatedAnnealing { seed, ..Default::default() };
            let cache = EvalCache::new();
            let mut archive = ParetoArchive::new();
            let outcome = strategy.search(
                &MostlyInfeasible,
                &cache,
                SearchObjective::Throughput,
                &mut archive,
            );
            let (genome, evaluation) = outcome.best.expect("feasible designs exist");
            assert!(evaluation.feasible, "seed {seed} returned an infeasible best");
            assert_eq!(genome, vec![3; 4], "seed {seed} missed the optimum");
        }
    }

    #[test]
    fn annealing_and_genetic_reach_the_optimum_on_a_small_space() {
        for strategy in [&SimulatedAnnealing::default() as &dyn Strategy, &Genetic::default()] {
            let outcome = run(strategy);
            let (_, evaluation) = outcome.best.expect("feasible space");
            assert_eq!(
                evaluation.throughput_gops,
                18.0,
                "{} missed the optimum of an easy space",
                strategy.name()
            );
        }
    }

    #[test]
    fn strategies_are_deterministic() {
        for strategy in [
            &Greedy::default() as &dyn Strategy,
            &SimulatedAnnealing::default(),
            &Genetic::default(),
        ] {
            let a = run(strategy);
            let b = run(strategy);
            assert_eq!(a.best, b.best, "{} is not reproducible", strategy.name());
            assert_eq!(a.evaluations, b.evaluations);
        }
    }

    #[test]
    fn compare_strategies_shares_one_cache() {
        let exhaustive = Exhaustive { threads: 2 };
        let greedy = Greedy::default();
        let (outcomes, archive, cache) = compare_strategies(
            &SumSpace,
            &[&exhaustive as &dyn Strategy, &greedy],
            SearchObjective::Throughput,
        );
        assert_eq!(outcomes.len(), 2);
        // Everything greedy touched was already evaluated exhaustively.
        assert_eq!(cache.misses(), 4096);
        assert!(cache.hits() >= outcomes[1].evaluations as u64);
        // All designs score equal on three axes, so the archive keeps
        // exactly one non-dominated representative (max throughput).
        assert_eq!(archive.len(), 1);
        assert_eq!(archive.entries()[0].evaluation.throughput_gops, 18.0);
    }

    #[test]
    fn outcome_best_score_handles_empty() {
        let outcome = SearchOutcome { strategy: "none", evaluations: 0, best: None };
        assert_eq!(outcome.best_score(SearchObjective::Throughput), f64::NEG_INFINITY);
    }
}
