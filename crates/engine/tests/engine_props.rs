//! Property tests: the cycle-level engine matches Eq. 9 and direct
//! convolution for arbitrary layer/engine geometry.

use proptest::prelude::*;
use wino_baselines::spatial_convolve;
use wino_core::WinogradParams;
use wino_engine::{EngineConfig, WinogradEngine};
use wino_tensor::{ErrorStats, Shape4, SplitMix64, Tensor4};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cycles_always_match_eq9(
        m in 2usize..5,
        pes in 1usize..5,
        c in 1usize..4,
        k in 1usize..7,
        hw in 4usize..10,
        dt in 1usize..4,
        mul in 1usize..4,
        inv in 1usize..4,
        seed in 0u64..1000,
    ) {
        let params = WinogradParams::new(m, 3).expect("valid");
        let mut config = EngineConfig::proposed(params, pes);
        config.dt_latency = dt;
        config.mult_latency = mul;
        config.inv_latency = inv;
        let engine = WinogradEngine::new(config).expect("builds");
        let mut rng = SplitMix64::new(seed);
        let input = Tensor4::from_fn(Shape4 { n: 1, c, h: hw, w: hw }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let kernels = Tensor4::from_fn(Shape4 { n: k, c, h: 3, w: 3 }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let (out, report) = engine.run_layer(&input, &kernels, 1);
        prop_assert_eq!(report.cycles, engine.predicted_cycles(input.shape(), k, 1));
        prop_assert_eq!(report.stall_cycles, 0);
        let refr = spatial_convolve(&input, &kernels, 1);
        let stats = ErrorStats::between(out.as_slice(), refr.as_slice());
        prop_assert!(stats.within_abs(1e-3), "{}", stats);
    }

    #[test]
    fn stalls_only_slow_never_corrupt(
        bw in 1.0f64..64.0,
        seed in 0u64..500,
    ) {
        let params = WinogradParams::new(2, 3).expect("valid");
        let mut config = EngineConfig::proposed(params, 2);
        config.kernel_bandwidth = bw;
        let engine = WinogradEngine::new(config).expect("builds");
        let mut rng = SplitMix64::new(seed);
        let input = Tensor4::from_fn(Shape4 { n: 1, c: 2, h: 6, w: 6 }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let kernels = Tensor4::from_fn(Shape4 { n: 4, c: 2, h: 3, w: 3 }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let (out, report) = engine.run_layer(&input, &kernels, 1);
        let ideal = engine.predicted_cycles(input.shape(), 4, 1);
        prop_assert!(report.cycles >= ideal);
        prop_assert_eq!(report.cycles - ideal, report.stall_cycles);
        let refr = spatial_convolve(&input, &kernels, 1);
        let stats = ErrorStats::between(out.as_slice(), refr.as_slice());
        prop_assert!(stats.within_abs(1e-3), "{}", stats);
    }

    #[test]
    fn outputs_written_equals_output_volume(
        m in 2usize..5,
        k in 1usize..5,
        hw in 4usize..9,
        seed in 0u64..200,
    ) {
        let params = WinogradParams::new(m, 3).expect("valid");
        let engine = WinogradEngine::new(EngineConfig::proposed(params, 2)).expect("builds");
        let mut rng = SplitMix64::new(seed);
        let input = Tensor4::from_fn(Shape4 { n: 1, c: 2, h: hw, w: hw }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let kernels = Tensor4::from_fn(Shape4 { n: k, c: 2, h: 3, w: 3 }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let (_, report) = engine.run_layer(&input, &kernels, 1);
        prop_assert_eq!(report.outputs_written, (hw * hw * k) as u64);
    }
}
