//! # wino-engine
//!
//! Cycle-level simulator of the pipelined Winograd convolution engine of
//! Ahmad & Pasha (DATE 2019) — the substitution for their RTL + Vivado
//! flow (DESIGN.md §2).
//!
//! [`WinogradEngine`] executes a convolutional layer clock by clock
//! through the Fig. 7 system: image buffer → (shared or per-PE) data
//! transform → `P` parallel PEs (element-wise multiply + inverse
//! transform) → channel accumulation buffers, with double-buffered kernel
//! loads. It returns both the computed output tensor and a [`SimReport`]
//! whose cycle count provably matches the paper's Eq. 9.
//!
//! ```
//! use wino_core::WinogradParams;
//! use wino_engine::{EngineConfig, WinogradEngine};
//! use wino_tensor::{Shape4, Tensor4};
//!
//! let engine = WinogradEngine::new(EngineConfig::proposed(WinogradParams::new(3, 3)?, 4))?;
//! let x = Tensor4::from_fn(Shape4 { n: 1, c: 2, h: 9, w: 9 }, |_, c, h, w| (c + h * w) as f32);
//! let k = Tensor4::from_fn(Shape4 { n: 4, c: 2, h: 3, w: 3 }, |_, _, _, _| 0.25f32);
//! let (y, report) = engine.run_layer(&x, &k, 1);
//! assert_eq!(y.shape().h, 9);
//! assert_eq!(report.cycles, engine.predicted_cycles(x.shape(), 4, 1)); // Eq. 9
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
mod pipeline;
mod structure;

pub use engine::{EngineConfig, SimReport, WinogradEngine};
pub use pipeline::Pipeline;
pub use structure::{pe_structure, structure_1d, PeStructure, Structure1d};
