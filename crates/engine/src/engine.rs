//! The cycle-level Winograd convolution engine (Figs. 4, 5, 7).
//!
//! One engine instance models the paper's system: an image buffer feeding
//! one `(m+r−1)²` input tile per clock, a pipelined data transform stage
//! (shared across PEs in the proposed design, replicated per PE in the
//! [3] baseline), `P` parallel PEs performing the element-wise multiply
//! and inverse transform, and per-PE accumulation buffers that sum over
//! the `C` input channels (Sec. IV-B). Kernel (`V`) buffers are double
//! buffered; bandwidth below the double-buffering requirement inserts
//! stall bubbles between kernel groups while in-flight work keeps
//! draining, exactly like real back-pressure.
//!
//! The simulator is *functional and timed*: it produces the actual layer
//! output (validated against direct convolution) and a cycle count that
//! must agree with the paper's Eq. 9.

use crate::Pipeline;
use std::collections::HashMap;
use wino_core::{TransformError, WinogradAlgorithm, WinogradParams};
use wino_fpga::{Architecture, EngineResources, ResourceUsage};
use wino_tensor::{Shape4, Tensor2, Tensor4};

/// Static configuration of one engine instance.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Winograd algorithm parameters `F(m×m, r×r)`.
    pub params: WinogradParams,
    /// Data-transform placement (proposed vs \[3\]).
    pub arch: Architecture,
    /// Number of parallel PEs (`P` of Eq. 8).
    pub pe_count: usize,
    /// Pipeline stages of the data transform (two 1-D passes).
    pub dt_latency: usize,
    /// Pipeline stages of the element-wise fp32 multiply.
    pub mult_latency: usize,
    /// Pipeline stages of the inverse transform.
    pub inv_latency: usize,
    /// Kernel-buffer fill bandwidth in bytes/cycle (`f64::INFINITY`
    /// reproduces the paper's "enough memory bandwidth" assumption).
    pub kernel_bandwidth: f64,
}

impl EngineConfig {
    /// A configuration with the paper's assumptions: shared transform,
    /// unlimited bandwidth, representative stage depths.
    pub fn proposed(params: WinogradParams, pe_count: usize) -> EngineConfig {
        EngineConfig {
            params,
            arch: Architecture::SharedTransform,
            pe_count,
            dt_latency: 2,
            mult_latency: 3,
            inv_latency: 2,
            kernel_bandwidth: f64::INFINITY,
        }
    }

    /// The \[3\]-style baseline: identical timing (the paper notes moving
    /// the data transform does not change latency), different structure.
    pub fn reference(params: WinogradParams, pe_count: usize) -> EngineConfig {
        EngineConfig {
            arch: Architecture::PerPeTransform,
            ..EngineConfig::proposed(params, pe_count)
        }
    }

    /// Total pipeline depth `D_p` of Eq. 9: the three register chains plus
    /// one for Eq. 9's convention that the issue cycle itself counts (the
    /// accumulator write-back happens within the retire cycle).
    pub fn pipeline_depth(&self) -> usize {
        self.dt_latency + self.mult_latency + self.inv_latency + 1
    }
}

/// Timing and activity results of one simulated layer.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Total clock cycles from first issue to last output write-back.
    pub cycles: u64,
    /// Issued (tile, channel) pairs — the steady-state term of Eq. 9.
    pub issues: u64,
    /// Stall bubbles inserted waiting for kernel-buffer fills.
    pub stall_cycles: u64,
    /// Output pixels written (counts only real kernels in ragged groups).
    pub outputs_written: u64,
    /// Bytes of transformed kernels loaded into the V buffers.
    pub kernel_bytes_loaded: u64,
    /// Minimum bandwidth (bytes/cycle) that avoids every stall.
    pub required_bandwidth: f64,
    /// Fraction of PE-cycles doing useful work.
    pub pe_utilization: f64,
}

impl SimReport {
    /// Wall-clock latency at a given clock frequency.
    pub fn latency_seconds(&self, freq_hz: f64) -> f64 {
        self.cycles as f64 / freq_hz
    }
}

/// One scheduled input: a (image, kernel-group, tile, channel) issue or a
/// stall bubble.
#[derive(Debug, Clone, Copy)]
enum FeedEvent {
    Work { img: usize, k_lo: usize, active: usize, tile: usize, channel: usize },
    Bubble,
}

/// An item flowing from the data transform to the PEs.
struct DtItem {
    img: usize,
    k_lo: usize,
    active: usize,
    tile: usize,
    channel: usize,
    u: Tensor2<f32>,
}

/// Per-PE results of the multiply + inverse stages for one input tile.
struct PeItem {
    img: usize,
    k_lo: usize,
    tile: usize,
    channel: usize,
    /// One `m × m` partial output per active PE.
    ys: Vec<Tensor2<f32>>,
}

/// The cycle-level engine.
///
/// ```
/// use wino_core::WinogradParams;
/// use wino_engine::{EngineConfig, WinogradEngine};
/// use wino_tensor::{Shape4, Tensor4};
///
/// let engine = WinogradEngine::new(EngineConfig::proposed(WinogradParams::new(2, 3)?, 2))?;
/// let input = Tensor4::from_fn(Shape4 { n: 1, c: 2, h: 6, w: 6 }, |_, c, h, w| (c + h + w) as f32);
/// let kernels = Tensor4::from_fn(Shape4 { n: 2, c: 2, h: 3, w: 3 }, |_, _, _, _| 0.5f32);
/// let (output, report) = engine.run_layer(&input, &kernels, 1);
/// assert_eq!(output.shape(), Shape4 { n: 1, c: 2, h: 6, w: 6 });
/// assert_eq!(report.cycles, engine.predicted_cycles(input.shape(), 2, 1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct WinogradEngine {
    config: EngineConfig,
    algo: WinogradAlgorithm<f32>,
    resources: EngineResources,
}

impl WinogradEngine {
    /// Builds an engine, generating the canonical transforms.
    ///
    /// # Errors
    ///
    /// Propagates transform-generation failures.
    ///
    /// # Panics
    ///
    /// Panics if `pe_count == 0` or a stage latency is zero.
    pub fn new(config: EngineConfig) -> Result<WinogradEngine, TransformError> {
        assert!(config.pe_count > 0, "engine needs at least one PE");
        assert!(
            config.dt_latency > 0 && config.mult_latency > 0 && config.inv_latency > 0,
            "pipeline stages must have at least one register"
        );
        let set = wino_core::TransformSet::generate(config.params)?;
        let algo = WinogradAlgorithm::new(&set);
        let resources = EngineResources::from_transforms(&set);
        Ok(WinogradEngine { config, algo, resources })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Estimated FPGA resources of this engine instance.
    pub fn resources(&self) -> ResourceUsage {
        self.resources.estimate(self.config.arch, self.config.pe_count)
    }

    /// Analytical cycle count (Eq. 9 with exact tiling and unlimited
    /// bandwidth): steady-state issues plus pipeline fill.
    pub fn predicted_cycles(&self, shape: Shape4, kernels: usize, pad: usize) -> u64 {
        let m = self.config.params.m();
        let r = self.config.params.r();
        let out_h = shape.h + 2 * pad - r + 1;
        let out_w = shape.w + 2 * pad - r + 1;
        let tiles = (out_h.div_ceil(m) * out_w.div_ceil(m)) as u64;
        let groups = (kernels as u64).div_ceil(self.config.pe_count as u64);
        let issues = shape.n as u64 * groups * tiles * shape.c as u64;
        issues + self.config.pipeline_depth() as u64 - 1
    }

    /// Builds the full issue schedule, inserting stall bubbles where the
    /// kernel-buffer fill cannot hide behind the previous group's compute.
    fn schedule(&self, is: Shape4, ks: Shape4, tiles: usize) -> (Vec<FeedEvent>, u64, f64) {
        let p = self.config.pe_count;
        let groups = ks.n.div_ceil(p);
        let n2 = self.config.params.mults_per_tile_2d();
        let v_tile_bytes = (n2 * 4) as u64;
        let group_compute = (tiles * is.c) as u64;

        let mut feed = Vec::new();
        let mut kernel_bytes = 0u64;
        let mut required_bw = 0f64;
        for img in 0..is.n {
            for group in 0..groups {
                let k_lo = group * p;
                let active = (k_lo + p).min(ks.n) - k_lo;
                let load_bytes = (active * is.c) as u64 * v_tile_bytes;
                kernel_bytes += load_bytes;
                required_bw = required_bw.max(load_bytes as f64 / group_compute as f64);
                if self.config.kernel_bandwidth.is_finite() {
                    let load_cycles =
                        (load_bytes as f64 / self.config.kernel_bandwidth).ceil() as u64;
                    // Double buffering: the first fill has nothing to hide
                    // behind; later fills overlap the previous group.
                    let overlap = if img == 0 && group == 0 { 0 } else { group_compute };
                    for _ in 0..load_cycles.saturating_sub(overlap) {
                        feed.push(FeedEvent::Bubble);
                    }
                }
                for tile in 0..tiles {
                    for channel in 0..is.c {
                        feed.push(FeedEvent::Work { img, k_lo, active, tile, channel });
                    }
                }
            }
        }
        (feed, kernel_bytes, required_bw)
    }

    /// Runs one convolutional layer through the engine, cycle by cycle.
    ///
    /// Shapes follow
    /// [`WinogradAlgorithm::convolve_layer`]: `(N, C, H, W)` input,
    /// `(K, C, r, r)` kernels, stride 1, symmetric `pad`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches (same contract as the functional path).
    pub fn run_layer(
        &self,
        input: &Tensor4<f32>,
        kernels: &Tensor4<f32>,
        pad: usize,
    ) -> (Tensor4<f32>, SimReport) {
        let is = input.shape();
        let ks = kernels.shape();
        assert_eq!(is.c, ks.c, "input and kernel channel counts must match");
        let m = self.config.params.m();
        let r = self.config.params.r();
        let n = self.config.params.input_tile();
        assert_eq!((ks.h, ks.w), (r, r), "kernels must be {r}x{r}");
        let p = self.config.pe_count;
        let out_h = is.h + 2 * pad - r + 1;
        let out_w = is.w + 2 * pad - r + 1;
        let tiles_x = out_w.div_ceil(m);
        let tiles = out_h.div_ceil(m) * tiles_x;

        // Precomputed filter transforms (Sec. IV-B: V "can be precomputed
        // even before running a forward pass of the CNN").
        let v_bank = self.algo.transform_kernel_bank(kernels);
        let planes: Vec<Vec<Tensor2<f32>>> =
            (0..is.n).map(|img| (0..is.c).map(|c| input.plane(img, c)).collect()).collect();
        let mut out_planes: Vec<Vec<Tensor2<f32>>> =
            (0..is.n).map(|_| (0..ks.n).map(|_| Tensor2::zeros(out_h, out_w)).collect()).collect();

        let (schedule, kernel_bytes_loaded, required_bandwidth) = self.schedule(is, ks, tiles);

        let mut dt: Pipeline<DtItem> = Pipeline::new(self.config.dt_latency);
        let mut pe: Pipeline<PeItem> =
            Pipeline::new(self.config.mult_latency + self.config.inv_latency);
        // Post-inverse channel accumulators (Fig. 7), keyed by
        // (image, kernel group, tile); each entry counts channels seen
        // and holds one partial output tile per kernel of the group.
        type AccSlot = (usize, Vec<Tensor2<f32>>);
        let mut acc: HashMap<(usize, usize, usize), AccSlot> = HashMap::new();

        let mut cycles: u64 = 0;
        let mut issues: u64 = 0;
        let mut stall_cycles: u64 = 0;
        let mut outputs_written: u64 = 0;
        let mut busy_pe_cycles: u64 = 0;

        let mut feed = schedule.into_iter();
        let mut exhausted = false;
        loop {
            // 1. Image buffer -> data transform.
            let dt_in = match feed.next() {
                Some(FeedEvent::Work { img, k_lo, active, tile, channel }) => {
                    issues += 1;
                    let ty = tile / tiles_x;
                    let tx = tile % tiles_x;
                    let top = (ty * m) as isize - pad as isize;
                    let left = (tx * m) as isize - pad as isize;
                    let d = planes[img][channel].padded_tile(top, left, n);
                    Some(DtItem {
                        img,
                        k_lo,
                        active,
                        tile,
                        channel,
                        u: self.algo.transform_data(&d),
                    })
                }
                Some(FeedEvent::Bubble) => {
                    stall_cycles += 1;
                    None
                }
                None => {
                    exhausted = true;
                    None
                }
            };
            if exhausted && dt.is_empty() && pe.is_empty() {
                break;
            }
            cycles += 1;

            // 2. Data transform -> PE array (multiply + inverse).
            let pe_in = dt.tick(dt_in).map(|item| {
                busy_pe_cycles += item.active as u64;
                let ys = (item.k_lo..item.k_lo + item.active)
                    .map(|k| {
                        let prod = item.u.hadamard(&v_bank[k][item.channel]);
                        self.algo.inverse_transform(&prod)
                    })
                    .collect();
                PeItem {
                    img: item.img,
                    k_lo: item.k_lo,
                    tile: item.tile,
                    channel: item.channel,
                    ys,
                }
            });

            // 3. PE array -> accumulation buffers -> output registers.
            if let Some(item) = pe.tick(pe_in) {
                let key = (item.img, item.k_lo, item.tile);
                let slot = acc.entry(key).or_insert_with(|| {
                    (0, item.ys.iter().map(|y| Tensor2::zeros(y.rows(), y.cols())).collect())
                });
                for (sum, y) in slot.1.iter_mut().zip(&item.ys) {
                    for (dst, src) in sum.as_mut_slice().iter_mut().zip(y.as_slice()) {
                        *dst += *src;
                    }
                }
                slot.0 += 1;
                debug_assert_eq!(slot.0, item.channel + 1, "channel arrivals must be in order");
                if slot.0 == is.c {
                    let (_, sums) = acc.remove(&key).expect("slot exists");
                    let ty = item.tile / tiles_x;
                    let tx = item.tile % tiles_x;
                    for (pi, sum) in sums.iter().enumerate() {
                        out_planes[item.img][item.k_lo + pi].write_tile(ty * m, tx * m, sum);
                        let h_clip = (out_h - (ty * m).min(out_h)).min(m);
                        let w_clip = (out_w - (tx * m).min(out_w)).min(m);
                        outputs_written += (h_clip * w_clip) as u64;
                    }
                }
            }
        }

        let mut output = Tensor4::zeros(Shape4 { n: is.n, c: ks.n, h: out_h, w: out_w });
        for (img, planes) in out_planes.into_iter().enumerate() {
            for (k, plane) in planes.into_iter().enumerate() {
                output.set_plane(img, k, &plane);
            }
        }

        let report = SimReport {
            cycles,
            issues,
            stall_cycles,
            outputs_written,
            kernel_bytes_loaded,
            required_bandwidth,
            pe_utilization: busy_pe_cycles as f64 / (cycles.max(1) * p as u64) as f64,
        };
        (output, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_baselines::spatial_convolve;
    use wino_tensor::{ErrorStats, SplitMix64};

    fn engine(m: usize, p: usize) -> WinogradEngine {
        WinogradEngine::new(EngineConfig::proposed(WinogradParams::new(m, 3).unwrap(), p)).unwrap()
    }

    fn random_case(
        rng: &mut SplitMix64,
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        k: usize,
    ) -> (Tensor4<f32>, Tensor4<f32>) {
        let input =
            Tensor4::from_fn(Shape4 { n, c, h, w }, |_, _, _, _| rng.uniform_f32(-1.0, 1.0));
        let kernels = Tensor4::from_fn(Shape4 { n: k, c, h: 3, w: 3 }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        (input, kernels)
    }

    #[test]
    fn output_matches_spatial_convolution() {
        let mut rng = SplitMix64::new(1);
        for (m, p) in [(2, 2), (3, 2), (4, 3)] {
            let (input, kernels) = random_case(&mut rng, 2, 3, 10, 9, 5);
            let eng = engine(m, p);
            let (out, report) = eng.run_layer(&input, &kernels, 1);
            let refr = spatial_convolve(&input, &kernels, 1);
            let stats = ErrorStats::between(out.as_slice(), refr.as_slice());
            assert!(stats.within_abs(1e-4), "F({m},3) P={p}: {stats}");
            assert_eq!(report.stall_cycles, 0);
        }
    }

    #[test]
    fn cycle_count_matches_eq9() {
        let mut rng = SplitMix64::new(2);
        // K divisible by P, dims divisible by m: the clean Eq. 9 case.
        let (input, kernels) = random_case(&mut rng, 1, 4, 8, 8, 6);
        let eng = engine(2, 3);
        let (_, report) = eng.run_layer(&input, &kernels, 1);
        // tiles = (8/2)^2 = 16, groups = 2, C = 4: issues = 2*16*4 = 128.
        assert_eq!(report.issues, 128);
        let dp = eng.config().pipeline_depth() as u64;
        assert_eq!(report.cycles, 128 + dp - 1, "Eq. 9: issues + Dp - 1");
        assert_eq!(report.cycles, eng.predicted_cycles(input.shape(), 6, 1));
    }

    #[test]
    fn cycle_count_with_ragged_groups_and_tiles() {
        let mut rng = SplitMix64::new(3);
        // K = 5 with P = 3 -> groups of 3 and 2; 7x9 output with m = 3.
        let (input, kernels) = random_case(&mut rng, 1, 2, 7, 9, 5);
        let eng = engine(3, 3);
        let (out, report) = eng.run_layer(&input, &kernels, 1);
        assert_eq!(report.cycles, eng.predicted_cycles(input.shape(), 5, 1));
        let refr = spatial_convolve(&input, &kernels, 1);
        let stats = ErrorStats::between(out.as_slice(), refr.as_slice());
        assert!(stats.within_abs(1e-4), "{stats}");
        // Ragged group leaves one PE idle in the second group.
        assert!(report.pe_utilization < 1.0);
    }

    #[test]
    fn per_pe_architecture_same_timing_different_resources() {
        let mut rng = SplitMix64::new(4);
        let (input, kernels) = random_case(&mut rng, 1, 2, 6, 6, 4);
        let params = WinogradParams::new(2, 3).unwrap();
        let ours = WinogradEngine::new(EngineConfig::proposed(params, 2)).unwrap();
        let refr = WinogradEngine::new(EngineConfig::reference(params, 2)).unwrap();
        let (_, rep_ours) = ours.run_layer(&input, &kernels, 1);
        let (_, rep_ref) = refr.run_layer(&input, &kernels, 1);
        // Sec. V-B: "our design ... gives the same latency ... as [3]".
        assert_eq!(rep_ours.cycles, rep_ref.cycles);
        // But [3] burns more logic (Table I).
        assert!(ours.resources().luts < refr.resources().luts);
        assert_eq!(ours.resources().dsps, refr.resources().dsps);
    }

    #[test]
    fn limited_bandwidth_inserts_stalls() {
        let mut rng = SplitMix64::new(5);
        let (input, kernels) = random_case(&mut rng, 1, 2, 6, 6, 8);
        let params = WinogradParams::new(2, 3).unwrap();
        let mut config = EngineConfig::proposed(params, 2);
        config.kernel_bandwidth = 1.0; // 1 byte/cycle: absurdly slow
        let slow = WinogradEngine::new(config).unwrap();
        let (out, report) = slow.run_layer(&input, &kernels, 1);
        assert!(report.stall_cycles > 0, "1 B/cycle must stall");
        assert!(report.required_bandwidth > 1.0);
        // Stalls never corrupt data.
        let refr = spatial_convolve(&input, &kernels, 1);
        let stats = ErrorStats::between(out.as_slice(), refr.as_slice());
        assert!(stats.within_abs(1e-4), "{stats}");
    }

    #[test]
    fn adequate_bandwidth_never_stalls() {
        let mut rng = SplitMix64::new(6);
        let (input, kernels) = random_case(&mut rng, 1, 3, 8, 8, 4);
        let params = WinogradParams::new(2, 3).unwrap();
        let mut config = EngineConfig::proposed(params, 2);
        // First measure the requirement, then configure just above it.
        let probe = WinogradEngine::new(config.clone()).unwrap();
        let (_, rep) = probe.run_layer(&input, &kernels, 1);
        config.kernel_bandwidth = rep.required_bandwidth * 1.01;
        let eng = WinogradEngine::new(config).unwrap();
        let (_, rep2) = eng.run_layer(&input, &kernels, 1);
        // Only the very first fill (nothing to hide behind) may stall.
        let first_fill =
            (rep2.kernel_bytes_loaded as f64 / 2.0 / eng.config().kernel_bandwidth).ceil() as u64;
        assert!(rep2.stall_cycles <= first_fill, "{} > {first_fill}", rep2.stall_cycles);
    }

    #[test]
    fn outputs_written_counts_clipped_tiles_once() {
        let mut rng = SplitMix64::new(7);
        let (input, kernels) = random_case(&mut rng, 1, 1, 5, 5, 1);
        let eng = engine(4, 1); // 5x5 output, m=4: tiles cover 8x8, clipped
        let (_, report) = eng.run_layer(&input, &kernels, 1);
        assert_eq!(report.outputs_written, 25);
    }

    #[test]
    fn batch_processing_multiplies_issues() {
        let mut rng = SplitMix64::new(8);
        let (single, kernels) = random_case(&mut rng, 1, 2, 6, 6, 2);
        let (double, _) = random_case(&mut rng, 2, 2, 6, 6, 2);
        let eng = engine(2, 2);
        let (_, r1) = eng.run_layer(&single, &kernels, 1);
        let (_, r2) = eng.run_layer(&double, &kernels, 1);
        assert_eq!(r2.issues, 2 * r1.issues);
        assert!(r2.cycles > r1.cycles);
        assert_eq!(r2.cycles, eng.predicted_cycles(double.shape(), 2, 1));
    }

    #[test]
    fn throughput_per_pe_is_m_squared_per_cycle() {
        // Sec. IV-A: 9 outputs per clock per PE for F(3x3,3x3) at steady
        // state. With C channels accumulated, the engine writes m^2
        // outputs per PE every C cycles => m^2/C per cycle per PE; with
        // C = 1 the full rate is visible.
        let mut rng = SplitMix64::new(9);
        let (input, kernels) = random_case(&mut rng, 1, 1, 12, 12, 2);
        let eng = engine(3, 2);
        let (_, report) = eng.run_layer(&input, &kernels, 1);
        // 16 tiles * 9 outputs * 2 kernels, in ~16 + Dp cycles.
        assert_eq!(report.outputs_written, 16 * 9 * 2);
        let steady = report.cycles - eng.config().pipeline_depth() as u64 + 1;
        assert_eq!(steady, 16, "one tile issue per cycle");
    }

    #[test]
    fn latency_seconds_uses_frequency() {
        let report = SimReport {
            cycles: 200_000_000,
            issues: 0,
            stall_cycles: 0,
            outputs_written: 0,
            kernel_bytes_loaded: 0,
            required_bandwidth: 0.0,
            pe_utilization: 0.0,
        };
        assert!((report.latency_seconds(200e6) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_rejected() {
        let params = WinogradParams::new(2, 3).unwrap();
        let mut config = EngineConfig::proposed(params, 1);
        config.pe_count = 0;
        let _ = WinogradEngine::new(config);
    }
}
