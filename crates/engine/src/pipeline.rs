//! A generic clocked pipeline register chain.
//!
//! Every stage of the Winograd engine (data transform, element-wise
//! multiply, inverse transform) is pipelined with initiation interval 1
//! (Sec. IV-A: "the three stages are pipelined to optimize the
//! throughput"). [`Pipeline`] models exactly that: a fixed-depth chain of
//! registers advanced once per clock edge.

use std::collections::VecDeque;

/// A `depth`-stage pipeline carrying items of type `T`.
///
/// One [`tick`](Pipeline::tick) is one clock edge: the input enters stage
/// 0 and the item in the final stage (if any) retires. A bubble (`None`)
/// input propagates like any other slot, so latency is always exactly
/// `depth` cycles.
///
/// ```
/// use wino_engine::Pipeline;
///
/// let mut p = Pipeline::new(3);
/// assert_eq!(p.tick(Some(1)), None);
/// assert_eq!(p.tick(Some(2)), None);
/// assert_eq!(p.tick(Some(3)), None);
/// assert_eq!(p.tick(Some(4)), Some(1)); // retires after `depth` ticks
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline<T> {
    stages: VecDeque<Option<T>>,
}

impl<T> Pipeline<T> {
    /// Creates an empty pipeline with `depth` register stages.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0` (combinational paths are modelled by the
    /// caller, not by a zero-length pipeline).
    pub fn new(depth: usize) -> Pipeline<T> {
        assert!(depth > 0, "pipeline depth must be at least 1");
        let mut stages = VecDeque::with_capacity(depth);
        for _ in 0..depth {
            stages.push_back(None);
        }
        Pipeline { stages }
    }

    /// Number of register stages.
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Advances one clock: shifts every stage forward, inserts `input`,
    /// returns the retiring item.
    pub fn tick(&mut self, input: Option<T>) -> Option<T> {
        self.stages.push_front(input);
        self.stages.pop_back().flatten()
    }

    /// `true` when no stage holds an item (drained).
    pub fn is_empty(&self) -> bool {
        self.stages.iter().all(|s| s.is_none())
    }

    /// Number of occupied stages.
    pub fn occupancy(&self) -> usize {
        self.stages.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_equals_depth() {
        // An item inserted on tick t retires on tick t + depth (one tick
        // per register stage).
        for depth in 1..6 {
            let mut p = Pipeline::new(depth);
            let mut out = None;
            for cycle in 0.. {
                out = p.tick(if cycle == 0 { Some(99) } else { None });
                if out.is_some() {
                    assert_eq!(cycle, depth, "item must retire depth ticks after insertion");
                    break;
                }
                assert!(cycle < 10, "item never retired");
            }
            assert_eq!(out, Some(99));
        }
    }

    #[test]
    fn initiation_interval_is_one() {
        let mut p = Pipeline::new(2);
        let mut retired = Vec::new();
        for i in 0..5 {
            if let Some(x) = p.tick(Some(i)) {
                retired.push(x);
            }
        }
        // After 5 ticks through depth 2, items 0..3 have retired in order.
        assert_eq!(retired, vec![0, 1, 2]);
    }

    #[test]
    fn bubbles_propagate() {
        let mut p = Pipeline::new(2);
        assert_eq!(p.tick(Some(1)), None);
        assert_eq!(p.tick(None), None);
        assert_eq!(p.tick(Some(2)), Some(1));
        assert_eq!(p.tick(None), None); // the bubble retires invisibly
        assert_eq!(p.tick(None), Some(2));
        assert!(p.is_empty());
    }

    #[test]
    fn occupancy_tracks_items() {
        let mut p = Pipeline::<u32>::new(4);
        assert_eq!(p.occupancy(), 0);
        p.tick(Some(1));
        p.tick(Some(2));
        assert_eq!(p.occupancy(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.depth(), 4);
    }

    #[test]
    #[should_panic(expected = "depth must be at least 1")]
    fn zero_depth_rejected() {
        let _ = Pipeline::<u8>::new(0);
    }
}
