//! Structural introspection of the engine — the data behind Figs. 4 and 5.
//!
//! Fig. 4 compares the proposed 1-D `F(3, 3)` convolution engine with the
//! one of Podili et al. [3]: identical multiply + inverse datapath, but
//! [3] embeds the data transform in every engine. Fig. 5 shows the 2-D PE
//! as `n` nested 1-D engines plus a second-dimension inverse transform.
//! These functions expose the exact operator counts of both.

use wino_core::{
    matrix_apply_ops, CostModel, OpCount, TransformError, TransformSet, WinogradParams,
};
use wino_fpga::Architecture;

/// Operator inventory of one 1-D Winograd convolution engine (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Structure1d {
    /// fp32 multipliers in the element-wise stage (`n`).
    pub multipliers: usize,
    /// Adds/shift-adds of the 1-D inverse transform.
    pub inverse_ops: OpCount,
    /// Adds/shift-adds of the 1-D data transform *inside this engine*
    /// (zero in the proposed design, which hoists it out).
    pub data_transform_ops: OpCount,
}

impl Structure1d {
    /// Total FLOP-costing operators in the engine.
    pub fn total_flops(&self) -> u64 {
        self.multipliers as u64 + self.inverse_ops.flops() + self.data_transform_ops.flops()
    }
}

/// Structural summary of one 2-D PE (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeStructure {
    /// Nested 1-D engines (`n`, one per transformed row).
    pub nested_1d_engines: usize,
    /// Total fp32 multipliers (`n²`).
    pub multipliers: usize,
    /// Outputs produced per clock at steady state (`m²`).
    pub outputs_per_cycle: usize,
    /// Adds of the second-dimension inverse transform (`m` applications
    /// of the 1-D inverse over the first dimension's outputs).
    pub second_dim_inverse_ops: OpCount,
}

/// Builds the Fig. 4 inventory for one architecture.
///
/// ```
/// use wino_core::WinogradParams;
/// use wino_engine::structure_1d;
/// use wino_fpga::Architecture;
///
/// // Fig. 4: the shared-transform engine drops the per-engine data
/// // transform the per-PE design carries.
/// let p = WinogradParams::new(3, 3)?;
/// let ours = structure_1d(p, Architecture::SharedTransform)?;
/// let theirs = structure_1d(p, Architecture::PerPeTransform)?;
/// assert_eq!(ours.multipliers, 5);
/// assert_eq!(ours.data_transform_ops.flops(), 0);
/// assert!(ours.total_flops() < theirs.total_flops());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Propagates transform-generation failures.
pub fn structure_1d(
    params: WinogradParams,
    arch: Architecture,
) -> Result<Structure1d, TransformError> {
    let set = TransformSet::generate(params)?;
    let inverse_ops = matrix_apply_ops(set.at(), CostModel::ShiftFree);
    let data_ops = matrix_apply_ops(set.bt(), CostModel::ShiftFree);
    Ok(Structure1d {
        multipliers: params.input_tile(),
        inverse_ops,
        data_transform_ops: match arch {
            Architecture::SharedTransform => OpCount::default(),
            Architecture::PerPeTransform => data_ops,
        },
    })
}

/// Builds the Fig. 5 summary of a 2-D PE.
///
/// ```
/// use wino_core::WinogradParams;
/// use wino_engine::pe_structure;
///
/// // Sec. IV-A: the F(3x3, 3x3) PE has 25 multipliers and emits 9
/// // outputs per cycle from 5 nested 1-D engines.
/// let pe = pe_structure(WinogradParams::new(3, 3)?)?;
/// assert_eq!(pe.nested_1d_engines, 5);
/// assert_eq!(pe.multipliers, 25);
/// assert_eq!(pe.outputs_per_cycle, 9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Propagates transform-generation failures.
pub fn pe_structure(params: WinogradParams) -> Result<PeStructure, TransformError> {
    let set = TransformSet::generate(params)?;
    let inv_1d = matrix_apply_ops(set.at(), CostModel::ShiftFree);
    let m = params.m() as u64;
    Ok(PeStructure {
        nested_1d_engines: params.input_tile(),
        multipliers: params.mults_per_tile_2d(),
        outputs_per_cycle: params.outputs_per_tile_2d(),
        second_dim_inverse_ops: OpCount {
            adds: m * inv_1d.adds,
            mults: m * inv_1d.mults,
            shifts: m * inv_1d.shifts,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(m: usize) -> WinogradParams {
        WinogradParams::new(m, 3).unwrap()
    }

    #[test]
    fn fig4_ours_vs_podili_f33() {
        // Fig. 4: our F(3,3) 1-D engine drops the per-engine data
        // transform that [3] carries.
        let ours = structure_1d(params(3), Architecture::SharedTransform).unwrap();
        let theirs = structure_1d(params(3), Architecture::PerPeTransform).unwrap();
        assert_eq!(ours.multipliers, 5);
        assert_eq!(theirs.multipliers, 5);
        assert_eq!(ours.inverse_ops, theirs.inverse_ops);
        assert_eq!(ours.data_transform_ops.flops(), 0);
        assert!(theirs.data_transform_ops.flops() > 0);
        assert!(ours.total_flops() < theirs.total_flops());
    }

    #[test]
    fn fig5_pe_composition_f3x3() {
        // Sec. IV-A: F(3x3,3x3) PE = 25 multipliers, 9 outputs per cycle,
        // built from 5 nested 1-D engines (Fig. 5).
        let pe = pe_structure(params(3)).unwrap();
        assert_eq!(pe.nested_1d_engines, 5);
        assert_eq!(pe.multipliers, 25);
        assert_eq!(pe.outputs_per_cycle, 9);
        assert!(pe.second_dim_inverse_ops.adds > 0);
    }

    #[test]
    fn paper_ratios_vs_podilis_pe() {
        // Sec. IV-A: 9/4 = 2.25x throughput for 25/16 = 1.5625x mults.
        let ours = pe_structure(params(3)).unwrap();
        let podili = pe_structure(params(2)).unwrap();
        let thr = ours.outputs_per_cycle as f64 / podili.outputs_per_cycle as f64;
        let mul = ours.multipliers as f64 / podili.multipliers as f64;
        assert!((thr - 2.25).abs() < 1e-12);
        assert!((mul - 1.5625).abs() < 1e-12);
    }
}
