//! Property tests of the serving subsystem, driven entirely by a
//! virtual clock — no sleeps, no wall-clock dependence.
//!
//! Two properties carry the design:
//!
//! 1. **Batching never changes results.** Whatever batch splits the
//!    dynamic batcher chooses (arrival patterns, deadlines, caps and
//!    poll timing are all random here), every request's served output
//!    is bitwise equal to a direct solo run through the same prepared
//!    executor.
//! 2. **No reordering within a priority class.** Requests of one
//!    `(model, class)` pair leave the batcher in exactly their
//!    submission order, whatever interleaving of submissions, models,
//!    classes and polls happens around them.

use proptest::prelude::*;
use std::time::Duration;
use wino_core::{ConvShape, Workload};
use wino_exec::{ExecConfig, Schedule};
use wino_serve::{BatchConfig, Clock, DynamicBatcher, ModelEntry, Poll, Priority, VirtualClock};

/// A two-layer toy model (one Winograd, one strided-spatial layer) with
/// batch dimension `max_batch` — small enough that a proptest case
/// executes dozens of real convolutions in milliseconds.
fn toy_entry(max_batch: usize) -> ModelEntry {
    let mut wl = Workload::new("toy", max_batch);
    wl.push("a", "G", ConvShape::same_padded(6, 6, 2, 3, 3));
    wl.push("b", "G", ConvShape { h: 6, w: 6, c: 3, k: 2, r: 3, stride: 2, pad: 1 });
    let schedule = Schedule::homogeneous(&wl, 2).unwrap();
    ModelEntry::new("toy".into(), wl, schedule, ExecConfig::with_threads(2), 9).unwrap()
}

fn priority_of(tag: u8) -> Priority {
    match tag % 3 {
        0 => Priority::High,
        1 => Priority::Normal,
        _ => Priority::Low,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property (1): for ANY batch split the batcher produces, served
    /// outputs are bitwise identical to direct solo execution.
    #[test]
    fn any_batcher_split_serves_bitwise_identical_outputs(
        seeds in prop::collection::vec(0u64..1_000, 8),
        arrivals_us in prop::collection::vec(0u64..400, 8),
        priorities in prop::collection::vec(0u8..3, 8),
        max_batch in 1usize..5,
        max_wait_us in 0u64..300,
        poll_step_us in 1u64..200,
    ) {
        let entry = toy_entry(4);
        let clock = VirtualClock::new();
        let config = BatchConfig {
            max_batch,
            max_wait: Duration::from_micros(max_wait_us),
            queue_capacity: 64,
        };
        let mut batcher: DynamicBatcher<u64> =
            DynamicBatcher::with_caps(vec![entry.max_batch()], config);

        // Submit along the (virtual) arrival schedule, polling as we
        // go so the batcher sees many different queue depths.
        let mut order: Vec<(u64, Duration)> = arrivals_us
            .iter()
            .map(|&us| Duration::from_micros(us))
            .zip(seeds.iter().copied())
            .map(|(t, s)| (s, t))
            .collect();
        order.sort_by_key(|&(_, t)| t);

        let mut batches = Vec::new();
        for (i, &(seed, at)) in order.iter().enumerate() {
            clock.advance_to(at);
            batcher.submit(0, priority_of(priorities[i]), seed, clock.now()).unwrap();
            if let Poll::Ready(batch) = batcher.poll(clock.now()) {
                batches.push(batch);
            }
        }
        // Keep polling (advancing virtual time) until drained.
        let mut guard = 0;
        while !batcher.is_empty() {
            clock.advance(Duration::from_micros(poll_step_us));
            while let Poll::Ready(batch) = batcher.poll(clock.now()) {
                batches.push(batch);
            }
            guard += 1;
            prop_assert!(guard < 10_000, "batcher failed to drain");
        }

        // No admitted request was dropped or duplicated...
        let served: usize = batches.iter().map(|b| b.requests.len()).sum();
        prop_assert_eq!(served, order.len());
        // ...no batch exceeded the model's batch dimension...
        for batch in &batches {
            prop_assert!(batch.requests.len() <= entry.max_batch());
        }
        // ...and every request's batched output equals its solo run,
        // bitwise, regardless of who shared the batch.
        for batch in &batches {
            let seeds: Vec<u64> = batch.requests.iter().map(|r| r.payload).collect();
            let outputs = entry.infer_batch(&seeds);
            for (&seed, got) in seeds.iter().zip(&outputs) {
                let solo = entry.infer_one(seed);
                prop_assert!(got == &solo, "seed {} diverged in batch {:?}", seed, seeds);
            }
        }
    }

    /// Property (2): within one (model, priority-class) pair, requests
    /// leave the batcher in exactly their submission order.
    #[test]
    fn no_reordering_within_a_priority_class(
        all_submissions in prop::collection::vec((0usize..3, 0u8..3, 0u64..500), 24),
        count in 1usize..25,
        max_batch in 1usize..6,
        max_wait_us in 0u64..400,
        poll_every in 1usize..6,
        poll_step_us in 1u64..300,
    ) {
        let submissions = &all_submissions[..count.min(all_submissions.len())];
        let clock = VirtualClock::new();
        let config = BatchConfig {
            max_batch,
            max_wait: Duration::from_micros(max_wait_us),
            queue_capacity: submissions.len().max(1),
        };
        let mut batcher: DynamicBatcher<u64> = DynamicBatcher::new(3, config);

        let mut ordered = submissions.to_vec();
        ordered.sort_by_key(|&(_, _, t)| t);

        // seq number of each submission, keyed by (model, class), in
        // submission order — the order that must be preserved.
        let mut expected: Vec<Vec<Vec<u64>>> = vec![vec![Vec::new(); 3]; 3];
        let mut released: Vec<Vec<Vec<u64>>> = vec![vec![Vec::new(); 3]; 3];

        let drain =
            |batcher: &mut DynamicBatcher<u64>, released: &mut Vec<Vec<Vec<u64>>>, now| {
                while let Poll::Ready(batch) = batcher.poll(now) {
                    for item in &batch.requests {
                        let class = match item.priority {
                            Priority::High => 0,
                            Priority::Normal => 1,
                            Priority::Low => 2,
                        };
                        released[batch.model][class].push(item.seq);
                    }
                }
            };

        for (i, &(model, tag, at_us)) in ordered.iter().enumerate() {
            clock.advance_to(Duration::from_micros(at_us));
            let seq = batcher
                .submit(model, priority_of(tag), i as u64, clock.now())
                .unwrap();
            expected[model][usize::from(tag % 3)].push(seq);
            if i % poll_every == 0 {
                drain(&mut batcher, &mut released, clock.now());
            }
        }
        let mut guard = 0;
        while !batcher.is_empty() {
            clock.advance(Duration::from_micros(poll_step_us));
            drain(&mut batcher, &mut released, clock.now());
            guard += 1;
            prop_assert!(guard < 10_000, "batcher failed to drain");
        }

        // FIFO within every (model, class): the released seq list is
        // exactly the submitted seq list, same order.
        for model in 0..3 {
            for class in 0..3 {
                prop_assert_eq!(
                    &released[model][class],
                    &expected[model][class],
                    "model {} class {} reordered",
                    model,
                    class
                );
            }
        }
    }
}
