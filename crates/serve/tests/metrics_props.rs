//! Property tests pinning the latency histogram's accuracy contract:
//! a quantile reported from log₂ buckets (as the containing bucket's
//! midpoint) stays within a factor of 2 of the exact sample quantile —
//! in BOTH directions — for any sample set of ≥ 1 µs latencies.
//!
//! Why ≥ 1 µs: bucket 0 collapses all sub-microsecond samples to a
//! 0.5 µs midpoint, where no relative bound is possible (a 1 ns sample
//! would be over-reported 500×). Serving latencies are far above this.

use proptest::prelude::*;
use std::time::Duration;
use wino_serve::LatencyHistogram;

/// The exact `q`-quantile of `samples` under the histogram's own rank
/// rule (`rank = ceil(q·n)`, clamped to ≥ 1), computed from the sorted
/// samples directly.
fn exact_quantile(samples: &[u64], q: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For every sample set and every quantile, the histogram's answer
    /// is within 2× of the exact answer — the ≤2× relative-error bound
    /// the midpoint read-out guarantees (the true ratio is even tighter,
    /// in [0.75, 1.5], because the exact sample shares the reported
    /// bucket; the pinned bound leaves headroom, not slack in the
    /// implementation).
    #[test]
    fn midpoint_quantiles_stay_within_2x_of_exact(
        samples_us in prop::collection::vec(1u64..10_000_000, 50),
        q_milli in 0u64..=1000,
    ) {
        let q = q_milli as f64 / 1000.0;
        let mut h = LatencyHistogram::new();
        for &us in &samples_us {
            h.record(Duration::from_micros(us));
        }
        let exact_us = exact_quantile(&samples_us, q) as f64;
        let reported_us = h.quantile(q).as_secs_f64() * 1e6;
        prop_assert!(
            reported_us <= 2.0 * exact_us && exact_us <= 2.0 * reported_us,
            "q={q}: reported {reported_us} µs vs exact {exact_us} µs exceeds 2x"
        );
    }

    /// The mean needs no bucket approximation at all (the histogram
    /// keeps an exact sum), so it must match to microsecond rounding.
    #[test]
    fn histogram_mean_is_exact_to_rounding(
        samples_us in prop::collection::vec(1u64..1_000_000, 20),
    ) {
        let mut h = LatencyHistogram::new();
        for &us in &samples_us {
            h.record(Duration::from_micros(us));
        }
        let exact = samples_us.iter().sum::<u64>() / samples_us.len() as u64;
        prop_assert_eq!(h.mean(), Duration::from_micros(exact));
    }
}
