//! Fault-injection tests: a worker that panics mid-batch must not lose
//! admitted requests. Innocent lanes are retried solo and served with
//! bitwise-correct outputs; the poisoned lane resolves to an explicit
//! [`RequestError`]; and [`Server::shutdown`] still drains and joins
//! cleanly — no hang, no poisoned-lock abort.

use std::time::Duration;
use wino_core::{ConvShape, Workload};
use wino_exec::{ExecConfig, Schedule};
use wino_serve::{BatchConfig, ModelRegistry, Priority, ServeConfig, Server};

fn toy_registry(max_batch: usize) -> ModelRegistry {
    let mut wl = Workload::new("toy", max_batch);
    wl.push("a", "G", ConvShape::same_padded(6, 6, 1, 2, 3));
    wl.push("b", "G", ConvShape { h: 6, w: 6, c: 2, k: 2, r: 3, stride: 2, pad: 1 });
    let schedule = Schedule::homogeneous(&wl, 2).unwrap();
    let mut registry = ModelRegistry::new();
    registry.register("toy", wl, schedule, ExecConfig::with_threads(1), 3).unwrap();
    registry
}

const POISON: u64 = 666;

/// Every admitted request resolves after a mid-batch panic: innocents
/// get solo-retried, bitwise-correct outputs; only the poisoned seed
/// fails, and it fails *explicitly*.
#[test]
fn mid_batch_panic_resolves_every_admitted_request() {
    let registry = toy_registry(8);
    let entry = registry.entry(0);
    let seeds: Vec<u64> = vec![1, 2, POISON, 3, 4, 5];
    let direct: Vec<_> = seeds.iter().map(|&s| entry.infer_one(s)).collect();
    let server = Server::start(
        registry,
        ServeConfig {
            shards: 2,
            workers: 2,
            inject_panic_seed: Some(POISON),
            batch: BatchConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(2),
                queue_capacity: 64,
            },
            ..ServeConfig::default()
        },
    );
    let priorities = [Priority::High, Priority::Normal, Priority::Low];
    let handles: Vec<_> = seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| server.submit(&"toy".into(), priorities[i % 3], seed).expect("admitted"))
        .collect();
    let mut failed = 0;
    for ((&seed, handle), solo) in seeds.iter().zip(&handles).zip(&direct) {
        match handle.wait() {
            Ok(result) => {
                assert_ne!(seed, POISON, "poisoned seed must not be served");
                assert_eq!(result.seed, seed);
                assert_eq!(&result.output, solo, "retried lane diverged from solo run");
            }
            Err(err) => {
                assert_eq!(seed, POISON, "innocent seed {seed} failed: {err}");
                assert_eq!(err.seed, POISON);
                assert_eq!(err.model, "toy".into());
                assert!(err.to_string().contains("fault"), "{err}");
                failed += 1;
            }
        }
    }
    assert_eq!(failed, 1, "exactly the poisoned request fails");
    let snap = server.shutdown();
    assert_eq!(snap.total_completed(), (seeds.len() - 1) as u64);
    assert_eq!(snap.total_failed(), 1);
}

/// Shutdown with a poisoned request still queued: the drain executes
/// the leftover batch, the panic is caught, every handle resolves, and
/// `shutdown()` returns (joins) instead of hanging or aborting on a
/// poisoned lock.
#[test]
fn shutdown_drains_and_joins_cleanly_after_a_fault() {
    let server = Server::start(
        toy_registry(8),
        ServeConfig {
            workers: 1,
            inject_panic_seed: Some(POISON),
            // An hour-long max_wait: nothing releases until shutdown's
            // drain, so the fault fires on the drain path itself.
            batch: BatchConfig {
                max_batch: 64,
                max_wait: Duration::from_secs(3600),
                queue_capacity: 64,
            },
            ..ServeConfig::default()
        },
    );
    let handles: Vec<_> = [7u64, POISON, 9]
        .iter()
        .map(|&seed| server.submit(&"toy".into(), Priority::Normal, seed).expect("admitted"))
        .collect();
    let snap = server.shutdown(); // must return: drain + join, no hang
    assert_eq!(snap.total_completed() + snap.total_failed(), 3);
    assert_eq!(snap.total_failed(), 1);
    let resolved: Vec<_> = handles.iter().map(|h| h.try_take().expect("resolved")).collect();
    assert!(resolved[0].is_ok() && resolved[2].is_ok());
    assert!(resolved[1].is_err(), "poisoned seed resolves to an explicit error");
}

/// The fault path leaves a black box behind: the always-on flight
/// recorder captures the panic-retry and failure events, the worker
/// dumps `flight_fault.json` into the configured directory, and
/// shutdown leaves `flight_drain.json` — both valid JSON.
#[test]
fn fault_leaves_a_black_box_dump_behind() {
    let dir = std::env::temp_dir().join(format!("wino_flight_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create dump dir");
    let server = Server::start(
        toy_registry(8),
        ServeConfig {
            workers: 1,
            inject_panic_seed: Some(POISON),
            batch: BatchConfig {
                max_batch: 2,
                max_wait: Duration::from_millis(2),
                queue_capacity: 64,
            },
            flight_dump_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    );
    let poisoned = server.submit(&"toy".into(), Priority::Normal, POISON).expect("admitted");
    let innocent = server.submit(&"toy".into(), Priority::Normal, 7).expect("admitted");
    assert!(poisoned.wait().is_err(), "poison must fail");
    innocent.wait().expect("innocent served");
    // The in-memory black box is readable on a live server, dump
    // directory or not.
    let live = server.flight_json("inspect");
    wino_obs::validate_json(&live).expect("live flight dump is valid JSON");
    assert!(live.contains("\"cause\": \"inspect\""), "{live}");
    server.shutdown();
    // Workers are joined: both the fault dump and the shutdown drain
    // dump are complete on disk.
    for (file, cause) in [("flight_fault.json", "fault"), ("flight_drain.json", "drain")] {
        let text = std::fs::read_to_string(dir.join(file))
            .unwrap_or_else(|e| panic!("missing black box {file}: {e}"));
        wino_obs::validate_json(&text).unwrap_or_else(|e| panic!("{file} invalid: {e}"));
        assert!(text.contains(&format!("\"cause\": \"{cause}\"")), "{file} lacks its cause");
        assert!(text.contains("\"panic-retry\""), "{file} lost the panic-retry event");
        assert!(text.contains("\"failed\""), "{file} lost the failure event");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Repeated faults on a continuously-batched, multi-shard server:
/// whatever batch the poison lands in (initial lanes or a mid-flight
/// joiner), the accounting invariant holds — every submission is
/// resolved, failures are counted, and the server survives to serve
/// correct traffic afterwards.
#[test]
fn server_keeps_serving_correctly_after_repeated_faults() {
    let registry = toy_registry(4);
    let direct = registry.entry(0).infer_one(42);
    let server = Server::start(
        registry,
        ServeConfig {
            shards: 2,
            workers: 1,
            continuous: true,
            inject_panic_seed: Some(POISON),
            batch: BatchConfig {
                // Release at 1: later same-model arrivals join at layer
                // boundaries when a worker is mid-batch.
                max_batch: 1,
                max_wait: Duration::from_micros(100),
                queue_capacity: 64,
            },
            ..ServeConfig::default()
        },
    );
    for round in 0..3 {
        let poisoned = server.submit(&"toy".into(), Priority::Normal, POISON).expect("admitted");
        let innocents: Vec<_> = (0..4u64)
            .map(|i| {
                server.submit(&"toy".into(), Priority::Normal, round * 10 + i).expect("admitted")
            })
            .collect();
        assert!(poisoned.wait().is_err(), "round {round}: poison must fail");
        for h in innocents {
            h.wait().unwrap_or_else(|e| panic!("round {round}: innocent failed: {e}"));
        }
    }
    // The pool is intact: fresh traffic is still served bitwise.
    let h = server.submit(&"toy".into(), Priority::High, 42).expect("admitted");
    assert_eq!(h.wait().expect("served").output, direct);
    let snap = server.shutdown();
    assert_eq!(snap.total_failed(), 3);
    assert_eq!(snap.total_completed(), 13);
}
