//! Property tests of the *sharded* serving layer — home routing, work
//! stealing and continuous batching — driven entirely by a virtual
//! clock so every case is deterministic and shrinkable.
//!
//! The invariants under test generalize the single-queue ones in
//! `serve_props.rs` to arbitrary shard counts, steal schedules and
//! mid-batch admission points:
//!
//! 1. **Admitted ⇒ resolved, exactly once.** However polls, steals and
//!    drains interleave, every submitted request leaves the shard set
//!    in exactly one released batch.
//! 2. **No reordering within a (model, priority-class) pair**, even
//!    when idle shards steal another shard's released batches.
//! 3. **Continuous batching never changes results.** Whatever layer
//!    boundaries new requests join at, every lane's output is bitwise
//!    equal to a solo run.

use proptest::prelude::*;
use std::time::Duration;
use wino_core::{ConvShape, Workload};
use wino_exec::{ExecConfig, Schedule};
use wino_serve::{BatchConfig, Clock, ModelEntry, Priority, ShardPoll, ShardSet, VirtualClock};

/// A two-layer toy model (one Winograd, one strided-spatial layer) —
/// small enough that a proptest case runs dozens of real convolutions
/// in milliseconds.
fn toy_entry(max_batch: usize) -> ModelEntry {
    let mut wl = Workload::new("toy", max_batch);
    wl.push("a", "G", ConvShape::same_padded(6, 6, 2, 3, 3));
    wl.push("b", "G", ConvShape { h: 6, w: 6, c: 3, k: 2, r: 3, stride: 2, pad: 1 });
    let schedule = Schedule::homogeneous(&wl, 2).unwrap();
    ModelEntry::new("toy".into(), wl, schedule, ExecConfig::with_threads(2), 9).unwrap()
}

fn priority_of(tag: u8) -> Priority {
    match tag % 3 {
        0 => Priority::High,
        1 => Priority::Normal,
        _ => Priority::Low,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariants (1) and (2) over the raw shard set: any interleaving
    /// of submissions, per-shard polls (with or without stealing) and
    /// a final shutdown-style drain resolves every request exactly
    /// once, in class order, within the batch caps, and — with
    /// stealing off — only ever from a model's home shard.
    #[test]
    fn any_steal_schedule_resolves_every_request_in_class_order(
        shard_count in 1usize..5,
        steal in any::<bool>(),
        all_submissions in prop::collection::vec((0usize..3, 0u8..3, 0u64..500), 24),
        count in 1usize..25,
        polls in prop::collection::vec((0usize..16, 1u64..300), 48),
        max_batch in 1usize..5,
        max_wait_us in 0u64..300,
    ) {
        let submissions = &all_submissions[..count.min(all_submissions.len())];
        let clock = VirtualClock::new();
        let config = BatchConfig {
            max_batch,
            max_wait: Duration::from_micros(max_wait_us),
            queue_capacity: submissions.len().max(1),
        };
        let caps = vec![4usize, 3, 2];
        let set: ShardSet<u64> = ShardSet::new(shard_count, caps.clone(), config, steal);

        let mut ordered = submissions.to_vec();
        ordered.sort_by_key(|&(_, _, at)| at);

        // Submitted/released seqs keyed by (model, class), in order.
        let mut expected: Vec<Vec<Vec<u64>>> = vec![vec![Vec::new(); 3]; 3];
        let mut released: Vec<Vec<Vec<u64>>> = vec![vec![Vec::new(); 3]; 3];
        let mut batches = 0usize;
        let mut served = 0usize;

        let record = |batch: &wino_serve::Batch<u64>,
                          released: &mut Vec<Vec<Vec<u64>>>|
         -> Result<(), TestCaseError> {
            prop_assert!(
                batch.requests.len() <= caps[batch.model].min(max_batch),
                "batch of {} exceeds cap for model {}",
                batch.requests.len(),
                batch.model
            );
            for item in &batch.requests {
                released[batch.model][item.priority.index()].push(item.seq);
            }
            Ok(())
        };

        let mut poll_at = 0usize;
        for (i, &(model, tag, at_us)) in ordered.iter().enumerate() {
            clock.advance_to(Duration::from_micros(at_us));
            let seq = set
                .submit(model, priority_of(tag), i as u64, clock.now())
                .unwrap();
            expected[model][usize::from(tag % 3)].push(seq);
            // Interleave a poll step from the random schedule.
            if let Some(&(pick, advance_us)) = polls.get(poll_at) {
                poll_at += 1;
                clock.advance(Duration::from_micros(advance_us));
                let shard = pick % shard_count;
                if let ShardPoll::Ready { batch, from } = set.poll_at(shard, clock.now()) {
                    prop_assert!(steal || from == shard, "non-steal poll crossed shards");
                    prop_assert!(
                        steal || set.home(batch.model) == shard,
                        "model {} released away from home without stealing",
                        batch.model
                    );
                    batches += 1;
                    served += batch.requests.len();
                    record(&batch, &mut released)?;
                }
            }
        }
        // Keep running the poll schedule until it is exhausted...
        for &(pick, advance_us) in &polls[poll_at.min(polls.len())..] {
            clock.advance(Duration::from_micros(advance_us));
            if let ShardPoll::Ready { batch, .. } = set.poll_at(pick % shard_count, clock.now()) {
                batches += 1;
                served += batch.requests.len();
                record(&batch, &mut released)?;
            }
        }
        // ...then finish with the shutdown-style drain, which ignores
        // deadlines and sweeps every shard.
        while let Some(batch) = set.drain_one(clock.now()) {
            batches += 1;
            served += batch.requests.len();
            record(&batch, &mut released)?;
        }

        // (1) Exactly once: everything admitted came out, nothing twice.
        prop_assert_eq!(served, ordered.len(), "released {} batches", batches);
        prop_assert!(set.is_empty());
        // Seqs are globally unique across shards (striding).
        let mut all_seqs: Vec<u64> =
            released.iter().flatten().flatten().copied().collect();
        all_seqs.sort_unstable();
        let before = all_seqs.len();
        all_seqs.dedup();
        prop_assert_eq!(all_seqs.len(), before, "duplicate seq released");
        // (2) FIFO within every (model, class), stealing or not.
        for model in 0..3 {
            for class in 0..3 {
                prop_assert_eq!(
                    &released[model][class],
                    &expected[model][class],
                    "model {} class {} reordered (steal={}, shards={})",
                    model,
                    class,
                    steal,
                    shard_count
                );
            }
        }
    }

    /// Invariant (3), plus (1) under continuous batching: requests that
    /// join an in-flight batch at arbitrary layer boundaries — after
    /// arriving mid-execution — are all served, exactly once, with
    /// outputs bitwise equal to solo runs.
    #[test]
    fn continuous_admission_points_serve_bitwise(
        shard_count in 1usize..4,
        all_seeds in prop::collection::vec(0u64..1_000, 13),
        seed_count in 3usize..14,
        tags in prop::collection::vec(0u8..3, 14),
        arrive_mid_batch in prop::collection::vec(any::<bool>(), 14),
        admit_caps in prop::collection::vec(0usize..7, 32),
        advance_us in 1u64..200,
    ) {
        let seeds = &all_seeds[..seed_count.min(all_seeds.len())];
        let entry = toy_entry(6);
        let cap = entry.max_batch();
        let clock = VirtualClock::new();
        let config = BatchConfig {
            max_batch: 2, // small releases leave a queue for joiners
            max_wait: Duration::from_micros(50),
            queue_capacity: seeds.len(),
        };
        let set: ShardSet<u64> = ShardSet::new(shard_count, vec![cap], config, true);

        // Split arrivals: some are queued up front, the rest arrive
        // "mid-batch" — submitted from inside the admission hook, as a
        // concurrent submitter would.
        let mut upfront: Vec<(u64, Priority)> = Vec::new();
        let mut late: Vec<(u64, Priority)> = Vec::new();
        for (i, &seed) in seeds.iter().enumerate() {
            let p = priority_of(tags[i % tags.len()]);
            if i > 0 && arrive_mid_batch[i % arrive_mid_batch.len()] {
                late.push((seed, p));
            } else {
                upfront.push((seed, p));
            }
        }
        for &(seed, p) in &upfront {
            set.submit(0, p, seed, clock.now()).unwrap();
        }

        let mut served: Vec<u64> = Vec::new();
        let mut boundary_no = 0usize;
        let mut guard = 0;
        while served.len() < seeds.len() {
            clock.advance(Duration::from_micros(advance_us));
            // A "mid-batch" arrival with no batch in flight to join
            // arrives between batches instead.
            if set.is_empty() {
                if let Some((seed, p)) = late.pop() {
                    set.submit(0, p, seed, clock.now()).unwrap();
                }
            }
            let shard = guard % shard_count;
            if let ShardPoll::Ready { batch, .. } = set.poll_at(shard, clock.now()) {
                let initial: Vec<u64> = batch.requests.iter().map(|r| r.payload).collect();
                let lanes = entry.infer_batch_continuous(initial, |&s| s, |boundary| {
                    // Mid-execution arrivals land in the queue first...
                    if let Some((seed, p)) = late.pop() {
                        set.submit(0, p, seed, clock.now()).unwrap();
                    }
                    // ...then the worker admits up to the free lanes,
                    // throttled by a random per-boundary budget.
                    let free = cap - boundary.lanes;
                    let budget = admit_caps[boundary_no % admit_caps.len()].min(free);
                    boundary_no += 1;
                    set.admit_into(0, budget).into_iter().map(|r| r.payload).collect()
                });
                for (seed, output) in lanes {
                    prop_assert!(
                        output == entry.infer_one(seed),
                        "seed {} diverged from its solo run",
                        seed
                    );
                    served.push(seed);
                }
            }
            guard += 1;
            prop_assert!(guard < 10_000, "shard set failed to drain ({}/{} served)",
                served.len(), seeds.len());
        }

        // Exactly once: the served multiset equals the submitted one.
        prop_assert!(late.is_empty());
        prop_assert!(set.is_empty());
        let mut want = seeds.to_vec();
        want.sort_unstable();
        served.sort_unstable();
        prop_assert_eq!(served, want);
    }
}
