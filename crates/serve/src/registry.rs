//! Model registry: workloads loaded behind stable IDs, schedules
//! pre-lowered, kernel banks pre-transformed.
//!
//! A [`ModelEntry`] owns a fully-prepared
//! [`NetworkExecutor`] — seeded weights, validated schedule, and (since
//! the executor caches [`PreparedPlan`](wino_exec::PreparedPlan)s) the
//! Winograd kernel banks already transformed and, for quantized
//! variants, already quantized. Serving a request therefore never pays
//! transform generation or the whole-bank kernel transform; it only
//! runs data through cached banks.
//!
//! The registry is engine-agnostic: every serving path runs through the
//! prepared-backend contract (`wino_exec::ConvBackend` behind each
//! cached plan), so a schedule mixing spatial, Winograd, and
//! overlap–save FFT engines registers and serves exactly like a
//! homogeneous one — FFT kernel *spectra* are precomputed at
//! registration the same way Winograd `V`-banks are, and the batched
//! and continuous-admission paths stay bitwise equal to solo runs.
//!
//! A request is identified by its *input seed*: the entry derives every
//! layer's single-image input deterministically from the seed (same
//! construction as `NetworkExecutor::layer_input`, per request), so any
//! two executions of the same `(model, seed)` pair — batched together
//! with strangers or alone — produce bitwise-identical outputs. That
//! determinism is what lets the serving tests assert byte equality
//! between the batcher's arbitrary coalescing and a direct run.

use std::fmt;
use wino_exec::{ExecConfig, NetworkExecutor, QuantConfig, Schedule, ScheduleError};
use wino_models::{model_zoo, shrink};
use wino_tensor::{Shape4, SplitMix64, Tensor4};

/// Stable identifier of a registered model variant, e.g. `vgg16d-f32`
/// or `tinycnn-q8`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelId(String);

impl ModelId {
    /// Wraps a string identifier.
    pub fn new(id: impl Into<String>) -> ModelId {
        ModelId(id.into())
    }

    /// The identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ModelId {
    fn from(s: &str) -> ModelId {
        ModelId::new(s)
    }
}

/// Errors building a [`ModelRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// Two models were registered under the same ID.
    DuplicateId(ModelId),
    /// The schedule did not validate against the workload.
    Schedule(ScheduleError),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateId(id) => write!(f, "model id '{id}' already registered"),
            RegistryError::Schedule(e) => write!(f, "schedule rejected: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<ScheduleError> for RegistryError {
    fn from(e: ScheduleError) -> RegistryError {
        RegistryError::Schedule(e)
    }
}

/// One request's finished inference: the per-layer outputs of its
/// single image.
#[derive(Debug, Clone, PartialEq)]
pub struct InferOutput {
    /// One batch-1 output tensor per layer, in execution order.
    pub layers: Vec<Tensor4<f32>>,
}

impl InferOutput {
    /// Sum of every output element across all layers — a cheap
    /// fingerprint for logging and load-test bookkeeping (the serving
    /// tests compare full tensors, not checksums).
    pub fn checksum(&self) -> f64 {
        self.layers.iter().map(|t| t.as_slice().iter().map(|&x| x as f64).sum::<f64>()).sum()
    }
}

/// A registered model variant: stable ID plus a fully-prepared
/// executor.
#[derive(Debug, Clone)]
pub struct ModelEntry {
    id: ModelId,
    executor: NetworkExecutor,
}

impl ModelEntry {
    /// Prepares `workload` under `schedule` behind `id`. All kernel
    /// banks are transformed here, once.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::Schedule`] when the schedule does not
    /// line up with the workload.
    pub fn new(
        id: ModelId,
        workload: wino_core::Workload,
        schedule: Schedule,
        config: ExecConfig,
        seed: u64,
    ) -> Result<ModelEntry, RegistryError> {
        let executor = NetworkExecutor::with_seed(workload, schedule, config, seed)?;
        Ok(ModelEntry { id, executor })
    }

    /// The model's stable identifier.
    pub fn id(&self) -> &ModelId {
        &self.id
    }

    /// The prepared executor (weights seeded, kernel banks cached).
    pub fn executor(&self) -> &NetworkExecutor {
        &self.executor
    }

    /// Clamps this entry's per-call execution fan-out to at most
    /// `budget` threads (see [`NetworkExecutor::clamp_threads`]).
    pub fn clamp_exec_threads(&mut self, budget: usize) {
        self.executor.clamp_threads(budget);
    }

    /// The largest batch one execution accepts — the workload's
    /// declared batch dimension, which is what the dynamic batcher
    /// coalesces up to.
    pub fn max_batch(&self) -> usize {
        self.executor.workload().batch().max(1)
    }

    /// Layer count of the model.
    pub fn layer_count(&self) -> usize {
        self.executor.workload().layers().len()
    }

    /// The deterministic single-image input of layer `layer` for the
    /// request identified by `seed`.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is out of range.
    pub fn request_input(&self, layer: usize, seed: u64) -> Tensor4<f32> {
        let s = self.executor.workload().layers()[layer].shape;
        let mut rng = SplitMix64::new(seed ^ ((layer as u64 + 1) << 32) ^ 0x5E7E_D0C5);
        Tensor4::from_fn(Shape4 { n: 1, c: s.c, h: s.h, w: s.w }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        })
    }

    /// Runs one request alone — the reference path the batched path is
    /// tested against, and the per-image serial baseline of the serving
    /// study.
    pub fn infer_one(&self, seed: u64) -> InferOutput {
        let layers = (0..self.layer_count())
            .map(|i| {
                let input = self.request_input(i, seed);
                self.executor.execute_layer(i, &input).expect("prepared plan executes")
            })
            .collect();
        InferOutput { layers }
    }

    /// Runs a coalesced batch of requests: for every layer, the
    /// requests' single-image inputs are stacked into one `(b, C, H, W)`
    /// tensor, executed through the cached bank in one call, and the
    /// output is split back per request.
    ///
    /// Because every Winograd work item is one `(image, tile-row)` pair
    /// and every spatial item one `(image, kernel)` plane — both
    /// reading only their own image with a fixed accumulation order —
    /// each request's slice of the batched output is **bitwise
    /// identical** to [`infer_one`](Self::infer_one) of the same seed,
    /// no matter who else shares the batch. The serving property tests
    /// pin this for arbitrary batcher splits.
    ///
    /// # Panics
    ///
    /// Panics when `seeds` is empty or exceeds
    /// [`max_batch`](Self::max_batch).
    pub fn infer_batch(&self, seeds: &[u64]) -> Vec<InferOutput> {
        let b = seeds.len();
        assert!(b > 0, "empty batch");
        assert!(b <= self.max_batch(), "batch {b} exceeds max {}", self.max_batch());
        self.infer_batch_continuous(seeds.to_vec(), |&s| s, |_| Vec::new())
            .into_iter()
            .map(|(_, output)| output)
            .collect()
    }

    /// Runs a batch with **continuous admission**: `admit` is consulted
    /// at every layer boundary of the main sweep
    /// ([`wino_exec::run_layers_admitting`]) and any lane it returns
    /// joins the in-flight batch there, executing the remaining layers
    /// with the group and catching up on the earlier ones afterwards.
    ///
    /// Lanes are an arbitrary caller type `L` (the server threads its
    /// response tickets straight through); `seed_of` maps a lane to the
    /// request seed its inputs derive from. Outputs come back per lane,
    /// initial lanes first, then admissions in admission order — each
    /// bitwise identical to [`infer_one`](Self::infer_one) of its seed
    /// regardless of the admission schedule (layer inputs are
    /// seed-derived, not chained, so per-lane layer order is free).
    ///
    /// The batch-dimension policy cap is the caller's job here: `admit`
    /// decides how many lanes to add, and the server bounds it by the
    /// model's [`max_batch`](Self::max_batch) minus the lanes in
    /// flight.
    ///
    /// # Panics
    ///
    /// Panics when `initial` is empty.
    pub fn infer_batch_continuous<L>(
        &self,
        initial: Vec<L>,
        seed_of: impl Fn(&L) -> u64,
        admit: impl FnMut(wino_exec::Boundary) -> Vec<L>,
    ) -> Vec<(L, InferOutput)> {
        assert!(!initial.is_empty(), "empty batch");
        let plans: Vec<wino_exec::PreparedPlan> =
            (0..self.layer_count()).map(|i| self.executor.prepared(i).clone()).collect();
        let threads = self.executor.config().threads;
        wino_exec::run_layers_admitting(
            &plans,
            threads,
            initial,
            |lane, layer| self.request_input(layer, seed_of(lane)),
            admit,
        )
        .into_iter()
        .map(|(lane, layers)| (lane, InferOutput { layers }))
        .collect()
    }
}

/// The model roster a [`Server`](crate::Server) serves: entries in
/// registration order, addressable by [`ModelId`] or dense index.
#[derive(Debug, Clone, Default)]
pub struct ModelRegistry {
    entries: Vec<ModelEntry>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Registers a model variant.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::DuplicateId`] when `id` is taken, or
    /// [`RegistryError::Schedule`] when the schedule does not validate.
    pub fn register(
        &mut self,
        id: impl Into<ModelId>,
        workload: wino_core::Workload,
        schedule: Schedule,
        config: ExecConfig,
        seed: u64,
    ) -> Result<(), RegistryError> {
        let id = id.into();
        if self.index_of(&id).is_some() {
            return Err(RegistryError::DuplicateId(id));
        }
        self.entries.push(ModelEntry::new(id, workload, schedule, config, seed)?);
        Ok(())
    }

    /// The standard serving roster: the four `wino-models` workloads
    /// (shrunk so the bench and tests stay affordable), each in a
    /// float (`-f32`) and a `Q24.8` fixed-point (`-q8`) variant —
    /// eight entries total, every kernel bank pre-transformed.
    ///
    /// `max_batch` becomes each workload's batch dimension (the
    /// batcher's coalescing ceiling); `exec_threads` is the per-call
    /// worker fan-out of the execution engine.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::Schedule`] if a schedule fails to lower
    /// (impossible for the standard workloads).
    pub fn standard(max_batch: usize, exec_threads: usize) -> Result<ModelRegistry, RegistryError> {
        let mut registry = ModelRegistry::new();
        let config = ExecConfig::with_threads(exec_threads);
        let short = ["vgg16d", "alexnet", "resnet18", "tinycnn"];
        for (wl, short) in model_zoo(max_batch.max(1)).into_iter().zip(short) {
            let wl = shrink(&wl, 12, 4);
            let schedule = Schedule::homogeneous(&wl, 4)?;
            let quant = QuantConfig::uniform_fixed(schedule.len(), 8).expect("FRAC 8 is supported");
            let quantized = schedule.clone().with_quant(quant)?;
            registry.register(
                format!("{short}-f32").as_str(),
                wl.clone(),
                schedule,
                config,
                0x5EED_0001,
            )?;
            registry.register(
                format!("{short}-q8").as_str(),
                wl,
                quantized,
                config,
                0x5EED_0001,
            )?;
        }
        Ok(registry)
    }

    /// Entries in registration order.
    pub fn entries(&self) -> &[ModelEntry] {
        &self.entries
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clamps every registered entry's execution fan-out to at most
    /// `budget` threads per call.
    ///
    /// A registry built with [`ExecConfig::default`] (one thread per
    /// core) is correct for a single-tenant executor but oversubscribes
    /// a multi-worker [`Server`](crate::Server), where each of `W`
    /// workers runs one batch concurrently: thread demand becomes
    /// `W × cores`. The server calls this at startup with its
    /// per-worker budget; it is public so embedders running their own
    /// pools can do the same.
    pub fn clamp_exec_threads(&mut self, budget: usize) {
        for entry in &mut self.entries {
            entry.clamp_exec_threads(budget);
        }
    }

    /// The dense index of `id`, if registered — the handle the batcher
    /// queues use.
    pub fn index_of(&self, id: &ModelId) -> Option<usize> {
        self.entries.iter().position(|e| e.id() == id)
    }

    /// The entry registered under `id`.
    pub fn get(&self, id: &ModelId) -> Option<&ModelEntry> {
        self.index_of(id).map(|i| &self.entries[i])
    }

    /// The entry at dense index `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn entry(&self, index: usize) -> &ModelEntry {
        &self.entries[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_core::{ConvShape, Workload};

    fn toy_entry(batch: usize) -> ModelEntry {
        let mut wl = Workload::new("toy", batch);
        wl.push("a", "G", ConvShape::same_padded(8, 8, 2, 3, 3));
        wl.push("b", "G", ConvShape { h: 8, w: 8, c: 3, k: 2, r: 3, stride: 2, pad: 1 });
        let schedule = Schedule::homogeneous(&wl, 2).unwrap();
        ModelEntry::new("toy".into(), wl, schedule, ExecConfig::with_threads(2), 7).unwrap()
    }

    #[test]
    fn batched_inference_is_bitwise_the_solo_run() {
        let entry = toy_entry(4);
        let seeds = [11u64, 22, 33];
        let batched = entry.infer_batch(&seeds);
        for (&seed, got) in seeds.iter().zip(&batched) {
            let solo = entry.infer_one(seed);
            assert_eq!(got, &solo, "seed {seed}");
        }
        assert!(batched[0].checksum().is_finite());
    }

    #[test]
    fn continuous_admission_matches_solo_runs_bitwise() {
        let entry = toy_entry(4);
        // Seed 9 joins at the boundary before layer 1; its output (and
        // everyone else's) must still equal a solo run bit for bit.
        let got = entry.infer_batch_continuous(
            vec![1u64, 2],
            |&s| s,
            |b| if b.next_layer == 1 { vec![9u64] } else { Vec::new() },
        );
        assert_eq!(got.len(), 3);
        assert_eq!(got[2].0, 9, "late joiner rides last");
        for (seed, output) in &got {
            assert_eq!(output, &entry.infer_one(*seed), "seed {seed}");
        }
    }

    #[test]
    fn same_seed_is_deterministic_and_distinct_seeds_differ() {
        let entry = toy_entry(2);
        assert_eq!(entry.infer_one(5), entry.infer_one(5));
        assert_ne!(entry.infer_one(5), entry.infer_one(6));
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn oversized_batch_panics() {
        let entry = toy_entry(2);
        let _ = entry.infer_batch(&[1, 2, 3]);
    }

    #[test]
    fn standard_registry_has_eight_prepared_variants() {
        let registry = ModelRegistry::standard(4, 1).unwrap();
        assert_eq!(registry.len(), 8);
        let id = ModelId::new("tinycnn-q8");
        let entry = registry.get(&id).expect("registered");
        assert_eq!(entry.max_batch(), 4);
        assert_eq!(registry.index_of(&id), Some(7));
        // Quantized and float variants genuinely differ.
        let float = registry.get(&"tinycnn-f32".into()).unwrap();
        assert_ne!(float.infer_one(1), entry.infer_one(1));
    }

    #[test]
    fn fft_bearing_model_registers_and_serves_bitwise() {
        // A heterogeneous schedule mixing all three backends: conv "a"
        // on FFT(16), strided conv "b" spatial, conv "c" on Winograd.
        use wino_search::{AlgorithmChoice, LayerDesign};
        let mut wl = Workload::new("hetero", 4);
        wl.push("a", "G", ConvShape::same_padded(12, 12, 2, 3, 5));
        wl.push("b", "G", ConvShape { h: 12, w: 12, c: 3, k: 2, r: 3, stride: 2, pad: 1 });
        wl.push("c", "G", ConvShape::same_padded(6, 6, 2, 2, 3));
        let algos = [
            AlgorithmChoice::Fft { n: 16 },
            AlgorithmChoice::Spatial,
            AlgorithmChoice::Winograd(wino_core::WinogradParams::new(2, 3).unwrap()),
        ];
        let designs: Vec<LayerDesign> = wl
            .layers()
            .iter()
            .zip(algos)
            .map(|(l, algo)| LayerDesign {
                layer: l.name.clone(),
                algo,
                pe_count: 1,
                latency_ms: 1.0,
            })
            .collect();
        let schedule = Schedule::from_layer_designs(&wl, &designs).unwrap();
        assert_eq!(schedule.fft_layers(), 1);

        let mut registry = ModelRegistry::new();
        registry.register("hetero-fft", wl, schedule, ExecConfig::with_threads(2), 42).unwrap();
        let entry = registry.get(&"hetero-fft".into()).expect("registered");
        assert_eq!(entry.executor().engine_label(0), "FFT(16)");

        // Batched and continuous-admission serving both stay bitwise
        // equal to solo runs through the FFT bank.
        let seeds = [3u64, 14, 15];
        for (&seed, got) in seeds.iter().zip(&entry.infer_batch(&seeds)) {
            assert_eq!(got, &entry.infer_one(seed), "seed {seed}");
        }
        let admitted = entry.infer_batch_continuous(
            vec![3u64, 14],
            |&s| s,
            |b| if b.next_layer == 1 { vec![15u64] } else { Vec::new() },
        );
        for (seed, output) in &admitted {
            assert_eq!(output, &entry.infer_one(*seed), "admitted seed {seed}");
        }
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let mut registry = ModelRegistry::new();
        let mut wl = Workload::new("t", 1);
        wl.push("a", "G", ConvShape::same_padded(6, 6, 1, 1, 3));
        let s = Schedule::homogeneous(&wl, 2).unwrap();
        registry.register("m", wl.clone(), s.clone(), ExecConfig::with_threads(1), 1).unwrap();
        let err = registry.register("m", wl, s, ExecConfig::with_threads(1), 1).unwrap_err();
        assert!(matches!(err, RegistryError::DuplicateId(_)));
        assert!(err.to_string().contains('m'));
    }
}
