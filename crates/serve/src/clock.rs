//! Time as a capability: real for production, virtual for tests.
//!
//! Every latency measurement, batching deadline and SLO check in this
//! crate reads time through the [`Clock`] trait instead of calling
//! `Instant::now()` directly. Production uses [`SystemClock`]
//! (monotonic, epoch = construction). Tests use [`VirtualClock`], whose
//! time only moves when the test calls [`advance`](VirtualClock::advance)
//! — so batching-deadline behavior ("release a partial batch once the
//! oldest request has waited `max_wait`") is exercised deterministically,
//! with no sleeps and no wall-clock flakiness.
//!
//! Timestamps are plain [`Duration`]s since the clock's epoch, which —
//! unlike the opaque `std::time::Instant` — can be fabricated, compared
//! across the virtual and real implementations, and serialized into
//! metrics.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A monotonic time source: `now()` never decreases.
pub trait Clock: Send + Sync {
    /// Time elapsed since the clock's epoch.
    fn now(&self) -> Duration;
}

/// The real monotonic clock; epoch is the moment of construction.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose epoch is now.
    pub fn new() -> SystemClock {
        SystemClock { epoch: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> SystemClock {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }
}

/// A clock that only moves when told to — the deterministic test
/// double that makes batching deadlines and latency accounting
/// unit-testable without sleeping.
///
/// ```
/// use std::time::Duration;
/// use wino_serve::{Clock, VirtualClock};
///
/// let clock = VirtualClock::new();
/// assert_eq!(clock.now(), Duration::ZERO);
/// clock.advance(Duration::from_millis(5));
/// assert_eq!(clock.now(), Duration::from_millis(5));
/// ```
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: Mutex<Duration>,
}

impl VirtualClock {
    /// A virtual clock starting at its epoch (`Duration::ZERO`).
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Moves time forward by `delta`.
    pub fn advance(&self, delta: Duration) {
        let mut now = self.now.lock().expect("clock lock");
        *now += delta;
    }

    /// Jumps time to `target` if it is later than the current reading
    /// (a virtual clock is still monotonic: earlier targets are
    /// ignored).
    pub fn advance_to(&self, target: Duration) {
        let mut now = self.now.lock().expect("clock lock");
        if target > *now {
            *now = target;
        }
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        *self.now.lock().expect("clock lock")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotone() {
        let clock = SystemClock::default();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_moves_only_on_advance() {
        let clock = VirtualClock::new();
        let t0 = clock.now();
        assert_eq!(clock.now(), t0, "time is frozen between advances");
        clock.advance(Duration::from_micros(250));
        assert_eq!(clock.now(), t0 + Duration::from_micros(250));
        clock.advance_to(Duration::from_millis(2));
        assert_eq!(clock.now(), Duration::from_millis(2));
        clock.advance_to(Duration::from_millis(1));
        assert_eq!(clock.now(), Duration::from_millis(2), "never goes backwards");
    }
}
