//! Executor sharding: many [`DynamicBatcher`]s behind one dispatcher,
//! with opportunistic work stealing between them.
//!
//! One global batcher behind one mutex was the right shape for a
//! handful of workers; at production scale every submit and every poll
//! serializes on that lock. A [`ShardSet`] splits the queue state into
//! `S` independent shards, each its own `Mutex<DynamicBatcher>` +
//! `Condvar`, and routes every model to a fixed **home shard**
//! (`model % S`). The sharding invariants:
//!
//! * **FIFO is preserved** — all of a model's requests live on its home
//!   shard, in the home batcher's per-class FIFO queues. Stealing moves
//!   only *released batches* (the batcher has already fixed their
//!   contents and order), never queued requests, so no interleaving of
//!   steals can reorder two same-class requests of one model.
//! * **Sequence numbers stay globally unique** — shard `i` numbers its
//!   submissions `i, i+S, i+2S, …` ([`DynamicBatcher::with_seq`]), so
//!   per-shard numbering needs no cross-shard coordination yet never
//!   collides.
//! * **Stealing is pure scheduling** — a stolen batch executes on a
//!   different worker group, which cannot change its bits: engine
//!   outputs are thread-count-invariant and batch composition was fixed
//!   at release. The shard-invariance proptests pin exactly this.
//!
//! The set is deliberately usable two ways: single-threaded and
//! deterministic through [`poll_at`](ShardSet::poll_at) (how the
//! proptests replay arbitrary steal schedules under a
//! [`VirtualClock`](crate::VirtualClock)), or concurrently through
//! [`poll_or_park`](ShardSet::poll_or_park) (how
//! [`Server`](crate::Server) worker groups wait for work).

use crate::{Batch, BatchConfig, BatchItem, DynamicBatcher, Poll, Priority, SubmitError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;
use wino_obs::{FlightRecorder, ReqEvent, ReqEventKind};

/// Outcome of polling a shard, distinguishing where the batch came
/// from so metrics can count steals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardPoll<T> {
    /// A batch is due. `from` is the shard it was released from —
    /// equal to the polled shard for home work, different for a steal.
    Ready {
        /// The released batch.
        batch: Batch<T>,
        /// The shard whose queue released it.
        from: usize,
    },
    /// Nothing is due on the polled shard (or, with stealing, on any
    /// shard). The payload is the earliest deadline at which queued
    /// work becomes due — across every shard the poll was allowed to
    /// look at — or `None` when all of them are empty.
    Wait(Option<Duration>),
}

struct Shard<T> {
    queue: Mutex<DynamicBatcher<T>>,
    /// Signaled on submits routed to this shard and on shutdown.
    wake: Condvar,
}

/// `S` independent [`DynamicBatcher`] shards with home routing, work
/// stealing, and per-shard parking — the dispatcher behind a sharded
/// [`Server`](crate::Server).
pub struct ShardSet<T> {
    shards: Vec<Shard<T>>,
    steal: bool,
    /// The always-on black box, when the owner attached one
    /// ([`with_flight`](Self::with_flight)): every dispatch event is
    /// mirrored into the event ring of the lane it happened on,
    /// independently of whether global tracing is enabled.
    flight: Option<Arc<FlightRecorder>>,
}

impl<T> ShardSet<T> {
    /// Builds `shard_count` shards, each a full batcher over the same
    /// models (`caps`, `config` — see [`DynamicBatcher::with_caps`])
    /// with a collision-free sequence stride. `steal` enables the
    /// cross-shard scan in [`poll_at`](Self::poll_at) /
    /// [`poll_or_park`](Self::poll_or_park).
    ///
    /// # Panics
    ///
    /// Panics when `shard_count` is zero or `config` fails
    /// [`BatchConfig::validate`].
    pub fn new(shard_count: usize, caps: Vec<usize>, config: BatchConfig, steal: bool) -> Self {
        assert!(shard_count > 0, "at least one shard is required");
        let shards = (0..shard_count)
            .map(|i| Shard {
                queue: Mutex::new(
                    DynamicBatcher::with_caps(caps.clone(), config)
                        .with_seq(i as u64, shard_count as u64),
                ),
                wake: Condvar::new(),
            })
            .collect();
        ShardSet { shards, steal, flight: None }
    }

    /// Attaches a [`FlightRecorder`] black box: dispatch events
    /// (enqueues, batch releases, steals) are mirrored into its rings,
    /// one lane per shard, regardless of the global tracing switch.
    pub fn with_flight(mut self, flight: Arc<FlightRecorder>) -> Self {
        self.flight = Some(flight);
        self
    }

    /// The attached black box, if any.
    pub fn flight(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight.as_ref()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether cross-shard stealing is enabled.
    pub fn steals(&self) -> bool {
        self.steal
    }

    /// The home shard of `model`: all of the model's requests queue
    /// here, which is what keeps per-class FIFO order a single-queue
    /// property even with many shards.
    pub fn home(&self, model: usize) -> usize {
        model % self.shards.len()
    }

    fn lock(&self, shard: usize) -> MutexGuard<'_, DynamicBatcher<T>> {
        self.shards[shard].queue.lock().expect("shard lock")
    }

    /// Runs `f` under `model`'s home-shard lock — the hook admission
    /// control uses to make its refuse/admit decision and the enqueue
    /// atomic (SLO checks read the home queue depth; the shutdown flag
    /// must be checked under the same lock the drain decision uses).
    pub fn with_home<R>(&self, model: usize, f: impl FnOnce(&mut DynamicBatcher<T>) -> R) -> R {
        f(&mut self.lock(self.home(model)))
    }

    /// Enqueues a request on `model`'s home shard and wakes one of the
    /// shard's parked workers. See [`DynamicBatcher::submit`].
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::QueueFull`] when the home queue is at
    /// capacity.
    pub fn submit(
        &self,
        model: usize,
        priority: Priority,
        payload: T,
        now: Duration,
    ) -> Result<u64, SubmitError> {
        let home = self.home(model);
        let seq = self.lock(home).submit(model, priority, payload, now)?;
        if let Some(flight) = &self.flight {
            flight.record(
                home,
                ReqEvent::new(seq, now, ReqEventKind::Admitted { class: priority.as_str() }),
            );
            flight.record(
                home,
                ReqEvent::new(seq, now, ReqEventKind::Enqueued { shard: home as u32 }),
            );
        }
        self.shards[home].wake.notify_one();
        Ok(seq)
    }

    /// Emits the dispatch events of one released batch — `Batched` on
    /// the releasing shard, plus `Stolen` when the polling shard is a
    /// different one — to both the global request trace and the
    /// attached black box.
    fn trace_dispatch(&self, batch: &Batch<T>, from: usize, polled: usize, now: Duration) {
        let lanes = batch.requests.len() as u32;
        for item in &batch.requests {
            // A discrete-event driver can admit arrivals ahead of
            // another worker's poll instant (mid-batch injection), so
            // a full batch may release "before" a lane was enqueued.
            // Dispatch cannot causally precede admission: stamp each
            // lane at the later of the two.
            let at = now.max(item.enqueued_at);
            let batched =
                ReqEvent::new(item.seq, at, ReqEventKind::Batched { shard: from as u32, lanes });
            wino_obs::record_req(&batched);
            if let Some(flight) = &self.flight {
                flight.record(from, batched);
            }
            if polled != from {
                let stolen = ReqEvent::new(
                    item.seq,
                    at,
                    ReqEventKind::Stolen { from: from as u32, to: polled as u32 },
                );
                wino_obs::record_req(&stolen);
                if let Some(flight) = &self.flight {
                    flight.record(polled, stolen);
                }
            }
        }
    }

    /// Wakes one worker parked on `shard` (submit-side notification
    /// when the caller enqueued through [`with_home`](Self::with_home)).
    pub fn notify(&self, shard: usize) {
        self.shards[shard].wake.notify_one();
    }

    /// Wakes every worker on every shard — the shutdown broadcast.
    pub fn notify_all(&self) {
        for shard in &self.shards {
            shard.wake.notify_all();
        }
    }

    /// Polls `shard` for a due batch at `now`; with stealing enabled
    /// and the home queue quiet, scans the other shards (in
    /// `shard+1, shard+2, …` wraparound order, deterministically) and
    /// takes the first due batch found there. Never blocks — the
    /// deterministic entry point the proptests replay schedules
    /// through.
    pub fn poll_at(&self, shard: usize, now: Duration) -> ShardPoll<T> {
        let mut hint = match self.lock(shard).poll(now) {
            Poll::Ready(batch) => {
                self.trace_dispatch(&batch, shard, shard, now);
                return ShardPoll::Ready { batch, from: shard };
            }
            Poll::Wait(hint) => hint,
        };
        if self.steal {
            let count = self.shards.len();
            for step in 1..count {
                let other = (shard + step) % count;
                match self.lock(other).poll(now) {
                    Poll::Ready(batch) => {
                        self.trace_dispatch(&batch, other, shard, now);
                        return ShardPoll::Ready { batch, from: other };
                    }
                    Poll::Wait(other_hint) => {
                        if let Some(d) = other_hint {
                            hint = Some(hint.map_or(d, |h: Duration| h.min(d)));
                        }
                    }
                }
            }
        }
        ShardPoll::Wait(hint)
    }

    /// [`poll_at`](Self::poll_at), then — when nothing is due anywhere
    /// it may look — parks on `shard`'s condvar until the earliest
    /// known deadline, a submit notification, or `cap`, whichever is
    /// first. The home queue is re-polled *under the lock* before
    /// parking, closing the race where a submit lands (and notifies)
    /// between the steal scan and the park. Returns `Wait` after
    /// waking; callers loop with a fresh `now`.
    pub fn poll_or_park(&self, shard: usize, now: Duration, cap: Duration) -> ShardPoll<T> {
        let hint = match self.poll_at(shard, now) {
            ready @ ShardPoll::Ready { .. } => return ready,
            ShardPoll::Wait(hint) => hint,
        };
        let mut guard = self.lock(shard);
        if let Poll::Ready(batch) = guard.poll(now) {
            drop(guard);
            self.trace_dispatch(&batch, shard, shard, now);
            return ShardPoll::Ready { batch, from: shard };
        }
        let timeout = hint.map(|d| d.saturating_sub(now)).unwrap_or(cap).min(cap);
        let _unparked = self.shards[shard]
            .wake
            .wait_timeout(guard, timeout.max(Duration::from_micros(100)))
            .expect("shard lock");
        ShardPoll::Wait(hint)
    }

    /// Pops up to `limit` queued requests for `model` from its home
    /// shard in release order — the continuous-batching admission path
    /// (see [`DynamicBatcher::take_for_model`]): a worker mid-batch at
    /// a layer boundary calls this to fill its free lanes with
    /// requests that arrived after the batch released.
    pub fn admit_into(&self, model: usize, limit: usize) -> Vec<BatchItem<T>> {
        self.with_home(model, |q| q.take_for_model(model, limit))
    }

    /// Releases one batch from the first non-empty shard regardless of
    /// deadlines — the shutdown drain loop's step. Returns `None` only
    /// when every shard is empty. `now` stamps the dispatch events of
    /// the drained batch (the drain is still a batch release as far as
    /// the request trace is concerned).
    pub fn drain_one(&self, now: Duration) -> Option<Batch<T>> {
        (0..self.shards.len()).find_map(|s| {
            let batch = self.lock(s).pop_any()?;
            self.trace_dispatch(&batch, s, s, now);
            Some(batch)
        })
    }

    /// Requests queued for `model` (on its home shard).
    pub fn queued(&self, model: usize) -> usize {
        self.with_home(model, |q| q.queued(model))
    }

    /// The effective batch cap of `model` (identical on every shard).
    pub fn cap(&self, model: usize) -> usize {
        self.with_home(model, |q| q.cap(model))
    }

    /// Requests queued across every shard.
    pub fn total_queued(&self) -> usize {
        (0..self.shards.len()).map(|s| self.lock(s).total_queued()).sum()
    }

    /// `true` when nothing is queued anywhere.
    pub fn is_empty(&self) -> bool {
        self.total_queued() == 0
    }
}

impl<T> std::fmt::Debug for ShardSet<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSet")
            .field("shards", &self.shards.len())
            .field("steal", &self.steal)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> Duration {
        Duration::from_millis(ms)
    }

    fn config(max_batch: usize, max_wait_ms: u64, cap: usize) -> BatchConfig {
        BatchConfig { max_batch, max_wait: Duration::from_millis(max_wait_ms), queue_capacity: cap }
    }

    /// 4 models over 3 shards, cap 4 each.
    fn set(steal: bool) -> ShardSet<u64> {
        ShardSet::new(3, vec![4; 4], config(4, 5, 16), steal)
    }

    #[test]
    fn models_route_to_fixed_home_shards() {
        let s = set(true);
        assert_eq!(s.shard_count(), 3);
        assert_eq!((s.home(0), s.home(1), s.home(2), s.home(3)), (0, 1, 2, 0));
    }

    #[test]
    fn seqs_are_globally_unique_and_monotone_per_shard() {
        let s = set(true);
        let mut seqs = Vec::new();
        for model in 0..4 {
            for i in 0..3u64 {
                seqs.push(s.submit(model, Priority::Normal, i, at(0)).unwrap());
            }
        }
        let mut deduped = seqs.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), seqs.len(), "no seq collision across shards: {seqs:?}");
        // Models 0 and 3 share shard 0: their merged submission order
        // is strictly increasing (one shard, one counter).
        let shard0: Vec<u64> = seqs[0..3].iter().chain(&seqs[9..12]).copied().collect();
        assert!(shard0.windows(2).all(|w| w[0] < w[1]), "{shard0:?}");
    }

    #[test]
    fn idle_shard_steals_a_due_batch_and_reports_its_origin() {
        let s = set(true);
        // Model 1 lives on shard 1; shard 0 is idle.
        for i in 0..4u64 {
            s.submit(1, Priority::Normal, i, at(0)).unwrap();
        }
        match s.poll_at(0, at(0)) {
            ShardPoll::Ready { batch, from } => {
                assert_eq!(from, 1, "stolen from the home shard");
                assert_eq!(batch.model, 1);
                assert_eq!(batch.requests.len(), 4);
                let order: Vec<u64> = batch.requests.iter().map(|r| r.payload).collect();
                assert_eq!(order, [0, 1, 2, 3], "stealing cannot reorder");
            }
            other => panic!("expected a steal, got {other:?}"),
        }
        assert!(s.is_empty());
    }

    #[test]
    fn stealing_disabled_leaves_remote_work_alone() {
        let s = set(false);
        for i in 0..4u64 {
            s.submit(1, Priority::Normal, i, at(0)).unwrap();
        }
        assert!(matches!(s.poll_at(0, at(0)), ShardPoll::Wait(None)));
        // The home shard still releases it.
        assert!(matches!(s.poll_at(1, at(0)), ShardPoll::Ready { from: 1, .. }));
    }

    #[test]
    fn wait_hint_covers_stealable_deadlines() {
        let s = set(true);
        // A lone request on shard 2, due at 3 + 5 = 8 ms.
        s.submit(2, Priority::Normal, 9, at(3)).unwrap();
        match s.poll_at(0, at(4)) {
            ShardPoll::Wait(Some(deadline)) => assert_eq!(deadline, at(8)),
            other => panic!("expected a deadline hint, got {other:?}"),
        }
        // Without stealing, shard 0 knows nothing about shard 2.
        let s = set(false);
        s.submit(2, Priority::Normal, 9, at(3)).unwrap();
        assert!(matches!(s.poll_at(0, at(4)), ShardPoll::Wait(None)));
    }

    #[test]
    fn admit_into_pulls_from_the_home_queue_in_release_order() {
        let s = set(true);
        s.submit(0, Priority::Low, 30, at(0)).unwrap();
        s.submit(0, Priority::High, 10, at(1)).unwrap();
        s.submit(0, Priority::Normal, 20, at(1)).unwrap();
        let taken: Vec<u64> = s.admit_into(0, 2).iter().map(|r| r.payload).collect();
        assert_eq!(taken, [30, 10], "oldest first, then class order");
        assert_eq!(s.queued(0), 1);
    }

    #[test]
    fn drain_one_empties_every_shard_for_shutdown() {
        let s = set(true);
        for model in 0..4 {
            s.submit(model, Priority::Normal, model as u64, at(0)).unwrap();
        }
        assert_eq!(s.total_queued(), 4);
        let mut drained = 0;
        while let Some(batch) = s.drain_one(at(9)) {
            drained += batch.requests.len();
        }
        assert_eq!(drained, 4);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardSet::<u64>::new(0, vec![4], config(4, 5, 16), true);
    }
}
