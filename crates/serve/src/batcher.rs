//! Dynamic batching: coalescing single-image requests into model
//! batches under a deadline, with per-priority-class FIFO ordering and
//! bounded queues.
//!
//! [`DynamicBatcher`] is a *pure state machine*: every operation takes
//! the current time as an argument and no operation blocks, sleeps, or
//! reads a clock. The threaded [`Server`](crate::Server) wraps it in a
//! mutex and turns [`Poll::Wait`] deadlines into condvar timeouts;
//! the tests drive it with a [`VirtualClock`](crate::VirtualClock) and
//! never sleep.
//!
//! ## Release policy
//!
//! A model's queue releases a batch when either
//!
//! * **full** — it holds at least `max_batch` requests (the executor's
//!   batch dimension is saturated; waiting longer buys nothing), or
//! * **due** — its oldest request has waited `max_wait` (the batching
//!   gain is no longer worth the latency).
//!
//! Among releasable models the one whose oldest request is oldest goes
//! first (most-overdue-first — the SLO-aware choice). Within the
//! released batch, the model's **oldest request takes the first slot**
//! regardless of class — the request whose age made the batch due
//! always rides it, so sustained high-priority load can delay a
//! low-priority request but never starve it — and the remaining slots
//! fill class by class ([`Priority::High`] first) in strict FIFO order
//! inside each class, the ordering property the serving proptests pin.
//!
//! ## Backpressure
//!
//! Each model's queue is bounded by `queue_capacity` across classes.
//! [`submit`](DynamicBatcher::submit) refuses above that bound
//! (admission control happens *here*, before a request is accepted) —
//! so everything that was admitted stays queued until some worker
//! takes it: the batcher never drops an admitted request.

use std::collections::VecDeque;
use std::fmt;
use std::time::Duration;
use wino_obs::{ReqEvent, ReqEventKind};

/// Request priority class. Classes are scheduling tiers, not strict
/// preemption: a released batch fills from [`High`](Priority::High)
/// down, and FIFO order is preserved *within* each class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive traffic; fills batches first.
    High,
    /// The default class.
    Normal,
    /// Throughput traffic; fills batches last.
    Low,
}

impl Priority {
    /// All classes, highest first.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// Dense index of the class (0 = high … 2 = low), the position of
    /// the class in [`Priority::ALL`] — what per-class metrics key on.
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Stable lowercase class label, as a `&'static str` so the
    /// request-trace event vocabulary ([`wino_obs::ReqEventKind`])
    /// can carry it without allocating.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Batching policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Largest batch ever released (clamped to ≥ 1). Should match the
    /// models' batch dimension ([`ModelEntry::max_batch`]).
    ///
    /// [`ModelEntry::max_batch`]: crate::ModelEntry::max_batch
    pub max_batch: usize,
    /// Longest a request may wait for co-batchers before a partial
    /// batch is released anyway.
    pub max_wait: Duration,
    /// Per-model queue bound (across all classes); submissions above
    /// it are refused.
    pub queue_capacity: usize,
}

impl Default for BatchConfig {
    /// Batch up to 8, wait at most 2 ms, queue at most 64 per model.
    fn default() -> BatchConfig {
        BatchConfig { max_batch: 8, max_wait: Duration::from_millis(2), queue_capacity: 64 }
    }
}

impl BatchConfig {
    /// Checks the config is usable: a zero `max_batch` can never
    /// release anything and a zero `queue_capacity` can never admit
    /// anything, so both are configuration bugs worth rejecting loudly
    /// rather than silently papering over.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), BatchConfigError> {
        if self.max_batch == 0 {
            return Err(BatchConfigError::ZeroMaxBatch);
        }
        if self.queue_capacity == 0 {
            return Err(BatchConfigError::ZeroQueueCapacity);
        }
        Ok(())
    }
}

/// A [`BatchConfig`] constraint violation, from
/// [`BatchConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchConfigError {
    /// `max_batch == 0`: no batch could ever be released.
    ZeroMaxBatch,
    /// `queue_capacity == 0`: no request could ever be admitted.
    ZeroQueueCapacity,
}

impl fmt::Display for BatchConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchConfigError::ZeroMaxBatch => write!(f, "max_batch must be at least 1"),
            BatchConfigError::ZeroQueueCapacity => {
                write!(f, "queue_capacity must be at least 1")
            }
        }
    }
}

impl std::error::Error for BatchConfigError {}

/// A queued request: opaque payload plus batching metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Pending<T> {
    seq: u64,
    enqueued_at: Duration,
    priority: Priority,
    payload: T,
}

/// One request inside a released [`Batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchItem<T> {
    /// Submission-order sequence number (globally unique, monotone).
    pub seq: u64,
    /// When the request entered the queue (clock-epoch relative).
    pub enqueued_at: Duration,
    /// The request's class.
    pub priority: Priority,
    /// The caller's payload.
    pub payload: T,
}

/// A coalesced batch released for one model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch<T> {
    /// Dense model index (the registry's
    /// [`index_of`](crate::ModelRegistry::index_of)).
    pub model: usize,
    /// The requests, in the order they fill the executor's batch
    /// dimension: class by class, FIFO within each class.
    pub requests: Vec<BatchItem<T>>,
}

/// Why a submission was refused at the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The model's bounded queue is at capacity — backpressure.
    QueueFull {
        /// Dense model index.
        model: usize,
        /// The configured bound that was hit.
        capacity: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { model, capacity } => {
                write!(f, "model {model} queue is full ({capacity} requests)")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Outcome of a [`poll`](DynamicBatcher::poll).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Poll<T> {
    /// A batch is due; run it.
    Ready(Batch<T>),
    /// Nothing is due. The payload is the absolute clock time at which
    /// the oldest queued request becomes due (`None` when every queue
    /// is empty) — the wait-with-timeout hint for worker threads.
    Wait(Option<Duration>),
}

/// The dynamic batcher: per-(model, class) FIFO queues and the
/// deadline/fullness release policy, as a clock-free state machine.
#[derive(Debug, Clone)]
pub struct DynamicBatcher<T> {
    config: BatchConfig,
    /// Effective per-model batch ceiling:
    /// `min(config.max_batch, model's batch dimension)`.
    caps: Vec<usize>,
    /// `queues[model][class]`.
    queues: Vec<[VecDeque<Pending<T>>; 3]>,
    seq: u64,
    seq_stride: u64,
    /// Shard label stamped on request-trace events (the seq start of
    /// [`with_seq`](Self::with_seq) — shard `i` strides from `i`, so
    /// the two are the same number). Zero for a standalone batcher.
    shard: u32,
}

impl<T> DynamicBatcher<T> {
    /// A batcher for `model_count` models under `config`, with every
    /// model batched up to `config.max_batch`.
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`BatchConfig::validate`] — a zero
    /// `max_batch` or `queue_capacity` is a configuration bug, refused
    /// at construction rather than silently clamped.
    pub fn new(model_count: usize, config: BatchConfig) -> DynamicBatcher<T> {
        DynamicBatcher::with_caps(vec![config.max_batch; model_count], config)
    }

    /// A batcher whose model `m` never releases more than
    /// `min(caps[m], config.max_batch)` requests per batch — the
    /// schedule's batch dimension is a hard executor limit, so the
    /// server builds its batcher with each model's
    /// [`max_batch`](crate::ModelEntry::max_batch) as the cap.
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`BatchConfig::validate`].
    pub fn with_caps(caps: Vec<usize>, config: BatchConfig) -> DynamicBatcher<T> {
        if let Err(err) = config.validate() {
            panic!("invalid BatchConfig: {err}");
        }
        let caps: Vec<usize> = caps.into_iter().map(|c| c.clamp(1, config.max_batch)).collect();
        let queues = caps.iter().map(|_| std::array::from_fn(|_| VecDeque::new())).collect();
        DynamicBatcher { config, caps, queues, seq: 0, seq_stride: 1, shard: 0 }
    }

    /// Re-bases the submission sequence to `start, start + stride,
    /// start + 2·stride, …` — how a [`ShardSet`](crate::ShardSet) of
    /// `S` shards keeps sequence numbers globally unique without
    /// coordination: shard `i` strides `(start = i, stride = S)`, and
    /// every shard's numbers stay monotone locally while the union
    /// stays collision-free.
    ///
    /// # Panics
    ///
    /// Panics when `stride` is zero.
    pub fn with_seq(mut self, start: u64, stride: u64) -> DynamicBatcher<T> {
        assert!(stride > 0, "seq stride must be at least 1");
        self.seq = start;
        self.seq_stride = stride;
        // A ShardSet builds shard i's batcher with start = i, so the
        // start doubles as the shard label on trace events.
        self.shard = start as u32;
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// The effective batch ceiling of `model`.
    ///
    /// # Panics
    ///
    /// Panics when `model` is out of range.
    pub fn cap(&self, model: usize) -> usize {
        self.caps[model]
    }

    /// Requests currently queued for `model`, all classes.
    ///
    /// # Panics
    ///
    /// Panics when `model` is out of range.
    pub fn queued(&self, model: usize) -> usize {
        self.queues[model].iter().map(VecDeque::len).sum()
    }

    /// Requests currently queued across every model.
    pub fn total_queued(&self) -> usize {
        (0..self.queues.len()).map(|m| self.queued(m)).sum()
    }

    /// `true` when no request is queued anywhere.
    pub fn is_empty(&self) -> bool {
        self.total_queued() == 0
    }

    /// Enqueues a request for `model` at time `now`, returning its
    /// submission sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::QueueFull`] when the model's bounded
    /// queue is at capacity — the admitted/refused line of the serving
    /// subsystem's backpressure.
    ///
    /// # Panics
    ///
    /// Panics when `model` is out of range.
    pub fn submit(
        &mut self,
        model: usize,
        priority: Priority,
        payload: T,
        now: Duration,
    ) -> Result<u64, SubmitError> {
        if self.queued(model) >= self.config.queue_capacity {
            return Err(SubmitError::QueueFull { model, capacity: self.config.queue_capacity });
        }
        let seq = self.seq;
        self.seq += self.seq_stride;
        self.queues[model][priority.index()].push_back(Pending {
            seq,
            enqueued_at: now,
            priority,
            payload,
        });
        // The request-trace anchor: admission (capacity passed, seq
        // assigned) immediately followed by the enqueue, both under
        // whatever lock serializes this batcher — so a timeline's
        // first two events are emitted atomically and in order.
        wino_obs::record_req(&ReqEvent::new(
            seq,
            now,
            ReqEventKind::Admitted { class: priority.as_str() },
        ));
        wino_obs::record_req(&ReqEvent::new(
            seq,
            now,
            ReqEventKind::Enqueued { shard: self.shard },
        ));
        Ok(seq)
    }

    /// When `model`'s oldest queued request entered the queue.
    fn oldest_enqueue(&self, model: usize) -> Option<Duration> {
        self.queues[model].iter().filter_map(|q| q.front()).map(|p| p.enqueued_at).min()
    }

    /// The class whose front holds `model`'s oldest request
    /// (ties broken by submission sequence).
    fn oldest_class(&self, model: usize) -> Option<usize> {
        (0..3)
            .filter_map(|c| self.queues[model][c].front().map(|p| ((p.enqueued_at, p.seq), c)))
            .min()
            .map(|(_, c)| c)
    }

    /// Pops up to the model's batch cap: the model's **oldest request
    /// first** (whatever its class — the anti-starvation guarantee:
    /// the request whose age made the batch due always rides it, so a
    /// low-priority request can wait at most one batch per
    /// higher-priority occupant ahead of it, never forever), then
    /// class by class in priority order, FIFO within each class. The
    /// reserved request is its own class's front, so per-class FIFO
    /// order is preserved.
    fn drain_batch(&mut self, model: usize) -> Batch<T> {
        let requests = self.take_for_model(model, self.caps[model]);
        Batch { model, requests }
    }

    /// Pops up to `limit` of `model`'s queued requests in release
    /// order (oldest request first, then class by class, FIFO within
    /// each class — exactly the `drain_batch`
    /// policy with a caller-chosen size). This is the **continuous
    /// batching** entry point: a shard mid-flight through a batch
    /// calls it at a layer boundary to admit waiting requests into the
    /// free lanes, and because the pop order is identical to a regular
    /// release, per-class FIFO order is preserved across early
    /// admissions.
    ///
    /// Returns an empty vector when nothing is queued (or `limit` is
    /// zero).
    ///
    /// # Panics
    ///
    /// Panics when `model` is out of range.
    pub fn take_for_model(&mut self, model: usize, limit: usize) -> Vec<BatchItem<T>> {
        let mut requests = Vec::new();
        if limit == 0 {
            return requests;
        }
        let item = |p: Pending<T>| BatchItem {
            seq: p.seq,
            enqueued_at: p.enqueued_at,
            priority: p.priority,
            payload: p.payload,
        };
        if let Some(class) = self.oldest_class(model) {
            let p = self.queues[model][class].pop_front().expect("front exists");
            requests.push(item(p));
        }
        for class in 0..3 {
            while requests.len() < limit {
                match self.queues[model][class].pop_front() {
                    Some(p) => requests.push(item(p)),
                    None => break,
                }
            }
        }
        requests
    }

    /// Releases a batch if one is due at `now`, otherwise reports how
    /// long the caller may wait.
    pub fn poll(&mut self, now: Duration) -> Poll<T> {
        // Most-overdue-first among releasable models; ties broken by
        // model index for determinism.
        let mut release: Option<(Duration, usize)> = None;
        let mut next_deadline: Option<Duration> = None;
        for model in 0..self.queues.len() {
            let Some(oldest) = self.oldest_enqueue(model) else { continue };
            let deadline = oldest + self.config.max_wait;
            let releasable = self.queued(model) >= self.caps[model] || deadline <= now;
            if releasable {
                if release.is_none_or(|(best, _)| oldest < best) {
                    release = Some((oldest, model));
                }
            } else if next_deadline.is_none_or(|d| deadline < d) {
                next_deadline = Some(deadline);
            }
        }
        match release {
            Some((_, model)) => Poll::Ready(self.drain_batch(model)),
            None => Poll::Wait(next_deadline),
        }
    }

    /// Releases the most-overdue batch regardless of deadlines — the
    /// shutdown drain: admitted requests are served, never dropped,
    /// even when the server stops before their batch fills or ages.
    pub fn pop_any(&mut self) -> Option<Batch<T>> {
        let model = (0..self.queues.len())
            .filter_map(|m| self.oldest_enqueue(m).map(|t| (t, m)))
            .min()
            .map(|(_, m)| m)?;
        Some(self.drain_batch(model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> Duration {
        Duration::from_millis(ms)
    }

    fn config(max_batch: usize, max_wait_ms: u64, cap: usize) -> BatchConfig {
        BatchConfig { max_batch, max_wait: Duration::from_millis(max_wait_ms), queue_capacity: cap }
    }

    #[test]
    fn full_queue_releases_immediately_without_waiting() {
        let mut b = DynamicBatcher::new(2, config(3, 10, 16));
        for seed in 0..3u64 {
            b.submit(1, Priority::Normal, seed, at(0)).unwrap();
        }
        // Deadline is far away, but the batch is full → ready at t=0.
        match b.poll(at(0)) {
            Poll::Ready(batch) => {
                assert_eq!(batch.model, 1);
                assert_eq!(batch.requests.len(), 3);
            }
            other => panic!("expected ready, got {other:?}"),
        }
        assert!(b.is_empty());
    }

    #[test]
    fn partial_batch_waits_until_the_deadline_then_releases() {
        let mut b = DynamicBatcher::new(1, config(8, 5, 16));
        b.submit(0, Priority::Normal, 1u64, at(2)).unwrap();
        b.submit(0, Priority::Normal, 2u64, at(4)).unwrap();
        // Not due yet: poll reports the oldest request's deadline.
        assert_eq!(b.poll(at(3)), Poll::Wait(Some(at(7))));
        // At the deadline the partial batch (both requests) releases.
        match b.poll(at(7)) {
            Poll::Ready(batch) => {
                assert_eq!(batch.requests.len(), 2);
                assert_eq!(batch.requests[0].payload, 1);
            }
            other => panic!("expected ready, got {other:?}"),
        }
        assert_eq!(b.poll(at(8)), Poll::Wait(None));
    }

    #[test]
    fn oldest_rides_first_then_classes_fill_in_priority_order() {
        let mut b = DynamicBatcher::new(1, config(8, 1, 16));
        b.submit(0, Priority::Low, 30u64, at(0)).unwrap();
        b.submit(0, Priority::Normal, 20, at(0)).unwrap();
        b.submit(0, Priority::High, 10, at(0)).unwrap();
        b.submit(0, Priority::High, 11, at(0)).unwrap();
        b.submit(0, Priority::Low, 31, at(0)).unwrap();
        let Poll::Ready(batch) = b.poll(at(1)) else { panic!("due") };
        let order: Vec<u64> = batch.requests.iter().map(|r| r.payload).collect();
        // The oldest request (Low 30, submitted first) is guaranteed
        // the first slot; then High..Low, FIFO within each class.
        assert_eq!(order, [30, 10, 11, 20, 31]);
    }

    #[test]
    fn deadline_triggered_release_cannot_starve_a_low_priority_request() {
        // Cap 2, one Low request, then a sustained stream of High
        // requests that keeps the queue at fullness forever. Without
        // the oldest-rides-first guarantee every released batch would
        // be all-High and the Low request would wait unboundedly.
        let mut b = DynamicBatcher::new(1, config(2, 5, 64));
        b.submit(0, Priority::Low, 999u64, at(0)).unwrap();
        let mut served_low_after = None;
        for round in 0..10u64 {
            b.submit(0, Priority::High, round, at(round)).unwrap();
            b.submit(0, Priority::High, 100 + round, at(round)).unwrap();
            let Poll::Ready(batch) = b.poll(at(round)) else { panic!("full at cap") };
            if batch.requests.iter().any(|r| r.payload == 999) {
                served_low_after = Some(round);
                break;
            }
        }
        assert_eq!(
            served_low_after,
            Some(0),
            "the oldest request must ride the very first released batch"
        );
    }

    #[test]
    fn most_overdue_model_goes_first() {
        let mut b = DynamicBatcher::new(3, config(4, 2, 16));
        b.submit(2, Priority::Normal, 2u64, at(0)).unwrap();
        b.submit(0, Priority::Normal, 0, at(1)).unwrap();
        let Poll::Ready(first) = b.poll(at(5)) else { panic!("due") };
        assert_eq!(first.model, 2, "older request wins");
        let Poll::Ready(second) = b.poll(at(5)) else { panic!("due") };
        assert_eq!(second.model, 0);
    }

    #[test]
    fn bounded_queue_refuses_above_capacity_and_recovers() {
        let mut b = DynamicBatcher::new(1, config(8, 1, 2));
        b.submit(0, Priority::Normal, 1u64, at(0)).unwrap();
        b.submit(0, Priority::High, 2, at(0)).unwrap();
        let err = b.submit(0, Priority::Normal, 3, at(0)).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull { model: 0, capacity: 2 });
        assert!(err.to_string().contains("full"));
        // Draining frees capacity again.
        let Poll::Ready(_) = b.poll(at(2)) else { panic!("due") };
        b.submit(0, Priority::Normal, 3, at(2)).unwrap();
        assert_eq!(b.queued(0), 1);
    }

    #[test]
    fn oversized_backlog_releases_in_max_batch_chunks_in_order() {
        let mut b = DynamicBatcher::new(1, config(2, 1, 16));
        for seed in 0..5u64 {
            b.submit(0, Priority::Normal, seed, at(0)).unwrap();
        }
        let mut order = Vec::new();
        while let Poll::Ready(batch) = b.poll(at(3)) {
            assert!(batch.requests.len() <= 2);
            order.extend(batch.requests.iter().map(|r| r.payload));
        }
        assert_eq!(order, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn pop_any_drains_everything_for_shutdown() {
        let mut b = DynamicBatcher::new(2, config(8, 1000, 16));
        b.submit(0, Priority::Normal, 1u64, at(0)).unwrap();
        b.submit(1, Priority::Low, 2, at(0)).unwrap();
        // Nothing is due (huge max_wait), but shutdown must not drop.
        assert!(matches!(b.poll(at(1)), Poll::Wait(Some(_))));
        let mut drained = 0;
        while let Some(batch) = b.pop_any() {
            drained += batch.requests.len();
        }
        assert_eq!(drained, 2);
        assert!(b.pop_any().is_none());
    }

    #[test]
    fn per_model_caps_bound_release_and_fullness() {
        // Model 0 is capped at 2 even though policy allows 8.
        let mut b = DynamicBatcher::with_caps(vec![2, 8], config(8, 1000, 16));
        assert_eq!(b.cap(0), 2);
        assert_eq!(b.cap(1), 8);
        b.submit(0, Priority::Normal, 1u64, at(0)).unwrap();
        b.submit(0, Priority::Normal, 2, at(0)).unwrap();
        b.submit(0, Priority::Normal, 3, at(0)).unwrap();
        // Two queued ≥ cap → full, releases without waiting; never
        // more than the cap in one batch.
        let Poll::Ready(batch) = b.poll(at(0)) else { panic!("full at cap") };
        assert_eq!(batch.requests.len(), 2);
        let Some(rest) = b.pop_any() else { panic!("drainable") };
        assert_eq!(rest.requests.len(), 1);
    }

    #[test]
    fn validate_names_the_violated_constraint() {
        assert_eq!(BatchConfig::default().validate(), Ok(()));
        assert_eq!(config(0, 1, 8).validate(), Err(BatchConfigError::ZeroMaxBatch));
        assert_eq!(config(4, 1, 0).validate(), Err(BatchConfigError::ZeroQueueCapacity));
        assert!(BatchConfigError::ZeroQueueCapacity.to_string().contains("queue_capacity"));
    }

    #[test]
    #[should_panic(expected = "invalid BatchConfig: max_batch")]
    fn zero_max_batch_is_rejected_at_construction() {
        let _: DynamicBatcher<u64> = DynamicBatcher::new(1, config(0, 1, 8));
    }

    #[test]
    #[should_panic(expected = "invalid BatchConfig: queue_capacity")]
    fn zero_queue_capacity_is_rejected_at_construction() {
        let _: DynamicBatcher<u64> = DynamicBatcher::new(1, config(4, 1, 0));
    }

    #[test]
    fn deadline_equal_to_arrival_releases_immediately() {
        // max_wait = 0 makes the oldest request's deadline exactly its
        // arrival time: `deadline <= now` must already hold when polled
        // at that same instant — the boundary is inclusive, a request
        // is never asked to wait past a deadline it was born at.
        let mut b = DynamicBatcher::new(1, config(8, 0, 16));
        b.submit(0, Priority::Normal, 7u64, at(5)).unwrap();
        match b.poll(at(5)) {
            Poll::Ready(batch) => assert_eq!(batch.requests[0].payload, 7),
            other => panic!("deadline == arrival must be due, got {other:?}"),
        }
    }

    #[test]
    fn low_class_is_served_within_its_wait_bound_under_high_flood() {
        // A continuous high-priority flood keeps the queue at fullness
        // so every release is fullness-triggered. The quantified
        // anti-starvation bound: a low request is served no later than
        // its own max_wait deadline, because once it is the model's
        // oldest request it owns the first slot of the next release.
        let max_wait = 5;
        let mut b = DynamicBatcher::new(1, config(2, max_wait, 64));
        b.submit(0, Priority::Low, 999u64, at(0)).unwrap();
        let mut served_at = None;
        for t in 0..20u64 {
            // Two fresh High requests per tick: fullness every poll.
            b.submit(0, Priority::High, t, at(t)).unwrap();
            b.submit(0, Priority::High, 100 + t, at(t)).unwrap();
            while let Poll::Ready(batch) = b.poll(at(t)) {
                if batch.requests.iter().any(|r| r.payload == 999) {
                    served_at.get_or_insert(t);
                }
            }
            if served_at.is_some() {
                break;
            }
        }
        let served_at = served_at.expect("low request must be served");
        assert!(
            served_at <= max_wait,
            "low request served at t={served_at}ms, bound is max_wait={max_wait}ms"
        );
    }

    #[test]
    fn take_for_model_pops_in_release_order_and_respects_limit() {
        let mut b = DynamicBatcher::new(1, config(8, 1000, 16));
        b.submit(0, Priority::Low, 30u64, at(0)).unwrap();
        b.submit(0, Priority::High, 10, at(1)).unwrap();
        b.submit(0, Priority::Normal, 20, at(1)).unwrap();
        b.submit(0, Priority::High, 11, at(2)).unwrap();
        assert!(b.take_for_model(0, 0).is_empty());
        // Oldest (Low 30) first, then High FIFO — limit cuts the rest.
        let taken: Vec<u64> = b.take_for_model(0, 3).iter().map(|r| r.payload).collect();
        assert_eq!(taken, [30, 10, 11]);
        // The remainder is untouched and still in order.
        let rest: Vec<u64> = b.take_for_model(0, 8).iter().map(|r| r.payload).collect();
        assert_eq!(rest, [20]);
        assert!(b.is_empty());
    }

    #[test]
    fn strided_seq_stays_monotone_and_collision_free_across_shards() {
        // Two shards striding (0, 2) and (1, 2): evens and odds.
        let mut a = DynamicBatcher::new(1, config(8, 1, 16)).with_seq(0, 2);
        let mut b = DynamicBatcher::new(1, config(8, 1, 16)).with_seq(1, 2);
        let sa: Vec<u64> =
            (0..3).map(|i| a.submit(0, Priority::Normal, i, at(0)).unwrap()).collect();
        let sb: Vec<u64> =
            (0..3).map(|i| b.submit(0, Priority::Normal, i, at(0)).unwrap()).collect();
        assert_eq!(sa, [0, 2, 4]);
        assert_eq!(sb, [1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "seq stride")]
    fn zero_seq_stride_panics() {
        let _ = DynamicBatcher::<u64>::new(1, config(8, 1, 16)).with_seq(0, 0);
    }
}
