//! Declarative SLOs and a multi-window burn-rate alert engine.
//!
//! An [`SloPolicy`] states an objective ("99% of normal-class requests
//! under 10 ms") as a latency threshold plus an **error budget** — the
//! tolerated fraction of requests over the threshold. The
//! [`SloEngine`] evaluates the budget's **burn rate** over several
//! windows at once (the SRE-workbook multi-window pattern): a short
//! window with a high threshold catches fast outages in seconds, a
//! long window with a low threshold catches slow leaks without paging
//! on noise.
//!
//! The engine is clock-free in the same sense as the batcher: it never
//! reads time. [`SloEngine::observe`] takes the caller's `now`
//! (virtual or wall clock) together with a [`MetricsSnapshot`], diffs
//! the snapshot's cumulative per-class latency histograms
//! ([`LatencyHistogram::count_over`]) against retained history to
//! compute per-window violation fractions, and returns the alerts that
//! **fired** on this observation (rising edges only — an alert stays
//! active until its burn rate drops back under the threshold, and does
//! not re-fire while active). Each firing is also reported through the
//! observability layer as a `serve.slo` interval, so alerts land in
//! Chrome traces next to the request timelines that caused them.
//!
//! Counting violations through log₂ histogram buckets is conservative:
//! the effective objective is rounded up to the next bucket edge (see
//! [`LatencyHistogram::count_over`]), so measured burn rates are lower
//! bounds and thresholds should be set with margin.

use crate::{LatencyHistogram, MetricsSnapshot, Priority};
use std::collections::VecDeque;
use std::fmt;
use std::time::Duration;

/// One evaluation window of a policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnWindow {
    /// Stable label naming the window in alerts ("fast", "slow").
    pub label: &'static str,
    /// How far back the window reaches.
    pub window: Duration,
    /// Burn-rate threshold: alert when the window's violation fraction
    /// exceeds `threshold × error_budget`. 1.0 means "burning exactly
    /// the budget"; the canonical fast-burn threshold is ~14.
    pub threshold: f64,
}

/// A declarative latency SLO for one priority class (or all traffic).
#[derive(Debug, Clone, PartialEq)]
pub struct SloPolicy {
    /// Stable policy name, carried on alerts.
    pub name: &'static str,
    /// The class the objective covers; `None` pools all classes.
    pub class: Option<Priority>,
    /// The latency objective: a request over this is a violation.
    /// Effectively rounded up to the next log₂ bucket edge.
    pub objective: Duration,
    /// Tolerated violation fraction (e.g. `0.01` = 99% under the
    /// objective). Must be positive.
    pub error_budget: f64,
    /// The windows evaluated each observation.
    pub windows: Vec<BurnWindow>,
}

impl SloPolicy {
    /// The SRE-workbook two-window shape: a fast window at 14× budget
    /// burn and a slow window at 6×, scaled to the caller's horizon.
    pub fn two_window(
        name: &'static str,
        class: Option<Priority>,
        objective: Duration,
        error_budget: f64,
        fast: Duration,
        slow: Duration,
    ) -> SloPolicy {
        SloPolicy {
            name,
            class,
            objective,
            error_budget,
            windows: vec![
                BurnWindow { label: "fast", window: fast, threshold: 14.0 },
                BurnWindow { label: "slow", window: slow, threshold: 6.0 },
            ],
        }
    }
}

/// One burn-rate alert firing (a rising edge).
#[derive(Debug, Clone, PartialEq)]
pub struct SloAlert {
    /// The violated policy's name.
    pub policy: &'static str,
    /// The window that tripped ("fast", "slow").
    pub window: &'static str,
    /// The observation time the alert fired at.
    pub at: Duration,
    /// Measured burn rate (violation fraction ÷ error budget).
    pub burn_rate: f64,
    /// The threshold it exceeded.
    pub threshold: f64,
    /// The policy's latency objective.
    pub objective: Duration,
}

impl fmt::Display for SloAlert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SLO '{}' {}-burn: {:.1}x budget (threshold {:.1}x, objective {:?}) at {:?}",
            self.policy, self.window, self.burn_rate, self.threshold, self.objective, self.at
        )
    }
}

/// Per-policy counters extracted from one snapshot: `(total, bad)`
/// cumulative request counts.
type PolicyCounts = Vec<(u64, u64)>;

/// The multi-window burn-rate evaluator. Feed it metrics snapshots at
/// whatever cadence the caller likes; it retains just enough history
/// to cover every policy's longest window.
pub struct SloEngine {
    policies: Vec<SloPolicy>,
    /// Retained observations: `(now, per-policy (total, bad))`,
    /// oldest first.
    history: VecDeque<(Duration, PolicyCounts)>,
    /// `active[policy][window]`: whether that alert is currently
    /// firing (suppresses re-fires until the burn recovers).
    active: Vec<Vec<bool>>,
    /// The longest window over all policies — the retention horizon.
    horizon: Duration,
}

impl SloEngine {
    /// An engine evaluating `policies`.
    ///
    /// # Panics
    ///
    /// Panics when a policy has a non-positive error budget or no
    /// windows — silent misconfiguration would disable alerting.
    pub fn new(policies: Vec<SloPolicy>) -> SloEngine {
        let mut horizon = Duration::ZERO;
        for p in &policies {
            assert!(p.error_budget > 0.0, "policy '{}' has a non-positive error budget", p.name);
            assert!(!p.windows.is_empty(), "policy '{}' has no windows", p.name);
            for w in &p.windows {
                horizon = horizon.max(w.window);
            }
        }
        let active = policies.iter().map(|p| vec![false; p.windows.len()]).collect();
        SloEngine { policies, history: VecDeque::new(), active, horizon }
    }

    /// The policies being evaluated.
    pub fn policies(&self) -> &[SloPolicy] {
        &self.policies
    }

    /// Cumulative `(total, bad)` for one policy out of one snapshot.
    fn counts(policy: &SloPolicy, snapshot: &MetricsSnapshot) -> (u64, u64) {
        let pick = |h: &LatencyHistogram| (h.count(), h.count_over(policy.objective));
        match policy.class {
            Some(class) => {
                snapshot.class_latency_histograms.get(class.index()).map(pick).unwrap_or((0, 0))
            }
            None => snapshot
                .class_latency_histograms
                .iter()
                .map(pick)
                .fold((0, 0), |(t, b), (dt, db)| (t + dt, b + db)),
        }
    }

    /// Feeds one observation and returns the alerts that fired on it.
    ///
    /// For every `(policy, window)` pair the engine picks the newest
    /// retained observation at least `window` old as the baseline
    /// (falling back to the oldest retained one while history is still
    /// shorter than the window), computes the violation fraction of
    /// requests completed since, and divides by the error budget. An
    /// alert fires on the rising edge of `burn > threshold` and
    /// re-arms when the burn drops back to or under it. Windows with
    /// no completed request since their baseline stay quiet.
    pub fn observe(&mut self, now: Duration, snapshot: &MetricsSnapshot) -> Vec<SloAlert> {
        let current: PolicyCounts =
            self.policies.iter().map(|p| Self::counts(p, snapshot)).collect();
        let mut alerts = Vec::new();
        for (pi, policy) in self.policies.iter().enumerate() {
            let (now_total, now_bad) = current[pi];
            for (wi, window) in policy.windows.iter().enumerate() {
                let cutoff = now.saturating_sub(window.window);
                // Newest observation at or before the cutoff; oldest
                // retained one while the history is still short.
                let baseline = self
                    .history
                    .iter()
                    .rev()
                    .find(|(t, _)| *t <= cutoff)
                    .or_else(|| self.history.front());
                let (base_total, base_bad) = match baseline {
                    Some((_, counts)) => counts[pi],
                    None => (0, 0),
                };
                let total = now_total.saturating_sub(base_total);
                if total == 0 {
                    continue;
                }
                let bad = now_bad.saturating_sub(base_bad);
                let burn = (bad as f64 / total as f64) / policy.error_budget;
                let over = burn > window.threshold;
                let was_active = self.active[pi][wi];
                self.active[pi][wi] = over;
                if over && !was_active {
                    let alert = SloAlert {
                        policy: policy.name,
                        window: window.label,
                        at: now,
                        burn_rate: burn,
                        threshold: window.threshold,
                        objective: policy.objective,
                    };
                    // Mirror the firing into the trace stream so it
                    // shows up next to the request timelines.
                    wino_obs::record_interval(
                        "serve.slo",
                        &format!("{}:{}-burn", policy.name, window.label),
                        0,
                        now,
                        Duration::ZERO,
                    );
                    alerts.push(alert);
                }
            }
        }
        self.history.push_back((now, current));
        // Retain one observation older than the horizon so every
        // window always has a baseline at full depth.
        while let (Some((t0, _)), Some((t1, _))) = (self.history.front(), self.history.get(1)) {
            if now.saturating_sub(*t0) > self.horizon && now.saturating_sub(*t1) > self.horizon {
                self.history.pop_front();
            } else {
                break;
            }
        }
        alerts
    }
}

impl fmt::Debug for SloEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SloEngine")
            .field("policies", &self.policies.len())
            .field("history", &self.history.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    /// One normal-class policy: 99% under 10 ms (effective bucket edge
    /// 16.384 ms), fast window 50 ms at 14x, slow window 500 ms at 6x.
    fn policy() -> SloPolicy {
        SloPolicy::two_window("normal-10ms", Some(Priority::Normal), ms(10), 0.01, ms(50), ms(500))
    }

    fn record_n(m: &Metrics, n: usize, latency: Duration) {
        let classes = vec![Priority::Normal; n];
        let waits = vec![Duration::ZERO; n];
        let lats = vec![latency; n];
        m.record_batch(0, 0, false, latency, &classes, &waits, &lats);
    }

    #[test]
    fn healthy_traffic_never_alerts() {
        let m = Metrics::new(vec!["a".into()], 1);
        let mut engine = SloEngine::new(vec![policy()]);
        for tick in 1..=20u64 {
            record_n(&m, 50, ms(1));
            let alerts = engine.observe(ms(tick * 10), &m.snapshot(ms(tick * 10)));
            assert!(alerts.is_empty(), "alerted on healthy traffic: {alerts:?}");
        }
    }

    #[test]
    fn a_violation_spike_fires_fast_burn_once_then_rearms_on_recovery() {
        let m = Metrics::new(vec!["a".into()], 1);
        let mut engine = SloEngine::new(vec![policy()]);
        // Healthy baseline.
        record_n(&m, 100, ms(1));
        assert!(engine.observe(ms(10), &m.snapshot(ms(10))).is_empty());
        // Spike: half the new traffic blows the objective — a 50x
        // budget burn, far over the 14x fast threshold.
        record_n(&m, 50, ms(1));
        record_n(&m, 50, ms(100));
        let alerts = engine.observe(ms(20), &m.snapshot(ms(20)));
        assert_eq!(alerts.len(), 2, "fast and slow both trip on a 50x burn: {alerts:?}");
        assert_eq!(alerts[0].policy, "normal-10ms");
        assert_eq!(alerts[0].window, "fast");
        assert!(alerts[0].burn_rate > 14.0, "{}", alerts[0]);
        assert!(alerts[0].to_string().contains("fast-burn"));
        // Still burning: active alerts do not re-fire.
        record_n(&m, 50, ms(100));
        assert!(engine.observe(ms(30), &m.snapshot(ms(30))).is_empty(), "no re-fire while active");
        // Recovery: the fast window's baseline moves past the spike,
        // new traffic is clean → burn drops, alert re-arms.
        for tick in 4..=60u64 {
            record_n(&m, 100, ms(1));
            engine.observe(ms(tick * 10), &m.snapshot(ms(tick * 10)));
        }
        // The fast window still holds ~400 clean completions from the
        // recovery ticks, so the fresh spike must outweigh them:
        // 100 bad / 500 total = 20x burn, over the 14x threshold.
        record_n(&m, 100, ms(100));
        let refired = engine.observe(ms(610), &m.snapshot(ms(610)));
        assert!(
            refired.iter().any(|a| a.window == "fast"),
            "a fresh spike after recovery fires again: {refired:?}"
        );
    }

    #[test]
    fn windows_with_no_new_traffic_stay_quiet() {
        let m = Metrics::new(vec!["a".into()], 1);
        let mut engine = SloEngine::new(vec![policy()]);
        // Seed history with pure violations…
        record_n(&m, 10, ms(100));
        let first = engine.observe(ms(10), &m.snapshot(ms(10)));
        assert_eq!(first.len(), 2, "violating traffic trips both windows");
        // …then go idle: no completions → total delta 0 → no alert
        // arithmetic, no division by zero, and the active flags stay
        // (nothing recovered either).
        for tick in 2..=10u64 {
            assert!(engine.observe(ms(tick * 10), &m.snapshot(ms(tick * 10))).is_empty());
        }
    }

    #[test]
    fn class_scoping_ignores_other_classes() {
        let m = Metrics::new(vec!["a".into()], 1);
        let mut engine = SloEngine::new(vec![policy()]);
        // A storm of low-priority violations must not trip a
        // normal-class policy.
        let lows = vec![Priority::Low; 50];
        let zeros = vec![Duration::ZERO; 50];
        let slow = vec![ms(200); 50];
        m.record_batch(0, 0, false, ms(200), &lows, &zeros, &slow);
        record_n(&m, 10, ms(1));
        let alerts = engine.observe(ms(10), &m.snapshot(ms(10)));
        assert!(alerts.is_empty(), "low-class violations tripped a normal-class SLO: {alerts:?}");
        // A pooled (class: None) policy does see them.
        let mut pooled =
            SloEngine::new(vec![SloPolicy { name: "all-10ms", class: None, ..policy() }]);
        let fired = pooled.observe(ms(10), &m.snapshot(ms(10)));
        assert_eq!(fired.len(), 2, "pooled policy sees all classes: {fired:?}");
    }

    #[test]
    #[should_panic(expected = "non-positive error budget")]
    fn zero_error_budget_is_rejected() {
        let _ = SloEngine::new(vec![SloPolicy { error_budget: 0.0, ..policy() }]);
    }

    #[test]
    #[should_panic(expected = "has no windows")]
    fn windowless_policy_is_rejected() {
        let _ = SloEngine::new(vec![SloPolicy { windows: Vec::new(), ..policy() }]);
    }

    #[test]
    fn history_is_bounded_by_the_horizon() {
        let m = Metrics::new(vec!["a".into()], 1);
        let mut engine = SloEngine::new(vec![policy()]);
        for tick in 1..=1000u64 {
            record_n(&m, 1, ms(1));
            engine.observe(ms(tick * 10), &m.snapshot(ms(tick * 10)));
        }
        // Horizon is 500 ms, cadence 10 ms → ~51 retained entries, not
        // 1000. Allow slack for the keep-one-older rule.
        assert!(engine.history.len() <= 60, "history grew unbounded: {}", engine.history.len());
    }
}
