//! The serving front end: admission control, the worker pool, and
//! response delivery.
//!
//! A [`Server`] owns a [`ModelRegistry`] (every kernel bank already
//! transformed), a mutex-wrapped [`DynamicBatcher`] and a pool of
//! worker threads. The request lifecycle:
//!
//! 1. **Submit** — [`Server::submit`] resolves the model ID, applies
//!    admission control (bounded queue; optionally, the SLO test:
//!    reject when `backlog × smoothed-per-image-service-time` already
//!    exceeds the configured SLO), stamps the arrival time and enqueues.
//!    The caller gets a [`ResponseHandle`] — a one-shot slot the
//!    serving side fulfills.
//! 2. **Batch** — the batcher coalesces same-model requests until the
//!    batch dimension fills or the oldest request has waited
//!    `max_wait` (see [`DynamicBatcher`]).
//! 3. **Execute** — a worker takes the released batch, stacks the
//!    requests' inputs, and runs every layer through the model's cached
//!    [`PreparedPlan`](wino_exec::PreparedPlan)s in one call per layer.
//! 4. **Respond** — per-request outputs (bitwise identical to a solo
//!    run) are split out of the batch, metrics record queue wait and
//!    end-to-end latency, and each handle is fulfilled.
//!
//! Admitted requests are never dropped: workers only exit once the
//! shutdown flag is up *and* the queue is drained, and
//! [`Server::shutdown`] (also run on drop) releases leftover partial
//! batches past their deadlines before joining the pool.

use crate::{
    Batch, BatchConfig, Clock, DynamicBatcher, InferOutput, Metrics, MetricsSnapshot, ModelId,
    ModelRegistry, Poll, Priority, SubmitError, SystemClock,
};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads taking batches from the queue (clamped to ≥ 1).
    /// Each worker executes one batch at a time; the *intra*-batch
    /// thread fan-out is the `ExecConfig` the registry's executors
    /// were built with, clamped at startup to the per-worker budget
    /// below.
    pub workers: usize,
    /// Per-worker execution thread budget. At startup every registered
    /// model's executor is clamped to at most this many threads, so
    /// total demand is bounded by `workers × budget` regardless of the
    /// `ExecConfig` the registry was built with — a registry built with
    /// `ExecConfig::default()` (all cores) under a multi-worker pool
    /// would otherwise demand `workers × cores` threads and thrash.
    /// `None` (the default) divides the machine evenly:
    /// `max(1, available_parallelism / workers)`. Clamping cannot
    /// change results — engine outputs are bitwise
    /// thread-count-invariant.
    pub exec_threads_per_worker: Option<usize>,
    /// Dynamic batching policy (see [`BatchConfig`]).
    pub batch: BatchConfig,
    /// End-to-end latency objective. When set, admission refuses
    /// requests whose estimated queueing delay (model backlog ×
    /// smoothed per-image service time) already exceeds it — shedding
    /// load early instead of serving answers that are already late.
    pub slo: Option<Duration>,
}

impl Default for ServeConfig {
    /// Two workers, an even per-worker split of the machine, default
    /// batching, no SLO-based shedding.
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            exec_threads_per_worker: None,
            batch: BatchConfig::default(),
            slo: None,
        }
    }
}

impl ServeConfig {
    /// The execution thread budget each worker gets: the explicit
    /// [`exec_threads_per_worker`](Self::exec_threads_per_worker) if
    /// set, otherwise an even division of the hardware threads across
    /// the worker pool (never below 1).
    pub fn worker_thread_budget(&self) -> usize {
        self.exec_threads_per_worker.unwrap_or_else(|| {
            let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            (cores / self.workers.max(1)).max(1)
        })
    }
}

/// Why a request was refused at the door.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// No model is registered under the given ID.
    UnknownModel(String),
    /// The model's bounded queue is full — retry later.
    QueueFull {
        /// The refused model.
        model: ModelId,
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// The backlog already implies missing the SLO.
    SloUnattainable {
        /// The refused model.
        model: ModelId,
        /// Estimated queueing delay at admission time.
        estimated: Duration,
        /// The configured objective it exceeds.
        slo: Duration,
    },
    /// The server is shutting down.
    ShuttingDown,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::UnknownModel(id) => write!(f, "unknown model '{id}'"),
            AdmissionError::QueueFull { model, capacity } => {
                write!(f, "queue for '{model}' is full ({capacity} requests)")
            }
            AdmissionError::SloUnattainable { model, estimated, slo } => {
                write!(f, "'{model}' backlog implies ~{estimated:?} queueing, over the {slo:?} SLO")
            }
            AdmissionError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A finished request as delivered to the submitter.
#[derive(Debug, Clone, PartialEq)]
pub struct InferResult {
    /// The model that served the request.
    pub model: ModelId,
    /// The request's input seed (echoed back).
    pub seed: u64,
    /// Per-layer outputs of the request's image.
    pub output: InferOutput,
    /// Time spent queued before the batch started executing.
    pub queue_wait: Duration,
    /// End-to-end latency (admission to response).
    pub latency: Duration,
    /// How many requests shared the executed batch.
    pub batch_size: usize,
}

/// One-shot response slot shared between a worker and the submitter.
#[derive(Debug, Default)]
struct ResponseSlot {
    cell: Mutex<Option<InferResult>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn fulfill(&self, result: InferResult) {
        let mut cell = self.cell.lock().expect("slot lock");
        *cell = Some(result);
        self.ready.notify_all();
    }
}

/// The submitter's end of an admitted request. Deliberately one-shot
/// (not `Clone`): [`wait`](Self::wait) / [`try_take`](Self::try_take)
/// move the single result out of the slot, so a second waiter on the
/// same request would block forever — the type makes that unwritable.
#[derive(Debug)]
pub struct ResponseHandle {
    slot: Arc<ResponseSlot>,
}

impl ResponseHandle {
    /// Blocks until the response arrives. Admitted requests are always
    /// served (the server drains its queue before stopping), so this
    /// cannot hang on a live or shutting-down server.
    pub fn wait(&self) -> InferResult {
        let mut cell = self.slot.cell.lock().expect("slot lock");
        loop {
            if let Some(result) = cell.take() {
                return result;
            }
            cell = self.slot.ready.wait(cell).expect("slot lock");
        }
    }

    /// Takes the response if it has already arrived.
    pub fn try_take(&self) -> Option<InferResult> {
        self.slot.cell.lock().expect("slot lock").take()
    }
}

/// Per-request payload carried through the batcher.
struct Ticket {
    seed: u64,
    slot: Arc<ResponseSlot>,
}

struct Inner {
    registry: ModelRegistry,
    clock: Arc<dyn Clock>,
    slo: Option<Duration>,
    queue: Mutex<DynamicBatcher<Ticket>>,
    /// Signaled on submit and shutdown; workers park here when no
    /// batch is due.
    wake: Condvar,
    metrics: Metrics,
    shutdown: AtomicBool,
}

impl Inner {
    /// One worker's life: take a due batch, execute it, respond;
    /// park until a deadline or a submit otherwise. Exits only when
    /// shutdown is flagged *and* the queue is fully drained.
    fn worker_loop(&self) {
        let mut queue = self.queue.lock().expect("queue lock");
        loop {
            let shutting_down = self.shutdown.load(Ordering::Acquire);
            let now = self.clock.now();
            let next = if shutting_down {
                queue.pop_any().map(Poll::Ready)
            } else {
                Some(queue.poll(now))
            };
            match next {
                Some(Poll::Ready(batch)) => {
                    drop(queue);
                    // Stamp the moment the batcher released the batch:
                    // the boundary between queue wait (admission →
                    // release) and batch wait (release → execution).
                    let released = self.clock.now();
                    self.execute(batch, released);
                    queue = self.queue.lock().expect("queue lock");
                }
                None => return, // shutdown and drained
                Some(Poll::Wait(deadline)) => {
                    // Cap the park so a shutdown flag or a virtual
                    // clock advance is noticed promptly even without a
                    // matching notify.
                    let timeout = deadline
                        .map(|d| d.saturating_sub(now))
                        .unwrap_or(Duration::from_millis(50))
                        .min(Duration::from_millis(50));
                    let (guard, _) = self
                        .wake
                        .wait_timeout(queue, timeout.max(Duration::from_micros(100)))
                        .expect("queue lock");
                    queue = guard;
                }
            }
        }
    }

    /// Executes one released batch and fulfills its responses.
    /// `released` is the clock reading at which the batcher released
    /// the batch to this worker (stamped in the worker loop).
    fn execute(&self, batch: Batch<Ticket>, released: Duration) {
        let entry = self.registry.entry(batch.model);
        let seeds: Vec<u64> = batch.requests.iter().map(|r| r.payload.seed).collect();
        let started = self.clock.now();
        let outputs = entry.infer_batch(&seeds);
        let finished = self.clock.now();

        let waits: Vec<Duration> =
            batch.requests.iter().map(|r| started.saturating_sub(r.enqueued_at)).collect();
        let latencies: Vec<Duration> =
            batch.requests.iter().map(|r| finished.saturating_sub(r.enqueued_at)).collect();
        let priorities: Vec<Priority> = batch.requests.iter().map(|r| r.priority).collect();
        self.metrics.record_batch(
            batch.model,
            finished.saturating_sub(started),
            &priorities,
            &waits,
            &latencies,
        );

        // Request-lifecycle trace: one interval per stage per request,
        // keyed by the request's batcher sequence number, labelled with
        // its priority class — queue wait vs batch wait vs exec time
        // become separately attributable per class in a Chrome trace.
        // The `is_enabled` guard keeps the disabled path at one relaxed
        // load for the whole batch.
        if wino_obs::is_enabled() {
            for request in &batch.requests {
                let queued_label = format!("queued:{}", request.priority);
                wino_obs::record_interval(
                    "serve.request",
                    &queued_label,
                    request.seq,
                    request.enqueued_at,
                    released.saturating_sub(request.enqueued_at),
                );
                let batch_label = format!("batch-wait:{}", request.priority);
                wino_obs::record_interval(
                    "serve.request",
                    &batch_label,
                    request.seq,
                    released,
                    started.saturating_sub(released),
                );
                let exec_label = format!("exec:{}", entry.id());
                wino_obs::record_interval(
                    "serve.request",
                    &exec_label,
                    request.seq,
                    started,
                    finished.saturating_sub(started),
                );
                wino_obs::record_interval(
                    "serve.request",
                    "completed",
                    request.seq,
                    finished,
                    Duration::ZERO,
                );
            }
        }

        let size = batch.requests.len();
        for ((request, output), (&wait, &latency)) in
            batch.requests.into_iter().zip(outputs).zip(waits.iter().zip(&latencies))
        {
            request.payload.slot.fulfill(InferResult {
                model: entry.id().clone(),
                seed: request.payload.seed,
                output,
                queue_wait: wait,
                latency,
                batch_size: size,
            });
        }
    }
}

/// A running inference server: registry + batcher + worker pool +
/// metrics. Construct with [`Server::start`], feed with
/// [`Server::submit`], stop with [`Server::shutdown`] (or drop).
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("models", &self.inner.registry.len())
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Starts the worker pool over `registry` on the real monotonic
    /// clock.
    pub fn start(registry: ModelRegistry, config: ServeConfig) -> Server {
        Server::with_clock(registry, config, Arc::new(SystemClock::new()))
    }

    /// Starts the worker pool on an explicit clock — a
    /// [`VirtualClock`](crate::VirtualClock) makes latency accounting
    /// deterministic in tests. Note that with a clock nobody advances,
    /// a *partial* batch never comes due: pair a frozen clock with
    /// `max_wait == 0` (or always-full batches), or advance the clock
    /// from the test. Fully deterministic batching tests should drive
    /// [`DynamicBatcher`] directly instead of a threaded server.
    pub fn with_clock(
        mut registry: ModelRegistry,
        config: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> Server {
        // Bound total thread demand: `workers` batches execute
        // concurrently, so each model's executor gets at most the
        // per-worker budget (see `ServeConfig::exec_threads_per_worker`).
        registry.clamp_exec_threads(config.worker_thread_budget());
        let metrics = Metrics::new(registry.entries().iter().map(|e| e.id().to_string()).collect());
        // Per-model batch caps: never release more than a model's
        // schedule-declared batch dimension, whatever the policy says.
        let caps = registry.entries().iter().map(|e| e.max_batch()).collect();
        let queue = Mutex::new(DynamicBatcher::with_caps(caps, config.batch));
        let inner = Arc::new(Inner {
            registry,
            clock,
            slo: config.slo,
            queue,
            wake: Condvar::new(),
            metrics,
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("wino-serve-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawn worker")
            })
            .collect();
        Server { inner, workers }
    }

    /// The models being served.
    pub fn registry(&self) -> &ModelRegistry {
        &self.inner.registry
    }

    /// Submits one single-image request for `model` at `priority`.
    /// `seed` identifies the request's deterministic input (see
    /// [`ModelEntry::request_input`](crate::ModelEntry::request_input)).
    ///
    /// # Errors
    ///
    /// Returns [`AdmissionError`] when the request is refused — unknown
    /// model, bounded queue full, the SLO test failing, or shutdown in
    /// progress. Refusal is the *only* loss mode: an `Ok` here
    /// guarantees a response.
    pub fn submit(
        &self,
        model: &ModelId,
        priority: Priority,
        seed: u64,
    ) -> Result<ResponseHandle, AdmissionError> {
        let inner = &self.inner;
        let Some(index) = inner.registry.index_of(model) else {
            return Err(AdmissionError::UnknownModel(model.to_string()));
        };
        let slot = Arc::new(ResponseSlot::default());
        let ticket = Ticket { seed, slot: Arc::clone(&slot) };
        let mut queue = inner.queue.lock().expect("queue lock");
        // Shutdown is checked *under the queue lock*: the workers'
        // exit decision (shutdown && drained) is made under this same
        // lock, so nothing can be admitted after the pool has decided
        // to stop — the no-orphaned-ticket half of "an Ok here
        // guarantees a response".
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(AdmissionError::ShuttingDown);
        }
        // SLO admission test: refuse when the backlog alone already
        // implies blowing the objective.
        if let (Some(slo), Some(per_image)) = (inner.slo, inner.metrics.estimated_image_time(index))
        {
            let estimated = per_image * (queue.queued(index) as u32 + 1);
            if estimated > slo {
                drop(queue);
                inner.metrics.record_rejected(index);
                return Err(AdmissionError::SloUnattainable {
                    model: model.clone(),
                    estimated,
                    slo,
                });
            }
        }
        let now = inner.clock.now();
        match queue.submit(index, priority, ticket, now) {
            Ok(seq) => {
                drop(queue);
                // Admission event: anchors the request's lifecycle
                // trace (same id as the queued/batch-wait/exec/
                // completed intervals the worker emits).
                if wino_obs::is_enabled() {
                    let label = format!("admitted:{priority}");
                    wino_obs::record_interval("serve.request", &label, seq, now, Duration::ZERO);
                }
                inner.wake.notify_one();
                Ok(ResponseHandle { slot })
            }
            Err(SubmitError::QueueFull { capacity, .. }) => {
                drop(queue);
                inner.metrics.record_rejected(index);
                Err(AdmissionError::QueueFull { model: model.clone(), capacity })
            }
        }
    }

    /// A metrics snapshot covering the server's lifetime so far.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot(self.inner.clock.now())
    }

    /// Requests currently queued (admitted, not yet executing).
    pub fn queued(&self) -> usize {
        self.inner.queue.lock().expect("queue lock").total_queued()
    }

    /// Stops accepting work, drains every admitted request, joins the
    /// pool, and returns the final metrics. Dropping the server does
    /// the same minus the snapshot.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop();
        self.metrics()
    }

    fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.wake.notify_all();
        for handle in self.workers.drain(..) {
            handle.join().expect("worker panicked");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VirtualClock;
    use wino_core::{ConvShape, Workload};
    use wino_exec::{ExecConfig, Schedule};

    fn tiny_registry(max_batch: usize) -> ModelRegistry {
        let mut wl = Workload::new("toy", max_batch);
        wl.push("a", "G", ConvShape::same_padded(6, 6, 1, 2, 3));
        let schedule = Schedule::homogeneous(&wl, 2).unwrap();
        let mut registry = ModelRegistry::new();
        registry.register("toy", wl, schedule, ExecConfig::with_threads(1), 3).unwrap();
        registry
    }

    fn quick_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            exec_threads_per_worker: None,
            batch: BatchConfig {
                max_batch: 4,
                max_wait: Duration::from_micros(200),
                queue_capacity: 64,
            },
            slo: None,
        }
    }

    #[test]
    fn served_response_matches_direct_inference() {
        let registry = tiny_registry(4);
        let direct = registry.entry(0).infer_one(99);
        let server = Server::start(registry, quick_config());
        let handle = server.submit(&"toy".into(), Priority::Normal, 99).expect("admitted");
        let result = handle.wait();
        assert_eq!(result.output, direct, "served == direct, bitwise");
        assert_eq!(result.seed, 99);
        assert!(result.batch_size >= 1);
        let snap = server.shutdown();
        assert_eq!(snap.total_completed(), 1);
    }

    #[test]
    fn every_admitted_request_is_answered_even_through_shutdown() {
        let server = Server::start(
            tiny_registry(4),
            ServeConfig {
                workers: 1,
                exec_threads_per_worker: None,
                // An hour-long max_wait: only shutdown's drain (or a
                // full batch) can release these.
                batch: BatchConfig {
                    max_batch: 64,
                    max_wait: Duration::from_secs(3600),
                    queue_capacity: 64,
                },
                slo: None,
            },
        );
        let handles: Vec<_> = (0..5u64)
            .map(|seed| server.submit(&"toy".into(), Priority::Normal, seed).expect("admitted"))
            .collect();
        let snap = server.shutdown();
        assert_eq!(snap.total_completed(), 5, "drain served everything");
        for (seed, h) in handles.iter().enumerate() {
            let result = h.try_take().expect("response delivered");
            assert_eq!(result.seed, seed as u64);
        }
    }

    #[test]
    fn unknown_model_and_post_shutdown_submissions_are_refused() {
        let server = Server::start(tiny_registry(2), quick_config());
        let err = server.submit(&"nope".into(), Priority::Normal, 1).unwrap_err();
        assert!(matches!(err, AdmissionError::UnknownModel(_)));
        assert!(err.to_string().contains("nope"));
        let inner = Arc::clone(&server.inner);
        drop(server);
        assert!(inner.shutdown.load(Ordering::Acquire));
    }

    #[test]
    fn bounded_queue_backpressure_reaches_the_submitter() {
        // One worker, glacial batching, capacity 2: the third
        // outstanding submit must see QueueFull.
        let server = Server::start(
            tiny_registry(2),
            ServeConfig {
                workers: 1,
                exec_threads_per_worker: None,
                batch: BatchConfig {
                    max_batch: 64,
                    max_wait: Duration::from_secs(3600),
                    queue_capacity: 2,
                },
                slo: None,
            },
        );
        let _a = server.submit(&"toy".into(), Priority::Normal, 1).expect("admitted");
        let _b = server.submit(&"toy".into(), Priority::Normal, 2).expect("admitted");
        let err = server.submit(&"toy".into(), Priority::Normal, 3).unwrap_err();
        assert!(matches!(err, AdmissionError::QueueFull { .. }), "{err}");
        let snap = server.shutdown();
        assert_eq!(snap.total_completed(), 2);
        assert_eq!(snap.total_rejected(), 1);
    }

    #[test]
    fn virtual_clock_latency_accounting_is_deterministic() {
        // With a frozen virtual clock every duration the server can
        // measure is exactly zero — queue wait, latency, percentiles.
        // max_wait must be zero: frozen time means a partial batch
        // would otherwise never come due.
        let clock = Arc::new(VirtualClock::new());
        let config = ServeConfig {
            workers: 1,
            exec_threads_per_worker: None,
            batch: BatchConfig { max_batch: 4, max_wait: Duration::ZERO, queue_capacity: 16 },
            slo: None,
        };
        let server =
            Server::with_clock(tiny_registry(2), config, Arc::clone(&clock) as Arc<dyn Clock>);
        let h = server.submit(&"toy".into(), Priority::High, 7).expect("admitted");
        let result = h.wait();
        assert_eq!(result.queue_wait, Duration::ZERO);
        assert_eq!(result.latency, Duration::ZERO);
        let snap = server.shutdown();
        assert_eq!(snap.per_model[0].mean_latency, Duration::ZERO);
    }

    #[test]
    fn worker_pool_clamps_executor_threads_to_its_budget() {
        // A registry registered with a greedy ExecConfig (here: 64
        // threads per call) under a 4-worker pool must be clamped to
        // the per-worker budget, so `workers × exec threads` never
        // exceeds `workers × budget`.
        let mut wl = Workload::new("toy", 2);
        wl.push("a", "G", ConvShape::same_padded(6, 6, 1, 2, 3));
        let schedule = Schedule::homogeneous(&wl, 2).unwrap();
        let mut registry = ModelRegistry::new();
        registry.register("greedy", wl, schedule, ExecConfig::with_threads(64), 3).unwrap();
        let config = ServeConfig {
            workers: 4,
            exec_threads_per_worker: Some(2),
            batch: BatchConfig::default(),
            slo: None,
        };
        assert_eq!(config.worker_thread_budget(), 2);
        let server = Server::start(registry, config);
        for entry in server.registry().entries() {
            assert!(
                entry.executor().config().threads <= 2,
                "entry '{}' still demands {} threads",
                entry.id(),
                entry.executor().config().threads
            );
        }
        // The clamped server still serves correctly.
        let direct = server.registry().entry(0).infer_one(5);
        let got = server.submit(&"greedy".into(), Priority::Normal, 5).expect("admitted").wait();
        assert_eq!(got.output, direct);
        server.shutdown();

        // The automatic budget divides the machine across the pool and
        // never rounds to zero, even with more workers than cores.
        let auto = ServeConfig { workers: 1024, ..ServeConfig::default() };
        assert!(auto.worker_thread_budget() >= 1);
    }

    #[test]
    fn slo_shedding_kicks_in_once_backlog_implies_misses() {
        // Big enough that one batch's service time is comfortably over
        // a microsecond, so the EWMA estimate cannot round to zero.
        let mut wl = Workload::new("mid", 4);
        wl.push("a", "G", ConvShape::same_padded(24, 24, 8, 8, 3));
        let schedule = Schedule::homogeneous(&wl, 2).unwrap();
        let mut registry = ModelRegistry::new();
        registry.register("toy", wl, schedule, ExecConfig::with_threads(1), 3).unwrap();
        let server = Server::start(
            registry,
            ServeConfig {
                workers: 1,
                exec_threads_per_worker: None,
                batch: BatchConfig {
                    max_batch: 4,
                    max_wait: Duration::from_micros(100),
                    queue_capacity: 1024,
                },
                // Nanosecond SLO: once any batch has completed (so a
                // service-time estimate exists), everything sheds.
                slo: Some(Duration::from_nanos(1)),
            },
        );
        // First request: no estimate yet, admitted; wait for it so the
        // EWMA is primed.
        let h = server.submit(&"toy".into(), Priority::Normal, 1).expect("admitted");
        let _ = h.wait();
        // Estimate now exists (a real convolution takes far over 1 ns
        // per image), so even an empty queue estimates over the SLO.
        let err = server.submit(&"toy".into(), Priority::Normal, 2).unwrap_err();
        assert!(matches!(err, AdmissionError::SloUnattainable { .. }), "{err}");
        assert!(err.to_string().contains("SLO"));
    }
}
