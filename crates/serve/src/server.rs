//! The serving front end: admission control, sharded worker groups,
//! continuous batching, and response delivery.
//!
//! A [`Server`] owns one clamped [`ModelRegistry`] clone *per shard*, a
//! [`ShardSet`] of per-shard [`DynamicBatcher`](crate::DynamicBatcher)s,
//! and `shards × workers` threads. The request lifecycle:
//!
//! 1. **Submit** — [`Server::submit`] resolves the model ID, applies
//!    admission control (bounded home-shard queue; optionally, the SLO
//!    test: reject when `backlog × smoothed-per-image-service-time`
//!    already exceeds the configured SLO), stamps the arrival time and
//!    enqueues on the model's home shard. The caller gets a
//!    [`ResponseHandle`] — a one-shot slot the serving side fulfills.
//! 2. **Batch** — the home shard's batcher coalesces same-model
//!    requests until the batch dimension fills or the oldest request
//!    has waited `max_wait`. An idle shard's worker may **steal** the
//!    released batch ([`ShardSet::poll_at`]); stealing moves only
//!    whole released batches, so ordering is untouched.
//! 3. **Execute** — the worker drives the batch through the model's
//!    cached plans. With continuous batching enabled, at every layer
//!    boundary it pulls newly queued requests of the same model into
//!    the free lanes ([`ModelEntry::infer_batch_continuous`]): late
//!    joiners run the remaining layers with the group and catch up on
//!    the earlier ones immediately after, instead of waiting for the
//!    next release.
//! 4. **Respond** — per-request outputs (bitwise identical to a solo
//!    run, whatever the admission schedule) are split out, metrics
//!    record per-model, per-shard and per-class figures, and each
//!    handle is fulfilled.
//!
//! **Faults.** A worker panic mid-batch (exercised by
//! [`ServeConfig::inject_panic_seed`]) is caught; the worker retries
//! every lane of the doomed batch solo, so innocents still get their
//! bitwise-correct outputs and only the poisoned lane fails — with an
//! explicit [`RequestError`], never silence. Admitted requests are
//! thus *resolved* (served or explicitly failed), never lost, and
//! [`Server::shutdown`] still drains and joins cleanly.

use crate::{
    Batch, BatchConfig, BatchItem, Clock, InferOutput, Metrics, MetricsSnapshot, ModelId,
    ModelRegistry, Priority, ShardPoll, ShardSet, SubmitError, SystemClock,
};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use wino_obs::{FlightRecorder, ReqEvent, ReqEventKind};

/// Server policy knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Executor shards (clamped to ≥ 1). Each shard owns a worker
    /// group, a registry clone clamped to the shard's thread budget,
    /// and its own batcher queue; models route to `model % shards`.
    pub shards: usize,
    /// Worker threads **per shard** taking batches from the queues
    /// (clamped to ≥ 1). Each worker executes one batch at a time; the
    /// *intra*-batch thread fan-out is the `ExecConfig` the registry's
    /// executors were built with, clamped at startup to the per-worker
    /// budget below.
    pub workers: usize,
    /// Whether an idle shard's workers may steal released batches from
    /// other shards' queues. Stealing moves whole released batches
    /// only, so it cannot reorder or re-bit anything.
    pub steal: bool,
    /// Whether workers admit queued same-model requests into in-flight
    /// batches at layer boundaries (continuous batching). Joiners'
    /// outputs stay bitwise identical to solo runs.
    pub continuous: bool,
    /// Per-worker execution thread budget. At startup every shard's
    /// registry clone is clamped to at most this many threads per
    /// call, so total demand is bounded by `shards × workers × budget`
    /// regardless of the `ExecConfig` the registry was built with.
    /// `None` (the default) divides the machine evenly:
    /// `max(1, available_parallelism / (shards × workers))`. Clamping
    /// cannot change results — engine outputs are bitwise
    /// thread-count-invariant.
    pub exec_threads_per_worker: Option<usize>,
    /// Dynamic batching policy (see [`BatchConfig`]), applied per
    /// shard.
    pub batch: BatchConfig,
    /// End-to-end latency objective. When set, admission refuses
    /// requests whose estimated queueing delay (model backlog ×
    /// smoothed per-image service time) already exceeds it — shedding
    /// load early instead of serving answers that are already late.
    pub slo: Option<Duration>,
    /// Fault injection: a worker that finds this seed in its batch
    /// panics mid-execution, exercising the catch → solo-retry →
    /// explicit-failure path. The poisoned seed fails deterministically
    /// (its solo retry is refused too); everyone else in the batch is
    /// still served correctly. Testing knob — leave `None` in
    /// production.
    pub inject_panic_seed: Option<u64>,
    /// Flight-recorder ring capacity **per shard** (clamped to ≥ 1).
    /// The black box is always on; 256 events per shard cost a few
    /// kilobytes and one short per-shard mutex hold per event.
    pub flight_capacity: usize,
    /// Where the flight recorder dumps its black-box JSON artifacts
    /// (`flight_fault.json` after a worker fault, `flight_shed.json`
    /// on the first shed, `flight_drain.json` at shutdown). `None`
    /// (the default) disables dumping; the rings still record and can
    /// be read through [`Server::flight_json`].
    pub flight_dump_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    /// One shard of two workers, stealing and continuous batching on,
    /// an even per-worker split of the machine, default batching, no
    /// SLO-based shedding, no fault injection.
    fn default() -> ServeConfig {
        ServeConfig {
            shards: 1,
            workers: 2,
            steal: true,
            continuous: true,
            exec_threads_per_worker: None,
            batch: BatchConfig::default(),
            slo: None,
            inject_panic_seed: None,
            flight_capacity: 256,
            flight_dump_dir: None,
        }
    }
}

impl ServeConfig {
    /// The execution thread budget each worker gets: the explicit
    /// [`exec_threads_per_worker`](Self::exec_threads_per_worker) if
    /// set, otherwise an even division of the hardware threads across
    /// all workers of all shards (never below 1).
    pub fn worker_thread_budget(&self) -> usize {
        self.exec_threads_per_worker.unwrap_or_else(|| {
            let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            (cores / (self.shards.max(1) * self.workers.max(1))).max(1)
        })
    }
}

/// Why a request was refused at the door.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// No model is registered under the given ID.
    UnknownModel(String),
    /// The model's bounded queue is full — retry later.
    QueueFull {
        /// The refused model.
        model: ModelId,
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// The backlog already implies missing the SLO.
    SloUnattainable {
        /// The refused model.
        model: ModelId,
        /// Estimated queueing delay at admission time.
        estimated: Duration,
        /// The configured objective it exceeds.
        slo: Duration,
    },
    /// The server is shutting down.
    ShuttingDown,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::UnknownModel(id) => write!(f, "unknown model '{id}'"),
            AdmissionError::QueueFull { model, capacity } => {
                write!(f, "queue for '{model}' is full ({capacity} requests)")
            }
            AdmissionError::SloUnattainable { model, estimated, slo } => {
                write!(f, "'{model}' backlog implies ~{estimated:?} queueing, over the {slo:?} SLO")
            }
            AdmissionError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// An admitted request that could not be served: the worker executing
/// its batch faulted, and the solo retry faulted again. This is the
/// *only* non-success outcome of an admitted request — it is delivered
/// through the [`ResponseHandle`], never silently dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// The model the request targeted.
    pub model: ModelId,
    /// The request's input seed.
    pub seed: u64,
    /// What the worker observed (panic payload when stringy).
    pub reason: String,
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request (model '{}', seed {}) failed: {}", self.model, self.seed, self.reason)
    }
}

impl std::error::Error for RequestError {}

/// A finished request as delivered to the submitter.
#[derive(Debug, Clone, PartialEq)]
pub struct InferResult {
    /// The model that served the request.
    pub model: ModelId,
    /// The request's input seed (echoed back).
    pub seed: u64,
    /// Per-layer outputs of the request's image.
    pub output: InferOutput,
    /// Time spent queued before the batch started executing.
    pub queue_wait: Duration,
    /// End-to-end latency (admission to response).
    pub latency: Duration,
    /// How many requests shared the executed batch (for a continuously
    /// grown batch: the final lane count).
    pub batch_size: usize,
}

/// One-shot response slot shared between a worker and the submitter.
#[derive(Debug, Default)]
struct ResponseSlot {
    cell: Mutex<Option<Result<InferResult, RequestError>>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn fulfill(&self, result: Result<InferResult, RequestError>) {
        let mut cell = self.cell.lock().expect("slot lock");
        *cell = Some(result);
        self.ready.notify_all();
    }
}

/// The submitter's end of an admitted request. Deliberately one-shot
/// (not `Clone`): [`wait`](Self::wait) / [`try_take`](Self::try_take)
/// move the single result out of the slot, so a second waiter on the
/// same request would block forever — the type makes that unwritable.
#[derive(Debug)]
pub struct ResponseHandle {
    slot: Arc<ResponseSlot>,
}

impl ResponseHandle {
    /// Blocks until the request resolves. Admitted requests always
    /// resolve — served ([`Ok`]) or explicitly failed by the fault
    /// path ([`Err`]) — so this cannot hang on a live or shutting-down
    /// server.
    ///
    /// # Errors
    ///
    /// Returns the [`RequestError`] a faulting worker recorded for
    /// this request (only possible when a worker panicked mid-batch
    /// *and* the solo retry failed too).
    pub fn wait(&self) -> Result<InferResult, RequestError> {
        let mut cell = self.slot.cell.lock().expect("slot lock");
        loop {
            if let Some(result) = cell.take() {
                return result;
            }
            cell = self.slot.ready.wait(cell).expect("slot lock");
        }
    }

    /// Takes the resolution if it has already arrived.
    pub fn try_take(&self) -> Option<Result<InferResult, RequestError>> {
        self.slot.cell.lock().expect("slot lock").take()
    }
}

/// Per-request payload carried through the batcher.
struct Ticket {
    seed: u64,
    slot: Arc<ResponseSlot>,
}

struct Inner {
    /// One registry clone per shard, each clamped to the per-worker
    /// thread budget. Cloning is cheap where it matters: every
    /// `PreparedPlan` runner is `Arc`-shared, so the transformed kernel
    /// banks exist once regardless of the shard count.
    registries: Vec<ModelRegistry>,
    clock: Arc<dyn Clock>,
    slo: Option<Duration>,
    continuous: bool,
    inject_panic_seed: Option<u64>,
    shards: ShardSet<Ticket>,
    metrics: Metrics,
    shutdown: AtomicBool,
    /// The always-on black box (one event ring per shard), shared with
    /// the [`ShardSet`] so dispatch events land without the server's
    /// help.
    flight: Arc<FlightRecorder>,
    flight_dump_dir: Option<PathBuf>,
    /// Debounces the first-shed black-box dump: overload sheds
    /// thousands of requests and one artifact is enough.
    shed_dumped: AtomicBool,
}

impl Inner {
    /// Dumps the black box to `file` in the configured dump directory,
    /// if one is set. Dump failures are swallowed: the black box is a
    /// diagnostic, never worth failing the serving path over.
    fn dump_flight(&self, cause: &str, file: &str) {
        if let Some(dir) = &self.flight_dump_dir {
            let _ = self.flight.dump_to(&dir.join(file), cause);
        }
    }
    /// One worker's life on `shard`: take a due batch (home first,
    /// then steal), execute it with continuous admission, respond;
    /// park until a deadline or a submit otherwise. Exits only when
    /// shutdown is flagged *and* every shard's queue is drained.
    fn worker_loop(&self, shard: usize) {
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                // Drain phase: release leftover batches regardless of
                // deadlines, from any shard, until nothing is queued.
                // `drain_one` locks every shard before reporting empty,
                // and submits check the shutdown flag under their home
                // shard's lock, so the lock-order chain guarantees no
                // admitted ticket is left behind.
                match self.shards.drain_one(self.clock.now()) {
                    Some(batch) => {
                        let released = self.clock.now();
                        self.execute(shard, batch, false, released);
                    }
                    None => return,
                }
                continue;
            }
            let now = self.clock.now();
            // Cap the park so a shutdown flag or a virtual clock
            // advance is noticed promptly even without a matching
            // notify.
            match self.shards.poll_or_park(shard, now, Duration::from_millis(50)) {
                ShardPoll::Ready { batch, from } => {
                    // Stamp the moment the batcher released the batch:
                    // the boundary between queue wait (admission →
                    // release) and batch wait (release → execution).
                    let released = self.clock.now();
                    self.execute(shard, batch, from != shard, released);
                }
                ShardPoll::Wait(_) => {} // parked; loop with fresh now
            }
        }
    }

    /// Executes one released batch on `shard`'s worker group — growing
    /// it at layer boundaries when continuous batching is on — and
    /// resolves every lane's response. `released` is the clock reading
    /// at which the batch left its queue.
    fn execute(&self, shard: usize, batch: Batch<Ticket>, stolen: bool, released: Duration) {
        let entry = self.registries[shard].entry(batch.model);
        let model = batch.model;
        let cap = self.shards.cap(model);
        let continuous = self.continuous && !self.shutdown.load(Ordering::Acquire);
        let poison = self.inject_panic_seed;
        let initial = batch.requests;
        // Lanes admitted mid-flight live outside the unwind scope so a
        // panic cannot lose them: whatever was pulled off the queue
        // before the fault is still here for the retry pass.
        let admitted: Mutex<Vec<BatchItem<Ticket>>> = Mutex::new(Vec::new());

        let started = self.clock.now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if poison.is_some_and(|p| initial.iter().any(|r| r.payload.seed == p)) {
                panic!("injected worker fault");
            }
            let seeds: Vec<u64> = initial.iter().map(|r| r.payload.seed).collect();
            entry.infer_batch_continuous(
                seeds,
                |&s| s,
                |boundary| {
                    if !continuous {
                        return Vec::new();
                    }
                    let free = cap.saturating_sub(boundary.lanes);
                    if free == 0 {
                        return Vec::new();
                    }
                    let joiners = self.shards.admit_into(model, free);
                    // Each joiner dispatched here instead of via a
                    // released batch: its trace records the join layer.
                    let at = self.clock.now();
                    for joiner in &joiners {
                        let join = ReqEvent::new(
                            joiner.seq,
                            at,
                            ReqEventKind::Join { layer: boundary.next_layer as u32 },
                        );
                        wino_obs::record_req(&join);
                        self.flight.record(shard, join);
                    }
                    if poison.is_some_and(|p| joiners.iter().any(|r| r.payload.seed == p)) {
                        // Keep the fault observable even when the poisoned
                        // request joins mid-flight.
                        let mut lanes = admitted.lock().expect("admitted lanes");
                        lanes.extend(joiners);
                        panic!("injected worker fault");
                    }
                    let seeds: Vec<u64> = joiners.iter().map(|r| r.payload.seed).collect();
                    admitted.lock().expect("admitted lanes").extend(joiners);
                    seeds
                },
            )
        }));
        let finished = self.clock.now();

        // Lane order of `outcome` is initial-then-admitted — exactly
        // how `run_layers_admitting` returns and how we rebuild the
        // request list here.
        let mut requests = initial;
        requests.extend(admitted.into_inner().unwrap_or_else(|e| e.into_inner()));

        match outcome {
            Ok(lanes) => {
                let outputs: Vec<InferOutput> =
                    lanes.into_iter().map(|(_, output)| output).collect();
                self.respond(shard, stolen, model, requests, outputs, released, started, finished)
            }
            Err(payload) => {
                let reason = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "worker panicked".to_owned());
                self.retry_solo(shard, stolen, model, requests, &reason, released);
            }
        }
    }

    /// The fault path: the batch's worker panicked, so every lane is
    /// retried alone. Innocent lanes get their (bitwise-correct) solo
    /// outputs; a lane that faults again — deterministically, for the
    /// injected poison seed — resolves to an explicit [`RequestError`].
    #[allow(clippy::too_many_arguments)]
    fn retry_solo(
        &self,
        shard: usize,
        stolen: bool,
        model: usize,
        requests: Vec<BatchItem<Ticket>>,
        reason: &str,
        released: Duration,
    ) {
        let entry = self.registries[shard].entry(model);
        let mut served: Vec<(BatchItem<Ticket>, InferOutput)> = Vec::new();
        let started = self.clock.now();
        for request in requests {
            let seed = request.payload.seed;
            let retry_event = ReqEvent::new(request.seq, started, ReqEventKind::PanicRetry);
            wino_obs::record_req(&retry_event);
            self.flight.record(shard, retry_event);
            let retry = catch_unwind(AssertUnwindSafe(|| {
                if self.inject_panic_seed == Some(seed) {
                    panic!("injected worker fault (solo retry)");
                }
                entry.infer_one(seed)
            }));
            match retry {
                Ok(output) => served.push((request, output)),
                Err(_) => {
                    self.metrics.record_failed(model, shard, 1);
                    let failed = ReqEvent::new(request.seq, self.clock.now(), ReqEventKind::Failed);
                    wino_obs::record_req(&failed);
                    self.flight.record(shard, failed);
                    request.payload.slot.fulfill(Err(RequestError {
                        model: entry.id().clone(),
                        seed,
                        reason: format!("batch worker fault, solo retry failed: {reason}"),
                    }));
                }
            }
        }
        let finished = self.clock.now();
        if !served.is_empty() {
            let (requests, outputs): (Vec<_>, Vec<_>) = served.into_iter().unzip();
            self.respond(shard, stolen, model, requests, outputs, released, started, finished);
        }
        // The fault path ran to completion: leave the black box behind,
        // panic-retry and failure events included.
        self.dump_flight("fault", "flight_fault.json");
    }

    /// Records metrics and traces for one executed lane set and
    /// fulfills every response slot.
    #[allow(clippy::too_many_arguments)]
    fn respond(
        &self,
        shard: usize,
        stolen: bool,
        model: usize,
        requests: Vec<BatchItem<Ticket>>,
        outputs: Vec<InferOutput>,
        released: Duration,
        started: Duration,
        finished: Duration,
    ) {
        let entry = self.registries[shard].entry(model);
        let waits: Vec<Duration> =
            requests.iter().map(|r| started.saturating_sub(r.enqueued_at)).collect();
        let latencies: Vec<Duration> =
            requests.iter().map(|r| finished.saturating_sub(r.enqueued_at)).collect();
        let priorities: Vec<Priority> = requests.iter().map(|r| r.priority).collect();
        self.metrics.record_batch(
            model,
            shard,
            stolen,
            finished.saturating_sub(started),
            &priorities,
            &waits,
            &latencies,
        );

        // Request-lifecycle trace: one interval per stage per request,
        // keyed by the request's batcher sequence number, labelled with
        // its priority class — queue wait vs batch wait vs exec time
        // become separately attributable per class in a Chrome trace.
        // The `is_enabled` guard keeps the disabled path at one relaxed
        // load for the whole batch.
        if wino_obs::is_enabled() {
            for request in &requests {
                let queued_label = format!("queued:{}", request.priority);
                wino_obs::record_interval(
                    "serve.request",
                    &queued_label,
                    request.seq,
                    request.enqueued_at,
                    released.saturating_sub(request.enqueued_at),
                );
                let batch_label = format!("batch-wait:{}", request.priority);
                wino_obs::record_interval(
                    "serve.request",
                    &batch_label,
                    request.seq,
                    released,
                    started.saturating_sub(released),
                );
                let exec_label = format!("exec:{}@shard{shard}", entry.id());
                wino_obs::record_interval(
                    "serve.request",
                    &exec_label,
                    request.seq,
                    started,
                    finished.saturating_sub(started),
                );
                wino_obs::record_interval(
                    "serve.request",
                    "completed",
                    request.seq,
                    finished,
                    Duration::ZERO,
                );
            }
        }

        let size = requests.len();
        for request in &requests {
            let resolved = ReqEvent::new(request.seq, finished, ReqEventKind::Resolved);
            wino_obs::record_req(&resolved);
            self.flight.record(shard, resolved);
        }
        for ((request, output), (&wait, &latency)) in
            requests.into_iter().zip(outputs).zip(waits.iter().zip(&latencies))
        {
            request.payload.slot.fulfill(Ok(InferResult {
                model: entry.id().clone(),
                seed: request.payload.seed,
                output,
                queue_wait: wait,
                latency,
                batch_size: size,
            }));
        }
    }
}

/// A running inference server: sharded registries + batcher shards +
/// worker groups + metrics. Construct with [`Server::start`], feed
/// with [`Server::submit`], stop with [`Server::shutdown`] (or drop).
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("models", &self.inner.registries[0].len())
            .field("shards", &self.inner.shards.shard_count())
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Starts the worker groups over `registry` on the real monotonic
    /// clock.
    pub fn start(registry: ModelRegistry, config: ServeConfig) -> Server {
        Server::with_clock(registry, config, Arc::new(SystemClock::new()))
    }

    /// Starts the worker groups on an explicit clock — a
    /// [`VirtualClock`](crate::VirtualClock) makes latency accounting
    /// deterministic in tests. Note that with a clock nobody advances,
    /// a *partial* batch never comes due: pair a frozen clock with
    /// `max_wait == 0` (or always-full batches), or advance the clock
    /// from the test. Fully deterministic batching tests should drive
    /// [`DynamicBatcher`](crate::DynamicBatcher) or
    /// [`ShardSet`] directly instead of a threaded server.
    pub fn with_clock(
        registry: ModelRegistry,
        config: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> Server {
        let shard_count = config.shards.max(1);
        let workers_per_shard = config.workers.max(1);
        // Bound total thread demand: `shards × workers` batches execute
        // concurrently, so every shard's registry clone gets at most
        // the per-worker budget (see
        // `ServeConfig::exec_threads_per_worker`). Prepared kernel
        // banks stay shared across clones (`Arc` runners), so the
        // clones cost table space, not transform work.
        let budget = config.worker_thread_budget();
        let registries: Vec<ModelRegistry> = (0..shard_count)
            .map(|_| {
                let mut clone = registry.clone();
                clone.clamp_exec_threads(budget);
                clone
            })
            .collect();
        let metrics = Metrics::new(
            registries[0].entries().iter().map(|e| e.id().to_string()).collect(),
            shard_count,
        );
        // Per-model batch caps: never release more than a model's
        // schedule-declared batch dimension, whatever the policy says.
        let caps = registries[0].entries().iter().map(|e| e.max_batch()).collect();
        // The black box: one bounded event ring per shard, always on.
        let flight = Arc::new(FlightRecorder::new(shard_count, config.flight_capacity.max(1)));
        let shards = ShardSet::new(shard_count, caps, config.batch, config.steal)
            .with_flight(Arc::clone(&flight));
        let inner = Arc::new(Inner {
            registries,
            clock,
            slo: config.slo,
            continuous: config.continuous,
            inject_panic_seed: config.inject_panic_seed,
            shards,
            metrics,
            shutdown: AtomicBool::new(false),
            flight,
            flight_dump_dir: config.flight_dump_dir.clone(),
            shed_dumped: AtomicBool::new(false),
        });
        let workers = (0..shard_count)
            .flat_map(|shard| (0..workers_per_shard).map(move |i| (shard, i)))
            .map(|(shard, i)| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("wino-serve-{shard}-{i}"))
                    .spawn(move || inner.worker_loop(shard))
                    .expect("spawn worker")
            })
            .collect();
        Server { inner, workers }
    }

    /// The models being served (shard 0's clamped clone — all shards
    /// serve the same roster).
    pub fn registry(&self) -> &ModelRegistry {
        &self.inner.registries[0]
    }

    /// Number of executor shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.shard_count()
    }

    /// Submits one single-image request for `model` at `priority`.
    /// `seed` identifies the request's deterministic input (see
    /// [`ModelEntry::request_input`](crate::ModelEntry::request_input)).
    ///
    /// # Errors
    ///
    /// Returns [`AdmissionError`] when the request is refused — unknown
    /// model, bounded queue full, the SLO test failing, or shutdown in
    /// progress. Refusal is the *only* loss mode: an `Ok` here
    /// guarantees a resolution through the handle.
    pub fn submit(
        &self,
        model: &ModelId,
        priority: Priority,
        seed: u64,
    ) -> Result<ResponseHandle, AdmissionError> {
        let inner = &self.inner;
        let Some(index) = inner.registries[0].index_of(model) else {
            return Err(AdmissionError::UnknownModel(model.to_string()));
        };
        let slot = Arc::new(ResponseSlot::default());
        let ticket = Ticket { seed, slot: Arc::clone(&slot) };
        let now = inner.clock.now();
        // Admission decisions happen *under the home shard's lock*:
        // the workers' exit decision (shutdown && every shard drained)
        // acquires this same lock, so nothing can be admitted after
        // the pool has decided to stop — the no-orphaned-ticket half
        // of "an Ok here guarantees a resolution".
        let decision = inner.shards.with_home(index, |queue| {
            if inner.shutdown.load(Ordering::Acquire) {
                return Err(AdmissionError::ShuttingDown);
            }
            // SLO admission test: refuse when the backlog alone
            // already implies blowing the objective.
            if let (Some(slo), Some(per_image)) =
                (inner.slo, inner.metrics.estimated_image_time(index))
            {
                let estimated = per_image * (queue.queued(index) as u32 + 1);
                if estimated > slo {
                    return Err(AdmissionError::SloUnattainable {
                        model: model.clone(),
                        estimated,
                        slo,
                    });
                }
            }
            match queue.submit(index, priority, ticket, now) {
                Ok(seq) => Ok(seq),
                Err(SubmitError::QueueFull { capacity, .. }) => {
                    Err(AdmissionError::QueueFull { model: model.clone(), capacity })
                }
            }
        });
        match decision {
            Ok(seq) => {
                // Admission event: anchors the request's lifecycle
                // trace (same id as the queued/batch-wait/exec/
                // completed intervals the worker emits).
                if wino_obs::is_enabled() {
                    let label = format!("admitted:{priority}");
                    wino_obs::record_interval("serve.request", &label, seq, now, Duration::ZERO);
                }
                // Mirror the admission into the black box. The batcher
                // already emitted Admitted/Enqueued to the request
                // trace under the shard lock; the flight ring is the
                // server's own always-on copy.
                let home = inner.shards.home(index);
                let home_u32 = home as u32;
                inner.flight.record(
                    home,
                    ReqEvent::new(seq, now, ReqEventKind::Admitted { class: priority.as_str() }),
                );
                inner.flight.record(
                    home,
                    ReqEvent::new(seq, now, ReqEventKind::Enqueued { shard: home_u32 }),
                );
                inner.shards.notify(home);
                Ok(ResponseHandle { slot })
            }
            Err(err) => {
                if matches!(
                    err,
                    AdmissionError::QueueFull { .. } | AdmissionError::SloUnattainable { .. }
                ) {
                    inner.metrics.record_rejected(index);
                    // Sheds carry no seq (the request never got one):
                    // seq 0 is the trace convention for refused work.
                    let shed = ReqEvent::new(0, now, ReqEventKind::Shed);
                    wino_obs::record_req(&shed);
                    inner.flight.record(inner.shards.home(index), shed);
                    if !inner.shed_dumped.swap(true, Ordering::AcqRel) {
                        // First shed only: overload sheds thousands and
                        // one black-box artifact is enough.
                        inner.dump_flight("shed", "flight_shed.json");
                    }
                }
                Err(err)
            }
        }
    }

    /// A metrics snapshot covering the server's lifetime so far.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot(self.inner.clock.now())
    }

    /// Requests currently queued (admitted, not yet executing), across
    /// every shard.
    pub fn queued(&self) -> usize {
        self.inner.shards.total_queued()
    }

    /// The flight recorder's black box as a JSON document — the last
    /// `flight_capacity` request-trace events per shard, newest last,
    /// tagged with `cause`. Always available, dump directory or not.
    pub fn flight_json(&self, cause: &str) -> String {
        self.inner.flight.dump_json(cause)
    }

    /// Stops accepting work, resolves every admitted request, joins
    /// every worker group, and returns the final metrics. Dropping the
    /// server does the same minus the snapshot.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop();
        self.metrics()
    }

    fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.shards.notify_all();
        let had_workers = !self.workers.is_empty();
        for handle in self.workers.drain(..) {
            handle.join().expect("worker panicked");
        }
        if had_workers {
            // The pool is quiet: leave the shutdown black box behind.
            self.inner.dump_flight("drain", "flight_drain.json");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VirtualClock;
    use wino_core::{ConvShape, Workload};
    use wino_exec::{ExecConfig, Schedule};

    fn tiny_registry(max_batch: usize) -> ModelRegistry {
        let mut wl = Workload::new("toy", max_batch);
        wl.push("a", "G", ConvShape::same_padded(6, 6, 1, 2, 3));
        let schedule = Schedule::homogeneous(&wl, 2).unwrap();
        let mut registry = ModelRegistry::new();
        registry.register("toy", wl, schedule, ExecConfig::with_threads(1), 3).unwrap();
        registry
    }

    /// Two toy models so a 2-shard server routes them to different
    /// shards.
    fn two_model_registry(max_batch: usize) -> ModelRegistry {
        let mut registry = ModelRegistry::new();
        for name in ["toy-a", "toy-b"] {
            let mut wl = Workload::new(name, max_batch);
            wl.push("a", "G", ConvShape::same_padded(6, 6, 1, 2, 3));
            wl.push("b", "G", ConvShape { h: 6, w: 6, c: 2, k: 2, r: 3, stride: 2, pad: 1 });
            let schedule = Schedule::homogeneous(&wl, 2).unwrap();
            registry.register(name, wl, schedule, ExecConfig::with_threads(1), 3).unwrap();
        }
        registry
    }

    fn quick_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            batch: BatchConfig {
                max_batch: 4,
                max_wait: Duration::from_micros(200),
                queue_capacity: 64,
            },
            ..ServeConfig::default()
        }
    }

    #[test]
    fn served_response_matches_direct_inference() {
        let registry = tiny_registry(4);
        let direct = registry.entry(0).infer_one(99);
        let server = Server::start(registry, quick_config());
        let handle = server.submit(&"toy".into(), Priority::Normal, 99).expect("admitted");
        let result = handle.wait().expect("served");
        assert_eq!(result.output, direct, "served == direct, bitwise");
        assert_eq!(result.seed, 99);
        assert!(result.batch_size >= 1);
        let snap = server.shutdown();
        assert_eq!(snap.total_completed(), 1);
    }

    #[test]
    fn sharded_server_serves_bitwise_across_models_and_shards() {
        let registry = two_model_registry(4);
        let direct_a = registry.entry(0).infer_one(5);
        let direct_b = registry.entry(1).infer_one(6);
        let server = Server::start(
            two_model_registry(4),
            ServeConfig {
                shards: 2,
                workers: 1,
                exec_threads_per_worker: Some(1),
                batch: BatchConfig {
                    max_batch: 4,
                    max_wait: Duration::from_micros(200),
                    queue_capacity: 64,
                },
                ..ServeConfig::default()
            },
        );
        assert_eq!(server.shard_count(), 2);
        let ha = server.submit(&"toy-a".into(), Priority::Normal, 5).expect("admitted");
        let hb = server.submit(&"toy-b".into(), Priority::High, 6).expect("admitted");
        assert_eq!(ha.wait().expect("served").output, direct_a);
        assert_eq!(hb.wait().expect("served").output, direct_b);
        let snap = server.shutdown();
        assert_eq!(snap.total_completed(), 2);
        assert_eq!(snap.per_shard.len(), 2);
        assert_eq!(snap.per_shard.iter().map(|s| s.completed).sum::<u64>(), 2);
    }

    #[test]
    fn every_admitted_request_is_answered_even_through_shutdown() {
        let server = Server::start(
            tiny_registry(4),
            ServeConfig {
                workers: 1,
                // An hour-long max_wait: only shutdown's drain (or a
                // full batch) can release these.
                batch: BatchConfig {
                    max_batch: 64,
                    max_wait: Duration::from_secs(3600),
                    queue_capacity: 64,
                },
                ..ServeConfig::default()
            },
        );
        let handles: Vec<_> = (0..5u64)
            .map(|seed| server.submit(&"toy".into(), Priority::Normal, seed).expect("admitted"))
            .collect();
        let snap = server.shutdown();
        assert_eq!(snap.total_completed(), 5, "drain served everything");
        for (seed, h) in handles.iter().enumerate() {
            let result = h.try_take().expect("resolved").expect("served");
            assert_eq!(result.seed, seed as u64);
        }
    }

    #[test]
    fn unknown_model_and_post_shutdown_submissions_are_refused() {
        let server = Server::start(tiny_registry(2), quick_config());
        let err = server.submit(&"nope".into(), Priority::Normal, 1).unwrap_err();
        assert!(matches!(err, AdmissionError::UnknownModel(_)));
        assert!(err.to_string().contains("nope"));
        let inner = Arc::clone(&server.inner);
        drop(server);
        assert!(inner.shutdown.load(Ordering::Acquire));
    }

    #[test]
    fn bounded_queue_backpressure_reaches_the_submitter() {
        // One worker, glacial batching, capacity 2: the third
        // outstanding submit must see QueueFull. The model's batch
        // dimension (64) must exceed the queue capacity, else two
        // queued requests make a full batch the worker may release
        // between the second and third submits.
        let server = Server::start(
            tiny_registry(64),
            ServeConfig {
                workers: 1,
                batch: BatchConfig {
                    max_batch: 64,
                    max_wait: Duration::from_secs(3600),
                    queue_capacity: 2,
                },
                ..ServeConfig::default()
            },
        );
        let _a = server.submit(&"toy".into(), Priority::Normal, 1).expect("admitted");
        let _b = server.submit(&"toy".into(), Priority::Normal, 2).expect("admitted");
        let err = server.submit(&"toy".into(), Priority::Normal, 3).unwrap_err();
        assert!(matches!(err, AdmissionError::QueueFull { .. }), "{err}");
        let snap = server.shutdown();
        assert_eq!(snap.total_completed(), 2);
        assert_eq!(snap.total_rejected(), 1);
    }

    #[test]
    fn virtual_clock_latency_accounting_is_deterministic() {
        // With a frozen virtual clock every duration the server can
        // measure is exactly zero — queue wait, latency, percentiles.
        // max_wait must be zero: frozen time means a partial batch
        // would otherwise never come due.
        let clock = Arc::new(VirtualClock::new());
        let config = ServeConfig {
            workers: 1,
            batch: BatchConfig { max_batch: 4, max_wait: Duration::ZERO, queue_capacity: 16 },
            ..ServeConfig::default()
        };
        let server =
            Server::with_clock(tiny_registry(2), config, Arc::clone(&clock) as Arc<dyn Clock>);
        let h = server.submit(&"toy".into(), Priority::High, 7).expect("admitted");
        let result = h.wait().expect("served");
        assert_eq!(result.queue_wait, Duration::ZERO);
        assert_eq!(result.latency, Duration::ZERO);
        let snap = server.shutdown();
        assert_eq!(snap.per_model[0].mean_latency, Duration::ZERO);
    }

    #[test]
    fn worker_pool_clamps_executor_threads_to_its_budget() {
        // A registry registered with a greedy ExecConfig (here: 64
        // threads per call) under a 4-worker pool must be clamped to
        // the per-worker budget, so `workers × exec threads` never
        // exceeds `workers × budget`.
        let mut wl = Workload::new("toy", 2);
        wl.push("a", "G", ConvShape::same_padded(6, 6, 1, 2, 3));
        let schedule = Schedule::homogeneous(&wl, 2).unwrap();
        let mut registry = ModelRegistry::new();
        registry.register("greedy", wl, schedule, ExecConfig::with_threads(64), 3).unwrap();
        let config =
            ServeConfig { workers: 4, exec_threads_per_worker: Some(2), ..ServeConfig::default() };
        assert_eq!(config.worker_thread_budget(), 2);
        let server = Server::start(registry, config);
        for entry in server.registry().entries() {
            assert!(
                entry.executor().config().threads <= 2,
                "entry '{}' still demands {} threads",
                entry.id(),
                entry.executor().config().threads
            );
        }
        // The clamped server still serves correctly.
        let direct = server.registry().entry(0).infer_one(5);
        let got = server
            .submit(&"greedy".into(), Priority::Normal, 5)
            .expect("admitted")
            .wait()
            .expect("served");
        assert_eq!(got.output, direct);
        server.shutdown();

        // The automatic budget divides the machine across all shards'
        // workers and never rounds to zero, even when oversubscribed.
        let auto = ServeConfig { shards: 32, workers: 32, ..ServeConfig::default() };
        assert!(auto.worker_thread_budget() >= 1);
    }

    #[test]
    fn slo_shedding_kicks_in_once_backlog_implies_misses() {
        // Big enough that one batch's service time is comfortably over
        // a microsecond, so the EWMA estimate cannot round to zero.
        let mut wl = Workload::new("mid", 4);
        wl.push("a", "G", ConvShape::same_padded(24, 24, 8, 8, 3));
        let schedule = Schedule::homogeneous(&wl, 2).unwrap();
        let mut registry = ModelRegistry::new();
        registry.register("toy", wl, schedule, ExecConfig::with_threads(1), 3).unwrap();
        let server = Server::start(
            registry,
            ServeConfig {
                workers: 1,
                batch: BatchConfig {
                    max_batch: 4,
                    max_wait: Duration::from_micros(100),
                    queue_capacity: 1024,
                },
                // Nanosecond SLO: once any batch has completed (so a
                // service-time estimate exists), everything sheds.
                slo: Some(Duration::from_nanos(1)),
                ..ServeConfig::default()
            },
        );
        // First request: no estimate yet, admitted; wait for it so the
        // EWMA is primed.
        let h = server.submit(&"toy".into(), Priority::Normal, 1).expect("admitted");
        let _ = h.wait().expect("served");
        // Estimate now exists (a real convolution takes far over 1 ns
        // per image), so even an empty queue estimates over the SLO.
        let err = server.submit(&"toy".into(), Priority::Normal, 2).unwrap_err();
        assert!(matches!(err, AdmissionError::SloUnattainable { .. }), "{err}");
        assert!(err.to_string().contains("SLO"));
    }

    #[test]
    fn injected_worker_fault_fails_only_the_poisoned_request() {
        // Seed 13 is poisoned: the worker panics on its batch, retries
        // every lane solo, and only seed 13 resolves to an error. The
        // innocent co-batched request is still served bitwise.
        let registry = tiny_registry(4);
        let direct = registry.entry(0).infer_one(7);
        let server = Server::start(
            registry,
            ServeConfig {
                workers: 1,
                batch: BatchConfig {
                    max_batch: 4,
                    max_wait: Duration::from_millis(5),
                    queue_capacity: 64,
                },
                inject_panic_seed: Some(13),
                ..ServeConfig::default()
            },
        );
        let poisoned = server.submit(&"toy".into(), Priority::Normal, 13).expect("admitted");
        let innocent = server.submit(&"toy".into(), Priority::Normal, 7).expect("admitted");
        let err = poisoned.wait().expect_err("poisoned seed must fail explicitly");
        assert_eq!(err.seed, 13);
        assert!(err.to_string().contains("fault"), "{err}");
        let ok = innocent.wait().expect("innocent lane survives the fault");
        assert_eq!(ok.output, direct, "solo retry is bitwise-correct");
        let snap = server.shutdown();
        assert_eq!(snap.total_failed(), 1);
        assert_eq!(snap.per_model[0].failed, 1);
    }
}
