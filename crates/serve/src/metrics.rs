//! Serving metrics: per-model throughput and latency distribution.
//!
//! Latencies are recorded into fixed-size logarithmic histograms (one
//! bucket per power of two of microseconds), so recording is O(1),
//! memory is constant, and the p50/p95/p99 read-out is a bucket walk —
//! the classic production-serving trade of exact quantiles for bounded
//! state. Quantiles are reported as the *midpoint* of the bucket the
//! rank falls in, keeping the reported value within 2× of the true
//! sample in both directions (see [`LatencyHistogram::quantile`]).
//!
//! All recording goes through interior mutability behind one mutex per
//! [`Metrics`] — workers record once per *batch*, not per request, so
//! contention stays negligible next to the convolution work. Besides
//! per-model counters the recorder keeps server-wide per-priority-class
//! queue-wait histograms, so the batcher's anti-starvation behaviour is
//! measurable per class; [`MetricsSnapshot::to_metric_families`]
//! exports everything for `wino_obs`' Prometheus/JSON exposition.

use crate::Priority;
use std::fmt;
use std::sync::Mutex;
use std::time::Duration;
use wino_obs::{MetricFamily, MetricKind, MetricSample};

/// Number of power-of-two microsecond buckets: covers up to
/// 2^39 µs ≈ 6.4 days, far beyond any sane request latency.
const BUCKETS: usize = 40;

/// A fixed-size log₂-bucketed latency histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum_us: u128,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram { counts: [0; BUCKETS], total: 0, sum_us: 0 }
    }

    fn bucket(us: u128) -> usize {
        // Bucket b holds latencies in [2^(b-1), 2^b) µs; bucket 0 holds
        // sub-microsecond samples.
        (128 - us.leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros();
        self.counts[Self::bucket(us)] += 1;
        self.total += 1;
        self.sum_us += us;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency (`ZERO` when empty).
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros((self.sum_us / u128::from(self.total)) as u64)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the *midpoint* of the
    /// bucket containing that rank; `ZERO` when empty.
    ///
    /// Log₂ buckets cannot resolve where inside a bucket the true
    /// quantile sits: bucket `b ≥ 1` spans `[2^(b-1), 2^b)` µs, a 2×
    /// range. Reporting the bucket's upper bound (as earlier versions
    /// did) therefore over-reports by up to 2× systematically at the
    /// bucket's lower edge. The arithmetic midpoint `1.5 · 2^(b-1)` µs
    /// instead brackets the true sample from both sides: the
    /// reported/true ratio stays in `[0.75, 1.5]` — comfortably within
    /// the ≤2× relative-error bound that `tests/metrics_props.rs` pins
    /// by proptest — for every sample of at least 1 µs. Bucket 0
    /// (sub-microsecond) reports its midpoint 0.5 µs, where no
    /// relative bound is possible.
    ///
    /// ```
    /// use std::time::Duration;
    /// use wino_serve::LatencyHistogram;
    ///
    /// let mut h = LatencyHistogram::new();
    /// for ms in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 40] {
    ///     h.record(Duration::from_millis(ms));
    /// }
    /// // Nine of ten samples sit in the ~1 ms bucket…
    /// assert!(h.quantile(0.5) < Duration::from_millis(3));
    /// // …but the p99 walk reaches the 40 ms outlier's bucket, whose
    /// // midpoint (≈49 ms) stays within 2× of the true sample.
    /// assert!(h.quantile(0.99) >= Duration::from_millis(40));
    /// assert!(h.quantile(0.99) <= Duration::from_millis(80));
    /// ```
    pub fn quantile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_midpoint(b);
            }
        }
        Self::bucket_midpoint(BUCKETS - 1)
    }

    /// Midpoint of bucket `b`: 0.5 µs for the sub-microsecond bucket,
    /// `1.5 · 2^(b-1)` µs (= `1500 · 2^(b-1)` ns) otherwise.
    fn bucket_midpoint(b: usize) -> Duration {
        if b == 0 {
            Duration::from_nanos(500)
        } else {
            Duration::from_nanos(1500u64 << (b - 1))
        }
    }

    /// Samples **certainly** above `threshold`: the summed counts of
    /// every bucket whose *lower* bound (`2^(b-1)` µs) is at or above
    /// it. Log₂ buckets cannot say where inside a bucket a sample sat,
    /// so this is a conservative undercount — a sample in the bucket
    /// straddling the threshold is not counted even if it was over.
    /// Equivalently, the count is exact for the effective threshold
    /// rounded **up** to the next bucket edge (e.g. asking for 10 ms
    /// counts samples ≥ 16.384 ms). The SLO burn-rate engine accepts
    /// that bias: it under-alerts slightly rather than crying wolf.
    pub fn count_over(&self, threshold: Duration) -> u64 {
        let us = threshold.as_micros();
        self.counts
            .iter()
            .enumerate()
            .filter(|&(b, _)| {
                let lower_us = if b == 0 { 0u128 } else { 1u128 << (b - 1) };
                b > 0 && lower_us >= us
            })
            .map(|(_, &count)| count)
            .sum()
    }
}

/// Accumulated counters of one model.
#[derive(Debug, Clone, Default)]
struct ModelCounters {
    completed: u64,
    rejected: u64,
    failed: u64,
    batches: u64,
    latency: LatencyHistogram,
    queue_wait: LatencyHistogram,
    /// EWMA of per-image service time, the admission controller's
    /// backlog estimate.
    ewma_image_us: Option<f64>,
}

/// Accumulated counters of one shard's worker group.
#[derive(Debug, Clone, Default)]
struct ShardCounters {
    batches: u64,
    stolen: u64,
    completed: u64,
    failed: u64,
    latency: LatencyHistogram,
}

/// Point-in-time metrics of one model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSnapshot {
    /// The model's stable ID.
    pub model: String,
    /// Requests completed (responses delivered).
    pub completed: u64,
    /// Requests refused at admission.
    pub rejected: u64,
    /// Batches executed.
    pub batches: u64,
    /// Mean images per executed batch.
    pub mean_batch: f64,
    /// Mean end-to-end latency.
    pub mean_latency: Duration,
    /// Median end-to-end latency (bucket midpoint).
    pub p50: Duration,
    /// 95th-percentile end-to-end latency (bucket midpoint).
    pub p95: Duration,
    /// 99th-percentile end-to-end latency (bucket midpoint).
    pub p99: Duration,
    /// 99.9th-percentile end-to-end latency (bucket midpoint) — the
    /// tail the serving-storm study gates on.
    pub p999: Duration,
    /// Requests that ended in an explicit failure (worker fault not
    /// recoverable by the solo retry) instead of a result.
    pub failed: u64,
    /// Mean time spent queued before execution started.
    pub mean_queue_wait: Duration,
}

/// Point-in-time metrics of one shard's worker group.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Batches this shard's workers executed (home plus stolen).
    pub batches: u64,
    /// Of those, batches stolen from another shard's queue.
    pub stolen: u64,
    /// Requests completed by this shard's workers.
    pub completed: u64,
    /// Requests explicitly failed by this shard's workers.
    pub failed: u64,
    /// Median end-to-end latency of requests served here.
    pub p50: Duration,
    /// 99th-percentile end-to-end latency served here.
    pub p99: Duration,
    /// 99.9th-percentile end-to-end latency served here.
    pub p999: Duration,
}

/// Server-wide distribution of one priority class (used for both
/// queue waits and end-to-end latencies) — the measurement behind the
/// batcher's anti-starvation claim: if low priority starved, its tail
/// would run away from the others.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassWaitSnapshot {
    /// The priority class.
    pub priority: Priority,
    /// Requests of this class completed.
    pub completed: u64,
    /// Mean of the class.
    pub mean: Duration,
    /// Median (bucket midpoint).
    pub p50: Duration,
    /// 95th percentile (bucket midpoint).
    pub p95: Duration,
    /// 99th percentile (bucket midpoint).
    pub p99: Duration,
    /// 99.9th percentile (bucket midpoint) — the storm study's
    /// per-class gate.
    pub p999: Duration,
}

/// Point-in-time metrics of the whole server.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Wall time the snapshot covers (since metrics construction).
    pub elapsed: Duration,
    /// Per-model snapshots, registry order.
    pub per_model: Vec<ModelSnapshot>,
    /// Server-wide queue-wait distribution per priority class,
    /// highest class first ([`Priority::ALL`] order).
    pub queue_wait_by_class: Vec<ClassWaitSnapshot>,
    /// Server-wide end-to-end latency distribution per priority class,
    /// highest class first.
    pub latency_by_class: Vec<ClassWaitSnapshot>,
    /// The cumulative end-to-end latency histograms behind
    /// [`latency_by_class`](Self::latency_by_class), same
    /// ([`Priority::ALL`]) order. Quantiles compress these to a few
    /// points; the SLO burn-rate engine instead diffs successive
    /// snapshots' histograms ([`LatencyHistogram::count_over`]) to
    /// count objective violations per window.
    pub class_latency_histograms: Vec<LatencyHistogram>,
    /// Per-shard worker-group snapshots, shard order.
    pub per_shard: Vec<ShardSnapshot>,
}

impl MetricsSnapshot {
    /// Requests completed across every model.
    pub fn total_completed(&self) -> u64 {
        self.per_model.iter().map(|m| m.completed).sum()
    }

    /// Requests refused at admission across every model.
    pub fn total_rejected(&self) -> u64 {
        self.per_model.iter().map(|m| m.rejected).sum()
    }

    /// Requests explicitly failed across every model (fault path).
    pub fn total_failed(&self) -> u64 {
        self.per_model.iter().map(|m| m.failed).sum()
    }

    /// Batches stolen across every shard.
    pub fn total_stolen(&self) -> u64 {
        self.per_shard.iter().map(|s| s.stolen).sum()
    }

    /// Completed requests per second over the covered window
    /// (`0.0` for an empty window).
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.total_completed() as f64 / secs
    }

    /// Exports the snapshot as [`wino_obs`] metric families, ready for
    /// Prometheus text or JSON exposition through
    /// [`wino_obs::ObsReport`].
    pub fn to_metric_families(&self) -> Vec<MetricFamily> {
        let model_label = |m: &ModelSnapshot| vec![("model".to_owned(), m.model.clone())];
        let per_model =
            |name: &str, help: &str, kind, value: &dyn Fn(&ModelSnapshot) -> f64| MetricFamily {
                name: name.to_owned(),
                help: help.to_owned(),
                kind,
                samples: self
                    .per_model
                    .iter()
                    .map(|m| MetricSample { labels: model_label(m), value: value(m) })
                    .collect(),
            };
        let mut families = vec![
            MetricFamily::scalar(
                "wino_serve_uptime_seconds",
                "Wall time the snapshot covers.",
                MetricKind::Gauge,
                self.elapsed.as_secs_f64(),
            ),
            per_model(
                "wino_serve_completed_total",
                "Requests completed (responses delivered).",
                MetricKind::Counter,
                &|m| m.completed as f64,
            ),
            per_model(
                "wino_serve_rejected_total",
                "Requests refused at admission.",
                MetricKind::Counter,
                &|m| m.rejected as f64,
            ),
            per_model("wino_serve_batches_total", "Batches executed.", MetricKind::Counter, &|m| {
                m.batches as f64
            }),
            per_model(
                "wino_serve_mean_batch_images",
                "Mean images per executed batch.",
                MetricKind::Gauge,
                &|m| m.mean_batch,
            ),
        ];
        families.push(per_model(
            "wino_serve_failed_total",
            "Requests explicitly failed by the fault path.",
            MetricKind::Counter,
            &|m| m.failed as f64,
        ));
        type Pick = fn(&ModelSnapshot) -> Duration;
        let quantiles: [(&str, Pick); 4] =
            [("p50", |m| m.p50), ("p95", |m| m.p95), ("p99", |m| m.p99), ("p999", |m| m.p999)];
        for (suffix, pick) in quantiles {
            families.push(per_model(
                &format!("wino_serve_latency_{suffix}_seconds"),
                &format!("{suffix} end-to-end latency (log2-bucket midpoint)."),
                MetricKind::Gauge,
                &move |m| pick(m).as_secs_f64(),
            ));
        }
        let shard_label = |s: &ShardSnapshot| vec![("shard".to_owned(), s.shard.to_string())];
        let per_shard =
            |name: &str, help: &str, kind, value: &dyn Fn(&ShardSnapshot) -> f64| MetricFamily {
                name: name.to_owned(),
                help: help.to_owned(),
                kind,
                samples: self
                    .per_shard
                    .iter()
                    .map(|s| MetricSample { labels: shard_label(s), value: value(s) })
                    .collect(),
            };
        families.push(per_shard(
            "wino_serve_shard_batches_total",
            "Batches executed by each shard's worker group.",
            MetricKind::Counter,
            &|s| s.batches as f64,
        ));
        families.push(per_shard(
            "wino_serve_shard_stolen_total",
            "Batches stolen from another shard's queue.",
            MetricKind::Counter,
            &|s| s.stolen as f64,
        ));
        families.push(per_shard(
            "wino_serve_shard_latency_p999_seconds",
            "99.9th-percentile end-to-end latency served per shard.",
            MetricKind::Gauge,
            &|s| s.p999.as_secs_f64(),
        ));
        families.push(MetricFamily {
            name: "wino_serve_class_latency_p999_seconds".to_owned(),
            help: "99.9th-percentile end-to-end latency per priority class.".to_owned(),
            kind: MetricKind::Gauge,
            samples: self
                .latency_by_class
                .iter()
                .map(|c| MetricSample {
                    labels: vec![("class".to_owned(), c.priority.to_string())],
                    value: c.p999.as_secs_f64(),
                })
                .collect(),
        });
        families.push(MetricFamily {
            name: "wino_serve_queue_wait_p95_seconds".to_owned(),
            help: "95th-percentile queue wait per priority class (log2-bucket midpoint)."
                .to_owned(),
            kind: MetricKind::Gauge,
            samples: self
                .queue_wait_by_class
                .iter()
                .map(|c| MetricSample {
                    labels: vec![("class".to_owned(), c.priority.to_string())],
                    value: c.p95.as_secs_f64(),
                })
                .collect(),
        });
        families.push(MetricFamily {
            name: "wino_serve_class_completed_total".to_owned(),
            help: "Requests completed per priority class.".to_owned(),
            kind: MetricKind::Counter,
            samples: self
                .queue_wait_by_class
                .iter()
                .map(|c| MetricSample {
                    labels: vec![("class".to_owned(), c.priority.to_string())],
                    value: c.completed as f64,
                })
                .collect(),
        });
        families
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "served {} requests in {:.2} s ({:.1} req/s, {} rejected)",
            self.total_completed(),
            self.elapsed.as_secs_f64(),
            self.throughput_rps(),
            self.total_rejected()
        )?;
        for m in &self.per_model {
            writeln!(
                f,
                "  {:<14} {:>6} done {:>5} rej {:>6.2} img/batch  p50 {:>9.3?}  p95 {:>9.3?}  p99 {:>9.3?}",
                m.model, m.completed, m.rejected, m.mean_batch, m.p50, m.p95, m.p99
            )?;
        }
        for c in &self.queue_wait_by_class {
            if c.completed > 0 {
                writeln!(
                    f,
                    "  queue-wait {:<7} {:>6} done  mean {:>9.3?}  p95 {:>9.3?}  p99 {:>9.3?}",
                    c.priority.to_string(),
                    c.completed,
                    c.mean,
                    c.p95,
                    c.p99
                )?;
            }
        }
        for s in &self.per_shard {
            if s.batches > 0 {
                writeln!(
                    f,
                    "  shard {:<2} {:>6} batches ({} stolen) {:>6} done {:>4} failed  p99 {:>9.3?}  p99.9 {:>9.3?}",
                    s.shard, s.batches, s.stolen, s.completed, s.failed, s.p99, s.p999
                )?;
            }
        }
        Ok(())
    }
}

/// Everything one metrics mutex protects: per-model counters plus the
/// server-wide per-priority-class queue-wait histograms.
#[derive(Debug)]
struct MetricsState {
    models: Vec<ModelCounters>,
    shards: Vec<ShardCounters>,
    /// Queue waits keyed by [`Priority::index`] — server-wide, because
    /// scheduling between classes happens across models in one batcher.
    class_waits: [LatencyHistogram; 3],
    /// End-to-end latencies keyed by [`Priority::index`].
    class_latencies: [LatencyHistogram; 3],
}

/// Thread-safe per-model metrics recorder.
#[derive(Debug)]
pub struct Metrics {
    models: Vec<String>,
    state: Mutex<MetricsState>,
}

impl Metrics {
    /// A recorder for the given model IDs (registry order) and
    /// `shards` worker groups.
    pub fn new(models: Vec<String>, shards: usize) -> Metrics {
        let state = Mutex::new(MetricsState {
            models: models.iter().map(|_| ModelCounters::default()).collect(),
            shards: (0..shards).map(|_| ShardCounters::default()).collect(),
            class_waits: std::array::from_fn(|_| LatencyHistogram::new()),
            class_latencies: std::array::from_fn(|_| LatencyHistogram::new()),
        });
        Metrics { models, state }
    }

    /// Records one executed batch: the shard whose worker group ran it
    /// (and whether the batch was stolen from another shard's queue),
    /// its size, the service time of the whole batch, and each
    /// request's priority class, queue wait and end-to-end latency
    /// (the three slices are index-aligned).
    ///
    /// # Panics
    ///
    /// Panics when `model` or `shard` is out of range or the slices
    /// disagree in length.
    #[allow(clippy::too_many_arguments)]
    pub fn record_batch(
        &self,
        model: usize,
        shard: usize,
        stolen: bool,
        service: Duration,
        priorities: &[Priority],
        waits: &[Duration],
        latencies: &[Duration],
    ) {
        assert_eq!(waits.len(), latencies.len());
        assert_eq!(waits.len(), priorities.len());
        let batch = waits.len() as u64;
        let mut state = self.state.lock().expect("metrics lock");
        let c = &mut state.models[model];
        c.batches += 1;
        c.completed += batch;
        for (&w, &l) in waits.iter().zip(latencies) {
            c.queue_wait.record(w);
            c.latency.record(l);
        }
        if batch > 0 {
            let per_image = service.as_micros() as f64 / batch as f64;
            // EWMA with alpha 0.3: reactive enough for admission
            // control, smooth enough to ignore one noisy batch.
            c.ewma_image_us =
                Some(c.ewma_image_us.map_or(per_image, |old| 0.7 * old + 0.3 * per_image));
        }
        let s = &mut state.shards[shard];
        s.batches += 1;
        s.stolen += u64::from(stolen);
        s.completed += batch;
        for &l in latencies {
            s.latency.record(l);
        }
        for ((&p, &w), &l) in priorities.iter().zip(waits).zip(latencies) {
            state.class_waits[p.index()].record(w);
            state.class_latencies[p.index()].record(l);
        }
    }

    /// Records one request refused at admission.
    ///
    /// # Panics
    ///
    /// Panics when `model` is out of range.
    pub fn record_rejected(&self, model: usize) {
        self.state.lock().expect("metrics lock").models[model].rejected += 1;
    }

    /// Records `n` requests of `model` explicitly failed by `shard`'s
    /// workers (the fault path: a lane whose solo retry also
    /// panicked).
    ///
    /// # Panics
    ///
    /// Panics when `model` or `shard` is out of range.
    pub fn record_failed(&self, model: usize, shard: usize, n: u64) {
        let mut state = self.state.lock().expect("metrics lock");
        state.models[model].failed += n;
        state.shards[shard].failed += n;
    }

    /// The smoothed per-image service-time estimate of `model`, if any
    /// batch has completed yet — what admission control multiplies by
    /// the backlog to estimate queueing delay.
    ///
    /// # Panics
    ///
    /// Panics when `model` is out of range.
    pub fn estimated_image_time(&self, model: usize) -> Option<Duration> {
        self.state.lock().expect("metrics lock").models[model]
            .ewma_image_us
            .map(|us| Duration::from_micros(us as u64))
    }

    /// A consistent snapshot covering `elapsed` of wall time.
    pub fn snapshot(&self, elapsed: Duration) -> MetricsSnapshot {
        let state = self.state.lock().expect("metrics lock");
        let per_model = self
            .models
            .iter()
            .zip(state.models.iter())
            .map(|(id, c)| ModelSnapshot {
                model: id.clone(),
                completed: c.completed,
                rejected: c.rejected,
                batches: c.batches,
                mean_batch: if c.batches == 0 {
                    0.0
                } else {
                    c.completed as f64 / c.batches as f64
                },
                mean_latency: c.latency.mean(),
                p50: c.latency.quantile(0.50),
                p95: c.latency.quantile(0.95),
                p99: c.latency.quantile(0.99),
                p999: c.latency.quantile(0.999),
                failed: c.failed,
                mean_queue_wait: c.queue_wait.mean(),
            })
            .collect();
        let class_snapshot = |hists: &[LatencyHistogram; 3]| -> Vec<ClassWaitSnapshot> {
            Priority::ALL
                .iter()
                .map(|&priority| {
                    let h = &hists[priority.index()];
                    ClassWaitSnapshot {
                        priority,
                        completed: h.count(),
                        mean: h.mean(),
                        p50: h.quantile(0.50),
                        p95: h.quantile(0.95),
                        p99: h.quantile(0.99),
                        p999: h.quantile(0.999),
                    }
                })
                .collect()
        };
        let queue_wait_by_class = class_snapshot(&state.class_waits);
        let latency_by_class = class_snapshot(&state.class_latencies);
        let class_latency_histograms =
            Priority::ALL.iter().map(|&p| state.class_latencies[p.index()].clone()).collect();
        let per_shard = state
            .shards
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardSnapshot {
                shard,
                batches: s.batches,
                stolen: s.stolen,
                completed: s.completed,
                failed: s.failed,
                p50: s.latency.quantile(0.50),
                p99: s.latency.quantile(0.99),
                p999: s.latency.quantile(0.999),
            })
            .collect();
        MetricsSnapshot {
            elapsed,
            per_model,
            queue_wait_by_class,
            latency_by_class,
            class_latency_histograms,
            per_shard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn histogram_quantiles_report_bucket_midpoints_within_2x() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(ms(1));
        }
        h.record(ms(500));
        assert_eq!(h.count(), 100);
        // p50 reports the 1 ms sample's bucket midpoint (768 µs) —
        // within 2× of the true sample in both directions.
        assert!(h.quantile(0.5) >= Duration::from_micros(500));
        assert!(h.quantile(0.5) <= ms(2));
        // p99 still sits in the bulk; only the very tail sees the
        // outlier, whose midpoint (≈393 ms) brackets 500 ms within 2×.
        assert!(h.quantile(0.99) <= ms(2));
        assert!(h.quantile(1.0) >= ms(250) && h.quantile(1.0) <= ms(500));
        assert!(h.mean() >= ms(5));
    }

    #[test]
    fn histogram_midpoints_bracket_exact_powers_of_two() {
        // 1024 µs lands in the [1024, 2048) µs bucket, midpoint 1536 µs.
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(1024));
        assert_eq!(h.quantile(0.5), Duration::from_micros(1536));
        // A sub-microsecond sample reports the 0.5 µs midpoint.
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(100));
        assert_eq!(h.quantile(1.0), Duration::from_nanos(500));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn batch_recording_feeds_snapshot_and_ewma() {
        let m = Metrics::new(vec!["a".into(), "b".into()], 2);
        let normal = [Priority::Normal, Priority::Normal];
        m.record_batch(0, 0, false, ms(8), &normal, &[ms(1), ms(2)], &[ms(5), ms(6)]);
        m.record_batch(0, 0, false, ms(4), &[Priority::High], &[ms(1)], &[ms(3)]);
        m.record_rejected(1);
        let snap = m.snapshot(ms(1000));
        assert_eq!(snap.total_completed(), 3);
        assert_eq!(snap.total_rejected(), 1);
        assert_eq!(snap.per_model[0].batches, 2);
        assert!((snap.per_model[0].mean_batch - 1.5).abs() < 1e-9);
        assert!((snap.throughput_rps() - 3.0).abs() < 1e-9);
        // EWMA: 0.7 * 4000 µs + 0.3 * 4000 µs = 4000 µs per image.
        let est = m.estimated_image_time(0).unwrap();
        assert_eq!(est, Duration::from_micros(4000));
        assert_eq!(m.estimated_image_time(1), None);
        let text = snap.to_string();
        assert!(text.contains("a") && text.contains("req/s"));
        assert!(text.contains("queue-wait high"), "{text}");
    }

    #[test]
    fn queue_waits_are_attributed_to_priority_classes() {
        let m = Metrics::new(vec!["a".into()], 1);
        m.record_batch(
            0,
            0,
            false,
            ms(2),
            &[Priority::High, Priority::Low, Priority::Low],
            &[ms(1), ms(64), ms(64)],
            &[ms(2), ms(65), ms(65)],
        );
        let snap = m.snapshot(ms(100));
        assert_eq!(snap.queue_wait_by_class.len(), 3);
        let by_class = &snap.queue_wait_by_class;
        assert_eq!(by_class[0].priority, Priority::High);
        assert_eq!(by_class[0].completed, 1);
        assert_eq!(by_class[1].completed, 0, "no normal traffic recorded");
        assert_eq!(by_class[2].completed, 2);
        // Low waited far longer than high, and the histograms see it.
        assert!(by_class[2].p95 > by_class[0].p95 * 10);
    }

    #[test]
    fn ewma_estimate_is_none_before_the_first_batch() {
        // Warm-up behaviour the admission controller relies on: with no
        // completed batch there is no service-time estimate, so the SLO
        // test cannot fire.
        let m = Metrics::new(vec!["a".into()], 1);
        assert_eq!(m.estimated_image_time(0), None);
        // Rejections alone must not create an estimate.
        m.record_rejected(0);
        assert_eq!(m.estimated_image_time(0), None);
        // An empty batch (possible only in principle) must not either.
        m.record_batch(0, 0, false, Duration::ZERO, &[], &[], &[]);
        assert_eq!(m.estimated_image_time(0), None);
    }

    #[test]
    fn ewma_converges_after_a_service_time_step_change() {
        let m = Metrics::new(vec!["a".into()], 1);
        let one = [Priority::Normal];
        // Five batches at 4 ms per image settle the estimate at 4 ms.
        for _ in 0..5 {
            m.record_batch(0, 0, false, ms(4), &one, &[ms(0)], &[ms(4)]);
        }
        let before = m.estimated_image_time(0).unwrap();
        assert!((before.as_secs_f64() - 0.004).abs() < 1e-4, "{before:?}");
        // Service time steps to 8 ms per image. With alpha 0.3 the
        // residual decays by 0.7 per batch: after 20 batches the
        // estimate is within 0.7^20 ≈ 0.08% of the new level.
        for _ in 0..20 {
            m.record_batch(0, 0, false, ms(8), &one, &[ms(0)], &[ms(8)]);
        }
        let after = m.estimated_image_time(0).unwrap();
        let err = (after.as_secs_f64() - 0.008).abs() / 0.008;
        assert!(err < 0.01, "estimate {after:?} did not converge to 8 ms (err {err:.4})");
        // And convergence is monotone-ish: one batch in, the estimate
        // had moved towards the step but not overshot.
        let m2 = Metrics::new(vec!["a".into()], 1);
        for _ in 0..5 {
            m2.record_batch(0, 0, false, ms(4), &one, &[ms(0)], &[ms(4)]);
        }
        m2.record_batch(0, 0, false, ms(8), &one, &[ms(0)], &[ms(8)]);
        let one_step = m2.estimated_image_time(0).unwrap();
        // 0.7 · 4 ms + 0.3 · 8 ms = 5.2 ms.
        assert!((one_step.as_secs_f64() - 0.0052).abs() < 1e-4, "{one_step:?}");
    }

    #[test]
    fn snapshot_exports_metric_families() {
        let m = Metrics::new(vec!["a".into()], 1);
        m.record_batch(0, 0, false, ms(4), &[Priority::High], &[ms(1)], &[ms(4)]);
        m.record_rejected(0);
        let snap = m.snapshot(ms(2000));
        let report = wino_obs::ObsReport { metrics: snap.to_metric_families(), profile: None };
        let text = report.to_prometheus();
        assert!(text.contains("wino_serve_completed_total{model=\"a\"} 1"), "{text}");
        assert!(text.contains("wino_serve_rejected_total{model=\"a\"} 1"), "{text}");
        assert!(text.contains("wino_serve_uptime_seconds 2"), "{text}");
        assert!(text.contains("wino_serve_queue_wait_p95_seconds{class=\"high\"}"), "{text}");
        assert!(text.contains("wino_serve_class_completed_total{class=\"low\"} 0"), "{text}");
        assert!(text.contains("# TYPE wino_serve_latency_p99_seconds gauge"), "{text}");
        let json = report.to_json();
        assert!(json.contains("\"wino_serve_latency_p50_seconds\""), "{json}");
    }

    #[test]
    fn count_over_is_a_conservative_bucket_edge_count() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(500)); // bucket [256, 512) µs
        h.record(ms(1)); // [512, 1024) µs
        h.record(ms(20)); // [16384, 32768) µs
        h.record(ms(100)); // [65536, 131072) µs
                           // Threshold 10 ms rounds up to the 16.384 ms bucket edge: the
                           // 20 ms and 100 ms samples count, the rest certainly do not.
        assert_eq!(h.count_over(Duration::from_millis(10)), 2);
        // A sample exactly inside the straddling bucket is *not*
        // counted (conservative undercount).
        assert_eq!(h.count_over(ms(20)), 1, "20 ms sits in its threshold's own bucket");
        // Degenerate thresholds.
        assert_eq!(h.count_over(Duration::ZERO), 4, "every ≥1 µs sample is over zero");
        assert_eq!(h.count_over(Duration::from_secs(86400 * 30)), 0);
        assert_eq!(LatencyHistogram::new().count_over(ms(1)), 0);
    }

    /// Pins the complete exposition surface: every metric family name
    /// and its label key, in both Prometheus text and JSON. Renaming or
    /// dropping a family breaks dashboards silently — this test makes
    /// it loud.
    #[test]
    fn exposition_pins_every_family_name_and_label() {
        let m = Metrics::new(vec!["a".into()], 2);
        m.record_batch(0, 0, false, ms(4), &[Priority::High], &[ms(1)], &[ms(4)]);
        m.record_batch(0, 1, true, ms(4), &[Priority::Low], &[ms(2)], &[ms(9)]);
        m.record_rejected(0);
        m.record_failed(0, 1, 1);
        let snap = m.snapshot(ms(3000));
        let families = snap.to_metric_families();
        let expected = [
            ("wino_serve_uptime_seconds", None),
            ("wino_serve_completed_total", Some("model")),
            ("wino_serve_rejected_total", Some("model")),
            ("wino_serve_batches_total", Some("model")),
            ("wino_serve_mean_batch_images", Some("model")),
            ("wino_serve_failed_total", Some("model")),
            ("wino_serve_latency_p50_seconds", Some("model")),
            ("wino_serve_latency_p95_seconds", Some("model")),
            ("wino_serve_latency_p99_seconds", Some("model")),
            ("wino_serve_latency_p999_seconds", Some("model")),
            ("wino_serve_shard_batches_total", Some("shard")),
            ("wino_serve_shard_stolen_total", Some("shard")),
            ("wino_serve_shard_latency_p999_seconds", Some("shard")),
            ("wino_serve_class_latency_p999_seconds", Some("class")),
            ("wino_serve_queue_wait_p95_seconds", Some("class")),
            ("wino_serve_class_completed_total", Some("class")),
        ];
        assert_eq!(
            families.len(),
            expected.len(),
            "family set changed: {:?}",
            families.iter().map(|f| f.name.clone()).collect::<Vec<_>>()
        );
        for (i, (name, label)) in expected.iter().enumerate() {
            assert_eq!(families[i].name, *name, "family {i} renamed");
            for sample in &families[i].samples {
                match label {
                    Some(key) => assert!(
                        sample.labels.iter().any(|(k, _)| k == key),
                        "family '{name}' lost its '{key}' label: {:?}",
                        sample.labels
                    ),
                    None => assert!(sample.labels.is_empty(), "family '{name}' grew labels"),
                }
            }
        }
        // Both exposition formats carry every family by name.
        let report = wino_obs::ObsReport { metrics: families, profile: None };
        let text = report.to_prometheus();
        let json = report.to_json();
        wino_obs::validate_json(&json).expect("JSON exposition parses");
        for (name, _) in expected {
            assert!(text.contains(name), "Prometheus text lost '{name}':\n{text}");
            assert!(json.contains(&format!("\"{name}\"")), "JSON lost '{name}'");
        }
        // Label values survive exposition: shard indices and class
        // names appear verbatim.
        assert!(text.contains("wino_serve_shard_stolen_total{shard=\"1\"} 1"), "{text}");
        for class in ["high", "normal", "low"] {
            assert!(
                text.contains(&format!("wino_serve_class_completed_total{{class=\"{class}\"}}")),
                "{text}"
            );
        }
    }

    #[test]
    fn zero_window_throughput_is_zero_not_nan() {
        let m = Metrics::new(vec!["a".into()], 1);
        let snap = m.snapshot(Duration::ZERO);
        assert_eq!(snap.throughput_rps(), 0.0);
    }

    #[test]
    fn shard_counters_attribute_batches_steals_and_failures() {
        let m = Metrics::new(vec!["a".into()], 3);
        // Shard 0 executes two home batches; shard 2 steals one.
        let normal = [Priority::Normal, Priority::Normal];
        m.record_batch(0, 0, false, ms(4), &normal, &[ms(1), ms(1)], &[ms(5), ms(6)]);
        m.record_batch(0, 0, false, ms(4), &[Priority::High], &[ms(1)], &[ms(3)]);
        m.record_batch(0, 2, true, ms(4), &[Priority::Low], &[ms(9)], &[ms(13)]);
        m.record_failed(0, 2, 2);
        let snap = m.snapshot(ms(1000));
        assert_eq!(snap.per_shard.len(), 3);
        let [s0, s1, s2] = &snap.per_shard[..] else { unreachable!() };
        assert_eq!((s0.shard, s0.batches, s0.stolen, s0.completed), (0, 2, 0, 3));
        assert_eq!((s1.batches, s1.completed, s1.failed), (0, 0, 0));
        assert_eq!((s2.shard, s2.batches, s2.stolen, s2.completed, s2.failed), (2, 1, 1, 1, 2));
        assert_eq!(snap.total_stolen(), 1);
        assert_eq!(snap.total_failed(), 2);
        assert_eq!(snap.per_model[0].failed, 2);
        // Idle shards report zero latency; busy shards a real p999.
        assert_eq!(s1.p999, Duration::ZERO);
        assert!(s2.p999 >= ms(8) && s0.p999 > Duration::ZERO);
        // Per-class *latency* histograms are populated alongside the
        // wait histograms, with a p999 at least the class p50.
        assert_eq!(snap.latency_by_class.len(), 3);
        let low = &snap.latency_by_class[Priority::Low.index()];
        assert_eq!(low.completed, 1);
        assert!(low.p999 >= low.p50 && low.p999 >= ms(8));
        // Exposition carries the shard-labelled families and p99.9s.
        let report = wino_obs::ObsReport { metrics: snap.to_metric_families(), profile: None };
        let text = report.to_prometheus();
        assert!(text.contains("wino_serve_shard_batches_total{shard=\"0\"} 2"), "{text}");
        assert!(text.contains("wino_serve_shard_stolen_total{shard=\"2\"} 1"), "{text}");
        assert!(text.contains("wino_serve_failed_total{model=\"a\"} 2"), "{text}");
        assert!(text.contains("wino_serve_shard_latency_p999_seconds{shard=\"2\"}"), "{text}");
        assert!(text.contains("wino_serve_class_latency_p999_seconds{class=\"low\"}"), "{text}");
        // The human-readable dump mentions shard lines too.
        let display = snap.to_string();
        assert!(display.contains("shard 2"), "{display}");
    }
}
