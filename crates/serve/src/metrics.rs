//! Serving metrics: per-model throughput and latency distribution.
//!
//! Latencies are recorded into fixed-size logarithmic histograms (one
//! bucket per power of two of microseconds), so recording is O(1),
//! memory is constant, and the p50/p95/p99 read-out is a bucket walk —
//! the classic production-serving trade of exact quantiles for bounded
//! state. Quantiles are reported as the upper bound of the bucket the
//! rank falls in (pessimistic: a reported p99 is never lower than the
//! true one by more than a bucket's width).
//!
//! All recording goes through interior mutability behind one mutex per
//! [`Metrics`] — workers record once per *batch*, not per request, so
//! contention stays negligible next to the convolution work.

use std::fmt;
use std::sync::Mutex;
use std::time::Duration;

/// Number of power-of-two microsecond buckets: covers up to
/// 2^39 µs ≈ 6.4 days, far beyond any sane request latency.
const BUCKETS: usize = 40;

/// A fixed-size log₂-bucketed latency histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum_us: u128,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram { counts: [0; BUCKETS], total: 0, sum_us: 0 }
    }

    fn bucket(us: u128) -> usize {
        // Bucket b holds latencies in [2^(b-1), 2^b) µs; bucket 0 holds
        // sub-microsecond samples.
        (128 - us.leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros();
        self.counts[Self::bucket(us)] += 1;
        self.total += 1;
        self.sum_us += us;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency (`ZERO` when empty).
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros((self.sum_us / u128::from(self.total)) as u64)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the
    /// bucket containing that rank; `ZERO` when empty.
    ///
    /// ```
    /// use std::time::Duration;
    /// use wino_serve::LatencyHistogram;
    ///
    /// let mut h = LatencyHistogram::new();
    /// for ms in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 40] {
    ///     h.record(Duration::from_millis(ms));
    /// }
    /// // Nine of ten samples sit in the ~1 ms bucket…
    /// assert!(h.quantile(0.5) < Duration::from_millis(3));
    /// // …but the p99 walk reaches the 40 ms outlier's bucket.
    /// assert!(h.quantile(0.99) >= Duration::from_millis(40));
    /// ```
    pub fn quantile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Duration::from_micros(1u64 << b);
            }
        }
        Duration::from_micros(1u64 << (BUCKETS - 1))
    }
}

/// Accumulated counters of one model.
#[derive(Debug, Clone, Default)]
struct ModelCounters {
    completed: u64,
    rejected: u64,
    batches: u64,
    latency: LatencyHistogram,
    queue_wait: LatencyHistogram,
    /// EWMA of per-image service time, the admission controller's
    /// backlog estimate.
    ewma_image_us: Option<f64>,
}

/// Point-in-time metrics of one model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSnapshot {
    /// The model's stable ID.
    pub model: String,
    /// Requests completed (responses delivered).
    pub completed: u64,
    /// Requests refused at admission.
    pub rejected: u64,
    /// Batches executed.
    pub batches: u64,
    /// Mean images per executed batch.
    pub mean_batch: f64,
    /// Mean end-to-end latency.
    pub mean_latency: Duration,
    /// Median end-to-end latency (bucket upper bound).
    pub p50: Duration,
    /// 95th-percentile end-to-end latency (bucket upper bound).
    pub p95: Duration,
    /// 99th-percentile end-to-end latency (bucket upper bound).
    pub p99: Duration,
    /// Mean time spent queued before execution started.
    pub mean_queue_wait: Duration,
}

/// Point-in-time metrics of the whole server.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Wall time the snapshot covers (since metrics construction).
    pub elapsed: Duration,
    /// Per-model snapshots, registry order.
    pub per_model: Vec<ModelSnapshot>,
}

impl MetricsSnapshot {
    /// Requests completed across every model.
    pub fn total_completed(&self) -> u64 {
        self.per_model.iter().map(|m| m.completed).sum()
    }

    /// Requests refused at admission across every model.
    pub fn total_rejected(&self) -> u64 {
        self.per_model.iter().map(|m| m.rejected).sum()
    }

    /// Completed requests per second over the covered window
    /// (`0.0` for an empty window).
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.total_completed() as f64 / secs
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "served {} requests in {:.2} s ({:.1} req/s, {} rejected)",
            self.total_completed(),
            self.elapsed.as_secs_f64(),
            self.throughput_rps(),
            self.total_rejected()
        )?;
        for m in &self.per_model {
            writeln!(
                f,
                "  {:<14} {:>6} done {:>5} rej {:>6.2} img/batch  p50 {:>9.3?}  p95 {:>9.3?}  p99 {:>9.3?}",
                m.model, m.completed, m.rejected, m.mean_batch, m.p50, m.p95, m.p99
            )?;
        }
        Ok(())
    }
}

/// Thread-safe per-model metrics recorder.
#[derive(Debug)]
pub struct Metrics {
    models: Vec<String>,
    state: Mutex<Vec<ModelCounters>>,
}

impl Metrics {
    /// A recorder for the given model IDs (registry order).
    pub fn new(models: Vec<String>) -> Metrics {
        let state = Mutex::new(models.iter().map(|_| ModelCounters::default()).collect());
        Metrics { models, state }
    }

    /// Records one executed batch: its size, the service time of the
    /// whole batch, and each request's queue wait and end-to-end
    /// latency.
    ///
    /// # Panics
    ///
    /// Panics when `model` is out of range or the slices disagree in
    /// length.
    pub fn record_batch(
        &self,
        model: usize,
        service: Duration,
        waits: &[Duration],
        latencies: &[Duration],
    ) {
        assert_eq!(waits.len(), latencies.len());
        let batch = waits.len() as u64;
        let mut state = self.state.lock().expect("metrics lock");
        let c = &mut state[model];
        c.batches += 1;
        c.completed += batch;
        for (&w, &l) in waits.iter().zip(latencies) {
            c.queue_wait.record(w);
            c.latency.record(l);
        }
        if batch > 0 {
            let per_image = service.as_micros() as f64 / batch as f64;
            // EWMA with alpha 0.3: reactive enough for admission
            // control, smooth enough to ignore one noisy batch.
            c.ewma_image_us =
                Some(c.ewma_image_us.map_or(per_image, |old| 0.7 * old + 0.3 * per_image));
        }
    }

    /// Records one request refused at admission.
    ///
    /// # Panics
    ///
    /// Panics when `model` is out of range.
    pub fn record_rejected(&self, model: usize) {
        self.state.lock().expect("metrics lock")[model].rejected += 1;
    }

    /// The smoothed per-image service-time estimate of `model`, if any
    /// batch has completed yet — what admission control multiplies by
    /// the backlog to estimate queueing delay.
    ///
    /// # Panics
    ///
    /// Panics when `model` is out of range.
    pub fn estimated_image_time(&self, model: usize) -> Option<Duration> {
        self.state.lock().expect("metrics lock")[model]
            .ewma_image_us
            .map(|us| Duration::from_micros(us as u64))
    }

    /// A consistent snapshot covering `elapsed` of wall time.
    pub fn snapshot(&self, elapsed: Duration) -> MetricsSnapshot {
        let state = self.state.lock().expect("metrics lock");
        let per_model = self
            .models
            .iter()
            .zip(state.iter())
            .map(|(id, c)| ModelSnapshot {
                model: id.clone(),
                completed: c.completed,
                rejected: c.rejected,
                batches: c.batches,
                mean_batch: if c.batches == 0 {
                    0.0
                } else {
                    c.completed as f64 / c.batches as f64
                },
                mean_latency: c.latency.mean(),
                p50: c.latency.quantile(0.50),
                p95: c.latency.quantile(0.95),
                p99: c.latency.quantile(0.99),
                mean_queue_wait: c.queue_wait.mean(),
            })
            .collect();
        MetricsSnapshot { elapsed, per_model }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn histogram_quantiles_walk_buckets_pessimistically() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(ms(1));
        }
        h.record(ms(500));
        assert_eq!(h.count(), 100);
        // p50 stays in the 1 ms bucket (upper bound ≤ 2.048 ms)…
        assert!(h.quantile(0.5) <= Duration::from_micros(2048));
        // …p99 still does; only the very tail sees the outlier.
        assert!(h.quantile(0.99) <= Duration::from_micros(2048));
        assert!(h.quantile(1.0) >= ms(500));
        assert!(h.mean() >= ms(5));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn batch_recording_feeds_snapshot_and_ewma() {
        let m = Metrics::new(vec!["a".into(), "b".into()]);
        m.record_batch(0, ms(8), &[ms(1), ms(2)], &[ms(5), ms(6)]);
        m.record_batch(0, ms(4), &[ms(1)], &[ms(3)]);
        m.record_rejected(1);
        let snap = m.snapshot(ms(1000));
        assert_eq!(snap.total_completed(), 3);
        assert_eq!(snap.total_rejected(), 1);
        assert_eq!(snap.per_model[0].batches, 2);
        assert!((snap.per_model[0].mean_batch - 1.5).abs() < 1e-9);
        assert!((snap.throughput_rps() - 3.0).abs() < 1e-9);
        // EWMA: 0.7 * 4000 µs + 0.3 * 4000 µs = 4000 µs per image.
        let est = m.estimated_image_time(0).unwrap();
        assert_eq!(est, Duration::from_micros(4000));
        assert_eq!(m.estimated_image_time(1), None);
        let text = snap.to_string();
        assert!(text.contains("a") && text.contains("req/s"));
    }

    #[test]
    fn zero_window_throughput_is_zero_not_nan() {
        let m = Metrics::new(vec!["a".into()]);
        let snap = m.snapshot(Duration::ZERO);
        assert_eq!(snap.throughput_rps(), 0.0);
    }
}
