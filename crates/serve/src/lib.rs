//! # wino-serve
//!
//! Multi-tenant batched inference serving on top of the `wino-exec`
//! Winograd execution engine — the `winofpga` workspace's software
//! analogue of the paper's central systems argument: fast-algorithm
//! datapaths only pay off when the machinery around them keeps the
//! compute saturated. The rest of the workspace searches, schedules
//! and executes designs; this crate puts a *request path* in front of
//! them.
//!
//! The pieces, front to back:
//!
//! * [`ModelRegistry`] — the four `wino-models` workloads in float and
//!   fixed-point variants behind stable [`ModelId`]s, each with its
//!   schedule pre-lowered and every Winograd kernel bank pre-transformed
//!   (via `wino_exec::PreparedPlan`), so no request ever pays transform
//!   generation;
//! * [`DynamicBatcher`] — coalesces single-image requests into batches
//!   up to the model's batch dimension under a `max_wait` deadline,
//!   with per-[`Priority`]-class FIFO ordering and bounded queues for
//!   backpressure, as a clock-free state machine;
//! * [`ShardSet`] — per-shard batcher queues behind home routing
//!   (`model % shards`) with optional work stealing of whole released
//!   batches, so idle shards soak up another shard's backlog without
//!   disturbing per-class FIFO order;
//! * [`Server`] — admission control (bounded queues, optional
//!   SLO-based shedding) in front of per-shard `std::thread` worker
//!   groups that execute released batches through the cached banks —
//!   growing them mid-flight at layer boundaries when **continuous
//!   batching** is on — and fulfill per-request [`ResponseHandle`]s;
//!   worker faults are caught and retried solo, so admitted requests
//!   resolve (served, or failed with an explicit [`RequestError`])
//!   rather than vanish;
//! * [`Metrics`] — per-model and per-shard throughput and
//!   p50/p95/p99/p99.9 latency from constant-space log histograms,
//!   plus server-wide per-priority-class queue-wait and latency
//!   distributions, exportable as `wino_obs` metric families for
//!   Prometheus/JSON exposition (and, with tracing enabled, a
//!   per-request lifecycle trace: admitted → queued → batch-wait →
//!   exec → completed intervals keyed by request id);
//! * [`SloEngine`] — declarative [`SloPolicy`] latency objectives
//!   (per-class or pooled) evaluated as multi-window error-budget
//!   burn rates over successive metrics snapshots, firing
//!   rising-edge [`SloAlert`]s — clock-free, so the storm bench
//!   drives it on the virtual clock;
//! * [`Clock`] — real ([`SystemClock`]) or deterministic
//!   ([`VirtualClock`]) time, so every deadline and latency figure is
//!   unit-testable without sleeps.
//!
//! Two properties carry the whole design and are pinned by tests
//! (including proptests over arbitrary shard counts, steal schedules
//! and admission points): a served request's output is **bitwise
//! identical** to running it alone (batching — continuous or not —
//! never changes results: every Winograd work item touches one image
//! only, in a fixed accumulation order), and an admitted request is
//! **always resolved** (refusal happens only at admission; shutdown
//! drains every shard before the pool stops; faults surface as
//! explicit errors).
//!
//! ```
//! use wino_serve::{ModelRegistry, Priority, ServeConfig, Server};
//!
//! // Four models × {f32, Q24.8}, kernel banks transformed up front.
//! let registry = ModelRegistry::standard(4, 2)?;
//! let direct = registry.get(&"tinycnn-f32".into()).unwrap().infer_one(7);
//!
//! let config = ServeConfig { shards: 2, ..ServeConfig::default() };
//! let server = Server::start(registry, config);
//! let handle = server.submit(&"tinycnn-f32".into(), Priority::High, 7)?;
//! let result = handle.wait()?;
//! assert_eq!(result.output, direct); // batched == solo, bitwise
//! let metrics = server.shutdown();
//! assert_eq!(metrics.total_completed(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod batcher;
mod clock;
mod metrics;
mod registry;
mod server;
mod shard;
mod slo;

pub use batcher::{
    Batch, BatchConfig, BatchConfigError, BatchItem, DynamicBatcher, Poll, Priority, SubmitError,
};
pub use clock::{Clock, SystemClock, VirtualClock};
pub use metrics::{
    ClassWaitSnapshot, LatencyHistogram, Metrics, MetricsSnapshot, ModelSnapshot, ShardSnapshot,
};
pub use registry::{InferOutput, ModelEntry, ModelId, ModelRegistry, RegistryError};
pub use server::{AdmissionError, InferResult, RequestError, ResponseHandle, ServeConfig, Server};
pub use shard::{ShardPoll, ShardSet};
pub use slo::{BurnWindow, SloAlert, SloEngine, SloPolicy};
