//! Dense row-major matrices and NCHW feature maps.
//!
//! These containers are deliberately minimal: the workspace needs exact
//! shapes, zero-padded tile extraction (the Winograd tiler reads
//! `(m+r−1)²` tiles with stride `m`, running past the image edge) and
//! generic element types — not a full linear-algebra library.

use crate::Scalar;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `rows × cols` matrix.
///
/// ```
/// use wino_tensor::Tensor2;
///
/// let m = Tensor2::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor2<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Tensor2<T> {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Tensor2<T> {
        Tensor2 { rows, cols, data: vec![T::zero(); rows * cols] }
    }

    /// Creates a matrix whose entry `(r, c)` is `f(r, c)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Tensor2<T> {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Tensor2 { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Tensor2<T> {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows*cols");
        Tensor2 { rows, cols, data }
    }

    /// Builds a matrix from row slices (used heavily for literal transform
    /// matrices in tests).
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged or empty.
    pub fn from_rows(rows: &[&[T]]) -> Tensor2<T> {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows are not allowed");
            data.extend_from_slice(row);
        }
        Tensor2 { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Underlying row-major storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix and returns its storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[T] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Checked element access.
    pub fn get(&self, r: usize, c: usize) -> Option<&T> {
        if r < self.rows && c < self.cols {
            Some(&self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Tensor2<T> {
        Tensor2::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Element-wise map to a (possibly different) scalar type.
    pub fn map<U: Scalar>(&self, f: impl Fn(T) -> U) -> Tensor2<U> {
        Tensor2 {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Dense matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Tensor2<T>) -> Tensor2<T> {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Tensor2::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == T::zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let prod = a * rhs[(k, j)];
                    out[(i, j)] += prod;
                }
            }
        }
        out
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Tensor2<T>) -> Tensor2<T> {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "hadamard shape mismatch");
        Tensor2 {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(&a, &b)| a * b).collect(),
        }
    }

    /// Extracts a `size × size` tile whose top-left corner is `(top, left)`
    /// in this matrix's coordinates; out-of-bounds reads are zero.
    ///
    /// This is the Winograd input tiler: tiles overlap by `r − 1` and the
    /// last tiles of a row/column may hang off the edge.
    pub fn padded_tile(&self, top: isize, left: isize, size: usize) -> Tensor2<T> {
        Tensor2::from_fn(size, size, |r, c| {
            let rr = top + r as isize;
            let cc = left + c as isize;
            if rr >= 0 && cc >= 0 && (rr as usize) < self.rows && (cc as usize) < self.cols {
                self[(rr as usize, cc as usize)]
            } else {
                T::zero()
            }
        })
    }

    /// Writes `tile` into this matrix at `(top, left)`, clipping anything
    /// that falls outside (the inverse of [`padded_tile`](Self::padded_tile)
    /// for output assembly).
    pub fn write_tile(&mut self, top: usize, left: usize, tile: &Tensor2<T>) {
        for r in 0..tile.rows {
            let rr = top + r;
            if rr >= self.rows {
                break;
            }
            for c in 0..tile.cols {
                let cc = left + c;
                if cc >= self.cols {
                    break;
                }
                self[(rr, cc)] = tile[(r, c)];
            }
        }
    }

    /// Accumulates `tile` into this matrix at `(top, left)`, clipping.
    pub fn add_tile(&mut self, top: usize, left: usize, tile: &Tensor2<T>) {
        for r in 0..tile.rows {
            let rr = top + r;
            if rr >= self.rows {
                break;
            }
            for c in 0..tile.cols {
                let cc = left + c;
                if cc >= self.cols {
                    break;
                }
                let v = tile[(r, c)];
                self[(rr, cc)] += v;
            }
        }
    }
}

impl<T> Index<(usize, usize)> for Tensor2<T> {
    type Output = T;
    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl<T> IndexMut<(usize, usize)> for Tensor2<T> {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl<T: fmt::Debug> fmt::Debug for Tensor2<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor2 {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:?} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

/// Shape of an NCHW tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape4 {
    /// Batch size.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl Shape4 {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// `true` when any dimension is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.c, self.h, self.w)
    }
}

/// A dense NCHW 4-D tensor (batch, channel, height, width).
///
/// ```
/// use wino_tensor::{Shape4, Tensor4};
///
/// let t = Tensor4::from_fn(Shape4 { n: 1, c: 2, h: 2, w: 2 }, |_, c, h, w| (c * 4 + h * 2 + w) as f32);
/// assert_eq!(t.at(0, 1, 1, 0), 6.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor4<T> {
    shape: Shape4,
    data: Vec<T>,
}

impl<T: Scalar> Tensor4<T> {
    /// Creates a zero-filled tensor.
    pub fn zeros(shape: Shape4) -> Tensor4<T> {
        Tensor4 { shape, data: vec![T::zero(); shape.len()] }
    }

    /// Creates a tensor whose entry `(n, c, h, w)` is `f(n, c, h, w)`.
    pub fn from_fn(
        shape: Shape4,
        mut f: impl FnMut(usize, usize, usize, usize) -> T,
    ) -> Tensor4<T> {
        let mut data = Vec::with_capacity(shape.len());
        for n in 0..shape.n {
            for c in 0..shape.c {
                for h in 0..shape.h {
                    for w in 0..shape.w {
                        data.push(f(n, c, h, w));
                    }
                }
            }
        }
        Tensor4 { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Underlying NCHW storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable NCHW storage — the assembly path of block-parallel
    /// executors, which compute disjoint output regions on worker
    /// threads and copy them into place here.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    fn offset(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(
            n < self.shape.n && c < self.shape.c && h < self.shape.h && w < self.shape.w,
            "index ({n},{c},{h},{w}) out of bounds for {}",
            self.shape
        );
        ((n * self.shape.c + c) * self.shape.h + h) * self.shape.w + w
    }

    /// Element access.
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> T {
        self.data[self.offset(n, c, h, w)]
    }

    /// Mutable element access.
    pub fn at_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut T {
        let off = self.offset(n, c, h, w);
        &mut self.data[off]
    }

    /// Copies one `(n, c)` plane out as a matrix.
    pub fn plane(&self, n: usize, c: usize) -> Tensor2<T> {
        let base = self.offset(n, c, 0, 0);
        let hw = self.shape.h * self.shape.w;
        Tensor2::from_vec(self.shape.h, self.shape.w, self.data[base..base + hw].to_vec())
    }

    /// Overwrites one `(n, c)` plane from a matrix.
    ///
    /// # Panics
    ///
    /// Panics if `plane` is not `h × w`.
    pub fn set_plane(&mut self, n: usize, c: usize, plane: &Tensor2<T>) {
        assert_eq!(
            (plane.rows(), plane.cols()),
            (self.shape.h, self.shape.w),
            "plane shape mismatch"
        );
        let base = self.offset(n, c, 0, 0);
        let hw = self.shape.h * self.shape.w;
        self.data[base..base + hw].copy_from_slice(plane.as_slice());
    }

    /// Element-wise map to a (possibly different) scalar type.
    pub fn map<U: Scalar>(&self, f: impl Fn(T) -> U) -> Tensor4<U> {
        Tensor4 { shape: self.shape, data: self.data.iter().map(|&x| f(x)).collect() }
    }
}

impl<T> fmt::Debug for Tensor4<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor4({}, {} elems)", self.shape, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ratio;

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = Tensor2::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_rows_and_transpose() {
        let m = Tensor2::from_rows(&[&[1.0f32, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let t = m.transposed();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t[(0, 2)], 5.0);
        assert_eq!(t.transposed(), m);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Tensor2::from_rows(&[&[1.0f32, 2.0], &[3.0]]);
    }

    #[test]
    fn matmul_against_hand_result() {
        let a = Tensor2::from_rows(&[&[1.0f32, 2.0], &[3.0, 4.0]]);
        let b = Tensor2::from_rows(&[&[5.0f32, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_exact_rationals() {
        let a = Tensor2::from_fn(3, 3, |r, c| Ratio::new((r * 3 + c + 1) as i128, 7));
        let id = Tensor2::from_fn(3, 3, |r, c| if r == c { Ratio::ONE } else { Ratio::ZERO });
        assert_eq!(a.matmul(&id), a);
        assert_eq!(id.matmul(&a), a);
    }

    #[test]
    fn hadamard_elementwise() {
        let a = Tensor2::from_rows(&[&[1.0f32, 2.0], &[3.0, 4.0]]);
        let b = Tensor2::from_rows(&[&[2.0f32, 0.5], &[1.0, 0.25]]);
        assert_eq!(a.hadamard(&b).as_slice(), &[2.0, 1.0, 3.0, 1.0]);
    }

    #[test]
    fn padded_tile_zero_fills_outside() {
        let m = Tensor2::from_fn(3, 3, |r, c| (r * 3 + c + 1) as f32);
        let t = m.padded_tile(-1, -1, 3);
        // Top-left 3x3 window shifted up-left by one: first row/col zeros.
        assert_eq!(t.as_slice(), &[0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 0.0, 4.0, 5.0]);
        let t2 = m.padded_tile(2, 2, 2);
        assert_eq!(t2.as_slice(), &[9.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn write_and_add_tile_clip() {
        let mut m = Tensor2::<f32>::zeros(3, 3);
        let tile = Tensor2::from_fn(2, 2, |_, _| 1.0f32);
        m.write_tile(2, 2, &tile); // only (2,2) lands
        assert_eq!(m[(2, 2)], 1.0);
        assert_eq!(m.as_slice().iter().sum::<f32>(), 1.0);
        m.add_tile(2, 2, &tile);
        assert_eq!(m[(2, 2)], 2.0);
    }

    #[test]
    fn tensor4_indexing_and_planes() {
        let shape = Shape4 { n: 2, c: 3, h: 4, w: 5 };
        let t = Tensor4::from_fn(shape, |n, c, h, w| (n * 1000 + c * 100 + h * 10 + w) as f32);
        assert_eq!(t.at(1, 2, 3, 4), 1234.0);
        let p = t.plane(1, 2);
        assert_eq!(p[(3, 4)], 1234.0);
        assert_eq!(p.rows(), 4);
        assert_eq!(p.cols(), 5);
    }

    #[test]
    fn tensor4_as_mut_slice_writes_in_nchw_order() {
        let shape = Shape4 { n: 1, c: 2, h: 2, w: 2 };
        let mut t = Tensor4::<f32>::zeros(shape);
        t.as_mut_slice()[5] = 9.0; // (0, 1, 0, 1)
        assert_eq!(t.at(0, 1, 0, 1), 9.0);
        assert_eq!(t.as_slice().iter().sum::<f32>(), 9.0);
    }

    #[test]
    fn tensor4_set_plane_round_trip() {
        let shape = Shape4 { n: 1, c: 2, h: 2, w: 2 };
        let mut t = Tensor4::<f32>::zeros(shape);
        let p = Tensor2::from_rows(&[&[1.0f32, 2.0], &[3.0, 4.0]]);
        t.set_plane(0, 1, &p);
        assert_eq!(t.plane(0, 1), p);
        assert_eq!(t.plane(0, 0).as_slice(), &[0.0; 4]);
    }

    #[test]
    fn shape_len() {
        let s = Shape4 { n: 2, c: 3, h: 4, w: 5 };
        assert_eq!(s.len(), 120);
        assert!(!s.is_empty());
        assert!(Shape4 { n: 0, c: 1, h: 1, w: 1 }.is_empty());
        assert_eq!(s.to_string(), "2x3x4x5");
    }

    #[test]
    fn map_changes_scalar_type() {
        let m = Tensor2::from_rows(&[&[1.0f32, 2.0]]);
        let r = m.map(|x| Ratio::from_integer(x as i128));
        assert_eq!(r[(0, 1)], Ratio::from_integer(2));
    }
}
