//! Signed fixed-point arithmetic in Q-format.
//!
//! Qiu et al. [12] — one of the baselines the paper compares against — run
//! their accelerator with 16-bit fixed-point data. [`Fixed<FRAC>`] lets the
//! functional Winograd pipeline be re-run under quantization to study the
//! accuracy cost, an ablation the paper leaves as future work ("without any
//! quantization scheme for the sake of simplicity").
//!
//! Values are stored as `i32` raw integers scaled by `2^FRAC`; arithmetic is
//! performed in `i64` and saturates on overflow, mirroring DSP-block
//! behaviour on an FPGA. [`Fixed::convert`] re-quantizes between Q-formats
//! (with the range/precision pitfalls its docs spell out), which is how the
//! per-layer formats of `wino_exec::QuantConfig` move data between layers.
//!
//! ```
//! use wino_tensor::Fixed;
//!
//! type Q16 = Fixed<8>; // 8 fractional bits
//! let a = Q16::from_f32(1.5);
//! let b = Q16::from_f32(-0.25);
//! assert_eq!((a * b).to_f32(), -0.375);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A signed fixed-point number with `FRAC` fractional bits stored in `i32`.
///
/// See the fixed-point module docs (surfaced on the crate page) for
/// background and an example.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fixed<const FRAC: u32>(i32);

impl<const FRAC: u32> Fixed<FRAC> {
    /// The additive identity.
    pub const ZERO: Fixed<FRAC> = Fixed(0);
    /// The multiplicative identity (`1.0`).
    pub const ONE: Fixed<FRAC> = Fixed(1 << FRAC);
    /// Largest representable value.
    pub const MAX: Fixed<FRAC> = Fixed(i32::MAX);
    /// Smallest (most negative) representable value.
    pub const MIN: Fixed<FRAC> = Fixed(i32::MIN);

    /// Creates a value from its raw scaled representation.
    pub const fn from_raw(raw: i32) -> Fixed<FRAC> {
        Fixed(raw)
    }

    /// Returns the raw scaled representation.
    pub const fn raw(self) -> i32 {
        self.0
    }

    /// Quantizes an `f32`, rounding to nearest (ties away from zero) and
    /// saturating out-of-range inputs (including NaN, which maps to zero).
    ///
    /// In-range values land within half a [`resolution`](Self::resolution)
    /// step of the input:
    ///
    /// ```
    /// use wino_tensor::Fixed;
    ///
    /// type Q = Fixed<8>;
    /// let q = Q::from_f32(0.3).to_f32();
    /// assert!((q - 0.3).abs() <= Q::resolution() / 2.0);
    /// // Ties round away from zero: 1.5/256 sits exactly between raw 1
    /// // and raw 2 and picks 2.
    /// assert_eq!(Q::from_f32(1.5 / 256.0).raw(), 2);
    /// assert_eq!(Q::from_f32(-1.5 / 256.0).raw(), -2);
    /// ```
    ///
    /// Out-of-range inputs pin to [`MAX`](Self::MAX) / [`MIN`](Self::MIN)
    /// instead of wrapping or panicking — the same semantics an FPGA DSP
    /// block's saturation logic provides:
    ///
    /// ```
    /// use wino_tensor::Fixed;
    ///
    /// type Q = Fixed<16>;
    /// assert_eq!(Q::from_f32(1e9), Q::MAX); // 2^15 is the largest Q16.16
    /// assert_eq!(Q::from_f32(-1e9), Q::MIN);
    /// assert_eq!(Q::from_f32(f32::INFINITY), Q::MAX);
    /// assert_eq!(Q::from_f32(f32::NAN), Q::ZERO);
    /// ```
    pub fn from_f32(x: f32) -> Fixed<FRAC> {
        if x.is_nan() {
            return Fixed(0);
        }
        // `f64 as i64` saturates (never UB or a panic), and `clamp_i64`
        // saturates the final narrowing, so every out-of-range input —
        // including ±inf — pins to MAX/MIN.
        let scaled = (x as f64 * (1i64 << FRAC) as f64).round();
        Fixed(clamp_i64(scaled as i64))
    }

    /// Converts back to `f32` (exact: the raw value fits in the mantissa-
    /// scaled range for practical `FRAC`).
    pub fn to_f32(self) -> f32 {
        self.0 as f64 as f32 / (1i64 << FRAC) as f32
    }

    /// Converts to `f64` without rounding.
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / (1i64 << FRAC) as f64
    }

    /// The quantization step `2^-FRAC`.
    pub fn resolution() -> f32 {
        1.0 / (1i64 << FRAC) as f32
    }

    /// Saturating addition: sums beyond the raw `i32` range clamp to
    /// [`MAX`](Self::MAX) / [`MIN`](Self::MIN) instead of wrapping.
    ///
    /// ```
    /// use wino_tensor::Fixed;
    ///
    /// type Q = Fixed<16>;
    /// assert_eq!(Q::MAX.saturating_add(Q::ONE), Q::MAX);
    /// assert_eq!(Q::MIN.saturating_add(-Q::ONE), Q::MIN);
    /// ```
    pub fn saturating_add(self, rhs: Fixed<FRAC>) -> Fixed<FRAC> {
        Fixed(self.0.saturating_add(rhs.0))
    }

    /// Saturating multiplication with round-to-nearest on the dropped
    /// fractional bits; products beyond the representable range clamp to
    /// [`MAX`](Self::MAX) / [`MIN`](Self::MIN).
    ///
    /// ```
    /// use wino_tensor::Fixed;
    ///
    /// type Q = Fixed<16>;
    /// let big = Q::from_f32(30000.0);
    /// assert_eq!(big.saturating_mul(big), Q::MAX);
    /// assert_eq!((-big).saturating_mul(big), Q::MIN);
    /// ```
    pub fn saturating_mul(self, rhs: Fixed<FRAC>) -> Fixed<FRAC> {
        let wide = self.0 as i64 * rhs.0 as i64;
        // FRAC = 0 carries no fractional bits to round away (and the
        // `FRAC - 1` rounding-bias shift would underflow).
        let rounded = if FRAC == 0 { wide } else { (wide + (1i64 << (FRAC - 1))) >> FRAC };
        Fixed(clamp_i64(rounded))
    }

    /// Re-quantizes into a different Q-format, rounding dropped bits to
    /// nearest and saturating when the target's smaller integer range
    /// cannot hold the value.
    ///
    /// Two pitfalls to keep in mind when moving between formats:
    ///
    /// 1. **Widening the fraction shrinks the integer range.** Every raw
    ///    bit granted to the fraction is taken from the integer part, so
    ///    a value that fits `Fixed<8>` can saturate as `Fixed<16>`:
    ///
    /// ```
    /// use wino_tensor::Fixed;
    ///
    /// let big = Fixed::<8>::from_f32(1.0e6); // fits Q24.8 (max ~2^23)
    /// assert_eq!(big.convert::<16>(), Fixed::<16>::MAX); // Q16.16 max is 2^15
    /// ```
    ///
    /// 2. **Narrowing the fraction loses precision, not range.** Bits
    ///    below the coarser resolution round away — small values collapse
    ///    to zero rather than being preserved:
    ///
    /// ```
    /// use wino_tensor::Fixed;
    ///
    /// let tiny = Fixed::<16>::from_f32(1.0 / 65536.0);
    /// assert_eq!(tiny.convert::<8>(), Fixed::<8>::ZERO);
    /// // Exactly representable values survive the round trip…
    /// let x = Fixed::<16>::from_f32(1.25);
    /// assert_eq!(x.convert::<8>().to_f32(), 1.25);
    /// // …but a narrow→wide→narrow chain cannot recover dropped bits.
    /// let y = Fixed::<16>::from_f32(0.3);
    /// assert_ne!(y.convert::<8>().convert::<16>(), y);
    /// ```
    pub fn convert<const TO: u32>(self) -> Fixed<TO> {
        let raw = self.0 as i64;
        if TO >= FRAC {
            let shift = TO - FRAC;
            // Shifting a nonzero i32 left by >= 32 always lands outside
            // the i32 range (and would overflow i64 from shift 33), so
            // saturate directly by sign instead of shifting.
            if shift >= 32 {
                return match raw.cmp(&0) {
                    std::cmp::Ordering::Less => Fixed::<TO>::MIN,
                    std::cmp::Ordering::Equal => Fixed::<TO>::ZERO,
                    std::cmp::Ordering::Greater => Fixed::<TO>::MAX,
                };
            }
            Fixed(clamp_i64(raw << shift))
        } else {
            let shift = FRAC - TO;
            Fixed(clamp_i64((raw + (1i64 << (shift - 1))) >> shift))
        }
    }

    /// Absolute value (saturates `MIN`).
    pub fn abs(self) -> Fixed<FRAC> {
        Fixed(self.0.saturating_abs())
    }
}

fn clamp_i64(v: i64) -> i32 {
    if v > i32::MAX as i64 {
        i32::MAX
    } else if v < i32::MIN as i64 {
        i32::MIN
    } else {
        v as i32
    }
}

impl<const FRAC: u32> Add for Fixed<FRAC> {
    type Output = Fixed<FRAC>;
    fn add(self, rhs: Fixed<FRAC>) -> Fixed<FRAC> {
        self.saturating_add(rhs)
    }
}

impl<const FRAC: u32> Sub for Fixed<FRAC> {
    type Output = Fixed<FRAC>;
    fn sub(self, rhs: Fixed<FRAC>) -> Fixed<FRAC> {
        Fixed(self.0.saturating_sub(rhs.0))
    }
}

impl<const FRAC: u32> Mul for Fixed<FRAC> {
    type Output = Fixed<FRAC>;
    fn mul(self, rhs: Fixed<FRAC>) -> Fixed<FRAC> {
        self.saturating_mul(rhs)
    }
}

impl<const FRAC: u32> Div for Fixed<FRAC> {
    type Output = Fixed<FRAC>;
    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, rhs: Fixed<FRAC>) -> Fixed<FRAC> {
        assert!(rhs.0 != 0, "fixed-point division by zero");
        let wide = ((self.0 as i64) << FRAC) / rhs.0 as i64;
        Fixed(clamp_i64(wide))
    }
}

impl<const FRAC: u32> Neg for Fixed<FRAC> {
    type Output = Fixed<FRAC>;
    fn neg(self) -> Fixed<FRAC> {
        Fixed(self.0.saturating_neg())
    }
}

impl<const FRAC: u32> AddAssign for Fixed<FRAC> {
    fn add_assign(&mut self, rhs: Fixed<FRAC>) {
        *self = *self + rhs;
    }
}

impl<const FRAC: u32> SubAssign for Fixed<FRAC> {
    fn sub_assign(&mut self, rhs: Fixed<FRAC>) {
        *self = *self - rhs;
    }
}

impl<const FRAC: u32> Sum for Fixed<FRAC> {
    fn sum<I: Iterator<Item = Fixed<FRAC>>>(iter: I) -> Fixed<FRAC> {
        iter.fold(Fixed::ZERO, Add::add)
    }
}

impl<const FRAC: u32> fmt::Debug for Fixed<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fixed<{}>({})", FRAC, self.to_f64())
    }
}

impl<const FRAC: u32> fmt::Display for Fixed<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

/// 16.16 fixed point (general-purpose).
pub type Q16_16 = Fixed<16>;
/// 8 fractional bits in 32: roughly the dynamic range of the 16-bit format
/// used by Qiu et al. \[12\] once accumulation headroom is accounted for.
pub type Q24_8 = Fixed<8>;

#[cfg(test)]
mod tests {
    use super::*;

    type Q = Fixed<16>;

    #[test]
    fn round_trip_representable_values() {
        for x in [0.0f32, 1.0, -1.0, 0.5, -0.25, 123.75, -4096.5] {
            assert_eq!(Q::from_f32(x).to_f32(), x, "round-trip of {x}");
        }
    }

    #[test]
    fn quantization_rounds_to_nearest() {
        let step = Q::resolution();
        let x = 0.3f32;
        let q = Q::from_f32(x).to_f32();
        assert!((q - x).abs() <= step / 2.0 + f32::EPSILON);
    }

    #[test]
    fn arithmetic_matches_reals_when_exact() {
        let a = Q::from_f32(2.5);
        let b = Q::from_f32(-0.5);
        assert_eq!((a + b).to_f32(), 2.0);
        assert_eq!((a - b).to_f32(), 3.0);
        assert_eq!((a * b).to_f32(), -1.25);
        assert_eq!((a / b).to_f32(), -5.0);
        assert_eq!((-a).to_f32(), -2.5);
    }

    #[test]
    fn saturation_on_overflow() {
        let big = Q::from_f32(30000.0);
        assert_eq!(big * big, Q::MAX);
        assert_eq!((-big) * big, Q::MIN);
        assert_eq!(Q::MAX + Q::ONE, Q::MAX);
        assert_eq!(Q::MIN - Q::ONE, Q::MIN);
    }

    #[test]
    fn from_f32_saturates_and_handles_nan() {
        assert_eq!(Q::from_f32(f32::INFINITY), Q::MAX);
        assert_eq!(Q::from_f32(f32::NEG_INFINITY), Q::MIN);
        assert_eq!(Q::from_f32(f32::NAN), Q::ZERO);
        assert_eq!(Q::from_f32(1e20), Q::MAX);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Q::ONE / Q::ZERO;
    }

    #[test]
    fn sum_accumulates() {
        let xs = [Q::from_f32(0.5); 8];
        assert_eq!(xs.iter().copied().sum::<Q>().to_f32(), 4.0);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Q::from_f32(-1.0) < Q::from_f32(-0.5));
        assert!(Q::from_f32(0.25) < Q::from_f32(0.5));
    }

    #[test]
    fn resolution_matches_frac() {
        assert_eq!(Fixed::<8>::resolution(), 1.0 / 256.0);
        assert_eq!(Fixed::<16>::resolution(), 1.0 / 65536.0);
    }

    #[test]
    fn frac_zero_multiplication_has_no_rounding_bias() {
        type Q0 = Fixed<0>;
        let a = Q0::from_f32(7.0);
        let b = Q0::from_f32(-3.0);
        assert_eq!((a * b).to_f32(), -21.0);
        assert_eq!((a * a).to_f32(), 49.0);
    }

    #[test]
    fn convert_round_trips_representable_values() {
        for x in [0.0f32, 1.0, -1.0, 2.5, -0.25, 100.5] {
            let wide = Fixed::<16>::from_f32(x);
            assert_eq!(wide.convert::<8>().to_f32(), x, "16→8 of {x}");
            assert_eq!(wide.convert::<24>().to_f32(), x, "16→24 of {x}");
            assert_eq!(wide.convert::<16>(), wide, "identity of {x}");
        }
    }

    #[test]
    fn convert_saturates_when_widening_range_shrinks() {
        let big = Fixed::<4>::from_f32(1.0e8);
        assert_eq!(big.convert::<16>(), Fixed::<16>::MAX);
        assert_eq!((-big).convert::<16>(), Fixed::<16>::MIN);
        // Widening across the whole raw width still saturates cleanly.
        assert_eq!(Fixed::<0>::ONE.convert::<31>(), Fixed::<31>::MAX);
        assert_eq!((-Fixed::<0>::ONE).convert::<31>(), Fixed::<31>::MIN);
        assert_eq!(Fixed::<0>::ZERO.convert::<31>(), Fixed::<31>::ZERO);
        // Shift gaps of 32..62 would overflow the i64 intermediate for
        // large raw values; they must saturate by sign, not wrap.
        assert_eq!(Fixed::<0>::from_raw(i32::MAX).convert::<40>(), Fixed::<40>::MAX);
        assert_eq!(Fixed::<0>::from_raw(i32::MIN).convert::<40>(), Fixed::<40>::MIN);
        assert_eq!(Fixed::<0>::from_raw(1).convert::<33>(), Fixed::<33>::MAX);
    }

    #[test]
    fn convert_rounds_dropped_bits_to_nearest() {
        // Raw 0x180 at FRAC=16 is 384/65536 = 1.5/256: the tie rounds up.
        assert_eq!(Fixed::<16>::from_raw(0x180).convert::<8>().raw(), 2);
        // Anything below half the coarser step collapses to zero.
        assert_eq!(Fixed::<16>::from_raw(0x7F).convert::<8>(), Fixed::<8>::ZERO);
    }
}
