//! Signed fixed-point arithmetic in Q-format.
//!
//! Qiu et al. [12] — one of the baselines the paper compares against — run
//! their accelerator with 16-bit fixed-point data. [`Fixed<FRAC>`] lets the
//! functional Winograd pipeline be re-run under quantization to study the
//! accuracy cost, an ablation the paper leaves as future work ("without any
//! quantization scheme for the sake of simplicity").
//!
//! Values are stored as `i32` raw integers scaled by `2^FRAC`; arithmetic is
//! performed in `i64` and saturates on overflow, mirroring DSP-block
//! behaviour on an FPGA.
//!
//! ```
//! use wino_tensor::Fixed;
//!
//! type Q16 = Fixed<8>; // 8 fractional bits
//! let a = Q16::from_f32(1.5);
//! let b = Q16::from_f32(-0.25);
//! assert_eq!((a * b).to_f32(), -0.375);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A signed fixed-point number with `FRAC` fractional bits stored in `i32`.
///
/// See the fixed-point module docs (surfaced on the crate page) for
/// background and an example.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fixed<const FRAC: u32>(i32);

impl<const FRAC: u32> Fixed<FRAC> {
    /// The additive identity.
    pub const ZERO: Fixed<FRAC> = Fixed(0);
    /// The multiplicative identity (`1.0`).
    pub const ONE: Fixed<FRAC> = Fixed(1 << FRAC);
    /// Largest representable value.
    pub const MAX: Fixed<FRAC> = Fixed(i32::MAX);
    /// Smallest (most negative) representable value.
    pub const MIN: Fixed<FRAC> = Fixed(i32::MIN);

    /// Creates a value from its raw scaled representation.
    pub const fn from_raw(raw: i32) -> Fixed<FRAC> {
        Fixed(raw)
    }

    /// Returns the raw scaled representation.
    pub const fn raw(self) -> i32 {
        self.0
    }

    /// Quantizes an `f32`, rounding to nearest and saturating out-of-range
    /// inputs (including NaN, which maps to zero).
    pub fn from_f32(x: f32) -> Fixed<FRAC> {
        if x.is_nan() {
            return Fixed(0);
        }
        let scaled = (x as f64 * (1i64 << FRAC) as f64).round();
        if scaled >= i32::MAX as f64 {
            Fixed(i32::MAX)
        } else if scaled <= i32::MIN as f64 {
            Fixed(i32::MIN)
        } else {
            Fixed(scaled as i32)
        }
    }

    /// Converts back to `f32` (exact: the raw value fits in the mantissa-
    /// scaled range for practical `FRAC`).
    pub fn to_f32(self) -> f32 {
        self.0 as f64 as f32 / (1i64 << FRAC) as f32
    }

    /// Converts to `f64` without rounding.
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / (1i64 << FRAC) as f64
    }

    /// The quantization step `2^-FRAC`.
    pub fn resolution() -> f32 {
        1.0 / (1i64 << FRAC) as f32
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Fixed<FRAC>) -> Fixed<FRAC> {
        Fixed(self.0.saturating_add(rhs.0))
    }

    /// Saturating multiplication with round-to-nearest on the dropped bits.
    pub fn saturating_mul(self, rhs: Fixed<FRAC>) -> Fixed<FRAC> {
        let wide = self.0 as i64 * rhs.0 as i64;
        let rounded = (wide + (1i64 << (FRAC - 1))) >> FRAC;
        Fixed(clamp_i64(rounded))
    }

    /// Absolute value (saturates `MIN`).
    pub fn abs(self) -> Fixed<FRAC> {
        Fixed(self.0.saturating_abs())
    }
}

fn clamp_i64(v: i64) -> i32 {
    if v > i32::MAX as i64 {
        i32::MAX
    } else if v < i32::MIN as i64 {
        i32::MIN
    } else {
        v as i32
    }
}

impl<const FRAC: u32> Add for Fixed<FRAC> {
    type Output = Fixed<FRAC>;
    fn add(self, rhs: Fixed<FRAC>) -> Fixed<FRAC> {
        self.saturating_add(rhs)
    }
}

impl<const FRAC: u32> Sub for Fixed<FRAC> {
    type Output = Fixed<FRAC>;
    fn sub(self, rhs: Fixed<FRAC>) -> Fixed<FRAC> {
        Fixed(self.0.saturating_sub(rhs.0))
    }
}

impl<const FRAC: u32> Mul for Fixed<FRAC> {
    type Output = Fixed<FRAC>;
    fn mul(self, rhs: Fixed<FRAC>) -> Fixed<FRAC> {
        self.saturating_mul(rhs)
    }
}

impl<const FRAC: u32> Div for Fixed<FRAC> {
    type Output = Fixed<FRAC>;
    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, rhs: Fixed<FRAC>) -> Fixed<FRAC> {
        assert!(rhs.0 != 0, "fixed-point division by zero");
        let wide = ((self.0 as i64) << FRAC) / rhs.0 as i64;
        Fixed(clamp_i64(wide))
    }
}

impl<const FRAC: u32> Neg for Fixed<FRAC> {
    type Output = Fixed<FRAC>;
    fn neg(self) -> Fixed<FRAC> {
        Fixed(self.0.saturating_neg())
    }
}

impl<const FRAC: u32> AddAssign for Fixed<FRAC> {
    fn add_assign(&mut self, rhs: Fixed<FRAC>) {
        *self = *self + rhs;
    }
}

impl<const FRAC: u32> SubAssign for Fixed<FRAC> {
    fn sub_assign(&mut self, rhs: Fixed<FRAC>) {
        *self = *self - rhs;
    }
}

impl<const FRAC: u32> Sum for Fixed<FRAC> {
    fn sum<I: Iterator<Item = Fixed<FRAC>>>(iter: I) -> Fixed<FRAC> {
        iter.fold(Fixed::ZERO, Add::add)
    }
}

impl<const FRAC: u32> fmt::Debug for Fixed<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fixed<{}>({})", FRAC, self.to_f64())
    }
}

impl<const FRAC: u32> fmt::Display for Fixed<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

/// 16.16 fixed point (general-purpose).
pub type Q16_16 = Fixed<16>;
/// 8 fractional bits in 32: roughly the dynamic range of the 16-bit format
/// used by Qiu et al. \[12\] once accumulation headroom is accounted for.
pub type Q24_8 = Fixed<8>;

#[cfg(test)]
mod tests {
    use super::*;

    type Q = Fixed<16>;

    #[test]
    fn round_trip_representable_values() {
        for x in [0.0f32, 1.0, -1.0, 0.5, -0.25, 123.75, -4096.5] {
            assert_eq!(Q::from_f32(x).to_f32(), x, "round-trip of {x}");
        }
    }

    #[test]
    fn quantization_rounds_to_nearest() {
        let step = Q::resolution();
        let x = 0.3f32;
        let q = Q::from_f32(x).to_f32();
        assert!((q - x).abs() <= step / 2.0 + f32::EPSILON);
    }

    #[test]
    fn arithmetic_matches_reals_when_exact() {
        let a = Q::from_f32(2.5);
        let b = Q::from_f32(-0.5);
        assert_eq!((a + b).to_f32(), 2.0);
        assert_eq!((a - b).to_f32(), 3.0);
        assert_eq!((a * b).to_f32(), -1.25);
        assert_eq!((a / b).to_f32(), -5.0);
        assert_eq!((-a).to_f32(), -2.5);
    }

    #[test]
    fn saturation_on_overflow() {
        let big = Q::from_f32(30000.0);
        assert_eq!(big * big, Q::MAX);
        assert_eq!((-big) * big, Q::MIN);
        assert_eq!(Q::MAX + Q::ONE, Q::MAX);
        assert_eq!(Q::MIN - Q::ONE, Q::MIN);
    }

    #[test]
    fn from_f32_saturates_and_handles_nan() {
        assert_eq!(Q::from_f32(f32::INFINITY), Q::MAX);
        assert_eq!(Q::from_f32(f32::NEG_INFINITY), Q::MIN);
        assert_eq!(Q::from_f32(f32::NAN), Q::ZERO);
        assert_eq!(Q::from_f32(1e20), Q::MAX);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Q::ONE / Q::ZERO;
    }

    #[test]
    fn sum_accumulates() {
        let xs = [Q::from_f32(0.5); 8];
        assert_eq!(xs.iter().copied().sum::<Q>().to_f32(), 4.0);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Q::from_f32(-1.0) < Q::from_f32(-0.5));
        assert!(Q::from_f32(0.25) < Q::from_f32(0.5));
    }

    #[test]
    fn resolution_matches_frac() {
        assert_eq!(Fixed::<8>::resolution(), 1.0 / 256.0);
        assert_eq!(Fixed::<16>::resolution(), 1.0 / 65536.0);
    }
}
