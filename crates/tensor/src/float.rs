//! Floating-point comparison and error-statistics utilities.
//!
//! Winograd convolution is algebraically exact but numerically different
//! from direct convolution; every functional test in this workspace compares
//! the two through the helpers here, and the error-growth study (the paper's
//! implicit precision discussion in Sec. IV) is built on [`ErrorStats`].

/// Kahan (compensated) summation accumulator for `f64`.
///
/// ```
/// use wino_tensor::KahanSum;
///
/// let mut acc = KahanSum::new();
/// for _ in 0..10 {
///     acc.add(0.1);
/// }
/// assert!((acc.sum() - 1.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// Creates an empty accumulator.
    pub fn new() -> KahanSum {
        KahanSum::default()
    }

    /// Adds a term with error compensation.
    pub fn add(&mut self, x: f64) {
        let y = x - self.compensation;
        let t = self.sum + y;
        self.compensation = (t - self.sum) - y;
        self.sum = t;
    }

    /// The compensated running total.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

impl Extend<f64> for KahanSum {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

/// Returns `true` if `a` and `b` are equal within `abs_tol` or within
/// `rel_tol` of the larger magnitude.
///
/// ```
/// use wino_tensor::approx_eq;
/// assert!(approx_eq(1.0, 1.0 + 1e-7, 1e-9, 1e-6));
/// assert!(!approx_eq(1.0, 1.1, 1e-9, 1e-6));
/// ```
pub fn approx_eq(a: f32, b: f32, abs_tol: f32, rel_tol: f32) -> bool {
    if a == b {
        return true;
    }
    if a.is_nan() || b.is_nan() {
        return false;
    }
    let diff = (a - b).abs();
    diff <= abs_tol || diff <= rel_tol * a.abs().max(b.abs())
}

/// Distance in units-in-the-last-place between two finite floats.
///
/// Adjacent representable values are 1 ULP apart; equal values are 0.
/// Returns `u32::MAX` when either input is NaN.
pub fn ulp_distance(a: f32, b: f32) -> u32 {
    if a.is_nan() || b.is_nan() {
        return u32::MAX;
    }
    // Map the float ordering onto a monotone integer line.
    fn key(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        let k = if bits < 0 { i32::MIN.wrapping_sub(bits) } else { bits };
        k as i64
    }
    (key(a) - key(b)).unsigned_abs().min(u32::MAX as u64) as u32
}

/// Aggregate error statistics between a candidate and a reference sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Maximum absolute difference.
    pub max_abs: f64,
    /// Maximum relative difference (guarded against tiny references).
    pub max_rel: f64,
    /// Mean absolute difference.
    pub mean_abs: f64,
    /// Root-mean-square difference.
    pub rms: f64,
    /// Number of samples compared.
    pub count: usize,
}

impl ErrorStats {
    /// Computes statistics of `candidate − reference` element-wise.
    ///
    /// Relative error uses `max(|reference|, 1e-6)` as the denominator so a
    /// zero reference does not blow up the statistic.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn between(candidate: &[f32], reference: &[f32]) -> ErrorStats {
        assert_eq!(candidate.len(), reference.len(), "error stats require equal lengths");
        let mut max_abs = 0f64;
        let mut max_rel = 0f64;
        let mut abs_sum = KahanSum::new();
        let mut sq_sum = KahanSum::new();
        for (&c, &r) in candidate.iter().zip(reference) {
            let d = (c as f64 - r as f64).abs();
            max_abs = max_abs.max(d);
            max_rel = max_rel.max(d / (r.abs() as f64).max(1e-6));
            abs_sum.add(d);
            sq_sum.add(d * d);
        }
        let n = candidate.len().max(1) as f64;
        ErrorStats {
            max_abs,
            max_rel,
            mean_abs: abs_sum.sum() / n,
            rms: (sq_sum.sum() / n).sqrt(),
            count: candidate.len(),
        }
    }

    /// `true` if every sample matched within the given absolute tolerance.
    pub fn within_abs(&self, tol: f64) -> bool {
        self.max_abs <= tol
    }
}

impl std::fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "max_abs={:.3e} max_rel={:.3e} mean_abs={:.3e} rms={:.3e} (n={})",
            self.max_abs, self.max_rel, self.mean_abs, self.rms, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kahan_beats_naive_on_ill_conditioned_sum() {
        let mut kahan = KahanSum::new();
        let mut naive = 0f64;
        // 1 + 1e-16 * 1e6 : naive summation loses the small terms entirely.
        kahan.add(1.0);
        naive += 1.0;
        for _ in 0..1_000_000 {
            kahan.add(1e-16);
            naive += 1e-16;
        }
        let exact = 1.0 + 1e-10;
        assert!((kahan.sum() - exact).abs() < 1e-15);
        assert!((naive - exact).abs() > (kahan.sum() - exact).abs());
    }

    #[test]
    fn kahan_extend() {
        let mut acc = KahanSum::new();
        acc.extend([1.0, 2.0, 3.0]);
        assert_eq!(acc.sum(), 6.0);
    }

    #[test]
    fn approx_eq_basics() {
        assert!(approx_eq(0.0, 0.0, 0.0, 0.0));
        assert!(approx_eq(1e-12, 0.0, 1e-9, 0.0));
        assert!(approx_eq(1000.0, 1000.001, 0.0, 1e-5));
        assert!(!approx_eq(1.0, 2.0, 0.1, 0.1));
        assert!(!approx_eq(f32::NAN, f32::NAN, 1.0, 1.0));
    }

    #[test]
    fn ulp_distance_adjacent() {
        let a = 1.0f32;
        let b = f32::from_bits(a.to_bits() + 1);
        assert_eq!(ulp_distance(a, b), 1);
        assert_eq!(ulp_distance(a, a), 0);
        // Across zero: -0.0 and +0.0 are 0 or 1 apart depending on mapping;
        // at minimum the call must not overflow.
        assert!(ulp_distance(-0.0, 0.0) <= 1);
        assert_eq!(ulp_distance(f32::NAN, 1.0), u32::MAX);
    }

    #[test]
    fn error_stats_simple() {
        let cand = [1.0f32, 2.0, 3.0];
        let refr = [1.0f32, 2.5, 3.0];
        let s = ErrorStats::between(&cand, &refr);
        assert_eq!(s.max_abs, 0.5);
        assert!((s.mean_abs - 0.5 / 3.0).abs() < 1e-12);
        assert!((s.max_rel - 0.2).abs() < 1e-9);
        assert_eq!(s.count, 3);
        assert!(s.within_abs(0.5));
        assert!(!s.within_abs(0.4));
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn error_stats_length_mismatch_panics() {
        let _ = ErrorStats::between(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn error_stats_zero_reference_guard() {
        let s = ErrorStats::between(&[1e-7], &[0.0]);
        assert!(s.max_rel.is_finite());
    }
}
