//! # wino-tensor
//!
//! Numeric substrate for the `winofpga` workspace — the reproduction of
//! *"Towards Design Space Exploration and Optimization of Fast Algorithms
//! for CNNs on FPGAs"* (Ahmad & Pasha, DATE 2019).
//!
//! This crate provides the value types and containers every other crate
//! builds on:
//!
//! * [`Ratio`] — exact `i128` rationals, used to generate and *prove*
//!   Winograd transform matrices symbolically;
//! * [`Fixed`] — saturating Q-format fixed point for the quantization
//!   ablation (the 16-bit datapath of Qiu et al. \[12\]);
//! * [`Scalar`] — the trait that lets convolution code run over `f32`,
//!   `f64`, [`Ratio`] and [`Fixed`] alike;
//! * [`Tensor2`] / [`Tensor4`] — dense matrices and NCHW feature maps with
//!   the zero-padded tile extraction the Winograd tiler needs;
//! * float utilities ([`approx_eq`], [`ulp_distance`], [`KahanSum`],
//!   [`ErrorStats`]) used by every numerical test in the workspace.
//!
//! ```
//! use wino_tensor::{ratio, Tensor2};
//!
//! // Exact algebra: (B^T d) with rational entries has no rounding at all.
//! let bt = Tensor2::from_rows(&[
//!     &[ratio(1, 1), ratio(0, 1), ratio(-1, 1)],
//!     &[ratio(0, 1), ratio(1, 1), ratio(1, 1)],
//! ]);
//! let d = Tensor2::from_rows(&[&[ratio(5, 1)], &[ratio(7, 1)], &[ratio(2, 1)]]);
//! assert_eq!(bt.matmul(&d).as_slice(), &[ratio(3, 1), ratio(9, 1)]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod fixed;
mod float;
mod ratio;
mod rng;
mod scalar;
mod tensor;

pub use fixed::{Fixed, Q16_16, Q24_8};
pub use float::{approx_eq, ulp_distance, ErrorStats, KahanSum};
pub use ratio::{ratio, ParseRatioError, Ratio};
pub use rng::SplitMix64;
pub use scalar::Scalar;
pub use tensor::{Shape4, Tensor2, Tensor4};
