//! A tiny deterministic PRNG for synthetic data.
//!
//! The paper's results depend only on layer *shapes*; tensor values matter
//! only for functional verification, so a seeded SplitMix64 keeps examples
//! and the error-growth study reproducible without pulling `rand` into the
//! library's public dependency set (tests still use `rand`/`proptest`).

/// SplitMix64 pseudo-random generator (Steele et al.), deterministic and
/// seedable.
///
/// ```
/// use wino_tensor::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f64() as f32
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Modulo bias is irrelevant for test-data generation.
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_ranges() {
        let mut g = SplitMix64::new(99);
        for _ in 0..1000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = g.uniform_f32(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&y));
            let k = g.below(17);
            assert!(k < 17);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut g = SplitMix64::new(1234);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[(g.next_f64() * 10.0) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b} far from uniform");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        let mut g = SplitMix64::new(0);
        let _ = g.below(0);
    }
}
