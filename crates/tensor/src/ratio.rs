//! Exact rational arithmetic over `i128`.
//!
//! Winograd transform matrices are generated symbolically; the entries are
//! small rationals (Lavin-style interpolation points keep numerators and
//! denominators tiny), so a normalized `i128` fraction is exact for every
//! `F(m, r)` this crate supports. Overflow is a programming error and panics
//! with a descriptive message rather than silently wrapping.
//!
//! ```
//! use wino_tensor::Ratio;
//!
//! let half = Ratio::new(1, 2);
//! let third = Ratio::new(1, 3);
//! assert_eq!(half + third, Ratio::new(5, 6));
//! assert_eq!((half * third).to_string(), "1/6");
//! ```

use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number `num / den`, always stored in lowest terms with
/// a strictly positive denominator.
///
/// See the rational-arithmetic module docs (surfaced on the crate page)
/// for an overview.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i128,
    den: i128,
}

/// Greatest common divisor of the absolute values (Euclid).
fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ratio {
    /// The rational number zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates a rational from numerator and denominator, normalizing signs
    /// and reducing to lowest terms.
    ///
    /// ```
    /// use wino_tensor::Ratio;
    /// assert_eq!(Ratio::new(2, -4), Ratio::new(-1, 2));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Ratio {
        assert!(den != 0, "rational denominator must be non-zero");
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Ratio { num, den }
    }

    /// Creates an integer-valued rational.
    pub const fn from_integer(n: i128) -> Ratio {
        Ratio { num: n, den: 1 }
    }

    /// Numerator in lowest terms (sign carrier).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator in lowest terms (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Returns `true` if the value is exactly `1` or `-1`.
    pub fn is_unit(&self) -> bool {
        self.den == 1 && (self.num == 1 || self.num == -1)
    }

    /// Returns `true` if `|self|` is a (possibly negative) power of two,
    /// including `1`, `1/2`, `4`, … — i.e. realizable as a pure binary shift.
    pub fn is_power_of_two(&self) -> bool {
        if self.num == 0 {
            return false;
        }
        let n = self.num.unsigned_abs();
        let d = self.den.unsigned_abs();
        n.is_power_of_two() && d.is_power_of_two()
    }

    /// Absolute value.
    pub fn abs(&self) -> Ratio {
        Ratio { num: self.num.abs(), den: self.den }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Ratio {
        assert!(self.num != 0, "attempt to invert zero rational");
        Ratio::new(self.den, self.num)
    }

    /// Raises to an integer power (negative exponents invert).
    ///
    /// # Panics
    ///
    /// Panics when inverting zero or on overflow.
    pub fn pow(&self, exp: i32) -> Ratio {
        if exp == 0 {
            return Ratio::ONE;
        }
        let base = if exp < 0 { self.recip() } else { *self };
        let mut acc = Ratio::ONE;
        for _ in 0..exp.unsigned_abs() {
            acc *= base;
        }
        acc
    }

    /// Lossy conversion to `f64` (exact when representable).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Lossy conversion to `f32` (exact when representable).
    pub fn to_f32(&self) -> f32 {
        self.to_f64() as f32
    }

    fn checked_add(self, rhs: Ratio) -> Option<Ratio> {
        // a/b + c/d = (a*(l/b) + c*(l/d)) / l with l = lcm(b, d).
        let g = gcd(self.den, rhs.den);
        let l = (self.den / g).checked_mul(rhs.den)?;
        let lhs = self.num.checked_mul(l / self.den)?;
        let rhs_term = rhs.num.checked_mul(l / rhs.den)?;
        Some(Ratio::new(lhs.checked_add(rhs_term)?, l))
    }

    fn checked_mul(self, rhs: Ratio) -> Option<Ratio> {
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Some(Ratio::new(num, den))
    }
}

impl Default for Ratio {
    fn default() -> Ratio {
        Ratio::ZERO
    }
}

impl From<i128> for Ratio {
    fn from(n: i128) -> Ratio {
        Ratio::from_integer(n)
    }
}

impl From<i64> for Ratio {
    fn from(n: i64) -> Ratio {
        Ratio::from_integer(n as i128)
    }
}

impl From<i32> for Ratio {
    fn from(n: i32) -> Ratio {
        Ratio::from_integer(n as i128)
    }
}

/// Error returned when parsing a [`Ratio`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatioError {
    input: String,
}

impl fmt::Display for ParseRatioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal `{}`", self.input)
    }
}

impl std::error::Error for ParseRatioError {}

impl FromStr for Ratio {
    type Err = ParseRatioError;

    /// Parses `"3"`, `"-3"`, `"3/4"` or `"-3/4"`.
    fn from_str(s: &str) -> Result<Ratio, ParseRatioError> {
        let err = || ParseRatioError { input: s.to_owned() };
        match s.split_once('/') {
            None => s.trim().parse::<i128>().map(Ratio::from_integer).map_err(|_| err()),
            Some((n, d)) => {
                let num = n.trim().parse::<i128>().map_err(|_| err())?;
                let den = d.trim().parse::<i128>().map_err(|_| err())?;
                if den == 0 {
                    Err(err())
                } else {
                    Ok(Ratio::new(num, den))
                }
            }
        }
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        self.checked_add(rhs).expect("rational addition overflowed i128")
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        self + (-rhs)
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        self.checked_mul(rhs).expect("rational multiplication overflowed i128")
    }
}

impl Div for Ratio {
    type Output = Ratio;
    // Division by multiplication with the reciprocal is the exact field
    // operation here, not a typo.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Ratio) -> Ratio {
        self * rhs.recip()
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio { num: -self.num, den: self.den }
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, rhs: Ratio) {
        *self = *self + rhs;
    }
}

impl SubAssign for Ratio {
    fn sub_assign(&mut self, rhs: Ratio) {
        *self = *self - rhs;
    }
}

impl MulAssign for Ratio {
    fn mul_assign(&mut self, rhs: Ratio) {
        *self = *self * rhs;
    }
}

impl DivAssign for Ratio {
    fn div_assign(&mut self, rhs: Ratio) {
        *self = *self / rhs;
    }
}

impl Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::ZERO, Add::add)
    }
}

impl Product for Ratio {
    fn product<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::ONE, Mul::mul)
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0)
        let lhs = self.num.checked_mul(other.den).expect("rational comparison overflowed i128");
        let rhs = other.num.checked_mul(self.den).expect("rational comparison overflowed i128");
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ratio({self})")
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Convenience constructor: `ratio(1, 2)` is `Ratio::new(1, 2)`.
///
/// ```
/// use wino_tensor::{ratio, Ratio};
/// assert_eq!(ratio(3, 6), Ratio::new(1, 2));
/// ```
pub fn ratio(num: i128, den: i128) -> Ratio {
    Ratio::new(num, den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_reduces_and_fixes_sign() {
        assert_eq!(Ratio::new(4, 8), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-4, 8), Ratio::new(1, -2));
        assert_eq!(Ratio::new(3, -9).numer(), -1);
        assert_eq!(Ratio::new(3, -9).denom(), 3);
        assert_eq!(Ratio::new(0, -7), Ratio::ZERO);
        assert_eq!(Ratio::new(0, -7).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "denominator must be non-zero")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn field_operations() {
        let a = ratio(2, 3);
        let b = ratio(-1, 6);
        assert_eq!(a + b, ratio(1, 2));
        assert_eq!(a - b, ratio(5, 6));
        assert_eq!(a * b, ratio(-1, 9));
        assert_eq!(a / b, ratio(-4, 1));
        assert_eq!(-a, ratio(-2, 3));
    }

    #[test]
    fn assign_operators_match_binary_operators() {
        let mut x = ratio(1, 4);
        x += ratio(1, 4);
        assert_eq!(x, ratio(1, 2));
        x -= ratio(1, 3);
        assert_eq!(x, ratio(1, 6));
        x *= ratio(6, 1);
        assert_eq!(x, Ratio::ONE);
        x /= ratio(1, 5);
        assert_eq!(x, ratio(5, 1));
    }

    #[test]
    fn recip_and_pow() {
        assert_eq!(ratio(3, 4).recip(), ratio(4, 3));
        assert_eq!(ratio(2, 1).pow(10), ratio(1024, 1));
        assert_eq!(ratio(2, 1).pow(-2), ratio(1, 4));
        assert_eq!(ratio(5, 7).pow(0), Ratio::ONE);
        assert_eq!(ratio(-2, 3).pow(3), ratio(-8, 27));
    }

    #[test]
    #[should_panic(expected = "invert zero")]
    fn recip_of_zero_panics() {
        let _ = Ratio::ZERO.recip();
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(ratio(1, 3) < ratio(1, 2));
        assert!(ratio(-1, 2) < ratio(-1, 3));
        assert!(ratio(7, 7) == Ratio::ONE);
        let mut v = vec![ratio(1, 2), ratio(-3, 2), Ratio::ZERO, ratio(5, 4)];
        v.sort();
        assert_eq!(v, vec![ratio(-3, 2), Ratio::ZERO, ratio(1, 2), ratio(5, 4)]);
    }

    #[test]
    fn predicates() {
        assert!(Ratio::ZERO.is_zero());
        assert!(ratio(4, 2).is_integer());
        assert!(!ratio(1, 2).is_integer());
        assert!(ratio(-1, 1).is_unit());
        assert!(!ratio(2, 1).is_unit());
        assert!(ratio(1, 2).is_power_of_two());
        assert!(ratio(-4, 1).is_power_of_two());
        assert!(ratio(8, 2).is_power_of_two()); // normalizes to 4
        assert!(!ratio(3, 1).is_power_of_two());
        assert!(!Ratio::ZERO.is_power_of_two());
    }

    #[test]
    fn display_and_parse_round_trip() {
        for s in ["0", "5", "-5", "1/2", "-3/4", "22/7"] {
            let r: Ratio = s.parse().unwrap();
            assert_eq!(r.to_string(), s);
        }
        assert_eq!(" 6 / 8 ".parse::<Ratio>().unwrap(), ratio(3, 4));
        assert!("1/0".parse::<Ratio>().is_err());
        assert!("a/b".parse::<Ratio>().is_err());
        assert!("".parse::<Ratio>().is_err());
    }

    #[test]
    fn float_conversions() {
        assert_eq!(ratio(1, 2).to_f64(), 0.5);
        assert_eq!(ratio(-3, 4).to_f32(), -0.75);
        assert_eq!(Ratio::from_integer(1 << 20).to_f64(), 1048576.0);
    }

    #[test]
    fn sum_and_product_fold() {
        let xs = [ratio(1, 2), ratio(1, 3), ratio(1, 6)];
        assert_eq!(xs.iter().copied().sum::<Ratio>(), Ratio::ONE);
        assert_eq!(xs.iter().copied().product::<Ratio>(), ratio(1, 36));
    }

    #[test]
    fn cross_reduction_avoids_spurious_overflow() {
        // (2^100 / 3) * (3 / 2^100) must not overflow even though the naive
        // numerator product would.
        let big = Ratio::new(1 << 62, 3);
        let big = big * big; // (2^124)/9
        let inv = big.recip();
        assert_eq!(big * inv, Ratio::ONE);
    }
}
