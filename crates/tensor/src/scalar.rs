//! The [`Scalar`] abstraction shared by every numeric algorithm in the
//! workspace.
//!
//! Convolution and transform code is written once, generically, and then
//! instantiated with `f32` (the paper's single-precision datapath),
//! [`Ratio`](crate::Ratio) (exact verification of algebraic identities) or
//! [`Fixed`](crate::Fixed) (the quantization ablation).

use std::fmt::Debug;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A field-like element type usable in tensors, transforms and convolution.
///
/// ```
/// use wino_tensor::{Scalar, Ratio};
///
/// fn dot<T: Scalar>(a: &[T], b: &[T]) -> T {
///     a.iter().zip(b).fold(T::zero(), |acc, (&x, &y)| acc + x * y)
/// }
/// assert_eq!(dot(&[1.0f32, 2.0], &[3.0, 4.0]), 11.0);
/// assert_eq!(dot(&[Ratio::ONE], &[Ratio::new(1, 3)]), Ratio::new(1, 3));
/// ```
pub trait Scalar:
    Copy
    + Default
    + PartialEq
    + Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Lossy conversion from `f64` (used to inject constants and test data).
    fn from_f64(x: f64) -> Self;
    /// Lossy conversion to `f64` (used for error measurement and display).
    fn to_f64(self) -> f64;
}

impl Scalar for f32 {
    fn zero() -> f32 {
        0.0
    }
    fn one() -> f32 {
        1.0
    }
    fn from_f64(x: f64) -> f32 {
        x as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl Scalar for f64 {
    fn zero() -> f64 {
        0.0
    }
    fn one() -> f64 {
        1.0
    }
    fn from_f64(x: f64) -> f64 {
        x
    }
    fn to_f64(self) -> f64 {
        self
    }
}

impl Scalar for crate::Ratio {
    fn zero() -> crate::Ratio {
        crate::Ratio::ZERO
    }
    fn one() -> crate::Ratio {
        crate::Ratio::ONE
    }
    /// Converts via a dyadic approximation with 24 fractional bits, which is
    /// exact for every `f64` that is itself a small dyadic (the only values
    /// tests inject).
    fn from_f64(x: f64) -> crate::Ratio {
        let scaled = (x * (1u64 << 24) as f64).round() as i128;
        crate::Ratio::new(scaled, 1i128 << 24)
    }
    fn to_f64(self) -> f64 {
        crate::Ratio::to_f64(&self)
    }
}

impl<const FRAC: u32> Scalar for crate::Fixed<FRAC> {
    fn zero() -> Self {
        Self::ZERO
    }
    fn one() -> Self {
        Self::ONE
    }
    fn from_f64(x: f64) -> Self {
        Self::from_f32(x as f32)
    }
    fn to_f64(self) -> f64 {
        crate::Fixed::to_f64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fixed, Ratio};

    fn sum3<T: Scalar>() -> T {
        T::one() + T::one() + T::one()
    }

    #[test]
    fn identities_across_instantiations() {
        assert_eq!(sum3::<f32>(), 3.0);
        assert_eq!(sum3::<f64>(), 3.0);
        assert_eq!(sum3::<Ratio>(), Ratio::from_integer(3));
        assert_eq!(sum3::<Fixed<16>>().to_f64(), 3.0);
    }

    #[test]
    fn from_f64_round_trips_dyadics() {
        for x in [0.0, 1.0, -0.5, 2.25, -3.75] {
            assert_eq!(Ratio::from_f64(x).to_f64(), x);
            assert_eq!(f32::from_f64(x).to_f64(), x);
            assert_eq!(Fixed::<16>::from_f64(x).to_f64(), x);
        }
    }

    #[test]
    fn neg_is_additive_inverse() {
        fn check<T: Scalar>() {
            let x = T::from_f64(1.5);
            assert_eq!(x + (-x), T::zero());
        }
        check::<f32>();
        check::<f64>();
        check::<Ratio>();
        check::<Fixed<16>>();
    }
}
