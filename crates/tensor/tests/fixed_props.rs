//! Property tests pinning the DSP-block semantics of [`Fixed`]: bounded
//! round-trip error for in-range values, saturating (never wrapping)
//! overflow, and cross-FRAC conversion consistency.

use proptest::prelude::*;
use wino_tensor::Fixed;

/// Round-tripping an in-range `f32` through `Fixed<FRAC>` lands within
/// one quantization step `2^-FRAC` (round-to-nearest actually achieves
/// half that; the bound here is the one the quantization study quotes).
fn round_trip_within_resolution<const FRAC: u32>(x: f32) {
    let q = Fixed::<FRAC>::from_f32(x).to_f32();
    let step = Fixed::<FRAC>::resolution();
    assert!((q - x).abs() <= step, "FRAC={FRAC}: {x} -> {q} (step {step})");
}

/// The largest magnitude safely inside `Fixed<FRAC>`'s range.
fn in_range_bound<const FRAC: u32>() -> f32 {
    (i32::MAX as f64 / (1i64 << FRAC) as f64) as f32 * 0.99
}

proptest! {
    #[test]
    fn round_trip_error_is_at_most_one_step(unit in -1.0f32..1.0) {
        round_trip_within_resolution::<6>(unit * in_range_bound::<6>());
        round_trip_within_resolution::<10>(unit * in_range_bound::<10>());
        round_trip_within_resolution::<14>(unit * in_range_bound::<14>());
        round_trip_within_resolution::<16>(unit * in_range_bound::<16>());
    }

    #[test]
    fn addition_saturates_instead_of_wrapping(a in 0i32..i32::MAX, b in 0i32..i32::MAX) {
        type Q = Fixed<10>;
        // Two non-negative addends can never produce a negative sum; a
        // wrapping implementation would.
        let sum = Q::from_raw(a) + Q::from_raw(b);
        prop_assert!(sum.raw() >= a.max(b), "{a} + {b} wrapped to {}", sum.raw());
        let neg = Q::from_raw(-a) + Q::from_raw(-b);
        prop_assert!(neg.raw() <= (-a).min(-b), "-{a} + -{b} wrapped to {}", neg.raw());
    }

    #[test]
    fn multiplication_saturates_with_the_product_sign(a in -2_000_000.0f32..2_000_000.0, b in -2_000_000.0f32..2_000_000.0) {
        type Q = Fixed<10>;
        let (qa, qb) = (Q::from_f32(a), Q::from_f32(b));
        let p = qa * qb;
        let exact = a as f64 * b as f64;
        // The 1.01 guard band keeps quantization of the factors from
        // flipping a barely-out-of-range product back inside.
        if exact > Q::MAX.to_f64() * 1.01 {
            prop_assert_eq!(p, Q::MAX, "{} * {} must pin to MAX", a, b);
        } else if exact < Q::MIN.to_f64() * 1.01 {
            prop_assert_eq!(p, Q::MIN, "{} * {} must pin to MIN", a, b);
        } else if exact.abs() < Q::MAX.to_f64() * 0.99 {
            // In-range products never flip sign (a wrapping overflow would).
            prop_assert!(exact == 0.0 || p.to_f64() * exact.signum() >= -1.0);
        }
    }

    #[test]
    fn from_f32_saturates_out_of_range_inputs(mag in 1.0f32..1.0e30) {
        type Q = Fixed<16>;
        let limit = in_range_bound::<16>();
        let x = limit * (1.0 + mag);
        prop_assert_eq!(Q::from_f32(x), Q::MAX);
        prop_assert_eq!(Q::from_f32(-x), Q::MIN);
    }

    #[test]
    fn widening_then_narrowing_is_identity_in_range(raw in -(1i32 << 24)..(1i32 << 24)) {
        // Values inside Fixed<16>'s range survive a 8→16→8-style round
        // trip exactly: widening adds bits, it never invents error.
        let x = Fixed::<8>::from_raw(raw >> 16);
        prop_assert_eq!(x.convert::<16>().convert::<8>(), x);
        prop_assert_eq!(x.convert::<20>().convert::<8>(), x);
    }

    #[test]
    fn narrowing_error_is_at_most_the_coarser_step(raw in i32::MIN..i32::MAX) {
        let x = Fixed::<16>::from_raw(raw);
        let narrowed = x.convert::<8>();
        if narrowed != Fixed::<8>::MAX && narrowed != Fixed::<8>::MIN {
            let err = (narrowed.to_f64() - x.to_f64()).abs();
            prop_assert!(err <= Fixed::<8>::resolution() as f64, "err {err}");
        }
    }
}
