//! Property tests: Ratio is a totally ordered field, Fixed saturates
//! consistently, tensors round-trip.

use proptest::prelude::*;
use wino_tensor::{ratio, Fixed, Ratio, Shape4, Tensor2, Tensor4};

/// Small rationals that never overflow i128 under field ops.
fn small_ratio() -> impl Strategy<Value = Ratio> {
    (-1000i128..1000, 1i128..100).prop_map(|(n, d)| ratio(n, d))
}

proptest! {
    #[test]
    fn addition_commutes(a in small_ratio(), b in small_ratio()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn multiplication_distributes(a in small_ratio(), b in small_ratio(), c in small_ratio()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn additive_inverse(a in small_ratio()) {
        prop_assert_eq!(a + (-a), Ratio::ZERO);
        prop_assert_eq!(a - a, Ratio::ZERO);
    }

    #[test]
    fn multiplicative_inverse(a in small_ratio()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a * a.recip(), Ratio::ONE);
        prop_assert_eq!(a / a, Ratio::ONE);
    }

    #[test]
    fn normalization_is_canonical(n in -10_000i128..10_000, d in 1i128..1000, k in 1i128..50) {
        // Scaling numerator and denominator by k never changes the value.
        prop_assert_eq!(ratio(n, d), ratio(n * k, d * k));
        prop_assert!(ratio(n, d).denom() > 0);
    }

    #[test]
    fn ordering_respects_addition(a in small_ratio(), b in small_ratio(), c in small_ratio()) {
        if a < b {
            prop_assert!(a + c < b + c);
        }
    }

    #[test]
    fn display_parse_round_trip(a in small_ratio()) {
        let text = a.to_string();
        prop_assert_eq!(text.parse::<Ratio>().expect("parses"), a);
    }

    #[test]
    fn to_f64_is_monotone(a in small_ratio(), b in small_ratio()) {
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64());
        }
    }

    #[test]
    fn fixed_round_trip_within_resolution(x in -1000.0f32..1000.0) {
        let q = Fixed::<16>::from_f32(x);
        prop_assert!((q.to_f32() - x).abs() <= Fixed::<16>::resolution());
    }

    #[test]
    fn fixed_add_matches_float_when_in_range(a in -100.0f32..100.0, b in -100.0f32..100.0) {
        let qa = Fixed::<16>::from_f32(a);
        let qb = Fixed::<16>::from_f32(b);
        let sum = (qa + qb).to_f32();
        prop_assert!((sum - (a + b)).abs() <= 2.0 * Fixed::<16>::resolution());
    }

    #[test]
    fn tensor2_transpose_involution(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let mut s = seed;
        let m = Tensor2::from_fn(rows, cols, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 33) as f32
        });
        prop_assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn tensor4_plane_round_trip(h in 1usize..5, w in 1usize..5) {
        let shape = Shape4 { n: 2, c: 2, h, w };
        let t = Tensor4::from_fn(shape, |n, c, y, x| (n * 100 + c * 10 + y * w + x) as f32);
        let mut copy = Tensor4::zeros(shape);
        for n in 0..2 {
            for c in 0..2 {
                copy.set_plane(n, c, &t.plane(n, c));
            }
        }
        prop_assert_eq!(copy, t);
    }

    #[test]
    fn padded_tile_matches_manual_indexing(
        top in -3isize..6, left in -3isize..6, size in 1usize..5
    ) {
        let m = Tensor2::from_fn(4, 4, |r, c| (r * 4 + c + 1) as f32);
        let tile = m.padded_tile(top, left, size);
        for r in 0..size {
            for c in 0..size {
                let rr = top + r as isize;
                let cc = left + c as isize;
                let expect = if (0..4).contains(&rr) && (0..4).contains(&cc) {
                    m[(rr as usize, cc as usize)]
                } else {
                    0.0
                };
                prop_assert_eq!(tile[(r, c)], expect);
            }
        }
    }
}
