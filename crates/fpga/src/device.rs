//! FPGA device catalog.
//!
//! Resource ceilings for the devices appearing in the paper's evaluation:
//! the Virtex-7 the proposed designs target (Table I "Available
//! resources"), the Stratix V GT of Podili et al. [3] and the Zynq-7045 of
//! Qiu et al. [12].

use std::fmt;

/// Static resource capacity of one FPGA.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaDevice {
    /// Marketing/device name.
    pub name: &'static str,
    /// 6-input LUT (or LE-equivalent) count.
    pub luts: u64,
    /// Flip-flop count.
    pub registers: u64,
    /// Hard DSP block count.
    pub dsps: u64,
    /// DSP blocks consumed by one single-precision floating-point
    /// multiplier on this architecture (Table I: 2736 DSP / 684 mults = 4
    /// on Virtex-7).
    pub dsps_per_f32_mult: u64,
    /// Typical design clock in Hz for the paper's comparisons.
    pub nominal_freq_hz: f64,
}

impl FpgaDevice {
    /// Largest number of fp32 multipliers the DSP budget supports.
    pub fn max_f32_mults(&self) -> u64 {
        self.dsps / self.dsps_per_f32_mult
    }
}

impl fmt::Display for FpgaDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} LUTs, {} FFs, {} DSPs, {} fp32 mults)",
            self.name,
            self.luts,
            self.registers,
            self.dsps,
            self.max_f32_mults()
        )
    }
}

/// The paper's target: Xilinx Virtex-7 XC7VX485T (Table I "Available
/// resources": 303,600 LUTs / 607,200 registers / 2,800 DSPs → 700 fp32
/// multipliers).
pub fn virtex7_485t() -> FpgaDevice {
    FpgaDevice {
        name: "Xilinx Virtex-7 XC7VX485T",
        luts: 303_600,
        registers: 607_200,
        dsps: 2_800,
        dsps_per_f32_mult: 4,
        nominal_freq_hz: 200e6,
    }
}

/// Podili et al. \[3\]'s device: Altera Stratix V GT (capacities are
/// LE-equivalent approximations; used only for baseline feasibility, all
/// baseline performance numbers are taken from the publication).
pub fn stratix_v_gt() -> FpgaDevice {
    FpgaDevice {
        name: "Altera Stratix V GT",
        luts: 622_000,
        registers: 938_880,
        dsps: 512,
        dsps_per_f32_mult: 2,
        nominal_freq_hz: 200e6,
    }
}

/// Qiu et al. \[12\]'s device: Xilinx Zynq XC7Z045 (16-bit fixed-point
/// datapath; one 16-bit multiplier per DSP).
pub fn zynq_7045() -> FpgaDevice {
    FpgaDevice {
        name: "Xilinx Zynq XC7Z045",
        luts: 218_600,
        registers: 437_200,
        dsps: 900,
        dsps_per_f32_mult: 1,
        nominal_freq_hz: 150e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtex7_matches_table1_available_row() {
        let d = virtex7_485t();
        assert_eq!(d.luts, 303_600);
        assert_eq!(d.registers, 607_200);
        assert_eq!(d.dsps, 2_800);
        assert_eq!(d.max_f32_mults(), 700, "Table I: 700 multipliers available");
    }

    #[test]
    fn display_mentions_key_capacities() {
        let text = virtex7_485t().to_string();
        assert!(text.contains("Virtex-7"));
        assert!(text.contains("700 fp32"));
    }

    #[test]
    fn catalog_devices_are_distinct() {
        let names: Vec<&str> =
            [virtex7_485t(), stratix_v_gt(), zynq_7045()].iter().map(|d| d.name).collect();
        assert_eq!(names.len(), 3);
        assert!(names.windows(2).all(|w| w[0] != w[1]));
    }
}
