//! # wino-fpga
//!
//! FPGA device models, resource estimation and power modelling for the
//! `winofpga` reproduction of Ahmad & Pasha (DATE 2019).
//!
//! The crate substitutes for the paper's Vivado synthesis flow (see
//! DESIGN.md §2): [`EngineResources`] turns the generated transform
//! matrices into LUT/register/DSP estimates using coefficients calibrated
//! once against Table I, and [`PowerModel`] reproduces the Table II power
//! column with a power law fitted to the paper's own three designs.
//!
//! ```
//! use wino_fpga::{virtex7_485t, Architecture, EngineResources};
//! use wino_core::WinogradParams;
//!
//! let est = EngineResources::new(WinogradParams::new(4, 3)?)?;
//! let ours = est.estimate(Architecture::SharedTransform, 19);
//! let theirs = est.estimate(Architecture::PerPeTransform, 19);
//! // The paper's headline logic saving: ~53.6% fewer LUTs.
//! assert!(ours.luts * 2 < theirs.luts);
//! assert!(ours.fits(&virtex7_485t()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod device;
mod power;
mod resources;

pub use device::{stratix_v_gt, virtex7_485t, zynq_7045, FpgaDevice};
pub use power::{paper_calibrated_model, paper_power_points, PowerModel};
pub use resources::{
    fft_engine, Architecture, EngineResources, ResourceUsage, DATA_BITS, LUT_PER_F32_MULT,
    LUT_PER_TRANSFORM_OP, REG_PE_OVERHEAD,
};
