//! Power modelling — substitution for Vivado power reports.
//!
//! The paper publishes the synthesized power of its three Virtex-7 designs
//! (Table II: 13.03 W / 23.96 W / 36.32 W for `m = 2/3/4`). Those three
//! points are *superlinear* in every static resource count — they fit a
//! power law `P = k·LUT^α` within ±2% (α ≈ 1.34), which is how physical
//! designs behave once routing and switching density grow with
//! utilization. [`PowerModel::fit_power_law`] performs that calibration in
//! closed form (log-log least squares) so the constants are reproducible
//! from the paper's numbers, and a linear XPE-style model is provided for
//! what-if studies.
//!
//! Baseline designs ([3], [3]ᵃ, [12]) keep their *published* power values
//! — [3]ᵃ's 21.61 W is the paper's own multiplier-count scaling of [3]'s
//! 8.04 W on a different device, which no Virtex-7 resource model can (or
//! should) reproduce.

use crate::ResourceUsage;
use std::fmt;

/// A model mapping resource usage to total on-chip power (watts).
#[derive(Debug, Clone, PartialEq)]
pub enum PowerModel {
    /// Empirical `P = k·LUTs^α` (the paper-calibrated default).
    PowerLaw {
        /// Scale factor `k`.
        k: f64,
        /// Exponent `α`.
        alpha: f64,
    },
    /// XPE-style linear model
    /// `P = static + f·(e_lut·LUT + e_reg·REG + e_dsp·DSP)`, coefficients
    /// in W/(resource·Hz).
    Linear {
        /// Static (leakage) power in watts.
        static_w: f64,
        /// Dynamic energy coefficient per LUT.
        e_lut: f64,
        /// Dynamic energy coefficient per register.
        e_reg: f64,
        /// Dynamic energy coefficient per DSP block.
        e_dsp: f64,
    },
}

impl PowerModel {
    /// Fits `P = k·LUT^α` through log-log least squares.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two points or non-positive inputs.
    pub fn fit_power_law(points: &[(u64, f64)]) -> PowerModel {
        assert!(points.len() >= 2, "power-law fit needs at least two points");
        let logs: Vec<(f64, f64)> = points
            .iter()
            .map(|&(luts, watts)| {
                assert!(luts > 0 && watts > 0.0, "power-law fit needs positive data");
                ((luts as f64).ln(), watts.ln())
            })
            .collect();
        let n = logs.len() as f64;
        let mean_x = logs.iter().map(|p| p.0).sum::<f64>() / n;
        let mean_y = logs.iter().map(|p| p.1).sum::<f64>() / n;
        let cov: f64 = logs.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
        let var: f64 = logs.iter().map(|p| (p.0 - mean_x) * (p.0 - mean_x)).sum();
        assert!(var > 0.0, "power-law fit needs distinct LUT counts");
        let alpha = cov / var;
        let k = (mean_y - alpha * mean_x).exp();
        PowerModel::PowerLaw { k, alpha }
    }

    /// Predicted power for a design at clock `freq_hz`.
    pub fn power_w(&self, usage: &ResourceUsage, freq_hz: f64) -> f64 {
        match *self {
            PowerModel::PowerLaw { k, alpha } => {
                // Calibrated at the paper's 200 MHz; dynamic power scales
                // linearly with clock, so other frequencies scale the
                // prediction.
                k * (usage.luts as f64).powf(alpha) * (freq_hz / 200e6)
            }
            PowerModel::Linear { static_w, e_lut, e_reg, e_dsp } => {
                static_w
                    + freq_hz
                        * (e_lut * usage.luts as f64
                            + e_reg * usage.registers as f64
                            + e_dsp * usage.dsps as f64)
            }
        }
    }

    /// Power efficiency in GOPS/W (the paper's Table II metric).
    pub fn power_efficiency(
        &self,
        throughput_gops: f64,
        usage: &ResourceUsage,
        freq_hz: f64,
    ) -> f64 {
        throughput_gops / self.power_w(usage, freq_hz)
    }
}

impl fmt::Display for PowerModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PowerModel::PowerLaw { k, alpha } => {
                write!(f, "P = {k:.3e} * LUT^{alpha:.3} (paper-calibrated)")
            }
            PowerModel::Linear { static_w, e_lut, e_reg, e_dsp } => write!(
                f,
                "P = {static_w:.2} + f*({e_lut:.2e}*LUT + {e_reg:.2e}*REG + {e_dsp:.2e}*DSP)"
            ),
        }
    }
}

/// The published Table II power points for the paper's own Virtex-7
/// designs: `(m, LUT estimate source, watts)`. The LUT counts come from
/// [`EngineResources`](crate::EngineResources) at the Table II PE counts
/// (43/28/19).
pub fn paper_power_points() -> Vec<(u64, f64)> {
    use crate::{Architecture, EngineResources};
    use wino_core::WinogradParams;
    [(2usize, 43usize, 13.03f64), (3, 28, 23.96), (4, 19, 36.32)]
        .iter()
        .map(|&(m, p, w)| {
            let est = EngineResources::new(WinogradParams::new(m, 3).expect("valid params"))
                .expect("generation cannot fail");
            (est.estimate(Architecture::SharedTransform, p).luts, w)
        })
        .collect()
}

/// The paper-calibrated default power model (power law fitted to the
/// three published design powers).
pub fn paper_calibrated_model() -> PowerModel {
    PowerModel::fit_power_law(&paper_power_points())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Architecture, EngineResources};
    use wino_core::WinogradParams;

    fn usage(m: usize, p: usize) -> ResourceUsage {
        EngineResources::new(WinogradParams::new(m, 3).unwrap())
            .unwrap()
            .estimate(Architecture::SharedTransform, p)
    }

    #[test]
    fn calibrated_model_reproduces_table2_powers() {
        let model = paper_calibrated_model();
        for (m, p, watts) in [(2, 43, 13.03), (3, 28, 23.96), (4, 19, 36.32)] {
            let predicted = model.power_w(&usage(m, p), 200e6);
            let rel = (predicted - watts).abs() / watts;
            assert!(rel < 0.025, "m={m}: predicted {predicted:.2} W vs paper {watts} W");
        }
    }

    #[test]
    fn fitted_exponent_is_superlinear() {
        match paper_calibrated_model() {
            PowerModel::PowerLaw { alpha, .. } => {
                assert!((1.2..1.5).contains(&alpha), "alpha = {alpha}");
            }
            PowerModel::Linear { .. } => panic!("expected power law"),
        }
    }

    #[test]
    fn power_scales_with_frequency() {
        let model = paper_calibrated_model();
        let u = usage(4, 19);
        let p200 = model.power_w(&u, 200e6);
        let p100 = model.power_w(&u, 100e6);
        assert!((p200 / p100 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn linear_model_arithmetic() {
        let model = PowerModel::Linear { static_w: 1.0, e_lut: 1e-12, e_reg: 5e-13, e_dsp: 1e-11 };
        let u = ResourceUsage { luts: 1000, registers: 2000, dsps: 100, multipliers: 25 };
        let p = model.power_w(&u, 1e8);
        // 1.0 + 1e8*(1e-9 + 1e-9 + 1e-9) = 1.3
        assert!((p - 1.3).abs() < 1e-9, "got {p}");
        assert!((model.power_efficiency(130.0, &u, 1e8) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn power_efficiency_ordering_matches_paper() {
        // Table II power efficiency: ours m=2 (41.34) > m=3 (37.87) >
        // m=4 (30.13): smaller tiles are more power-efficient, bigger
        // tiles are faster.
        let model = paper_calibrated_model();
        let gops = [619.2, 907.2, 1094.3];
        let effs: Vec<f64> = [(2, 43), (3, 28), (4, 19)]
            .iter()
            .zip(&gops)
            .map(|(&(m, p), &g)| model.power_efficiency(g, &usage(m, p), 200e6))
            .collect();
        assert!(effs[0] > effs[1] && effs[1] > effs[2], "{effs:?}");
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn fit_rejects_single_point() {
        let _ = PowerModel::fit_power_law(&[(100, 1.0)]);
    }

    #[test]
    fn display_is_informative() {
        assert!(paper_calibrated_model().to_string().contains("LUT^"));
    }
}
