//! Operator-level resource estimation for Winograd convolution engines.
//!
//! Substitution for Vivado synthesis reports (see DESIGN.md §2): every
//! adder/shift-add in the transform stages and every fp32 multiplier is
//! counted from the generated matrices, and three cost coefficients map
//! op counts to LUTs/registers. The coefficients are *calibrated once*
//! against Table I of the paper and then fixed:
//!
//! * `LUT_PER_TRANSFORM_OP = 32` — Table I gives the per-PE data-transform
//!   LUT delta as 12224 − 5312 = 6912 for `F(4×4,3×3)`, whose data
//!   transform has 216 shift-free ops: 6912 / 216 = 32 exactly; the shared
//!   stage (6911 LUTs) confirms it.
//! * `LUT_PER_F32_MULT = 832/36 ≈ 23.1` — the remainder of the 5312-LUT
//!   PE after its 140-op inverse transform (`5312 − 140·32 = 832`) spread
//!   over 36 multipliers.
//! * register banks hold `2n²` values in the shared data-transform stage
//!   and `2n² + 2m²` per PE (tile/product and output/accumulator pairs) at
//!   32 bits each, plus a fitted 577-FF per-PE control overhead that
//!   reproduces Table I's 76,500 registers.

use crate::FpgaDevice;
use std::fmt;
use wino_core::{matrix_apply_ops, CostModel, TransformSet, WinogradParams};

/// LUTs per transform add/shift-add operation (Table I calibration).
pub const LUT_PER_TRANSFORM_OP: f64 = 32.0;
/// LUTs of glue per fp32 multiplier beside its 4 DSP blocks.
pub const LUT_PER_F32_MULT: f64 = 832.0 / 36.0;
/// Datapath width in bits (the paper uses single-precision floats).
pub const DATA_BITS: u64 = 32;
/// Fitted per-PE control/valid-chain register overhead.
pub const REG_PE_OVERHEAD: u64 = 577;

/// Where the data transform stage lives (the paper's first contribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// One data transform shared by all PEs (the proposed design, Fig. 7).
    SharedTransform,
    /// Data transform replicated inside every PE (Podili et al. \[3\]).
    PerPeTransform,
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Architecture::SharedTransform => write!(f, "shared-transform (proposed)"),
            Architecture::PerPeTransform => write!(f, "per-PE transform [3]"),
        }
    }
}

/// Estimated (or measured) resource usage of one engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceUsage {
    /// Slice LUTs.
    pub luts: u64,
    /// Flip-flops.
    pub registers: u64,
    /// DSP blocks.
    pub dsps: u64,
    /// fp32 multipliers (DSP groups).
    pub multipliers: u64,
}

impl ResourceUsage {
    /// `true` when this usage fits on `device`.
    pub fn fits(&self, device: &FpgaDevice) -> bool {
        self.luts <= device.luts && self.registers <= device.registers && self.dsps <= device.dsps
    }

    /// Fraction of the device's LUTs consumed.
    pub fn lut_utilization(&self, device: &FpgaDevice) -> f64 {
        self.luts as f64 / device.luts as f64
    }
}

impl std::ops::Add for ResourceUsage {
    type Output = ResourceUsage;
    fn add(self, rhs: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            luts: self.luts + rhs.luts,
            registers: self.registers + rhs.registers,
            dsps: self.dsps + rhs.dsps,
            multipliers: self.multipliers + rhs.multipliers,
        }
    }
}

impl fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUTs, {} FFs, {} DSPs, {} mults",
            self.luts, self.registers, self.dsps, self.multipliers
        )
    }
}

/// Resource estimator for one `F(m×m, r×r)` engine.
///
/// ```
/// use wino_fpga::{Architecture, EngineResources};
/// use wino_core::WinogradParams;
///
/// let est = EngineResources::new(WinogradParams::new(4, 3)?)?;
/// let ours = est.estimate(Architecture::SharedTransform, 19);
/// // Table I row "Our proposed design": 107,839 LUTs (model: 107,840).
/// assert!((ours.luts as i64 - 107_839).abs() <= 2);
/// assert_eq!(ours.dsps, 2_736);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct EngineResources {
    params: WinogradParams,
    /// Shift-free op count of the 2-D data transform (`2n·ops(Bᵀ)`).
    data_ops: u64,
    /// Shift-free op count of the 2-D inverse transform (`(n+m)·ops(Aᵀ)`).
    inverse_ops: u64,
}

impl EngineResources {
    /// Builds the estimator, generating transforms for `params`.
    ///
    /// # Errors
    ///
    /// Propagates transform-generation errors.
    pub fn new(params: WinogradParams) -> Result<EngineResources, wino_core::TransformError> {
        let set = TransformSet::generate(params)?;
        Ok(EngineResources::from_transforms(&set))
    }

    /// Builds the estimator from an existing transform set.
    pub fn from_transforms(set: &TransformSet) -> EngineResources {
        let params = set.params();
        let n = params.input_tile() as u64;
        let m = params.m() as u64;
        // Hardware transforms are built from shifters and adders
        // (Sec. IV-B), so the shift-free cost model is the right basis.
        let data_1d = matrix_apply_ops(set.bt(), CostModel::ShiftFree).flops();
        let inverse_1d = matrix_apply_ops(set.at(), CostModel::ShiftFree).flops();
        EngineResources { params, data_ops: 2 * n * data_1d, inverse_ops: (n + m) * inverse_1d }
    }

    /// The algorithm parameters.
    pub fn params(&self) -> WinogradParams {
        self.params
    }

    /// Shift-free 2-D data-transform op count (216 for `F(4×4,3×3)`).
    pub fn data_transform_ops(&self) -> u64 {
        self.data_ops
    }

    /// Shift-free 2-D inverse-transform op count (140 for `F(4×4,3×3)`).
    pub fn inverse_transform_ops(&self) -> u64 {
        self.inverse_ops
    }

    /// LUTs of one data transform stage instance.
    pub fn data_transform_luts(&self) -> u64 {
        (self.data_ops as f64 * LUT_PER_TRANSFORM_OP) as u64
    }

    /// LUTs of one PE *without* a data transform (element-wise multipliers
    /// + inverse transform) — the paper's "about 5312 LUTs per PE".
    pub fn pe_luts(&self) -> u64 {
        let mults = self.params.mults_per_tile_2d() as f64;
        (self.inverse_ops as f64 * LUT_PER_TRANSFORM_OP + mults * LUT_PER_F32_MULT).round() as u64
    }

    /// Registers of one PE: V buffer + product bank (`2n²` words) and
    /// inverse-output + accumulator bank (`2m²` words) plus control.
    pub fn pe_registers(&self) -> u64 {
        let n2 = self.params.mults_per_tile_2d() as u64;
        let m2 = self.params.outputs_per_tile_2d() as u64;
        DATA_BITS * (2 * n2 + 2 * m2) + REG_PE_OVERHEAD
    }

    /// Registers of the shared data transform stage (input + output tile
    /// banks).
    pub fn data_transform_registers(&self) -> u64 {
        2 * DATA_BITS * self.params.mults_per_tile_2d() as u64
    }

    /// Full-engine estimate for `pe_count` parallel PEs.
    pub fn estimate(&self, arch: Architecture, pe_count: usize) -> ResourceUsage {
        let p = pe_count as u64;
        let mults = self.params.mults_per_tile_2d() as u64 * p;
        let (luts, registers) = match arch {
            Architecture::SharedTransform => (
                self.data_transform_luts() + p * self.pe_luts(),
                self.data_transform_registers() + p * self.pe_registers(),
            ),
            Architecture::PerPeTransform => (
                p * (self.pe_luts() + self.data_transform_luts()),
                // [3] replicates the transform logic per PE; its pipeline
                // bank (one n^2 word stage) is also replicated.
                p * (self.pe_registers() + DATA_BITS * self.params.mults_per_tile_2d() as u64),
            ),
        };
        ResourceUsage { luts, registers, dsps: mults * 4, multipliers: mults }
    }
}

/// Resource estimate for a tile-wise overlap–save FFT(`n`) convolution
/// engine built around `multipliers` real multipliers.
///
/// The datapath is a bank of complex-MAC PEs (4 real multipliers each,
/// same 4-DSP-per-multiplier packing as the Winograd PEs) fed by a
/// shared radix-2 butterfly network:
///
/// * LUTs — multiplier glue at [`LUT_PER_F32_MULT`] plus the shared
///   butterfly/twiddle control, counted as `4n·log₂n` add-equivalent
///   ops (one 1-D pass of complex butterflies) at
///   [`LUT_PER_TRANSFORM_OP`].
/// * Registers — ping-pong tile and spectrum buffers (`4n²` words of
///   [`DATA_BITS`]) plus the fitted [`REG_PE_OVERHEAD`] per complex
///   MAC.
/// * DSPs — `multipliers × 4`, matching
///   [`EngineResources::estimate`]'s packing so FFT and Winograd
///   engines compete for the same budget on equal terms.
///
/// # Panics
///
/// Panics when `n` is not a power of two of at least 4.
pub fn fft_engine(n: usize, multipliers: u64) -> ResourceUsage {
    assert!(n >= 4 && n.is_power_of_two(), "FFT size {n} must be a power of two >= 4");
    let butterfly_ops = 4.0 * n as f64 * (n as f64).log2();
    let luts = (multipliers as f64 * LUT_PER_F32_MULT + butterfly_ops * LUT_PER_TRANSFORM_OP)
        .round() as u64;
    let complex_macs = multipliers.div_ceil(4);
    let registers = DATA_BITS * 4 * (n * n) as u64 + complex_macs * REG_PE_OVERHEAD;
    ResourceUsage { luts, registers, dsps: multipliers * 4, multipliers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::virtex7_485t;

    fn estimator(m: usize) -> EngineResources {
        EngineResources::new(WinogradParams::new(m, 3).unwrap()).unwrap()
    }

    #[test]
    fn fft_engine_scales_with_size_and_budget_and_packs_dsps_like_winograd() {
        let small = fft_engine(16, 100);
        let big = fft_engine(32, 100);
        let rich = fft_engine(16, 400);
        assert_eq!(small.multipliers, 100);
        assert_eq!(small.dsps, 400, "4 DSPs per real multiplier, as EngineResources::estimate");
        assert!(big.luts > small.luts && big.registers > small.registers);
        assert!(rich.luts > small.luts && rich.dsps == 1600);
        assert!(small.fits(&virtex7_485t()), "a 100-multiplier FFT(16) engine fits the 485T");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_engine_rejects_non_power_of_two() {
        let _ = fft_engine(12, 100);
    }

    #[test]
    fn f43_op_counts_behind_table1() {
        let est = estimator(4);
        assert_eq!(est.data_transform_ops(), 216, "2*6*18 shift-free data ops");
        assert_eq!(est.inverse_transform_ops(), 140, "(6+4)*14 shift-free inverse ops");
        assert_eq!(est.data_transform_luts(), 6912);
        assert_eq!(est.pe_luts(), 5312, "paper: ~5312 LUTs per PE");
        assert_eq!(
            est.pe_luts() + est.data_transform_luts(),
            12224,
            "paper: ~12224 LUTs per [3]-style PE"
        );
    }

    #[test]
    fn table1_proposed_design_row() {
        let est = estimator(4);
        let ours = est.estimate(Architecture::SharedTransform, 19);
        assert!((ours.luts as i64 - 107_839).abs() <= 2, "Table I LUTs: {}", ours.luts);
        assert!(
            (ours.registers as i64 - 76_500).abs() <= 100,
            "Table I registers: {}",
            ours.registers
        );
        assert_eq!(ours.dsps, 2_736, "Table I DSPs");
        assert_eq!(ours.multipliers, 684, "Table I multipliers");
    }

    #[test]
    fn table1_reference_design_row() {
        let est = estimator(4);
        let refr = est.estimate(Architecture::PerPeTransform, 19);
        assert_eq!(refr.luts, 232_256, "Table I LUTs for the [3]-based design");
        assert!(
            (refr.registers as f64 - 97_052.0).abs() / 97_052.0 < 0.02,
            "Table I registers within 2%: {}",
            refr.registers
        );
        assert_eq!(refr.dsps, 2_736);
    }

    #[test]
    fn lut_savings_match_papers_53_6_percent() {
        let est = estimator(4);
        let ours = est.estimate(Architecture::SharedTransform, 19);
        let refr = est.estimate(Architecture::PerPeTransform, 19);
        let saving = 1.0 - ours.luts as f64 / refr.luts as f64;
        assert!((saving - 0.536).abs() < 0.005, "paper: ~53.6% LUT savings, got {saving:.3}");
    }

    #[test]
    fn savings_grow_with_pe_count() {
        // Sec. V-A: "higher savings in slice logic utilization for high
        // number of parallel PEs".
        let est = estimator(4);
        let saving = |p: usize| {
            let ours = est.estimate(Architecture::SharedTransform, p).luts as f64;
            let refr = est.estimate(Architecture::PerPeTransform, p).luts as f64;
            1.0 - ours / refr
        };
        assert!(saving(19) > saving(4));
        assert!(saving(4) > saving(1));
    }

    #[test]
    fn feasibility_on_virtex7() {
        let dev = virtex7_485t();
        let est = estimator(4);
        assert!(est.estimate(Architecture::SharedTransform, 19).fits(&dev));
        // The [3]-style design at 19 PEs does NOT fit in 303,600 LUTs —
        // 232k fits, but 26 PEs would not.
        assert!(!est.estimate(Architecture::PerPeTransform, 27).fits(&dev));
        // DSPs cap PEs at 19 regardless (Sec. V-A).
        let twenty = est.estimate(Architecture::SharedTransform, 20);
        assert!(twenty.dsps > dev.dsps, "20 PEs need {} DSPs", twenty.dsps);
    }

    #[test]
    fn usage_arithmetic_and_display() {
        let a = ResourceUsage { luts: 10, registers: 20, dsps: 4, multipliers: 1 };
        let b = a + a;
        assert_eq!(b.luts, 20);
        assert_eq!(b.multipliers, 2);
        assert!(a.to_string().contains("10 LUTs"));
        let dev = virtex7_485t();
        assert!(a.lut_utilization(&dev) < 1e-3);
        assert_eq!(Architecture::SharedTransform.to_string(), "shared-transform (proposed)");
    }
}
