//! Property tests for the resource and power models: monotonicity and
//! architectural invariants must hold across the whole parameter space.

use proptest::prelude::*;
use wino_core::WinogradParams;
use wino_fpga::{paper_calibrated_model, Architecture, EngineResources, PowerModel, ResourceUsage};

proptest! {
    #[test]
    fn resources_scale_monotonically_with_pes(m in 2usize..7, p in 1usize..40) {
        let est = EngineResources::new(WinogradParams::new(m, 3).expect("valid")).expect("gen");
        for arch in [Architecture::SharedTransform, Architecture::PerPeTransform] {
            let small = est.estimate(arch, p);
            let large = est.estimate(arch, p + 1);
            prop_assert!(large.luts > small.luts);
            prop_assert!(large.registers > small.registers);
            prop_assert_eq!(large.dsps - small.dsps, 4 * est.params().mults_per_tile_2d() as u64);
        }
    }

    #[test]
    fn shared_transform_never_uses_more_logic(m in 2usize..7, p in 1usize..40) {
        let est = EngineResources::new(WinogradParams::new(m, 3).expect("valid")).expect("gen");
        let ours = est.estimate(Architecture::SharedTransform, p);
        let theirs = est.estimate(Architecture::PerPeTransform, p);
        // One shared stage vs p replicated stages: equal only at p = 1.
        if p == 1 {
            prop_assert_eq!(ours.luts, theirs.luts);
        } else {
            prop_assert!(ours.luts < theirs.luts, "p={p}: {} vs {}", ours.luts, theirs.luts);
        }
        prop_assert_eq!(ours.dsps, theirs.dsps);
        prop_assert_eq!(ours.multipliers, theirs.multipliers);
    }

    #[test]
    fn power_model_is_monotone_in_luts(luts in 1_000u64..500_000, extra in 1u64..100_000) {
        let model = paper_calibrated_model();
        let base = ResourceUsage { luts, registers: 0, dsps: 0, multipliers: 0 };
        let bigger = ResourceUsage { luts: luts + extra, ..base };
        prop_assert!(model.power_w(&bigger, 200e6) > model.power_w(&base, 200e6));
    }

    #[test]
    fn power_law_fit_interpolates_its_anchor_points(
        k in 1e-7f64..1e-4,
        alpha in 1.0f64..1.6,
        l1 in 10_000u64..50_000,
        dl in 10_000u64..100_000,
    ) {
        // Fitting exact power-law data recovers the generating curve.
        let l2 = l1 + dl;
        let p = |l: u64| k * (l as f64).powf(alpha);
        let model = PowerModel::fit_power_law(&[(l1, p(l1)), (l2, p(l2))]);
        let mid = l1 + dl / 2;
        let usage = ResourceUsage { luts: mid, registers: 0, dsps: 0, multipliers: 0 };
        let predicted = model.power_w(&usage, 200e6);
        prop_assert!((predicted - p(mid)).abs() / p(mid) < 1e-9);
    }
}
