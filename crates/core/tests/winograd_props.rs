//! Property tests: generated Winograd algorithms compute exact
//! correlations for *all* inputs, arbitrary valid (m, r) and point sets.

use proptest::prelude::*;
use wino_core::{
    canonical_points, direct_correlate_1d, TransformSet, WinogradAlgorithm, WinogradParams,
};
use wino_tensor::{ratio, Ratio, Shape4, Tensor2, Tensor4};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_1d_algorithm_is_exact(
        m in 2usize..7,
        r in 2usize..5,
        data in prop::collection::vec((-9i128..10, 1i128..4), 16),
        taps in prop::collection::vec((-9i128..10, 1i128..4), 8),
    ) {
        let params = WinogradParams::new(m, r).expect("valid");
        let set = TransformSet::generate(params).expect("generates");
        let algo = WinogradAlgorithm::<Ratio>::exact(&set);
        let n = params.input_tile();
        let d: Vec<Ratio> = data.iter().take(n).map(|&(a, b)| ratio(a, b)).collect();
        let g: Vec<Ratio> = taps.iter().take(r).map(|&(a, b)| ratio(a, b)).collect();
        prop_assume!(d.len() == n && g.len() == r);
        prop_assert_eq!(algo.convolve_1d(&d, &g), direct_correlate_1d(&d, &g));
    }

    #[test]
    fn generated_2d_tile_is_exact(m in 2usize..6, r in 2usize..4, seed in 0u64..500) {
        let params = WinogradParams::new(m, r).expect("valid");
        let set = TransformSet::generate(params).expect("generates");
        let algo = WinogradAlgorithm::<Ratio>::exact(&set);
        let n = params.input_tile();
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ratio(((s >> 33) % 17) as i128 - 8, 1)
        };
        let tile = Tensor2::from_fn(n, n, |_, _| next());
        let kernel = Tensor2::from_fn(r, r, |_, _| next());
        let y = algo.convolve_tile(&tile, &kernel);
        for oy in 0..m {
            for ox in 0..m {
                let mut acc = Ratio::ZERO;
                for v in 0..r {
                    for u in 0..r {
                        acc += tile[(oy + v, ox + u)] * kernel[(v, u)];
                    }
                }
                prop_assert_eq!(y[(oy, ox)], acc);
            }
        }
    }

    #[test]
    fn arbitrary_distinct_points_still_generate_valid_algorithms(
        perm_seed in 0u64..10_000,
    ) {
        // Shuffle/perturb the canonical points: any distinct set works.
        let params = WinogradParams::new(3, 3).expect("valid");
        let mut pts = canonical_points(4);
        let a = (perm_seed % 4) as usize;
        let b = ((perm_seed / 4) % 4) as usize;
        pts.swap(a, b);
        // Perturb one point to a fresh value not already present.
        let fresh = ratio(5 + (perm_seed % 7) as i128, 1 + (perm_seed % 3) as i128);
        if !pts.contains(&fresh) {
            pts[(perm_seed % 4) as usize] = fresh;
        }
        let set = TransformSet::with_points(params, &pts).expect("distinct points generate");
        prop_assert!(set.verify().is_ok());
    }

    #[test]
    fn f32_layer_conv_stays_close_to_direct(
        m in 2usize..5,
        c in 1usize..4,
        k in 1usize..4,
        hw in 4usize..10,
        seed in 0u64..1000,
    ) {
        let params = WinogradParams::new(m, 3).expect("valid");
        let algo = WinogradAlgorithm::<f32>::for_params(params).expect("generates");
        let mut rng = wino_tensor::SplitMix64::new(seed);
        let input = Tensor4::from_fn(Shape4 { n: 1, c, h: hw, w: hw }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let kernels = Tensor4::from_fn(Shape4 { n: k, c, h: 3, w: 3 }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let wino = algo.convolve_layer(&input, &kernels, 1);
        // Direct reference computed inline in f64.
        let out_h = hw;
        for y in 0..out_h.min(3) {
            for x in 0..out_h.min(3) {
                let mut acc = 0f64;
                for ci in 0..c {
                    for v in 0..3 {
                        for u in 0..3 {
                            let iy = y as isize + v as isize - 1;
                            let ix = x as isize + u as isize - 1;
                            if iy >= 0 && ix >= 0 && (iy as usize) < hw && (ix as usize) < hw {
                                acc += input.at(0, ci, iy as usize, ix as usize) as f64
                                    * kernels.at(0, ci, v as usize, u as usize) as f64;
                            }
                        }
                    }
                }
                let got = wino.at(0, 0, y, x) as f64;
                prop_assert!((got - acc).abs() < 1e-3, "({y},{x}): {got} vs {acc}");
            }
        }
    }

    #[test]
    fn transform_identity_survives_transposition_of_nesting(
        m in 2usize..6, seed in 0u64..100
    ) {
        // U = B^T d B nests column-then-row; row-then-column must agree
        // because the transforms are linear.
        let params = WinogradParams::new(m, 3).expect("valid");
        let set = TransformSet::generate(params).expect("generates");
        let algo = WinogradAlgorithm::<Ratio>::exact(&set);
        let n = params.input_tile();
        let mut s = seed;
        let tile = Tensor2::from_fn(n, n, |_, _| {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ratio(((s >> 35) % 11) as i128 - 5, 1)
        });
        let u = algo.transform_data(&tile);
        let bt = set.bt().clone();
        let b = bt.transposed();
        let via_rows = bt.matmul(&tile.matmul(&b));
        prop_assert_eq!(u, via_rows);
    }
}
