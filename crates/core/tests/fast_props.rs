//! Property tests for the hand-scheduled F(2,3)/F(4,3) kernels: they must
//! agree with the generic matrix path on arbitrary shapes and paddings.

use proptest::prelude::*;
use wino_core::{fast_convolve_layer, FastKernel, WinogradAlgorithm, WinogradParams};
use wino_tensor::{ErrorStats, Shape4, SplitMix64, Tensor4};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fast_equals_generic_on_arbitrary_layers(
        use_f43 in any::<bool>(),
        n in 1usize..3,
        c in 1usize..4,
        k in 1usize..5,
        h in 3usize..12,
        w in 3usize..12,
        pad in 0usize..2,
        seed in 0u64..10_000,
    ) {
        let (kind, m) = if use_f43 { (FastKernel::F4x4, 4) } else { (FastKernel::F2x2, 2) };
        let mut rng = SplitMix64::new(seed);
        let input = Tensor4::from_fn(Shape4 { n, c, h, w }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let kernels = Tensor4::from_fn(Shape4 { n: k, c, h: 3, w: 3 }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let fast = fast_convolve_layer(kind, &input, &kernels, pad);
        let generic = WinogradAlgorithm::<f32>::for_params(WinogradParams::new(m, 3).expect("valid"))
            .expect("generates")
            .convolve_layer(&input, &kernels, pad);
        prop_assert_eq!(fast.shape(), generic.shape());
        let stats = ErrorStats::between(fast.as_slice(), generic.as_slice());
        prop_assert!(stats.within_abs(1e-4), "{}", stats);
    }

    #[test]
    fn fast_f23_linearity(seed in 0u64..10_000) {
        // conv(a + b) == conv(a) + conv(b) within fp32 tolerance.
        let mut rng = SplitMix64::new(seed);
        let shape = Shape4 { n: 1, c: 2, h: 8, w: 8 };
        let a = Tensor4::from_fn(shape, |_, _, _, _| rng.uniform_f32(-1.0, 1.0));
        let b = Tensor4::from_fn(shape, |_, _, _, _| rng.uniform_f32(-1.0, 1.0));
        let sum = Tensor4::from_fn(shape, |n, c, y, x| a.at(n, c, y, x) + b.at(n, c, y, x));
        let kernels = Tensor4::from_fn(Shape4 { n: 2, c: 2, h: 3, w: 3 }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let ca = fast_convolve_layer(FastKernel::F2x2, &a, &kernels, 1);
        let cb = fast_convolve_layer(FastKernel::F2x2, &b, &kernels, 1);
        let cs = fast_convolve_layer(FastKernel::F2x2, &sum, &kernels, 1);
        let recombined: Vec<f32> = ca
            .as_slice()
            .iter()
            .zip(cb.as_slice())
            .map(|(x, y)| x + y)
            .collect();
        let stats = ErrorStats::between(cs.as_slice(), &recombined);
        prop_assert!(stats.within_abs(1e-4), "{}", stats);
    }
}
