//! Exact generation of Winograd transform matrices `(Aᵀ, G, Bᵀ)`.
//!
//! A 1-D minimal filtering algorithm `F(m, r)` computes `m` correlation
//! outputs from `n = m + r − 1` data points and `r` filter taps with only
//! `n` multiplications via `Y = Aᵀ[(G g) ⊙ (Bᵀ d)]` (paper Eq. 2). The
//! matrices are built with the Cook–Toom method over exact rationals:
//!
//! * `n − 1` distinct finite interpolation points `a_i` (plus the implicit
//!   "infinity" point) define `M(x) = Π(x − a_i)`;
//! * finite rows: `G[i] = [1, a_i, …, a_i^{r−1}]/N_i` with
//!   `N_i = Π_{j≠i}(a_i − a_j)`, `Bᵀ[i]` = coefficients of
//!   `M_i(x) = M(x)/(x − a_i)`, `Aᵀ[·][i] = [1, a_i, …, a_i^{m−1}]ᵀ`;
//! * the infinity row of `Bᵀ` is *solved* from the bilinear exactness
//!   condition and the full identity is re-verified, so a generated
//!   [`TransformSet`] is correct by construction — a violation is reported
//!   as an error, never returned as a wrong matrix.
//!
//! ```
//! use wino_core::{TransformSet, WinogradParams};
//!
//! let f23 = TransformSet::generate(WinogradParams::new(2, 3)?)?;
//! assert_eq!(f23.bt().rows(), 4); // n = m + r - 1 = 4
//! f23.verify()?;                  // Aᵀ[(Gg)⊙(Bᵀd)] ≡ correlation, exactly
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::{ParamError, WinogradParams};
use std::fmt;
use wino_tensor::{ratio, Ratio, Scalar, Tensor2};

/// Errors produced while generating or validating transform matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// Invalid `F(m, r)` parameters.
    Params(ParamError),
    /// The supplied interpolation points were not pairwise distinct.
    DuplicatePoints(Ratio),
    /// Wrong number of interpolation points (needs `m + r − 2`).
    PointCount {
        /// Number of points required.
        expected: usize,
        /// Number of points supplied.
        actual: usize,
    },
    /// The bilinear identity `Σ_i Aᵀ[j,i]·G[i,s]·Bᵀ[i,t] = [t = j+s]`
    /// failed at the reported coordinates — the matrices do not implement
    /// a minimal filtering algorithm.
    IdentityViolation {
        /// Output index `j`.
        j: usize,
        /// Filter index `s`.
        s: usize,
        /// Data index `t`.
        t: usize,
    },
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::Params(e) => write!(f, "{e}"),
            TransformError::DuplicatePoints(p) => {
                write!(f, "interpolation point {p} is not distinct")
            }
            TransformError::PointCount { expected, actual } => {
                write!(f, "expected {expected} interpolation points, got {actual}")
            }
            TransformError::IdentityViolation { j, s, t } => {
                write!(f, "bilinear identity violated at (j={j}, s={s}, t={t})")
            }
        }
    }
}

impl std::error::Error for TransformError {}

impl From<ParamError> for TransformError {
    fn from(e: ParamError) -> TransformError {
        TransformError::Params(e)
    }
}

/// The canonical interpolation-point sequence `0, 1, −1, 2, −2, ½, −½, …`
/// used by Lavin's `wincnn`; small symmetric values keep both the exact
/// entries and the fp32 rounding error small.
///
/// ```
/// use wino_core::canonical_points;
/// use wino_tensor::ratio;
///
/// assert_eq!(canonical_points(3), vec![ratio(0, 1), ratio(1, 1), ratio(-1, 1)]);
/// ```
///
/// # Panics
///
/// Panics if more than 15 points are requested (transform sizes beyond
/// [`WinogradParams`] limits).
pub fn canonical_points(count: usize) -> Vec<Ratio> {
    const SEQ: [(i128, i128); 15] = [
        (0, 1),
        (1, 1),
        (-1, 1),
        (2, 1),
        (-2, 1),
        (1, 2),
        (-1, 2),
        (3, 1),
        (-3, 1),
        (3, 2),
        (-3, 2),
        (4, 1),
        (-4, 1),
        (1, 4),
        (-1, 4),
    ];
    assert!(count <= SEQ.len(), "at most {} canonical points are defined", SEQ.len());
    SEQ[..count].iter().map(|&(n, d)| ratio(n, d)).collect()
}

/// Ascending-power coefficients of `Π(x − a_i)`.
fn poly_from_roots(roots: &[Ratio]) -> Vec<Ratio> {
    let mut coeffs = vec![Ratio::ONE];
    for &root in roots {
        // coeffs := coeffs * (x - root)
        let mut next = vec![Ratio::ZERO; coeffs.len() + 1];
        for (k, &c) in coeffs.iter().enumerate() {
            next[k + 1] += c;
            next[k] += -root * c;
        }
        coeffs = next;
    }
    coeffs
}

/// Real-valued (lossy) copies of a [`TransformSet`], ready for numeric
/// kernels. Obtain one through [`TransformSet::to_scalar`] or the `to_f32`
/// / `to_f64` shorthands.
///
/// Besides the raw matrices, this type provides the *allocation-free*
/// per-tile transform application ([`apply_data`](Self::apply_data),
/// [`apply_kernel`](Self::apply_kernel),
/// [`apply_inverse`](Self::apply_inverse)) that execution engines run in
/// their inner loops: flat row-major slices in, flat slices out, with one
/// caller-owned scratch buffer and no heap traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct RealTransforms<T> {
    params: WinogradParams,
    /// Inverse transform, `m × n`.
    pub at: Tensor2<T>,
    /// Filter transform, `n × r`.
    pub g: Tensor2<T>,
    /// Data transform, `n × n`.
    pub bt: Tensor2<T>,
}

/// `out = a · b` where `b` is a flat row-major `a.cols() × cols` block.
fn mul_into<T: Scalar>(a: &Tensor2<T>, b: &[T], cols: usize, out: &mut [T]) {
    for i in 0..a.rows() {
        let out_row = &mut out[i * cols..(i + 1) * cols];
        for x in out_row.iter_mut() {
            *x = T::zero();
        }
        for (k, &aik) in a.row(i).iter().enumerate() {
            if aik == T::zero() {
                continue;
            }
            let b_row = &b[k * cols..(k + 1) * cols];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aik * bv;
            }
        }
    }
}

/// `out = t · mᵀ` where `t` is a flat row-major `rows × cols` block and
/// `m` is `? × cols` (each output row has `m.rows()` entries).
fn mul_transposed_into<T: Scalar>(
    t: &[T],
    rows: usize,
    cols: usize,
    m: &Tensor2<T>,
    out: &mut [T],
) {
    let out_cols = m.rows();
    for i in 0..rows {
        let t_row = &t[i * cols..(i + 1) * cols];
        for j in 0..out_cols {
            let mut acc = T::zero();
            for (&a, &b) in t_row.iter().zip(m.row(j)) {
                acc += a * b;
            }
            out[i * out_cols + j] = acc;
        }
    }
}

impl<T: Scalar> RealTransforms<T> {
    /// The `F(m, r)` parameters these matrices implement.
    pub fn params(&self) -> WinogradParams {
        self.params
    }

    /// Minimum scratch length the `apply_*` methods require: `n²` with
    /// `n = m + r − 1`.
    pub fn scratch_len(&self) -> usize {
        self.params.mults_per_tile_2d()
    }

    /// Data transform `U = Bᵀ d B` on a flat row-major `n × n` tile —
    /// the generic-`m` counterpart of the hand-scheduled
    /// [`f23_data_transform`](crate::f23_data_transform) /
    /// [`f43_data_transform`](crate::f43_data_transform) kernels.
    ///
    /// ```
    /// use wino_core::{f23_data_transform, TransformSet, WinogradParams};
    ///
    /// let real = TransformSet::generate(WinogradParams::new(2, 3)?)?.to_f32();
    /// let tile: [f32; 16] = std::array::from_fn(|i| i as f32);
    /// let (mut u, mut scratch) = ([0.0f32; 16], [0.0f32; 16]);
    /// real.apply_data(&tile, &mut u, &mut scratch);
    /// let mut expect = [0.0f32; 16];
    /// f23_data_transform(&tile, &mut expect);
    /// assert_eq!(u, expect);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when `tile` or `out` is not `n²` long or `scratch` is
    /// shorter than [`scratch_len`](Self::scratch_len).
    pub fn apply_data(&self, tile: &[T], out: &mut [T], scratch: &mut [T]) {
        let n = self.params.input_tile();
        assert_eq!(tile.len(), n * n, "data tile must be n*n = {}", n * n);
        assert_eq!(out.len(), n * n, "data output must be n*n = {}", n * n);
        assert!(scratch.len() >= n * n, "scratch must hold at least n*n = {}", n * n);
        mul_into(&self.bt, tile, n, scratch);
        mul_transposed_into(scratch, n, n, &self.bt, out);
    }

    /// Filter transform `V = G g Gᵀ` from a flat row-major `r × r`
    /// kernel into a flat `n × n` output.
    ///
    /// # Panics
    ///
    /// Panics when `kernel` is not `r²` long, `out` is not `n²` long, or
    /// `scratch` is shorter than `n·r` (a
    /// [`scratch_len`](Self::scratch_len)-sized buffer always suffices).
    pub fn apply_kernel(&self, kernel: &[T], out: &mut [T], scratch: &mut [T]) {
        let n = self.params.input_tile();
        let r = self.params.r();
        assert_eq!(kernel.len(), r * r, "kernel must be r*r = {}", r * r);
        assert_eq!(out.len(), n * n, "kernel output must be n*n = {}", n * n);
        assert!(scratch.len() >= n * r, "scratch must hold at least n*r = {}", n * r);
        mul_into(&self.g, kernel, r, scratch);
        mul_transposed_into(scratch, n, r, &self.g, out);
    }

    /// Inverse transform `Y = Aᵀ M A`: a flat `n × n` element-wise
    /// product block down to the flat `m × m` output tile.
    ///
    /// # Panics
    ///
    /// Panics when `product` is not `n²` long, `out` is not `m²` long,
    /// or `scratch` is shorter than `m·n` (a
    /// [`scratch_len`](Self::scratch_len)-sized buffer always suffices).
    pub fn apply_inverse(&self, product: &[T], out: &mut [T], scratch: &mut [T]) {
        let n = self.params.input_tile();
        let m = self.params.m();
        assert_eq!(product.len(), n * n, "product must be n*n = {}", n * n);
        assert_eq!(out.len(), m * m, "inverse output must be m*m = {}", m * m);
        assert!(scratch.len() >= m * n, "scratch must hold at least m*n = {}", m * n);
        mul_into(&self.at, product, n, scratch);
        mul_transposed_into(scratch, m, n, &self.at, out);
    }
}

/// Exact Winograd transform matrices for one `F(m, r)` configuration,
/// built with the Cook–Toom method over exact rationals and re-verified
/// against the bilinear exactness condition before being returned (see
/// the construction walk-through at the top of this file's docs,
/// surfaced on the crate page).
#[derive(Debug, Clone, PartialEq)]
pub struct TransformSet {
    params: WinogradParams,
    points: Vec<Ratio>,
    at: Tensor2<Ratio>,
    g: Tensor2<Ratio>,
    bt: Tensor2<Ratio>,
}

impl TransformSet {
    /// Generates the transform set for `params` using the
    /// [canonical points](canonical_points).
    ///
    /// # Errors
    ///
    /// Propagates any [`TransformError`]; with canonical points the
    /// identity always holds, so failures indicate parameter abuse only.
    pub fn generate(params: WinogradParams) -> Result<TransformSet, TransformError> {
        let finite = params.input_tile() - 1;
        TransformSet::with_points(params, &canonical_points(finite))
    }

    /// Generates the transform set with caller-chosen finite interpolation
    /// points (the n-th point is always "infinity").
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::PointCount`] or
    /// [`TransformError::DuplicatePoints`] on bad inputs, and
    /// [`TransformError::IdentityViolation`] if the construction fails the
    /// built-in exactness proof (which cannot happen for distinct points).
    pub fn with_points(
        params: WinogradParams,
        points: &[Ratio],
    ) -> Result<TransformSet, TransformError> {
        let m = params.m();
        let r = params.r();
        let n = params.input_tile();

        // Degenerate algorithms: r = 1 is pure scaling, m = 1 is a dot
        // product; both already use the minimal number of multiplications
        // with identity-like transforms.
        if r == 1 || m == 1 {
            return Ok(TransformSet::trivial(params));
        }

        let finite = n - 1;
        if points.len() != finite {
            return Err(TransformError::PointCount { expected: finite, actual: points.len() });
        }
        for (i, &p) in points.iter().enumerate() {
            if points[..i].contains(&p) {
                return Err(TransformError::DuplicatePoints(p));
            }
        }

        let mut at = Tensor2::<Ratio>::zeros(m, n);
        let mut g = Tensor2::<Ratio>::zeros(n, r);
        let mut bt = Tensor2::<Ratio>::zeros(n, n);

        let m_poly = poly_from_roots(points); // degree n-1, len n

        for (i, &a) in points.iter().enumerate() {
            // N_i = prod_{j != i} (a_i - a_j)
            let n_i: Ratio =
                points.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &b)| a - b).product();
            // G row: powers of a_i scaled by 1/N_i.
            let mut pow = Ratio::ONE;
            for s in 0..r {
                g[(i, s)] = pow / n_i;
                pow *= a;
            }
            // A^T column: powers of a_i.
            let mut pow = Ratio::ONE;
            for j in 0..m {
                at[(j, i)] = pow;
                pow *= a;
            }
            // B^T row: coefficients of M_i(x) = M(x)/(x - a_i), by synthetic
            // division (exact because a_i is a root of M).
            let mut quotient = vec![Ratio::ZERO; n - 1];
            let mut carry = m_poly[n - 1];
            for t in (0..n - 1).rev() {
                quotient[t] = carry;
                carry = m_poly[t] + a * carry;
            }
            debug_assert!(carry.is_zero(), "synthetic division must be exact");
            for (t, &q) in quotient.iter().enumerate() {
                bt[(i, t)] = q;
            }
        }

        // wincnn convention: keep the first row's filter coefficient
        // positive by flipping the (G, B^T) row pair when N_0 < 0.
        if g[(0, 0)] < Ratio::ZERO {
            for s in 0..r {
                g[(0, s)] = -g[(0, s)];
            }
            for t in 0..n {
                bt[(0, t)] = -bt[(0, t)];
            }
        }

        // Infinity pseudo-point: G row e_{r-1}, A^T column e_{m-1}; the B^T
        // row is the unique vector completing the bilinear identity.
        g[(n - 1, r - 1)] = Ratio::ONE;
        at[(m - 1, n - 1)] = Ratio::ONE;
        for t in 0..n {
            let mut finite_part = Ratio::ZERO;
            for i in 0..n - 1 {
                finite_part += at[(m - 1, i)] * g[(i, r - 1)] * bt[(i, t)];
            }
            let target = if t == n - 1 { Ratio::ONE } else { Ratio::ZERO };
            bt[(n - 1, t)] = target - finite_part;
        }

        let set = TransformSet { params, points: points.to_vec(), at, g, bt };
        set.verify()?;
        Ok(set)
    }

    /// Identity-style transforms for the degenerate cases `m = 1`
    /// (dot product) and `r = 1` (scaling).
    fn trivial(params: WinogradParams) -> TransformSet {
        let m = params.m();
        let r = params.r();
        let n = params.input_tile();
        let eye = |rows: usize, cols: usize| {
            Tensor2::from_fn(rows, cols, |i, j| if i == j { Ratio::ONE } else { Ratio::ZERO })
        };
        let (at, g, bt) = if r == 1 {
            // y_j = d_j * g_0
            (eye(m, n), Tensor2::from_fn(n, 1, |_, _| Ratio::ONE), eye(n, n))
        } else {
            // m = 1: y_0 = sum_i d_i g_i
            (Tensor2::from_fn(1, n, |_, _| Ratio::ONE), eye(n, r), eye(n, n))
        };
        TransformSet { params, points: Vec::new(), at, g, bt }
    }

    /// The `F(m, r)` parameters.
    pub fn params(&self) -> WinogradParams {
        self.params
    }

    /// Finite interpolation points used by the construction (empty for the
    /// degenerate `m = 1` / `r = 1` algorithms).
    pub fn points(&self) -> &[Ratio] {
        &self.points
    }

    /// Inverse transform `Aᵀ` (`m × n`).
    pub fn at(&self) -> &Tensor2<Ratio> {
        &self.at
    }

    /// Filter transform `G` (`n × r`).
    pub fn g(&self) -> &Tensor2<Ratio> {
        &self.g
    }

    /// Data transform `Bᵀ` (`n × n`).
    pub fn bt(&self) -> &Tensor2<Ratio> {
        &self.bt
    }

    /// Checks the exact bilinear identity
    /// `Σ_i Aᵀ[j,i]·G[i,s]·Bᵀ[i,t] = [t = j + s]` for every `(j, s, t)` —
    /// equivalent to `Aᵀ[(Gg)⊙(Bᵀd)]` computing the correlation for *all*
    /// inputs.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::IdentityViolation`] at the first failing
    /// coordinate.
    pub fn verify(&self) -> Result<(), TransformError> {
        let m = self.params.m();
        let r = self.params.r();
        let n = self.params.input_tile();
        for j in 0..m {
            for s in 0..r {
                for t in 0..n {
                    let mut sum = Ratio::ZERO;
                    for i in 0..n {
                        sum += self.at[(j, i)] * self.g[(i, s)] * self.bt[(i, t)];
                    }
                    let expect = if t == j + s { Ratio::ONE } else { Ratio::ZERO };
                    if sum != expect {
                        return Err(TransformError::IdentityViolation { j, s, t });
                    }
                }
            }
        }
        Ok(())
    }

    /// Converts the exact matrices to any [`Scalar`] type via `f64`
    /// (exact for dyadic entries; ±1 ULP for entries like `1/6`).
    pub fn to_scalar<T: Scalar>(&self) -> RealTransforms<T> {
        RealTransforms {
            params: self.params,
            at: self.at.map(|x| T::from_f64(x.to_f64())),
            g: self.g.map(|x| T::from_f64(x.to_f64())),
            bt: self.bt.map(|x| T::from_f64(x.to_f64())),
        }
    }

    /// Single-precision copies (the paper's datapath precision).
    pub fn to_f32(&self) -> RealTransforms<f32> {
        self.to_scalar()
    }

    /// Double-precision copies.
    pub fn to_f64(&self) -> RealTransforms<f64> {
        self.to_scalar()
    }

    /// Largest absolute entry across the three matrices — a cheap proxy for
    /// the numerical conditioning of the algorithm, which degrades as `m`
    /// grows (the reason fp32 Winograd beyond `m ≈ 6` loses precision).
    pub fn max_abs_entry(&self) -> Ratio {
        let mut best = Ratio::ZERO;
        for mat in [&self.at, &self.g, &self.bt] {
            for &x in mat.as_slice() {
                if x.abs() > best {
                    best = x.abs();
                }
            }
        }
        best
    }
}

impl fmt::Display for TransformSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} transforms:", self.params)?;
        for (name, mat) in [("A^T", &self.at), ("G", &self.g), ("B^T", &self.bt)] {
            writeln!(f, "{name} =")?;
            for r in 0..mat.rows() {
                write!(f, "  [")?;
                for c in 0..mat.cols() {
                    write!(f, "{:>8}", mat[(r, c)].to_string())?;
                    if c + 1 < mat.cols() {
                        write!(f, ", ")?;
                    }
                }
                writeln!(f, "]")?;
            }
        }
        Ok(())
    }
}

/// Reference matrices published by Lavin ("Fast Algorithms for
/// Convolutional Neural Networks", 2015) used as golden test vectors.
pub mod lavin {
    use wino_tensor::{ratio, Ratio, Tensor2};

    /// Lavin's `F(2, 3)` inverse transform `Aᵀ`.
    pub fn f23_at() -> Tensor2<Ratio> {
        let i = |x: i128| ratio(x, 1);
        Tensor2::from_rows(&[&[i(1), i(1), i(1), i(0)], &[i(0), i(1), i(-1), i(-1)]])
    }

    /// Lavin's `F(2, 3)` filter transform `G`.
    pub fn f23_g() -> Tensor2<Ratio> {
        let h = |n: i128, d: i128| ratio(n, d);
        Tensor2::from_rows(&[
            &[h(1, 1), h(0, 1), h(0, 1)],
            &[h(1, 2), h(1, 2), h(1, 2)],
            &[h(1, 2), h(-1, 2), h(1, 2)],
            &[h(0, 1), h(0, 1), h(1, 1)],
        ])
    }

    /// Lavin's `F(2, 3)` data transform `Bᵀ`.
    pub fn f23_bt() -> Tensor2<Ratio> {
        let i = |x: i128| ratio(x, 1);
        Tensor2::from_rows(&[
            &[i(1), i(0), i(-1), i(0)],
            &[i(0), i(1), i(1), i(0)],
            &[i(0), i(-1), i(1), i(0)],
            &[i(0), i(1), i(0), i(-1)],
        ])
    }

    /// Lavin's `F(4, 3)` data transform `Bᵀ`.
    pub fn f43_bt() -> Tensor2<Ratio> {
        let i = |x: i128| ratio(x, 1);
        Tensor2::from_rows(&[
            &[i(4), i(0), i(-5), i(0), i(1), i(0)],
            &[i(0), i(-4), i(-4), i(1), i(1), i(0)],
            &[i(0), i(4), i(-4), i(-1), i(1), i(0)],
            &[i(0), i(-2), i(-1), i(2), i(1), i(0)],
            &[i(0), i(2), i(-1), i(-2), i(1), i(0)],
            &[i(0), i(4), i(0), i(-5), i(0), i(1)],
        ])
    }

    /// Lavin's `F(4, 3)` filter transform `G`.
    pub fn f43_g() -> Tensor2<Ratio> {
        let h = |n: i128, d: i128| ratio(n, d);
        Tensor2::from_rows(&[
            &[h(1, 4), h(0, 1), h(0, 1)],
            &[h(-1, 6), h(-1, 6), h(-1, 6)],
            &[h(-1, 6), h(1, 6), h(-1, 6)],
            &[h(1, 24), h(1, 12), h(1, 6)],
            &[h(1, 24), h(-1, 12), h(1, 6)],
            &[h(0, 1), h(0, 1), h(1, 1)],
        ])
    }

    /// Lavin's `F(4, 3)` inverse transform `Aᵀ`.
    pub fn f43_at() -> Tensor2<Ratio> {
        let i = |x: i128| ratio(x, 1);
        Tensor2::from_rows(&[
            &[i(1), i(1), i(1), i(1), i(1), i(0)],
            &[i(0), i(1), i(-1), i(2), i(-2), i(0)],
            &[i(0), i(1), i(1), i(4), i(4), i(0)],
            &[i(0), i(1), i(-1), i(8), i(-8), i(1)],
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(m: usize, r: usize) -> TransformSet {
        TransformSet::generate(WinogradParams::new(m, r).unwrap()).unwrap()
    }

    /// Two algorithms are equivalent when each multiplier's (G row, B^T
    /// row) pair matches up to a common sign, with the sign of the
    /// infinity multiplier carried by the A^T column instead.
    fn assert_equivalent(
        ours: &TransformSet,
        at: &Tensor2<Ratio>,
        g: &Tensor2<Ratio>,
        bt: &Tensor2<Ratio>,
    ) {
        let n = ours.params().input_tile();
        let m = ours.params().m();
        let r = ours.params().r();
        for i in 0..n {
            // Determine relative sign from the first nonzero of the B rows.
            let mut sign = None;
            for t in 0..n {
                let a = ours.bt()[(i, t)];
                let b = bt[(i, t)];
                if a.is_zero() != b.is_zero() {
                    panic!("B^T sparsity differs at row {i}, col {t}");
                }
                if !a.is_zero() && sign.is_none() {
                    sign = Some(a / b);
                }
            }
            let s = sign.expect("zero B^T row");
            assert!(s == Ratio::ONE || s == -Ratio::ONE, "rows differ by non-sign factor {s}");
            for t in 0..n {
                assert_eq!(ours.bt()[(i, t)], s * bt[(i, t)], "B^T row {i}");
            }
            // Compensating sign lives in G (finite rows) or A^T (infinity).
            for q in 0..r {
                let expect = if i == n - 1 { g[(i, q)] } else { s * g[(i, q)] };
                assert_eq!(ours.g()[(i, q)], expect, "G row {i}");
            }
            for j in 0..m {
                let expect = if i == n - 1 { s * at[(j, i)] } else { at[(j, i)] };
                assert_eq!(ours.at()[(j, i)], expect, "A^T col {i} row {j}");
            }
        }
    }

    #[test]
    fn f23_matches_lavin_up_to_sign() {
        let s = set(2, 3);
        assert_equivalent(&s, &lavin::f23_at(), &lavin::f23_g(), &lavin::f23_bt());
    }

    #[test]
    fn f43_matches_lavin_exactly() {
        let s = set(4, 3);
        assert_eq!(*s.bt(), lavin::f43_bt(), "B^T");
        assert_eq!(*s.g(), lavin::f43_g(), "G");
        assert_eq!(*s.at(), lavin::f43_at(), "A^T");
    }

    #[test]
    fn identity_holds_for_paper_range() {
        // The paper sweeps m = 2..7 with r = 3; we also cover r = 2, 4, 5.
        for r in 2..=5 {
            for m in 2..=8 {
                let s = set(m, r);
                s.verify().unwrap_or_else(|e| panic!("F({m},{r}): {e}"));
                assert_eq!(s.bt().rows(), m + r - 1);
                assert_eq!(s.g().cols(), r);
                assert_eq!(s.at().rows(), m);
            }
        }
    }

    #[test]
    fn trivial_cases_verify() {
        for (m, r) in [(1, 3), (1, 5), (3, 1), (1, 1)] {
            let s = set(m, r);
            s.verify().unwrap_or_else(|e| panic!("F({m},{r}): {e}"));
        }
    }

    #[test]
    fn duplicate_points_rejected() {
        let params = WinogradParams::new(2, 3).unwrap();
        let pts = [ratio(0, 1), ratio(1, 1), ratio(1, 1)];
        assert!(matches!(
            TransformSet::with_points(params, &pts),
            Err(TransformError::DuplicatePoints(_))
        ));
    }

    #[test]
    fn wrong_point_count_rejected() {
        let params = WinogradParams::new(2, 3).unwrap();
        assert_eq!(
            TransformSet::with_points(params, &[ratio(0, 1)]),
            Err(TransformError::PointCount { expected: 3, actual: 1 })
        );
    }

    #[test]
    fn alternative_points_still_verify() {
        let params = WinogradParams::new(3, 3).unwrap();
        let pts = [ratio(0, 1), ratio(2, 1), ratio(-2, 1), ratio(1, 3)];
        let s = TransformSet::with_points(params, &pts).unwrap();
        s.verify().unwrap();
        assert_eq!(s.points(), &pts);
    }

    #[test]
    fn conditioning_grows_with_m() {
        // Larger tiles need larger interpolation points; the max entry of
        // the transforms grows, explaining fp32 error growth.
        let e2 = set(2, 3).max_abs_entry();
        let e4 = set(4, 3).max_abs_entry();
        let e6 = set(6, 3).max_abs_entry();
        assert!(e2 < e4 && e4 < e6, "{e2} < {e4} < {e6}");
    }

    #[test]
    fn slice_apply_matches_matrix_path_for_all_stages() {
        use crate::WinogradAlgorithm;
        use wino_tensor::SplitMix64;

        let mut rng = SplitMix64::new(77);
        for (m, r) in [(2usize, 3usize), (3, 3), (4, 3), (2, 5), (6, 3)] {
            let s = set(m, r);
            let real = s.to_f32();
            let algo = WinogradAlgorithm::<f32>::new(&s);
            let n = m + r - 1;
            let mut scratch = vec![0f32; real.scratch_len()];

            let tile = Tensor2::from_fn(n, n, |_, _| rng.uniform_f32(-2.0, 2.0));
            let mut u = vec![0f32; n * n];
            real.apply_data(tile.as_slice(), &mut u, &mut scratch);
            assert_eq!(u, algo.transform_data(&tile).into_vec(), "F({m},{r}) data");

            let kernel = Tensor2::from_fn(r, r, |_, _| rng.uniform_f32(-1.0, 1.0));
            let mut v = vec![0f32; n * n];
            real.apply_kernel(kernel.as_slice(), &mut v, &mut scratch);
            assert_eq!(v, algo.transform_kernel(&kernel).into_vec(), "F({m},{r}) kernel");

            let prod = Tensor2::from_fn(n, n, |_, _| rng.uniform_f32(-2.0, 2.0));
            let mut y = vec![0f32; m * m];
            real.apply_inverse(prod.as_slice(), &mut y, &mut scratch);
            assert_eq!(y, algo.inverse_transform(&prod).into_vec(), "F({m},{r}) inverse");
        }
    }

    #[test]
    fn slice_apply_is_exact_over_rationals() {
        // Round-tripping ones through data transform then inverse with a
        // ones kernel reproduces the correlation of ones: m*m outputs of
        // value r*r, exactly, because Ratio arithmetic never rounds.
        let s = set(3, 3);
        let real = s.to_scalar::<Ratio>();
        let n = 5;
        let mut scratch = vec![Ratio::ZERO; real.scratch_len()];
        let tile = vec![Ratio::ONE; n * n];
        let kernel = vec![Ratio::ONE; 9];
        let mut u = vec![Ratio::ZERO; n * n];
        let mut v = vec![Ratio::ZERO; n * n];
        real.apply_data(&tile, &mut u, &mut scratch);
        real.apply_kernel(&kernel, &mut v, &mut scratch);
        let prod: Vec<Ratio> = u.iter().zip(&v).map(|(&a, &b)| a * b).collect();
        let mut y = vec![Ratio::ZERO; 9];
        real.apply_inverse(&prod, &mut y, &mut scratch);
        assert!(y.iter().all(|&x| x == ratio(9, 1)), "{y:?}");
    }

    #[test]
    #[should_panic(expected = "data tile must be n*n")]
    fn slice_apply_rejects_wrong_tile_length() {
        let real = set(2, 3).to_f32();
        let mut out = [0f32; 16];
        let mut scratch = [0f32; 16];
        real.apply_data(&[0.0; 9], &mut out, &mut scratch);
    }

    #[test]
    fn to_f32_round_trips_dyadics() {
        let s = set(2, 3);
        let f = s.to_f32();
        assert_eq!(f.at[(0, 0)], 1.0);
        assert_eq!(f.g[(1, 0)], 0.5);
        assert_eq!(f.bt[(0, 2)], -1.0);
        assert_eq!(f.params(), s.params());
    }

    #[test]
    fn canonical_points_are_distinct() {
        let pts = canonical_points(15);
        for (i, &p) in pts.iter().enumerate() {
            assert!(!pts[..i].contains(&p), "duplicate canonical point {p}");
        }
    }

    #[test]
    fn display_shows_all_three_matrices() {
        let text = set(2, 3).to_string();
        assert!(text.contains("A^T"));
        assert!(text.contains("G ="));
        assert!(text.contains("B^T"));
        assert!(text.contains("1/2"));
    }

    #[test]
    fn error_display() {
        let e = TransformError::IdentityViolation { j: 1, s: 2, t: 3 };
        assert!(e.to_string().contains("j=1"));
        let e: TransformError = ParamError::ZeroKernel.into();
        assert!(e.to_string().contains("r must be"));
    }
}
