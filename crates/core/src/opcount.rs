//! Operation counting for the transform stages — the source of the
//! paper's β, γ, δ constants (Eq. 5).
//!
//! The paper never publishes its per-tile FLOP counts, so we *derive* them
//! from the generated matrices under explicit, documented cost models and
//! validate against the two anchors that are public:
//!
//! * Lavin's `F(2×2, 3×3)` counts — data 32, inverse 24 FLOPs per 2-D tile
//!   (reproduced exactly by [`CostModel::Naive`] adds);
//! * the paper's own Sec. IV-C arithmetic (1.5× / 2.33× overhead for
//!   `F(2×2, 3×3)` with P = 16), which implies Lavin's filter count of 28.
//!
//! A 1-D transform application is a constant-matrix × vector product; a
//! 2-D transform nests it over columns then rows, giving the per-tile
//! totals `β = 2n·ops(Bᵀ)`, `γ = (r+n)·ops(G)`, `δ = (n+m)·ops(Aᵀ)`.

use crate::{TransformSet, WinogradParams};
use std::fmt;
use wino_tensor::{Ratio, Tensor2};

/// How constant multiplications are charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CostModel {
    /// Every coefficient outside `{0, ±1}` costs one multiply; every extra
    /// non-zero term in a row costs one add. Matches Lavin's published
    /// FLOP counts.
    #[default]
    Naive,
    /// Powers of two are free shifts (the paper: transforms "can easily be
    /// implemented using shifters and adders"); constants of the form
    /// `±(2^a ± 2^b)/2^k` cost one extra add; anything else one multiply.
    ShiftFree,
    /// Rows whose non-zero coefficients share one magnitude pay a single
    /// multiply for the common factor (e.g. `(g₀+g₁+g₂)/2`).
    RowFactored,
}

impl fmt::Display for CostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CostModel::Naive => "naive",
            CostModel::ShiftFree => "shift-free",
            CostModel::RowFactored => "row-factored",
        };
        f.write_str(s)
    }
}

/// Primitive-operation tally for one 1-D transform application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCount {
    /// Additions/subtractions.
    pub adds: u64,
    /// True constant multiplications.
    pub mults: u64,
    /// Pure binary shifts (free under [`CostModel::ShiftFree`]).
    pub shifts: u64,
}

impl OpCount {
    /// FLOPs charged: adds + multiplies (shifts are bookkeeping only).
    pub fn flops(&self) -> u64 {
        self.adds + self.mults
    }
}

impl std::ops::Add for OpCount {
    type Output = OpCount;
    fn add(self, rhs: OpCount) -> OpCount {
        OpCount {
            adds: self.adds + rhs.adds,
            mults: self.mults + rhs.mults,
            shifts: self.shifts + rhs.shifts,
        }
    }
}

impl fmt::Display for OpCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} adds, {} mults, {} shifts", self.adds, self.mults, self.shifts)
    }
}

/// `true` when `|x|` is `(2^a + 2^b)/2^k` or `(2^a - 2^b)/2^k` — one
/// shift-add away from free (e.g. `5 = 4+1`, `3/2 = 2 - 1/2`).
fn is_two_power_combination(x: Ratio) -> bool {
    let num = x.numer().unsigned_abs();
    let den = x.denom().unsigned_abs();
    if !den.is_power_of_two() || num == 0 {
        return false;
    }
    if num.is_power_of_two() {
        return true;
    }
    // num = 2^a + 2^b  <=>  exactly two bits set
    if num.count_ones() == 2 {
        return true;
    }
    // num = 2^a - 2^b = 2^b(2^(a-b) - 1): contiguous run of ones
    let shifted = num >> num.trailing_zeros();
    (shifted + 1).is_power_of_two()
}

/// Counts the operations of one application of a constant matrix to a
/// dense vector under the chosen cost model.
///
/// ```
/// use wino_core::{matrix_apply_ops, CostModel, TransformSet, WinogradParams};
///
/// let f23 = TransformSet::generate(WinogradParams::new(2, 3)?)?;
/// // Lavin: the F(2,3) data transform costs 4 adds per 1-D application.
/// assert_eq!(matrix_apply_ops(f23.bt(), CostModel::Naive).flops(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn matrix_apply_ops(mat: &Tensor2<Ratio>, model: CostModel) -> OpCount {
    let mut total = OpCount::default();
    for row in 0..mat.rows() {
        let entries: Vec<Ratio> = (0..mat.cols()).map(|c| mat[(row, c)]).collect();
        let nonzero: Vec<Ratio> = entries.iter().copied().filter(|e| !e.is_zero()).collect();
        if nonzero.is_empty() {
            continue;
        }
        total.adds += nonzero.len() as u64 - 1;
        match model {
            CostModel::Naive => {
                total.mults += nonzero.iter().filter(|e| !e.is_unit()).count() as u64;
            }
            CostModel::ShiftFree => {
                for &e in &nonzero {
                    if e.is_unit() {
                        continue;
                    }
                    if e.is_power_of_two() {
                        total.shifts += 1;
                    } else if is_two_power_combination(e) {
                        // shift + one extra add
                        total.adds += 1;
                        total.shifts += 1;
                    } else {
                        total.mults += 1;
                    }
                }
            }
            CostModel::RowFactored => {
                let first = nonzero[0].abs();
                let uniform = nonzero.iter().all(|e| e.abs() == first);
                if uniform {
                    if !first.is_unit() {
                        total.mults += 1;
                    }
                } else {
                    total.mults += nonzero.iter().filter(|e| !e.is_unit()).count() as u64;
                }
            }
        }
    }
    total
}

/// Per-2-D-tile transform FLOP counts — the paper's β, γ, δ (Eq. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransformOps {
    /// Data transform FLOPs per input tile (`U = Bᵀ d B`).
    pub beta: u64,
    /// Filter transform FLOPs per kernel tile (`V = G g Gᵀ`).
    pub gamma: u64,
    /// Inverse transform FLOPs per output tile (`Y = Aᵀ M A`).
    pub delta: u64,
}

impl TransformOps {
    /// Lavin's published counts for `F(2×2, 3×3)` (data 32, filter 28,
    /// inverse 24) — the constants the paper's Sec. IV-C arithmetic uses.
    pub const LAVIN_F2X2_3X3: TransformOps = TransformOps { beta: 32, gamma: 28, delta: 24 };
}

impl fmt::Display for TransformOps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "beta={} gamma={} delta={}", self.beta, self.gamma, self.delta)
    }
}

/// Derives β, γ, δ for a transform set under a cost model.
///
/// Nesting: `U = Bᵀ d B` applies the 1-D data transform to `n` columns and
/// `n` rows (`β = 2n·ops(Bᵀ)`); `V = G g Gᵀ` applies `G` to `r` columns
/// then `n` rows (`γ = (r+n)·ops(G)`); `Y = Aᵀ M A` applies `Aᵀ` to `n`
/// columns then `m` rows (`δ = (n+m)·ops(Aᵀ)`).
///
/// ```
/// use wino_core::{transform_ops_2d, CostModel, TransformSet, WinogradParams};
///
/// let f23 = TransformSet::generate(WinogradParams::new(2, 3)?)?;
/// let ops = transform_ops_2d(&f23, CostModel::Naive);
/// assert_eq!(ops.beta, 32);  // Lavin's data-transform count
/// assert_eq!(ops.delta, 24); // Lavin's inverse-transform count
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn transform_ops_2d(set: &TransformSet, model: CostModel) -> TransformOps {
    let params = set.params();
    let n = params.input_tile() as u64;
    let m = params.m() as u64;
    let r = params.r() as u64;
    TransformOps {
        beta: 2 * n * matrix_apply_ops(set.bt(), model).flops(),
        gamma: (r + n) * matrix_apply_ops(set.g(), model).flops(),
        delta: (n + m) * matrix_apply_ops(set.at(), model).flops(),
    }
}

/// Convenience: generate the canonical transforms for `params` and count.
///
/// # Panics
///
/// Panics if `params` cannot be generated (cannot happen for values
/// accepted by [`WinogradParams::new`]).
pub fn transform_ops_for(params: WinogradParams, model: CostModel) -> TransformOps {
    let set = TransformSet::generate(params).expect("canonical transform generation cannot fail");
    transform_ops_2d(&set, model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(m: usize, r: usize) -> WinogradParams {
        WinogradParams::new(m, r).unwrap()
    }

    #[test]
    fn lavin_f23_data_and_inverse_counts() {
        let ops = transform_ops_for(params(2, 3), CostModel::Naive);
        assert_eq!(ops.beta, 32, "Lavin: 32 FLOPs for the F(2x2,3x3) data transform");
        assert_eq!(ops.delta, 24, "Lavin: 24 FLOPs for the F(2x2,3x3) inverse transform");
    }

    #[test]
    fn f23_filter_cost_models() {
        // Naive charges each 1/2 entry; row-factoring shares it.
        let set = TransformSet::generate(params(2, 3)).unwrap();
        let naive = matrix_apply_ops(set.g(), CostModel::Naive);
        let factored = matrix_apply_ops(set.g(), CostModel::RowFactored);
        assert_eq!(naive.adds, 4);
        assert_eq!(naive.mults, 6);
        assert_eq!(factored.adds, 4);
        assert_eq!(factored.mults, 2);
    }

    #[test]
    fn shift_free_makes_f43_data_transform_multiplier_free() {
        // F(4,3)'s B^T entries are {0, ±1, ±2, ±4, ±5}: 2 and 4 are shifts,
        // 5 = 4+1 is shift+add, so no true multipliers remain.
        let set = TransformSet::generate(params(4, 3)).unwrap();
        let ops = matrix_apply_ops(set.bt(), CostModel::ShiftFree);
        assert_eq!(ops.mults, 0);
        assert!(ops.shifts > 0);
        let naive = matrix_apply_ops(set.bt(), CostModel::Naive);
        assert!(naive.mults > 0);
        assert!(ops.flops() < naive.flops());
    }

    #[test]
    fn two_power_combination_detection() {
        use wino_tensor::ratio;
        for (n, d) in [(5, 1), (3, 1), (6, 1), (3, 2), (7, 4), (12, 1)] {
            assert!(is_two_power_combination(ratio(n, d)), "{n}/{d}");
        }
        for (n, d) in [(11, 1), (5, 3), (21, 2), (0, 1)] {
            assert!(!is_two_power_combination(ratio(n, d)), "{n}/{d}");
        }
        // pure powers of two count too
        assert!(is_two_power_combination(ratio(8, 1)));
        assert!(is_two_power_combination(ratio(1, 4)));
    }

    #[test]
    fn beta_and_delta_grow_with_m() {
        // Fig. 2's driver: per-tile transform cost rises with m.
        let mut last = 0;
        for m in 2..=7 {
            let ops = transform_ops_for(params(m, 3), CostModel::Naive);
            let total = ops.beta + ops.delta;
            assert!(total > last, "m={m}: {total} should exceed {last}");
            last = total;
        }
    }

    #[test]
    fn opcount_add_and_flops() {
        let a = OpCount { adds: 2, mults: 1, shifts: 3 };
        let b = OpCount { adds: 1, mults: 0, shifts: 1 };
        let c = a + b;
        assert_eq!(c, OpCount { adds: 3, mults: 1, shifts: 4 });
        assert_eq!(c.flops(), 4);
        assert_eq!(c.to_string(), "3 adds, 1 mults, 4 shifts");
    }

    #[test]
    fn trivial_transforms_cost_almost_nothing() {
        // m = 1 (dot product): identity B^T and G cost zero FLOPs; A^T is a
        // row of ones costing n-1 adds per application.
        let set = TransformSet::generate(params(1, 3)).unwrap();
        assert_eq!(matrix_apply_ops(set.bt(), CostModel::Naive).flops(), 0);
        assert_eq!(matrix_apply_ops(set.g(), CostModel::Naive).flops(), 0);
        assert_eq!(matrix_apply_ops(set.at(), CostModel::Naive).flops(), 2);
    }

    #[test]
    fn display_and_default() {
        assert_eq!(CostModel::default(), CostModel::Naive);
        assert_eq!(CostModel::ShiftFree.to_string(), "shift-free");
        let ops = TransformOps::LAVIN_F2X2_3X3;
        assert_eq!(ops.to_string(), "beta=32 gamma=28 delta=24");
    }
}
