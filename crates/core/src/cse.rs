//! Greedy common-subexpression elimination for constant linear
//! transforms.
//!
//! The transform stages are constant matrix–vector products; real
//! implementations (Lavin's kernels, HLS datapaths) share subexpressions
//! like `(d₀ + d₂)` across output rows. This module implements the
//! classic greedy two-term CSE used in multiplier-less filter synthesis:
//! repeatedly extract the most frequent two-term pattern into a new
//! intermediate signal until no pattern occurs twice, then count the
//! remaining operations.
//!
//! It provides the fourth — and most optimistic — cost model for the
//! β/γ/δ derivation (DESIGN.md §5.3): `Naive ≥ RowFactored ≥ ShiftFree ≥
//! CSE` in FLOPs, bracketing whatever the paper's authors actually
//! counted.

use crate::{OpCount, TransformOps, TransformSet};
use std::collections::HashMap;
use wino_tensor::{Ratio, Tensor2};

/// A linear expression over original inputs and extracted intermediates:
/// sorted `(signal index, coefficient)` terms.
type Expr = Vec<(usize, Ratio)>;

/// Canonical key of a two-term pattern `x_i + (b/a)·x_j` with `i < j`,
/// scale-normalized so `(2x₀ + 4x₁)` and `(x₀ + 2x₁)` match.
fn pattern_key(i: usize, a: Ratio, j: usize, b: Ratio) -> (usize, usize, Ratio) {
    debug_assert!(i < j);
    (i, j, b / a)
}

/// Result of running CSE on one transform matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CseResult {
    /// Number of two-term intermediates extracted.
    pub extracted: usize,
    /// Operation count of the optimized computation (one application of
    /// the matrix to a dense vector).
    pub ops: OpCount,
}

/// Runs greedy two-term CSE on `mat` and counts the optimized ops.
///
/// Cost accounting after extraction: each intermediate costs one add
/// (plus one constant multiply when its internal ratio is not `±1` or a
/// power of two — powers of two are shifts, as in
/// [`CostModel::ShiftFree`](crate::CostModel::ShiftFree)); each final row
/// costs `(terms − 1)` adds plus one constant multiply per non-unit,
/// non-power-of-two coefficient.
///
/// ```
/// use wino_core::{cse_optimize, TransformSet, WinogradParams};
///
/// let set = TransformSet::generate(WinogradParams::new(2, 3)?)?;
/// // The F(2,3) filter transform shares (g0 + g2) between two rows:
/// // naive 10 FLOPs -> 3 adds + 4 shifts after CSE.
/// let result = cse_optimize(set.g());
/// assert_eq!(result.extracted, 1);
/// assert_eq!(result.ops.flops(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn cse_optimize(mat: &Tensor2<Ratio>) -> CseResult {
    // Working set: one expression per output row, over a growing signal
    // space (original inputs 0..cols, intermediates appended after).
    let cols = mat.cols();
    let mut exprs: Vec<Expr> = (0..mat.rows())
        .map(|r| {
            (0..cols)
                .filter_map(|c| {
                    let v = mat[(r, c)];
                    (!v.is_zero()).then_some((c, v))
                })
                .collect()
        })
        .collect();
    let mut next_signal = cols;
    let mut extracted = 0usize;
    let mut intermediate_ratios: Vec<Ratio> = Vec::new();

    loop {
        // Count every two-term pattern across all expressions.
        let mut counts: HashMap<(usize, usize, Ratio), usize> = HashMap::new();
        for expr in &exprs {
            for (ai, &(i, a)) in expr.iter().enumerate() {
                for &(j, b) in &expr[ai + 1..] {
                    *counts.entry(pattern_key(i, a, j, b)).or_insert(0) += 1;
                }
            }
        }
        // Pick the most frequent pattern (ties broken deterministically).
        let best = counts
            .into_iter()
            .filter(|&(_, n)| n >= 2)
            .max_by(|(ka, na), (kb, nb)| na.cmp(nb).then_with(|| (kb.0, kb.1).cmp(&(ka.0, ka.1))));
        let Some(((i, j, ratio), _)) = best else { break };

        // New intermediate t = x_i + ratio * x_j.
        let t = next_signal;
        next_signal += 1;
        extracted += 1;
        intermediate_ratios.push(ratio);

        // Substitute t into every expression containing the pattern.
        for expr in &mut exprs {
            let a = expr.iter().find(|&&(s, _)| s == i).map(|&(_, a)| a);
            let b = expr.iter().find(|&&(s, _)| s == j).map(|&(_, b)| b);
            if let (Some(a), Some(b)) = (a, b) {
                if b / a == ratio {
                    expr.retain(|&(s, _)| s != i && s != j);
                    expr.push((t, a));
                    expr.sort_by_key(|&(s, _)| s);
                }
            }
        }
    }

    // Count the optimized operations.
    let mut ops = OpCount::default();
    let charge_const = |ops: &mut OpCount, c: Ratio| {
        if c.is_unit() {
        } else if c.is_power_of_two() {
            ops.shifts += 1;
        } else {
            ops.mults += 1;
        }
    };
    for ratio in &intermediate_ratios {
        ops.adds += 1;
        charge_const(&mut ops, *ratio);
    }
    for expr in &exprs {
        if expr.is_empty() {
            continue;
        }
        ops.adds += expr.len() as u64 - 1;
        for &(_, c) in expr {
            charge_const(&mut ops, c);
        }
    }
    CseResult { extracted, ops }
}

/// β/γ/δ per 2-D tile under greedy CSE (the most optimistic derivation;
/// see [`transform_ops_2d`](crate::transform_ops_2d) for the nesting
/// arithmetic).
pub fn transform_ops_2d_cse(set: &TransformSet) -> TransformOps {
    let params = set.params();
    let n = params.input_tile() as u64;
    let m = params.m() as u64;
    let r = params.r() as u64;
    TransformOps {
        beta: 2 * n * cse_optimize(set.bt()).ops.flops(),
        gamma: (r + n) * cse_optimize(set.g()).ops.flops(),
        delta: (n + m) * cse_optimize(set.at()).ops.flops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{matrix_apply_ops, CostModel, WinogradParams};
    use wino_tensor::ratio;

    fn set(m: usize, r: usize) -> TransformSet {
        TransformSet::generate(WinogradParams::new(m, r).unwrap()).unwrap()
    }

    #[test]
    fn f23_filter_transform_shares_g0_plus_g2() {
        // Rows [1/2,1/2,1/2] and [1/2,-1/2,1/2] share (g0 + g2):
        // t = g0+g2 (1 add); rows become (t/2 ± g1/2): 1 add and two 1/2
        // shifts each.
        let result = cse_optimize(set(2, 3).g());
        assert_eq!(result.extracted, 1);
        assert_eq!(result.ops.adds, 3);
        assert_eq!(result.ops.mults, 0);
        assert_eq!(result.ops.shifts, 4);
    }

    #[test]
    fn f23_data_transform_has_nothing_to_share() {
        // B^T rows of F(2,3) are disjoint patterns; CSE cannot help.
        let result = cse_optimize(set(2, 3).bt());
        assert_eq!(result.extracted, 0);
        assert_eq!(result.ops.flops(), matrix_apply_ops(set(2, 3).bt(), CostModel::Naive).flops());
    }

    #[test]
    fn f43_transforms_benefit_from_cse() {
        // F(4,3): rows like [0,-4,-4,1,1,0] / [0,4,-4,-1,1,0] and the
        // ±2 pairs share structure.
        let s = set(4, 3);
        for mat in [s.bt(), s.at(), s.g()] {
            let naive = matrix_apply_ops(mat, CostModel::Naive).flops();
            let cse = cse_optimize(mat).ops.flops();
            assert!(cse <= naive, "CSE must never cost more ({cse} > {naive})");
        }
        assert!(cse_optimize(s.at()).extracted > 0, "A^T of F(4,3) has shared pairs");
    }

    #[test]
    fn cse_ordering_across_cost_models() {
        // For each transform: CSE <= ShiftFree-flops and CSE <= Naive.
        for m in 2..=6 {
            let s = set(m, 3);
            let cse = transform_ops_2d_cse(&s);
            let shift = crate::transform_ops_2d(&s, CostModel::ShiftFree);
            let naive = crate::transform_ops_2d(&s, CostModel::Naive);
            for (c, sh, na) in [
                (cse.beta, shift.beta, naive.beta),
                (cse.gamma, shift.gamma, naive.gamma),
                (cse.delta, shift.delta, naive.delta),
            ] {
                assert!(c <= sh || c <= na, "m={m}: cse {c} vs shift {sh} / naive {na}");
                assert!(c <= na, "m={m}: cse {c} must not exceed naive {na}");
            }
        }
    }

    #[test]
    fn cse_preserves_semantics_by_construction() {
        // The substitution t = x_i + q*x_j with coefficient a replaces
        // a*x_i + (a*q)*x_j exactly; verify on a handcrafted matrix by
        // expanding the optimized form manually.
        let mat = Tensor2::from_rows(&[
            &[ratio(2, 1), ratio(4, 1), ratio(0, 1)],
            &[ratio(1, 1), ratio(2, 1), ratio(5, 1)],
            &[ratio(3, 1), ratio(6, 1), ratio(1, 1)],
        ]);
        // All three rows contain the pattern x0 + 2*x1.
        let result = cse_optimize(&mat);
        assert_eq!(result.extracted, 1);
        // t = x0 + 2 x1 (1 add + 1 shift); rows: 2t / t + 5x2 / 3t + x2:
        // adds: 1 (t) + 0 + 1 + 1 = 3.
        assert_eq!(result.ops.adds, 3);
    }

    #[test]
    fn empty_and_identity_rows_cost_nothing() {
        let mat = Tensor2::from_rows(&[&[ratio(0, 1), ratio(0, 1)], &[ratio(1, 1), ratio(0, 1)]]);
        let result = cse_optimize(&mat);
        assert_eq!(result.extracted, 0);
        assert_eq!(result.ops, OpCount::default());
    }

    #[test]
    fn gamma_approaches_lavins_28_for_f23() {
        // Lavin's hand-optimized filter transform costs 28 FLOPs per 2-D
        // tile; greedy CSE gets gamma = (3+4)*3 = 21 (it also shares the
        // shift), bracketing Lavin from below while naive (70) brackets
        // from above.
        let ops = transform_ops_2d_cse(&set(2, 3));
        assert_eq!(ops.gamma, 21);
        assert_eq!(ops.beta, 32, "no sharing available in B^T");
        assert_eq!(ops.delta, 24, "no sharing available in A^T");
    }
}
