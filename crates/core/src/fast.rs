//! Hand-scheduled fast paths for the paper's two workhorse algorithms.
//!
//! The generic [`WinogradAlgorithm`](crate::WinogradAlgorithm) multiplies
//! by the transform matrices; production kernels (cuDNN, NNPACK, Lavin's
//! reference code) instead hard-code the transform arithmetic. This
//! module provides those kernels for `F(2×2, 3×3)` and `F(4×4, 3×3)` —
//! the exact expressions a synthesized datapath evaluates (Fig. 4's adder
//! network, in software) — plus an allocation-free layer driver.
//!
//! The expressions are transcriptions of this crate's *generated*
//! matrices (for `F(4×4,3×3)` these equal Lavin's published ones), and
//! tests pin them against the generic path.

use wino_tensor::{Shape4, Tensor2, Tensor4};

/// `F(2×2, 3×3)` data transform `U = BᵀdB` on a flat 4×4 tile.
///
/// Per 1-D application: `t0 = d0 − d2, t1 = d1 + d2, t2 = d2 − d1,
/// t3 = d3 − d1` (this crate's canonical `Bᵀ`).
pub fn f23_data_transform(d: &[f32; 16], u: &mut [f32; 16]) {
    let mut tmp = [0f32; 16];
    // Columns.
    for c in 0..4 {
        let (d0, d1, d2, d3) = (d[c], d[4 + c], d[8 + c], d[12 + c]);
        tmp[c] = d0 - d2;
        tmp[4 + c] = d1 + d2;
        tmp[8 + c] = d2 - d1;
        tmp[12 + c] = d3 - d1;
    }
    // Rows.
    for r in 0..4 {
        let (d0, d1, d2, d3) = (tmp[4 * r], tmp[4 * r + 1], tmp[4 * r + 2], tmp[4 * r + 3]);
        u[4 * r] = d0 - d2;
        u[4 * r + 1] = d1 + d2;
        u[4 * r + 2] = d2 - d1;
        u[4 * r + 3] = d3 - d1;
    }
}

/// `F(2×2, 3×3)` filter transform `V = GgGᵀ` from a flat 3×3 kernel.
pub fn f23_kernel_transform(g: &[f32; 9], v: &mut [f32; 16]) {
    let mut tmp = [0f32; 12]; // 4x3 intermediate
    for c in 0..3 {
        let (g0, g1, g2) = (g[c], g[3 + c], g[6 + c]);
        tmp[c] = g0;
        tmp[3 + c] = 0.5 * (g0 + g1 + g2);
        tmp[6 + c] = 0.5 * (g0 - g1 + g2);
        tmp[9 + c] = g2;
    }
    for r in 0..4 {
        let (g0, g1, g2) = (tmp[3 * r], tmp[3 * r + 1], tmp[3 * r + 2]);
        v[4 * r] = g0;
        v[4 * r + 1] = 0.5 * (g0 + g1 + g2);
        v[4 * r + 2] = 0.5 * (g0 - g1 + g2);
        v[4 * r + 3] = g2;
    }
}

/// `F(2×2, 3×3)` inverse transform `Y = AᵀMA`: 4×4 products → 2×2 outputs.
///
/// Per 1-D application: `y0 = m0 + m1 + m2, y1 = m1 − m2 + m3`.
pub fn f23_inverse_transform(m: &[f32; 16], y: &mut [f32; 4]) {
    let mut tmp = [0f32; 8]; // 2x4 intermediate
    for c in 0..4 {
        let (m0, m1, m2, m3) = (m[c], m[4 + c], m[8 + c], m[12 + c]);
        tmp[c] = m0 + m1 + m2;
        tmp[4 + c] = m1 - m2 + m3;
    }
    for r in 0..2 {
        let (m0, m1, m2, m3) = (tmp[4 * r], tmp[4 * r + 1], tmp[4 * r + 2], tmp[4 * r + 3]);
        y[2 * r] = m0 + m1 + m2;
        y[2 * r + 1] = m1 - m2 + m3;
    }
}

fn f43_data_1d(d: &[f32; 6]) -> [f32; 6] {
    [
        4.0 * d[0] - 5.0 * d[2] + d[4],
        -4.0 * d[1] - 4.0 * d[2] + d[3] + d[4],
        4.0 * d[1] - 4.0 * d[2] - d[3] + d[4],
        -2.0 * d[1] - d[2] + 2.0 * d[3] + d[4],
        2.0 * d[1] - d[2] - 2.0 * d[3] + d[4],
        4.0 * d[1] - 5.0 * d[3] + d[5],
    ]
}

/// `F(4×4, 3×3)` data transform on a flat 6×6 tile (Lavin's `Bᵀ`).
pub fn f43_data_transform(d: &[f32; 36], u: &mut [f32; 36]) {
    let mut tmp = [0f32; 36];
    for c in 0..6 {
        let col = [d[c], d[6 + c], d[12 + c], d[18 + c], d[24 + c], d[30 + c]];
        let t = f43_data_1d(&col);
        for r in 0..6 {
            tmp[6 * r + c] = t[r];
        }
    }
    for r in 0..6 {
        let row: [f32; 6] = tmp[6 * r..6 * r + 6].try_into().expect("row of 6");
        let t = f43_data_1d(&row);
        u[6 * r..6 * r + 6].copy_from_slice(&t);
    }
}

fn f43_kernel_1d(g: &[f32; 3]) -> [f32; 6] {
    let (g0, g1, g2) = (g[0], g[1], g[2]);
    [
        0.25 * g0,
        (-g0 - g1 - g2) / 6.0,
        (-g0 + g1 - g2) / 6.0,
        g0 / 24.0 + g1 / 12.0 + g2 / 6.0,
        g0 / 24.0 - g1 / 12.0 + g2 / 6.0,
        g2,
    ]
}

/// `F(4×4, 3×3)` filter transform from a flat 3×3 kernel (Lavin's `G`).
pub fn f43_kernel_transform(g: &[f32; 9], v: &mut [f32; 36]) {
    let mut tmp = [0f32; 18]; // 6x3 intermediate
    for c in 0..3 {
        let col = [g[c], g[3 + c], g[6 + c]];
        let t = f43_kernel_1d(&col);
        for r in 0..6 {
            tmp[3 * r + c] = t[r];
        }
    }
    for r in 0..6 {
        let row: [f32; 3] = tmp[3 * r..3 * r + 3].try_into().expect("row of 3");
        let t = f43_kernel_1d(&row);
        v[6 * r..6 * r + 6].copy_from_slice(&t);
    }
}

fn f43_inverse_1d(m: &[f32; 6]) -> [f32; 4] {
    [
        m[0] + m[1] + m[2] + m[3] + m[4],
        m[1] - m[2] + 2.0 * m[3] - 2.0 * m[4],
        m[1] + m[2] + 4.0 * m[3] + 4.0 * m[4],
        m[1] - m[2] + 8.0 * m[3] - 8.0 * m[4] + m[5],
    ]
}

/// `F(4×4, 3×3)` inverse transform: 6×6 products → 4×4 outputs
/// (Lavin's `Aᵀ`).
pub fn f43_inverse_transform(m: &[f32; 36], y: &mut [f32; 16]) {
    let mut tmp = [0f32; 24]; // 4x6 intermediate
    for c in 0..6 {
        let col = [m[c], m[6 + c], m[12 + c], m[18 + c], m[24 + c], m[30 + c]];
        let t = f43_inverse_1d(&col);
        for r in 0..4 {
            tmp[6 * r + c] = t[r];
        }
    }
    for r in 0..4 {
        let row: [f32; 6] = tmp[6 * r..6 * r + 6].try_into().expect("row of 6");
        let t = f43_inverse_1d(&row);
        y[4 * r..4 * r + 4].copy_from_slice(&t);
    }
}

/// Which hand-scheduled kernel a [`fast_convolve_layer`] call uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FastKernel {
    /// `F(2×2, 3×3)` — 16 multiplies per tile.
    F2x2,
    /// `F(4×4, 3×3)` — 36 multiplies per tile.
    F4x4,
}

impl FastKernel {
    /// Output tile size `m`.
    pub fn m(&self) -> usize {
        match self {
            FastKernel::F2x2 => 2,
            FastKernel::F4x4 => 4,
        }
    }

    /// Input tile size `n = m + 2`.
    pub fn n(&self) -> usize {
        self.m() + 2
    }
}

/// Allocation-free tiled layer convolution with the hand-scheduled
/// kernels (stride 1, 3×3 kernels, symmetric `pad`).
///
/// Functionally equivalent to
/// [`WinogradAlgorithm::convolve_layer`](crate::WinogradAlgorithm::convolve_layer)
/// with the same parameters, but ~an order of magnitude faster: fixed-size
/// stack tiles, no per-tile heap traffic, transforms as straight-line
/// code.
///
/// # Panics
///
/// Panics if kernels are not `3×3` or channel counts disagree.
pub fn fast_convolve_layer(
    kernel: FastKernel,
    input: &Tensor4<f32>,
    kernels: &Tensor4<f32>,
    pad: usize,
) -> Tensor4<f32> {
    let is = input.shape();
    let ks = kernels.shape();
    assert_eq!(is.c, ks.c, "input and kernel channel counts must match");
    assert_eq!((ks.h, ks.w), (3, 3), "fast kernels are specialized for 3x3");
    let m = kernel.m();
    let n = kernel.n();
    let n2 = n * n;
    let out_h = is.h + 2 * pad - 2;
    let out_w = is.w + 2 * pad - 2;
    let tiles_y = out_h.div_ceil(m);
    let tiles_x = out_w.div_ceil(m);

    // Transform the whole kernel bank once, flat.
    let mut v_bank = vec![0f32; ks.n * ks.c * n2];
    for k in 0..ks.n {
        for c in 0..ks.c {
            let mut g = [0f32; 9];
            for v in 0..3 {
                for u in 0..3 {
                    g[3 * v + u] = kernels.at(k, c, v, u);
                }
            }
            let dst = &mut v_bank[(k * ks.c + c) * n2..(k * ks.c + c + 1) * n2];
            match kernel {
                FastKernel::F2x2 => {
                    let mut v16 = [0f32; 16];
                    f23_kernel_transform(&g, &mut v16);
                    dst.copy_from_slice(&v16);
                }
                FastKernel::F4x4 => {
                    let mut v36 = [0f32; 36];
                    f43_kernel_transform(&g, &mut v36);
                    dst.copy_from_slice(&v36);
                }
            }
        }
    }

    let mut output = Tensor4::zeros(Shape4 { n: is.n, c: ks.n, h: out_h, w: out_w });
    let input_flat = input.as_slice();
    let plane_stride = is.h * is.w;

    // Reused scratch buffers.
    let mut d16 = [0f32; 16];
    let mut u16 = [0f32; 16];
    let mut y4 = [0f32; 4];
    let mut d36 = [0f32; 36];
    let mut u36 = [0f32; 36];
    let mut y16 = [0f32; 16];
    let mut acc = vec![0f32; ks.n * n2];

    for img in 0..is.n {
        let img_base = img * is.c * plane_stride;
        let mut out_planes: Vec<Tensor2<f32>> =
            (0..ks.n).map(|_| Tensor2::zeros(out_h, out_w)).collect();
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                acc.iter_mut().for_each(|x| *x = 0.0);
                let top = (ty * m) as isize - pad as isize;
                let left = (tx * m) as isize - pad as isize;
                for c in 0..is.c {
                    let plane = &input_flat[img_base + c * plane_stride..][..plane_stride];
                    // Gather the padded tile.
                    let gather = |d: &mut [f32]| {
                        for r in 0..n {
                            let rr = top + r as isize;
                            for col in 0..n {
                                let cc = left + col as isize;
                                d[n * r + col] = if rr >= 0
                                    && cc >= 0
                                    && (rr as usize) < is.h
                                    && (cc as usize) < is.w
                                {
                                    plane[rr as usize * is.w + cc as usize]
                                } else {
                                    0.0
                                };
                            }
                        }
                    };
                    let u: &[f32] = match kernel {
                        FastKernel::F2x2 => {
                            gather(&mut d16);
                            f23_data_transform(&d16, &mut u16);
                            &u16
                        }
                        FastKernel::F4x4 => {
                            gather(&mut d36);
                            f43_data_transform(&d36, &mut u36);
                            &u36
                        }
                    };
                    for k in 0..ks.n {
                        let v = &v_bank[(k * ks.c + c) * n2..(k * ks.c + c + 1) * n2];
                        let a = &mut acc[k * n2..(k + 1) * n2];
                        for i in 0..n2 {
                            a[i] += u[i] * v[i];
                        }
                    }
                }
                for k in 0..ks.n {
                    let a = &acc[k * n2..(k + 1) * n2];
                    let y: &[f32] = match kernel {
                        FastKernel::F2x2 => {
                            f23_inverse_transform(a.try_into().expect("16"), &mut y4);
                            &y4
                        }
                        FastKernel::F4x4 => {
                            f43_inverse_transform(a.try_into().expect("36"), &mut y16);
                            &y16
                        }
                    };
                    let plane = &mut out_planes[k];
                    for r in 0..m {
                        let rr = ty * m + r;
                        if rr >= out_h {
                            break;
                        }
                        for col in 0..m {
                            let cc = tx * m + col;
                            if cc >= out_w {
                                break;
                            }
                            plane[(rr, cc)] = y[m * r + col];
                        }
                    }
                }
            }
        }
        for (k, plane) in out_planes.into_iter().enumerate() {
            output.set_plane(img, k, &plane);
        }
    }
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TransformSet, WinogradAlgorithm, WinogradParams};
    use wino_tensor::{ErrorStats, SplitMix64};

    fn generic(m: usize) -> WinogradAlgorithm<f32> {
        WinogradAlgorithm::new(&TransformSet::generate(WinogradParams::new(m, 3).unwrap()).unwrap())
    }

    #[test]
    fn f23_transforms_match_generic_matrices() {
        let algo = generic(2);
        let mut rng = SplitMix64::new(1);
        for _ in 0..20 {
            let d = Tensor2::from_fn(4, 4, |_, _| rng.uniform_f32(-2.0, 2.0));
            let mut flat = [0f32; 16];
            flat.copy_from_slice(d.as_slice());
            let mut u = [0f32; 16];
            f23_data_transform(&flat, &mut u);
            let expect = algo.transform_data(&d);
            for (a, b) in u.iter().zip(expect.as_slice()) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn f43_transforms_match_generic_matrices() {
        let algo = generic(4);
        let mut rng = SplitMix64::new(2);
        let d = Tensor2::from_fn(6, 6, |_, _| rng.uniform_f32(-2.0, 2.0));
        let mut flat = [0f32; 36];
        flat.copy_from_slice(d.as_slice());
        let mut u = [0f32; 36];
        f43_data_transform(&flat, &mut u);
        for (a, b) in u.iter().zip(algo.transform_data(&d).as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }

        let g = Tensor2::from_fn(3, 3, |_, _| rng.uniform_f32(-1.0, 1.0));
        let mut gflat = [0f32; 9];
        gflat.copy_from_slice(g.as_slice());
        let mut v = [0f32; 36];
        f43_kernel_transform(&gflat, &mut v);
        for (a, b) in v.iter().zip(algo.transform_kernel(&g).as_slice()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }

        let m = Tensor2::from_fn(6, 6, |_, _| rng.uniform_f32(-2.0, 2.0));
        let mut mflat = [0f32; 36];
        mflat.copy_from_slice(m.as_slice());
        let mut y = [0f32; 16];
        f43_inverse_transform(&mflat, &mut y);
        for (a, b) in y.iter().zip(algo.inverse_transform(&m).as_slice()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn f23_layer_is_exact_on_small_integers() {
        // F(2,3) uses only dyadic constants: on small integer inputs the
        // whole pipeline is exact in f32.
        let mut rng = SplitMix64::new(3);
        let input = Tensor4::from_fn(Shape4 { n: 1, c: 3, h: 10, w: 9 }, |_, _, _, _| {
            (rng.below(9) as f32) - 4.0
        });
        let kernels = Tensor4::from_fn(Shape4 { n: 4, c: 3, h: 3, w: 3 }, |_, _, _, _| {
            (rng.below(9) as f32) - 4.0
        });
        let fast = fast_convolve_layer(FastKernel::F2x2, &input, &kernels, 1);
        // Direct reference.
        let is = input.shape();
        for k in 0..4 {
            for y in 0..is.h {
                for x in 0..is.w {
                    let mut acc = 0f32;
                    for c in 0..3 {
                        for v in 0..3usize {
                            for u in 0..3usize {
                                let iy = y as isize + v as isize - 1;
                                let ix = x as isize + u as isize - 1;
                                if iy >= 0
                                    && ix >= 0
                                    && (iy as usize) < is.h
                                    && (ix as usize) < is.w
                                {
                                    acc += input.at(0, c, iy as usize, ix as usize)
                                        * kernels.at(k, c, v, u);
                                }
                            }
                        }
                    }
                    assert_eq!(fast.at(0, k, y, x), acc, "(k={k},{y},{x})");
                }
            }
        }
    }

    #[test]
    fn fast_layers_match_generic_path() {
        let mut rng = SplitMix64::new(4);
        let input = Tensor4::from_fn(Shape4 { n: 2, c: 4, h: 13, w: 11 }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let kernels = Tensor4::from_fn(Shape4 { n: 5, c: 4, h: 3, w: 3 }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        for (fast_kind, m) in [(FastKernel::F2x2, 2usize), (FastKernel::F4x4, 4)] {
            for pad in [0usize, 1] {
                let fast = fast_convolve_layer(fast_kind, &input, &kernels, pad);
                let slow = generic(m).convolve_layer(&input, &kernels, pad);
                assert_eq!(fast.shape(), slow.shape());
                let stats = ErrorStats::between(fast.as_slice(), slow.as_slice());
                assert!(stats.within_abs(1e-4), "{fast_kind:?} pad={pad}: {stats}");
            }
        }
    }

    #[test]
    fn kernel_metadata() {
        assert_eq!(FastKernel::F2x2.m(), 2);
        assert_eq!(FastKernel::F2x2.n(), 4);
        assert_eq!(FastKernel::F4x4.m(), 4);
        assert_eq!(FastKernel::F4x4.n(), 6);
    }

    #[test]
    #[should_panic(expected = "specialized for 3x3")]
    fn non_3x3_kernels_rejected() {
        let input = Tensor4::<f32>::zeros(Shape4 { n: 1, c: 1, h: 8, w: 8 });
        let kernels = Tensor4::<f32>::zeros(Shape4 { n: 1, c: 1, h: 5, w: 5 });
        let _ = fast_convolve_layer(FastKernel::F2x2, &input, &kernels, 0);
    }
}
