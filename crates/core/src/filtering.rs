//! Functional Winograd convolution — the algorithm the hardware engine
//! implements, runnable on any [`Scalar`] type.
//!
//! The 1-D algorithm is `Y = Aᵀ[(Gg) ⊙ (Bᵀd)]` (Eq. 2); the 2-D algorithm
//! nests it: `Y = Aᵀ[(GgGᵀ) ⊙ (BᵀdB)]A` (Eq. 3). [`WinogradAlgorithm`]
//! also provides the full layer-level tiled convolution with channel
//! accumulation, used as the functional reference for the cycle-level
//! engine and as the fast path in its own right.

use crate::{TransformError, TransformSet, WinogradParams};
use wino_tensor::{Ratio, Scalar, Shape4, Tensor2, Tensor4};

/// A ready-to-run Winograd minimal filtering algorithm over scalar type
/// `T`.
///
/// ```
/// use wino_core::{WinogradAlgorithm, WinogradParams};
/// use wino_tensor::Tensor2;
///
/// let algo = WinogradAlgorithm::<f32>::for_params(WinogradParams::new(2, 3)?)?;
/// let d = Tensor2::from_rows(&[&[1.0f32, 2.0, 3.0, 4.0]]);
/// let y = algo.convolve_1d(d.row(0), &[1.0, 1.0, 1.0]);
/// assert_eq!(y, vec![6.0, 9.0]); // sliding window sums
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct WinogradAlgorithm<T> {
    params: WinogradParams,
    at: Tensor2<T>,
    g: Tensor2<T>,
    bt: Tensor2<T>,
    a: Tensor2<T>,
    b: Tensor2<T>,
    gt: Tensor2<T>,
}

impl<T: Scalar> WinogradAlgorithm<T> {
    /// Builds the algorithm from an exact transform set, converting the
    /// rational matrices to `T` (±1 ULP for non-dyadic entries).
    pub fn new(set: &TransformSet) -> WinogradAlgorithm<T> {
        let real = set.to_scalar::<T>();
        let a = real.at.transposed();
        let b = real.bt.transposed();
        let gt = real.g.transposed();
        WinogradAlgorithm { params: set.params(), at: real.at, g: real.g, bt: real.bt, a, b, gt }
    }

    /// Generates canonical transforms for `params` and builds the
    /// algorithm.
    ///
    /// # Errors
    ///
    /// Propagates [`TransformError`] from generation.
    pub fn for_params(params: WinogradParams) -> Result<WinogradAlgorithm<T>, TransformError> {
        Ok(WinogradAlgorithm::new(&TransformSet::generate(params)?))
    }

    /// The `F(m, r)` parameters.
    pub fn params(&self) -> WinogradParams {
        self.params
    }

    /// Filter transform: `V = G g Gᵀ` (`n × n` from an `r × r` kernel).
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is not `r × r`.
    pub fn transform_kernel(&self, kernel: &Tensor2<T>) -> Tensor2<T> {
        let r = self.params.r();
        assert_eq!((kernel.rows(), kernel.cols()), (r, r), "kernel must be {r}x{r}");
        self.g.matmul(kernel).matmul(&self.gt)
    }

    /// Data transform: `U = Bᵀ d B` (`n × n` from an `n × n` input tile).
    ///
    /// # Panics
    ///
    /// Panics if `tile` is not `n × n`.
    pub fn transform_data(&self, tile: &Tensor2<T>) -> Tensor2<T> {
        let n = self.params.input_tile();
        assert_eq!((tile.rows(), tile.cols()), (n, n), "input tile must be {n}x{n}");
        self.bt.matmul(tile).matmul(&self.b)
    }

    /// Inverse transform: `Y = Aᵀ M A` (`m × m` from the `n × n`
    /// element-wise product).
    ///
    /// # Panics
    ///
    /// Panics if `elementwise` is not `n × n`.
    pub fn inverse_transform(&self, elementwise: &Tensor2<T>) -> Tensor2<T> {
        let n = self.params.input_tile();
        assert_eq!((elementwise.rows(), elementwise.cols()), (n, n), "product must be {n}x{n}");
        self.at.matmul(elementwise).matmul(&self.a)
    }

    /// Full single-tile 2-D convolution (Eq. 3): transforms, element-wise
    /// multiply, inverse transform.
    pub fn convolve_tile(&self, tile: &Tensor2<T>, kernel: &Tensor2<T>) -> Tensor2<T> {
        let u = self.transform_data(tile);
        let v = self.transform_kernel(kernel);
        self.inverse_transform(&u.hadamard(&v))
    }

    /// 1-D minimal filtering (Eq. 2): `m` outputs from `n` data points and
    /// `r` taps.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n` or `taps.len() != r`.
    pub fn convolve_1d(&self, data: &[T], taps: &[T]) -> Vec<T> {
        let n = self.params.input_tile();
        let r = self.params.r();
        assert_eq!(data.len(), n, "data must have n = {n} elements");
        assert_eq!(taps.len(), r, "filter must have r = {r} taps");
        let d = Tensor2::from_vec(n, 1, data.to_vec());
        let g = Tensor2::from_vec(r, 1, taps.to_vec());
        let u = self.bt.matmul(&d);
        let v = self.g.matmul(&g);
        let prod = u.hadamard(&v);
        self.at.matmul(&prod).into_vec()
    }

    /// Transforms a whole kernel bank `(K, C, r, r)` once — the paper's
    /// precomputed `V` buffers (Sec. IV-B).
    ///
    /// # Panics
    ///
    /// Panics if the kernel spatial dims are not `r × r`.
    pub fn transform_kernel_bank(&self, kernels: &Tensor4<T>) -> Vec<Vec<Tensor2<T>>> {
        let ks = kernels.shape();
        let r = self.params.r();
        assert_eq!((ks.h, ks.w), (r, r), "kernels must be {r}x{r}");
        (0..ks.n)
            .map(|k| (0..ks.c).map(|c| self.transform_kernel(&kernels.plane(k, c))).collect())
            .collect()
    }

    /// Layer-level tiled Winograd convolution.
    ///
    /// `input` is `(N, C, H, W)`, `kernels` is `(K, C, r, r)`; the result
    /// is `(N, K, H_out, W_out)` with `H_out = H + 2·pad − r + 1` (stride
    /// 1, symmetric zero padding — the only mode Winograd engines
    /// support).
    ///
    /// # Panics
    ///
    /// Panics if channel counts disagree, kernels are not `r × r`, or the
    /// padded input is smaller than the kernel.
    pub fn convolve_layer(
        &self,
        input: &Tensor4<T>,
        kernels: &Tensor4<T>,
        pad: usize,
    ) -> Tensor4<T> {
        let is = input.shape();
        let ks = kernels.shape();
        let m = self.params.m();
        let r = self.params.r();
        let n = self.params.input_tile();
        assert_eq!(is.c, ks.c, "input and kernel channel counts must match");
        assert_eq!((ks.h, ks.w), (r, r), "kernels must be {r}x{r}");
        assert!(is.h + 2 * pad >= r && is.w + 2 * pad >= r, "input too small for kernel");

        let out_h = is.h + 2 * pad - r + 1;
        let out_w = is.w + 2 * pad - r + 1;
        let mut output = Tensor4::zeros(Shape4 { n: is.n, c: ks.n, h: out_h, w: out_w });

        let v_bank = self.transform_kernel_bank(kernels);
        let tiles_y = out_h.div_ceil(m);
        let tiles_x = out_w.div_ceil(m);

        for img in 0..is.n {
            let planes: Vec<Tensor2<T>> = (0..is.c).map(|c| input.plane(img, c)).collect();
            let mut out_planes: Vec<Tensor2<T>> =
                (0..ks.n).map(|_| Tensor2::zeros(out_h, out_w)).collect();
            for ty in 0..tiles_y {
                for tx in 0..tiles_x {
                    let top = (ty * m) as isize - pad as isize;
                    let left = (tx * m) as isize - pad as isize;
                    // Accumulate M = sum_c U_c ⊙ V[k][c] per kernel.
                    let mut acc: Vec<Tensor2<T>> =
                        (0..ks.n).map(|_| Tensor2::zeros(n, n)).collect();
                    for (c, plane) in planes.iter().enumerate() {
                        let tile = plane.padded_tile(top, left, n);
                        let u = self.transform_data(&tile);
                        for (k, acc_k) in acc.iter_mut().enumerate() {
                            let prod = u.hadamard(&v_bank[k][c]);
                            for (dst, src) in acc_k.as_mut_slice().iter_mut().zip(prod.as_slice()) {
                                *dst += *src;
                            }
                        }
                    }
                    for (k, acc_k) in acc.iter().enumerate() {
                        let y = self.inverse_transform(acc_k);
                        out_planes[k].write_tile(ty * m, tx * m, &y);
                    }
                }
            }
            for (k, plane) in out_planes.into_iter().enumerate() {
                output.set_plane(img, k, &plane);
            }
        }
        output
    }
}

impl WinogradAlgorithm<Ratio> {
    /// Builds an *exact* rational algorithm directly from the transform
    /// set (no float round-trip), for algebraic verification.
    pub fn exact(set: &TransformSet) -> WinogradAlgorithm<Ratio> {
        WinogradAlgorithm {
            params: set.params(),
            at: set.at().clone(),
            g: set.g().clone(),
            bt: set.bt().clone(),
            a: set.at().transposed(),
            b: set.bt().transposed(),
            gt: set.g().transposed(),
        }
    }
}

/// Direct correlation of a 1-D signal (used as the test oracle for
/// [`WinogradAlgorithm::convolve_1d`]).
pub fn direct_correlate_1d<T: Scalar>(data: &[T], taps: &[T]) -> Vec<T> {
    let outputs = data.len() + 1 - taps.len();
    (0..outputs)
        .map(|j| taps.iter().enumerate().fold(T::zero(), |acc, (i, &g)| acc + data[j + i] * g))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_tensor::{ratio, SplitMix64};

    fn algo_f32(m: usize, r: usize) -> WinogradAlgorithm<f32> {
        WinogradAlgorithm::for_params(WinogradParams::new(m, r).unwrap()).unwrap()
    }

    fn algo_exact(m: usize, r: usize) -> WinogradAlgorithm<Ratio> {
        let set = TransformSet::generate(WinogradParams::new(m, r).unwrap()).unwrap();
        WinogradAlgorithm::exact(&set)
    }

    /// Naive spatial reference for layers (independent of the baselines
    /// crate to avoid dependency cycles in tests).
    fn spatial_reference<T: Scalar>(
        input: &Tensor4<T>,
        kernels: &Tensor4<T>,
        pad: usize,
    ) -> Tensor4<T> {
        let is = input.shape();
        let ks = kernels.shape();
        let out_h = is.h + 2 * pad - ks.h + 1;
        let out_w = is.w + 2 * pad - ks.w + 1;
        Tensor4::from_fn(Shape4 { n: is.n, c: ks.n, h: out_h, w: out_w }, |n, k, y, x| {
            let mut acc = T::zero();
            for c in 0..is.c {
                for v in 0..ks.h {
                    for u in 0..ks.w {
                        let iy = y as isize + v as isize - pad as isize;
                        let ix = x as isize + u as isize - pad as isize;
                        if iy >= 0 && ix >= 0 && (iy as usize) < is.h && (ix as usize) < is.w {
                            acc +=
                                input.at(n, c, iy as usize, ix as usize) * kernels.at(k, c, v, u);
                        }
                    }
                }
            }
            acc
        })
    }

    #[test]
    fn exact_1d_equals_direct_for_all_configs() {
        let mut rng = SplitMix64::new(11);
        for r in 2..=4 {
            for m in 2..=6 {
                let algo = algo_exact(m, r);
                let n = m + r - 1;
                let data: Vec<Ratio> = (0..n)
                    .map(|_| ratio(rng.below(19) as i128 - 9, 1 + rng.below(4) as i128))
                    .collect();
                let taps: Vec<Ratio> = (0..r)
                    .map(|_| ratio(rng.below(19) as i128 - 9, 1 + rng.below(4) as i128))
                    .collect();
                assert_eq!(
                    algo.convolve_1d(&data, &taps),
                    direct_correlate_1d(&data, &taps),
                    "F({m},{r})"
                );
            }
        }
    }

    #[test]
    fn exact_2d_tile_equals_direct() {
        let mut rng = SplitMix64::new(22);
        for (m, r) in [(2, 3), (3, 3), (4, 3), (2, 5), (6, 3)] {
            let algo = algo_exact(m, r);
            let n = m + r - 1;
            let tile = Tensor2::from_fn(n, n, |_, _| ratio(rng.below(13) as i128 - 6, 1));
            let kernel = Tensor2::from_fn(r, r, |_, _| ratio(rng.below(13) as i128 - 6, 1));
            let y = algo.convolve_tile(&tile, &kernel);
            // Direct valid correlation of the n x n tile: m x m outputs.
            for oy in 0..m {
                for ox in 0..m {
                    let mut acc = Ratio::ZERO;
                    for v in 0..r {
                        for u in 0..r {
                            acc += tile[(oy + v, ox + u)] * kernel[(v, u)];
                        }
                    }
                    assert_eq!(y[(oy, ox)], acc, "F({m},{r}) at ({oy},{ox})");
                }
            }
        }
    }

    #[test]
    fn f32_1d_quickstart_example_values() {
        let algo = algo_f32(2, 3);
        let y = algo.convolve_1d(&[1.0, 2.0, 3.0, 4.0], &[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![-2.0, -2.0]); // 1-3, 2-4
    }

    #[test]
    fn exact_layer_equals_spatial_reference_padded() {
        let mut rng = SplitMix64::new(33);
        let algo = algo_exact(2, 3);
        let input = Tensor4::from_fn(Shape4 { n: 2, c: 3, h: 7, w: 6 }, |_, _, _, _| {
            ratio(rng.below(9) as i128 - 4, 1)
        });
        let kernels = Tensor4::from_fn(Shape4 { n: 4, c: 3, h: 3, w: 3 }, |_, _, _, _| {
            ratio(rng.below(9) as i128 - 4, 1)
        });
        let wino = algo.convolve_layer(&input, &kernels, 1);
        let refr = spatial_reference(&input, &kernels, 1);
        assert_eq!(wino.shape(), refr.shape());
        assert_eq!(wino, refr, "exact Winograd must equal direct convolution");
    }

    #[test]
    fn exact_layer_equals_spatial_reference_valid_odd_sizes() {
        // 7x5 output with m=3 forces ragged tiles on both axes.
        let mut rng = SplitMix64::new(44);
        let algo = algo_exact(3, 3);
        let input = Tensor4::from_fn(Shape4 { n: 1, c: 2, h: 9, w: 7 }, |_, _, _, _| {
            ratio(rng.below(9) as i128 - 4, 1)
        });
        let kernels = Tensor4::from_fn(Shape4 { n: 2, c: 2, h: 3, w: 3 }, |_, _, _, _| {
            ratio(rng.below(9) as i128 - 4, 1)
        });
        assert_eq!(
            algo.convolve_layer(&input, &kernels, 0),
            spatial_reference(&input, &kernels, 0)
        );
    }

    #[test]
    fn f32_layer_close_to_spatial_reference() {
        let mut rng = SplitMix64::new(55);
        for m in [2usize, 4] {
            let algo = algo_f32(m, 3);
            let input = Tensor4::from_fn(Shape4 { n: 1, c: 4, h: 12, w: 12 }, |_, _, _, _| {
                rng.uniform_f32(-1.0, 1.0)
            });
            let kernels = Tensor4::from_fn(Shape4 { n: 3, c: 4, h: 3, w: 3 }, |_, _, _, _| {
                rng.uniform_f32(-1.0, 1.0)
            });
            let wino = algo.convolve_layer(&input, &kernels, 1);
            let refr = spatial_reference(&input, &kernels, 1);
            let stats = wino_tensor::ErrorStats::between(wino.as_slice(), refr.as_slice());
            assert!(stats.within_abs(1e-4), "F({m},3): {stats}");
        }
    }

    #[test]
    fn kernel_bank_matches_individual_transforms() {
        let algo = algo_f32(2, 3);
        let kernels = Tensor4::from_fn(Shape4 { n: 2, c: 2, h: 3, w: 3 }, |k, c, h, w| {
            (k * 27 + c * 9 + h * 3 + w) as f32 * 0.1
        });
        let bank = algo.transform_kernel_bank(&kernels);
        assert_eq!(bank.len(), 2);
        assert_eq!(bank[0].len(), 2);
        assert_eq!(bank[1][0], algo.transform_kernel(&kernels.plane(1, 0)));
    }

    #[test]
    #[should_panic(expected = "kernel must be 3x3")]
    fn wrong_kernel_size_panics() {
        let algo = algo_f32(2, 3);
        let bad = Tensor2::<f32>::zeros(2, 2);
        let _ = algo.transform_kernel(&bad);
    }

    #[test]
    #[should_panic(expected = "channel counts must match")]
    fn channel_mismatch_panics() {
        let algo = algo_f32(2, 3);
        let input = Tensor4::<f32>::zeros(Shape4 { n: 1, c: 2, h: 6, w: 6 });
        let kernels = Tensor4::<f32>::zeros(Shape4 { n: 1, c: 3, h: 3, w: 3 });
        let _ = algo.convolve_layer(&input, &kernels, 1);
    }

    #[test]
    fn direct_correlate_1d_oracle() {
        let y = direct_correlate_1d(&[1.0f32, 2.0, 3.0, 4.0, 5.0], &[1.0, 1.0]);
        assert_eq!(y, vec![3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn trivial_m1_algorithm_is_dot_product() {
        let algo = algo_f32(1, 3);
        let y = algo.convolve_1d(&[2.0, 3.0, 4.0], &[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![20.0]);
    }
}
