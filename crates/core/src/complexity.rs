//! Arithmetic complexity and performance models — Eqs. 4–10 of the paper.
//!
//! Everything in this module is closed-form; these are the equations whose
//! outputs populate Fig. 1 (multiplication complexity), Fig. 2 (transform
//! complexity), Fig. 6 (throughput vs multiplier budget) and the latency /
//! throughput rows of Table II.

use crate::{ConvShape, TransformOps, WinogradParams};

/// How output tiles are counted in every Eq. 4–9 evaluation.
///
/// The paper's closed forms use the *fractional* count `HW/m²` (its
/// Fig. 6 value of 331.78 GOPS at `m = 3` is only reachable with
/// non-integral `P` and tile counts); real hardware pads to whole tiles.
///
/// The convention, fixed here because this enum threads through every
/// implementation of Eq. 9 ([`engine_cycles`], [`latency_seconds`] and
/// the evaluators built on them):
///
/// * [`TileModel::Fractional`] reproduces the paper's published numbers
///   and is the default everywhere a published value is compared.
/// * [`TileModel::Ceil`] counts what a tiler actually executes —
///   `⌈H_out/m⌉·⌈W_out/m⌉` whole (edge-padded) tiles and whole kernel
///   groups of `P` — and is what the cycle-level `wino-engine`
///   simulator and the `wino-exec` execution engine realize. Whenever
///   `m` does not divide the output extent, `Ceil` latencies are
///   strictly larger than `Fractional` ones; they agree exactly when it
///   does.
///
/// ```
/// use wino_core::{output_tiles, ConvShape, TileModel};
///
/// let s = ConvShape::same_padded(224, 224, 8, 8, 3);
/// // 224 is divisible by 2 but not by 3:
/// assert_eq!(output_tiles(&s, 2, TileModel::Fractional), output_tiles(&s, 2, TileModel::Ceil));
/// assert!(output_tiles(&s, 3, TileModel::Ceil) > output_tiles(&s, 3, TileModel::Fractional));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TileModel {
    /// `H·W / m²` exactly as written in Eqs. 4–9.
    #[default]
    Fractional,
    /// `⌈H_out/m⌉ · ⌈W_out/m⌉` — what a tiler actually executes.
    Ceil,
}

/// Number of 2-D output tiles per image per kernel.
pub fn output_tiles(shape: &ConvShape, m: usize, model: TileModel) -> f64 {
    match model {
        TileModel::Fractional => shape.out_pixels() as f64 / (m * m) as f64,
        TileModel::Ceil => (shape.out_h().div_ceil(m) * shape.out_w().div_ceil(m)) as f64,
    }
}

/// Multiplications of direct spatial convolution (Eq. 4 with `m = 1`):
/// `N·H·W·C·K·r²` over the output extent.
pub fn spatial_mults(batch: usize, shape: &ConvShape) -> u128 {
    batch as u128
        * shape.out_pixels()
        * shape.c as u128
        * shape.k as u128
        * (shape.r * shape.r) as u128
}

/// Total spatial-convolution operations `O_S = 2·N·H·W·C·K·r²`
/// (multiply + accumulate, the convention behind the paper's
/// "30.69 GOP for VGG16-D" and every GOPS figure).
pub fn spatial_ops(batch: usize, shape: &ConvShape) -> u128 {
    2 * spatial_mults(batch, shape)
}

/// Element-wise–stage multiplications of `F(m×m, r×r)` (Eq. 4):
/// `O_m = N·(HW/m²)·C·K·(m+r−1)²`.
pub fn winograd_mults(
    batch: usize,
    shape: &ConvShape,
    params: WinogradParams,
    tiles: TileModel,
) -> f64 {
    batch as f64
        * output_tiles(shape, params.m(), tiles)
        * shape.c as f64
        * shape.k as f64
        * params.mults_per_tile_2d() as f64
}

/// Per-stage transform FLOPs for one layer (Eq. 5).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TransformBreakdown {
    /// Data transform `T(D) = (β/m²)·N·H·W·C`.
    pub data: f64,
    /// Filter transform `T(F) = γ·C·K`.
    pub filter: f64,
    /// Inverse transform `T(I) = (δ/m²)·N·H·W·K`.
    pub inverse: f64,
}

impl TransformBreakdown {
    /// Net transform complexity `O_t` (Eq. 6).
    pub fn total(&self) -> f64 {
        self.data + self.filter + self.inverse
    }

    /// `O_t` with the filter transform excluded — the paper's deployment
    /// assumption ("filter transforms … are assumed to be precomputed",
    /// Sec. IV-A), and the accounting that reproduces Fig. 2's magnitude.
    pub fn online_total(&self) -> f64 {
        self.data + self.inverse
    }
}

impl std::ops::Add for TransformBreakdown {
    type Output = TransformBreakdown;
    fn add(self, rhs: TransformBreakdown) -> TransformBreakdown {
        TransformBreakdown {
            data: self.data + rhs.data,
            filter: self.filter + rhs.filter,
            inverse: self.inverse + rhs.inverse,
        }
    }
}

/// Evaluates Eq. 5 for one layer with per-tile costs `ops`.
pub fn transform_complexity(
    batch: usize,
    shape: &ConvShape,
    params: WinogradParams,
    ops: TransformOps,
    tiles: TileModel,
) -> TransformBreakdown {
    let n_tiles = batch as f64 * output_tiles(shape, params.m(), tiles);
    TransformBreakdown {
        data: n_tiles * shape.c as f64 * ops.beta as f64,
        filter: (shape.c * shape.k) as f64 * ops.gamma as f64,
        inverse: n_tiles * shape.k as f64 * ops.delta as f64,
    }
}

/// Parallel PE count for a multiplier budget (Eq. 8):
/// `P = ⌊m_T / (m+r−1)²⌋`.
pub fn pe_count(mult_budget: usize, params: WinogradParams) -> usize {
    mult_budget / params.mults_per_tile_2d()
}

/// Continuous PE count `P = m_T / (m+r−1)²` — the idealization behind
/// Fig. 6 (which reports 331.78 GOPS at `m = 3`, 256 multipliers, i.e.
/// `P = 10.24`).
pub fn pe_count_continuous(mult_budget: usize, params: WinogradParams) -> f64 {
    mult_budget as f64 / params.mults_per_tile_2d() as f64
}

/// Steady-state engine cycles for one layer: `N·(HW/m²)·C·K / P`
/// (the first term of Eq. 9). `p` may be fractional to reproduce Fig. 6.
pub fn engine_cycles(
    batch: usize,
    shape: &ConvShape,
    params: WinogradParams,
    p: f64,
    tiles: TileModel,
) -> f64 {
    let tile_count = batch as f64 * output_tiles(shape, params.m(), tiles);
    match tiles {
        TileModel::Fractional => tile_count * shape.c as f64 * shape.k as f64 / p,
        TileModel::Ceil => {
            // Whole kernel groups: P PEs serve P kernels concurrently.
            let groups = (shape.k as f64 / p).ceil();
            tile_count * shape.c as f64 * groups
        }
    }
}

/// Total layer latency in seconds (Eq. 9):
/// `T_t = (N·H·W·C·K/(m²·P) + D_p − 1)·t_c`.
///
/// `tiles` selects the tile-counting convention (see [`TileModel`]):
/// `Fractional` evaluates Eq. 9 exactly as the paper writes it,
/// `Ceil` the whole-tile/whole-kernel-group schedule hardware runs.
pub fn latency_seconds(
    batch: usize,
    shape: &ConvShape,
    params: WinogradParams,
    p: f64,
    pipeline_depth: usize,
    freq_hz: f64,
    tiles: TileModel,
) -> f64 {
    let cycles = engine_cycles(batch, shape, params, p, tiles) + pipeline_depth as f64 - 1.0;
    cycles / freq_hz
}

/// System throughput (Eq. 10): `O_S / T_t`, in GOPS.
pub fn throughput_gops(spatial_ops_total: f64, latency_s: f64) -> f64 {
    spatial_ops_total / latency_s / 1e9
}

/// Implementation-level transform overhead of the shared-transform design
/// (Eq. 7): `O_T = (N·H·W·C·K/m²)·(β/P + δ)`.
pub fn implementation_overhead(
    batch: usize,
    shape: &ConvShape,
    params: WinogradParams,
    ops: TransformOps,
    p: f64,
    tiles: TileModel,
) -> f64 {
    let tile_kernel_count =
        batch as f64 * output_tiles(shape, params.m(), tiles) * shape.c as f64 * shape.k as f64;
    tile_kernel_count * (ops.beta as f64 / p + ops.delta as f64)
}

/// Per-tile transform overhead of the shared-transform design relative to
/// the spatial multiplications for the same tile (Sec. IV-C): with
/// Lavin's `F(2×2,3×3)` counts and `P = 16` this is the paper's 1.5×.
pub fn overhead_ratio_shared(params: WinogradParams, ops: TransformOps, p: f64) -> f64 {
    let transform = ops.beta as f64 / p + ops.gamma as f64 + ops.delta as f64;
    transform / params.spatial_mults_per_tile_2d() as f64
}

/// Same ratio for the per-PE-transform reference design \[3\] (data
/// transform replicated in every PE): the paper's 2.33×.
pub fn overhead_ratio_per_pe(params: WinogradParams, ops: TransformOps) -> f64 {
    let transform = (ops.beta + ops.gamma + ops.delta) as f64;
    transform / params.spatial_mults_per_tile_2d() as f64
}

// --- FFT convolution cost model -------------------------------------
//
// The paper motivates Winograd *against* FFT convolution, which "shows
// savings only for high kernel sizes" (Sec. II). To let the design-space
// search arbitrate that trade per layer, the same closed-form treatment
// the Winograd engine gets above is extended to tile-wise overlap–save
// FFT convolution with an `N×N` transform: each `N×N` input window at
// stride `L = N−r+1` produces `L×L` valid outputs, the kernel spectra
// are precomputed (the analogue of the offline filter transform), and
// the per-tile online cost is two real-input 2-D FFTs (forward on the
// data, inverse on the product) plus a complex pointwise multiply over
// the Hermitian half-plane.

/// Output tiles per image for tile-wise overlap–save FFT(`n`): whole
/// `L×L` output blocks with `L = n−r+1` (the FFT analogue of
/// [`TileModel::Ceil`] — an overlap–save tiler always executes whole
/// windows).
///
/// # Panics
///
/// Panics when `n < shape.r` (no valid outputs per window).
pub fn fft_output_tiles(shape: &ConvShape, n: usize) -> f64 {
    assert!(n >= shape.r, "FFT size {n} smaller than kernel {}", shape.r);
    let l = n - shape.r + 1;
    (shape.out_h().div_ceil(l) * shape.out_w().div_ceil(l)) as f64
}

/// Real multiplications of one real-input `n×n` 2-D FFT.
///
/// A complex radix-2 `n`-point FFT costs `(n/2)·log₂n` butterflies of 4
/// real multiplications each, i.e. `2n·log₂n`; a 2-D complex transform
/// is `2n` such passes. Packing two real rows into one complex FFT (the
/// standard real-input trick — see `wino-baselines`' packing note)
/// halves that, giving `≈ 2n²·log₂n` real multiplications.
pub fn rfft2_mults(n: usize) -> f64 {
    2.0 * (n * n) as f64 * (n as f64).log2()
}

/// Online real multiplications for one layer under tile-wise
/// overlap–save real-input FFT(`n`): per tile, `C` forward transforms,
/// a `K×C` complex pointwise multiply over the `n·(n/2+1)` half-plane
/// bins (4 real multiplications per complex product), and `K` inverse
/// transforms. Kernel spectra are precomputed at prepare time and cost
/// nothing online, exactly like the Winograd filter transform.
///
/// # Panics
///
/// Panics when `n < shape.r` (via [`fft_output_tiles`]).
pub fn fft_layer_mults(batch: usize, shape: &ConvShape, n: usize) -> f64 {
    let tiles = batch as f64 * fft_output_tiles(shape, n);
    let bins = (n * (n / 2 + 1)) as f64;
    let transforms = (shape.c + shape.k) as f64 * rfft2_mults(n);
    let pointwise = (shape.c * shape.k) as f64 * bins * 4.0;
    tiles * (transforms + pointwise)
}

/// Total layer latency in seconds of an FFT(`n`) engine treated as a
/// pipelined array of `multipliers` real multipliers at `freq_hz` — the
/// FFT counterpart of [`latency_seconds`] (Eq. 9), with the same
/// `D_p − 1` pipeline-fill term.
///
/// # Panics
///
/// Panics when `n < shape.r` (via [`fft_layer_mults`]).
pub fn fft_latency_seconds(
    batch: usize,
    shape: &ConvShape,
    n: usize,
    multipliers: f64,
    pipeline_depth: usize,
    freq_hz: f64,
) -> f64 {
    let cycles = fft_layer_mults(batch, shape, n) / multipliers + pipeline_depth as f64 - 1.0;
    cycles / freq_hz
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(m: usize) -> WinogradParams {
        WinogradParams::new(m, 3).unwrap()
    }

    #[test]
    fn fft_savings_appear_only_at_high_kernel_sizes() {
        // The paper's Sec. II claim, now quantitative: at r = 3
        // Winograd F(4×4, 3×3) needs fewer multiplications than any
        // affordable FFT size, while at r = 11 the FFT decisively
        // overtakes both Winograd and direct convolution.
        let small = ConvShape::same_padded(56, 56, 64, 64, 3);
        let large = ConvShape { h: 56, w: 56, c: 64, k: 64, r: 11, stride: 1, pad: 5 };
        let f43 = winograd_mults(1, &small, WinogradParams::new(4, 3).unwrap(), TileModel::Ceil);
        let f2_11 = winograd_mults(1, &large, WinogradParams::new(2, 11).unwrap(), TileModel::Ceil);
        for n in [8, 16, 32] {
            assert!(fft_layer_mults(1, &small, n) > f43, "FFT({n}) must lose at r = 3");
        }
        assert!(fft_layer_mults(1, &large, 32) < f2_11 / 3.0, "FFT(32) must win at r = 11");
        assert!(fft_layer_mults(1, &large, 32) < spatial_mults(1, &large) as f64 / 4.0);
    }

    #[test]
    fn fft_tiles_count_whole_overlap_save_windows() {
        let s = ConvShape::same_padded(56, 56, 8, 8, 3);
        // N = 16, r = 3 → L = 14, ⌈56/14⌉² = 16 windows.
        assert_eq!(fft_output_tiles(&s, 16), 16.0);
        // Larger N amortizes better: fewer, bigger windows.
        assert_eq!(fft_output_tiles(&s, 32), 4.0);
    }

    #[test]
    #[should_panic(expected = "smaller than kernel")]
    fn fft_size_below_kernel_panics() {
        let s = ConvShape { h: 8, w: 8, c: 1, k: 1, r: 5, stride: 1, pad: 2 };
        let _ = fft_output_tiles(&s, 4);
    }

    #[test]
    fn fft_latency_matches_hand_count() {
        let s = ConvShape::same_padded(28, 28, 4, 8, 3);
        let mults = fft_layer_mults(2, &s, 16);
        let got = fft_latency_seconds(2, &s, 16, 100.0, 8, 100e6);
        assert!((got - (mults / 100.0 + 7.0) / 100e6).abs() < 1e-12);
    }

    #[test]
    fn vgg_conv1_group_mult_complexity_matches_fig1() {
        // Fig. 1, "Conv1" bar: spatial 1.936e9 mults (conv1_1 + conv1_2).
        let c11 = ConvShape::same_padded(224, 224, 3, 64, 3);
        let c12 = ConvShape::same_padded(224, 224, 64, 64, 3);
        let spatial = spatial_mults(1, &c11) + spatial_mults(1, &c12);
        assert_eq!(spatial, 1_936_392_192, "Fig. 1 spatial Conv1 = 1.936e9");

        // F(2x2,3x3): 0.861e9.
        let wino: f64 = winograd_mults(1, &c11, p(2), TileModel::Fractional)
            + winograd_mults(1, &c12, p(2), TileModel::Fractional);
        assert!((wino - 0.861e9).abs() / 0.861e9 < 0.01, "Fig. 1 F(2) Conv1, got {wino}");

        // F(7x7,3x3): 0.356e9.
        let wino7: f64 = winograd_mults(1, &c11, p(7), TileModel::Fractional)
            + winograd_mults(1, &c12, p(7), TileModel::Fractional);
        assert!((wino7 - 0.356e9).abs() / 0.356e9 < 0.01, "Fig. 1 F(7) Conv1, got {wino7}");
    }

    #[test]
    fn tile_models_agree_when_m_divides_extent() {
        let s = ConvShape::same_padded(224, 224, 8, 8, 3);
        assert_eq!(
            output_tiles(&s, 2, TileModel::Fractional),
            output_tiles(&s, 2, TileModel::Ceil)
        );
        // 224 % 3 != 0: ceil mode over-counts.
        assert!(output_tiles(&s, 3, TileModel::Ceil) > output_tiles(&s, 3, TileModel::Fractional));
    }

    #[test]
    fn spatial_ops_doubles_mults() {
        let s = ConvShape::same_padded(14, 14, 512, 512, 3);
        assert_eq!(spatial_ops(1, &s), 2 * spatial_mults(1, &s));
        assert_eq!(spatial_ops(4, &s), 4 * spatial_ops(1, &s));
    }

    #[test]
    fn transform_breakdown_eq5() {
        let s = ConvShape::same_padded(8, 8, 2, 4, 3);
        let ops = TransformOps { beta: 32, gamma: 28, delta: 24 };
        let b = transform_complexity(1, &s, p(2), ops, TileModel::Fractional);
        // tiles = 64/4 = 16
        assert_eq!(b.data, 16.0 * 2.0 * 32.0);
        assert_eq!(b.filter, 2.0 * 4.0 * 28.0);
        assert_eq!(b.inverse, 16.0 * 4.0 * 24.0);
        assert_eq!(b.total(), b.data + b.filter + b.inverse);
        assert_eq!(b.online_total(), b.data + b.inverse);
        let sum = b + b;
        assert_eq!(sum.data, 2.0 * b.data);
    }

    #[test]
    fn pe_count_eq8_matches_table2() {
        // Table II: 688 mults -> 43 PEs at m=2; 700 -> 28 at m=3; 684 -> 19 at m=4.
        assert_eq!(pe_count(688, p(2)), 43);
        assert_eq!(pe_count(700, p(3)), 28);
        assert_eq!(pe_count(684, p(4)), 19);
        // Spatial engine: 256 multipliers, 9 per PE -> 28 (Fig. 6 uses this).
        assert_eq!(pe_count(256, WinogradParams::new(1, 3).unwrap()), 28);
        assert!((pe_count_continuous(256, p(3)) - 10.24).abs() < 1e-12);
    }

    #[test]
    fn latency_eq9_reproduces_table2_conv1_for_podili() {
        // [3]: F(2x2,3x3), P = 16, 200 MHz: Conv1 = 16.81 ms.
        let c11 = ConvShape::same_padded(224, 224, 3, 64, 3);
        let c12 = ConvShape::same_padded(224, 224, 64, 64, 3);
        let f = 200e6;
        let lat: f64 = [c11, c12]
            .iter()
            .map(|s| latency_seconds(1, s, p(2), 16.0, 1, f, TileModel::Fractional))
            .sum();
        assert!((lat * 1e3 - 16.81).abs() < 0.01, "got {} ms", lat * 1e3);
    }

    #[test]
    fn throughput_eq10() {
        // 30.69 GOP in 49.57 ms -> 619.2 GOPS (Table II, [3]^a column).
        let gops = throughput_gops(30.69e9, 49.57e-3);
        assert!((gops - 619.2).abs() < 1.0, "got {gops}");
    }

    #[test]
    fn section_iv_c_overhead_ratios() {
        // Paper: "for F(2x2,3x3) using 16 parallel PEs, the increase in
        // transform complexity of our design relative to spatial
        // convolutions is only 1.5x while for [3] this increase is 2.33x".
        let ops = TransformOps::LAVIN_F2X2_3X3;
        let ours = overhead_ratio_shared(p(2), ops, 16.0);
        let theirs = overhead_ratio_per_pe(p(2), ops);
        assert!((ours - 1.5).abs() < 1e-12, "got {ours}");
        assert!((theirs - 7.0 / 3.0).abs() < 1e-12, "got {theirs}");
    }

    #[test]
    fn implementation_overhead_eq7_scales_with_p() {
        let s = ConvShape::same_padded(56, 56, 128, 128, 3);
        let ops = TransformOps { beta: 32, gamma: 28, delta: 24 };
        let o16 = implementation_overhead(1, &s, p(2), ops, 16.0, TileModel::Fractional);
        let o32 = implementation_overhead(1, &s, p(2), ops, 32.0, TileModel::Fractional);
        assert!(o32 < o16, "amortizing over more PEs reduces overhead");
        // In the P -> infinity limit only delta remains.
        let o_inf = implementation_overhead(1, &s, p(2), ops, 1e12, TileModel::Fractional);
        let tiles = 56.0 * 56.0 / 4.0 * 128.0 * 128.0;
        assert!((o_inf - tiles * 24.0).abs() / o_inf < 1e-9);
    }

    #[test]
    fn engine_cycles_ceil_mode_counts_kernel_groups() {
        let s = ConvShape::same_padded(8, 8, 4, 10, 3);
        // m=2: 16 tiles; K=10 with P=4 -> 3 groups; C=4.
        let cycles = engine_cycles(1, &s, p(2), 4.0, TileModel::Ceil);
        assert_eq!(cycles, 16.0 * 4.0 * 3.0);
        let frac = engine_cycles(1, &s, p(2), 4.0, TileModel::Fractional);
        assert_eq!(frac, 16.0 * 4.0 * 10.0 / 4.0);
    }
}
