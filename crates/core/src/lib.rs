//! # wino-core
//!
//! The primary contribution of *"Towards Design Space Exploration and
//! Optimization of Fast Algorithms for CNNs on FPGAs"* (Ahmad & Pasha,
//! DATE 2019), as a library:
//!
//! * **Exact transform generation** — [`TransformSet`] builds the Winograd
//!   matrices `(Aᵀ, G, Bᵀ)` for any `F(m, r)` with the Cook–Toom method
//!   over rationals and proves the bilinear identity before returning.
//! * **Fast convolution** — [`WinogradAlgorithm`] runs 1-D/2-D minimal
//!   filtering and full tiled layer convolution over `f32`, `f64`, exact
//!   rationals or fixed point.
//! * **Complexity models** — Eqs. 4–10 of the paper (multiplication
//!   complexity, transform complexity, PE count, latency, throughput) as
//!   closed forms, plus derivation of the β/γ/δ transform FLOP constants
//!   from the matrices themselves.
//! * **Workloads** — [`Workload`] aggregates named layers into the
//!   per-group and whole-network quantities the paper reports.
//!
//! ```
//! use wino_core::{CostModel, TransformSet, WinogradParams, transform_ops_2d};
//!
//! // F(4x4, 3x3): 36 multiplies replace 144 — at a transform cost we can
//! // quantify exactly.
//! let params = WinogradParams::new(4, 3)?;
//! let set = TransformSet::generate(params)?;
//! assert_eq!(params.mults_per_tile_2d(), 36);
//! assert_eq!(params.spatial_mults_per_tile_2d(), 144);
//! let ops = transform_ops_2d(&set, CostModel::Naive);
//! assert!(ops.beta > 0 && ops.delta > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
mod complexity;
mod cse;
mod fast;
mod filtering;
mod layer;
mod opcount;
mod transform;
mod workload;

pub use analysis::{error_growth, random_matrix, ErrorGrowthPoint};
pub use complexity::{
    engine_cycles, fft_latency_seconds, fft_layer_mults, fft_output_tiles, implementation_overhead,
    latency_seconds, output_tiles, overhead_ratio_per_pe, overhead_ratio_shared, pe_count,
    pe_count_continuous, rfft2_mults, spatial_mults, spatial_ops, throughput_gops,
    transform_complexity, winograd_mults, TileModel, TransformBreakdown,
};
pub use cse::{cse_optimize, transform_ops_2d_cse, CseResult};
pub use fast::{
    f23_data_transform, f23_inverse_transform, f23_kernel_transform, f43_data_transform,
    f43_inverse_transform, f43_kernel_transform, fast_convolve_layer, FastKernel,
};
pub use filtering::{direct_correlate_1d, WinogradAlgorithm};
pub use layer::{ConvShape, ParamError, WinogradParams};
pub use opcount::{
    matrix_apply_ops, transform_ops_2d, transform_ops_for, CostModel, OpCount, TransformOps,
};
pub use transform::{canonical_points, lavin, RealTransforms, TransformError, TransformSet};
pub use workload::{Layer, Workload};

/// Re-export of the numeric substrate for downstream convenience.
pub use wino_tensor as tensor;
