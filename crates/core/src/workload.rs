//! Multi-layer workloads: named convolution layers with group structure.
//!
//! The paper reports everything at two granularities — per "group layer"
//! (Conv1…Conv5 of VGG16-D, Fig. 1 and the latency rows of Table II) and
//! whole-network (Fig. 2/3/6, throughput rows). [`Workload`] carries both.

use crate::{
    spatial_mults, spatial_ops, transform_complexity, winograd_mults, ConvShape, TileModel,
    TransformBreakdown, TransformOps, WinogradParams,
};
use std::fmt;

/// One named convolutional layer inside a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Layer name, e.g. `"conv4_2"`.
    pub name: String,
    /// Reporting group, e.g. `"Conv4"` (the paper's group layers).
    pub group: String,
    /// Geometry.
    pub shape: ConvShape,
}

/// A named sequence of convolutional layers evaluated together.
///
/// ```
/// use wino_core::{ConvShape, Workload};
///
/// let mut wl = Workload::new("toy", 1);
/// wl.push("conv1", "Conv1", ConvShape::same_padded(8, 8, 3, 16, 3));
/// wl.push("conv2", "Conv2", ConvShape::same_padded(4, 4, 16, 32, 3));
/// assert_eq!(wl.layers().len(), 2);
/// assert!(wl.spatial_gop() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    name: String,
    batch: usize,
    layers: Vec<Layer>,
}

impl Workload {
    /// Creates an empty workload with minibatch size `batch` (the paper's
    /// `N`; Table II uses `N = 1`).
    pub fn new(name: impl Into<String>, batch: usize) -> Workload {
        Workload { name: name.into(), batch, layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, name: impl Into<String>, group: impl Into<String>, shape: ConvShape) {
        self.layers.push(Layer { name: name.into(), group: group.into(), shape });
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Minibatch size `N`.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Groups in first-appearance order, each with its member layers.
    pub fn groups(&self) -> Vec<(&str, Vec<&Layer>)> {
        let mut out: Vec<(&str, Vec<&Layer>)> = Vec::new();
        for layer in &self.layers {
            match out.iter_mut().find(|(g, _)| *g == layer.group) {
                Some((_, members)) => members.push(layer),
                None => out.push((&layer.group, vec![layer])),
            }
        }
        out
    }

    /// Total spatial-convolution multiplications (Eq. 4, `m = 1`).
    pub fn spatial_mults(&self) -> u128 {
        self.layers.iter().map(|l| spatial_mults(self.batch, &l.shape)).sum()
    }

    /// Total spatial operations `O_S` (multiply + add).
    pub fn spatial_ops(&self) -> u128 {
        self.layers.iter().map(|l| spatial_ops(self.batch, &l.shape)).sum()
    }

    /// `O_S` in GOP — the paper's "30.69 GOP" for VGG16-D.
    pub fn spatial_gop(&self) -> f64 {
        self.spatial_ops() as f64 / 1e9
    }

    /// Total element-wise–stage multiplications under `F(m×m, r×r)`
    /// (Eq. 4 summed over layers).
    pub fn winograd_mults(&self, params: WinogradParams, tiles: TileModel) -> f64 {
        self.layers.iter().map(|l| winograd_mults(self.batch, &l.shape, params, tiles)).sum()
    }

    /// Net transform complexity (Eq. 5–6 summed over layers).
    pub fn transform_complexity(
        &self,
        params: WinogradParams,
        ops: TransformOps,
        tiles: TileModel,
    ) -> TransformBreakdown {
        self.layers
            .iter()
            .map(|l| transform_complexity(self.batch, &l.shape, params, ops, tiles))
            .fold(TransformBreakdown::default(), |acc, b| acc + b)
    }

    /// Per-group multiplication complexity: the series of one Fig. 1 bar
    /// color. `m = 1` gives the spatial bars.
    pub fn group_mults(&self, params: WinogradParams, tiles: TileModel) -> Vec<(String, f64)> {
        self.groups()
            .into_iter()
            .map(|(g, layers)| {
                let total = layers
                    .iter()
                    .map(|l| winograd_mults(self.batch, &l.shape, params, tiles))
                    .sum();
                (g.to_owned(), total)
            })
            .collect()
    }

    /// Per-group latency in seconds (Eq. 9 summed within groups; the
    /// pipeline-fill term is charged once per layer).
    pub fn group_latency_seconds(
        &self,
        params: WinogradParams,
        p: f64,
        pipeline_depth: usize,
        freq_hz: f64,
        tiles: TileModel,
    ) -> Vec<(String, f64)> {
        self.groups()
            .into_iter()
            .map(|(g, layers)| {
                let total = layers
                    .iter()
                    .map(|l| {
                        crate::latency_seconds(
                            self.batch,
                            &l.shape,
                            params,
                            p,
                            pipeline_depth,
                            freq_hz,
                            tiles,
                        )
                    })
                    .sum();
                (g.to_owned(), total)
            })
            .collect()
    }

    /// Whole-workload latency in seconds.
    pub fn latency_seconds(
        &self,
        params: WinogradParams,
        p: f64,
        pipeline_depth: usize,
        freq_hz: f64,
        tiles: TileModel,
    ) -> f64 {
        self.group_latency_seconds(params, p, pipeline_depth, freq_hz, tiles)
            .into_iter()
            .map(|(_, s)| s)
            .sum()
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} (N={}, {} conv layers):", self.name, self.batch, self.layers.len())?;
        for l in &self.layers {
            writeln!(f, "  {:<10} [{}] {}", l.name, l.group, l.shape)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Workload {
        let mut wl = Workload::new("toy", 2);
        wl.push("a1", "A", ConvShape::same_padded(8, 8, 3, 4, 3));
        wl.push("a2", "A", ConvShape::same_padded(8, 8, 4, 4, 3));
        wl.push("b1", "B", ConvShape::same_padded(4, 4, 4, 8, 3));
        wl
    }

    #[test]
    fn groups_preserve_order_and_membership() {
        let wl = toy();
        let groups = wl.groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "A");
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(groups[1].0, "B");
        assert_eq!(groups[1].1[0].name, "b1");
    }

    #[test]
    fn totals_sum_layers_and_scale_with_batch() {
        let wl = toy();
        let per_layer: u128 = wl.layers().iter().map(|l| spatial_mults(2, &l.shape)).sum();
        assert_eq!(wl.spatial_mults(), per_layer);
        assert_eq!(wl.spatial_ops(), 2 * per_layer);

        let mut single = Workload::new("toy1", 1);
        for l in wl.layers() {
            single.push(l.name.clone(), l.group.clone(), l.shape);
        }
        assert_eq!(wl.spatial_mults(), 2 * single.spatial_mults());
    }

    #[test]
    fn group_mults_cover_all_layers() {
        let wl = toy();
        let p = WinogradParams::new(2, 3).unwrap();
        let by_group: f64 =
            wl.group_mults(p, TileModel::Fractional).into_iter().map(|(_, v)| v).sum();
        assert!((by_group - wl.winograd_mults(p, TileModel::Fractional)).abs() < 1e-9);
    }

    #[test]
    fn latency_decomposes_over_groups() {
        let wl = toy();
        let p = WinogradParams::new(2, 3).unwrap();
        let groups = wl.group_latency_seconds(p, 4.0, 10, 100e6, TileModel::Fractional);
        let total: f64 = groups.iter().map(|(_, s)| s).sum();
        assert!(
            (total - wl.latency_seconds(p, 4.0, 10, 100e6, TileModel::Fractional)).abs() < 1e-15
        );
        assert!(total > 0.0);
    }

    #[test]
    fn transform_complexity_sums() {
        let wl = toy();
        let p = WinogradParams::new(2, 3).unwrap();
        let ops = TransformOps { beta: 32, gamma: 28, delta: 24 };
        let b = wl.transform_complexity(p, ops, TileModel::Fractional);
        assert!(b.data > 0.0 && b.filter > 0.0 && b.inverse > 0.0);
        assert_eq!(b.total(), b.data + b.filter + b.inverse);
    }

    #[test]
    fn display_lists_layers() {
        let text = toy().to_string();
        assert!(text.contains("toy (N=2, 3 conv layers)"));
        assert!(text.contains("a1"));
        assert!(text.contains("[B]"));
    }
}
