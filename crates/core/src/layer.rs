//! Convolutional-layer shape descriptors and Winograd algorithm parameters.

use std::fmt;

/// Shape of a single convolutional layer (one image of the minibatch).
///
/// Follows the paper's Sec. II notation: input feature map `H × W × C`,
/// `K` kernels of `r × r × C`. `stride`/`pad` generalize beyond the paper
/// (VGG16-D uses stride 1, pad 1 everywhere).
///
/// ```
/// use wino_core::ConvShape;
///
/// let conv1_1 = ConvShape::same_padded(224, 224, 3, 64, 3);
/// assert_eq!(conv1_1.out_h(), 224);
/// assert_eq!(conv1_1.out_w(), 224);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Input feature-map height `H`.
    pub h: usize,
    /// Input feature-map width `W`.
    pub w: usize,
    /// Input channels `C`.
    pub c: usize,
    /// Number of kernels (output channels) `K`.
    pub k: usize,
    /// Kernel side `r` (square kernels).
    pub r: usize,
    /// Convolution stride (Winograd engines require 1).
    pub stride: usize,
    /// Symmetric zero padding.
    pub pad: usize,
}

impl ConvShape {
    /// A stride-1 layer with "same" padding `(r − 1)/2`, the VGG16-D case.
    pub fn same_padded(h: usize, w: usize, c: usize, k: usize, r: usize) -> ConvShape {
        ConvShape { h, w, c, k, r, stride: 1, pad: (r - 1) / 2 }
    }

    /// A stride-1 layer with no padding ("valid" convolution).
    pub fn valid(h: usize, w: usize, c: usize, k: usize, r: usize) -> ConvShape {
        ConvShape { h, w, c, k, r, stride: 1, pad: 0 }
    }

    /// Output feature-map height.
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad - self.r) / self.stride + 1
    }

    /// Output feature-map width.
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.r) / self.stride + 1
    }

    /// Output pixels per image per kernel.
    pub fn out_pixels(&self) -> u128 {
        self.out_h() as u128 * self.out_w() as u128
    }

    /// `true` when a Winograd engine can run this layer (unit stride).
    pub fn winograd_compatible(&self) -> bool {
        self.stride == 1
    }
}

impl fmt::Display for ConvShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{} -> {} kernels {}x{} (stride {}, pad {})",
            self.h, self.w, self.c, self.k, self.r, self.r, self.stride, self.pad
        )
    }
}

/// Error returned for invalid `F(m, r)` parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// `m` must be at least 1.
    ZeroOutputTile,
    /// `r` must be at least 1.
    ZeroKernel,
    /// The parameters are too large for exact `i128` transform generation.
    TooLarge {
        /// Requested output tile size.
        m: usize,
        /// Requested kernel size.
        r: usize,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::ZeroOutputTile => write!(f, "output tile size m must be >= 1"),
            ParamError::ZeroKernel => write!(f, "kernel size r must be >= 1"),
            ParamError::TooLarge { m, r } => {
                write!(f, "F({m}, {r}) exceeds the supported transform size (m + r - 1 <= 16)")
            }
        }
    }
}

impl std::error::Error for ParamError {}

/// Parameters of a Winograd minimal filtering algorithm `F(m, r)`
/// (1-D) or `F(m×m, r×r)` (2-D, by nesting).
///
/// `m` is the output tile size, `r` the kernel size; the algorithm uses
/// `n = m + r − 1` multiplications per 1-D application and `n²` per 2-D
/// tile (Sec. II-B of the paper).
///
/// ```
/// use wino_core::WinogradParams;
///
/// let p = WinogradParams::new(4, 3)?;
/// assert_eq!(p.input_tile(), 6);
/// assert_eq!(p.mults_per_tile_2d(), 36);
/// assert_eq!(p.to_string(), "F(4x4, 3x3)");
/// # Ok::<(), wino_core::ParamError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WinogradParams {
    m: usize,
    r: usize,
}

impl WinogradParams {
    /// Creates parameters for `F(m, r)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when `m` or `r` is zero, or when
    /// `m + r − 1 > 16` (beyond which exact generation and fp32 evaluation
    /// are both meaningless — the paper stops at `m = 7`).
    pub fn new(m: usize, r: usize) -> Result<WinogradParams, ParamError> {
        if m == 0 {
            return Err(ParamError::ZeroOutputTile);
        }
        if r == 0 {
            return Err(ParamError::ZeroKernel);
        }
        if m + r - 1 > 16 {
            return Err(ParamError::TooLarge { m, r });
        }
        Ok(WinogradParams { m, r })
    }

    /// Output tile size `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Kernel size `r`.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Input tile size `n = m + r − 1` (also multiplications per 1-D tile).
    pub fn input_tile(&self) -> usize {
        self.m + self.r - 1
    }

    /// Multiplications per 2-D output tile, `(m + r − 1)²` — the number of
    /// multipliers one PE instantiates (Sec. III-A).
    pub fn mults_per_tile_2d(&self) -> usize {
        self.input_tile() * self.input_tile()
    }

    /// Output pixels per 2-D tile, `m²`.
    pub fn outputs_per_tile_2d(&self) -> usize {
        self.m * self.m
    }

    /// Multiplications a spatial convolution needs for the same `m²`
    /// outputs: `m² r²`.
    pub fn spatial_mults_per_tile_2d(&self) -> usize {
        self.m * self.m * self.r * self.r
    }
}

impl fmt::Display for WinogradParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F({m}x{m}, {r}x{r})", m = self.m, r = self.r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_padding_preserves_dims() {
        let s = ConvShape::same_padded(224, 224, 64, 64, 3);
        assert_eq!(s.out_h(), 224);
        assert_eq!(s.out_w(), 224);
        assert_eq!(s.out_pixels(), 224 * 224);
        assert!(s.winograd_compatible());
    }

    #[test]
    fn valid_padding_shrinks_dims() {
        let s = ConvShape::valid(8, 10, 1, 1, 3);
        assert_eq!(s.out_h(), 6);
        assert_eq!(s.out_w(), 8);
    }

    #[test]
    fn strided_layers_are_not_winograd_compatible() {
        let mut s = ConvShape::same_padded(56, 56, 64, 64, 3);
        s.stride = 2;
        assert!(!s.winograd_compatible());
        assert_eq!(s.out_h(), 28);
    }

    #[test]
    fn params_accessors() {
        let p = WinogradParams::new(2, 3).unwrap();
        assert_eq!(p.m(), 2);
        assert_eq!(p.r(), 3);
        assert_eq!(p.input_tile(), 4);
        assert_eq!(p.mults_per_tile_2d(), 16);
        assert_eq!(p.outputs_per_tile_2d(), 4);
        assert_eq!(p.spatial_mults_per_tile_2d(), 36);
    }

    #[test]
    fn params_validation() {
        assert_eq!(WinogradParams::new(0, 3), Err(ParamError::ZeroOutputTile));
        assert_eq!(WinogradParams::new(2, 0), Err(ParamError::ZeroKernel));
        assert!(matches!(WinogradParams::new(15, 3), Err(ParamError::TooLarge { .. })));
        assert!(WinogradParams::new(14, 3).is_ok());
    }

    #[test]
    fn display_formats() {
        assert_eq!(WinogradParams::new(3, 3).unwrap().to_string(), "F(3x3, 3x3)");
        let s = ConvShape::same_padded(14, 14, 512, 512, 3);
        assert!(s.to_string().contains("14x14x512"));
    }

    #[test]
    fn paper_pe_multiplier_counts() {
        // Sec. IV-A: F(3x3,3x3) uses 25 multipliers per PE, 9 outputs/cycle;
        // [3]'s F(2x2,3x3) uses 16 and 4. Ratios 1.56x and 2.25x.
        let ours = WinogradParams::new(3, 3).unwrap();
        let podili = WinogradParams::new(2, 3).unwrap();
        assert_eq!(ours.mults_per_tile_2d(), 25);
        assert_eq!(podili.mults_per_tile_2d(), 16);
        let mult_ratio = ours.mults_per_tile_2d() as f64 / podili.mults_per_tile_2d() as f64;
        let thr_ratio = ours.outputs_per_tile_2d() as f64 / podili.outputs_per_tile_2d() as f64;
        assert!((mult_ratio - 1.5625).abs() < 1e-12);
        assert!((thr_ratio - 2.25).abs() < 1e-12);
    }
}
