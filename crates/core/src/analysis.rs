//! Numerical-accuracy analysis of Winograd filtering.
//!
//! The paper runs its datapath in fp32 "for the sake of simplicity and
//! high precision" and leaves quantization unstudied. This module
//! quantifies what that choice costs: Winograd output error grows with the
//! tile size `m` because larger interpolation points make the transform
//! matrices worse conditioned (see
//! [`TransformSet::max_abs_entry`](crate::TransformSet::max_abs_entry)).

use crate::{TransformSet, WinogradAlgorithm, WinogradParams};
use wino_tensor::{ErrorStats, Scalar, SplitMix64, Tensor2};

/// Error statistics of `F(m×m, r×r)` against an `f64` direct-convolution
/// reference for one `m`.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorGrowthPoint {
    /// Output tile size `m`.
    pub m: usize,
    /// Largest |transform matrix entry| (conditioning proxy).
    pub max_transform_entry: f64,
    /// Error of the fp32 Winograd pipeline vs the fp64 direct reference.
    pub stats: ErrorStats,
}

/// Measures fp32 Winograd error growth over `ms` for kernel size `r`,
/// averaging `trials` random tiles per configuration.
///
/// The reference is direct correlation computed in `f64`; inputs are
/// uniform in `[-1, 1]` (activations) and `[-1, 1]` scaled by `1/r²`
/// (weights), the regime CNN inference lives in.
///
/// # Panics
///
/// Panics if `ms` contains invalid parameters or `trials == 0`.
pub fn error_growth(r: usize, ms: &[usize], trials: usize, seed: u64) -> Vec<ErrorGrowthPoint> {
    assert!(trials > 0, "at least one trial is required");
    let mut rng = SplitMix64::new(seed);
    ms.iter()
        .map(|&m| {
            let params = WinogradParams::new(m, r).expect("invalid F(m, r)");
            let set = TransformSet::generate(params).expect("generation cannot fail");
            let algo = WinogradAlgorithm::<f32>::new(&set);
            let n = params.input_tile();
            let mut candidate = Vec::with_capacity(trials * m * m);
            let mut reference = Vec::with_capacity(trials * m * m);
            for _ in 0..trials {
                let tile32 = Tensor2::from_fn(n, n, |_, _| rng.uniform_f32(-1.0, 1.0));
                let kernel32 =
                    Tensor2::from_fn(r, r, |_, _| rng.uniform_f32(-1.0, 1.0) / (r * r) as f32);
                let y = algo.convolve_tile(&tile32, &kernel32);
                candidate.extend_from_slice(y.as_slice());
                // fp64 direct correlation of the same data.
                for oy in 0..m {
                    for ox in 0..m {
                        let mut acc = 0f64;
                        for v in 0..r {
                            for u in 0..r {
                                acc += tile32[(oy + v, ox + u)] as f64 * kernel32[(v, u)] as f64;
                            }
                        }
                        reference.push(acc as f32);
                    }
                }
            }
            ErrorGrowthPoint {
                m,
                max_transform_entry: set.max_abs_entry().to_f64(),
                stats: ErrorStats::between(&candidate, &reference),
            }
        })
        .collect()
}

/// Convenience: fills a matrix with uniform values from a seeded RNG
/// (shared by examples and benches).
pub fn random_matrix<T: Scalar>(
    rows: usize,
    cols: usize,
    rng: &mut SplitMix64,
    lo: f32,
    hi: f32,
) -> Tensor2<T> {
    Tensor2::from_fn(rows, cols, |_, _| T::from_f64(rng.uniform_f32(lo, hi) as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_grows_from_small_to_large_tiles() {
        let points = error_growth(3, &[2, 4, 6, 8], 64, 7);
        assert_eq!(points.len(), 4);
        // Conditioning proxy grows monotonically.
        for w in points.windows(2) {
            assert!(
                w[1].max_transform_entry >= w[0].max_transform_entry,
                "conditioning should degrade with m"
            );
        }
        // Error at m=8 is clearly worse than at m=2 (orders of magnitude in
        // practice; we assert a conservative factor).
        let e2 = points[0].stats.max_abs;
        let e8 = points[3].stats.max_abs;
        assert!(e8 > 2.0 * e2, "m=8 error {e8} should exceed 2x m=2 error {e2}");
    }

    #[test]
    fn errors_stay_tiny_in_paper_range() {
        // For the paper's m = 2..4 the fp32 error is ~1e-6 — negligible.
        for p in error_growth(3, &[2, 3, 4], 32, 11) {
            assert!(p.stats.max_abs < 1e-4, "m={}: {}", p.m, p.stats);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = error_growth(3, &[2, 3], 8, 42);
        let b = error_growth(3, &[2, 3], 8, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn random_matrix_in_range() {
        let mut rng = SplitMix64::new(5);
        let m: Tensor2<f32> = random_matrix(4, 4, &mut rng, -2.0, 2.0);
        assert!(m.as_slice().iter().all(|&x| (-2.0..2.0).contains(&x)));
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let _ = error_growth(3, &[2], 0, 0);
    }
}
