//! # wino-baselines
//!
//! The comparison algorithms for the `winofpga` reproduction of Ahmad &
//! Pasha (DATE 2019):
//!
//! * [`spatial_convolve`] — direct spatial convolution (paper Eq. 1), the
//!   correctness oracle for everything else;
//! * [`im2col_convolve`] — im2col + blocked [`gemm`], the classic lowering
//!   the pre-Winograd cuDNN used;
//! * [`fft_convolve`] — FFT-based convolution with an own radix-2
//!   [`fft_in_place`], reproducing the paper's claim that FFT convolution
//!   only pays off for large kernels ([`fft_conv_complexity`]).
//!
//! ```
//! use wino_baselines::{im2col_convolve, spatial_convolve};
//! use wino_tensor::{Shape4, Tensor4};
//!
//! let x = Tensor4::from_fn(Shape4 { n: 1, c: 1, h: 4, w: 4 }, |_, _, h, w| (h + w) as f32);
//! let k = Tensor4::from_fn(Shape4 { n: 1, c: 1, h: 3, w: 3 }, |_, _, _, _| 1.0f32);
//! assert_eq!(
//!     spatial_convolve(&x, &k, 1).as_slice(),
//!     im2col_convolve(&x, &k, 1).as_slice(),
//! );
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod fft;
mod gemm;
mod im2col;
mod spatial;

pub use fft::{fft_conv_complexity, fft_convolve, fft_in_place, Complex, FftPlan};
pub use gemm::gemm;
pub use im2col::{im2col, im2col_convolve};
pub use spatial::{spatial_convolve, spatial_convolve_strided};
