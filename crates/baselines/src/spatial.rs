//! Direct spatial convolution (paper Eq. 1) — the ground-truth oracle.
//!
//! `Y[i,k,x,y] = Σ_c Σ_v Σ_u D[i,c,x+u,y+v] · G[k,c,u,v]`, computed
//! exactly as written. Every fast algorithm in the workspace is validated
//! against this implementation.

use wino_tensor::{Scalar, Shape4, Tensor4};

/// Direct spatial convolution with unit stride.
///
/// `input` is `(N, C, H, W)`, `kernels` `(K, C, r, r)`; output is
/// `(N, K, H+2·pad−r+1, W+2·pad−r+1)`. Out-of-bounds reads are zero.
///
/// ```
/// use wino_baselines::spatial_convolve;
/// use wino_tensor::{Shape4, Tensor4};
///
/// let input = Tensor4::from_fn(Shape4 { n: 1, c: 1, h: 3, w: 3 }, |_, _, h, w| (h * 3 + w) as f32);
/// let id = Tensor4::from_fn(Shape4 { n: 1, c: 1, h: 3, w: 3 }, |_, _, h, w| {
///     if h == 1 && w == 1 { 1.0f32 } else { 0.0 }
/// });
/// // Identity kernel with same-padding returns the input.
/// let out = spatial_convolve(&input, &id, 1);
/// assert_eq!(out.as_slice(), input.as_slice());
/// ```
///
/// # Panics
///
/// Panics if channel counts disagree, kernels are not square, or the
/// padded input is smaller than the kernel.
pub fn spatial_convolve<T: Scalar>(
    input: &Tensor4<T>,
    kernels: &Tensor4<T>,
    pad: usize,
) -> Tensor4<T> {
    spatial_convolve_strided(input, kernels, pad, 1)
}

/// Direct spatial convolution with arbitrary stride (the general Eq. 1;
/// strided layers are the ones a Winograd engine must fall back on).
///
/// # Panics
///
/// See [`spatial_convolve`]; additionally panics if `stride == 0`.
pub fn spatial_convolve_strided<T: Scalar>(
    input: &Tensor4<T>,
    kernels: &Tensor4<T>,
    pad: usize,
    stride: usize,
) -> Tensor4<T> {
    let is = input.shape();
    let ks = kernels.shape();
    assert!(stride > 0, "stride must be positive");
    assert_eq!(is.c, ks.c, "input and kernel channel counts must match");
    assert_eq!(ks.h, ks.w, "kernels must be square");
    assert!(is.h + 2 * pad >= ks.h && is.w + 2 * pad >= ks.w, "input too small for kernel");
    let r = ks.h;
    let out_h = (is.h + 2 * pad - r) / stride + 1;
    let out_w = (is.w + 2 * pad - r) / stride + 1;

    Tensor4::from_fn(Shape4 { n: is.n, c: ks.n, h: out_h, w: out_w }, |n, k, y, x| {
        let mut acc = T::zero();
        for c in 0..is.c {
            for v in 0..r {
                for u in 0..r {
                    let iy = (y * stride + v) as isize - pad as isize;
                    let ix = (x * stride + u) as isize - pad as isize;
                    if iy >= 0 && ix >= 0 && (iy as usize) < is.h && (ix as usize) < is.w {
                        acc += input.at(n, c, iy as usize, ix as usize) * kernels.at(k, c, v, u);
                    }
                }
            }
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_tensor::ratio;
    use wino_tensor::Ratio;

    #[test]
    fn hand_computed_1x1_channel_sum() {
        // 1x1 kernels of all ones sum the channels.
        let input =
            Tensor4::from_fn(Shape4 { n: 1, c: 3, h: 2, w: 2 }, |_, c, _, _| (c + 1) as f32);
        let kernels = Tensor4::from_fn(Shape4 { n: 1, c: 3, h: 1, w: 1 }, |_, _, _, _| 1.0f32);
        let out = spatial_convolve(&input, &kernels, 0);
        assert_eq!(out.as_slice(), &[6.0; 4]);
    }

    #[test]
    fn valid_3x3_single_position() {
        let input = Tensor4::from_fn(Shape4 { n: 1, c: 1, h: 3, w: 3 }, |_, _, h, w| {
            (h * 3 + w + 1) as f32
        });
        let kernels = Tensor4::from_fn(Shape4 { n: 1, c: 1, h: 3, w: 3 }, |_, _, _, _| 1.0f32);
        let out = spatial_convolve(&input, &kernels, 0);
        assert_eq!(out.shape(), Shape4 { n: 1, c: 1, h: 1, w: 1 });
        assert_eq!(out.at(0, 0, 0, 0), 45.0);
    }

    #[test]
    fn padding_zero_extends() {
        let input = Tensor4::from_fn(Shape4 { n: 1, c: 1, h: 1, w: 1 }, |_, _, _, _| 2.0f32);
        let kernels =
            Tensor4::from_fn(Shape4 { n: 1, c: 1, h: 3, w: 3 }, |_, _, h, w| (h * 3 + w) as f32);
        let out = spatial_convolve(&input, &kernels, 1);
        // Only the kernel center (weight 4) overlaps the single pixel.
        assert_eq!(out.shape(), Shape4 { n: 1, c: 1, h: 1, w: 1 });
        assert_eq!(out.at(0, 0, 0, 0), 8.0);
    }

    #[test]
    fn stride_two_subsamples() {
        let input =
            Tensor4::from_fn(Shape4 { n: 1, c: 1, h: 5, w: 5 }, |_, _, h, w| (h * 5 + w) as f32);
        let center = Tensor4::from_fn(Shape4 { n: 1, c: 1, h: 1, w: 1 }, |_, _, _, _| 1.0f32);
        let out = spatial_convolve_strided(&input, &center, 0, 2);
        assert_eq!(out.shape(), Shape4 { n: 1, c: 1, h: 3, w: 3 });
        assert_eq!(out.at(0, 0, 1, 1), 12.0);
        assert_eq!(out.at(0, 0, 2, 2), 24.0);
    }

    #[test]
    fn exact_rational_linearity() {
        // conv(a + b) = conv(a) + conv(b), exactly.
        let shape = Shape4 { n: 1, c: 2, h: 4, w: 4 };
        let a = Tensor4::from_fn(shape, |_, c, h, w| ratio((c + h + w) as i128, 3));
        let b = Tensor4::from_fn(shape, |_, c, h, w| ratio((c * h) as i128 - w as i128, 2));
        let sum = Tensor4::from_fn(shape, |n, c, h, w| a.at(n, c, h, w) + b.at(n, c, h, w));
        let kernels = Tensor4::from_fn(Shape4 { n: 2, c: 2, h: 3, w: 3 }, |k, c, h, w| {
            ratio((k + c + h * w) as i128, 1)
        });
        let ca = spatial_convolve(&a, &kernels, 1);
        let cb = spatial_convolve(&b, &kernels, 1);
        let cs = spatial_convolve(&sum, &kernels, 1);
        let recombined =
            Tensor4::from_fn(cs.shape(), |n, k, h, w| ca.at(n, k, h, w) + cb.at(n, k, h, w));
        assert_eq!(cs, recombined);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_kernel_panics() {
        let input = Tensor4::<f32>::zeros(Shape4 { n: 1, c: 1, h: 4, w: 4 });
        let kernels = Tensor4::<f32>::zeros(Shape4 { n: 1, c: 1, h: 3, w: 2 });
        let _ = spatial_convolve(&input, &kernels, 0);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        let input = Tensor4::<Ratio>::zeros(Shape4 { n: 1, c: 1, h: 4, w: 4 });
        let kernels = Tensor4::<Ratio>::zeros(Shape4 { n: 1, c: 1, h: 3, w: 3 });
        let _ = spatial_convolve_strided(&input, &kernels, 0, 0);
    }
}
