//! FFT-based convolution — the other "fast convolution" family.
//!
//! The paper (Sec. I/II-C, citing Vasilache et al.) argues FFT
//! convolutions "show savings only for high kernel sizes and are not
//! applicable to most layers of modern CNNs". This module implements a
//! radix-2 complex FFT and 2-D FFT convolution so that claim is
//! reproducible: [`fft_conv_complexity`] vs the Winograd/spatial counts
//! shows the crossover as `r` grows.
//!
//! The prepare-once state — twiddle factors for every butterfly stage
//! and the flipped kernel spectra — is computed exactly once per
//! [`fft_convolve`] call (see [`FftPlan`]), not per image or per stage,
//! so the reference is an honest baseline for the prepared
//! `wino-exec::PreparedFft` backend.
//!
//! **Real-input packing note.** This reference transforms each real
//! plane as a full complex FFT for clarity, spending twice the
//! arithmetic a real-input transform needs: two real rows can ride one
//! complex FFT (pack `z = a + i·b`, then split `A[v] = (Z[v] +
//! conj(Z[n−v]))/2`, `B[v] = (Z[v] − conj(Z[n−v]))/(2i)`), and Hermitian
//! symmetry `F(u, v) = conj(F(−u, −v))` means only the `n·(n/2+1)`
//! half-plane bins need storing or multiplying. The prepared backend
//! and the `fft_layer_mults` cost model in `wino-core` both use that
//! packing; this module documents it but keeps the straightforward
//! complex path as the oracle.

use wino_tensor::{Shape4, Tensor4};

/// A complex number over `f64` (FFT-internal precision).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

/// Precomputed twiddle tables for radix-2 FFTs of one length — the
/// prepare-once half of the reference path.
///
/// The naive iterative FFT recomputes `cos`/`sin` per butterfly stage
/// and grows each stage's twiddle by repeated complex multiplication on
/// **every call**; a convolution makes thousands of calls over the same
/// length. An `FftPlan` tabulates every stage's twiddle powers once
/// (directly from `cos`/`sin`, which is also more accurate than the
/// repeated-product recurrence) and [`FftPlan::run`] reuses them.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Forward twiddles, stage-major: for `len = 2, 4, …, n` the
    /// `len/2` powers of `exp(−2πi/len)` laid out contiguously.
    forward: Vec<Complex>,
    /// Inverse twiddles — elementwise conjugates of `forward`.
    inverse: Vec<Complex>,
}

impl FftPlan {
    /// Tabulates twiddles for length-`n` transforms.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> FftPlan {
        assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
        let mut forward = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2;
        while len <= n {
            let ang = -2.0 * std::f64::consts::PI / len as f64;
            for k in 0..len / 2 {
                let a = ang * k as f64;
                forward.push(Complex::new(a.cos(), a.sin()));
            }
            len <<= 1;
        }
        let inverse = forward.iter().map(|w| Complex::new(w.re, -w.im)).collect();
        FftPlan { n, forward, inverse }
    }

    /// The transform length this plan was built for.
    pub fn size(&self) -> usize {
        self.n
    }

    /// In-place iterative radix-2 Cooley–Tukey FFT using the
    /// precomputed tables. `inverse = true` computes the unscaled
    /// inverse transform (the caller divides by the length).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from [`FftPlan::size`].
    pub fn run(&self, buf: &mut [Complex], inverse: bool) {
        let n = self.n;
        assert_eq!(buf.len(), n, "buffer length must match the plan size {n}");
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        let bits = n.trailing_zeros();
        for i in 0..n {
            let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
            let j = j as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        // Butterflies, twiddles read from the stage-major tables.
        let tw = if inverse { &self.inverse } else { &self.forward };
        let mut len = 2;
        let mut base = 0;
        while len <= n {
            for start in (0..n).step_by(len) {
                for k in 0..len / 2 {
                    let u = buf[start + k];
                    let v = buf[start + k + len / 2] * tw[base + k];
                    buf[start + k] = u + v;
                    buf[start + k + len / 2] = u - v;
                }
            }
            base += len / 2;
            len <<= 1;
        }
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// One-shot convenience over [`FftPlan`]: builds the twiddle tables,
/// runs, and throws them away. Anything transforming more than once per
/// length should hold an [`FftPlan`] instead.
///
/// `inverse = true` computes the unscaled inverse transform (the caller
/// divides by the length).
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
pub fn fft_in_place(buf: &mut [Complex], inverse: bool) {
    FftPlan::new(buf.len()).run(buf, inverse);
}

/// 2-D FFT over a row-major `size × size` buffer (rows then columns).
fn fft2_in_place(plan: &FftPlan, buf: &mut [Complex], size: usize, inverse: bool) {
    debug_assert_eq!(plan.size(), size);
    let mut scratch = vec![Complex::default(); size];
    for row in 0..size {
        plan.run(&mut buf[row * size..(row + 1) * size], inverse);
    }
    for col in 0..size {
        for row in 0..size {
            scratch[row] = buf[row * size + col];
        }
        plan.run(&mut scratch, inverse);
        for row in 0..size {
            buf[row * size + col] = scratch[row];
        }
    }
}

/// Full-layer convolution in the frequency domain.
///
/// Same shape contract as
/// [`spatial_convolve`](crate::spatial_convolve) (stride 1, symmetric
/// zero padding `pad < r`). Internally each plane is zero-padded to the
/// next power of two ≥ `H + r − 1`, transformed once, multiplied per
/// `(k, c)` and accumulated in the frequency domain, then inverse
/// transformed per `(image, k)`.
///
/// # Panics
///
/// Panics on shape mismatch or `pad >= r`.
pub fn fft_convolve(input: &Tensor4<f32>, kernels: &Tensor4<f32>, pad: usize) -> Tensor4<f32> {
    let is = input.shape();
    let ks = kernels.shape();
    assert_eq!(is.c, ks.c, "input and kernel channel counts must match");
    assert_eq!(ks.h, ks.w, "kernels must be square");
    let r = ks.h;
    assert!(pad < r, "pad must be < r for FFT windowing");
    let out_h = is.h + 2 * pad - r + 1;
    let out_w = is.w + 2 * pad - r + 1;
    let size = (is.h.max(is.w) + r - 1).next_power_of_two();
    // Prepare-once state: twiddle tables for every transform below…
    let plan = FftPlan::new(size);

    // …and the frequency-domain kernels, spatially flipped so the
    // product is a correlation (Eq. 1) rather than a convolution.
    let mut kernel_freq: Vec<Vec<Vec<Complex>>> = Vec::with_capacity(ks.n);
    for k in 0..ks.n {
        let mut per_channel = Vec::with_capacity(ks.c);
        for c in 0..ks.c {
            let mut buf = vec![Complex::default(); size * size];
            for v in 0..r {
                for u in 0..r {
                    buf[(r - 1 - v) * size + (r - 1 - u)].re = kernels.at(k, c, v, u) as f64;
                }
            }
            fft2_in_place(&plan, &mut buf, size, false);
            per_channel.push(buf);
        }
        kernel_freq.push(per_channel);
    }

    let mut out = Tensor4::zeros(Shape4 { n: is.n, c: ks.n, h: out_h, w: out_w });
    for img in 0..is.n {
        // Transform every input channel once.
        let mut input_freq: Vec<Vec<Complex>> = Vec::with_capacity(is.c);
        for c in 0..is.c {
            let mut buf = vec![Complex::default(); size * size];
            for y in 0..is.h {
                for x in 0..is.w {
                    buf[y * size + x].re = input.at(img, c, y, x) as f64;
                }
            }
            fft2_in_place(&plan, &mut buf, size, false);
            input_freq.push(buf);
        }
        for (k, kernel_channels) in kernel_freq.iter().enumerate() {
            let mut acc = vec![Complex::default(); size * size];
            for c in 0..is.c {
                let kf = &kernel_channels[c];
                for (dst, (&a, &b)) in acc.iter_mut().zip(input_freq[c].iter().zip(kf)) {
                    *dst = *dst + a * b;
                }
            }
            fft2_in_place(&plan, &mut acc, size, true);
            let scale = 1.0 / (size * size) as f64;
            // Linear correlation appears at offset r-1-pad.
            let off = r - 1 - pad;
            for y in 0..out_h {
                for x in 0..out_w {
                    *out.at_mut(img, k, y, x) =
                        (acc[(y + off) * size + (x + off)].re * scale) as f32;
                }
            }
        }
    }
    out
}

/// Real-multiplication estimate of FFT convolution for one layer,
/// mirroring Vasilache et al.'s accounting: per (image, tile=whole-plane)
/// transform cost `O(S² log S)` amortized over channels/kernels plus the
/// `C·K` frequency-domain products of 4 real mults each.
pub fn fft_conv_complexity(h: usize, w: usize, c: usize, k: usize, r: usize) -> f64 {
    let size = (h.max(w) + r - 1).next_power_of_two() as f64;
    let plane = size * size;
    // One 2-D FFT: 2*size 1-D FFTs, each (size/2) log2(size) complex
    // butterflies of 4 real mults.
    let fft_one = 2.0 * size * (size / 2.0) * size.log2() * 4.0;
    let transforms = (c + k) as f64 * fft_one // forward: inputs + kernels
        + k as f64 * fft_one; // inverse per output
    let pointwise = (c * k) as f64 * plane * 4.0;
    transforms + pointwise
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial_convolve;
    use wino_tensor::SplitMix64;

    #[test]
    fn fft_round_trip_recovers_signal() {
        let mut rng = SplitMix64::new(5);
        let original: Vec<Complex> =
            (0..64).map(|_| Complex::new(rng.uniform_f32(-1.0, 1.0) as f64, 0.0)).collect();
        let mut buf = original.clone();
        fft_in_place(&mut buf, false);
        fft_in_place(&mut buf, true);
        for (a, b) in buf.iter().zip(&original) {
            assert!((a.re / 64.0 - b.re).abs() < 1e-12);
            assert!((a.im / 64.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::default(); 8];
        buf[0].re = 1.0;
        fft_in_place(&mut buf, false);
        for c in &buf {
            assert!((c.re - 1.0).abs() < 1e-12 && c.im.abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut buf = vec![Complex::default(); 6];
        fft_in_place(&mut buf, false);
    }

    #[test]
    fn reused_plan_is_bitwise_identical_to_one_shot() {
        // The twiddle hoist must be a pure strength reduction: a plan
        // run many times produces exactly what the one-shot wrapper
        // produces, bit for bit.
        let mut rng = SplitMix64::new(77);
        let plan = FftPlan::new(32);
        assert_eq!(plan.size(), 32);
        for _ in 0..4 {
            let original: Vec<Complex> = (0..32)
                .map(|_| {
                    Complex::new(
                        rng.uniform_f32(-1.0, 1.0) as f64,
                        rng.uniform_f32(-1.0, 1.0) as f64,
                    )
                })
                .collect();
            for inverse in [false, true] {
                let mut a = original.clone();
                let mut b = original.clone();
                plan.run(&mut a, inverse);
                fft_in_place(&mut b, inverse);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "match the plan size")]
    fn plan_rejects_mismatched_buffer() {
        let mut buf = vec![Complex::default(); 16];
        FftPlan::new(32).run(&mut buf, false);
    }

    #[test]
    fn matches_spatial_convolution() {
        let mut rng = SplitMix64::new(9);
        let input = Tensor4::from_fn(Shape4 { n: 2, c: 3, h: 9, w: 7 }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let kernels = Tensor4::from_fn(Shape4 { n: 2, c: 3, h: 3, w: 3 }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        for pad in [0usize, 1] {
            let fft = fft_convolve(&input, &kernels, pad);
            let refr = spatial_convolve(&input, &kernels, pad);
            assert_eq!(fft.shape(), refr.shape());
            let stats = wino_tensor::ErrorStats::between(fft.as_slice(), refr.as_slice());
            assert!(stats.within_abs(1e-4), "pad={pad}: {stats}");
        }
    }

    #[test]
    fn matches_spatial_with_large_kernel() {
        let mut rng = SplitMix64::new(10);
        let input = Tensor4::from_fn(Shape4 { n: 1, c: 1, h: 16, w: 16 }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let kernels = Tensor4::from_fn(Shape4 { n: 1, c: 1, h: 7, w: 7 }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let fft = fft_convolve(&input, &kernels, 3);
        let refr = spatial_convolve(&input, &kernels, 3);
        let stats = wino_tensor::ErrorStats::between(fft.as_slice(), refr.as_slice());
        assert!(stats.within_abs(1e-3), "{stats}");
    }

    #[test]
    fn fft_advantage_grows_with_kernel_size() {
        // The paper's Sec. II-C claim (after Vasilache et al.): FFT
        // convolution "shows savings only for high kernel sizes". Two
        // observable consequences:
        // (1) FFT cost is essentially r-independent, so its advantage over
        //     spatial convolution grows monotonically with r;
        // (2) at r = 3 Winograd F(2x2,3x3) needs far fewer real
        //     multiplications than the FFT path, which is why small-kernel
        //     CNNs pick Winograd.
        let (h, w, c, k) = (56, 56, 64, 64);
        let spatial = |r: usize| (h * w * c * k * r * r) as f64;
        // r = 3..9 share one 64-point FFT size (56 + r - 1 <= 64), which
        // isolates the r-dependence from power-of-two padding cliffs.
        let ratios: Vec<f64> = [3usize, 5, 7, 9]
            .iter()
            .map(|&r| fft_conv_complexity(h, w, c, k, r) / spatial(r))
            .collect();
        for pair in ratios.windows(2) {
            assert!(pair[1] < pair[0], "FFT relative cost must fall with r: {ratios:?}");
        }
        assert!(ratios[3] < 0.2, "FFT should win big at r = 9: {ratios:?}");

        // Winograd F(2x2,3x3): 16/4 mults per output; its transform
        // overhead is a few percent of that (beta/m² = 8 and delta/m² = 6
        // FLOPs per output vs 1024 multiplies per output tile-channel), so
        // a 20% margin is conservative.
        let winograd_mults = (h * w / 4 * c * k * 16) as f64;
        assert!(
            1.2 * winograd_mults < fft_conv_complexity(h, w, c, k, 3),
            "Winograd should beat FFT at r = 3"
        );
    }
}
