//! im2col + GEMM convolution — the classic GPU/CPU lowering the paper's
//! related work (cuDNN pre-Winograd) is built on.
//!
//! The input is unrolled into a `(C·r²) × (H_out·W_out)` patch matrix so
//! the whole layer becomes one `K × (C·r²)` by patch-matrix product.

use crate::gemm;
use wino_tensor::{Scalar, Shape4, Tensor2, Tensor4};

/// Unrolls one image into its im2col patch matrix.
///
/// Row `c·r² + v·r + u`, column `y·W_out + x` holds
/// `input[c, y+v−pad, x+u−pad]` (zero outside).
pub fn im2col<T: Scalar>(input: &Tensor4<T>, image: usize, r: usize, pad: usize) -> Tensor2<T> {
    let is = input.shape();
    let out_h = is.h + 2 * pad - r + 1;
    let out_w = is.w + 2 * pad - r + 1;
    Tensor2::from_fn(is.c * r * r, out_h * out_w, |row, col| {
        let c = row / (r * r);
        let v = (row / r) % r;
        let u = row % r;
        let y = col / out_w;
        let x = col % out_w;
        let iy = (y + v) as isize - pad as isize;
        let ix = (x + u) as isize - pad as isize;
        if iy >= 0 && ix >= 0 && (iy as usize) < is.h && (ix as usize) < is.w {
            input.at(image, c, iy as usize, ix as usize)
        } else {
            T::zero()
        }
    })
}

/// Full-layer convolution via im2col + blocked GEMM.
///
/// Same shape contract as
/// [`spatial_convolve`](crate::spatial_convolve); results are
/// algebraically identical (bit-identical over exact scalars).
///
/// ```
/// use wino_baselines::{im2col_convolve, spatial_convolve};
/// use wino_tensor::{Shape4, Tensor4};
///
/// let x = Tensor4::from_fn(Shape4 { n: 1, c: 2, h: 5, w: 5 }, |_, c, h, w| (c + h * w) as f32);
/// let k = Tensor4::from_fn(Shape4 { n: 3, c: 2, h: 3, w: 3 }, |k, c, h, w| (k + c + h + w) as f32);
/// assert_eq!(im2col_convolve(&x, &k, 1).shape(), spatial_convolve(&x, &k, 1).shape());
/// ```
///
/// # Panics
///
/// Panics if channel counts disagree or kernels are not square.
pub fn im2col_convolve<T: Scalar>(
    input: &Tensor4<T>,
    kernels: &Tensor4<T>,
    pad: usize,
) -> Tensor4<T> {
    let is = input.shape();
    let ks = kernels.shape();
    assert_eq!(is.c, ks.c, "input and kernel channel counts must match");
    assert_eq!(ks.h, ks.w, "kernels must be square");
    let r = ks.h;
    let out_h = is.h + 2 * pad - r + 1;
    let out_w = is.w + 2 * pad - r + 1;

    // K x (C r^2) kernel matrix, rows in the same (c, v, u) order as im2col.
    let kmat = Tensor2::from_fn(ks.n, ks.c * r * r, |k, row| {
        let c = row / (r * r);
        let v = (row / r) % r;
        let u = row % r;
        kernels.at(k, c, v, u)
    });

    let mut out = Tensor4::zeros(Shape4 { n: is.n, c: ks.n, h: out_h, w: out_w });
    for img in 0..is.n {
        let patches = im2col(input, img, r, pad);
        let result = gemm(&kmat, &patches); // K x (out_h*out_w)
        for k in 0..ks.n {
            let plane = Tensor2::from_vec(out_h, out_w, result.row(k).to_vec());
            out.set_plane(img, k, &plane);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial_convolve;
    use wino_tensor::{ratio, SplitMix64};

    #[test]
    fn equals_spatial_exactly_over_rationals() {
        let mut rng = SplitMix64::new(17);
        let input = Tensor4::from_fn(Shape4 { n: 2, c: 3, h: 6, w: 5 }, |_, _, _, _| {
            ratio(rng.below(11) as i128 - 5, 1)
        });
        let kernels = Tensor4::from_fn(Shape4 { n: 4, c: 3, h: 3, w: 3 }, |_, _, _, _| {
            ratio(rng.below(11) as i128 - 5, 1)
        });
        for pad in [0usize, 1] {
            assert_eq!(
                im2col_convolve(&input, &kernels, pad),
                spatial_convolve(&input, &kernels, pad),
                "pad={pad}"
            );
        }
    }

    #[test]
    fn close_to_spatial_in_f32() {
        let mut rng = SplitMix64::new(18);
        let input = Tensor4::from_fn(Shape4 { n: 1, c: 8, h: 14, w: 14 }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let kernels = Tensor4::from_fn(Shape4 { n: 8, c: 8, h: 3, w: 3 }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let a = im2col_convolve(&input, &kernels, 1);
        let b = spatial_convolve(&input, &kernels, 1);
        let stats = wino_tensor::ErrorStats::between(a.as_slice(), b.as_slice());
        assert!(stats.within_abs(1e-4), "{stats}");
    }

    #[test]
    fn patch_matrix_shape_and_content() {
        let input =
            Tensor4::from_fn(Shape4 { n: 1, c: 1, h: 3, w: 3 }, |_, _, h, w| (h * 3 + w) as f32);
        let p = im2col(&input, 0, 2, 0);
        assert_eq!(p.rows(), 4); // 1 channel * 2*2
        assert_eq!(p.cols(), 4); // 2x2 output positions
                                 // Patch at output (0,0): values (0,0),(0,1),(1,0),(1,1) = 0,1,3,4.
        assert_eq!(p[(0, 0)], 0.0);
        assert_eq!(p[(1, 0)], 1.0);
        assert_eq!(p[(2, 0)], 3.0);
        assert_eq!(p[(3, 0)], 4.0);
    }

    #[test]
    fn one_by_one_kernel_is_channel_mix() {
        let input = Tensor4::from_fn(Shape4 { n: 1, c: 2, h: 2, w: 2 }, |_, c, h, w| {
            (c * 10 + h * 2 + w) as f32
        });
        let kernels =
            Tensor4::from_fn(
                Shape4 { n: 1, c: 2, h: 1, w: 1 },
                |_, c, _, _| {
                    if c == 0 {
                        1.0
                    } else {
                        -1.0
                    }
                },
            );
        let out = im2col_convolve(&input, &kernels, 0);
        assert_eq!(out.as_slice(), &[-10.0; 4]);
    }
}
