//! Cache-blocked dense matrix multiplication.
//!
//! The im2col convolution baseline lowers to GEMM; this module provides a
//! register/cache-blocked implementation that is meaningfully faster than
//! the textbook triple loop while staying dependency-free and generic.

use wino_tensor::{Scalar, Tensor2};

/// Block edge for the cache-blocked loops. 32×32 f32 blocks (4 KiB) fit
/// comfortably in L1 alongside the accumulator.
const BLOCK: usize = 32;

/// Blocked matrix product `a · b`.
///
/// ```
/// use wino_baselines::gemm;
/// use wino_tensor::Tensor2;
///
/// let a = Tensor2::from_rows(&[&[1.0f32, 2.0], &[3.0, 4.0]]);
/// let b = Tensor2::from_rows(&[&[5.0f32], &[6.0]]);
/// assert_eq!(gemm(&a, &b).as_slice(), &[17.0, 39.0]);
/// ```
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn gemm<T: Scalar>(a: &Tensor2<T>, b: &Tensor2<T>) -> Tensor2<T> {
    assert_eq!(a.cols(), b.rows(), "gemm dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Tensor2::zeros(m, n);

    for i0 in (0..m).step_by(BLOCK) {
        let i_max = (i0 + BLOCK).min(m);
        for k0 in (0..k).step_by(BLOCK) {
            let k_max = (k0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j_max = (j0 + BLOCK).min(n);
                for i in i0..i_max {
                    for kk in k0..k_max {
                        let aik = a[(i, kk)];
                        if aik == T::zero() {
                            continue;
                        }
                        let brow = b.row(kk);
                        for j in j0..j_max {
                            let prod = aik * brow[j];
                            out[(i, j)] += prod;
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_tensor::{ratio, SplitMix64};

    #[test]
    fn matches_reference_matmul_on_odd_sizes() {
        let mut rng = SplitMix64::new(3);
        for (m, k, n) in [(1, 1, 1), (5, 7, 3), (33, 65, 40), (64, 32, 96)] {
            let a = Tensor2::from_fn(m, k, |_, _| rng.uniform_f32(-1.0, 1.0));
            let b = Tensor2::from_fn(k, n, |_, _| rng.uniform_f32(-1.0, 1.0));
            let fast = gemm(&a, &b);
            let slow = a.matmul(&b);
            let stats = wino_tensor::ErrorStats::between(fast.as_slice(), slow.as_slice());
            assert!(stats.within_abs(1e-4), "{m}x{k}x{n}: {stats}");
        }
    }

    #[test]
    fn exact_over_rationals() {
        let a = Tensor2::from_fn(40, 35, |r, c| {
            ratio((r as i128 - c as i128) % 5, 1 + (c % 3) as i128)
        });
        let b = Tensor2::from_fn(35, 33, |r, c| ratio((r * c % 7) as i128, 2));
        assert_eq!(gemm(&a, &b), a.matmul(&b));
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor2::from_fn(20, 20, |r, c| (r * 20 + c) as f32);
        let id = Tensor2::from_fn(20, 20, |r, c| if r == c { 1.0f32 } else { 0.0 });
        assert_eq!(gemm(&a, &id), a);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let a = Tensor2::<f32>::zeros(2, 3);
        let b = Tensor2::<f32>::zeros(4, 2);
        let _ = gemm(&a, &b);
    }
}
