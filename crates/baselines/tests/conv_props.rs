//! Property tests: the three baseline algorithms agree with each other on
//! arbitrary layer shapes.

use proptest::prelude::*;
use wino_baselines::{fft_convolve, gemm, im2col_convolve, spatial_convolve};
use wino_tensor::{ratio, ErrorStats, Ratio, Shape4, SplitMix64, Tensor2, Tensor4};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn im2col_equals_spatial_exactly(
        n in 1usize..3,
        c in 1usize..4,
        k in 1usize..4,
        h in 3usize..9,
        w in 3usize..9,
        pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        let mut rng = SplitMix64::new(seed);
        let input = Tensor4::from_fn(Shape4 { n, c, h, w }, |_, _, _, _| {
            ratio(rng.below(13) as i128 - 6, 1 + rng.below(3) as i128)
        });
        let kernels = Tensor4::from_fn(Shape4 { n: k, c, h: 3, w: 3 }, |_, _, _, _| {
            ratio(rng.below(13) as i128 - 6, 1 + rng.below(3) as i128)
        });
        prop_assert_eq!(
            im2col_convolve(&input, &kernels, pad),
            spatial_convolve(&input, &kernels, pad)
        );
    }

    #[test]
    fn fft_approximates_spatial(
        c in 1usize..3,
        k in 1usize..3,
        h in 4usize..11,
        r in prop::sample::select(vec![3usize, 5]),
        seed in 0u64..1000,
    ) {
        prop_assume!(h >= r);
        let mut rng = SplitMix64::new(seed);
        let input = Tensor4::from_fn(Shape4 { n: 1, c, h, w: h }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let kernels = Tensor4::from_fn(Shape4 { n: k, c, h: r, w: r }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let pad = (r - 1) / 2;
        let fft = fft_convolve(&input, &kernels, pad);
        let refr = spatial_convolve(&input, &kernels, pad);
        let stats = ErrorStats::between(fft.as_slice(), refr.as_slice());
        prop_assert!(stats.within_abs(1e-3), "{}", stats);
    }

    #[test]
    fn gemm_matches_naive_matmul(
        m in 1usize..20,
        k in 1usize..20,
        n in 1usize..20,
        seed in 0u64..1000,
    ) {
        let mut rng = SplitMix64::new(seed);
        let a = Tensor2::from_fn(m, k, |_, _| ratio(rng.below(9) as i128 - 4, 1));
        let b = Tensor2::from_fn(k, n, |_, _| ratio(rng.below(9) as i128 - 4, 1));
        prop_assert_eq!(gemm(&a, &b), a.matmul(&b));
    }

    #[test]
    fn spatial_conv_is_linear_in_input(
        c in 1usize..3,
        h in 3usize..7,
        seed in 0u64..500,
    ) {
        let mut rng = SplitMix64::new(seed);
        let shape = Shape4 { n: 1, c, h, w: h };
        let a = Tensor4::from_fn(shape, |_, _, _, _| ratio(rng.below(7) as i128 - 3, 1));
        let b = Tensor4::from_fn(shape, |_, _, _, _| ratio(rng.below(7) as i128 - 3, 1));
        let kernels = Tensor4::from_fn(Shape4 { n: 2, c, h: 3, w: 3 }, |_, _, _, _| {
            ratio(rng.below(7) as i128 - 3, 1)
        });
        let sum = Tensor4::from_fn(shape, |n, ci, y, x| a.at(n, ci, y, x) + b.at(n, ci, y, x));
        let ca = spatial_convolve(&a, &kernels, 1);
        let cb = spatial_convolve(&b, &kernels, 1);
        let cs = spatial_convolve(&sum, &kernels, 1);
        let recombined = Tensor4::from_fn(cs.shape(), |n, ki, y, x| {
            ca.at(n, ki, y, x) + cb.at(n, ki, y, x)
        });
        prop_assert_eq!(cs, recombined);
    }

    #[test]
    fn identity_kernel_is_neutral(c in 1usize..4, h in 3usize..8, seed in 0u64..500) {
        let mut rng = SplitMix64::new(seed);
        let input = Tensor4::from_fn(Shape4 { n: 1, c, h, w: h }, |_, _, _, _| {
            ratio(rng.below(19) as i128 - 9, 1)
        });
        // One kernel per channel bank: center tap on channel 0 only.
        let kernels = Tensor4::from_fn(Shape4 { n: 1, c, h: 3, w: 3 }, |_, ci, v, u| {
            if ci == 0 && v == 1 && u == 1 { Ratio::ONE } else { Ratio::ZERO }
        });
        let out = spatial_convolve(&input, &kernels, 1);
        for y in 0..h {
            for x in 0..h {
                prop_assert_eq!(out.at(0, 0, y, x), input.at(0, 0, y, x));
            }
        }
    }
}
