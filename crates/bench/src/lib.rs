//! # wino-bench
//!
//! The benchmark harness of the `winofpga` reproduction: one binary per
//! paper artifact plus Criterion runtime benchmarks.
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `fig1` | Fig. 1 — multiplication complexity per VGG16-D group |
//! | `fig2` | Fig. 2 — net transform complexity vs m |
//! | `fig3` | Fig. 3 — percentage complexity variations vs m |
//! | `fig4` | Fig. 4 — 1-D engine structure, ours vs \[3\] |
//! | `fig5` | Fig. 5 — 2-D PE composition |
//! | `fig6` | Fig. 6 — throughput vs m and multiplier budget |
//! | `table1` | Table I — resource utilization at 19 PEs `F(4×4,3×3)` |
//! | `table2` | Table II — full VGG16-D performance comparison |
//! | `roofline` | roofline extension — memory- vs compute-bound layers |
//! | `engine_demo` | Fig. 7 — cycle-level system simulation |
//! | `error_growth` | fp32 accuracy vs tile size (precision discussion) |
//! | `overhead` | Sec. IV-C transform-overhead ratios (Eq. 7) |
//! | `speedup` | `wino-exec` vs spatial-oracle wall time → `BENCH_exec.json` |
//! | `quant_study` | fixed-point FRAC × m accuracy surface → `BENCH_quant.json` |
//! | `serve_load` | `wino-serve` open-loop serving study → `BENCH_serve.json` |
//! | `obs_overhead` | `wino-obs` overhead self-test + phase coverage → `BENCH_obs.json` |
//!
//! Run all of them:
//!
//! ```sh
//! for b in fig1 fig2 fig3 fig4 fig5 fig6 table1 table2 roofline \
//!          engine_demo error_growth overhead speedup quant_study \
//!          serve_load obs_overhead; do
//!     cargo run --release -p wino-bench --bin $b
//! done
//! ```
//!
//! `EXPERIMENTS.md` at the repository root pairs each binary with the
//! paper artifact it regenerates, its expected output, and the known
//! deviations (DESIGN.md §8).
//!
//! The library part of this crate is the comparison-table helper the
//! binaries share:
//!
//! ```
//! use wino_bench::max_relative_deviation;
//!
//! let rows = vec![("latency".to_owned(), 28.05, 28.06)];
//! assert!(max_relative_deviation(&rows) < 1e-3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use wino_dse::TextTable;

/// Prints a paper-vs-measured table with relative deviations.
///
/// `rows` are `(label, paper value, measured value)`; deviations are
/// printed in percent (`-` when the paper value is zero).
pub fn print_comparison(title: &str, rows: &[(String, f64, f64)], digits: usize) {
    let mut table = TextTable::new(vec!["quantity", "paper", "measured", "deviation"]);
    for (label, paper, measured) in rows {
        let dev = if *paper != 0.0 {
            format!("{:+.1}%", 100.0 * (measured - paper) / paper)
        } else {
            "-".to_owned()
        };
        table.push_row(vec![
            label.clone(),
            format!("{paper:.digits$}"),
            format!("{measured:.digits$}"),
            dev,
        ]);
    }
    println!("=== {title} ===");
    println!("{}", table.to_ascii());
}

/// Maximum relative deviation across comparison rows (ignoring zero paper
/// values).
pub fn max_relative_deviation(rows: &[(String, f64, f64)]) -> f64 {
    rows.iter()
        .filter(|(_, p, _)| *p != 0.0)
        .map(|(_, p, m)| ((m - p) / p).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_math() {
        let rows = vec![
            ("a".to_owned(), 100.0, 101.0),
            ("b".to_owned(), 50.0, 49.0),
            ("zero".to_owned(), 0.0, 1.0),
        ];
        let max = max_relative_deviation(&rows);
        assert!((max - 0.02).abs() < 1e-12);
        print_comparison("test", &rows, 1); // must not panic
    }
}
