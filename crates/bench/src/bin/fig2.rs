//! Regenerates Fig. 2: net transform complexity vs output tile size.

use wino_bench::print_comparison;
use wino_core::CostModel;
use wino_dse::figures::{fig2, paper};
use wino_models::vgg16d;

fn main() {
    let wl = vgg16d(1);
    for model in [CostModel::ShiftFree, CostModel::Naive, CostModel::RowFactored] {
        let fig = fig2(&wl, model);
        println!("{}", fig.title);
        println!("{}", fig.to_table(1).to_ascii());
    }
    let fig = fig2(&wl, CostModel::ShiftFree);
    let rows: Vec<(String, f64, f64)> = fig
        .x_labels
        .iter()
        .zip(fig.series[0].1.iter())
        .zip(paper::FIG2_MFLOPS.iter())
        .map(|((label, &ours), &paper)| (label.clone(), paper, ours))
        .collect();
    print_comparison(
        "Fig. 2 vs paper (MFLOPs; absolute values depend on the authors' unpublished \
         beta/gamma/delta — shape and m=2 anchor are the reproduction targets)",
        &rows,
        1,
    );
}
