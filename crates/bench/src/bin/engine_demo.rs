//! Cycle-level system demonstration (Fig. 7): runs reduced-channel
//! versions of all five VGG16-D groups through the simulated engine and
//! checks Eq. 9 plus functional correctness on each.

use wino_baselines::spatial_convolve;
use wino_core::WinogradParams;
use wino_engine::{EngineConfig, WinogradEngine};
use wino_tensor::{ErrorStats, Shape4, SplitMix64, Tensor4};

fn main() {
    let mut rng = SplitMix64::new(42);
    // One representative layer per VGG group, channels scaled down 8x so
    // the cycle-by-cycle simulation stays interactive.
    let layers: [(&str, usize, usize, usize); 5] = [
        ("conv1-style", 56, 8, 8),
        ("conv2-style", 28, 16, 16),
        ("conv3-style", 28, 32, 32),
        ("conv4-style", 14, 64, 64),
        ("conv5-style", 14, 64, 64),
    ];
    let params = WinogradParams::new(4, 3).expect("valid");
    let engine = WinogradEngine::new(EngineConfig::proposed(params, 19)).expect("generates");
    println!(
        "Engine: {} with 19 PEs ({} multipliers), Dp = {}",
        params,
        19 * params.mults_per_tile_2d(),
        engine.config().pipeline_depth()
    );
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "layer", "cycles", "Eq.9", "PE util", "max|err|", "us @200MHz"
    );
    for (name, hw, c, k) in layers {
        let input = Tensor4::from_fn(Shape4 { n: 1, c, h: hw, w: hw }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let kernels = Tensor4::from_fn(Shape4 { n: k, c, h: 3, w: 3 }, |_, _, _, _| {
            rng.uniform_f32(-0.25, 0.25)
        });
        let (out, report) = engine.run_layer(&input, &kernels, 1);
        let reference = spatial_convolve(&input, &kernels, 1);
        let stats = ErrorStats::between(out.as_slice(), reference.as_slice());
        let predicted = engine.predicted_cycles(input.shape(), k, 1);
        assert_eq!(report.cycles, predicted, "{name}: Eq. 9 must hold");
        assert!(stats.within_abs(1e-3), "{name}: functional mismatch {stats}");
        println!(
            "{:<14} {:>10} {:>10} {:>9.1}% {:>12.2e} {:>12.1}",
            name,
            report.cycles,
            predicted,
            report.pe_utilization * 100.0,
            stats.max_abs,
            report.latency_seconds(200e6) * 1e6
        );
    }
    println!("\nAll layers: simulated cycles == Eq. 9 and outputs match direct convolution.");
}
