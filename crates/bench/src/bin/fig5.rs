//! Regenerates Fig. 5: composition of the 2-D PE F(3x3, 3x3).

use wino_core::WinogradParams;
use wino_engine::pe_structure;

fn main() {
    for m in [2usize, 3, 4] {
        let params = WinogradParams::new(m, 3).expect("valid");
        let pe = pe_structure(params).expect("generates");
        println!(
            "F({m}x{m},3x3) PE: {} nested 1-D engines, {} multipliers, {} outputs/cycle, \
             2nd-dim inverse: {}",
            pe.nested_1d_engines, pe.multipliers, pe.outputs_per_cycle, pe.second_dim_inverse_ops
        );
    }
    println!();
    let ours = pe_structure(WinogradParams::new(3, 3).expect("valid")).expect("generates");
    let podili = pe_structure(WinogradParams::new(2, 3).expect("valid")).expect("generates");
    println!(
        "Sec. IV-A check: {}/{} = {:.2}x throughput per PE using {}/{} = {:.4}x multipliers",
        ours.outputs_per_cycle,
        podili.outputs_per_cycle,
        ours.outputs_per_cycle as f64 / podili.outputs_per_cycle as f64,
        ours.multipliers,
        podili.multipliers,
        ours.multipliers as f64 / podili.multipliers as f64,
    );
    println!("(paper: 2.25x higher throughput with 1.56x more multipliers)");
}
