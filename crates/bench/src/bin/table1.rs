//! Regenerates Table I: resource utilization for 19 PEs F(4x4, 3x3).

use wino_bench::print_comparison;
use wino_dse::table1;
use wino_fpga::virtex7_485t;

fn main() {
    let t = table1(&virtex7_485t());
    println!("{}", t.to_text().to_ascii());
    let rows = vec![
        ("[3]-based registers".to_owned(), 97052.0, t.reference.registers as f64),
        ("[3]-based LUTs".to_owned(), 232256.0, t.reference.luts as f64),
        ("[3]-based DSPs".to_owned(), 2736.0, t.reference.dsps as f64),
        ("proposed registers".to_owned(), 76500.0, t.proposed.registers as f64),
        ("proposed LUTs".to_owned(), 107839.0, t.proposed.luts as f64),
        ("proposed DSPs".to_owned(), 2736.0, t.proposed.dsps as f64),
        ("LUT saving (%)".to_owned(), 53.6, t.lut_saving * 100.0),
    ];
    print_comparison("Table I vs paper", &rows, 0);
}
