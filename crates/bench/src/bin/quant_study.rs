//! The fixed-point accuracy study the paper skipped, emitted as
//! `BENCH_quant.json`.
//!
//! The paper runs its Winograd pipeline "without any quantization
//! scheme for the sake of simplicity" while its headline comparison
//! target (Qiu et al. \[12\]) runs 16-bit fixed point. This binary
//! measures what that simplification hides: for every model workload
//! (shrunk so the float oracle stays cheap), every output-tile size
//! `m ∈ {2, 3, 4}` and every fractional width `FRAC ∈ 6..=14`, it runs
//! every layer once in `f32` and once in saturating `Q(32−FRAC).FRAC`
//! arithmetic through the same `NetworkExecutor`, and records the
//! worst per-layer max-abs deviation. Layers execute on their declared
//! geometries with independent synthetic inputs (the executor's
//! semantics — workloads do not model the pooling between conv
//! layers), so the surface is *per-layer* quantization error; chained
//! activations would compound it further.
//!
//! The VGG16-D error surface is then fed into a `wino-search`
//! `ParetoArchive` as the fifth objective axis — modeled throughput
//! from the paper's DSE pipeline, measured quantization error from the
//! execution engine — so the retained front shows which `(m, FRAC)`
//! pairs are genuine trade-offs between tile size and arithmetic
//! precision.
//!
//! Acceptance (pinned at the end): `Q22.10` at `m = 2` keeps VGG16-D
//! conv-layer inference within 0.05 max-abs of the float oracle.

use wino_exec::{quant_error_bound, ExecConfig, NetworkExecutor, QuantConfig, Schedule};
use wino_models::{alexnet, resnet18, shrink, tiny_cnn, vgg16d};
use wino_search::{ParetoArchive, SearchObjective, SearchSpace};
use wino_tensor::ErrorStats;

/// One cell of the FRAC × m error surface.
struct Cell {
    m: usize,
    frac: u32,
    max_abs_err: f64,
}

const FRAC_SWEEP: std::ops::RangeInclusive<u32> = 6..=14;
const MS: [usize; 3] = [2, 3, 4];
const SEED: u64 = 0x5EED_0001;

fn sweep_workload(wl: &wino_core::Workload, threads: usize) -> Vec<Cell> {
    let mut cells = Vec::new();
    for m in MS {
        let schedule = Schedule::homogeneous(wl, m).expect("schedule lowers");
        let config = ExecConfig::with_threads(threads);
        let float = NetworkExecutor::with_seed(wl.clone(), schedule.clone(), config, SEED)
            .expect("float executor");
        // The float reference per layer does not depend on FRAC —
        // compute it once per m, not once per sweep cell.
        let references: Vec<_> = (0..wl.layers().len())
            .map(|i| {
                let input = float.layer_input(i);
                let output = float.execute_layer(i, &input).expect("float plan executes");
                (input, output)
            })
            .collect();
        for frac in FRAC_SWEEP {
            let quant = QuantConfig::uniform_fixed(schedule.len(), frac).expect("supported FRAC");
            let qsched = schedule.clone().with_quant(quant).expect("lengths match");
            let quantized = NetworkExecutor::with_seed(wl.clone(), qsched, config, SEED)
                .expect("quantized executor");
            let mut worst = 0.0f64;
            for (i, (input, reference)) in references.iter().enumerate() {
                let got = quantized.execute_layer(i, input).expect("quantized plan executes");
                worst =
                    worst.max(ErrorStats::between(got.as_slice(), reference.as_slice()).max_abs);
            }
            cells.push(Cell { m, frac, max_abs_err: worst });
        }
    }
    cells
}

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8);
    let workloads = [
        shrink(&vgg16d(1), 16, 8),
        shrink(&alexnet(1), 16, 8),
        shrink(&resnet18(1), 16, 8),
        shrink(&tiny_cnn(1), 16, 8),
    ];

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"quant_study\",\n");
    json.push_str(&format!(
        "  \"frac_sweep\": [{}],\n",
        FRAC_SWEEP.map(|f| f.to_string()).collect::<Vec<_>>().join(", ")
    ));
    json.push_str("  \"ms\": [2, 3, 4],\n  \"workloads\": [\n");

    let mut vgg_cells = Vec::new();
    for (wi, wl) in workloads.iter().enumerate() {
        println!("=== {} ({} layers) ===", wl.name(), wl.layers().len());
        println!("{:<6} {:>6} {:>14} {:>14}", "m", "FRAC", "max|err|", "analytic bound");
        let cells = sweep_workload(wl, threads);
        let channels = wl.layers().iter().map(|l| l.shape.c).max().unwrap_or(1);
        json.push_str(&format!("    {{\"name\": \"{}\", \"surface\": [\n", wl.name()));
        for (ci, cell) in cells.iter().enumerate() {
            // The loose forward bound for the workload's widest layer —
            // printed next to the measurement so gross regressions in
            // either are obvious at a glance.
            let params = wino_core::WinogradParams::new(cell.m, 3).expect("valid");
            let bound = quant_error_bound(params, channels, cell.frac, 1.0, 1.0);
            println!(
                "{:<6} {:>6} {:>14.3e} {:>14.3e}",
                format!("F({0}x{0})", cell.m),
                cell.frac,
                cell.max_abs_err,
                bound
            );
            json.push_str(&format!(
                "      {{\"m\": {}, \"frac\": {}, \"max_abs_err\": {:.4e}, \"bound\": {:.4e}}}{}\n",
                cell.m,
                cell.frac,
                cell.max_abs_err,
                bound,
                if ci + 1 < cells.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!("    ]}}{}\n", if wi + 1 < workloads.len() { "," } else { "" }));
        if wi == 0 {
            vgg_cells = cells;
        }
        println!();
    }
    json.push_str("  ],\n");

    // Feed the VGG16-D error surface into the five-axis Pareto archive:
    // modeled throughput/power/latency/head-room from the paper's DSE
    // pipeline (full-size VGG16-D, Virtex-7 485T, 700 multipliers at
    // 200 MHz), measured max-abs-error from the execution engine.
    let evaluator = wino_dse::Evaluator::new(vgg16d(1), wino_fpga::virtex7_485t());
    let space = wino_search::HomogeneousSpace::new(&evaluator, MS.to_vec(), 3, 700, 200e6);
    let mut archive = ParetoArchive::new();
    for cell in &vgg_cells {
        let mi = MS.iter().position(|&m| m == cell.m).expect("m in sweep");
        let evaluation = space.evaluate(&[mi]).with_quant_error(cell.max_abs_err);
        archive.insert(vec![mi, cell.frac as usize], evaluation);
    }
    println!("=== five-axis Pareto front over (m, FRAC), VGG16-D ===");
    print!("{archive}");
    let best_acc = archive.best_by(SearchObjective::QuantError).expect("non-empty archive");
    let best_thr = archive.best_by(SearchObjective::Throughput).expect("non-empty archive");

    json.push_str(&format!(
        "  \"pareto\": {{\"device\": \"virtex7-485t\", \"retained\": {}, \"entries\": [\n",
        archive.len()
    ));
    for (ei, entry) in archive.entries().iter().enumerate() {
        json.push_str(&format!(
            "    {{\"m\": {}, \"frac\": {}, \"throughput_gops\": {:.1}, \"quant_error\": {:.4e}}}{}\n",
            MS[entry.genome[0]],
            entry.genome[1],
            entry.evaluation.throughput_gops,
            entry.evaluation.quant_error,
            if ei + 1 < archive.entries().len() { "," } else { "" }
        ));
    }
    json.push_str("  ]},\n");

    // Acceptance: Fixed<10> VGG16-D inference at m = 2 stays within
    // 0.05 of the float oracle on the shrunk workload.
    let acceptance =
        vgg_cells.iter().find(|c| c.m == 2 && c.frac == 10).expect("m=2, FRAC=10 is in the sweep");
    json.push_str(&format!(
        "  \"acceptance\": {{\"workload\": \"VGG16-D-small\", \"m\": 2, \"frac\": 10, \"max_abs_err\": {:.4e}, \"limit\": 0.05}}\n}}\n",
        acceptance.max_abs_err
    ));

    std::fs::write("BENCH_quant.json", &json).expect("write BENCH_quant.json");
    println!(
        "\nwrote BENCH_quant.json: {cells} cells per workload, front keeps {kept} designs",
        cells = vgg_cells.len(),
        kept = archive.len(),
    );
    println!(
        "accuracy winner: F({m}x{m}) FRAC={frac}; throughput winner: F({tm}x{tm}) FRAC={tfrac} \
         at {gops:.1} GOPS",
        m = MS[best_acc.genome[0]],
        frac = best_acc.genome[1],
        tm = MS[best_thr.genome[0]],
        tfrac = best_thr.genome[1],
        gops = best_thr.evaluation.throughput_gops,
    );
    assert!(
        acceptance.max_abs_err < 0.05,
        "acceptance: Fixed<10> m=2 VGG16-D error must stay under 0.05, got {:.3e}",
        acceptance.max_abs_err
    );
}
