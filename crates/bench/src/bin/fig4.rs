//! Regenerates Fig. 4: the 1-D F(3,3) convolution engine, ours vs \[3\].

use wino_core::WinogradParams;
use wino_dse::TextTable;
use wino_engine::structure_1d;
use wino_fpga::Architecture;

fn main() {
    let params = WinogradParams::new(3, 3).expect("valid");
    let ours = structure_1d(params, Architecture::SharedTransform).expect("generates");
    let theirs = structure_1d(params, Architecture::PerPeTransform).expect("generates");

    let mut t =
        TextTable::new(vec!["1-D engine F(3,3)", "ours (Fig. 4, solid)", "[3] (Fig. 4, dotted)"]);
    t.push_row(vec![
        "element-wise multipliers".to_owned(),
        ours.multipliers.to_string(),
        theirs.multipliers.to_string(),
    ]);
    t.push_row(vec![
        "inverse-transform ops".to_owned(),
        ours.inverse_ops.to_string(),
        theirs.inverse_ops.to_string(),
    ]);
    t.push_row(vec![
        "data-transform ops (in-engine)".to_owned(),
        ours.data_transform_ops.to_string(),
        theirs.data_transform_ops.to_string(),
    ]);
    t.push_row(vec![
        "total FLOP-costing operators".to_owned(),
        ours.total_flops().to_string(),
        theirs.total_flops().to_string(),
    ]);
    println!("{}", t.to_ascii());
    println!(
        "The proposed engine hoists the data transform out of the engine (shared across\n\
         all P PEs once per cycle); [3] recomputes it per engine — the source of the\n\
         Table I LUT gap."
    );
}
