//! Single-layer speedup of the `wino-exec` Winograd engine over the
//! `wino-baselines` spatial oracle, emitted as `BENCH_exec.json`.
//!
//! The layer is VGG16-D's conv3 geometry at 56×56 with 128 → 128
//! channels (~0.92 GFLOP of spatial-equivalent work). Each engine
//! configuration is timed best-of-3 against one oracle run, and the
//! verification column reports the worst absolute deviation from the
//! oracle — the speedup claim is only meaningful because the outputs
//! match.

use std::time::Instant;
use wino_baselines::spatial_convolve;
use wino_bench::print_comparison;
use wino_core::{spatial_ops, ConvShape, WinogradParams};
use wino_exec::winograd_convolve;
use wino_tensor::{ErrorStats, Shape4, SplitMix64, Tensor4};

struct ConfigResult {
    engine: String,
    threads: usize,
    millis: f64,
    speedup: f64,
    max_abs_err: f64,
}

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let value = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(value);
    }
    (best, out.expect("at least one rep"))
}

fn main() {
    let shape = ConvShape::same_padded(56, 56, 128, 128, 3);
    let gflop = spatial_ops(1, &shape) as f64 / 1e9;
    let mut rng = SplitMix64::new(2019);
    let input =
        Tensor4::from_fn(Shape4 { n: 1, c: shape.c, h: shape.h, w: shape.w }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
    let kernels = Tensor4::from_fn(Shape4 { n: shape.k, c: shape.c, h: 3, w: 3 }, |_, _, _, _| {
        rng.uniform_f32(-1.0, 1.0)
    });

    println!("layer: conv3-shaped {shape} ({gflop:.2} GFLOP)");
    let threads_available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("hardware threads available: {threads_available}\n");

    let (oracle_ms, oracle) = best_of(2, || spatial_convolve(&input, &kernels, shape.pad));

    let mut results: Vec<ConfigResult> = Vec::new();
    for m in [2usize, 4] {
        let params = WinogradParams::new(m, 3).expect("valid");
        for threads in [1usize, 8] {
            let (millis, out) = best_of(3, || {
                winograd_convolve(params, &input, &kernels, shape.pad, threads).expect("runs")
            });
            let stats = ErrorStats::between(out.as_slice(), oracle.as_slice());
            assert!(stats.within_abs(1e-2), "{params} diverged from the oracle: {stats}");
            results.push(ConfigResult {
                engine: params.to_string(),
                threads,
                millis,
                speedup: oracle_ms / millis,
                max_abs_err: stats.max_abs,
            });
        }
    }

    // "paper" column = the oracle's wall time, so the deviation column
    // reads as time saved relative to the scalar spatial baseline.
    let rows: Vec<(String, f64, f64)> = results
        .iter()
        .map(|r| (format!("{} @{}t ms", r.engine, r.threads), oracle_ms, r.millis))
        .collect();
    print_comparison("single-layer wall time vs spatial oracle (best-of-3)", &rows, 2);
    for r in &results {
        println!(
            "{} @{}t: {:.2} ms  ->  {:.2}x over the spatial oracle (max |err| {:.2e})",
            r.engine, r.threads, r.millis, r.speedup, r.max_abs_err
        );
    }

    let speedup_8t =
        results.iter().filter(|r| r.threads == 8).map(|r| r.speedup).fold(0.0f64, f64::max);
    let speedup_1t =
        results.iter().filter(|r| r.threads == 1).map(|r| r.speedup).fold(0.0f64, f64::max);

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"exec_speedup\",\n");
    json.push_str(&format!(
        "  \"layer\": {{\"name\": \"vgg16d-conv3\", \"h\": {}, \"w\": {}, \"c\": {}, \"k\": {}, \"r\": 3, \"stride\": 1, \"pad\": {}, \"gflop\": {:.4}}},\n",
        shape.h, shape.w, shape.c, shape.k, shape.pad, gflop
    ));
    json.push_str(&format!("  \"threads_available\": {threads_available},\n"));
    json.push_str(&format!("  \"oracle_ms\": {oracle_ms:.3},\n"));
    json.push_str("  \"configs\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"engine\": \"{}\", \"threads\": {}, \"millis\": {:.3}, \"speedup\": {:.3}, \"max_abs_err\": {:.3e}}}{}\n",
            r.engine,
            r.threads,
            r.millis,
            r.speedup,
            r.max_abs_err,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"speedup_1t\": {speedup_1t:.3},\n"));
    json.push_str(&format!("  \"speedup_8t\": {speedup_8t:.3}\n}}\n"));

    std::fs::write("BENCH_exec.json", &json).expect("write BENCH_exec.json");
    println!("\nwrote BENCH_exec.json (speedup_1t {speedup_1t:.2}x, speedup_8t {speedup_8t:.2}x)");
    assert!(
        speedup_8t >= 4.0,
        "acceptance: wino-exec must be >= 4x over the spatial oracle at 8 threads, got {speedup_8t:.2}x"
    );
}
