//! Single-layer speedup of the `wino-exec` Winograd engine over the
//! `wino-baselines` spatial oracle, emitted as `BENCH_exec.json` —
//! plus, after all timing is done, an instrumented pass whose
//! phase-level profile and speedup metrics are merged into
//! `BENCH_obs.json` (section `"exec"`) through the `wino-obs`
//! exposition layer. Tracing stays **disabled** for every timed run,
//! so the numbers are the uninstrumented hot path; the profiled pass
//! runs afterwards, untimed.
//!
//! The layer is VGG16-D's conv3 geometry at 56×56 with 128 → 128
//! channels (~0.92 GFLOP of spatial-equivalent work). Each engine
//! configuration is timed best-of-3 against one oracle run, and the
//! verification column reports the worst absolute deviation from the
//! oracle — the speedup claim is only meaningful because the outputs
//! match.
//!
//! ## Honest thread accounting
//!
//! Requested thread counts are clamped to the hardware's
//! `available_parallelism` before measuring, and every emitted config
//! row carries both the requested and the *actual* worker count. A
//! multi-thread config that would merely oversubscribe a smaller
//! machine (e.g. "8 threads" on a 1-core CI runner) is **skipped**, not
//! silently measured as something else: it appears in the JSON's
//! `skipped` list with the reason, so downstream readers never mistake
//! a 1-core number for an 8-thread one.
//!
//! ## Acceptance gates (the process exits nonzero when violated)
//!
//! * single-thread best speedup ≥ [`MIN_SPEEDUP_1T`]× over the spatial
//!   oracle — 1.3× the PR-4 packed-GEMM-less baseline of 22.67×;
//! * on multi-core runners, every honestly measured multi-thread
//!   config must reach ≥ [`MIN_MT_EFFICIENCY`] of the same engine's
//!   single-thread throughput — multi-thread regressions fail the
//!   bench (and CI) instead of uploading as an artifact nobody reads;
//! * the algorithm crossover gates below.
//!
//! ## Algorithm crossover study (section `"algorithms"`)
//!
//! After the thread-scaling table, a second pass races the three
//! prepared backends — [`PreparedSpatial`], the best [`PreparedWinograd`]
//! tile, and [`PreparedFft`] at each power-of-two size ≥ the kernel — on
//! a representative stride-1 layer from each of the four model
//! workloads (shrunk by `wino_models::shrink` so the scalar oracle
//! stays affordable) plus a synthetic large-kernel layer (11×11 kernel
//! at 64×64, the geometry where overlap–save FFT should cross over).
//! Each row also records which algorithm the heterogeneous search
//! (`HeterogeneousSpace::with_fft_sizes`) picks for that layer under
//! the paper's 700-multiplier Virtex-7 budget, so the measured winner
//! and the model's pick can be compared side by side. The table is
//! merged into `BENCH_exec.json` under the `"algorithms"` key via
//! `wino_obs::update_artifact`, and the run fails unless, on the
//! large-kernel layer, the measured FFT engine beats the best forced
//! Winograd tile **and** the search picks FFT there.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use wino_baselines::{spatial_convolve, spatial_convolve_strided};
use wino_bench::print_comparison;
use wino_core::{spatial_ops, ConvShape, WinogradParams, Workload};
use wino_dse::Evaluator;
use wino_exec::{fft_error_bound, ConvBackend, PreparedFft, PreparedSpatial, PreparedWinograd};
use wino_fpga::virtex7_485t;
use wino_obs::{
    update_artifact, AggregatingProfiler, MetricFamily, MetricKind, MetricSample, ObsReport,
};
use wino_search::{AlgorithmChoice, HeterogeneousSpace, SearchSpace};
use wino_tensor::{ErrorStats, Shape4, SplitMix64, Tensor4};

/// Acceptance floor on the best single-thread speedup over the spatial
/// oracle: 1.3× the PR-4 baseline (22.67×), which the packed GEMM
/// micro-kernel clears with margin.
const MIN_SPEEDUP_1T: f64 = 29.5;

/// Multi-thread configs must deliver at least this fraction of the
/// same engine's single-thread throughput (slower-than-single-thread
/// scaling is the regression this gate exists to catch).
const MIN_MT_EFFICIENCY: f64 = 0.95;

struct ConfigResult {
    engine: String,
    threads_requested: usize,
    threads: usize,
    millis: f64,
    speedup: f64,
    max_abs_err: f64,
}

struct Skipped {
    engine: String,
    threads_requested: usize,
    reason: String,
}

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let value = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(value);
    }
    (best, out.expect("at least one rep"))
}

/// One measured algorithm on one crossover layer.
struct AlgoTiming {
    algo: String,
    millis: f64,
    max_abs_err: f64,
    /// Whether the output matched the spatial oracle within this
    /// algorithm's tolerance (the analytic [`fft_error_bound`] for FFT,
    /// the bench-wide 1e-2 for Winograd). Large Winograd tiles forced
    /// onto an 11×11 kernel are *expected* to fail this in f32 — that
    /// numerical breakdown is half the case for the FFT backend.
    verified: bool,
}

/// One layer's row in the crossover table.
struct CrossoverRow {
    layer: String,
    shape: ConvShape,
    timings: Vec<AlgoTiming>,
    /// Fastest *verified* algorithm by measured wall time.
    winner: String,
    /// What the heterogeneous search picks for this layer on the
    /// paper's Virtex-7 multiplier budget.
    search_pick: String,
}

/// What the heterogeneous search ({spatial, F(m×m), FFT(N)} per layer)
/// picks for a single layer under the paper's 700-multiplier budget:
/// exhaustive minimum-latency enumeration of the one-layer space.
fn search_pick(name: &str, shape: ConvShape) -> AlgorithmChoice {
    let mut wl = Workload::new(format!("crossover-{name}"), 1);
    wl.push(name, "Crossover", shape);
    let ev = Evaluator::new(wl, virtex7_485t());
    let space = HeterogeneousSpace::new(&ev, vec![1, 2, 4, 6], vec![1.0], 700, 200e6)
        .with_fft_sizes(vec![16, 32]);
    let best = (0..space.size())
        .map(|i| space.genome_at(i))
        .filter(|g| space.evaluate(g).feasible)
        .min_by(|a, b| space.evaluate(a).latency_ms.total_cmp(&space.evaluate(b).latency_ms))
        .expect("at least the spatial fallback is feasible");
    space.layer_designs(&best).expect("best genome decodes")[0].algo
}

/// Races spatial vs the best-fitting Winograd tiles vs overlap–save
/// FFT on one stride-1 layer, all single-threaded (this table is about
/// the algorithm, not thread scaling), and records the search's pick.
fn crossover_layer(name: &str, shape: ConvShape, seed: u64) -> CrossoverRow {
    assert_eq!(shape.stride, 1, "crossover layers are stride-1 by construction");
    let mut rng = SplitMix64::new(seed);
    let input =
        Tensor4::from_fn(Shape4 { n: 1, c: shape.c, h: shape.h, w: shape.w }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
    let kernels = Tensor4::from_fn(
        Shape4 { n: shape.k, c: shape.c, h: shape.r, w: shape.r },
        |_, _, _, _| rng.uniform_f32(-1.0, 1.0),
    );
    let oracle = spatial_convolve_strided(&input, &kernels, shape.pad, 1);

    let mut timings = Vec::new();
    let spatial = PreparedSpatial::new(kernels.clone(), 1);
    let (millis, out) = best_of(2, || spatial.execute(&input, shape.pad, 1));
    let stats = ErrorStats::between(out.as_slice(), oracle.as_slice());
    timings.push(AlgoTiming {
        algo: "spatial".into(),
        millis,
        max_abs_err: stats.max_abs,
        verified: stats.within_abs(1e-6),
    });

    for m in [2usize, 4, 6] {
        let Ok(params) = WinogradParams::new(m, shape.r) else { continue };
        let Ok(bank) = PreparedWinograd::new(params, &kernels) else { continue };
        let (millis, out) = best_of(3, || bank.execute(&input, shape.pad, 1));
        let stats = ErrorStats::between(out.as_slice(), oracle.as_slice());
        timings.push(AlgoTiming {
            algo: params.to_string(),
            millis,
            max_abs_err: stats.max_abs,
            verified: stats.within_abs(1e-2),
        });
    }

    for n in [8usize, 16, 32] {
        if n < shape.r {
            continue;
        }
        let bank = PreparedFft::new(n, &kernels);
        let (millis, out) = best_of(3, || bank.execute(&input, shape.pad, 1));
        let stats = ErrorStats::between(out.as_slice(), oracle.as_slice());
        let tol = fft_error_bound(&shape, n, 1.0, 1.0);
        assert!(
            stats.within_abs(tol),
            "FFT({n}) on {name} violated its analytic error bound: {stats} vs {tol:.3e}"
        );
        timings.push(AlgoTiming {
            algo: format!("FFT({n})"),
            millis,
            max_abs_err: stats.max_abs,
            verified: true,
        });
    }

    let winner = timings
        .iter()
        .filter(|t| t.verified)
        .min_by(|a, b| a.millis.total_cmp(&b.millis))
        .expect("spatial always verifies")
        .algo
        .clone();
    let pick = search_pick(name, shape);
    CrossoverRow { layer: name.into(), shape, timings, winner, search_pick: pick.to_string() }
}

/// Representative stride-1 layer from each model workload, shrunk so
/// the spatial oracle stays affordable, plus the synthetic large-kernel
/// layer the FFT backend exists for.
fn crossover_layers() -> Vec<(String, ConvShape)> {
    let mut out = Vec::new();
    for wl in wino_models::model_zoo(1) {
        let small = wino_models::shrink(&wl, 28, 32);
        let layer = small
            .layers()
            .iter()
            .find(|l| l.shape.winograd_compatible())
            .expect("every model has a stride-1 layer");
        out.push((format!("{}/{}", wl.name(), layer.name), layer.shape));
    }
    out.push((
        "synthetic/conv-11x11".into(),
        ConvShape { h: 64, w: 64, c: 24, k: 24, r: 11, stride: 1, pad: 5 },
    ));
    out
}

fn main() {
    let shape = ConvShape::same_padded(56, 56, 128, 128, 3);
    let gflop = spatial_ops(1, &shape) as f64 / 1e9;
    let mut rng = SplitMix64::new(2019);
    let input =
        Tensor4::from_fn(Shape4 { n: 1, c: shape.c, h: shape.h, w: shape.w }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
    let kernels = Tensor4::from_fn(Shape4 { n: shape.k, c: shape.c, h: 3, w: 3 }, |_, _, _, _| {
        rng.uniform_f32(-1.0, 1.0)
    });

    println!("layer: conv3-shaped {shape} ({gflop:.2} GFLOP)");
    let threads_available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("hardware threads available: {threads_available}\n");

    let (oracle_ms, oracle) = best_of(2, || spatial_convolve(&input, &kernels, shape.pad));

    let mut results: Vec<ConfigResult> = Vec::new();
    let mut skipped: Vec<Skipped> = Vec::new();
    for m in [2usize, 4] {
        let params = WinogradParams::new(m, 3).expect("valid");
        // The kernel-bank transform is a per-model one-time cost (the
        // executor and the serving registry both hoist it), so the
        // timed region is PreparedWinograd::execute alone.
        let bank = PreparedWinograd::new(params, &kernels).expect("bank prepares");
        for requested in [1usize, 8] {
            // Clamp to the hardware: an 8-thread request on a 4-core
            // runner is honestly measured as (and labeled) 4 threads.
            let actual = requested.min(threads_available);
            if results.iter().any(|r| r.engine == params.to_string() && r.threads == actual) {
                // The clamped width duplicates a config already
                // measured (e.g. 8 -> 1 on a 1-core runner): skip it
                // and say why, instead of mislabeling the same number
                // twice.
                println!(
                    "{params} @{requested}t: skipped (clamps to {actual} thread(s) on this \
                     {threads_available}-thread machine, already measured)"
                );
                skipped.push(Skipped {
                    engine: params.to_string(),
                    threads_requested: requested,
                    reason: format!(
                        "clamps to {actual} thread(s) on a {threads_available}-thread machine, \
                         already measured"
                    ),
                });
                continue;
            }
            let (millis, out) = best_of(3, || bank.execute(&input, shape.pad, actual));
            let stats = ErrorStats::between(out.as_slice(), oracle.as_slice());
            assert!(stats.within_abs(1e-2), "{params} diverged from the oracle: {stats}");
            results.push(ConfigResult {
                engine: params.to_string(),
                threads_requested: requested,
                threads: actual,
                millis,
                speedup: oracle_ms / millis,
                max_abs_err: stats.max_abs,
            });
        }
    }

    // "paper" column = the oracle's wall time, so the deviation column
    // reads as time saved relative to the scalar spatial baseline.
    let rows: Vec<(String, f64, f64)> = results
        .iter()
        .map(|r| (format!("{} @{}t ms", r.engine, r.threads), oracle_ms, r.millis))
        .collect();
    print_comparison("single-layer wall time vs spatial oracle (best-of-3)", &rows, 2);
    for r in &results {
        println!(
            "{} @{}t: {:.2} ms  ->  {:.2}x over the spatial oracle (max |err| {:.2e})",
            r.engine, r.threads, r.millis, r.speedup, r.max_abs_err
        );
    }

    let speedup_1t =
        results.iter().filter(|r| r.threads == 1).map(|r| r.speedup).fold(0.0f64, f64::max);
    let speedup_mt =
        results.iter().filter(|r| r.threads > 1).map(|r| r.speedup).fold(0.0f64, f64::max);

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"exec_speedup\",\n");
    json.push_str(&format!(
        "  \"layer\": {{\"name\": \"vgg16d-conv3\", \"h\": {}, \"w\": {}, \"c\": {}, \"k\": {}, \"r\": 3, \"stride\": 1, \"pad\": {}, \"gflop\": {:.4}}},\n",
        shape.h, shape.w, shape.c, shape.k, shape.pad, gflop
    ));
    json.push_str(&format!("  \"threads_available\": {threads_available},\n"));
    json.push_str(&format!("  \"oracle_ms\": {oracle_ms:.3},\n"));
    json.push_str("  \"configs\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"engine\": \"{}\", \"threads_requested\": {}, \"threads\": {}, \"millis\": {:.3}, \"speedup\": {:.3}, \"max_abs_err\": {:.3e}}}{}\n",
            r.engine,
            r.threads_requested,
            r.threads,
            r.millis,
            r.speedup,
            r.max_abs_err,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"skipped\": [\n");
    for (i, s) in skipped.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"engine\": \"{}\", \"threads_requested\": {}, \"reason\": \"{}\"}}{}\n",
            s.engine,
            s.threads_requested,
            s.reason,
            if i + 1 < skipped.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"speedup_1t\": {speedup_1t:.3},\n"));
    // null, not 0.0, when no multi-thread config could be measured —
    // a consumer must not read "unmeasured" as a zero regression.
    if speedup_mt > 0.0 {
        json.push_str(&format!("  \"speedup_mt\": {speedup_mt:.3}\n}}\n"));
    } else {
        json.push_str("  \"speedup_mt\": null\n}\n");
    }

    std::fs::write("BENCH_exec.json", &json).expect("write BENCH_exec.json");
    println!(
        "\nwrote BENCH_exec.json (speedup_1t {speedup_1t:.2}x, speedup_mt {}{})",
        if speedup_mt > 0.0 { format!("{speedup_mt:.2}x") } else { "n/a".into() },
        if skipped.is_empty() { "" } else { ", multi-thread configs skipped on this machine" },
    );

    // --- algorithm crossover study (merged as "algorithms") ------------
    println!("\nalgorithm crossover (single-thread, best-of-3; * = fastest verified):");
    let rows: Vec<CrossoverRow> = crossover_layers()
        .into_iter()
        .enumerate()
        .map(|(i, (name, shape))| crossover_layer(&name, shape, 0xC0DE + i as u64))
        .collect();
    for row in &rows {
        println!("  {} ({})  search picks {}", row.layer, row.shape, row.search_pick);
        for t in &row.timings {
            println!(
                "    {:>14}  {:>9.3} ms  max |err| {:.2e}{}{}",
                t.algo,
                t.millis,
                t.max_abs_err,
                if t.verified { "" } else { "  (FAILED 1e-2 verification)" },
                if t.algo == row.winner { "  *" } else { "" },
            );
        }
    }

    let mut algo_json = String::from("{\n    \"layers\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let s = &row.shape;
        algo_json.push_str(&format!(
            "      {{\"layer\": \"{}\", \"h\": {}, \"w\": {}, \"c\": {}, \"k\": {}, \"r\": {}, \
             \"pad\": {},\n       \"timings\": [",
            row.layer, s.h, s.w, s.c, s.k, s.r, s.pad
        ));
        for (j, t) in row.timings.iter().enumerate() {
            algo_json.push_str(&format!(
                "{}{{\"algo\": \"{}\", \"millis\": {:.3}, \"max_abs_err\": {:.3e}, \
                 \"verified\": {}}}",
                if j > 0 { ", " } else { "" },
                t.algo,
                t.millis,
                t.max_abs_err,
                t.verified
            ));
        }
        algo_json.push_str(&format!(
            "],\n       \"winner\": \"{}\", \"search_pick\": \"{}\"}}{}\n",
            row.winner,
            row.search_pick,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    algo_json.push_str("    ]\n  }");
    update_artifact(Path::new("BENCH_exec.json"), "algorithms", &algo_json)
        .expect("merge algorithms section into BENCH_exec.json");
    println!("merged algorithms section into BENCH_exec.json");

    // Crossover gates: on the synthetic large-kernel layer the measured
    // FFT engine must beat the best *forced* Winograd tile, and the
    // heterogeneous search must independently pick FFT for it.
    let big = rows.last().expect("synthetic layer present");
    let fft_best = big
        .timings
        .iter()
        .filter(|t| t.algo.starts_with("FFT"))
        .map(|t| t.millis)
        .fold(f64::INFINITY, f64::min);
    let wino_best = big
        .timings
        .iter()
        .filter(|t| t.algo.starts_with('F') && !t.algo.starts_with("FFT"))
        .map(|t| t.millis)
        .fold(f64::INFINITY, f64::min);
    assert!(
        fft_best < wino_best,
        "acceptance: FFT must beat the best forced Winograd tile on the 11x11 layer \
         (FFT {fft_best:.3} ms vs Winograd {wino_best:.3} ms)"
    );
    assert!(
        big.search_pick.starts_with("FFT"),
        "acceptance: the heterogeneous search must pick FFT for the 11x11 layer, picked {}",
        big.search_pick
    );
    assert!(
        big.winner.starts_with("FFT"),
        "acceptance: FFT must be the fastest verified algorithm on the 11x11 layer, winner {}",
        big.winner
    );

    // --- observability exposition (untimed: all measurement is done) ---
    // One instrumented pass per engine, profiler attached globally so
    // prepare-time spans (kernel-transform, gemm-pack) land in the
    // tree alongside the execute phases.
    let profiler = Arc::new(AggregatingProfiler::new());
    wino_obs::set_recorder(profiler.clone());
    wino_obs::enable();
    for m in [2usize, 4] {
        let params = WinogradParams::new(m, 3).expect("valid");
        let bank = PreparedWinograd::new(params, &kernels).expect("bank prepares");
        let _ = bank.execute(&input, shape.pad, 1);
    }
    wino_obs::disable();
    wino_obs::clear_recorder();

    let mut wall = MetricFamily {
        name: "wino_exec_wall_ms".into(),
        help: "best-of-3 execute wall time per measured configuration".into(),
        kind: MetricKind::Gauge,
        samples: Vec::new(),
    };
    for r in &results {
        wall.samples.push(MetricSample {
            labels: vec![
                ("engine".into(), r.engine.clone()),
                ("threads".into(), r.threads.to_string()),
            ],
            value: r.millis,
        });
    }
    let mut metrics = vec![
        MetricFamily::scalar(
            "wino_exec_oracle_ms",
            "spatial-oracle wall time for the same layer",
            MetricKind::Gauge,
            oracle_ms,
        ),
        MetricFamily::scalar(
            "wino_exec_speedup_1t",
            "best single-thread speedup over the spatial oracle",
            MetricKind::Gauge,
            speedup_1t,
        ),
        wall,
    ];
    if speedup_mt > 0.0 {
        metrics.push(MetricFamily::scalar(
            "wino_exec_speedup_mt",
            "best multi-thread speedup over the spatial oracle",
            MetricKind::Gauge,
            speedup_mt,
        ));
    }
    let report = ObsReport { metrics, profile: Some(profiler.snapshot()) };
    println!("\n{}", report.to_prometheus());
    update_artifact(Path::new("BENCH_obs.json"), "exec", &report.to_json())
        .expect("update BENCH_obs.json");
    println!("merged exec section into BENCH_obs.json");

    assert!(
        speedup_1t >= MIN_SPEEDUP_1T,
        "acceptance: single-thread wino-exec must be >= {MIN_SPEEDUP_1T}x over the spatial \
         oracle (1.3x the PR-4 baseline), got {speedup_1t:.2}x"
    );
    // Thread-scaling gate: only meaningful when a multi-thread config
    // was honestly measured (i.e. on a multi-core runner).
    for mt in results.iter().filter(|r| r.threads > 1) {
        let one = results
            .iter()
            .find(|r| r.engine == mt.engine && r.threads == 1)
            .expect("single-thread config measured first");
        let efficiency = mt.speedup / one.speedup;
        assert!(
            efficiency >= MIN_MT_EFFICIENCY,
            "acceptance: {} at {} threads delivers only {:.2}x of its single-thread \
             throughput (floor {MIN_MT_EFFICIENCY}) — multi-thread execution regressed",
            mt.engine,
            mt.threads,
            efficiency
        );
    }
}
