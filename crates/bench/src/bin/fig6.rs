//! Regenerates Fig. 6: throughput vs tile size and multiplier budget.

use wino_bench::{max_relative_deviation, print_comparison};
use wino_dse::figures::{fig6, paper};
use wino_models::vgg16d;

fn main() {
    let fig = fig6(&vgg16d(1), 200e6);
    println!("{}", fig.title);
    println!("{}", fig.to_table(2).to_ascii());

    let mut rows = Vec::new();
    for (row, (name, values)) in fig.series.iter().enumerate() {
        for (col, &v) in values.iter().enumerate() {
            rows.push((format!("{name} {}", fig.x_labels[col]), paper::FIG6_GOPS[row][col], v));
        }
    }
    print_comparison("Fig. 6 vs paper (GOPS @ 200 MHz)", &rows, 2);
    println!("max deviation: {:.3}%", 100.0 * max_relative_deviation(&rows));
}
