//! Regenerates Table II: the full VGG16-D performance comparison.

use wino_bench::print_comparison;
use wino_dse::{table2, table2_text, Evaluator};
use wino_fpga::virtex7_485t;
use wino_models::vgg16d;

fn main() {
    let evaluator = Evaluator::new(vgg16d(1), virtex7_485t());
    let cols = table2(&evaluator);
    println!("{}", table2_text(&cols).to_ascii());

    // Paper values for the three proposed-design columns:
    // (label, group latencies, total ms, GOPS, GOPS/mult, GOPS/W).
    type PaperColumn = (&'static str, [f64; 5], f64, f64, f64, f64);
    let paper: [PaperColumn; 3] = [
        ("Ours 2,3", [6.25, 8.96, 14.94, 14.94, 4.48], 49.57, 619.2, 0.90, 13.03),
        ("Ours 3,3", [4.27, 6.12, 10.19, 10.19, 3.06], 33.83, 907.2, 1.29, 23.96),
        ("Ours 4,3", [3.54, 5.07, 8.45, 8.45, 2.54], 28.05, 1094.3, 1.60, 36.32),
    ];
    let mut rows = Vec::new();
    for (label, conv, overall, gops, eff, watts) in paper {
        let col = cols.iter().find(|c| c.label == label).expect("column exists");
        for (gi, name) in ["Conv1", "Conv2", "Conv3", "Conv4", "Conv5"].iter().enumerate() {
            rows.push((format!("{label} {name} (ms)"), conv[gi], col.conv_ms[gi]));
        }
        rows.push((format!("{label} overall (ms)"), overall, col.overall_ms));
        rows.push((format!("{label} throughput (GOPS)"), gops, col.throughput_gops));
        rows.push((format!("{label} GOPS/mult"), eff, col.mult_efficiency));
        rows.push((format!("{label} power (W)"), watts, col.power_w));
    }
    print_comparison("Table II proposed-design columns vs paper", &rows, 2);

    let ours_m4 = cols.iter().find(|c| c.label == "Ours 4,3").expect("exists");
    let podili = cols.iter().find(|c| c.label == "[3]").expect("exists");
    let podili_a = cols.iter().find(|c| c.label == "[3]a").expect("exists");
    let ours_m2 = cols.iter().find(|c| c.label == "Ours 2,3").expect("exists");
    println!("Headline claims:");
    println!(
        "  throughput: {:.1}/{:.1} = {:.2}x vs [3] (paper: 4.75x) using {}/{} = {:.2}x multipliers",
        ours_m4.throughput_gops,
        podili.throughput_gops,
        ours_m4.throughput_gops / podili.throughput_gops,
        ours_m4.multipliers,
        podili.multipliers,
        ours_m4.multipliers as f64 / podili.multipliers as f64,
    );
    println!(
        "  power efficiency: {:.2}/{:.2} = {:.2}x vs [3]a (paper: 1.44x; see DESIGN.md §8 on \
         the paper's internally inconsistent m=2 power entry)",
        ours_m2.power_efficiency,
        podili_a.power_efficiency,
        ours_m2.power_efficiency / podili_a.power_efficiency,
    );
    println!(
        "  vs [12]: {:.2}x throughput with {:.2}x multipliers (paper: 5.83x, 0.88x)",
        ours_m4.throughput_gops / 187.8,
        ours_m4.multipliers as f64 / 780.0,
    );
}
