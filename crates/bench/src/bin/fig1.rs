//! Regenerates Fig. 1: multiplication complexity per VGG16-D conv group.

use wino_bench::{max_relative_deviation, print_comparison};
use wino_dse::figures::{fig1, paper};
use wino_models::vgg16d;

fn main() {
    let wl = vgg16d(1);
    let fig = fig1(&wl);
    println!("{}", fig.to_table(3).to_ascii());

    let mut rows = Vec::new();
    for (si, (name, values)) in fig.series.iter().enumerate() {
        for (vi, &v) in values.iter().enumerate() {
            rows.push((format!("{name} {}", fig.x_labels[vi]), paper::FIG1[si][vi], v));
        }
    }
    print_comparison("Fig. 1 vs paper (x1e9 multiplications)", &rows, 3);
    println!("max deviation: {:.2}%", 100.0 * max_relative_deviation(&rows));
}
