//! Sec. IV-C: implementation-level transform overhead (Eq. 7).

use wino_core::{
    implementation_overhead, overhead_ratio_per_pe, overhead_ratio_shared, pe_count, TileModel,
    TransformOps, WinogradParams,
};
use wino_models::vgg16d;

fn main() {
    let ops = TransformOps::LAVIN_F2X2_3X3;
    let p2 = WinogradParams::new(2, 3).expect("valid");
    println!("Per-tile transform overhead relative to spatial multiplications,");
    println!("F(2x2,3x3) with Lavin's counts (beta=32, gamma=28, delta=24):\n");
    println!("{:>6} {:>12} {:>12}", "P", "ours", "[3]");
    for p in [1usize, 4, 16, 64] {
        println!(
            "{:>6} {:>11.3}x {:>11.3}x",
            p,
            overhead_ratio_shared(p2, ops, p as f64),
            overhead_ratio_per_pe(p2, ops)
        );
    }
    println!("\npaper (P=16): ours 1.5x, [3] 2.33x\n");

    // Eq. 7 over the whole of VGG16-D for the three proposed designs.
    let wl = vgg16d(1);
    println!("Eq. 7 whole-network online transform work O_T (GFLOP):");
    for (m, budget) in [(2usize, 688usize), (3, 700), (4, 684)] {
        let params = WinogradParams::new(m, 3).expect("valid");
        let p = pe_count(budget, params) as f64;
        let ops = wino_core::transform_ops_for(params, wino_core::CostModel::ShiftFree);
        let total: f64 = wl
            .layers()
            .iter()
            .map(|l| implementation_overhead(1, &l.shape, params, ops, p, TileModel::Fractional))
            .sum();
        println!("  F({m}x{m},3x3), P={p:.0}: {:.2} GFLOP", total / 1e9);
    }
    println!("(the element-wise stage does 3.8-7.7 G multiplies; the amortized data");
    println!("transform is a small additive overhead, which is the point of Eq. 7)");
}
