//! Serving storm study: the sharded, continuously-batched serving
//! layer under a seeded, bursty multi-tenant storm — 10⁵ requests on
//! the virtual clock (a discrete-event simulation over the *real*
//! [`ShardSet`], with modeled layer service times), plus a smaller
//! wall-clock storm (10³⁺ requests) through a real threaded [`Server`].
//! Results merge into `BENCH_serve.json` under the `"storm"` key.
//!
//! The trace has four phases: steady load, an overload spike (~6×
//! arrival rate, driving queues to rejection), tenant skew (~70 % of
//! traffic on one model) and a cool-down tail; the simulation then
//! drains under load. Two configurations replay the identical trace:
//!
//! * **single-shard baseline** — 1 shard × 4 workers, no stealing, no
//!   continuous batching (the pre-sharding serving architecture);
//! * **sharded** — 4 shards × 1 worker, work stealing on, continuous
//!   batching admitting queued requests into in-flight batches at
//!   layer boundaries.
//!
//! Gates (asserted here; CI runs this binary and fails on any):
//!
//! 1. **Zero lost requests** in every run: admitted == served.
//!    Rejection at admission (bounded queues during the spike) is the
//!    only permitted loss mode.
//! 2. **Bitwise equality**: sampled batch compositions from the
//!    sharded run — including mid-flight joiners with their exact join
//!    boundaries — are re-executed for real through
//!    `infer_batch_continuous` and compared lane-by-lane against solo
//!    `infer_one` runs.
//! 3. **No tail regression from sharding**: sharded all-class p99 must
//!    stay within 1.10× of the single-shard baseline (same total
//!    worker count).
//! 4. **Determinism**: replaying the same seed yields an identical
//!    summary, making the recorded JSON a meaningful CI baseline.
//! 5. **Trace integrity**: a [`TraceIndex`] records every request
//!    event of the sharded run; `verify()` must pass (every admitted
//!    seq has exactly one causally-ordered timeline ending in exactly
//!    one terminal event) and its aggregate counts must agree with the
//!    simulation's own bookkeeping — with steals and mid-flight joins
//!    actually observed. The per-request timelines export as
//!    `STORM_trace.json` (Chrome trace format) and the always-on
//!    flight recorder's black box as `STORM_flight.json`.
//! 6. **SLO burn-rate alerting**: an [`SloEngine`] with a pooled
//!    10 ms / 99 % objective watches metrics snapshots every 10 ms of
//!    virtual time. The overload spike **must** trip a fast-burn
//!    alert, and the steady phase before it must stay quiet — the
//!    alerting pipeline is regression-tested end to end, in CI, with
//!    zero wall-clock flakiness. Results merge into `BENCH_serve.json`
//!    as the `"slo"` section.
//!
//! `--virtual-only` skips the wall-clock storm (used by CI, where
//! wall-clock latency figures would be noise anyway).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt::Write as _;
use std::iter::Peekable;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wino_obs::{
    update_artifact, validate_json, write_atomic, FlightRecorder, ReqEvent, ReqEventKind,
    TraceIndex,
};
use wino_serve::{
    BatchConfig, LatencyHistogram, Metrics, ModelRegistry, Priority, ServeConfig, Server,
    ShardPoll, ShardSet, SloAlert, SloEngine, SloPolicy,
};
use wino_tensor::SplitMix64;

const VIRTUAL_REQUESTS: usize = 100_000;
const SYSTEM_REQUESTS: usize = 1_200;
const TRACE_SEED: u64 = 0x5702_2019;

/// SLO policy under test: 99 % of requests under 10 ms, pooled across
/// classes (effective threshold 16.384 ms after the log₂ bucket-edge
/// round-up — see `LatencyHistogram::count_over`).
const SLO_OBJECTIVE: Duration = Duration::from_millis(10);
const SLO_BUDGET: f64 = 0.01;
const SLO_FAST_WINDOW: Duration = Duration::from_millis(50);
const SLO_SLOW_WINDOW: Duration = Duration::from_millis(500);
/// Virtual-time cadence of SLO observations during the simulation.
const OBSERVE_PERIOD: Duration = Duration::from_millis(10);
/// Flight-recorder ring capacity per shard in the simulated storm.
const FLIGHT_CAPACITY: usize = 512;

/// One synthetic request of the storm trace.
struct StormItem {
    model: usize,
    priority: Priority,
    seed: u64,
    arrival: Duration,
}

fn priority_mix(r: u64) -> Priority {
    match r % 10 {
        0..=1 => Priority::High,
        2..=7 => Priority::Normal,
        _ => Priority::Low,
    }
}

/// A seeded, bursty, multi-tenant arrival trace in four phases:
/// steady → overload spike → tenant skew → cool-down.
fn build_storm(models: usize, requests: usize, rng: &mut SplitMix64) -> Vec<StormItem> {
    let mut at = Duration::ZERO;
    (0..requests)
        .map(|i| {
            let phase = i * 4 / requests.max(1);
            let gap_us = match phase {
                0 => 40 + rng.next_u64() % 80,  // steady: ~12.5k req/s
                1 => 4 + rng.next_u64() % 12,   // spike: ~6x the rate
                2 => 25 + rng.next_u64() % 50,  // skewed steady
                _ => 60 + rng.next_u64() % 120, // cool-down tail
            };
            at += Duration::from_micros(gap_us);
            let model = if phase == 2 && rng.next_u64() % 10 < 7 {
                0 // tenant skew: 70% of traffic hammers one model
            } else {
                (rng.next_u64() % models as u64) as usize
            };
            StormItem {
                model,
                priority: priority_mix(rng.next_u64()),
                seed: rng.next_u64() % 1_000_000,
                arrival: at,
            }
        })
        .collect()
}

/// Modeled service time of one layer at the current lane count: a
/// per-model base plus a mild per-lane increment (batching amortizes,
/// it does not come free). Purely deterministic — the simulation's
/// virtual clock never reads real time.
fn layer_dt(model: usize, lanes: usize) -> Duration {
    Duration::from_micros(18 + 4 * model as u64 + 3 * lanes as u64)
}

/// A batch composition captured for real re-execution: initial lane
/// seeds plus every join (layer boundary, joiner seeds).
struct Sample {
    model: usize,
    initial: Vec<u64>,
    joins: Vec<(usize, Vec<u64>)>,
}

#[derive(Default)]
struct ShardStats {
    batches: u64,
    stolen: u64,
    latency: LatencyHistogram,
}

struct SimOutcome {
    admitted: u64,
    rejected: u64,
    served: u64,
    batches: u64,
    stolen: u64,
    makespan: Duration,
    all: LatencyHistogram,
    classes: [LatencyHistogram; 3],
    class_counts: [u64; 3],
    shards: Vec<ShardStats>,
    samples: Vec<Sample>,
}

struct SimConfig {
    shards: usize,
    workers_per_shard: usize,
    steal: bool,
    continuous: bool,
    collect_samples: bool,
}

/// Observability side-car for one simulated run: cumulative metrics
/// feeding a burn-rate engine on the virtual clock, plus the always-on
/// per-shard flight recorder. The simulation's *outcome* never depends
/// on it — gate 4 replays without one and must match byte for byte.
struct StormObs {
    metrics: Metrics,
    engine: SloEngine,
    next_observe: Duration,
    alerts: Vec<SloAlert>,
    flight: Arc<FlightRecorder>,
}

impl StormObs {
    fn new(models: usize, shards: usize) -> StormObs {
        StormObs {
            metrics: Metrics::new((0..models).map(|m| format!("m{m}")).collect(), shards),
            engine: SloEngine::new(vec![SloPolicy::two_window(
                "storm-latency",
                None,
                SLO_OBJECTIVE,
                SLO_BUDGET,
                SLO_FAST_WINDOW,
                SLO_SLOW_WINDOW,
            )]),
            next_observe: OBSERVE_PERIOD,
            alerts: Vec::new(),
            flight: Arc::new(FlightRecorder::new(shards, FLIGHT_CAPACITY)),
        }
    }
}

/// Emits one simulated request-trace event to the global recorder (a
/// no-op unless tracing is enabled) and mirrors it into the shard
/// set's flight ring, when one is attached.
fn trace_sim(set: &ShardSet<u64>, lane: usize, event: ReqEvent) {
    wino_obs::record_req(&event);
    if let Some(flight) = set.flight() {
        flight.record(lane, event);
    }
}

fn inject(
    set: &ShardSet<u64>,
    arrivals: &mut Peekable<std::slice::Iter<'_, StormItem>>,
    now: Duration,
    admitted: &mut u64,
    rejected: &mut u64,
) {
    while arrivals.peek().is_some_and(|a| a.arrival <= now) {
        let item = arrivals.next().expect("peeked");
        match set.submit(item.model, item.priority, item.seed, item.arrival) {
            Ok(_) => *admitted += 1,
            Err(_) => {
                *rejected += 1;
                // Refused at admission: no seq exists, so the shed
                // event rides the seq-0 convention.
                trace_sim(
                    set,
                    set.home(item.model),
                    ReqEvent::new(0, item.arrival, ReqEventKind::Shed),
                );
            }
        }
    }
}

/// Discrete-event replay of `trace` against a real [`ShardSet`]:
/// virtual workers poll (and steal), batches execute with modeled
/// per-layer service times, and — with continuous batching on —
/// arrivals that land mid-batch join at the next layer boundary,
/// exactly as the threaded server admits them. Arrivals during a
/// batch's execution window are injected at the boundary they precede,
/// so admission timing matches the layer-boundary hook semantics.
fn simulate(
    trace: &[StormItem],
    caps: &[usize],
    layer_counts: &[usize],
    cfg: &SimConfig,
    mut obs: Option<&mut StormObs>,
) -> SimOutcome {
    let batch_cfg =
        BatchConfig { max_batch: 8, max_wait: Duration::from_micros(400), queue_capacity: 512 };
    let mut set: ShardSet<u64> = ShardSet::new(cfg.shards, caps.to_vec(), batch_cfg, cfg.steal);
    if let Some(o) = obs.as_deref_mut() {
        set = set.with_flight(Arc::clone(&o.flight));
    }
    let mut arrivals = trace.iter().peekable();
    let mut out = SimOutcome {
        admitted: 0,
        rejected: 0,
        served: 0,
        batches: 0,
        stolen: 0,
        makespan: Duration::ZERO,
        all: LatencyHistogram::new(),
        classes: [LatencyHistogram::new(), LatencyHistogram::new(), LatencyHistogram::new()],
        class_counts: [0; 3],
        shards: (0..cfg.shards).map(|_| ShardStats::default()).collect(),
        samples: Vec::new(),
    };
    let mut join_samples = 0usize;
    let mut plain_samples = 0usize;

    // The worker heap: (next event time, shard, worker id), earliest
    // first. A worker's event is either "free to poll" or "batch done".
    let mut heap: BinaryHeap<Reverse<(Duration, usize, usize)>> = (0..cfg.shards)
        .flat_map(|s| (0..cfg.workers_per_shard).map(move |w| Reverse((Duration::ZERO, s, w))))
        .collect();

    while let Some(Reverse((t, shard, worker))) = heap.pop() {
        // The heap pops events in time order, so `t` is monotone:
        // advance the SLO engine through every observation instant the
        // simulation just crossed.
        if let Some(o) = obs.as_deref_mut() {
            while t >= o.next_observe {
                let at = o.next_observe;
                let snapshot = o.metrics.snapshot(at);
                o.alerts.extend(o.engine.observe(at, &snapshot));
                o.next_observe += OBSERVE_PERIOD;
            }
        }
        inject(&set, &mut arrivals, t, &mut out.admitted, &mut out.rejected);
        match set.poll_at(shard, t) {
            ShardPoll::Ready { batch, from } => {
                let model = batch.model;
                let layers = layer_counts[model];
                let cap = caps[model];
                let mut lanes = batch.requests;
                let mut joins: Vec<(usize, Vec<u64>)> = Vec::new();
                // `(seq, boundary)` per mid-flight joiner, for the
                // join/catch-up trace events.
                let mut joined: Vec<(u64, usize)> = Vec::new();
                let mut tb = t;
                let mut max_join = 0usize;
                for boundary in 1..layers {
                    tb += layer_dt(model, lanes.len());
                    if cfg.continuous {
                        inject(&set, &mut arrivals, tb, &mut out.admitted, &mut out.rejected);
                        let free = cap.saturating_sub(lanes.len());
                        if free > 0 {
                            let joiners = set.admit_into(model, free);
                            if !joiners.is_empty() {
                                max_join = boundary;
                                for j in &joiners {
                                    joined.push((j.seq, boundary));
                                    trace_sim(
                                        &set,
                                        shard,
                                        ReqEvent::new(
                                            j.seq,
                                            tb,
                                            ReqEventKind::Join { layer: boundary as u32 },
                                        ),
                                    );
                                }
                                joins.push((boundary, joiners.iter().map(|r| r.payload).collect()));
                                lanes.extend(joiners);
                            }
                        }
                    }
                }
                tb += layer_dt(model, lanes.len()); // final layer
                                                    // Catch-up passes for the latest joiner's missed
                                                    // prefix, at the full lane count (they run batched).
                for _ in 0..max_join {
                    tb += layer_dt(model, lanes.len());
                }
                let t_end = tb;
                out.batches += 1;
                out.served += lanes.len() as u64;
                let stats = &mut out.shards[shard];
                stats.batches += 1;
                if from != shard {
                    out.stolen += 1;
                    stats.stolen += 1;
                }
                for item in &lanes {
                    let latency = t_end.saturating_sub(item.enqueued_at);
                    out.all.record(latency);
                    out.classes[item.priority.index()].record(latency);
                    out.class_counts[item.priority.index()] += 1;
                    stats.latency.record(latency);
                }
                // Joiners catch up on their missed prefix after the
                // shared layers; every lane then resolves at t_end.
                for &(seq, boundary) in &joined {
                    trace_sim(
                        &set,
                        shard,
                        ReqEvent::new(
                            seq,
                            t_end,
                            ReqEventKind::CatchUp { layers: boundary as u32 },
                        ),
                    );
                }
                for item in &lanes {
                    // Same clamp as dispatch tracing: mid-batch
                    // injection can enqueue a lane "after" the poll
                    // instant that released it, and resolution can
                    // never precede admission.
                    let at = t_end.max(item.enqueued_at);
                    trace_sim(&set, shard, ReqEvent::new(item.seq, at, ReqEventKind::Resolved));
                }
                if let Some(o) = obs.as_deref_mut() {
                    let priorities: Vec<Priority> = lanes.iter().map(|r| r.priority).collect();
                    let waits: Vec<Duration> =
                        lanes.iter().map(|r| t.saturating_sub(r.enqueued_at)).collect();
                    let latencies: Vec<Duration> =
                        lanes.iter().map(|r| t_end.saturating_sub(r.enqueued_at)).collect();
                    o.metrics.record_batch(
                        model,
                        shard,
                        from != shard,
                        t_end.saturating_sub(t),
                        &priorities,
                        &waits,
                        &latencies,
                    );
                }
                out.makespan = out.makespan.max(t_end);
                if cfg.collect_samples {
                    // A handful of compositions for real re-execution:
                    // prefer batches that actually grew mid-flight.
                    if !joins.is_empty() && join_samples < 5 {
                        join_samples += 1;
                        out.samples.push(Sample {
                            model,
                            initial: lanes
                                [..lanes.len() - joins.iter().map(|(_, s)| s.len()).sum::<usize>()]
                                .iter()
                                .map(|r| r.payload)
                                .collect(),
                            joins: joins.clone(),
                        });
                    } else if out.batches.is_multiple_of(20_000) && plain_samples < 4 {
                        plain_samples += 1;
                        out.samples.push(Sample {
                            model,
                            initial: lanes.iter().map(|r| r.payload).collect(),
                            joins: Vec::new(),
                        });
                    }
                }
                heap.push(Reverse((t_end, shard, worker)));
            }
            ShardPoll::Wait(hint) => {
                let next_arrival = arrivals.peek().map(|a| a.arrival);
                if next_arrival.is_none() && set.is_empty() {
                    continue; // retire this worker; loop ends at empty heap
                }
                let mut wake = t + hint.unwrap_or(Duration::from_micros(200));
                if let Some(at) = next_arrival {
                    wake = wake.min(at.max(t));
                }
                // Strictly advance time so two empty polls can never
                // livelock at one instant.
                wake = wake.max(t + Duration::from_micros(1));
                heap.push(Reverse((wake, shard, worker)));
            }
        }
    }
    assert!(set.is_empty(), "simulation ended with requests still queued");
    out
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Serializes one run's outcome as a JSON object (also the determinism
/// fingerprint: two runs of the same seed must produce identical text).
fn outcome_json(out: &SimOutcome) -> String {
    let mut j = String::new();
    let _ = writeln!(
        j,
        "{{\"admitted\": {}, \"rejected\": {}, \"served\": {}, \"batches\": {}, \"stolen\": {}, \"makespan_ms\": {:.3},",
        out.admitted, out.rejected, out.served, out.batches, out.stolen, ms(out.makespan)
    );
    let _ = writeln!(
        j,
        "      \"all\": {{\"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \"mean_ms\": {:.3}}},",
        ms(out.all.quantile(0.5)),
        ms(out.all.quantile(0.99)),
        ms(out.all.quantile(0.999)),
        ms(out.all.mean())
    );
    j.push_str("      \"classes\": [");
    for (i, class) in [Priority::High, Priority::Normal, Priority::Low].iter().enumerate() {
        let h = &out.classes[i];
        let _ = write!(
            j,
            "{}{{\"class\": \"{class}\", \"completed\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}}}",
            if i > 0 { ", " } else { "" },
            out.class_counts[i],
            ms(h.quantile(0.5)),
            ms(h.quantile(0.99)),
            ms(h.quantile(0.999))
        );
    }
    j.push_str("],\n      \"per_shard\": [");
    for (i, s) in out.shards.iter().enumerate() {
        let _ = write!(
            j,
            "{}{{\"shard\": {i}, \"batches\": {}, \"stolen\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}}}",
            if i > 0 { ", " } else { "" },
            s.batches,
            s.stolen,
            ms(s.latency.quantile(0.5)),
            ms(s.latency.quantile(0.99)),
            ms(s.latency.quantile(0.999))
        );
    }
    j.push_str("]}");
    j
}

/// The wall-clock storm: a real threaded sharded server, real
/// convolutions, `SYSTEM_REQUESTS` requests.
fn system_storm(registry: ModelRegistry) -> String {
    let ids: Vec<_> = registry.entries().iter().map(|e| e.id().clone()).collect();
    let mut rng = SplitMix64::new(TRACE_SEED ^ 0xABCD);
    let trace = build_storm(ids.len(), SYSTEM_REQUESTS, &mut rng);
    let sample_direct: Vec<_> = trace
        .iter()
        .step_by(97)
        .map(|item| (item.model, item.seed, registry.entry(item.model).infer_one(item.seed)))
        .collect();
    let server = Server::start(
        registry,
        ServeConfig {
            shards: 2,
            workers: 2,
            steal: true,
            continuous: true,
            exec_threads_per_worker: Some(1),
            batch: BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_micros(500),
                queue_capacity: SYSTEM_REQUESTS,
            },
            slo: None,
            inject_panic_seed: None,
            ..ServeConfig::default()
        },
    );
    let start = Instant::now();
    let handles: Vec<_> = trace
        .iter()
        .map(|item| {
            let target = item.arrival;
            let now = start.elapsed();
            if target > now {
                std::thread::sleep(target - now);
            }
            let h = server
                .submit(&ids[item.model], item.priority, item.seed)
                .expect("queue sized for the trace; nothing refused");
            (item.model, item.seed, h)
        })
        .collect();
    let results: Vec<_> = handles
        .into_iter()
        .map(|(m, s, h)| (m, s, h.wait().expect("no faults injected")))
        .collect();
    let wall = start.elapsed();
    let snapshot = server.shutdown();

    // Gate 1 (system): zero lost.
    assert_eq!(snapshot.total_completed() as usize, SYSTEM_REQUESTS, "every request answered");
    assert_eq!(snapshot.total_rejected(), 0);
    assert_eq!(snapshot.total_failed(), 0);
    // Gate 2 (system): sampled bitwise equality through the real
    // sharded, stolen, continuously-batched path.
    for (model, seed, direct) in &sample_direct {
        let (_, _, served) = results
            .iter()
            .find(|(m, s, _)| m == model && s == seed)
            .expect("sampled request served");
        assert_eq!(&served.output, direct, "served output == solo run, bitwise");
    }
    let rps = SYSTEM_REQUESTS as f64 / wall.as_secs_f64();
    println!(
        "system storm: {SYSTEM_REQUESTS} requests in {:.1} ms ({rps:.0} req/s, {} stolen)",
        ms(wall),
        snapshot.total_stolen()
    );
    print!("{snapshot}");

    let mut j = String::new();
    let _ = write!(
        j,
        "{{\"requests\": {SYSTEM_REQUESTS}, \"shards\": 2, \"workers_per_shard\": 2, \"wall_ms\": {:.1}, \"throughput_rps\": {rps:.0}, \"stolen\": {}, \"classes\": [",
        ms(wall),
        snapshot.total_stolen()
    );
    for (i, c) in snapshot.latency_by_class.iter().enumerate() {
        let _ = write!(
            j,
            "{}{{\"class\": \"{}\", \"completed\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}}}",
            if i > 0 { ", " } else { "" },
            c.priority,
            c.completed,
            ms(c.p50),
            ms(c.p99),
            ms(c.p999)
        );
    }
    j.push_str("], \"per_shard\": [");
    for (i, s) in snapshot.per_shard.iter().enumerate() {
        let _ = write!(
            j,
            "{}{{\"shard\": {}, \"batches\": {}, \"stolen\": {}, \"p999_ms\": {:.3}}}",
            if i > 0 { ", " } else { "" },
            s.shard,
            s.batches,
            s.stolen,
            ms(s.p999)
        );
    }
    j.push_str("]}");
    j
}

fn main() {
    let virtual_only = std::env::args().any(|a| a == "--virtual-only");
    let registry = ModelRegistry::standard(8, 1).expect("standard registry");
    let caps: Vec<usize> = registry.entries().iter().map(|e| e.max_batch()).collect();
    let layer_counts: Vec<usize> = registry.entries().iter().map(|e| e.layer_count()).collect();

    let mut rng = SplitMix64::new(TRACE_SEED);
    let trace = build_storm(caps.len(), VIRTUAL_REQUESTS, &mut rng);
    println!(
        "storm trace: {} requests over {:.1} ms of virtual time, {} models",
        trace.len(),
        ms(trace.last().expect("non-empty trace").arrival),
        caps.len()
    );

    // --- virtual-clock storms: baseline vs sharded, same trace ---
    let baseline_cfg = SimConfig {
        shards: 1,
        workers_per_shard: 4,
        steal: false,
        continuous: false,
        collect_samples: false,
    };
    let sharded_cfg = SimConfig {
        shards: 4,
        workers_per_shard: 1,
        steal: true,
        continuous: true,
        collect_samples: true,
    };
    let wall = Instant::now();
    let baseline = simulate(&trace, &caps, &layer_counts, &baseline_cfg, None);
    // The sharded run carries the full observability stack: a global
    // TraceIndex collecting every request event, the per-shard flight
    // recorder, and the SLO burn-rate engine on the virtual clock.
    // Tracing is enabled for exactly this run — the replay below must
    // stay byte-identical with tracing off (gate 4), proving the
    // instrumentation never steers the simulation.
    let index = Arc::new(TraceIndex::new());
    wino_obs::set_recorder(Arc::clone(&index) as Arc<dyn wino_obs::Recorder>);
    wino_obs::enable();
    let mut storm_obs = StormObs::new(caps.len(), sharded_cfg.shards);
    let sharded = simulate(&trace, &caps, &layer_counts, &sharded_cfg, Some(&mut storm_obs));
    wino_obs::disable();
    wino_obs::clear_recorder();
    println!("simulated 2 x {} requests in {:.1} ms wall", VIRTUAL_REQUESTS, ms(wall.elapsed()));
    println!(
        "baseline: served {}/{} (rejected {}), all-class p99 {:.3} ms",
        baseline.served,
        baseline.admitted,
        baseline.rejected,
        ms(baseline.all.quantile(0.99))
    );
    println!(
        "sharded:  served {}/{} (rejected {}), all-class p99 {:.3} ms, {} stolen batches",
        sharded.served,
        sharded.admitted,
        sharded.rejected,
        ms(sharded.all.quantile(0.99)),
        sharded.stolen
    );

    // Gate 1: zero admitted-but-unserved requests, in both runs.
    assert_eq!(baseline.admitted, baseline.served, "baseline lost requests");
    assert_eq!(sharded.admitted, sharded.served, "sharded run lost requests");

    // Gate 2: sampled compositions — including mid-flight joiners at
    // their exact boundaries — re-executed for real, bitwise.
    let mut checked_lanes = 0usize;
    let mut joiner_lanes = 0usize;
    for sample in &sharded.samples {
        let entry = registry.entry(sample.model);
        let mut pending = sample.joins.clone();
        let lanes = entry.infer_batch_continuous(
            sample.initial.clone(),
            |&s| s,
            |b| {
                let mut joiners = Vec::new();
                pending.retain(|(boundary, seeds)| {
                    if *boundary == b.next_layer {
                        joiners.extend(seeds.iter().copied());
                        false
                    } else {
                        true
                    }
                });
                joiners
            },
        );
        assert!(pending.is_empty(), "every recorded join replayed");
        joiner_lanes += sample.joins.iter().map(|(_, s)| s.len()).sum::<usize>();
        for (seed, output) in lanes {
            assert_eq!(
                output,
                entry.infer_one(seed),
                "lane {seed} of a sampled storm batch diverged from its solo run"
            );
            checked_lanes += 1;
        }
    }
    assert!(!sharded.samples.is_empty(), "sampling captured no batches");
    println!(
        "bitwise check: {} sampled batches, {checked_lanes} lanes ({joiner_lanes} mid-flight joiners) == solo runs",
        sharded.samples.len()
    );

    // Gate 3: sharding must not regress the tail vs the same worker
    // count behind one queue.
    let base_p99 = baseline.all.quantile(0.99);
    let shard_p99 = sharded.all.quantile(0.99);
    let ratio = shard_p99.as_secs_f64() / base_p99.as_secs_f64().max(1e-12);
    println!("p99 ratio sharded/baseline: {ratio:.3}");
    assert!(
        ratio <= 1.10,
        "sharded p99 ({:.3} ms) regressed over baseline ({:.3} ms) by {ratio:.3}x",
        ms(shard_p99),
        ms(base_p99)
    );

    // Gate 4: determinism — same seed, same summary, byte for byte.
    // The replay runs with tracing disabled and no obs side-car, so a
    // match also proves the instrumentation is outcome-neutral.
    let replay = simulate(&trace, &caps, &layer_counts, &sharded_cfg, None);
    assert_eq!(
        outcome_json(&sharded),
        outcome_json(&replay),
        "storm replay diverged; the recorded baseline would be meaningless"
    );
    println!("determinism: replay summary identical");

    // Gate 5: trace integrity. Every admitted seq must reassemble into
    // a causally-valid timeline with exactly one terminal event, and
    // the index's aggregate view must agree with the simulation's own
    // counters.
    let stats = index.verify().unwrap_or_else(|e| panic!("request-trace verification failed: {e}"));
    assert_eq!(stats.requests as u64, sharded.admitted, "one timeline per admitted request");
    assert_eq!(stats.resolved as u64, sharded.served, "every served lane traced Resolved");
    assert_eq!(stats.failed, 0, "no faults injected, no Failed timelines");
    assert_eq!(stats.sheds, sharded.rejected, "every rejection traced as a shed");
    assert!(stats.steals > 0, "storm produced no stolen batches to trace");
    assert!(stats.joins > 0, "storm produced no mid-flight joins to trace");
    assert_eq!(stats.joins, stats.catch_ups, "every joiner catches up exactly once");
    println!(
        "trace: {} requests, {} events; {} stolen, {} joined (+caught up), {} sheds — verified",
        stats.requests, stats.events, stats.steals, stats.joins, stats.sheds
    );

    // Trace artifacts: the per-request Chrome trace (a bounded sample)
    // and the flight recorder's end-of-storm black box.
    let chrome = index.chrome_trace_json(64);
    validate_json(&chrome).expect("chrome trace is valid JSON");
    write_atomic(Path::new("STORM_trace.json"), &chrome).expect("write STORM_trace.json");
    storm_obs
        .flight
        .dump_to(Path::new("STORM_flight.json"), "drain")
        .expect("write STORM_flight.json");
    println!("wrote STORM_trace.json (64-request sample) and STORM_flight.json (black box)");

    // Gate 6: the SLO engine must notice the overload spike — at least
    // one fast-burn alert at/after the spike's first arrival — and
    // must stay quiet through the steady phase before it.
    let spike_start = trace[VIRTUAL_REQUESTS / 4].arrival;
    for alert in &storm_obs.alerts {
        println!("  {alert}");
    }
    let early: Vec<&SloAlert> = storm_obs.alerts.iter().filter(|a| a.at < spike_start).collect();
    assert!(
        early.is_empty(),
        "SLO alert(s) fired during the steady phase (before {:.1} ms): {early:?}",
        ms(spike_start)
    );
    let fast_burns = storm_obs.alerts.iter().filter(|a| a.window == "fast").count();
    assert!(
        fast_burns > 0,
        "the overload spike (from {:.1} ms) fired no fast-burn alert",
        ms(spike_start)
    );
    println!(
        "slo: {} alert(s), {fast_burns} fast-burn, none before the {:.1} ms spike",
        storm_obs.alerts.len(),
        ms(spike_start)
    );

    // --- wall-clock storm through the real threaded server ---
    let system = if virtual_only {
        println!("--virtual-only: skipping the wall-clock storm");
        "null".to_owned()
    } else {
        system_storm(registry)
    };

    // --- BENCH_serve.json, section "storm" ---
    let mut json = String::new();
    json.push_str("{\n    \"bench\": \"serve_storm\",\n");
    let _ = write!(
        json,
        "    \"trace_seed\": {TRACE_SEED},\n    \"virtual_requests\": {VIRTUAL_REQUESTS},\n    \"p99_ratio_sharded_over_baseline\": {ratio:.3},\n"
    );
    let _ = writeln!(
        json,
        "    \"bitwise\": {{\"batches\": {}, \"lanes\": {checked_lanes}, \"joiner_lanes\": {joiner_lanes}}},",
        sharded.samples.len()
    );
    let _ = writeln!(json, "    \"baseline\": {},", outcome_json(&baseline));
    let _ = writeln!(json, "    \"sharded\": {},", outcome_json(&sharded));
    let _ = write!(json, "    \"system\": {system}\n  }}");
    update_artifact(Path::new("BENCH_serve.json"), "storm", &json)
        .expect("update BENCH_serve.json");

    // --- BENCH_serve.json, section "slo" ---
    let mut slo_json = String::new();
    slo_json.push_str("{\n    \"bench\": \"serve_storm\",\n");
    let _ = writeln!(
        slo_json,
        "    \"policy\": {{\"name\": \"storm-latency\", \"objective_ms\": {:.1}, \"error_budget\": {SLO_BUDGET}, \"windows\": [{{\"label\": \"fast\", \"window_ms\": {:.0}, \"threshold\": 14.0}}, {{\"label\": \"slow\", \"window_ms\": {:.0}, \"threshold\": 6.0}}]}},",
        SLO_OBJECTIVE.as_secs_f64() * 1e3,
        SLO_FAST_WINDOW.as_secs_f64() * 1e3,
        SLO_SLOW_WINDOW.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        slo_json,
        "    \"observe_period_ms\": {:.0}, \"spike_start_ms\": {:.3},",
        OBSERVE_PERIOD.as_secs_f64() * 1e3,
        ms(spike_start)
    );
    let _ = writeln!(
        slo_json,
        "    \"trace\": {{\"requests\": {}, \"events\": {}, \"steals\": {}, \"joins\": {}, \"catch_ups\": {}, \"sheds\": {}}},",
        stats.requests, stats.events, stats.steals, stats.joins, stats.catch_ups, stats.sheds
    );
    slo_json.push_str("    \"alerts\": [");
    for (i, alert) in storm_obs.alerts.iter().enumerate() {
        let _ = write!(
            slo_json,
            "{}{{\"window\": \"{}\", \"at_ms\": {:.3}, \"burn_rate\": {:.1}}}",
            if i > 0 { ", " } else { "" },
            alert.window,
            ms(alert.at),
            alert.burn_rate
        );
    }
    slo_json.push_str("]\n  }");
    update_artifact(Path::new("BENCH_serve.json"), "slo", &slo_json)
        .expect("update BENCH_serve.json");
    println!("merged storm and slo sections into BENCH_serve.json");
}
