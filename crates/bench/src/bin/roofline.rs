//! Roofline analysis of the paper's designs — quantifies the Sec. V-B
//! "enough memory bandwidth" assumption (extension; no paper artifact).

use wino_core::WinogradParams;
use wino_dse::{ddr3_1600, ddr3_1600_x2, peak_gops, roofline, DesignPoint, TextTable};
use wino_fpga::Architecture;
use wino_models::vgg16d;

fn main() {
    let wl = vgg16d(1);
    for (m, pes) in [(2usize, 43usize), (4, 19)] {
        let point = DesignPoint {
            params: WinogradParams::new(m, 3).expect("valid"),
            arch: Architecture::SharedTransform,
            pe_count: pes,
            freq_hz: 200e6,
            pipeline_depth: 8,
        };
        println!(
            "== F({m}x{m},3x3), {pes} PEs: peak {:.0} GOPS, {} ==",
            peak_gops(&point),
            ddr3_1600_x2().name
        );
        let mut t = TextTable::new(vec![
            "layer",
            "AI (ops/B)",
            "attainable (GOPS)",
            "bound",
            "needs (GB/s)",
        ]);
        for p in roofline(&wl, &point, &ddr3_1600_x2(), true) {
            t.push_row(vec![
                p.layer.clone(),
                format!("{:.1}", p.intensity),
                format!("{:.0}", p.attainable_gops),
                if p.compute_bound { "compute".to_owned() } else { "MEMORY".to_owned() },
                format!("{:.2}", p.required_bandwidth / 1e9),
            ]);
        }
        println!("{}", t.to_ascii());
    }
    println!("Without the Fig. 7 line-buffered image buffer (naive tile refetch),");
    println!("single-channel DDR3 turns the early layers memory-bound:");
    let point = DesignPoint {
        params: WinogradParams::new(4, 3).expect("valid"),
        arch: Architecture::SharedTransform,
        pe_count: 19,
        freq_hz: 200e6,
        pipeline_depth: 8,
    };
    for p in roofline(&wl, &point, &ddr3_1600(), false) {
        if !p.compute_bound {
            println!("  {p}");
        }
    }
}
