//! Regenerates Fig. 3: percentage complexity variations vs tile size.

use wino_bench::print_comparison;
use wino_core::CostModel;
use wino_dse::figures::{fig3, paper};
use wino_models::vgg16d;

fn main() {
    let wl = vgg16d(1);
    let fig = fig3(&wl, CostModel::ShiftFree);
    println!("{}", fig.title);
    println!("{}", fig.to_table(2).to_ascii());

    let rows: Vec<(String, f64, f64)> = fig
        .x_labels
        .iter()
        .zip(fig.series[0].1.iter())
        .zip(paper::FIG3_MULT_DECREASE.iter())
        .map(|((label, &ours), &p)| (format!("mult decrease {label}"), p, ours))
        .collect();
    print_comparison(
        "Fig. 3 multiplication-decrease vs paper (%) — the m=2 paper bar (56.25) is \
         inconsistent with its own successive formula (55.56), see DESIGN.md §8",
        &rows,
        2,
    );

    // Crossover conclusion (Sec. III-C).
    let dec = &fig.series[0].1;
    let inc = &fig.series[1].1;
    for (i, m) in (2..=7).enumerate() {
        let verdict = if dec[i] >= inc[i] { "favorable" } else { "unfavorable" };
        println!(
            "m={m}: mult saving {:.2}% vs transform increase {:.2}% -> {verdict}",
            dec[i], inc[i]
        );
    }
    println!("(paper Sec. III-C: favorable through m=4, unfavorable from m=5)");
}
