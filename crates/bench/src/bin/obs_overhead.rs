//! Observability overhead self-test, emitted into `BENCH_obs.json`
//! (sections `"overhead"` and `"layers"`) plus the rendered profile
//! tree as `BENCH_obs_profile.txt`.
//!
//! The `wino-obs` layer is only admissible on the exec hot path if it
//! is (a) free when off and (b) cheap when on. This bench pins both on
//! the same vgg16d-conv3 geometry the `speedup` study measures
//! (56×56, 128 → 128 channels, 3×3 kernels), single-threaded so span
//! bookkeeping has nowhere to hide:
//!
//! * **enabled overhead ≤ [`MAX_ENABLED_RATIO`]** — the ratio of
//!   median `PreparedWinograd::execute` wall times over [`REPS`]
//!   *interleaved* off/on trial pairs (tracing enabled with an
//!   [`AggregatingProfiler`] attached for every "on" sample), for
//!   m ∈ {2, 4}. Interleaving makes the two medians see the same
//!   drift — thermal, scheduler, frequency — instead of comparing a
//!   cold block against a warm one, and the per-mode spreads
//!   ((max − min) / median) are recorded alongside so a noisy run is
//!   visible in the artifact rather than folded into the ratio;
//! * **disabled cost statistically indistinguishable from baseline**
//!   — "indistinguishable" is argued arithmetically, not by trying to
//!   resolve sub-noise wall-clock deltas: a microbenchmark times the
//!   disabled `Span::enter` path (one relaxed atomic load) per call,
//!   a `collect` run counts how many spans one execute opens, and the
//!   product — the *entire* disabled-tracing cost of an execute — must
//!   be under [`MAX_DISABLED_FRACTION`] of the measured run-to-run
//!   noise floor of the execute itself;
//! * **phase attribution ≥ [`MIN_PHASE_COVERAGE`]** — a single-layer
//!   conv3 workload run through `NetworkExecutor` must report
//!   pack/multiply/inverse `phase_millis` whose sum covers ≥ 90% of
//!   the layer wall-clock, so the breakdown explains the time rather
//!   than sampling it (the ISSUE-6 acceptance criterion).
//!
//! Any violated bound panics, so CI fails instead of uploading an
//! artifact that quietly documents a regression.

use std::hint::black_box;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use wino_core::{ConvShape, WinogradParams, Workload};
use wino_exec::{ExecConfig, NetworkExecutor, PreparedWinograd, Schedule};
use wino_obs::{update_artifact, AggregatingProfiler, Span};
use wino_tensor::{Shape4, SplitMix64, Tensor4};

/// Ceiling on enabled-tracing wall time relative to disabled (1.03 =
/// ≤ 3% overhead), per the ISSUE-6 acceptance criterion.
const MAX_ENABLED_RATIO: f64 = 1.03;

/// The whole disabled-tracing span cost of one execute must stay under
/// this fraction of the execute's own run-to-run noise — the
/// arithmetic meaning of "statistically indistinguishable".
const MAX_DISABLED_FRACTION: f64 = 0.10;

/// Floor on the share of a layer's wall-clock that its reported
/// pack/multiply/inverse phases must explain.
const MIN_PHASE_COVERAGE: f64 = 0.90;

/// Interleaved off/on trial pairs per configuration. Odd, so the
/// median is a single sample rather than an interpolation.
const REPS: usize = 9;

struct OverheadRow {
    engine: String,
    off_ms: f64,
    on_ms: f64,
    ratio: f64,
    off_spread: f64,
    on_spread: f64,
    spans_per_execute: usize,
}

struct CoverageRow {
    engine: String,
    millis: f64,
    phases: Vec<(String, f64)>,
    coverage: f64,
}

fn time_once(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

/// Sorts in place and returns the median sample.
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Relative spread of a *sorted* sample set: (max − min) / median.
fn spread(sorted: &[f64]) -> f64 {
    (sorted[sorted.len() - 1] - sorted[0]) / sorted[sorted.len() / 2]
}

/// Per-call cost of the disabled `Span::enter` + drop path, in
/// nanoseconds, over enough iterations to resolve a sub-ns figure.
fn disabled_span_nanos() -> f64 {
    const ITERS: u64 = 1_000_000;
    assert!(!wino_obs::is_enabled(), "microbench must run with tracing off");
    // Warm the thread-local machinery once so the measured loop sees
    // the steady state.
    let _ = black_box(Span::enter("bench.obs", "warmup"));
    let start = Instant::now();
    for _ in 0..ITERS {
        let _ = black_box(Span::enter("bench.obs", "noop"));
    }
    start.elapsed().as_secs_f64() * 1e9 / ITERS as f64
}

fn main() {
    let shape = ConvShape::same_padded(56, 56, 128, 128, 3);
    let mut rng = SplitMix64::new(2019);
    let input =
        Tensor4::from_fn(Shape4 { n: 1, c: shape.c, h: shape.h, w: shape.w }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
    let kernels = Tensor4::from_fn(Shape4 { n: shape.k, c: shape.c, h: 3, w: 3 }, |_, _, _, _| {
        rng.uniform_f32(-1.0, 1.0)
    });
    println!("layer: conv3-shaped {shape}, 1 thread, median of {REPS} interleaved off/on pairs\n");

    // --- enabled vs disabled execute wall time, plus the profile tree ---
    let profiler = Arc::new(AggregatingProfiler::new());
    let mut rows: Vec<OverheadRow> = Vec::new();
    let mut noise = 0.0f64;
    for m in [2usize, 4] {
        let params = WinogradParams::new(m, 3).expect("valid");
        let bank = PreparedWinograd::new(params, &kernels).expect("bank prepares");

        assert!(!wino_obs::is_enabled(), "bench starts with tracing off");
        // Span census: how many spans does one execute actually open?
        // (collect() is thread-local, so this run is untimed; it also
        // warms caches and the allocator before the timed pairs.)
        let (_, spans) = wino_obs::collect(|| bank.execute(&input, shape.pad, 1));
        let spans_per_execute = spans.len();

        // Interleaved off/on pairs: each trial measures one disabled
        // and one enabled execute back to back, so slow drift lands on
        // both sides of the ratio instead of on whichever mode ran
        // last.
        let mut off_samples = Vec::with_capacity(REPS);
        let mut on_samples = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            off_samples.push(time_once(|| {
                black_box(bank.execute(&input, shape.pad, 1));
            }));
            wino_obs::set_recorder(profiler.clone());
            wino_obs::enable();
            on_samples.push(time_once(|| {
                black_box(bank.execute(&input, shape.pad, 1));
            }));
            wino_obs::disable();
            wino_obs::clear_recorder();
        }
        let off_ms = median(&mut off_samples);
        let on_ms = median(&mut on_samples);
        let off_spread = spread(&off_samples);
        let on_spread = spread(&on_samples);
        // The disabled-span cost must disappear under the off path's
        // own run-to-run spread.
        noise = noise.max(off_spread);

        let ratio = on_ms / off_ms;
        println!(
            "{params}: off {off_ms:.3} ms (±{:.1}%), on {on_ms:.3} ms (±{:.1}%) -> \
             ratio {ratio:.4} ({spans_per_execute} spans/execute)",
            off_spread * 100.0,
            on_spread * 100.0
        );
        rows.push(OverheadRow {
            engine: params.to_string(),
            off_ms,
            on_ms,
            ratio,
            off_spread,
            on_spread,
            spans_per_execute,
        });
    }

    // --- disabled-path cost accounting ---
    let span_ns = disabled_span_nanos();
    let worst_disabled_fraction = rows
        .iter()
        .map(|r| r.spans_per_execute as f64 * span_ns / (r.off_ms * 1e6))
        .fold(0.0f64, f64::max);
    println!(
        "\ndisabled span path: {span_ns:.2} ns/call -> worst per-execute cost \
         {:.5}% of wall (noise floor between disabled runs: {:.2}%)",
        worst_disabled_fraction * 100.0,
        noise * 100.0
    );

    // --- phase attribution through the executor ---
    let mut coverage_rows: Vec<CoverageRow> = Vec::new();
    for m in [2usize, 4] {
        let mut wl = Workload::new("vgg16d-conv3", 1);
        wl.push("conv3", "G3", shape);
        let schedule = Schedule::homogeneous(&wl, m).expect("conv3 schedules");
        let exec =
            NetworkExecutor::new(wl, schedule, ExecConfig::with_threads(1)).expect("executor");
        let report = exec.run();
        let layer = &report.layers[0];
        let phase_sum: f64 = layer.phase_millis.iter().map(|(_, ms)| ms).sum();
        let coverage = phase_sum / layer.millis;
        println!(
            "{}: layer {:.3} ms, phases {:.3} ms -> {:.1}% attributed",
            layer.engine,
            layer.millis,
            phase_sum,
            coverage * 100.0
        );
        coverage_rows.push(CoverageRow {
            engine: layer.engine.clone(),
            millis: layer.millis,
            phases: layer.phase_millis.clone(),
            coverage,
        });
    }

    // --- artifacts ---
    let tree = profiler.snapshot().render_tree();
    std::fs::write("BENCH_obs_profile.txt", &tree).expect("write BENCH_obs_profile.txt");
    println!("\nprofile tree (enabled runs, both engines):\n{tree}");

    let mut overhead = String::from("{\n    \"bench\": \"obs_overhead\",\n    \"configs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        overhead.push_str(&format!(
            "      {{\"engine\": \"{}\", \"off_ms\": {:.3}, \"on_ms\": {:.3}, \
             \"ratio\": {:.4}, \"off_spread\": {:.4}, \"on_spread\": {:.4}, \
             \"spans_per_execute\": {}}}{}\n",
            r.engine,
            r.off_ms,
            r.on_ms,
            r.ratio,
            r.off_spread,
            r.on_spread,
            r.spans_per_execute,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    overhead.push_str(&format!(
        "    ],\n    \"reps\": {REPS},\n    \"disabled_span_ns\": {span_ns:.2},\n    \
         \"disabled_cost_fraction_of_wall\": {worst_disabled_fraction:.6},\n    \
         \"disabled_noise_floor\": {noise:.4},\n    \
         \"max_enabled_ratio\": {MAX_ENABLED_RATIO}\n  }}"
    ));
    update_artifact(Path::new("BENCH_obs.json"), "overhead", &overhead)
        .expect("update BENCH_obs.json");

    let mut layers = String::from("[\n");
    for (i, c) in coverage_rows.iter().enumerate() {
        let phase_json = c
            .phases
            .iter()
            .map(|(name, ms)| format!("{{\"phase\": \"{name}\", \"millis\": {ms:.3}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        layers.push_str(&format!(
            "    {{\"engine\": \"{}\", \"millis\": {:.3}, \
             \"phases\": [{phase_json}], \"coverage\": {:.4}}}{}\n",
            c.engine,
            c.millis,
            c.coverage,
            if i + 1 < coverage_rows.len() { "," } else { "" }
        ));
    }
    layers.push_str("  ]");
    update_artifact(Path::new("BENCH_obs.json"), "layers", &layers).expect("update BENCH_obs.json");
    println!("wrote BENCH_obs.json (overhead + layers) and BENCH_obs_profile.txt");

    // --- acceptance gates ---
    for r in &rows {
        assert!(
            r.ratio <= MAX_ENABLED_RATIO,
            "acceptance: enabled tracing costs {:.2}% on {} (ceiling {:.0}%)",
            (r.ratio - 1.0) * 100.0,
            r.engine,
            (MAX_ENABLED_RATIO - 1.0) * 100.0
        );
    }
    assert!(
        worst_disabled_fraction < MAX_DISABLED_FRACTION * noise.max(0.001),
        "acceptance: disabled span cost ({:.4}% of wall) is not negligible against the \
         {:.2}% noise floor — the off path is no longer free",
        worst_disabled_fraction * 100.0,
        noise * 100.0
    );
    for c in &coverage_rows {
        assert!(
            c.coverage >= MIN_PHASE_COVERAGE,
            "acceptance: {} phases explain only {:.1}% of the layer wall-clock \
             (floor {:.0}%)",
            c.engine,
            c.coverage * 100.0,
            MIN_PHASE_COVERAGE * 100.0
        );
    }
    println!(
        "all gates passed: enabled <= {:.0}% overhead, disabled negligible, phase \
         coverage >= {:.0}%",
        (MAX_ENABLED_RATIO - 1.0) * 100.0,
        MIN_PHASE_COVERAGE * 100.0
    );
}
