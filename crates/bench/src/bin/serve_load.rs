//! Serving study: open-loop load against the `wino-serve` subsystem,
//! emitted as `BENCH_serve.json` (now including per-priority-class
//! queue-wait quantiles, so the anti-starvation claim is measured,
//! not just proptested) and merged into `BENCH_obs.json` (section
//! `"serve"`) as `wino-obs` metric families. The run executes with
//! tracing **enabled** and a ring-buffer [`TraceRecorder`] attached,
//! capturing the per-request lifecycle intervals (admitted → queued →
//! batch-wait → exec → completed) the serve instrumentation emits.
//!
//! A deterministic synthetic trace (seeded `SplitMix64`) of
//! single-image requests — all eight registry variants (four models ×
//! {`f32`, `Q24.8`}), a 20/60/20 high/normal/low priority mix, and
//! randomized inter-arrival gaps — is replayed twice:
//!
//! * **served** — open loop through a [`Server`]: requests are
//!   submitted at their trace arrival times and coalesced by the
//!   dynamic batcher into batches executed through the registry's
//!   cached kernel banks;
//! * **serial** — the pre-serving workflow: the same requests, one
//!   image at a time in trace order, through the one-shot
//!   `execute_plan`/`execute_plan_quantized` path, which regenerates
//!   transforms and re-transforms the kernel bank on every layer call.
//!
//! Acceptance (asserted here and recorded in the JSON): the serving
//! path sustains **≥ 2×** the serial throughput, rejects nothing
//! (bounded queues sized for the trace — every admitted request is
//! answered), and a sampled subset of responses is **bitwise equal**
//! to direct solo execution.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wino_obs::{update_artifact, MetricFamily, MetricKind, ObsReport, TraceRecorder};
use wino_serve::{
    BatchConfig, InferResult, ModelRegistry, Priority, ResponseHandle, ServeConfig, Server,
};
use wino_tensor::SplitMix64;

/// One synthetic request of the trace.
struct TraceItem {
    model: usize,
    priority: Priority,
    seed: u64,
    arrival: Duration,
}

fn build_trace(registry_len: usize, requests: usize, rng: &mut SplitMix64) -> Vec<TraceItem> {
    let mut at = Duration::ZERO;
    (0..requests)
        .map(|_| {
            // Mixed arrival rates: bursty 20–180 µs gaps — brisk enough
            // that the server, not the trace, is the bottleneck.
            at += Duration::from_micros(20 + rng.next_u64() % 160);
            let p = rng.next_u64() % 10;
            TraceItem {
                model: (rng.next_u64() % registry_len as u64) as usize,
                priority: match p {
                    0..=1 => Priority::High,
                    2..=7 => Priority::Normal,
                    _ => Priority::Low,
                },
                seed: rng.next_u64() % 100_000,
                arrival: at,
            }
        })
        .collect()
}

/// The pre-serving baseline: one image at a time, no kernel-bank
/// caching — every layer call regenerates transforms and re-transforms
/// the bank, exactly what `execute_plan` did before preparation
/// existed.
fn run_serial(registry: &ModelRegistry, trace: &[TraceItem]) -> Duration {
    let start = Instant::now();
    for item in trace {
        let entry = registry.entry(item.model);
        let exec = entry.executor();
        for layer in 0..entry.layer_count() {
            let input = entry.request_input(layer, item.seed);
            let plan = &exec.schedule().plans()[layer];
            let out = match exec.schedule().precision(layer) {
                wino_exec::Precision::Float => {
                    wino_exec::execute_plan(plan, &input, exec.kernels(layer), exec.config())
                }
                wino_exec::Precision::Fixed { frac } => wino_exec::execute_plan_quantized(
                    plan,
                    &input,
                    exec.kernels(layer),
                    exec.config(),
                    frac,
                ),
            };
            let _ = out.expect("validated plan executes");
        }
    }
    start.elapsed()
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // The baseline is a *serial* loop (one image at a time, one
    // thread); the server gets the machine's parallelism through its
    // worker pool instead, so per-call exec threads stay at 1.
    let exec_threads = 1;
    let workers = hw.clamp(1, 4);
    let requests = 240;
    let max_batch = 8;
    let max_wait = Duration::from_micros(500);

    let registry = ModelRegistry::standard(max_batch, exec_threads).expect("standard registry");
    let mut rng = SplitMix64::new(0x5E4E_2019);
    let trace = build_trace(registry.len(), requests, &mut rng);

    // --- serial baseline (one image at a time, no caching) ---
    let serial_wall = run_serial(&registry, &trace);
    let serial_rps = requests as f64 / serial_wall.as_secs_f64();
    println!(
        "serial baseline: {requests} requests in {:.1} ms ({serial_rps:.0} req/s)",
        ms(serial_wall)
    );

    // --- served (dynamic batching over cached kernel banks) ---
    let config = ServeConfig {
        workers,
        exec_threads_per_worker: None,
        batch: BatchConfig {
            max_batch,
            max_wait,
            // Sized for the whole trace: nothing is ever refused, so
            // "admitted == completed" is the no-drop guarantee.
            queue_capacity: requests,
        },
        slo: None,
        ..ServeConfig::default()
    };
    let ids: Vec<_> = registry.entries().iter().map(|e| e.id().clone()).collect();
    let sample_direct: Vec<_> = trace
        .iter()
        .step_by(29)
        .map(|item| (item.model, item.seed, registry.entry(item.model).infer_one(item.seed)))
        .collect();

    // Trace the request lifecycle (admitted → queued → batch-wait →
    // exec → completed) through the serve instrumentation: five
    // interval records per request into a bounded ring, cheap enough
    // to leave on for the measured run.
    // Sized for ~5 lifecycle intervals per request plus the exec
    // phase spans the workers emit while tracing is on.
    let tracer = Arc::new(TraceRecorder::new(24 * requests));
    wino_obs::set_recorder(tracer.clone());
    wino_obs::enable();

    let server = Server::start(registry, config);
    let start = Instant::now();
    let mut handles: Vec<(usize, u64, ResponseHandle)> = Vec::with_capacity(trace.len());
    for item in &trace {
        // Open loop: submit at the trace's arrival time, never waiting
        // for responses.
        let target = item.arrival;
        let now = start.elapsed();
        if target > now {
            std::thread::sleep(target - now);
        }
        let handle = server
            .submit(&ids[item.model], item.priority, item.seed)
            .expect("queue sized for the trace; nothing is refused");
        handles.push((item.model, item.seed, handle));
    }
    let results: Vec<(usize, InferResult)> = handles
        .into_iter()
        .map(|(m, _, h)| (m, h.wait().expect("no faults injected; every request served")))
        .collect();
    let serve_wall = start.elapsed();
    let snapshot = server.shutdown();
    wino_obs::disable();
    wino_obs::clear_recorder();
    let serve_rps = results.len() as f64 / serve_wall.as_secs_f64();

    println!(
        "served: {} requests in {:.1} ms ({serve_rps:.0} req/s)",
        results.len(),
        ms(serve_wall)
    );
    print!("{snapshot}");

    // --- invariants the study rests on ---
    assert_eq!(snapshot.total_completed() as usize, requests, "every admitted request answered");
    assert_eq!(snapshot.total_rejected(), 0, "queue was sized for the trace");
    for (model, seed, direct) in &sample_direct {
        let (_, served) = results
            .iter()
            .find(|(m, r)| m == model && r.seed == *seed)
            .expect("sampled request served");
        assert_eq!(&served.output, direct, "served output == direct solo run, bitwise");
    }
    let speedup = serve_rps / serial_rps;
    println!("speedup over serial one-image-at-a-time: {speedup:.2}x");
    assert!(speedup >= 2.0, "serving must sustain >= 2x serial throughput, got {speedup:.2}x");

    // --- BENCH_serve.json ---
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"serve_load\",\n");
    json.push_str(&format!(
        "  \"requests\": {requests},\n  \"workers\": {workers},\n  \"exec_threads\": {exec_threads},\n"
    ));
    json.push_str(&format!(
        "  \"max_batch\": {max_batch},\n  \"max_wait_us\": {},\n",
        max_wait.as_micros()
    ));
    json.push_str(&format!(
        "  \"serial\": {{\"wall_ms\": {:.2}, \"throughput_rps\": {:.1}}},\n",
        ms(serial_wall),
        serial_rps
    ));
    json.push_str(&format!(
        "  \"serve\": {{\"wall_ms\": {:.2}, \"throughput_rps\": {:.1}, \"rejected\": {}, \"per_model\": [\n",
        ms(serve_wall),
        serve_rps,
        snapshot.total_rejected()
    ));
    for (i, m) in snapshot.per_model.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"model\": \"{}\", \"completed\": {}, \"mean_batch\": {:.2}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
            m.model,
            m.completed,
            m.mean_batch,
            ms(m.p50),
            ms(m.p95),
            ms(m.p99),
            if i + 1 < snapshot.per_model.len() { "," } else { "" }
        ));
    }
    // Per-priority-class queue waits, measured by the serve
    // instrumentation on every executed batch — the anti-starvation
    // claim as numbers, not just a property test: higher classes must
    // show the shorter waits under the same load.
    json.push_str("  ]},\n  \"queue_wait_by_class\": [\n");
    let classes: Vec<_> = snapshot.queue_wait_by_class.iter().filter(|c| c.completed > 0).collect();
    for (i, c) in classes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"class\": \"{}\", \"completed\": {}, \"mean_ms\": {:.3}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
            c.priority,
            c.completed,
            ms(c.mean),
            ms(c.p50),
            ms(c.p95),
            ms(c.p99),
            if i + 1 < classes.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!("  ],\n  \"speedup\": {speedup:.2}\n}}"));
    // `BENCH_serve.json` is shared with `serve_storm` (section
    // "storm"); merge instead of clobbering.
    update_artifact(Path::new("BENCH_serve.json"), "load", &json).expect("update BENCH_serve.json");
    println!("merged load section into BENCH_serve.json");

    // --- observability exposition: the serve section of BENCH_obs.json ---
    let mut metrics = snapshot.to_metric_families();
    metrics.push(MetricFamily::scalar(
        "wino_serve_speedup_over_serial",
        "open-loop serving throughput over the serial one-image-at-a-time baseline",
        MetricKind::Gauge,
        speedup,
    ));
    metrics.push(MetricFamily::scalar(
        "wino_serve_trace_events_total",
        "trace records captured during the run (request lifecycle intervals plus exec phase spans)",
        MetricKind::Counter,
        tracer.len() as f64,
    ));
    metrics.push(MetricFamily::scalar(
        "wino_serve_trace_events_dropped_total",
        "trace records dropped by the bounded ring buffer",
        MetricKind::Counter,
        tracer.dropped() as f64,
    ));
    let report = ObsReport { metrics, profile: None };
    println!("\n{}", report.to_prometheus());
    update_artifact(Path::new("BENCH_obs.json"), "serve", &report.to_json())
        .expect("update BENCH_obs.json");
    println!(
        "merged serve section into BENCH_obs.json ({} trace records, {} dropped)",
        tracer.len(),
        tracer.dropped()
    );
}
