//! fp32 Winograd accuracy vs output tile size — why the design space in
//! practice stops near m = 6 even before transform area does.

use wino_core::{error_growth, TransformSet, WinogradParams};

fn main() {
    println!(
        "{:<4} {:>22} {:>14} {:>14} {:>12}",
        "m", "max transform entry", "max|err|", "rms err", "growth"
    );
    let points = error_growth(3, &[2, 3, 4, 5, 6, 7, 8], 512, 2019);
    let base = points[0].stats.max_abs;
    for p in &points {
        println!(
            "{:<4} {:>22.1} {:>14.3e} {:>14.3e} {:>11.1}x",
            p.m,
            p.max_transform_entry,
            p.stats.max_abs,
            p.stats.rms,
            p.stats.max_abs / base
        );
    }
    println!("\nInterpolation points used for F(6,3):");
    let set = TransformSet::generate(WinogradParams::new(6, 3).expect("valid")).expect("generates");
    let pts: Vec<String> = set.points().iter().map(|p| p.to_string()).collect();
    println!("  {{{}}} + infinity", pts.join(", "));
    println!("\nLarger tiles need more (and larger) interpolation points, inflating the");
    println!("transform entries and the fp32 rounding error — consistent with the paper's");
    println!("choice to evaluate m = 2..4 only.");
}
