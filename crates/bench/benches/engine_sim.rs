//! Speed of the cycle-level engine simulator itself (simulated cycles per
//! wall-clock second), for the three Table II configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wino_core::WinogradParams;
use wino_engine::{EngineConfig, WinogradEngine};
use wino_tensor::{Shape4, SplitMix64, Tensor4};

fn bench_engine(criterion: &mut Criterion) {
    let mut rng = SplitMix64::new(3);
    let input = Tensor4::from_fn(Shape4 { n: 1, c: 16, h: 14, w: 14 }, |_, _, _, _| {
        rng.uniform_f32(-1.0, 1.0)
    });
    let kernels = Tensor4::from_fn(Shape4 { n: 16, c: 16, h: 3, w: 3 }, |_, _, _, _| {
        rng.uniform_f32(-0.3, 0.3)
    });
    let mut group = criterion.benchmark_group("engine_sim_14x14x16_to_16");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (m, pes) in [(2usize, 8usize), (3, 8), (4, 8)] {
        let engine = WinogradEngine::new(EngineConfig::proposed(
            WinogradParams::new(m, 3).expect("valid"),
            pes,
        ))
        .expect("generates");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("F({m}x{m})x{pes}PE")),
            &m,
            |b, _| b.iter(|| engine.run_layer(&input, &kernels, 1)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
