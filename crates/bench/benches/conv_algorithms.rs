//! Runtime comparison of the convolution algorithms on a VGG-style layer.
//!
//! This is the software analogue of the paper's Fig. 1 claim: the
//! element-wise multiply reduction translates into real speedups once the
//! transforms are amortized over channels and kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wino_baselines::{fft_convolve, im2col_convolve, spatial_convolve};
use wino_core::{fast_convolve_layer, FastKernel, WinogradAlgorithm, WinogradParams};
use wino_tensor::{Shape4, SplitMix64, Tensor4};

fn layer(rng: &mut SplitMix64, c: usize, k: usize, hw: usize) -> (Tensor4<f32>, Tensor4<f32>) {
    let input =
        Tensor4::from_fn(Shape4 { n: 1, c, h: hw, w: hw }, |_, _, _, _| rng.uniform_f32(-1.0, 1.0));
    let kernels =
        Tensor4::from_fn(Shape4 { n: k, c, h: 3, w: 3 }, |_, _, _, _| rng.uniform_f32(-0.3, 0.3));
    (input, kernels)
}

fn bench_conv(criterion: &mut Criterion) {
    let mut rng = SplitMix64::new(1);
    // A conv4-flavoured layer, channel-reduced to keep iterations short.
    let (input, kernels) = layer(&mut rng, 32, 32, 28);
    let mut group = criterion.benchmark_group("conv_28x28x32_to_32");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    group.bench_function("spatial", |b| b.iter(|| spatial_convolve(&input, &kernels, 1)));
    group.bench_function("im2col_gemm", |b| b.iter(|| im2col_convolve(&input, &kernels, 1)));
    group.bench_function("fft", |b| b.iter(|| fft_convolve(&input, &kernels, 1)));
    for m in [2usize, 4, 6] {
        let algo = WinogradAlgorithm::<f32>::for_params(WinogradParams::new(m, 3).expect("valid"))
            .expect("generates");
        group.bench_with_input(
            BenchmarkId::new("winograd", format!("F({m}x{m},3x3)")),
            &m,
            |b, _| b.iter(|| algo.convolve_layer(&input, &kernels, 1)),
        );
    }
    for (kind, label) in [(FastKernel::F2x2, "F(2x2,3x3)"), (FastKernel::F4x4, "F(4x4,3x3)")] {
        group.bench_with_input(BenchmarkId::new("winograd_fast", label), &kind, |b, &k| {
            b.iter(|| fast_convolve_layer(k, &input, &kernels, 1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conv);
criterion_main!(benches);
