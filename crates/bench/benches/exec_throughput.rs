//! Runtime throughput of the `wino-exec` execution engine against the
//! scalar spatial oracle, across tile sizes and thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wino_baselines::spatial_convolve;
use wino_core::WinogradParams;
use wino_exec::{spatial_convolve_mt, winograd_convolve};
use wino_tensor::{Shape4, SplitMix64, Tensor4};

fn layer(seed: u64, h: usize, c: usize, k: usize) -> (Tensor4<f32>, Tensor4<f32>) {
    let mut rng = SplitMix64::new(seed);
    let input =
        Tensor4::from_fn(Shape4 { n: 1, c, h, w: h }, |_, _, _, _| rng.uniform_f32(-1.0, 1.0));
    let kernels =
        Tensor4::from_fn(Shape4 { n: k, c, h: 3, w: 3 }, |_, _, _, _| rng.uniform_f32(-1.0, 1.0));
    (input, kernels)
}

fn bench_exec(criterion: &mut Criterion) {
    // A mid-size VGG-shaped layer: 32x32, 32 -> 32 channels.
    let (input, kernels) = layer(42, 32, 32, 32);

    let mut group = criterion.benchmark_group("exec_throughput_32x32x32x32");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    group.bench_function("spatial_oracle", |b| b.iter(|| spatial_convolve(&input, &kernels, 1)));
    group.bench_function("spatial_mt_4t", |b| {
        b.iter(|| spatial_convolve_mt(&input, &kernels, 1, 1, 4))
    });
    for m in [2usize, 4, 6] {
        let params = WinogradParams::new(m, 3).expect("valid");
        for threads in [1usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("winograd_m{m}"), format!("{threads}t")),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        winograd_convolve(params, &input, &kernels, 1, threads).expect("runs")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_exec);
criterion_main!(benches);
