//! Relative cost of the pluggable search strategies on heterogeneous
//! per-layer spaces, and the effect of the memoizing evaluation cache
//! and of parallelizing exhaustive enumeration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wino_dse::Evaluator;
use wino_fpga::virtex7_485t;
use wino_models::{tiny_cnn, vgg16d};
use wino_search::{
    EvalCache, Exhaustive, Genetic, Greedy, HeterogeneousSpace, ParetoArchive, SearchObjective,
    SimulatedAnnealing, Strategy,
};

fn bench_strategies(criterion: &mut Criterion) {
    // VGG16-D's heterogeneous space (6^13 designs): metaheuristics only.
    let evaluator = Evaluator::new(vgg16d(1), virtex7_485t());
    let space = HeterogeneousSpace::new(&evaluator, vec![2, 3, 4], vec![0.5, 1.0], 700, 200e6);

    let mut group = criterion.benchmark_group("strategies_vgg16_heterogeneous");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let greedy = Greedy { restarts: 2, ..Default::default() };
    let annealing = SimulatedAnnealing { iterations: 1_000, ..Default::default() };
    let genetic = Genetic { population: 16, generations: 10, ..Default::default() };
    for strategy in [&greedy as &dyn Strategy, &annealing, &genetic] {
        group.bench_function(strategy.name(), |b| {
            b.iter(|| {
                let cache = EvalCache::new();
                let mut archive = ParetoArchive::new();
                strategy.search(&space, &cache, SearchObjective::Throughput, &mut archive)
            })
        });
    }
    // The cache in steady state: a second identical run over a warm cache.
    group.bench_function("greedy_warm_cache", |b| {
        let cache = EvalCache::new();
        let mut archive = ParetoArchive::new();
        greedy.search(&space, &cache, SearchObjective::Throughput, &mut archive);
        b.iter(|| {
            let mut archive = ParetoArchive::new();
            greedy.search(&space, &cache, SearchObjective::Throughput, &mut archive)
        })
    });
    group.finish();

    // TinyCNN's enumerable space: exhaustive scaling across threads.
    let evaluator = Evaluator::new(tiny_cnn(1), virtex7_485t());
    let space = HeterogeneousSpace::new(&evaluator, vec![2, 3, 4], vec![0.5, 1.0], 700, 200e6);
    let mut group = criterion.benchmark_group("exhaustive_tiny_cnn_6pow3");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            b.iter(|| {
                let cache = EvalCache::new();
                let mut archive = ParetoArchive::new();
                Exhaustive { threads }.search(
                    &space,
                    &cache,
                    SearchObjective::Throughput,
                    &mut archive,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
