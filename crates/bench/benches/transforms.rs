//! Costs of the Winograd building blocks: exact generation, per-tile
//! transforms, single-tile convolution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wino_core::{TransformSet, WinogradAlgorithm, WinogradParams};
use wino_tensor::{SplitMix64, Tensor2};

fn bench_generation(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("transform_generation");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    for m in [2usize, 4, 6, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let params = WinogradParams::new(m, 3).expect("valid");
            b.iter(|| TransformSet::generate(params).expect("generates"))
        });
    }
    group.finish();
}

fn bench_tile(criterion: &mut Criterion) {
    let mut rng = SplitMix64::new(2);
    let mut group = criterion.benchmark_group("single_tile");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    for m in [2usize, 4, 6] {
        let params = WinogradParams::new(m, 3).expect("valid");
        let algo = WinogradAlgorithm::<f32>::for_params(params).expect("generates");
        let n = params.input_tile();
        let tile = Tensor2::from_fn(n, n, |_, _| rng.uniform_f32(-1.0, 1.0));
        let kernel = Tensor2::from_fn(3, 3, |_, _| rng.uniform_f32(-1.0, 1.0));
        group.bench_with_input(BenchmarkId::new("data_transform", m), &m, |b, _| {
            b.iter(|| algo.transform_data(&tile))
        });
        group.bench_with_input(BenchmarkId::new("full_tile_conv", m), &m, |b, _| {
            b.iter(|| algo.convolve_tile(&tile, &kernel))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation, bench_tile);
criterion_main!(benches);
