//! Cost of regenerating the paper's experiments — the analytical DSE is
//! cheap enough for interactive sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use wino_core::CostModel;
use wino_dse::{fig1, fig2, fig6, sweep_m, table2, Evaluator};
use wino_fpga::virtex7_485t;
use wino_models::vgg16d;

fn bench_dse(criterion: &mut Criterion) {
    let wl = vgg16d(1);
    let evaluator = Evaluator::new(wl.clone(), virtex7_485t());
    let mut group = criterion.benchmark_group("paper_artifacts");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    group.bench_function("fig1", |b| b.iter(|| fig1(&wl)));
    group.bench_function("fig2_shiftfree", |b| b.iter(|| fig2(&wl, CostModel::ShiftFree)));
    group.bench_function("fig6", |b| b.iter(|| fig6(&wl, 200e6)));
    group.bench_function("table2", |b| b.iter(|| table2(&evaluator)));
    group.bench_function("sweep_m1_to_7", |b| {
        b.iter(|| sweep_m(&evaluator, &[1, 2, 3, 4, 5, 6, 7], 3, 700, 200e6))
    });
    group.finish();
}

criterion_group!(benches, bench_dse);
criterion_main!(benches);
