//! Fixed-point execution properties: the quantized datapath tracks the
//! float oracle within the analytic error bound, saturating arithmetic
//! stays deterministic across thread counts, and the acceptance
//! criterion of the quantization study — `Fixed<10>` VGG16-D inference
//! at `m = 2` within 0.05 of the float oracle — holds end to end
//! through `NetworkExecutor`.

use proptest::prelude::*;
use wino_core::{ConvShape, WinogradParams};
use wino_exec::{
    execute_plan, execute_plan_quantized, quant_error_bound, winograd_convolve, EnginePlan,
    ExecConfig, LayerPlan, NetworkExecutor, QuantConfig, Schedule,
};
use wino_models::{shrink, vgg16d};
use wino_tensor::{ErrorStats, Fixed, Shape4, SplitMix64, Tensor4};

fn random_pair(seed: u64, shape: Shape4, k: usize) -> (Tensor4<f32>, Tensor4<f32>) {
    let mut rng = SplitMix64::new(seed);
    let input = Tensor4::from_fn(shape, |_, _, _, _| rng.uniform_f32(-1.0, 1.0));
    let kernels = Tensor4::from_fn(Shape4 { n: k, c: shape.c, h: 3, w: 3 }, |_, _, _, _| {
        rng.uniform_f32(-0.5, 0.5)
    });
    (input, kernels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Quantized Winograd layer execution deviates from the float path
    /// by no more than the analytic forward-error bound.
    #[test]
    fn fixed_layer_error_stays_under_the_analytic_bound(
        seed in 0u64..1_000,
        c in 1usize..4,
        k in 1usize..3,
        h in 6usize..12,
        w in 6usize..12,
        m_idx in 0usize..3,
        frac_idx in 0usize..3,
    ) {
        let m = [2usize, 3, 4][m_idx];
        let frac = [10u32, 12, 14][frac_idx];
        let shape = ConvShape::same_padded(h, w, c, k, 3);
        let plan = LayerPlan {
            layer: "prop".into(),
            shape,
            engine: EnginePlan::Winograd(WinogradParams::new(m, 3).unwrap()),
        };
        let (input, kernels) = random_pair(seed, Shape4 { n: 1, c, h, w }, k);
        let cfg = ExecConfig::with_threads(2);
        let float = execute_plan(&plan, &input, &kernels, &cfg).unwrap();
        let fixed = execute_plan_quantized(&plan, &input, &kernels, &cfg, frac).unwrap();
        let stats = ErrorStats::between(fixed.as_slice(), float.as_slice());
        let bound = quant_error_bound(WinogradParams::new(m, 3).unwrap(), c, frac, 1.0, 0.5);
        prop_assert!(
            stats.max_abs <= bound,
            "F({m}x{m}) FRAC={frac} c={c}: measured {:.3e} exceeds bound {:.3e}",
            stats.max_abs,
            bound
        );
    }

    /// The saturating fixed-point datapath is bitwise identical at any
    /// thread count, exactly like the float one.
    #[test]
    fn fixed_execution_is_thread_count_invariant(seed in 0u64..1_000, threads in 2usize..6) {
        let (input, kernels) = random_pair(seed, Shape4 { n: 1, c: 3, h: 9, w: 11 }, 2);
        let params = WinogradParams::new(2, 3).unwrap();
        let qi = input.map(Fixed::<10>::from_f32);
        let qk = kernels.map(Fixed::<10>::from_f32);
        let one = winograd_convolve(params, &qi, &qk, 1, 1).unwrap();
        let many = winograd_convolve(params, &qi, &qk, 1, threads).unwrap();
        prop_assert_eq!(one.as_slice(), many.as_slice());
    }
}

/// The ISSUE's acceptance criterion: `Fixed<10>` VGG16-D conv-layer
/// inference runs end-to-end through `NetworkExecutor` and stays within
/// 0.05 max-abs of the float oracle at `m = 2` on the shrunk workload.
#[test]
fn fixed10_vgg16d_m2_tracks_the_float_oracle_within_5e_2() {
    let wl = shrink(&vgg16d(1), 16, 8);
    let schedule = Schedule::homogeneous(&wl, 2).unwrap();
    let quant = QuantConfig::uniform_fixed(schedule.len(), 10).unwrap();
    let qsched = schedule.clone().with_quant(quant).unwrap();
    let config = ExecConfig::with_threads(2);
    let seed = 0x5EED_0001;
    let float = NetworkExecutor::with_seed(wl.clone(), schedule, config, seed).unwrap();
    let quantized = NetworkExecutor::with_seed(wl.clone(), qsched, config, seed).unwrap();

    let mut worst = 0.0f64;
    for i in 0..wl.layers().len() {
        let input = float.layer_input(i);
        let reference = float.execute_layer(i, &input).unwrap();
        let got = quantized.execute_layer(i, &input).unwrap();
        worst = worst.max(ErrorStats::between(got.as_slice(), reference.as_slice()).max_abs);
    }
    assert!(worst < 0.05, "Fixed<10> m=2 VGG16-D deviates by {worst:.3e}");
    assert!(worst > 0.0, "quantization must actually perturb the output");

    // The quantized engine label surfaces the datapath.
    assert_eq!(quantized.engine_label(0), "F(2x2, 3x3) Q22.10");
    assert_eq!(float.engine_label(0), "F(2x2, 3x3)");
    let report = quantized.run();
    assert!(report.layers.iter().all(|l| l.engine.contains("Q22.10")));
}

/// `verify()` against the *spatial* oracle also holds for the quantized
/// network, just with a quantization-sized tolerance.
#[test]
fn quantized_network_verifies_against_the_spatial_oracle() {
    let wl = shrink(&vgg16d(1), 12, 6);
    let schedule = Schedule::homogeneous(&wl, 2).unwrap();
    let quant = QuantConfig::uniform_fixed(schedule.len(), 12).unwrap();
    let qsched = schedule.with_quant(quant).unwrap();
    let exec =
        NetworkExecutor::new(wl, qsched, ExecConfig::with_threads(2)).expect("valid schedule");
    let worst = exec.verify(0.05).expect("within quantization tolerance");
    assert!(worst > 1e-6, "fixed point cannot be float-exact");
}

#[test]
fn with_quant_rejects_mismatched_layer_counts() {
    let wl = shrink(&vgg16d(1), 12, 6);
    let schedule = Schedule::homogeneous(&wl, 2).unwrap();
    let wrong = QuantConfig::uniform_fixed(schedule.len() + 1, 10).unwrap();
    assert!(schedule.with_quant(wrong).is_err());
}
