//! Property tests for the prepared FFT backend: on random layer
//! geometries the overlap–save engine must match the `wino_baselines`
//! spatial oracle within the analytic [`fft_error_bound`] tolerance,
//! must be bitwise thread-count-invariant, and must be bitwise
//! identical between the prepared and one-shot plan paths.

use proptest::prelude::*;
use wino_baselines::spatial_convolve_strided;
use wino_core::ConvShape;
use wino_exec::{
    execute_plan, fft_error_bound, ConvBackend, EnginePlan, ExecConfig, LayerPlan, PreparedFft,
};
use wino_tensor::{ErrorStats, Shape4, SplitMix64, Tensor4};

fn random_pair(seed: u64, shape: Shape4, k: usize, r: usize) -> (Tensor4<f32>, Tensor4<f32>) {
    let mut rng = SplitMix64::new(seed);
    let input = Tensor4::from_fn(shape, |_, _, _, _| rng.uniform_f32(-1.0, 1.0));
    let kernels = Tensor4::from_fn(Shape4 { n: k, c: shape.c, h: r, w: r }, |_, _, _, _| {
        rng.uniform_f32(-1.0, 1.0)
    });
    (input, kernels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FFT execution equals the spatial oracle on arbitrary stride-1
    /// geometries within the analytic error bound, for every FFT size
    /// that fits the kernel and any pad (including pad >= r, where
    /// boundary tiles read no input at all).
    #[test]
    fn fft_matches_spatial_oracle_within_bound(
        seed in 0u64..1_000_000,
        n_imgs in 1usize..3,
        c in 1usize..4,
        k in 1usize..4,
        h in 4usize..14,
        w in 4usize..14,
        r in prop::sample::select(vec![1usize, 3, 5, 7]),
        lg_n in 3usize..6,
        pad in 0usize..4,
        threads in 1usize..5,
    ) {
        let n = 1usize << lg_n;
        prop_assume!(n >= r);
        let (input, kernels) = random_pair(seed, Shape4 { n: n_imgs, c, h, w }, k, r);
        prop_assume!(h + 2 * pad >= r && w + 2 * pad >= r);
        let bank = PreparedFft::new(n, &kernels);
        let got = bank.execute(&input, pad, threads);
        let oracle = spatial_convolve_strided(&input, &kernels, pad, 1);
        prop_assert_eq!(got.shape(), oracle.shape());
        let shape = ConvShape { h, w, c, k, r, stride: 1, pad };
        let tol = fft_error_bound(&shape, n, 1.0, 1.0);
        let stats = ErrorStats::between(got.as_slice(), oracle.as_slice());
        prop_assert!(stats.within_abs(tol), "FFT({}): {} vs tol {}", n, stats, tol);
    }

    /// Thread count never changes a single bit of FFT output.
    #[test]
    fn fft_is_thread_count_invariant(
        seed in 0u64..1_000_000,
        h in 4usize..12,
        w in 4usize..12,
        lg_n in 3usize..6,
        pad in 0usize..2,
        threads in 2usize..7,
    ) {
        let n = 1usize << lg_n;
        let (input, kernels) = random_pair(seed, Shape4 { n: 2, c: 2, h, w }, 3, 3);
        let bank = PreparedFft::new(n, &kernels);
        let one = bank.execute(&input, pad, 1);
        let many = bank.execute(&input, pad, threads);
        prop_assert_eq!(one.as_slice(), many.as_slice());
    }

    /// The prepared backend (directly and as a trait object) is bitwise
    /// the one-shot plan dispatcher on FFT plans.
    #[test]
    fn prepared_fft_is_bitwise_the_plan_path(
        seed in 0u64..1_000_000,
        h in 5usize..11,
        c in 1usize..3,
        k in 1usize..3,
        threads in 1usize..4,
    ) {
        let (input, kernels) = random_pair(seed, Shape4 { n: 1, c, h, w: h }, k, 3);
        let plan = LayerPlan {
            layer: "prop".into(),
            shape: ConvShape { h, w: h, c, k, r: 3, stride: 1, pad: 1 },
            engine: EnginePlan::Fft { n: 8 },
        };
        let one_shot =
            execute_plan(&plan, &input, &kernels, &ExecConfig::with_threads(threads)).unwrap();
        let bank = PreparedFft::new(8, &kernels);
        let direct = bank.execute(&input, 1, threads);
        prop_assert_eq!(direct.as_slice(), one_shot.as_slice());
        let boxed: Box<dyn ConvBackend<f32>> = Box::new(bank);
        let via_trait = boxed.execute(&input, 1, threads);
        prop_assert_eq!(via_trait.as_slice(), one_shot.as_slice());
    }
}
