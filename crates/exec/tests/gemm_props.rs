//! Property tests for the packed GEMM micro-kernel: for arbitrary
//! shapes, strides and scalar types, the blocked kernel must be
//! **bitwise** equal to the naive per-coordinate multiply — the
//! determinism contract that lets the execution engine ride the fast
//! kernel without giving up thread-count-invariant output — and the
//! engine built on it must stay bitwise thread-count-invariant for
//! both float and fixed-point datapaths, including the edge geometries
//! (operands smaller than one micro-tile, single-tile images, empty
//! batches).

use proptest::prelude::*;
use wino_core::WinogradParams;
use wino_exec::gemm::{gemm, gemm_naive, gemm_packed_a, pack_a, MR, NR};
use wino_exec::winograd_convolve;
use wino_tensor::{Fixed, Shape4, SplitMix64, Tensor4};

fn filled(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = SplitMix64::new(seed);
    (0..len).map(|_| rng.uniform_f32(-1.0, 1.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The packed kernel is bitwise the naive multiply for arbitrary
    /// shapes and row strides, at `f32`.
    #[test]
    fn packed_gemm_is_bitwise_naive_f32(
        seed in 0u64..1_000_000,
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        pad_a in 0usize..4,
        pad_b in 0usize..4,
        pad_c in 0usize..4,
    ) {
        let (lda, ldb, ldc) = (k + pad_a, n + pad_b, n + pad_c);
        let a = filled(m * lda, seed);
        let b = filled(k * ldb, seed ^ 0xB);
        // Pre-fill C with noise: overwrite semantics must hold even on
        // the padded tail of each row.
        let mut fast = filled(m * ldc, seed ^ 0xC);
        let mut slow = fast.clone();
        gemm(m, n, k, &a, lda, &b, ldb, &mut fast, ldc);
        gemm_naive(m, n, k, &a, lda, &b, ldb, &mut slow, ldc);
        prop_assert_eq!(&fast, &slow, "m={} n={} k={}", m, n, k);
    }

    /// Same contract on the saturating fixed-point datapath.
    #[test]
    fn packed_gemm_is_bitwise_naive_fixed(
        seed in 0u64..1_000_000,
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..24,
    ) {
        let a: Vec<Fixed<10>> =
            filled(m * k, seed).iter().map(|&x| Fixed::from_f32(x)).collect();
        let b: Vec<Fixed<10>> =
            filled(k * n, seed ^ 0xF).iter().map(|&x| Fixed::from_f32(x)).collect();
        let mut fast = vec![Fixed::<10>::ZERO; m * n];
        let mut slow = fast.clone();
        gemm(m, n, k, &a, k, &b, n, &mut fast, n);
        gemm_naive(m, n, k, &a, k, &b, n, &mut slow, n);
        prop_assert_eq!(fast, slow);
    }

    /// Packing `A` ahead of time (what the prepared engine does) is
    /// the same computation as packing on the fly.
    #[test]
    fn prepacked_a_matches_one_shot_gemm(
        seed in 0u64..1_000_000,
        m in 1usize..30,
        n in 1usize..30,
        k in 1usize..30,
    ) {
        let a = filled(m * k, seed);
        let b = filled(k * n, seed ^ 0xAB);
        let mut one_shot = vec![0.0f32; m * n];
        let mut prepacked = vec![0.0f32; m * n];
        gemm(m, n, k, &a, k, &b, n, &mut one_shot, n);
        let apack = pack_a(m, k, &a, k);
        gemm_packed_a(m, n, k, &apack, &b, n, &mut prepacked, n);
        prop_assert_eq!(one_shot, prepacked);
    }

    /// The engine riding the packed kernel stays bitwise
    /// thread-count-invariant on the fixed-point datapath too (the
    /// float case is pinned in `exec_props.rs`), across geometries
    /// that exercise ragged micro-tiles and ragged panels.
    #[test]
    fn fixed_engine_is_thread_count_invariant(
        seed in 0u64..1_000_000,
        h in 4usize..11,
        w in 4usize..11,
        m in 2usize..5,
        threads in 2usize..7,
    ) {
        let mut rng = SplitMix64::new(seed);
        let input = Tensor4::from_fn(Shape4 { n: 2, c: 3, h, w }, |_, _, _, _| {
            Fixed::<10>::from_f32(rng.uniform_f32(-1.0, 1.0))
        });
        let kernels = Tensor4::from_fn(Shape4 { n: 3, c: 3, h: 3, w: 3 }, |_, _, _, _| {
            Fixed::<10>::from_f32(rng.uniform_f32(-0.5, 0.5))
        });
        let params = WinogradParams::new(m, 3).unwrap();
        let one = winograd_convolve(params, &input, &kernels, 1, 1).unwrap();
        let many = winograd_convolve(params, &input, &kernels, 1, threads).unwrap();
        prop_assert_eq!(one.as_slice(), many.as_slice());
    }
}

/// `C` and `K` both smaller than one micro-tile: the engine's GEMM is
/// a single ragged tile, and the output must still match the oracle.
#[test]
fn channels_and_kernels_smaller_than_the_micro_tile() {
    // C = K = 2 while MR = 8 and NR = 8: a single ragged micro-tile.
    let _ = (MR, NR);
    let mut rng = SplitMix64::new(99);
    let input = Tensor4::from_fn(Shape4 { n: 1, c: 2, h: 8, w: 8 }, |_, _, _, _| {
        rng.uniform_f32(-1.0, 1.0)
    });
    let kernels = Tensor4::from_fn(Shape4 { n: 2, c: 2, h: 3, w: 3 }, |_, _, _, _| {
        rng.uniform_f32(-1.0, 1.0)
    });
    let oracle = wino_baselines::spatial_convolve(&input, &kernels, 1);
    for m in [2usize, 4] {
        let got =
            winograd_convolve(WinogradParams::new(m, 3).unwrap(), &input, &kernels, 1, 2).unwrap();
        let stats = wino_tensor::ErrorStats::between(got.as_slice(), oracle.as_slice());
        assert!(stats.within_abs(1e-4), "m={m}: {stats}");
    }
}

/// A single-tile image (output no larger than one m×m tile) runs the
/// whole pipeline with one panel of one tile.
#[test]
fn single_tile_images_execute() {
    let mut rng = SplitMix64::new(7);
    let input = Tensor4::from_fn(Shape4 { n: 1, c: 3, h: 4, w: 4 }, |_, _, _, _| {
        rng.uniform_f32(-1.0, 1.0)
    });
    let kernels = Tensor4::from_fn(Shape4 { n: 2, c: 3, h: 3, w: 3 }, |_, _, _, _| {
        rng.uniform_f32(-1.0, 1.0)
    });
    // pad 0: a 4x4 input under a 3x3 kernel leaves a 2x2 output — one
    // F(2x2) tile exactly, and a ragged partial tile for F(4x4).
    let oracle = wino_baselines::spatial_convolve(&input, &kernels, 0);
    for m in [2usize, 4] {
        let got =
            winograd_convolve(WinogradParams::new(m, 3).unwrap(), &input, &kernels, 0, 3).unwrap();
        assert_eq!(got.shape(), oracle.shape());
        let stats = wino_tensor::ErrorStats::between(got.as_slice(), oracle.as_slice());
        assert!(stats.within_abs(1e-4), "m={m}: {stats}");
    }
}

/// An empty batch (N = 0) is a no-op, not a panic: zero tiles, zero
/// panels, an empty output tensor.
#[test]
fn empty_batch_produces_an_empty_output() {
    let input = Tensor4::<f32>::zeros(Shape4 { n: 0, c: 3, h: 8, w: 8 });
    let kernels = Tensor4::<f32>::zeros(Shape4 { n: 2, c: 3, h: 3, w: 3 });
    let got = winograd_convolve(WinogradParams::new(2, 3).unwrap(), &input, &kernels, 1, 4)
        .expect("empty batch executes");
    assert_eq!(got.shape(), Shape4 { n: 0, c: 2, h: 8, w: 8 });
    assert!(got.as_slice().is_empty());
}
