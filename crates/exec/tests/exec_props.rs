//! Property tests for the execution engine: on random layer geometries
//! (shapes, strides, kernel sizes, tile sizes, thread counts) the engine
//! must match the `wino_baselines` spatial oracle within fp32 tolerance,
//! and must be bitwise thread-count-invariant.

use proptest::prelude::*;
use wino_baselines::spatial_convolve_strided;
use wino_core::{ConvShape, WinogradParams};
use wino_exec::{
    execute_plan, spatial_convolve_mt, winograd_convolve, EnginePlan, ExecConfig, LayerPlan,
};
use wino_tensor::{ErrorStats, Shape4, SplitMix64, Tensor4};

fn random_pair(seed: u64, shape: Shape4, k: usize, r: usize) -> (Tensor4<f32>, Tensor4<f32>) {
    let mut rng = SplitMix64::new(seed);
    let input = Tensor4::from_fn(shape, |_, _, _, _| rng.uniform_f32(-1.0, 1.0));
    let kernels = Tensor4::from_fn(Shape4 { n: k, c: shape.c, h: r, w: r }, |_, _, _, _| {
        rng.uniform_f32(-1.0, 1.0)
    });
    (input, kernels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Winograd execution equals the spatial oracle on arbitrary
    /// stride-1 geometries, for every tile size and thread count.
    #[test]
    fn winograd_exec_matches_spatial_oracle(
        seed in 0u64..1_000_000,
        n in 1usize..3,
        c in 1usize..4,
        k in 1usize..4,
        h in 4usize..13,
        w in 4usize..13,
        m in 2usize..6,
        pad in 0usize..2,
        threads in 1usize..5,
    ) {
        let (input, kernels) = random_pair(seed, Shape4 { n, c, h, w }, k, 3);
        let params = WinogradParams::new(m, 3).unwrap();
        let got = winograd_convolve(params, &input, &kernels, pad, threads).unwrap();
        let oracle = spatial_convolve_strided(&input, &kernels, pad, 1);
        prop_assert_eq!(got.shape(), oracle.shape());
        let stats = ErrorStats::between(got.as_slice(), oracle.as_slice());
        prop_assert!(stats.within_abs(2e-4), "F({}x{},3x3): {}", m, m, stats);
    }

    /// The spatial engine is bitwise the oracle for any stride, and the
    /// plan dispatcher routes strided layers to it.
    #[test]
    fn strided_plans_match_oracle_bitwise(
        seed in 0u64..1_000_000,
        c in 1usize..4,
        k in 1usize..4,
        h in 5usize..12,
        stride in 1usize..4,
        r in prop::sample::select(vec![1usize, 3, 5]),
        threads in 1usize..5,
    ) {
        let pad = r / 2;
        let (input, kernels) = random_pair(seed, Shape4 { n: 1, c, h, w: h }, k, r);
        let oracle = spatial_convolve_strided(&input, &kernels, pad, stride);
        let direct = spatial_convolve_mt(&input, &kernels, pad, stride, threads);
        prop_assert_eq!(direct.as_slice(), oracle.as_slice());

        let plan = LayerPlan {
            layer: "prop".into(),
            shape: ConvShape { h, w: h, c, k, r, stride, pad },
            engine: EnginePlan::Spatial,
        };
        let via_plan =
            execute_plan(&plan, &input, &kernels, &ExecConfig::with_threads(threads)).unwrap();
        prop_assert_eq!(via_plan.as_slice(), oracle.as_slice());
    }

    /// Thread count never changes a single bit of Winograd output.
    #[test]
    fn winograd_is_thread_count_invariant(
        seed in 0u64..1_000_000,
        h in 4usize..11,
        w in 4usize..11,
        m in 2usize..5,
        threads in 2usize..7,
    ) {
        let (input, kernels) = random_pair(seed, Shape4 { n: 2, c: 2, h, w }, 3, 3);
        let params = WinogradParams::new(m, 3).unwrap();
        let one = winograd_convolve(params, &input, &kernels, 1, 1).unwrap();
        let many = winograd_convolve(params, &input, &kernels, 1, threads).unwrap();
        prop_assert_eq!(one.as_slice(), many.as_slice());
    }
}
