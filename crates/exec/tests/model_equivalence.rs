//! The exec ↔ oracle contract on the workspace's four model workloads:
//! every layer of VGG16-D, AlexNet, ResNet-18 (structurally identical
//! reduced copies — see `wino_models::shrink`) and TinyCNN (full size)
//! must match the spatial oracle within fp32 tolerance, under both the
//! paper's tile choices.

use wino_exec::{ExecConfig, NetworkExecutor, Schedule};
use wino_models::{alexnet, resnet18, shrink, tiny_cnn, vgg16d};

fn verify_network(workload: wino_core::Workload, m: usize) {
    let name = workload.name().to_owned();
    let schedule = Schedule::homogeneous(&workload, m).unwrap();
    let exec = NetworkExecutor::new(workload, schedule, ExecConfig::with_threads(2)).unwrap();
    let worst = exec.verify(1e-3).unwrap_or_else(|e| panic!("{name} m={m}: {e}"));
    assert!(worst < 1e-3, "{name} m={m}: worst deviation {worst:.3e}");
}

#[test]
fn vgg16d_matches_oracle_under_both_paper_tiles() {
    for m in [2, 4] {
        verify_network(shrink(&vgg16d(1), 14, 8), m);
    }
}

#[test]
fn alexnet_matches_oracle_with_mixed_kernel_fallback() {
    // The strided 11x11 conv1 exercises the spatial engine; the
    // stride-1 5x5 conv2 runs as Winograd F(4x4, 5x5) and the 3x3
    // layers as F(4x4, 3x3).
    verify_network(shrink(&alexnet(1), 15, 8), 4);
}

#[test]
fn resnet18_matches_oracle_with_strided_fallback() {
    verify_network(shrink(&resnet18(1), 14, 8), 4);
}

#[test]
fn tiny_cnn_matches_oracle_at_full_size() {
    for m in [2, 3, 4] {
        verify_network(tiny_cnn(1), m);
    }
}
