//! The packed, cache-blocked GEMM micro-kernel behind the
//! transform-domain multiply.
//!
//! The hot loop of Winograd layer execution is `n²` independent channel
//! GEMMs — for every transform coordinate `e`,
//! `M_e[K][T] = V_e[K][C] · U_e[C][T]` — and this module is the one
//! place that computes them. The kernel is written once, generically
//! over [`Scalar`], and monomorphizes to the paper's `f32` datapath and
//! to every `Fixed<FRAC>` width of the quantization study.
//!
//! ## Blocking scheme
//!
//! The kernel follows the classic three-level GOTO/BLIS decomposition,
//! sized for the layer geometries this workspace actually runs
//! (`C, K ≤ 512`, tile panels of [`PANEL_TILES`] columns):
//!
//! * **Register micro-tile** — outputs are produced [`MR`]`×`[`NR`] at a
//!   time into a `[[T; NR]; MR]` accumulator block that lives entirely
//!   in registers across the whole channel loop. Every output element
//!   is touched once in memory (the final store) instead of once per
//!   channel, which is what the pre-GEMM per-row loop paid.
//! * **Packed operands** — the `A` operand (the kernel bank `V_e`) is
//!   packed into `MR`-row column-major micro-panels
//!   (`apack[p][0..MR]` contiguous per channel step `p`), and each
//!   `NR`-column slice of the `B` operand (the data panel `U_e`) is
//!   packed into an `NR`-wide row-major micro-panel before use, so the
//!   innermost loop issues only contiguous loads. Ragged edges are
//!   zero-padded to full micro-tiles: the padding lanes multiply
//!   against zero and are masked off at store time, so one code path
//!   serves every shape at full vector width.
//! * **`KC` cache blocking** — the channel loop runs in [`KC`]-sized
//!   blocks, keeping the active `KC×NR` slice of the packed `B` panel
//!   (≤ 2 KiB at `f32`) pinned in L1 while the `A` micro-panels stream
//!   past it. Accumulation stays in the same register block across
//!   blocks, so blocking never reorders a sum.
//!
//! ## Determinism contract
//!
//! Every output element is one fixed-order accumulation chain over the
//! inner dimension (`p = 0, 1, …, k−1`), regardless of micro-tile
//! position, panel width, edge raggedness or how many threads share the
//! surrounding loop. [`gemm`] is therefore **bitwise identical** to
//! [`gemm_naive`] for every shape and every `Scalar` instantiation — a
//! property the `gemm_props` suite pins — which is what lets the
//! execution engine keep its bitwise thread-count-invariance guarantee
//! while going fast.

use wino_tensor::Scalar;

/// Rows of one register micro-tile (the `K`/kernel dimension).
///
/// `8 × 8` was picked by sweeping `{4, 6, 8} × {8, 16, 24}` on the
/// vgg16d-conv3 geometry (see `DESIGN.md`): it fills the sixteen
/// 4-lane registers of the baseline x86-64 (SSE2) target with
/// accumulators, which measured fastest despite leaving the operand
/// loads to flow through the load ports — wider tiles spill, narrower
/// ones leave multiply throughput idle.
pub const MR: usize = 8;

/// Columns of one register micro-tile (the tile/`T` dimension).
pub const NR: usize = 8;

/// Channel-loop cache block: the innermost loop walks the reduction
/// dimension in `KC`-sized chunks so the live `KC × NR` slice of the
/// packed `B` panel stays L1-resident. Chosen so that slice is ≤ 2 KiB
/// at `f32` (and the matching `A` micro-panel slice ≤ 1 KiB) — far
/// under any L1 — while still long enough to amortize loop overhead.
pub const KC: usize = 64;

/// Tiles per packed data panel — the unit of the engine's
/// tile-panel-major work decomposition (see `layer.rs`). A panel of
/// `PANEL_TILES` columns bounds the per-work-item footprint of the
/// packed `U` buffer (`n² · C · PANEL_TILES` elements) and, as a
/// multiple of [`NR`], keeps every non-final micro-panel full-width.
pub const PANEL_TILES: usize = 64;

/// Packs row-major `a` (`m × k`, row stride `lda`) into `MR`-row
/// micro-panels: panel `ip` holds rows `ip·MR..ip·MR+MR` laid out
/// `apack[(ip·k + p)·MR + i] = a[(ip·MR + i)·lda + p]`, with rows past
/// `m` zero-filled. The packed buffer has `m.div_ceil(MR)·MR·k`
/// elements and is what [`gemm_packed_a`] consumes.
///
/// Packing is worth a separate entry point because the execution engine
/// packs each layer's kernel bank **once** at preparation time and then
/// replays thousands of GEMMs against it.
///
/// # Panics
///
/// Panics if `lda < k` or `a` is too short for the described matrix.
pub fn pack_a<T: Scalar>(m: usize, k: usize, a: &[T], lda: usize) -> Vec<T> {
    assert!(lda >= k, "row stride {lda} shorter than row length {k}");
    if m > 0 && k > 0 {
        assert!((m - 1) * lda + k <= a.len(), "matrix exceeds the supplied slice");
    }
    let panels = m.div_ceil(MR).max(1);
    let mut apack = vec![T::zero(); panels * k * MR];
    for ip in 0..m.div_ceil(MR) {
        let rows = MR.min(m - ip * MR);
        let dst = &mut apack[ip * k * MR..(ip + 1) * k * MR];
        for i in 0..rows {
            let row = &a[(ip * MR + i) * lda..][..k];
            for (p, &v) in row.iter().enumerate() {
                dst[p * MR + i] = v;
            }
        }
    }
    apack
}

/// One register micro-tile: `acc[i][j] += Σ_p apack[p][i] · bpack[p][j]`
/// over `p = 0..kc`, with `p` strictly increasing — the fixed
/// accumulation order every caller relies on. `apack`/`bpack` are the
/// contiguous micro-panels produced by the packing routines.
#[inline]
fn micro_kernel<T: Scalar>(kc: usize, apack: &[T], bpack: &[T], acc: &mut [[T; NR]; MR]) {
    for p in 0..kc {
        let arow = &apack[p * MR..p * MR + MR];
        let brow = &bpack[p * NR..p * NR + NR];
        for i in 0..MR {
            let av = arow[i];
            let row = &mut acc[i];
            for j in 0..NR {
                row[j] += av * brow[j];
            }
        }
    }
}

/// `C[m × n] = A[m × k] · B[k × n]` with `A` pre-packed by [`pack_a`]
/// and row-major `B`/`C` (row strides `ldb`/`ldc`). Overwrites `c`.
///
/// This is the engine's hot path: the kernel bank arrives packed once,
/// `B` is packed `NR` columns at a time on the fly, and outputs are
/// produced through [`MR`]`×`[`NR`] register tiles with the channel
/// loop [`KC`]-blocked. Every output element accumulates over
/// `p = 0..k` in increasing order, so the result is bitwise identical
/// to [`gemm_naive`] at any shape.
///
/// # Panics
///
/// Panics if `apack` has the wrong length for `(m, k)`, `ldb < n`,
/// `ldc < n`, or `b`/`c` are too short for the described matrices.
#[allow(clippy::too_many_arguments)] // BLAS-style flat dims-and-strides signature
pub fn gemm_packed_a<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    apack: &[T],
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    assert_eq!(apack.len(), m.div_ceil(MR).max(1) * k * MR, "packed A length mismatch");
    assert!(ldb >= n, "B row stride {ldb} shorter than row length {n}");
    assert!(ldc >= n, "C row stride {ldc} shorter than row length {n}");
    if m == 0 || n == 0 {
        return;
    }
    if k > 0 {
        assert!((k - 1) * ldb + n <= b.len(), "B exceeds the supplied slice");
    }
    assert!((m - 1) * ldc + n <= c.len(), "C exceeds the supplied slice");

    // One NR-wide packed B panel, zero-padded on the ragged edge.
    let mut bpack = vec![T::zero(); k.max(1) * NR];
    for j0 in (0..n).step_by(NR) {
        let cols = NR.min(n - j0);
        for p in 0..k {
            let src = &b[p * ldb + j0..p * ldb + j0 + cols];
            let dst = &mut bpack[p * NR..p * NR + NR];
            dst[..cols].copy_from_slice(src);
            for slot in dst[cols..].iter_mut() {
                *slot = T::zero();
            }
        }
        for i0 in (0..m).step_by(MR) {
            let rows = MR.min(m - i0);
            let apanel = &apack[(i0 / MR) * k * MR..];
            let mut acc = [[T::zero(); NR]; MR];
            // KC-blocked channel loop; the accumulator block persists
            // across blocks, so the per-element sum order is exactly
            // p = 0..k no matter how the blocks fall.
            let mut p0 = 0;
            while p0 < k {
                let kc = KC.min(k - p0);
                micro_kernel(kc, &apanel[p0 * MR..], &bpack[p0 * NR..], &mut acc);
                p0 += kc;
            }
            for i in 0..rows {
                let dst = &mut c[(i0 + i) * ldc + j0..(i0 + i) * ldc + j0 + cols];
                dst.copy_from_slice(&acc[i][..cols]);
            }
        }
    }
}

/// `C[m × n] = A[m × k] · B[k × n]`, all operands row-major with
/// explicit row strides, through the packed micro-kernel. Packs `A`
/// internally; callers replaying many multiplies against one `A` (the
/// engine) should [`pack_a`] once and use [`gemm_packed_a`].
///
/// Bitwise identical to [`gemm_naive`] for every shape, stride and
/// [`Scalar`] instantiation.
///
/// # Panics
///
/// Panics on the same stride/length mismatches as [`pack_a`] and
/// [`gemm_packed_a`].
#[allow(clippy::too_many_arguments)] // BLAS-style flat dims-and-strides signature
pub fn gemm<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    let apack = pack_a(m, k, a, lda);
    gemm_packed_a(m, n, k, &apack, b, ldb, c, ldc);
}

/// The reference multiply: the naive three-loop per-coordinate product
/// the engine ran before the packed kernel existed, kept as the
/// semantics oracle. `c[i][j] = Σ_p a[i][p] · b[p][j]`, accumulated
/// with `p` strictly increasing. Overwrites `c`.
///
/// # Panics
///
/// Panics if a stride is shorter than its row or a slice is too short.
#[allow(clippy::too_many_arguments)] // BLAS-style flat dims-and-strides signature
pub fn gemm_naive<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    assert!(lda >= k && ldb >= n && ldc >= n, "stride shorter than row");
    for i in 0..m {
        for j in 0..n {
            let mut acc = T::zero();
            for p in 0..k {
                acc += a[i * lda + p] * b[p * ldb + j];
            }
            c[i * ldc + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_tensor::{Fixed, SplitMix64};

    fn filled(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = SplitMix64::new(seed);
        (0..len).map(|_| rng.uniform_f32(-1.0, 1.0)).collect()
    }

    #[test]
    fn packed_matches_naive_on_awkward_shapes() {
        for (m, n, k) in [(1, 1, 1), (3, 7, 5), (4, 8, 64), (13, 17, 9), (129, 65, 130)] {
            let a = filled(m * k, 1);
            let b = filled(k * n, 2);
            let mut fast = vec![0.0f32; m * n];
            let mut slow = vec![0.0f32; m * n];
            gemm(m, n, k, &a, k, &b, n, &mut fast, n);
            gemm_naive(m, n, k, &a, k, &b, n, &mut slow, n);
            assert_eq!(fast, slow, "m={m} n={n} k={k}");
        }
    }

    #[test]
    fn strided_operands_match_naive() {
        let (m, n, k) = (5, 9, 6);
        let (lda, ldb, ldc) = (k + 3, n + 2, n + 5);
        let a = filled(m * lda, 3);
        let b = filled(k * ldb, 4);
        let mut fast = vec![0.0f32; m * ldc];
        let mut slow = fast.clone();
        gemm(m, n, k, &a, lda, &b, ldb, &mut fast, ldc);
        gemm_naive(m, n, k, &a, lda, &b, ldb, &mut slow, ldc);
        assert_eq!(fast, slow);
    }

    #[test]
    fn fixed_point_matches_naive_bitwise() {
        let (m, n, k) = (6, 10, 7);
        let a: Vec<Fixed<10>> = filled(m * k, 5).iter().map(|&x| Fixed::from_f32(x)).collect();
        let b: Vec<Fixed<10>> = filled(k * n, 6).iter().map(|&x| Fixed::from_f32(x)).collect();
        let mut fast = vec![Fixed::<10>::ZERO; m * n];
        let mut slow = fast.clone();
        gemm(m, n, k, &a, k, &b, n, &mut fast, n);
        gemm_naive(m, n, k, &a, k, &b, n, &mut slow, n);
        assert_eq!(fast, slow);
    }

    #[test]
    fn degenerate_dimensions_are_safe() {
        // k = 0: every output is an empty sum, i.e. zero (overwrite).
        let mut c = vec![1.0f32; 6];
        gemm(2, 3, 0, &[], 0, &[], 3, &mut c, 3);
        assert_eq!(c, vec![0.0; 6]);
        // m = 0 / n = 0: nothing to write, nothing read out of bounds.
        gemm::<f32>(0, 3, 2, &[], 2, &[0.0; 6], 3, &mut [], 3);
        gemm::<f32>(2, 0, 2, &[0.0; 4], 2, &[], 0, &mut [], 0);
    }

    #[test]
    fn pack_a_zero_fills_the_ragged_panel() {
        // m = MR + 1 leaves a single-row trailing panel; its other
        // MR − 1 rows must be zero so the shared micro-kernel stays
        // exact.
        let m = MR + 1;
        let k = 3;
        let a: Vec<f32> = (0..m * k).map(|x| x as f32 + 1.0).collect();
        let apack = pack_a(m, k, &a, k);
        assert_eq!(apack.len(), 2 * k * MR);
        // Trailing panel, channel 0: the last row of `a`, then zeros.
        assert_eq!(apack[k * MR], (MR * k) as f32 + 1.0);
        assert!(apack[k * MR + 1..k * MR + MR].iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn short_stride_is_rejected() {
        let mut c = [0.0f32; 4];
        gemm(2, 2, 3, &[0.0; 6], 2, &[0.0; 6], 2, &mut c, 2);
    }
}
