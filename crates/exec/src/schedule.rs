//! Lowering design-space results into executable per-layer schedules.
//!
//! A [`Schedule`] assigns every layer of a [`Workload`] an execution
//! engine: a Winograd `F(m×m, r×r)` configuration or the spatial
//! fallback. Schedules are produced three ways — from the heterogeneous
//! per-layer designs of `wino-search`
//! ([`Schedule::from_layer_designs`]), from a `wino-dse` workload
//! mapping ([`Schedule::from_mapping`]), or homogeneously with one tile
//! size for every eligible layer ([`Schedule::homogeneous`], the
//! paper's design rule) — and validated against the workload before an
//! executor will accept them.
//!
//! Orthogonally to the engine choice, every schedule carries a
//! [`QuantConfig`](crate::QuantConfig) naming the arithmetic each layer
//! runs in. Schedules default to all-`f32` (the paper's datapath);
//! [`Schedule::with_quant`] lowers a per-layer fixed-point assignment
//! into the schedule, which the executor then dispatches to the
//! saturating `Fixed<FRAC>` kernels.

use crate::{Precision, QuantConfig, QuantError};
use std::fmt;
use wino_core::{ConvShape, ParamError, WinogradParams, Workload};
use wino_dse::{LayerTarget, WorkloadMapping};
use wino_search::{AlgorithmChoice, LayerDesign};

/// The engine one layer executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnginePlan {
    /// Tiled `F(m×m, r×r)` Winograd convolution.
    Winograd(WinogradParams),
    /// Overlap–save FFT convolution with FFT size `n` (stride-1,
    /// `f32`-only — the widened `f64` transform datapath has no
    /// saturating fixed-point analogue).
    Fft {
        /// FFT size (power of two, at least the layer's kernel size).
        n: usize,
    },
    /// Direct spatial convolution (any stride or kernel size).
    Spatial,
}

impl fmt::Display for EnginePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnginePlan::Winograd(p) => write!(f, "{p}"),
            EnginePlan::Fft { n } => write!(f, "FFT({n})"),
            EnginePlan::Spatial => write!(f, "spatial"),
        }
    }
}

/// One layer's executable plan: its geometry plus the engine it runs on.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPlan {
    /// Layer name (matches the workload).
    pub layer: String,
    /// Layer geometry (matches the workload).
    pub shape: ConvShape,
    /// Assigned engine.
    pub engine: EnginePlan,
}

/// Errors lowering a design to a schedule, or validating a schedule
/// against a workload.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// The design has a different number of layers than the workload.
    LayerCount {
        /// Layers in the workload.
        expected: usize,
        /// Layers in the design.
        actual: usize,
    },
    /// Layer `index` is named differently in the design and workload.
    LayerName {
        /// Position in execution order.
        index: usize,
        /// Name in the workload.
        workload: String,
        /// Name in the design.
        design: String,
    },
    /// A Winograd engine was assigned to a layer it cannot run
    /// (non-unit stride, or a kernel size other than the engine's `r`).
    Incompatible {
        /// Offending layer name.
        layer: String,
        /// The assigned parameters.
        params: WinogradParams,
    },
    /// An FFT engine was assigned to a layer it cannot run (non-unit
    /// stride, a non-power-of-two size, or a size smaller than the
    /// layer's kernel).
    FftIncompatible {
        /// Offending layer name.
        layer: String,
        /// The assigned FFT size.
        n: usize,
    },
    /// An FFT engine was assigned to a fixed-point layer; the FFT
    /// datapath is `f32`-only.
    FftQuantized {
        /// Offending layer name.
        layer: String,
    },
    /// Invalid `F(m, r)` parameters while constructing a plan.
    Params(ParamError),
    /// Invalid quantization configuration for this schedule.
    Quant(QuantError),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::LayerCount { expected, actual } => {
                write!(f, "design has {actual} layers, workload has {expected}")
            }
            ScheduleError::LayerName { index, workload, design } => {
                write!(
                    f,
                    "layer {index} is '{workload}' in the workload but '{design}' in the design"
                )
            }
            ScheduleError::Incompatible { layer, params } => {
                write!(f, "{params} cannot execute layer '{layer}' (stride or kernel mismatch)")
            }
            ScheduleError::FftIncompatible { layer, n } => {
                write!(
                    f,
                    "FFT({n}) cannot execute layer '{layer}' \
                     (stride, power-of-two, or kernel-size mismatch)"
                )
            }
            ScheduleError::FftQuantized { layer } => {
                write!(f, "FFT engine on layer '{layer}' cannot run fixed-point arithmetic")
            }
            ScheduleError::Params(e) => write!(f, "{e}"),
            ScheduleError::Quant(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<ParamError> for ScheduleError {
    fn from(e: ParamError) -> ScheduleError {
        ScheduleError::Params(e)
    }
}

impl From<QuantError> for ScheduleError {
    fn from(e: QuantError) -> ScheduleError {
        ScheduleError::Quant(e)
    }
}

/// A fully-lowered execution plan for one workload: one [`LayerPlan`]
/// per layer, in execution order, plus the per-layer arithmetic
/// ([`QuantConfig`], defaulting to all-`f32`).
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    plans: Vec<LayerPlan>,
    quant: QuantConfig,
}

impl Schedule {
    fn from_plans(plans: Vec<LayerPlan>) -> Schedule {
        let quant = QuantConfig::float(plans.len());
        Schedule { plans, quant }
    }

    fn plan_for(
        shape: ConvShape,
        layer: &str,
        params: WinogradParams,
    ) -> Result<LayerPlan, ScheduleError> {
        if params.m() == 1 {
            return Ok(LayerPlan { layer: layer.to_owned(), shape, engine: EnginePlan::Spatial });
        }
        if !shape.winograd_compatible() || shape.r != params.r() {
            return Err(ScheduleError::Incompatible { layer: layer.to_owned(), params });
        }
        Ok(LayerPlan { layer: layer.to_owned(), shape, engine: EnginePlan::Winograd(params) })
    }

    fn fft_compatible(shape: &ConvShape, n: usize) -> bool {
        shape.stride == 1 && n >= 4 && n.is_power_of_two() && n >= shape.r
    }

    fn plan_for_fft(shape: ConvShape, layer: &str, n: usize) -> Result<LayerPlan, ScheduleError> {
        if !Schedule::fft_compatible(&shape, n) {
            return Err(ScheduleError::FftIncompatible { layer: layer.to_owned(), n });
        }
        Ok(LayerPlan { layer: layer.to_owned(), shape, engine: EnginePlan::Fft { n } })
    }

    /// Every layer on the spatial engine — the all-fallback baseline.
    pub fn spatial(workload: &Workload) -> Schedule {
        Schedule::from_plans(
            workload
                .layers()
                .iter()
                .map(|l| LayerPlan {
                    layer: l.name.clone(),
                    shape: l.shape,
                    engine: EnginePlan::Spatial,
                })
                .collect(),
        )
    }

    /// The paper's design rule: one output-tile size `m` for every
    /// Winograd-eligible layer. Strided layers fall back to spatial,
    /// and so does any layer whose kernel is too large for exact
    /// `F(m, r)` transform generation (`m + r − 1 > 16`) — note that
    /// *stride-1 non-3×3* layers within that bound (AlexNet's 5×5, say)
    /// run as Winograd `F(m×m, r×r)`, not spatially.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::Params`] when a layer declares a
    /// zero-size kernel.
    pub fn homogeneous(workload: &Workload, m: usize) -> Result<Schedule, ScheduleError> {
        let mut plans = Vec::with_capacity(workload.layers().len());
        for l in workload.layers() {
            let spatial =
                LayerPlan { layer: l.name.clone(), shape: l.shape, engine: EnginePlan::Spatial };
            if m > 1 && l.shape.winograd_compatible() {
                match WinogradParams::new(m, l.shape.r) {
                    Ok(params) => plans.push(Schedule::plan_for(l.shape, &l.name, params)?),
                    Err(ParamError::TooLarge { .. }) => plans.push(spatial),
                    Err(e) => return Err(e.into()),
                }
            } else {
                plans.push(spatial);
            }
        }
        Ok(Schedule::from_plans(plans))
    }

    /// Lowers the heterogeneous per-layer designs produced by
    /// `wino-search` (one [`LayerDesign`] per layer, in order — the
    /// output of `HeterogeneousSpace::layer_designs`) into an
    /// executable schedule. Each design's [`AlgorithmChoice`] maps to
    /// the matching [`EnginePlan`]: spatial, Winograd, or overlap–save
    /// FFT.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::LayerCount`] / [`ScheduleError::LayerName`]
    /// when the design does not line up with the workload,
    /// [`ScheduleError::Incompatible`] when a Winograd engine was chosen
    /// for a layer it cannot run, and [`ScheduleError::FftIncompatible`]
    /// for an FFT engine on a strided layer or with an unusable size.
    pub fn from_layer_designs(
        workload: &Workload,
        designs: &[LayerDesign],
    ) -> Result<Schedule, ScheduleError> {
        let layers = workload.layers();
        if layers.len() != designs.len() {
            return Err(ScheduleError::LayerCount {
                expected: layers.len(),
                actual: designs.len(),
            });
        }
        let mut plans = Vec::with_capacity(layers.len());
        for (index, (layer, design)) in layers.iter().zip(designs).enumerate() {
            if layer.name != design.layer {
                return Err(ScheduleError::LayerName {
                    index,
                    workload: layer.name.clone(),
                    design: design.layer.clone(),
                });
            }
            let plan = match design.algo {
                AlgorithmChoice::Spatial => LayerPlan {
                    layer: layer.name.clone(),
                    shape: layer.shape,
                    engine: EnginePlan::Spatial,
                },
                AlgorithmChoice::Winograd(params) => {
                    Schedule::plan_for(layer.shape, &layer.name, params)?
                }
                AlgorithmChoice::Fft { n } => Schedule::plan_for_fft(layer.shape, &layer.name, n)?,
            };
            plans.push(plan);
        }
        Ok(Schedule::from_plans(plans))
    }

    /// Lowers a `wino-dse` [`WorkloadMapping`] (which records *where*
    /// each layer runs) into a schedule executing Winograd layers as
    /// `params` and fallback layers spatially.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::LayerCount`] / [`ScheduleError::LayerName`]
    /// on mismatch with the workload, and [`ScheduleError::Incompatible`]
    /// when the mapping sends an incompatible layer to the Winograd
    /// engine.
    pub fn from_mapping(
        workload: &Workload,
        mapping: &WorkloadMapping,
        params: WinogradParams,
    ) -> Result<Schedule, ScheduleError> {
        let layers = workload.layers();
        if layers.len() != mapping.layers.len() {
            return Err(ScheduleError::LayerCount {
                expected: layers.len(),
                actual: mapping.layers.len(),
            });
        }
        let mut plans = Vec::with_capacity(layers.len());
        for (index, (layer, mapped)) in layers.iter().zip(&mapping.layers).enumerate() {
            if layer.name != mapped.name {
                return Err(ScheduleError::LayerName {
                    index,
                    workload: layer.name.clone(),
                    design: mapped.name.clone(),
                });
            }
            let plan = match mapped.target {
                LayerTarget::Winograd => Schedule::plan_for(layer.shape, &layer.name, params)?,
                LayerTarget::SpatialFallback => LayerPlan {
                    layer: layer.name.clone(),
                    shape: layer.shape,
                    engine: EnginePlan::Spatial,
                },
            };
            plans.push(plan);
        }
        Ok(Schedule::from_plans(plans))
    }

    /// Lowers a per-layer quantization assignment into this schedule,
    /// replacing the default all-`f32` configuration. The executor
    /// dispatches each layer to the datapath named here.
    ///
    /// ```
    /// use wino_exec::{QuantConfig, Schedule};
    /// use wino_models::tiny_cnn;
    ///
    /// let wl = tiny_cnn(1);
    /// let q16 = QuantConfig::uniform_fixed(4, 10)?;
    /// let s = Schedule::homogeneous(&wl, 2)?.with_quant(q16)?;
    /// assert!(!s.quant().is_all_float());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::Quant`] when `quant` configures a
    /// different number of layers than the schedule has, and
    /// [`ScheduleError::FftQuantized`] when it assigns fixed-point
    /// arithmetic to a layer on the `f32`-only FFT engine.
    pub fn with_quant(mut self, quant: QuantConfig) -> Result<Schedule, ScheduleError> {
        if quant.len() != self.plans.len() {
            return Err(
                QuantError::LayerCount { expected: self.plans.len(), actual: quant.len() }.into()
            );
        }
        for (i, plan) in self.plans.iter().enumerate() {
            if matches!(plan.engine, EnginePlan::Fft { .. })
                && quant.precision(i) != Precision::Float
            {
                return Err(ScheduleError::FftQuantized { layer: plan.layer.clone() });
            }
        }
        self.quant = quant;
        Ok(self)
    }

    /// The per-layer arithmetic configuration.
    pub fn quant(&self) -> &QuantConfig {
        &self.quant
    }

    /// The arithmetic layer `index` executes in.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn precision(&self, index: usize) -> Precision {
        self.quant.precision(index)
    }

    /// Per-layer plans in execution order.
    pub fn plans(&self) -> &[LayerPlan] {
        &self.plans
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// `true` when the schedule has no layers.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Number of layers assigned to a Winograd engine.
    pub fn winograd_layers(&self) -> usize {
        self.plans.iter().filter(|p| matches!(p.engine, EnginePlan::Winograd(_))).count()
    }

    /// Number of layers assigned to an FFT engine.
    pub fn fft_layers(&self) -> usize {
        self.plans.iter().filter(|p| matches!(p.engine, EnginePlan::Fft { .. })).count()
    }

    /// Checks that this schedule lines up with `workload` (same layer
    /// count, names, and shapes) — executors call this on construction.
    ///
    /// # Errors
    ///
    /// Returns the first [`ScheduleError`] found.
    pub fn validate(&self, workload: &Workload) -> Result<(), ScheduleError> {
        let layers = workload.layers();
        if layers.len() != self.plans.len() {
            return Err(ScheduleError::LayerCount {
                expected: layers.len(),
                actual: self.plans.len(),
            });
        }
        for (index, (layer, plan)) in layers.iter().zip(&self.plans).enumerate() {
            if layer.name != plan.layer || layer.shape != plan.shape {
                return Err(ScheduleError::LayerName {
                    index,
                    workload: layer.name.clone(),
                    design: plan.layer.clone(),
                });
            }
            match plan.engine {
                EnginePlan::Winograd(params) => {
                    if !plan.shape.winograd_compatible() || plan.shape.r != params.r() {
                        return Err(ScheduleError::Incompatible {
                            layer: plan.layer.clone(),
                            params,
                        });
                    }
                }
                EnginePlan::Fft { n } => {
                    if !Schedule::fft_compatible(&plan.shape, n) {
                        return Err(ScheduleError::FftIncompatible {
                            layer: plan.layer.clone(),
                            n,
                        });
                    }
                    if self.quant.precision(index) != Precision::Float {
                        return Err(ScheduleError::FftQuantized { layer: plan.layer.clone() });
                    }
                }
                EnginePlan::Spatial => {}
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schedule: {} layers ({} winograd, {} fft, {} spatial), {}",
            self.len(),
            self.winograd_layers(),
            self.fft_layers(),
            self.len() - self.winograd_layers() - self.fft_layers(),
            self.quant
        )?;
        for (i, p) in self.plans.iter().enumerate() {
            writeln!(
                f,
                "  {:<12} {:<14} {:<8} {}",
                p.layer,
                p.engine.to_string(),
                self.quant.precision(i).to_string(),
                p.shape
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_core::TileModel;
    use wino_dse::{map_workload, DesignPoint};
    use wino_fpga::Architecture;
    use wino_models::{resnet18, tiny_cnn};

    #[test]
    fn homogeneous_assigns_fallback_to_strided_layers() {
        let wl = tiny_cnn(1);
        let s = Schedule::homogeneous(&wl, 4).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.winograd_layers(), 3);
        assert_eq!(s.plans()[1].engine, EnginePlan::Spatial, "conv2 is strided");
        s.validate(&wl).unwrap();
        let text = s.to_string();
        assert!(text.contains("F(4x4, 3x3)"));
        assert!(text.contains("spatial"));
    }

    #[test]
    fn homogeneous_falls_back_for_oversized_kernels() {
        // A 13x13 stride-1 kernel at m = 6 needs n = 18 > 16: no exact
        // transform exists, so the layer runs spatially instead of the
        // whole schedule failing.
        let mut wl = wino_core::Workload::new("big-kernel", 1);
        wl.push("conv_big", "G", wino_core::ConvShape::same_padded(20, 20, 2, 2, 13));
        wl.push("conv_ok", "G", wino_core::ConvShape::same_padded(20, 20, 2, 2, 3));
        let s = Schedule::homogeneous(&wl, 6).unwrap();
        assert_eq!(s.plans()[0].engine, EnginePlan::Spatial);
        assert_eq!(s.plans()[1].engine, EnginePlan::Winograd(WinogradParams::new(6, 3).unwrap()));
        s.validate(&wl).unwrap();
    }

    #[test]
    fn m1_homogeneous_is_all_spatial() {
        let wl = tiny_cnn(1);
        let s = Schedule::homogeneous(&wl, 1).unwrap();
        assert_eq!(s.winograd_layers(), 0);
        assert_eq!(s, Schedule::spatial(&wl));
    }

    #[test]
    fn from_layer_designs_round_trips_names() {
        let wl = tiny_cnn(1);
        let designs: Vec<LayerDesign> = wl
            .layers()
            .iter()
            .map(|l| LayerDesign {
                layer: l.name.clone(),
                algo: if l.shape.winograd_compatible() {
                    AlgorithmChoice::Winograd(WinogradParams::new(2, l.shape.r).unwrap())
                } else {
                    AlgorithmChoice::Spatial
                },
                pe_count: 4,
                latency_ms: 1.0,
            })
            .collect();
        let s = Schedule::from_layer_designs(&wl, &designs).unwrap();
        s.validate(&wl).unwrap();
        assert_eq!(s.winograd_layers(), 3);
    }

    #[test]
    fn fft_designs_lower_to_fft_engines() {
        let wl = tiny_cnn(1);
        let designs: Vec<LayerDesign> = wl
            .layers()
            .iter()
            .map(|l| LayerDesign {
                layer: l.name.clone(),
                algo: if l.shape.winograd_compatible() {
                    AlgorithmChoice::Fft { n: 16 }
                } else {
                    AlgorithmChoice::Spatial
                },
                pe_count: 4,
                latency_ms: 1.0,
            })
            .collect();
        let s = Schedule::from_layer_designs(&wl, &designs).unwrap();
        s.validate(&wl).unwrap();
        assert_eq!(s.fft_layers(), 3);
        assert_eq!(s.winograd_layers(), 0);
        assert!(s.to_string().contains("FFT(16)"));
    }

    #[test]
    fn fft_on_strided_or_undersized_layers_is_rejected() {
        let wl = tiny_cnn(1);
        let mut designs: Vec<LayerDesign> = wl
            .layers()
            .iter()
            .map(|l| LayerDesign {
                layer: l.name.clone(),
                algo: AlgorithmChoice::Spatial,
                pe_count: 1,
                latency_ms: 1.0,
            })
            .collect();
        // conv2 is strided: FFT cannot run it.
        designs[1].algo = AlgorithmChoice::Fft { n: 16 };
        assert!(matches!(
            Schedule::from_layer_designs(&wl, &designs),
            Err(ScheduleError::FftIncompatible { n: 16, .. })
        ));
        // A size below the kernel is rejected even on stride-1 layers.
        designs[1].algo = AlgorithmChoice::Spatial;
        designs[0].algo = AlgorithmChoice::Fft { n: 2 };
        let err = Schedule::from_layer_designs(&wl, &designs).unwrap_err();
        assert!(err.to_string().contains("FFT(2)"), "{err}");
    }

    #[test]
    fn quantized_fft_layers_are_rejected() {
        let mut wl = wino_core::Workload::new("fft-quant", 1);
        wl.push("conv1", "G", wino_core::ConvShape::same_padded(8, 8, 2, 2, 3));
        let designs = vec![LayerDesign {
            layer: "conv1".to_owned(),
            algo: AlgorithmChoice::Fft { n: 8 },
            pe_count: 1,
            latency_ms: 1.0,
        }];
        let s = Schedule::from_layer_designs(&wl, &designs).unwrap();
        let q8 = crate::QuantConfig::uniform_fixed(1, 8).unwrap();
        let err = s.with_quant(q8).unwrap_err();
        assert!(matches!(err, ScheduleError::FftQuantized { .. }));
        assert!(err.to_string().contains("fixed-point"));
    }

    #[test]
    fn mismatched_designs_are_rejected() {
        let wl = tiny_cnn(1);
        assert_eq!(
            Schedule::from_layer_designs(&wl, &[]),
            Err(ScheduleError::LayerCount { expected: 4, actual: 0 })
        );
        let mut designs: Vec<LayerDesign> = wl
            .layers()
            .iter()
            .map(|l| LayerDesign {
                layer: l.name.clone(),
                algo: AlgorithmChoice::Spatial,
                pe_count: 1,
                latency_ms: 1.0,
            })
            .collect();
        designs[2].layer = "wrong".to_owned();
        assert!(matches!(
            Schedule::from_layer_designs(&wl, &designs),
            Err(ScheduleError::LayerName { index: 2, .. })
        ));
        // Winograd on the strided conv2 is incompatible.
        designs[2].layer = "conv3".to_owned();
        designs[1].algo = AlgorithmChoice::Winograd(WinogradParams::new(4, 3).unwrap());
        assert!(matches!(
            Schedule::from_layer_designs(&wl, &designs),
            Err(ScheduleError::Incompatible { .. })
        ));
    }

    #[test]
    fn from_mapping_follows_layer_targets() {
        let wl = resnet18(1);
        let point = DesignPoint::with_mult_budget(
            WinogradParams::new(4, 3).unwrap(),
            Architecture::SharedTransform,
            700,
            200e6,
        );
        let mapping = map_workload(&wl, &point, TileModel::Ceil);
        let s = Schedule::from_mapping(&wl, &mapping, point.params).unwrap();
        s.validate(&wl).unwrap();
        // The four strided layers (stem + three stage entries) fall back.
        assert_eq!(s.len() - s.winograd_layers(), 4);
    }

    #[test]
    fn validate_rejects_foreign_workload() {
        let s = Schedule::homogeneous(&tiny_cnn(1), 2).unwrap();
        let other = resnet18(1);
        assert!(s.validate(&other).is_err());
    }

    #[test]
    fn error_display() {
        let e = ScheduleError::Incompatible {
            layer: "conv2".into(),
            params: WinogradParams::new(4, 3).unwrap(),
        };
        assert!(e.to_string().contains("conv2"));
        let e: ScheduleError = ParamError::ZeroKernel.into();
        assert!(e.to_string().contains("r must be"));
    }
}
