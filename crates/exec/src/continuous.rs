//! Continuous batching: a multi-layer execution driver whose batch may
//! **grow at layer boundaries**.
//!
//! Classic dynamic batching freezes a batch at release time: requests
//! that arrive one microsecond later wait for the *next* release, even
//! though the executor will spend the next many milliseconds walking the
//! released batch through its layers. Continuous batching closes that
//! gap — [`run_layers_admitting`] calls an admission hook at every
//! layer boundary, and requests the hook admits join the in-flight
//! batch as new *lanes* from that boundary on.
//!
//! A lane admitted at boundary `k` executes layers `k..L` alongside the
//! original batch, then layers `0..k` in a **catch-up pass** after the
//! main sweep finishes, so every lane ends up with a complete per-layer
//! output set. This works because the workloads in this repository
//! derive each layer's input independently (layers are not chained —
//! see `NetworkExecutor::layer_input`), so layer execution order per
//! lane is free.
//!
//! The bitwise contract carries over unchanged from
//! [`PreparedPlan::run_lanes`]: every layer call is one batched
//! execution in which each lane reads only its own image under a fixed
//! accumulation order, so a lane's outputs are bitwise identical to a
//! solo run **no matter when it joined or who shared its batch** — the
//! property `crates/serve/tests/shard_props.rs` pins for arbitrary
//! admission schedules.

use crate::PreparedPlan;
use wino_tensor::Tensor4;

/// One layer boundary offered to the admission hook of
/// [`run_layers_admitting`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Boundary {
    /// The layer about to execute (`1..layer_count` — boundary 0 does
    /// not exist: a batch that has not started yet is a plain release,
    /// not a continuous admission).
    pub next_layer: usize,
    /// Lanes currently in flight (initial batch plus everyone admitted
    /// at earlier boundaries).
    pub lanes: usize,
}

/// Drives a stack of prepared layers over a growing lane set —
/// **continuous batching** as an execution-engine primitive.
///
/// * `plans` — the model's per-layer [`PreparedPlan`]s, execution order.
/// * `threads` — worker fan-out of every layer call.
/// * `initial` — the lanes of the released batch (at least one).
/// * `lane_input` — produces lane `l`'s input for layer `i`; called
///   once per (lane, layer).
/// * `admit` — called at every layer boundary `1..plans.len()` of the
///   main sweep (never during catch-up: a winding-down batch stops
///   admitting); each lane it returns joins from that boundary on.
///
/// Returns one `(lane, per-layer outputs)` pair per lane — the initial
/// lanes first in their given order, then admitted lanes in admission
/// order; outputs are indexed by layer `0..plans.len()` regardless of
/// the order the lane actually executed them in.
///
/// Every lane's outputs are bitwise identical to running that lane
/// alone through the same plans (see the module docs for why).
///
/// # Panics
///
/// Panics when `plans` or `initial` is empty, or when `lane_input`
/// returns a tensor that does not match a plan's prepared geometry.
pub fn run_layers_admitting<L>(
    plans: &[PreparedPlan],
    threads: usize,
    initial: Vec<L>,
    mut lane_input: impl FnMut(&L, usize) -> Tensor4<f32>,
    mut admit: impl FnMut(Boundary) -> Vec<L>,
) -> Vec<(L, Vec<Tensor4<f32>>)> {
    assert!(!plans.is_empty(), "no layers to execute");
    assert!(!initial.is_empty(), "no lanes in the released batch");
    let layer_count = plans.len();
    // (lane, join boundary): the initial batch joined at 0.
    let mut lanes: Vec<(L, usize)> = initial.into_iter().map(|l| (l, 0)).collect();
    let mut outputs: Vec<Vec<Option<Tensor4<f32>>>> =
        lanes.iter().map(|_| vec![None; layer_count]).collect();

    // Main sweep: layer by layer, admitting at each interior boundary.
    for layer in 0..layer_count {
        if layer > 0 {
            let joined = admit(Boundary { next_layer: layer, lanes: lanes.len() });
            // Engine-level join marker: the exec layer knows lane
            // counts, not request ids, so this is an id-less instant —
            // the serving layer emits the per-seq `Join` events.
            if !joined.is_empty() && wino_obs::is_enabled() {
                let label = format!("join@layer-{layer}:+{}", joined.len());
                wino_obs::record_interval(
                    "exec.continuous",
                    &label,
                    layer as u64,
                    wino_obs::epoch_elapsed(),
                    std::time::Duration::ZERO,
                );
            }
            for lane in joined {
                lanes.push((lane, layer));
                outputs.push(vec![None; layer_count]);
            }
        }
        let inputs: Vec<Tensor4<f32>> =
            lanes.iter().map(|(lane, _)| lane_input(lane, layer)).collect();
        for (i, out) in plans[layer].run_lanes(&inputs, threads).into_iter().enumerate() {
            outputs[i][layer] = Some(out);
        }
    }

    // Catch-up: lanes that joined at boundary k still owe layers 0..k.
    // Sweep front-to-back so late joiners stay batched together.
    let max_join = lanes.iter().map(|&(_, join)| join).max().unwrap_or(0);
    let catch_up_start = wino_obs::epoch_elapsed();
    for layer in 0..max_join {
        let pending: Vec<usize> = (0..lanes.len()).filter(|&i| lanes[i].1 > layer).collect();
        if pending.is_empty() {
            continue;
        }
        let inputs: Vec<Tensor4<f32>> =
            pending.iter().map(|&i| lane_input(&lanes[i].0, layer)).collect();
        for (&i, out) in pending.iter().zip(plans[layer].run_lanes(&inputs, threads)) {
            outputs[i][layer] = Some(out);
        }
    }
    if max_join > 0 && wino_obs::is_enabled() {
        // The whole catch-up sweep as one interval: how much of the
        // batch's tail went to repaying joiners' missed prefixes.
        let label = format!("catch-up:{max_join}-layers");
        wino_obs::record_interval(
            "exec.continuous",
            &label,
            max_join as u64,
            catch_up_start,
            wino_obs::epoch_elapsed().saturating_sub(catch_up_start),
        );
    }

    lanes
        .into_iter()
        .zip(outputs)
        .map(|((lane, _), outs)| {
            (lane, outs.into_iter().map(|o| o.expect("every layer executed")).collect())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EnginePlan, LayerPlan, Precision};
    use wino_core::{ConvShape, WinogradParams};
    use wino_tensor::{Shape4, SplitMix64, Tensor4};

    /// Two small layers (one Winograd, one strided spatial), prepared.
    fn plans() -> Vec<PreparedPlan> {
        let mut rng = SplitMix64::new(41);
        let mut kernels = |k: usize, c: usize| {
            Tensor4::from_fn(Shape4 { n: k, c, h: 3, w: 3 }, |_, _, _, _| {
                rng.uniform_f32(-0.5, 0.5)
            })
        };
        let a = LayerPlan {
            layer: "a".into(),
            shape: ConvShape::same_padded(8, 8, 2, 3, 3),
            engine: EnginePlan::Winograd(WinogradParams::new(2, 3).unwrap()),
        };
        let b = LayerPlan {
            layer: "b".into(),
            shape: ConvShape { h: 8, w: 8, c: 3, k: 2, r: 3, stride: 2, pad: 1 },
            engine: EnginePlan::Spatial,
        };
        let ka = kernels(3, 2);
        let kb = kernels(2, 3);
        vec![
            PreparedPlan::new(&a, Precision::Float, &ka).unwrap(),
            PreparedPlan::new(&b, Precision::Fixed { frac: 10 }, &kb).unwrap(),
        ]
    }

    fn input_for(lane: u64, layer: usize, plans: &[PreparedPlan]) -> Tensor4<f32> {
        let s = plans[layer].shape();
        let mut rng = SplitMix64::new(lane ^ ((layer as u64 + 1) << 32));
        Tensor4::from_fn(Shape4 { n: 1, c: s.c, h: s.h, w: s.w }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        })
    }

    fn solo(lane: u64, plans: &[PreparedPlan]) -> Vec<Tensor4<f32>> {
        (0..plans.len()).map(|i| plans[i].run(&input_for(lane, i, plans), 1)).collect()
    }

    #[test]
    fn run_lanes_matches_individual_runs_bitwise() {
        let plans = plans();
        for layer in 0..plans.len() {
            let lanes: Vec<Tensor4<f32>> = (0..3u64).map(|l| input_for(l, layer, &plans)).collect();
            let batched = plans[layer].run_lanes(&lanes, 2);
            for (lane, got) in lanes.iter().zip(&batched) {
                let alone = plans[layer].run(lane, 2);
                assert_eq!(got.as_slice(), alone.as_slice());
            }
        }
    }

    #[test]
    fn late_joiners_get_bitwise_solo_outputs() {
        let plans = plans();
        // Lane 7 joins at boundary 1 (before the second layer): it
        // executes layer 1 with the batch, then layer 0 in catch-up.
        let got = run_layers_admitting(
            &plans,
            2,
            vec![1u64, 2],
            |&lane, layer| input_for(lane, layer, &plans),
            |b| if b.next_layer == 1 { vec![7u64] } else { vec![] },
        );
        assert_eq!(got.len(), 3);
        assert_eq!(got[2].0, 7, "admitted lane rides last");
        for (lane, outs) in &got {
            let reference = solo(*lane, &plans);
            assert_eq!(outs.len(), plans.len());
            for (o, r) in outs.iter().zip(&reference) {
                assert_eq!(o.as_slice(), r.as_slice(), "lane {lane}");
            }
        }
    }

    #[test]
    fn no_admission_reduces_to_a_plain_batched_sweep() {
        let plans = plans();
        let got = run_layers_admitting(
            &plans,
            1,
            vec![4u64, 5, 6],
            |&lane, layer| input_for(lane, layer, &plans),
            |_| vec![],
        );
        for (lane, outs) in &got {
            for (o, r) in outs.iter().zip(&solo(*lane, &plans)) {
                assert_eq!(o.as_slice(), r.as_slice(), "lane {lane}");
            }
        }
    }

    #[test]
    fn admission_hook_sees_every_interior_boundary_once() {
        let plans = plans();
        let mut seen = Vec::new();
        let _ = run_layers_admitting(
            &plans,
            1,
            vec![0u64],
            |&lane, layer| input_for(lane, layer, &plans),
            |b| {
                seen.push((b.next_layer, b.lanes));
                vec![]
            },
        );
        assert_eq!(seen, vec![(1, 1)], "two layers have exactly one interior boundary");
    }

    #[test]
    #[should_panic(expected = "no lanes")]
    fn empty_initial_batch_panics() {
        let plans = plans();
        let _ =
            run_layers_admitting(&plans, 1, Vec::<u64>::new(), |_, _| unreachable!(), |_| vec![]);
    }
}
