//! The prepared FFT convolution backend: tile-wise overlap–save with a
//! real-input half-plane transform, precomputed kernel spectra, and the
//! transform-domain multiply expressed as the same coordinate-major
//! blocked GEMM shape the Winograd engine uses.
//!
//! ## Algorithm
//!
//! [`PreparedFft`] runs **overlap–save**: every `N×N` input window is
//! gathered at stride `L = N−r+1` (windows overlap by `r−1`), each
//! window is convolved circularly in the frequency domain against the
//! prepared kernel spectra, and the `L×L` *valid* region of each
//! circular result is copied to the output. Overlap–save is the
//! add-free dual of the overlap-and-add formulation: OaA splits the
//! input into disjoint blocks and **sums** overlapping partial outputs,
//! which would make output bits depend on the cross-tile accumulation
//! order; overlap–save overlaps the *inputs* instead, so every output
//! element is produced exactly once by exactly one tile and bitwise
//! thread-count-invariance needs no cross-item discipline at all.
//!
//! ## Three-phase pipeline, same shape as Winograd
//!
//! 1. **Pack** — one item per [`PANEL_TILES`]-tile panel: gather each
//!    tile's `N×N` window (zero-filled outside the padded input) and
//!    forward-transform it with the real-input rfft2 below, scattering
//!    the `N·(N/2+1)` half-plane bins into bin-major panels
//!    `u[(bin·C + c)·np + tp]` — each bin's `C × np` slice is the `B`
//!    operand of one GEMM, exactly like a Winograd coordinate.
//! 2. **Multiply** — one item per `(bin, panel)` pair: the complex
//!    product `M_bin = V_bin · U_bin` as **four real GEMMs** through
//!    [`gemm_packed_a`] (`Re·Re`, `Im·Im`, `Re·Im`, `Im·Re` against the
//!    pre-packed kernel-spectrum slabs) combined elementwise in fixed
//!    order: `M_re = RR − II`, `M_im = RI + IR`.
//! 3. **Inverse** — one item per `(image, tile-row)` pair: gather each
//!    tile's bins, inverse rfft2, and copy the valid `L×L` block (at
//!    circular-plane offset `r−1`) into the output rows.
//!
//! ## Real-input packing
//!
//! The forward transform packs two real rows into one complex FFT
//! (`z = a + i·b`, split via `A[v] = (Z[v] + conj(Z[n−v]))/2`,
//! `B[v] = (Z[v] − conj(Z[n−v]))/(2i)`) and keeps only the Hermitian
//! half-plane `v ∈ 0..=N/2` through the column pass — the packing the
//! `wino-baselines` module documents and `wino_core::fft_layer_mults`
//! accounts for. The inverse reverses both steps and applies the
//! `1/N²` scaling once.
//!
//! ## Precision
//!
//! Transform internals run in `f64` (matching the `wino-baselines`
//! reference) regardless of the datapath scalar `T`: tile windows are
//! widened via [`Scalar::to_f64`] on gather and narrowed via
//! [`Scalar::from_f64`] on the final valid-region copy. Every step is
//! sequential with a fixed order per tile, so outputs are bitwise
//! identical at any thread count. The f32 serving path is the intended
//! user; `Schedule` validation rejects FFT plans on quantized layers
//! (the widened datapath would bypass DSP-style saturation), though the
//! type itself stays generic so the backend layer has one shape.

use crate::gemm::{gemm_packed_a, pack_a, MR, PANEL_TILES};
use crate::layer::run_chunked;
use std::marker::PhantomData;
use wino_baselines::{Complex, FftPlan};
use wino_core::ConvShape;
use wino_obs::Span;
use wino_tensor::{Scalar, Shape4, Tensor4};

/// Half-plane bin count of a real-input `n×n` transform.
fn bin_count(n: usize) -> usize {
    n * (n / 2 + 1)
}

/// Forward real-input 2-D FFT of a row-major `n×n` plane: row pass with
/// two-rows-per-complex-FFT packing keeping columns `v ∈ 0..=n/2`, then
/// full complex column FFTs over the kept columns. Returns the
/// `n·(n/2+1)` half-plane, row-frequency-major: `bins[u·(n/2+1) + v]`.
fn rfft2_forward(plan: &FftPlan, real: &[f64], n: usize) -> Vec<Complex> {
    let half = n / 2 + 1;
    let mut rows = vec![Complex::default(); n * half];
    let mut z = vec![Complex::default(); n];
    for j in 0..n / 2 {
        let (a, b) = (&real[2 * j * n..(2 * j + 1) * n], &real[(2 * j + 1) * n..(2 * j + 2) * n]);
        for (x, slot) in z.iter_mut().enumerate() {
            *slot = Complex::new(a[x], b[x]);
        }
        plan.run(&mut z, false);
        for v in 0..half {
            let zv = z[v];
            let zn = z[(n - v) % n];
            rows[2 * j * half + v] = Complex::new((zv.re + zn.re) / 2.0, (zv.im - zn.im) / 2.0);
            rows[(2 * j + 1) * half + v] =
                Complex::new((zv.im + zn.im) / 2.0, (zn.re - zv.re) / 2.0);
        }
    }
    let mut out = vec![Complex::default(); n * half];
    let mut col = vec![Complex::default(); n];
    for v in 0..half {
        for (u, slot) in col.iter_mut().enumerate() {
            *slot = rows[u * half + v];
        }
        plan.run(&mut col, false);
        for (u, &value) in col.iter().enumerate() {
            out[u * half + v] = value;
        }
    }
    out
}

/// Inverse of [`rfft2_forward`] including the `1/n²` scaling: column
/// inverse FFTs over the kept columns, then row reconstruction — each
/// pair of row spectra is Hermitian-extended into one complex inverse
/// FFT whose real/imaginary parts are two real output rows.
fn rfft2_inverse(plan: &FftPlan, bins: &[Complex], n: usize, real_out: &mut [f64]) {
    let half = n / 2 + 1;
    let mut rows = vec![Complex::default(); n * half];
    let mut col = vec![Complex::default(); n];
    for v in 0..half {
        for (u, slot) in col.iter_mut().enumerate() {
            *slot = bins[u * half + v];
        }
        plan.run(&mut col, true);
        for (u, &value) in col.iter().enumerate() {
            rows[u * half + v] = value;
        }
    }
    let scale = 1.0 / (n * n) as f64;
    let mut z = vec![Complex::default(); n];
    for j in 0..n / 2 {
        let a = &rows[2 * j * half..2 * j * half + half];
        let b = &rows[(2 * j + 1) * half..(2 * j + 1) * half + half];
        for (v, slot) in z.iter_mut().enumerate() {
            *slot = if v < half {
                Complex::new(a[v].re - b[v].im, a[v].im + b[v].re)
            } else {
                // Hermitian extension: A[v] = conj(A[n−v]), same for B.
                let (ac, bc) = (a[n - v], b[n - v]);
                Complex::new(ac.re + bc.im, bc.re - ac.im)
            };
        }
        plan.run(&mut z, true);
        for (x, &value) in z.iter().enumerate() {
            real_out[2 * j * n + x] = value.re * scale;
            real_out[(2 * j + 1) * n + x] = value.im * scale;
        }
    }
}

/// An FFT convolution layer whose kernel spectra have already been
/// transformed and GEMM-packed — the frequency-domain analogue of
/// [`PreparedWinograd`](crate::PreparedWinograd), and the third
/// implementor of [`ConvBackend`](crate::ConvBackend).
///
/// Construction transforms every `(k, c)` kernel (spatially flipped so
/// the frequency product is a correlation) into its half-plane
/// spectrum and packs the per-bin `K×C` real and imaginary matrices
/// into the GEMM micro-kernel's `A` layout, exactly as
/// `PreparedWinograd::new` packs the `V`-bank. Execution is the
/// three-phase overlap–save pipeline in the module docs; see there for
/// the determinism argument.
#[derive(Debug, Clone)]
pub struct PreparedFft<T: Scalar> {
    plan: FftPlan,
    n: usize,
    r: usize,
    k: usize,
    c: usize,
    nbins: usize,
    /// Real parts of the per-bin kernel-spectrum matrices, bin-major:
    /// slab `bin` (of `v_slab` elements) is `pack_a` of `V_bin[k][c].re`.
    v_re: Vec<f64>,
    /// Imaginary parts, same layout as `v_re`.
    v_im: Vec<f64>,
    v_slab: usize,
    _scalar: PhantomData<T>,
}

impl<T: Scalar> PreparedFft<T> {
    /// Precomputes the kernel spectra for FFT size `n` and packs them
    /// for the GEMM micro-kernel, caching both for any number of later
    /// [`execute`](Self::execute) calls.
    ///
    /// # Panics
    ///
    /// Panics when `n` is not a power of two of at least 4, kernels are
    /// not square, or `n` is smaller than the kernel size.
    pub fn new(n: usize, kernels: &Tensor4<T>) -> PreparedFft<T> {
        assert!(n >= 4 && n.is_power_of_two(), "FFT size {n} must be a power of two >= 4");
        let ks = kernels.shape();
        assert_eq!(ks.h, ks.w, "kernels must be square");
        let r = ks.h;
        assert!(n >= r, "FFT size {n} smaller than kernel {r}");

        let plan = FftPlan::new(n);
        let nbins = bin_count(n);
        let (mut re_mats, mut im_mats) =
            (vec![0.0f64; nbins * ks.n * ks.c], vec![0.0f64; nbins * ks.n * ks.c]);
        {
            let _prep = Span::enter("exec.prepare", "kernel-spectra");
            let mut window = vec![0.0f64; n * n];
            for k in 0..ks.n {
                for c in 0..ks.c {
                    window.fill(0.0);
                    // Spatially flipped placement, so the circular
                    // product correlates (Eq. 1) instead of convolving.
                    for v in 0..r {
                        for u in 0..r {
                            window[(r - 1 - v) * n + (r - 1 - u)] = kernels.at(k, c, v, u).to_f64();
                        }
                    }
                    let spectrum = rfft2_forward(&plan, &window, n);
                    for (bin, &s) in spectrum.iter().enumerate() {
                        re_mats[(bin * ks.n + k) * ks.c + c] = s.re;
                        im_mats[(bin * ks.n + k) * ks.c + c] = s.im;
                    }
                }
            }
        }
        let v_slab = ks.n.div_ceil(MR).max(1) * ks.c * MR;
        let (mut v_re, mut v_im) =
            (Vec::with_capacity(nbins * v_slab), Vec::with_capacity(nbins * v_slab));
        {
            let _prep = Span::enter("exec.prepare", "gemm-pack");
            for bin in 0..nbins {
                let mat = &re_mats[bin * ks.n * ks.c..(bin + 1) * ks.n * ks.c];
                v_re.extend_from_slice(&pack_a(ks.n, ks.c, mat, ks.c));
                let mat = &im_mats[bin * ks.n * ks.c..(bin + 1) * ks.n * ks.c];
                v_im.extend_from_slice(&pack_a(ks.n, ks.c, mat, ks.c));
            }
        }
        PreparedFft {
            plan,
            n,
            r,
            k: ks.n,
            c: ks.c,
            nbins,
            v_re,
            v_im,
            v_slab,
            _scalar: PhantomData,
        }
    }

    /// The FFT size `N` the spectra were prepared for.
    pub fn fft_size(&self) -> usize {
        self.n
    }

    /// Kernel size `r` of the cached bank.
    pub fn kernel_size(&self) -> usize {
        self.r
    }

    /// Output kernel count `K` of the cached bank.
    pub fn kernel_count(&self) -> usize {
        self.k
    }

    /// Input channel count `C` of the cached bank.
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Runs the overlap–save convolution against the cached spectra —
    /// stride 1, symmetric zero padding `pad`, output bitwise identical
    /// at any thread count (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `input`'s channel count disagrees with the bank or the
    /// padded input is smaller than the kernel.
    pub fn execute(&self, input: &Tensor4<T>, pad: usize, threads: usize) -> Tensor4<T> {
        let is = input.shape();
        let (n, r) = (self.n, self.r);
        assert_eq!(is.c, self.c, "input and kernel channel counts must match");
        assert!(is.h + 2 * pad >= r && is.w + 2 * pad >= r, "input too small for kernel");

        let l = n - r + 1;
        let out_h = is.h + 2 * pad - r + 1;
        let out_w = is.w + 2 * pad - r + 1;
        let tiles_y = out_h.div_ceil(l);
        let tiles_x = out_w.div_ceil(l);
        let total_tiles = is.n * tiles_y * tiles_x;
        let mut output = Tensor4::zeros(Shape4 { n: is.n, c: self.k, h: out_h, w: out_w });
        if total_tiles == 0 {
            return output;
        }

        let panels = total_tiles.div_ceil(PANEL_TILES);
        let panel_len = |p: usize| PANEL_TILES.min(total_tiles - p * PANEL_TILES);
        let (nbins, c_in, k_out) = (self.nbins, self.c, self.k);
        let tiles_per_image = tiles_y * tiles_x;
        let plane_stride = is.h * is.w;
        let in_flat = input.as_slice();
        let pad = pad as isize;

        // Phase 1: gather + forward-transform tile panels, bin-major.
        let u_panels: Vec<(Vec<f64>, Vec<f64>)> = {
            let _phase = Span::enter("exec.phase", "pack");
            run_chunked(panels, threads, "pack", |p| {
                let np = panel_len(p);
                let coords: Vec<(usize, isize, isize)> = (0..np)
                    .map(|tp| {
                        let t = p * PANEL_TILES + tp;
                        let (img, rem) = (t / tiles_per_image, t % tiles_per_image);
                        let (ty, tx) = (rem / tiles_x, rem % tiles_x);
                        (img, (ty * l) as isize - pad, (tx * l) as isize - pad)
                    })
                    .collect();
                let mut u_re = vec![0.0f64; nbins * c_in * np];
                let mut u_im = vec![0.0f64; nbins * c_in * np];
                let mut window = vec![0.0f64; n * n];
                for c in 0..c_in {
                    for (tp, &(img, top, left)) in coords.iter().enumerate() {
                        let plane = &in_flat[(img * c_in + c) * plane_stride..][..plane_stride];
                        if top >= 0
                            && left >= 0
                            && top as usize + n <= is.h
                            && left as usize + n <= is.w
                        {
                            // Interior window: contiguous source rows.
                            let (t0, l0) = (top as usize, left as usize);
                            for row in 0..n {
                                for (col, slot) in
                                    window[row * n..row * n + n].iter_mut().enumerate()
                                {
                                    *slot = plane[(t0 + row) * is.w + l0 + col].to_f64();
                                }
                            }
                        } else {
                            for row in 0..n {
                                let rr = top + row as isize;
                                let row_ok = rr >= 0 && (rr as usize) < is.h;
                                for col in 0..n {
                                    let cc = left + col as isize;
                                    window[row * n + col] =
                                        if row_ok && cc >= 0 && (cc as usize) < is.w {
                                            plane[rr as usize * is.w + cc as usize].to_f64()
                                        } else {
                                            0.0
                                        };
                                }
                            }
                        }
                        let spectrum = rfft2_forward(&self.plan, &window, n);
                        for (bin, &s) in spectrum.iter().enumerate() {
                            u_re[(bin * c_in + c) * np + tp] = s.re;
                            u_im[(bin * c_in + c) * np + tp] = s.im;
                        }
                    }
                }
                (u_re, u_im)
            })
        };

        // Phase 2: per-(bin, panel) complex GEMMs — four real GEMMs
        // against the packed spectrum slabs, combined in fixed order.
        let m_chunks: Vec<(Vec<f64>, Vec<f64>)> = {
            let _phase = Span::enter("exec.phase", "multiply");
            run_chunked(nbins * panels, threads, "multiply", |item| {
                let (bin, p) = (item / panels, item % panels);
                let np = panel_len(p);
                let v_re = &self.v_re[bin * self.v_slab..(bin + 1) * self.v_slab];
                let v_im = &self.v_im[bin * self.v_slab..(bin + 1) * self.v_slab];
                let (u_re, u_im) = &u_panels[p];
                let u_re = &u_re[bin * c_in * np..(bin + 1) * c_in * np];
                let u_im = &u_im[bin * c_in * np..(bin + 1) * c_in * np];
                let mut rr = vec![0.0f64; k_out * np];
                let mut ii = vec![0.0f64; k_out * np];
                let mut ri = vec![0.0f64; k_out * np];
                let mut ir = vec![0.0f64; k_out * np];
                gemm_packed_a(k_out, np, c_in, v_re, u_re, np, &mut rr, np);
                gemm_packed_a(k_out, np, c_in, v_im, u_im, np, &mut ii, np);
                gemm_packed_a(k_out, np, c_in, v_re, u_im, np, &mut ri, np);
                gemm_packed_a(k_out, np, c_in, v_im, u_re, np, &mut ir, np);
                let m_re: Vec<f64> = rr.iter().zip(&ii).map(|(a, b)| a - b).collect();
                let m_im: Vec<f64> = ri.iter().zip(&ir).map(|(a, b)| a + b).collect();
                (m_re, m_im)
            })
        };
        drop(u_panels);

        // Phase 3: inverse transforms per (image, tile-row); the valid
        // L×L block of each circular plane lands at offset r−1.
        let blocks = {
            let _phase = Span::enter("exec.phase", "inverse");
            run_chunked(is.n * tiles_y, threads, "inverse", |item| {
                let (img, ty) = (item / tiles_y, item % tiles_y);
                let rows_here = l.min(out_h - ty * l);
                let row_base = (img * tiles_y + ty) * tiles_x;
                let mut bins = vec![Complex::default(); nbins];
                let mut plane = vec![0.0f64; n * n];
                let mut local = vec![T::zero(); k_out * rows_here * out_w];
                for k in 0..k_out {
                    for tx in 0..tiles_x {
                        let t = row_base + tx;
                        let (p, tp) = (t / PANEL_TILES, t % PANEL_TILES);
                        let np = panel_len(p);
                        let (m_re, m_im) = &m_chunks[/* bin-major items */ p];
                        // Gather this tile's bins across the per-(bin,
                        // panel) GEMM outputs.
                        let _ = (m_re, m_im);
                        for (bin, slot) in bins.iter_mut().enumerate() {
                            let (m_re, m_im) = &m_chunks[bin * panels + p];
                            *slot = Complex::new(m_re[k * np + tp], m_im[k * np + tp]);
                        }
                        rfft2_inverse(&self.plan, &bins, n, &mut plane);
                        let cols_here = l.min(out_w - tx * l);
                        for dy in 0..rows_here {
                            let src = (dy + r - 1) * n + (r - 1);
                            let dst = (k * rows_here + dy) * out_w + tx * l;
                            for dx in 0..cols_here {
                                local[dst + dx] = T::from_f64(plane[src + dx]);
                            }
                        }
                    }
                }
                local
            })
        };

        let out_flat = output.as_mut_slice();
        for (item, local) in blocks.iter().enumerate() {
            let (img, ty) = (item / tiles_y, item % tiles_y);
            let rows_here = l.min(out_h - ty * l);
            for k in 0..self.k {
                for dy in 0..rows_here {
                    let dst = ((img * self.k + k) * out_h + ty * l + dy) * out_w;
                    let src = (k * rows_here + dy) * out_w;
                    out_flat[dst..dst + out_w].copy_from_slice(&local[src..src + out_w]);
                }
            }
        }
        output
    }
}

/// Analytic absolute-error bound for comparing [`PreparedFft`] output
/// against the f32 spatial oracle — the FFT counterpart of
/// [`quant_error_bound`](crate::quant_error_bound), used by the
/// property tests as their tolerance.
///
/// With `|input| ≤ input_mag` and `|weights| ≤ weight_mag`, each output
/// accumulates `t = C·r²` products of magnitude at most
/// `input_mag·weight_mag`. The dominant term is the *oracle's* f32
/// sequential accumulation (≤ `t·ε₃₂` relative to the `t`-term sum)
/// plus the backend's single f32 rounding on output; the backend's own
/// f64 transform error (a few `ε₆₄·log₂N` per forward+inverse pass) is
/// ten orders smaller but included for honesty.
pub fn fft_error_bound(shape: &ConvShape, n: usize, input_mag: f64, weight_mag: f64) -> f64 {
    let terms = (shape.c * shape.r * shape.r) as f64;
    let sum_mag = terms * input_mag * weight_mag;
    let io = f32::EPSILON as f64 * sum_mag * (terms + 1.0);
    let transform = f64::EPSILON * sum_mag * 8.0 * (n as f64).log2();
    io + transform
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_baselines::spatial_convolve_strided;
    use wino_tensor::{ErrorStats, SplitMix64};

    fn random_pair(seed: u64, shape: Shape4, k: usize, r: usize) -> (Tensor4<f32>, Tensor4<f32>) {
        let mut rng = SplitMix64::new(seed);
        let input = Tensor4::from_fn(shape, |_, _, _, _| rng.uniform_f32(-1.0, 1.0));
        let kernels = Tensor4::from_fn(Shape4 { n: k, c: shape.c, h: r, w: r }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        (input, kernels)
    }

    #[test]
    fn rfft2_round_trips() {
        let n = 16;
        let mut rng = SplitMix64::new(3);
        let plane: Vec<f64> = (0..n * n).map(|_| rng.uniform_f32(-1.0, 1.0) as f64).collect();
        let plan = FftPlan::new(n);
        let bins = rfft2_forward(&plan, &plane, n);
        assert_eq!(bins.len(), bin_count(n));
        let mut back = vec![0.0f64; n * n];
        rfft2_inverse(&plan, &bins, n, &mut back);
        for (a, b) in plane.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn rfft2_matches_full_complex_transform() {
        // The half-plane is the Hermitian half of the full 2-D FFT.
        let n = 8;
        let mut rng = SplitMix64::new(4);
        let plane: Vec<f64> = (0..n * n).map(|_| rng.uniform_f32(-1.0, 1.0) as f64).collect();
        let plan = FftPlan::new(n);
        let bins = rfft2_forward(&plan, &plane, n);
        // Reference: rows then columns as full complex FFTs.
        let mut full: Vec<Complex> = plane.iter().map(|&x| Complex::new(x, 0.0)).collect();
        for row in 0..n {
            plan.run(&mut full[row * n..(row + 1) * n], false);
        }
        let mut col = vec![Complex::default(); n];
        for v in 0..n {
            for (u, slot) in col.iter_mut().enumerate() {
                *slot = full[u * n + v];
            }
            plan.run(&mut col, false);
            for (u, &value) in col.iter().enumerate() {
                full[u * n + v] = value;
            }
        }
        let half = n / 2 + 1;
        for u in 0..n {
            for v in 0..half {
                let got = bins[u * half + v];
                let want = full[u * n + v];
                assert!(
                    (got.re - want.re).abs() < 1e-12 && (got.im - want.im).abs() < 1e-12,
                    "bin ({u},{v}): {got:?} vs {want:?}"
                );
            }
        }
    }

    #[test]
    fn matches_spatial_oracle_within_analytic_bound() {
        for (seed, (h, w, c, k, r, pad, n)) in [
            (10, (9, 11, 3, 4, 3, 1, 8)),
            (11, (16, 16, 2, 3, 5, 2, 16)),
            (12, (12, 8, 1, 2, 7, 0, 16)),
            (13, (8, 8, 2, 2, 3, 4, 8)), // pad > r: windows fully outside
        ] {
            let (input, kernels) = random_pair(seed, Shape4 { n: 2, c, h, w }, k, r);
            let bank = PreparedFft::new(n, &kernels);
            let got = bank.execute(&input, pad, 2);
            let oracle = spatial_convolve_strided(&input, &kernels, pad, 1);
            assert_eq!(got.shape(), oracle.shape());
            let shape = ConvShape { h, w, c, k, r, stride: 1, pad };
            let tol = fft_error_bound(&shape, n, 1.0, 1.0);
            let stats = ErrorStats::between(got.as_slice(), oracle.as_slice());
            assert!(stats.within_abs(tol), "seed {seed}: {stats} vs tol {tol}");
        }
    }

    #[test]
    fn thread_count_never_changes_a_bit() {
        let (input, kernels) = random_pair(20, Shape4 { n: 2, c: 3, h: 13, w: 9 }, 4, 3);
        let bank = PreparedFft::new(8, &kernels);
        let one = bank.execute(&input, 1, 1);
        for threads in [2usize, 3, 5, 8] {
            let multi = bank.execute(&input, 1, threads);
            assert_eq!(one.as_slice(), multi.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn batch_is_free_and_prepared_state_is_reusable() {
        let (_, kernels) = random_pair(21, Shape4 { n: 1, c: 2, h: 10, w: 10 }, 3, 3);
        let bank = PreparedFft::new(16, &kernels);
        assert_eq!(
            (bank.fft_size(), bank.kernel_size(), bank.kernel_count(), bank.channels()),
            (16, 3, 3, 2)
        );
        let one = Tensor4::from_fn(Shape4 { n: 1, c: 2, h: 10, w: 10 }, |_, c, y, x| {
            (c + y * x) as f32 * 0.05
        });
        let three = Tensor4::from_fn(Shape4 { n: 3, c: 2, h: 10, w: 10 }, |_, c, y, x| {
            (c + y * x) as f32 * 0.05
        });
        let a = bank.execute(&one, 1, 2);
        let b = bank.execute(&three, 1, 2);
        let plane = a.as_slice().len();
        for img in 0..3 {
            assert_eq!(&b.as_slice()[img * plane..(img + 1) * plane], a.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_size_panics() {
        let kernels = Tensor4::<f32>::zeros(Shape4 { n: 1, c: 1, h: 3, w: 3 });
        let _ = PreparedFft::new(12, &kernels);
    }

    #[test]
    #[should_panic(expected = "smaller than kernel")]
    fn size_below_kernel_panics() {
        let kernels = Tensor4::<f32>::zeros(Shape4 { n: 1, c: 1, h: 7, w: 7 });
        let _ = PreparedFft::new(4, &kernels);
    }

    #[test]
    fn error_bound_is_small_but_nonzero() {
        let shape = ConvShape::same_padded(56, 56, 64, 64, 3);
        let tol = fft_error_bound(&shape, 16, 1.0, 1.0);
        assert!(tol > 0.0 && tol < 0.1, "bound should be meaningful: {tol}");
    }
}
