//! Whole-network execution: seeded weights, per-layer runs, timing
//! reports, and self-verification against the spatial oracle.

use crate::{ExecConfig, Precision, PreparedPlan, Schedule, ScheduleError};
use std::fmt;
use std::time::Instant;
use wino_core::{spatial_ops, TransformError, Workload};
use wino_obs::Span;
use wino_tensor::{ErrorStats, Shape4, SplitMix64, Tensor4};

/// One layer's outcome in a [`NetworkReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Layer name.
    pub layer: String,
    /// Engine description (`F(4x4, 3x3)` or `spatial`).
    pub engine: String,
    /// Wall-clock execution time in milliseconds.
    pub millis: f64,
    /// Per-phase breakdown of `millis`, in phase completion order:
    /// `("pack" | "multiply" | "inverse" | "spatial" | "quantize" |
    /// "dequantize", milliseconds)`. Collected from the engine's
    /// `"exec.phase"` spans on every run — no global tracing needed —
    /// via [`wino_obs::collect`]. The phases nest strictly inside the
    /// layer's wall-clock, so their sum is ≤ `millis`; on the Winograd
    /// engine the three pipeline phases cover ≥ 90% of it for
    /// non-trivial layers (pinned by the `obs_overhead` bench).
    pub phase_millis: Vec<(String, f64)>,
    /// Effective throughput in GFLOP/s (spatial-equivalent operations
    /// over wall time — the software analogue of the paper's GOPS).
    pub gflops: f64,
    /// Sum of all output elements — a cheap, thread-count-invariant
    /// fingerprint of the computation.
    pub checksum: f64,
}

/// Timed outcome of one whole-network run.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkReport {
    /// Workload name.
    pub network: String,
    /// Worker threads used.
    pub threads: usize,
    /// Per-layer outcomes in execution order.
    pub layers: Vec<LayerReport>,
}

impl NetworkReport {
    /// Total wall-clock milliseconds across layers.
    pub fn total_millis(&self) -> f64 {
        self.layers.iter().map(|l| l.millis).sum()
    }

    /// Whole-network effective GFLOP/s; `0.0` for an empty layer list
    /// (an empty network did zero work, not NaN work).
    pub fn effective_gflops(&self) -> f64 {
        let total = self.total_millis();
        if total == 0.0 {
            return 0.0;
        }
        let ops: f64 = self.layers.iter().map(|l| l.gflops * l.millis * 1e6).sum();
        ops / (total * 1e6)
    }
}

impl fmt::Display for NetworkReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {:.2} ms total, {:.2} effective GFLOP/s, {} threads",
            self.network,
            self.total_millis(),
            self.effective_gflops(),
            self.threads
        )?;
        for l in &self.layers {
            // The engine label (tile size and datapath) rides next to
            // the timing so phase breakdowns are attributable without
            // cross-referencing the schedule.
            write!(
                f,
                "  {:<12} {:<20} {:>9.3} ms {:>8.2} GFLOP/s",
                l.layer, l.engine, l.millis, l.gflops
            )?;
            if !l.phase_millis.is_empty() {
                let phases = l
                    .phase_millis
                    .iter()
                    .map(|(name, ms)| format!("{name} {ms:.3}"))
                    .collect::<Vec<_>>()
                    .join(" | ");
                write!(f, "  [{phases}]")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A layer whose execution diverged from the spatial oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// Offending layer name.
    pub layer: String,
    /// Maximum absolute deviation observed.
    pub max_abs: f64,
    /// The tolerance that was exceeded.
    pub tolerance: f64,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "layer '{}' deviates from the spatial oracle by {:.3e} (tolerance {:.3e})",
            self.layer, self.max_abs, self.tolerance
        )
    }
}

impl std::error::Error for VerifyError {}

/// Executes a whole workload under a validated [`Schedule`], with
/// deterministic seeded weights and synthetic inputs.
///
/// Construction validates the schedule against the workload,
/// pre-generates one kernel bank per layer (seeded `SplitMix64`, so two
/// executors built the same way are identical), and **prepares** every
/// layer: the Winograd kernel-bank transform (and, for fixed-point
/// layers, the kernel quantization) runs once here, so repeated
/// execution — [`run`](Self::run) loops, serving traffic — skips it
/// entirely while producing bitwise-identical output (see
/// [`PreparedPlan`]). [`run`](Self::run) executes and times every
/// layer; [`verify`](Self::verify) replays the network against
/// `wino_baselines`' spatial oracle.
#[derive(Debug, Clone)]
pub struct NetworkExecutor {
    workload: Workload,
    schedule: Schedule,
    config: ExecConfig,
    seed: u64,
    kernels: Vec<Tensor4<f32>>,
    prepared: Vec<PreparedPlan>,
}

impl NetworkExecutor {
    /// Builds an executor with the default weight seed.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] when `schedule` does not line up with
    /// `workload`.
    pub fn new(
        workload: Workload,
        schedule: Schedule,
        config: ExecConfig,
    ) -> Result<NetworkExecutor, ScheduleError> {
        NetworkExecutor::with_seed(workload, schedule, config, 0x5EED_0001)
    }

    /// Builds an executor whose weights and inputs derive from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] when `schedule` does not line up with
    /// `workload`.
    pub fn with_seed(
        workload: Workload,
        schedule: Schedule,
        config: ExecConfig,
        seed: u64,
    ) -> Result<NetworkExecutor, ScheduleError> {
        schedule.validate(&workload)?;
        let kernels: Vec<Tensor4<f32>> = workload
            .layers()
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let s = l.shape;
                // He-style scale keeps activations O(1) at any depth.
                let scale = (2.0 / (s.c * s.r * s.r) as f32).sqrt();
                let mut rng = SplitMix64::new(seed ^ ((i as u64 + 1) << 32));
                Tensor4::from_fn(Shape4 { n: s.k, c: s.c, h: s.r, w: s.r }, |_, _, _, _| {
                    rng.uniform_f32(-scale, scale)
                })
            })
            .collect();
        let prepared = schedule
            .plans()
            .iter()
            .enumerate()
            .map(|(i, plan)| {
                PreparedPlan::new(plan, schedule.precision(i), &kernels[i])
                    .expect("validated plan prepares")
            })
            .collect();
        Ok(NetworkExecutor { workload, schedule, config, seed, kernels, prepared })
    }

    /// The workload being executed.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The validated schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The engine configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Clamps the per-run worker fan-out to at most `budget` threads
    /// (floored at 1), leaving smaller configurations untouched.
    ///
    /// This is the oversubscription valve for hosts that run several
    /// executors concurrently — the serving worker pool divides the
    /// machine between its workers and clamps each registered model's
    /// executor to its share, so `workers × exec threads` can never
    /// exceed the hardware. Clamping only changes how many scoped
    /// workers the deterministic chunk scheduler fans across, and
    /// outputs are bitwise thread-count-invariant, so results are
    /// unaffected.
    pub fn clamp_threads(&mut self, budget: usize) {
        self.config.threads = self.config.threads.min(budget.max(1));
    }

    /// The seeded kernel bank of layer `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn kernels(&self, index: usize) -> &Tensor4<f32> {
        &self.kernels[index]
    }

    /// The deterministic synthetic input feature map of layer `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn layer_input(&self, index: usize) -> Tensor4<f32> {
        let s = self.workload.layers()[index].shape;
        let mut rng = SplitMix64::new(self.seed ^ (0xD5EA_u64 + index as u64));
        Tensor4::from_fn(
            Shape4 { n: self.workload.batch(), c: s.c, h: s.h, w: s.w },
            |_, _, _, _| rng.uniform_f32(-1.0, 1.0),
        )
    }

    /// Executes layer `index` on `input` with the layer's seeded
    /// kernels, in the arithmetic the schedule's
    /// [`QuantConfig`](crate::QuantConfig) assigns: `f32` layers run the
    /// float kernels directly; fixed-point layers quantize the input,
    /// execute in saturating `Fixed<FRAC>`, and dequantize the result —
    /// so the returned tensor is always `f32` and directly comparable
    /// against the float oracle. Dispatch goes through the layer's
    /// cached [`PreparedPlan`], so the kernel-bank transform (and
    /// kernel quantization) was already paid at construction; `input`'s
    /// batch dimension is free, which is what the serving subsystem's
    /// dynamic batching relies on.
    ///
    /// # Errors
    ///
    /// Never fails — transform generation already succeeded at
    /// construction. The `Result` is kept for API stability.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range or `input` does not match the
    /// layer's declared geometry.
    pub fn execute_layer(
        &self,
        index: usize,
        input: &Tensor4<f32>,
    ) -> Result<Tensor4<f32>, TransformError> {
        Ok(self.prepared[index].run(input, self.config.threads))
    }

    /// The cached [`PreparedPlan`] of layer `index` — the transformed
    /// kernel bank the executor (and the serving subsystem) reuses on
    /// every run.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn prepared(&self, index: usize) -> &PreparedPlan {
        &self.prepared[index]
    }

    /// Human-readable engine description of layer `index` (engine plus
    /// datapath for quantized layers, e.g. `F(2x2, 3x3) Q22.10`).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn engine_label(&self, index: usize) -> String {
        let engine = self.schedule.plans()[index].engine.to_string();
        match self.schedule.precision(index) {
            Precision::Float => engine,
            quantized => format!("{engine} {quantized}"),
        }
    }

    /// Runs and times every layer on its deterministic synthetic input.
    ///
    /// Layers execute on their *declared* geometries (real networks
    /// interleave pooling between conv layers, which workloads do not
    /// model, so outputs are not chained).
    ///
    /// # Panics
    ///
    /// Panics if a validated Winograd plan fails transform generation
    /// (impossible for parameters accepted by `WinogradParams::new`).
    pub fn run(&self) -> NetworkReport {
        let layers = self
            .workload
            .layers()
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let input = self.layer_input(i);
                let start = Instant::now();
                // Collect the engine's "exec.phase" spans for this run
                // (thread-local, independent of global tracing) so the
                // report carries a per-phase breakdown; the layer span
                // groups them for any active global recorder too.
                let (output, spans) = wino_obs::collect(|| {
                    let _layer = Span::enter("exec.layer", &l.name);
                    self.execute_layer(i, &input).expect("validated plan executes")
                });
                let secs = start.elapsed().as_secs_f64().max(1e-9);
                let mut phase_millis: Vec<(String, f64)> = Vec::new();
                for span in &spans {
                    if span.category != "exec.phase" {
                        continue;
                    }
                    let ms = span.duration.as_secs_f64() * 1e3;
                    match phase_millis.iter_mut().find(|(name, _)| *name == span.label) {
                        Some((_, total)) => *total += ms,
                        None => phase_millis.push((span.label.clone(), ms)),
                    }
                }
                let ops = spatial_ops(self.workload.batch(), &l.shape) as f64;
                LayerReport {
                    layer: l.name.clone(),
                    engine: self.engine_label(i),
                    millis: secs * 1e3,
                    phase_millis,
                    gflops: ops / secs / 1e9,
                    checksum: output.as_slice().iter().map(|&x| x as f64).sum(),
                }
            })
            .collect();
        NetworkReport {
            network: self.workload.name().to_owned(),
            threads: self.config.threads,
            layers,
        }
    }

    /// Replays every layer against the spatial oracle
    /// (`wino_baselines::spatial_convolve_strided`) and returns the
    /// worst absolute deviation seen across the network.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] for the first layer deviating by more
    /// than `tolerance`.
    pub fn verify(&self, tolerance: f64) -> Result<f64, VerifyError> {
        let mut worst = 0.0f64;
        for (i, l) in self.workload.layers().iter().enumerate() {
            let input = self.layer_input(i);
            let got = self.execute_layer(i, &input).expect("validated plan executes");
            let oracle = wino_baselines::spatial_convolve_strided(
                &input,
                &self.kernels[i],
                l.shape.pad,
                l.shape.stride,
            );
            let stats = ErrorStats::between(got.as_slice(), oracle.as_slice());
            let max_abs = stats.max_abs;
            if max_abs > tolerance {
                return Err(VerifyError { layer: l.name.clone(), max_abs, tolerance });
            }
            worst = worst.max(max_abs);
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schedule;
    use wino_core::ConvShape;
    use wino_models::tiny_cnn;

    fn toy() -> Workload {
        let mut wl = Workload::new("toy", 2);
        wl.push("a", "G1", ConvShape::same_padded(8, 9, 2, 3, 3));
        wl.push("b", "G1", ConvShape { h: 9, w: 9, c: 3, k: 2, r: 3, stride: 2, pad: 1 });
        wl
    }

    fn exec(m: usize, threads: usize) -> NetworkExecutor {
        let wl = toy();
        let schedule = Schedule::homogeneous(&wl, m).unwrap();
        NetworkExecutor::new(wl, schedule, ExecConfig::with_threads(threads)).unwrap()
    }

    #[test]
    fn run_reports_every_layer_with_positive_rates() {
        let report = exec(2, 2).run();
        assert_eq!(report.layers.len(), 2);
        assert_eq!(report.layers[0].engine, "F(2x2, 3x3)");
        assert_eq!(report.layers[1].engine, "spatial");
        assert!(report.total_millis() > 0.0);
        assert!(report.effective_gflops() > 0.0);
        let text = report.to_string();
        assert!(text.contains("toy") && text.contains("spatial"));
    }

    #[test]
    fn verify_passes_within_fp32_tolerance() {
        let worst = exec(4, 2).verify(1e-4).expect("matches oracle");
        assert!(worst < 1e-4);
    }

    #[test]
    fn checksums_are_thread_count_invariant() {
        let one = exec(4, 1).run();
        let many = exec(4, 4).run();
        for (a, b) in one.layers.iter().zip(&many.layers) {
            assert_eq!(a.checksum, b.checksum, "{}", a.layer);
        }
    }

    #[test]
    fn same_seed_same_weights_different_seed_different() {
        let wl = toy();
        let s = Schedule::homogeneous(&wl, 2).unwrap();
        let a = NetworkExecutor::with_seed(wl.clone(), s.clone(), ExecConfig::with_threads(1), 7)
            .unwrap();
        let b = NetworkExecutor::with_seed(wl.clone(), s.clone(), ExecConfig::with_threads(1), 7)
            .unwrap();
        let c = NetworkExecutor::with_seed(wl, s, ExecConfig::with_threads(1), 8).unwrap();
        assert_eq!(a.kernels(0).as_slice(), b.kernels(0).as_slice());
        assert_ne!(a.kernels(0).as_slice(), c.kernels(0).as_slice());
    }

    #[test]
    fn tiny_cnn_executes_and_verifies() {
        let wl = tiny_cnn(1);
        let schedule = Schedule::homogeneous(&wl, 3).unwrap();
        let exec = NetworkExecutor::new(wl, schedule, ExecConfig::with_threads(2)).unwrap();
        let worst = exec.verify(1e-3).expect("tiny cnn matches oracle");
        assert!(worst < 1e-3);
    }

    #[test]
    fn mismatched_schedule_is_rejected() {
        let wl = toy();
        let schedule = Schedule::homogeneous(&tiny_cnn(1), 2).unwrap();
        assert!(NetworkExecutor::new(wl, schedule, ExecConfig::default()).is_err());
    }

    #[test]
    fn verify_error_display() {
        let e = VerifyError { layer: "conv1".into(), max_abs: 0.5, tolerance: 1e-4 };
        assert!(e.to_string().contains("conv1"));
    }

    #[test]
    fn empty_report_has_zero_gflops_not_nan() {
        let report = NetworkReport { network: "empty".into(), threads: 1, layers: Vec::new() };
        assert_eq!(report.total_millis(), 0.0);
        assert_eq!(report.effective_gflops(), 0.0);
        assert!(!report.effective_gflops().is_nan());
    }

    #[test]
    fn run_collects_per_phase_breakdowns() {
        let report = exec(2, 2).run();
        // The Winograd layer reports the three pipeline phases, whose
        // times nest inside (so sum to at most) the layer wall-clock.
        let wino = &report.layers[0];
        let phases: Vec<&str> = wino.phase_millis.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(phases, ["pack", "multiply", "inverse"]);
        let phase_sum: f64 = wino.phase_millis.iter().map(|(_, ms)| ms).sum();
        assert!(phase_sum > 0.0 && phase_sum <= wino.millis, "{phase_sum} vs {}", wino.millis);
        // The strided layer runs the spatial engine as one phase.
        let spat = &report.layers[1];
        assert_eq!(spat.phase_millis.len(), 1);
        assert_eq!(spat.phase_millis[0].0, "spatial");
    }

    #[test]
    fn display_attributes_engine_and_phases_per_layer() {
        let wl = toy();
        let schedule = Schedule::homogeneous(&wl, 2)
            .unwrap()
            .with_quant(
                crate::QuantConfig::per_layer(vec![
                    crate::Precision::Fixed { frac: 10 },
                    crate::Precision::Float,
                ])
                .unwrap(),
            )
            .unwrap();
        let exec = NetworkExecutor::new(wl, schedule, ExecConfig::with_threads(1)).unwrap();
        let text = exec.run().to_string();
        // Engine labels (tile size and datapath) ride next to the
        // timings, and quantized layers report their conversion phases.
        assert!(text.contains("F(2x2, 3x3) Q22.10"), "{text}");
        assert!(text.contains("spatial"), "{text}");
        assert!(text.contains("[quantize") && text.contains("dequantize"), "{text}");
        assert!(text.contains("pack") && text.contains("multiply"), "{text}");
    }

    #[test]
    fn prepared_layers_match_one_shot_execution_bitwise() {
        // The executor's cached kernel banks must change nothing: every
        // layer (float and quantized, Winograd and spatial) produces
        // output bitwise identical to the unprepared per-call path.
        let wl = toy();
        let schedule = Schedule::homogeneous(&wl, 2)
            .unwrap()
            .with_quant(
                crate::QuantConfig::per_layer(vec![
                    crate::Precision::Float,
                    crate::Precision::Fixed { frac: 10 },
                ])
                .unwrap(),
            )
            .unwrap();
        let exec = NetworkExecutor::new(wl, schedule.clone(), ExecConfig::with_threads(2)).unwrap();
        for i in 0..schedule.len() {
            let input = exec.layer_input(i);
            let prepared = exec.execute_layer(i, &input).unwrap();
            let plan = &schedule.plans()[i];
            let one_shot = match schedule.precision(i) {
                crate::Precision::Float => {
                    crate::execute_plan(plan, &input, exec.kernels(i), exec.config()).unwrap()
                }
                crate::Precision::Fixed { frac } => crate::execute_plan_quantized(
                    plan,
                    &input,
                    exec.kernels(i),
                    exec.config(),
                    frac,
                )
                .unwrap(),
            };
            assert_eq!(prepared.as_slice(), one_shot.as_slice(), "layer {i}");
        }
    }
}
