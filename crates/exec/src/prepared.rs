//! Reusable per-layer execution closures with pre-transformed kernel
//! banks.
//!
//! [`execute_plan`](crate::execute_plan) regenerates the Winograd
//! transform set and re-transforms the whole kernel bank on every call
//! — the right trade for a one-shot run, pure overhead for anything
//! that executes the same layer repeatedly (an executor timing loop, or
//! the serving subsystem pushing thousands of requests through one
//! model). A [`PreparedPlan`] pays that cost once at construction by
//! lowering the engine choice to a prepared
//! [`ConvBackend`](crate::ConvBackend):
//!
//! * Winograd layers cache a [`PreparedWinograd`] bank (float) or a
//!   monomorphized `PreparedWinograd<Fixed<FRAC>>` plus the quantized
//!   kernel bank (fixed point) — the bank is both transformed and
//!   pre-packed into the GEMM micro-kernel's operand layout
//!   ([`crate::gemm::pack_a`]), so every later run enters the packed
//!   multiply with zero per-call packing cost for the kernel side;
//! * FFT layers cache a [`PreparedFft`](crate::PreparedFft) bank — the
//!   kernel spectra, transformed and GEMM-packed exactly like the
//!   Winograd `V`-bank (float only; `Schedule` validation rejects
//!   fixed-point FFT layers and a hand-built pairing panics here);
//! * spatial layers cache the (possibly quantized) kernel tensor in a
//!   [`PreparedSpatial`](crate::PreparedSpatial) — there is no
//!   transform to hoist, so the win there is only skipping the
//!   per-call quantization of the kernels.
//!
//! Because every engine implements the same backend contract, the
//! engine dispatch here is a single [`prepare_backend`] call per
//! datapath instead of an engine × precision match — adding a backend
//! touches one arm, not four.
//!
//! The closure is type-erased behind `Arc<dyn Fn … + Send + Sync>`, so
//! a prepared plan is cheap to clone and can be shared across serving
//! worker threads. Running a prepared plan is **bitwise identical** to
//! the corresponding one-shot [`execute_plan`] /
//! [`execute_plan_quantized`](crate::execute_plan_quantized) call — a
//! property the tests pin — because preparation reorders no arithmetic;
//! it only moves the bank transform out of the loop.

use crate::backend::{ConvBackend, PreparedSpatial};
use crate::fft::PreparedFft;
use crate::layer::PreparedWinograd;
use crate::quant::with_fixed;
use crate::{EnginePlan, LayerPlan, Precision, SUPPORTED_FRAC};
use std::fmt;
use std::sync::Arc;
use wino_core::{ConvShape, TransformError};
use wino_obs::Span;
use wino_tensor::{Fixed, Scalar, Tensor4};

/// Lowers one engine plan to its prepared backend over any scalar
/// datapath — the single place engine selection happens.
///
/// # Errors
///
/// Propagates [`TransformError`] from Winograd transform generation.
///
/// # Panics
///
/// Panics when a hand-built plan pairs a transform-domain engine with a
/// strided shape (`Schedule` lowering never produces one).
fn prepare_backend<T: Scalar>(
    plan: &LayerPlan,
    kernels: &Tensor4<T>,
) -> Result<Arc<dyn ConvBackend<T>>, TransformError> {
    let s = plan.shape;
    Ok(match plan.engine {
        EnginePlan::Winograd(params) => {
            assert_eq!(s.stride, 1, "Winograd plan '{}' requires unit stride", plan.layer);
            Arc::new(PreparedWinograd::new(params, kernels)?)
        }
        EnginePlan::Fft { n } => {
            assert_eq!(s.stride, 1, "FFT plan '{}' requires unit stride", plan.layer);
            Arc::new(PreparedFft::new(n, kernels))
        }
        EnginePlan::Spatial => Arc::new(PreparedSpatial::new(kernels.clone(), s.stride)),
    })
}

type Runner = dyn Fn(&Tensor4<f32>, usize) -> Tensor4<f32> + Send + Sync;

/// One layer's ready-to-run execution closure: engine chosen, kernel
/// bank transformed (and quantized, for fixed-point layers), datapath
/// monomorphized. `Send + Sync + Clone`, so worker pools share it.
#[derive(Clone)]
pub struct PreparedPlan {
    label: String,
    shape: ConvShape,
    runner: Arc<Runner>,
}

impl fmt::Debug for PreparedPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreparedPlan")
            .field("label", &self.label)
            .field("shape", &self.shape)
            .finish_non_exhaustive()
    }
}

impl PreparedPlan {
    /// Prepares `plan` for repeated execution in the arithmetic named
    /// by `precision`, hoisting the kernel-bank transform (and the
    /// kernel quantization) out of the per-run path.
    ///
    /// # Errors
    ///
    /// Propagates [`TransformError`] from Winograd transform
    /// generation.
    ///
    /// # Panics
    ///
    /// Panics when `kernels` does not match `plan.shape`, when a
    /// hand-built plan pairs a Winograd engine with a strided shape, or
    /// when a fixed-point `precision` names an unsupported `FRAC`
    /// (a validated [`QuantConfig`](crate::QuantConfig) never does).
    pub fn new(
        plan: &LayerPlan,
        precision: Precision,
        kernels: &Tensor4<f32>,
    ) -> Result<PreparedPlan, TransformError> {
        let s = plan.shape;
        let ks = kernels.shape();
        assert_eq!(
            (ks.n, ks.c, ks.h, ks.w),
            (s.k, s.c, s.r, s.r),
            "kernels do not match plan '{}'",
            plan.layer
        );
        let label = match precision {
            Precision::Float => plan.engine.to_string(),
            quantized => format!("{} {quantized}", plan.engine),
        };
        let runner: Arc<Runner> = match precision {
            Precision::Float => {
                let backend = prepare_backend::<f32>(plan, kernels)?;
                let pad = s.pad;
                Arc::new(move |input, threads| backend.execute(input, pad, threads))
            }
            Precision::Fixed { frac } => {
                assert!(
                    !matches!(plan.engine, EnginePlan::Fft { .. }),
                    "FFT plan '{}' cannot run fixed-point arithmetic",
                    plan.layer
                );
                let pad = s.pad;
                with_fixed!(frac, F => {
                    let backend = prepare_backend::<F>(plan, &kernels.map(F::from_f32))?;
                    Arc::new(move |input: &Tensor4<f32>, threads: usize| {
                        let q = {
                            let _phase = Span::enter("exec.phase", "quantize");
                            input.map(F::from_f32)
                        };
                        let out = backend.execute(&q, pad, threads);
                        let _phase = Span::enter("exec.phase", "dequantize");
                        out.map(|q| q.to_f32())
                    })
                })
            }
        };
        Ok(PreparedPlan { label, shape: s, runner })
    }

    /// Engine plus datapath, e.g. `F(4x4, 3x3)` or `spatial Q24.8` —
    /// the same format [`NetworkExecutor::engine_label`] reports.
    ///
    /// [`NetworkExecutor::engine_label`]: crate::NetworkExecutor::engine_label
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The layer geometry this plan was prepared for.
    pub fn shape(&self) -> ConvShape {
        self.shape
    }

    /// Executes the prepared layer on `input` (batch is free; channel
    /// and spatial extents must match the prepared geometry) across
    /// `threads` workers. Bitwise identical to the one-shot
    /// [`execute_plan`](crate::execute_plan) /
    /// [`execute_plan_quantized`](crate::execute_plan_quantized) on the
    /// same plan, kernels and precision.
    ///
    /// # Panics
    ///
    /// Panics when `input` does not match the prepared geometry.
    pub fn run(&self, input: &Tensor4<f32>, threads: usize) -> Tensor4<f32> {
        let is = input.shape();
        let s = self.shape;
        assert_eq!(
            (is.c, is.h, is.w),
            (s.c, s.h, s.w),
            "input does not match prepared layer ({})",
            self.label
        );
        (self.runner)(input, threads)
    }

    /// Executes the prepared layer on a set of independent single-image
    /// *lanes*: the batch-1 tensors are stacked into one `(L, C, H, W)`
    /// batch, executed through the cached bank in a single call, and the
    /// output is split back per lane.
    ///
    /// Because every engine work item reads exactly one image with a
    /// fixed accumulation order, each lane's output is **bitwise
    /// identical** to [`run`](Self::run) on that lane alone — the
    /// primitive continuous batching rests on: lanes may join or leave
    /// between layer calls without perturbing anyone's bits.
    ///
    /// # Panics
    ///
    /// Panics when `lanes` is empty, or when any lane is not a batch-1
    /// tensor of the prepared geometry.
    pub fn run_lanes(&self, lanes: &[Tensor4<f32>], threads: usize) -> Vec<Tensor4<f32>> {
        assert!(!lanes.is_empty(), "no lanes to execute ({})", self.label);
        let s = self.shape;
        let plane = s.c * s.h * s.w;
        let mut stacked =
            Tensor4::zeros(wino_tensor::Shape4 { n: lanes.len(), c: s.c, h: s.h, w: s.w });
        for (i, lane) in lanes.iter().enumerate() {
            let ls = lane.shape();
            assert_eq!(
                (ls.n, ls.c, ls.h, ls.w),
                (1, s.c, s.h, s.w),
                "lane {i} does not match prepared layer ({})",
                self.label
            );
            stacked.as_mut_slice()[i * plane..(i + 1) * plane].copy_from_slice(lane.as_slice());
        }
        let out = (self.runner)(&stacked, threads);
        let os = out.shape();
        let out_plane = os.c * os.h * os.w;
        (0..lanes.len())
            .map(|i| {
                let mut img =
                    Tensor4::zeros(wino_tensor::Shape4 { n: 1, c: os.c, h: os.h, w: os.w });
                img.as_mut_slice()
                    .copy_from_slice(&out.as_slice()[i * out_plane..(i + 1) * out_plane]);
                img
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute_plan, execute_plan_quantized, ExecConfig};
    use wino_core::WinogradParams;
    use wino_tensor::{Shape4, SplitMix64};

    fn fixture(stride: usize) -> (LayerPlan, LayerPlan, Tensor4<f32>, Tensor4<f32>) {
        let shape = ConvShape { h: 9, w: 8, c: 3, k: 4, r: 3, stride, pad: 1 };
        let mut rng = SplitMix64::new(77);
        let input = Tensor4::from_fn(Shape4 { n: 2, c: 3, h: 9, w: 8 }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let kernels = Tensor4::from_fn(Shape4 { n: 4, c: 3, h: 3, w: 3 }, |_, _, _, _| {
            rng.uniform_f32(-0.5, 0.5)
        });
        let wino = LayerPlan {
            layer: "l".into(),
            shape,
            engine: EnginePlan::Winograd(WinogradParams::new(2, 3).unwrap()),
        };
        let spat = LayerPlan { layer: "l".into(), shape, engine: EnginePlan::Spatial };
        (wino, spat, input, kernels)
    }

    #[test]
    fn prepared_float_is_bitwise_the_one_shot_path() {
        let (wino, spat, input, kernels) = fixture(1);
        let cfg = ExecConfig::with_threads(3);
        for plan in [&wino, &spat] {
            let prepared = PreparedPlan::new(plan, Precision::Float, &kernels).unwrap();
            let one_shot = execute_plan(plan, &input, &kernels, &cfg).unwrap();
            // Repeated runs reuse the cached bank and stay identical.
            for _ in 0..2 {
                let got = prepared.run(&input, cfg.threads);
                assert_eq!(got.as_slice(), one_shot.as_slice(), "{}", prepared.label());
            }
        }
    }

    #[test]
    fn prepared_quantized_is_bitwise_the_one_shot_path() {
        let (wino, spat, input, kernels) = fixture(1);
        let cfg = ExecConfig::with_threads(2);
        for plan in [&wino, &spat] {
            let prepared =
                PreparedPlan::new(plan, Precision::Fixed { frac: 10 }, &kernels).unwrap();
            let one_shot = execute_plan_quantized(plan, &input, &kernels, &cfg, 10).unwrap();
            let got = prepared.run(&input, cfg.threads);
            assert_eq!(got.as_slice(), one_shot.as_slice(), "{}", prepared.label());
            assert!(prepared.label().contains("Q22.10"));
        }
    }

    #[test]
    fn batch_is_free_at_run_time() {
        let (wino, _, _, kernels) = fixture(1);
        let prepared = PreparedPlan::new(&wino, Precision::Float, &kernels).unwrap();
        let one = Tensor4::from_fn(Shape4 { n: 1, c: 3, h: 9, w: 8 }, |_, c, h, w| {
            (c + h + w) as f32 * 0.1
        });
        let three = Tensor4::from_fn(Shape4 { n: 3, c: 3, h: 9, w: 8 }, |_, c, h, w| {
            (c + h + w) as f32 * 0.1
        });
        let a = prepared.run(&one, 2);
        let b = prepared.run(&three, 2);
        // Every image of the batched run equals the batch-1 run bitwise.
        let plane = a.as_slice().len();
        for img in 0..3 {
            assert_eq!(&b.as_slice()[img * plane..(img + 1) * plane], a.as_slice());
        }
    }

    #[test]
    fn cached_bank_beats_retransforming_every_call() {
        // The point of preparation: repeated runs skip exact-rational
        // transform generation and the whole-bank kernel transform.
        // On a small layer those dominate, so the margin is enormous —
        // the assertion only requires the cached path to win at all,
        // which holds on any scheduler-noisy CI box.
        let (wino, _, input, kernels) = fixture(1);
        let cfg = ExecConfig::with_threads(1);
        let reps = 5;
        let prepared = PreparedPlan::new(&wino, Precision::Float, &kernels).unwrap();
        let start = std::time::Instant::now();
        for _ in 0..reps {
            let _ = prepared.run(&input, cfg.threads);
        }
        let cached = start.elapsed();
        let start = std::time::Instant::now();
        for _ in 0..reps {
            let _ = execute_plan(&wino, &input, &kernels, &cfg).unwrap();
        }
        let retransform = start.elapsed();
        assert!(
            cached < retransform,
            "cached {cached:?} should beat re-transforming {retransform:?}"
        );
    }

    #[test]
    fn debug_and_shape_are_exposed() {
        let (wino, _, _, kernels) = fixture(1);
        let prepared = PreparedPlan::new(&wino, Precision::Float, &kernels).unwrap();
        assert!(format!("{prepared:?}").contains("F(2x2, 3x3)"));
        assert_eq!(prepared.shape().k, 4);
    }

    #[test]
    fn prepared_fft_is_bitwise_the_one_shot_path() {
        let (wino, _, input, kernels) = fixture(1);
        let fft =
            LayerPlan { shape: wino.shape, layer: "l".into(), engine: EnginePlan::Fft { n: 8 } };
        let cfg = ExecConfig::with_threads(3);
        let prepared = PreparedPlan::new(&fft, Precision::Float, &kernels).unwrap();
        assert_eq!(prepared.label(), "FFT(8)");
        let one_shot = execute_plan(&fft, &input, &kernels, &cfg).unwrap();
        for _ in 0..2 {
            let got = prepared.run(&input, cfg.threads);
            assert_eq!(got.as_slice(), one_shot.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "cannot run fixed-point")]
    fn quantized_fft_preparation_panics() {
        let (wino, _, _, kernels) = fixture(1);
        let fft =
            LayerPlan { shape: wino.shape, layer: "l".into(), engine: EnginePlan::Fft { n: 8 } };
        let _ = PreparedPlan::new(&fft, Precision::Fixed { frac: 10 }, &kernels);
    }

    #[test]
    #[should_panic(expected = "requires unit stride")]
    fn strided_fft_preparation_panics() {
        let (mut wino, _, _, kernels) = fixture(2);
        wino.shape.stride = 2;
        wino.engine = EnginePlan::Fft { n: 8 };
        let _ = PreparedPlan::new(&wino, Precision::Float, &kernels);
    }

    #[test]
    #[should_panic(expected = "requires unit stride")]
    fn strided_winograd_preparation_panics() {
        let (mut wino, _, _, kernels) = fixture(2);
        wino.shape.stride = 2;
        let _ = PreparedPlan::new(&wino, Precision::Float, &kernels);
    }

    #[test]
    #[should_panic(expected = "does not match prepared layer")]
    fn mismatched_input_panics() {
        let (wino, _, _, kernels) = fixture(1);
        let prepared = PreparedPlan::new(&wino, Precision::Float, &kernels).unwrap();
        let bad = Tensor4::zeros(Shape4 { n: 1, c: 3, h: 4, w: 4 });
        let _ = prepared.run(&bad, 1);
    }
}
