//! Per-layer quantization configuration and the fixed-point execution
//! path.
//!
//! The paper runs its pipeline "without any quantization scheme for the
//! sake of simplicity", while its headline comparison target (Qiu et
//! al.'s accelerator) runs 16-bit fixed point. This module closes that
//! gap: a [`QuantConfig`] assigns every layer of a schedule a
//! [`Precision`] — `f32`, or a `Q(32−FRAC).FRAC` fixed-point format —
//! and [`execute_plan_quantized`] runs the layer's engine with
//! `Fixed<FRAC>` arithmetic end to end (transform matrices, data,
//! kernels, transform-domain products and accumulators all quantized,
//! every op saturating like an FPGA DSP block), returning the
//! dequantized `f32` result so callers can measure the error against
//! the float oracle. The fixed-point path rides the same packed GEMM
//! micro-kernel ([`crate::gemm`]) as the float path — the kernel is
//! generic over `Scalar`, so each `Fixed<FRAC>` width monomorphizes
//! its own saturating register-tiled multiply.
//!
//! The supported fractional widths are [`SUPPORTED_FRAC`] (the
//! quantization study sweeps 6..=14; 8 approximates the dynamic range
//! of Qiu et al.'s 16-bit format once accumulation headroom is
//! accounted for). Dispatch from the runtime `frac` value to the
//! `Fixed<FRAC>` monomorphization happens in [`execute_plan_quantized`].

use crate::{execute_plan, ExecConfig, LayerPlan};
use std::fmt;
use wino_core::{TransformError, TransformSet, WinogradParams};
use wino_tensor::{Fixed, Tensor4};

/// Fractional widths [`QuantConfig`] accepts: wide enough for the
/// FRAC ∈ 6..=14 study sweep plus margin on both sides, narrow enough
/// that every width has a monomorphized kernel.
pub const SUPPORTED_FRAC: std::ops::RangeInclusive<u32> = 2..=16;

/// The arithmetic one layer executes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// IEEE single precision — the paper's datapath.
    Float,
    /// Saturating Q-format fixed point with `frac` fractional bits in a
    /// 32-bit word (`Q(32−frac).frac`).
    Fixed {
        /// Fractional bits; must lie in [`SUPPORTED_FRAC`].
        frac: u32,
    },
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::Float => write!(f, "f32"),
            Precision::Fixed { frac } => write!(f, "Q{}.{}", 32 - frac, frac),
        }
    }
}

/// Errors constructing a [`QuantConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantError {
    /// A fixed-point format outside [`SUPPORTED_FRAC`] was requested.
    UnsupportedFrac(u32),
    /// The per-layer precision list does not match the schedule.
    LayerCount {
        /// Layers in the schedule.
        expected: usize,
        /// Precisions supplied.
        actual: usize,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::UnsupportedFrac(frac) => write!(
                f,
                "FRAC = {frac} is outside the supported range {}..={}",
                SUPPORTED_FRAC.start(),
                SUPPORTED_FRAC.end()
            ),
            QuantError::LayerCount { expected, actual } => {
                write!(f, "quant config has {actual} layers, schedule has {expected}")
            }
        }
    }
}

impl std::error::Error for QuantError {}

/// Per-layer precision assignment for a schedule.
///
/// Built uniform ([`QuantConfig::uniform_fixed`], the study's sweep
/// axis) or heterogeneous ([`QuantConfig::per_layer`]), validated at
/// construction, and lowered through `Schedule::with_quant` so an
/// executor picks the right datapath per layer.
///
/// ```
/// use wino_exec::{Precision, QuantConfig};
///
/// let q = QuantConfig::uniform_fixed(3, 10)?;
/// assert_eq!(q.precision(0), Precision::Fixed { frac: 10 });
/// assert_eq!(q.to_string(), "Q22.10 x3");
/// assert!(QuantConfig::uniform_fixed(3, 40).is_err(), "unsupported width");
/// # Ok::<(), wino_exec::QuantError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantConfig {
    per_layer: Vec<Precision>,
}

impl QuantConfig {
    /// Every layer in `f32` — the identity configuration.
    pub fn float(layers: usize) -> QuantConfig {
        QuantConfig { per_layer: vec![Precision::Float; layers] }
    }

    /// Every layer in the same `Q(32−frac).frac` fixed-point format.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedFrac`] for widths outside
    /// [`SUPPORTED_FRAC`].
    pub fn uniform_fixed(layers: usize, frac: u32) -> Result<QuantConfig, QuantError> {
        QuantConfig::per_layer(vec![Precision::Fixed { frac }; layers])
    }

    /// A heterogeneous per-layer assignment (one entry per schedule
    /// layer, in execution order).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedFrac`] if any fixed-point entry
    /// is outside [`SUPPORTED_FRAC`].
    pub fn per_layer(precisions: Vec<Precision>) -> Result<QuantConfig, QuantError> {
        for p in &precisions {
            if let Precision::Fixed { frac } = p {
                if !SUPPORTED_FRAC.contains(frac) {
                    return Err(QuantError::UnsupportedFrac(*frac));
                }
            }
        }
        Ok(QuantConfig { per_layer: precisions })
    }

    /// The precision of layer `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn precision(&self, index: usize) -> Precision {
        self.per_layer[index]
    }

    /// Per-layer precisions in execution order.
    pub fn precisions(&self) -> &[Precision] {
        &self.per_layer
    }

    /// Number of layers configured.
    pub fn len(&self) -> usize {
        self.per_layer.len()
    }

    /// `true` when no layers are configured.
    pub fn is_empty(&self) -> bool {
        self.per_layer.is_empty()
    }

    /// `true` when every layer runs in `f32`.
    pub fn is_all_float(&self) -> bool {
        self.per_layer.iter().all(|p| *p == Precision::Float)
    }
}

impl fmt::Display for QuantConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.per_layer.is_empty() {
            return write!(f, "(empty)");
        }
        let first = self.per_layer[0];
        if self.per_layer.iter().all(|p| *p == first) {
            return write!(f, "{} x{}", first, self.per_layer.len());
        }
        for (i, p) in self.per_layer.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// Runs `body` with `F` bound to the `Fixed<FRAC>` type for a runtime
/// `frac` value in [`SUPPORTED_FRAC`].
macro_rules! with_fixed {
    ($frac:expr, $F:ident => $body:expr) => {
        match $frac {
            2 => {
                type $F = Fixed<2>;
                $body
            }
            3 => {
                type $F = Fixed<3>;
                $body
            }
            4 => {
                type $F = Fixed<4>;
                $body
            }
            5 => {
                type $F = Fixed<5>;
                $body
            }
            6 => {
                type $F = Fixed<6>;
                $body
            }
            7 => {
                type $F = Fixed<7>;
                $body
            }
            8 => {
                type $F = Fixed<8>;
                $body
            }
            9 => {
                type $F = Fixed<9>;
                $body
            }
            10 => {
                type $F = Fixed<10>;
                $body
            }
            11 => {
                type $F = Fixed<11>;
                $body
            }
            12 => {
                type $F = Fixed<12>;
                $body
            }
            13 => {
                type $F = Fixed<13>;
                $body
            }
            14 => {
                type $F = Fixed<14>;
                $body
            }
            15 => {
                type $F = Fixed<15>;
                $body
            }
            16 => {
                type $F = Fixed<16>;
                $body
            }
            other => panic!(
                "FRAC = {other} has no monomorphized kernel (supported: {}..={})",
                SUPPORTED_FRAC.start(),
                SUPPORTED_FRAC.end()
            ),
        }
    };
}
pub(crate) use with_fixed;

/// Executes one layer plan on a `Q(32−frac).frac` fixed-point datapath:
/// quantizes the `f32` input and kernel bank, runs the plan's engine
/// entirely in saturating `Fixed<FRAC>` arithmetic (transform matrices
/// included), and dequantizes the result back to `f32`.
///
/// This is the DSP-block model of the quantization study: the returned
/// tensor differs from [`execute_plan`] at `f32` by the layer's
/// quantization noise, which [`quant_error_bound`] bounds analytically.
///
/// # Errors
///
/// Propagates [`TransformError`] from the Winograd path.
///
/// # Panics
///
/// Panics when `frac` is outside [`SUPPORTED_FRAC`] (a validated
/// [`QuantConfig`] never holds such a width), or on the same shape
/// mismatches as [`execute_plan`].
pub fn execute_plan_quantized(
    plan: &LayerPlan,
    input: &Tensor4<f32>,
    kernels: &Tensor4<f32>,
    config: &ExecConfig,
    frac: u32,
) -> Result<Tensor4<f32>, TransformError> {
    with_fixed!(frac, F => {
        let qi = input.map(F::from_f32);
        let qk = kernels.map(F::from_f32);
        let out = execute_plan(plan, &qi, &qk, config)?;
        Ok(out.map(|q| q.to_f32()))
    })
}

/// Maximum absolute row 1-norm of an exact transform matrix.
fn row_norm(matrix: &wino_tensor::Tensor2<wino_tensor::Ratio>) -> f64 {
    (0..matrix.rows())
        .map(|i| matrix.row(i).iter().map(|x| x.abs().to_f64()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Analytic upper bound on the per-output quantization error of one
/// Winograd layer executed in `Fixed<FRAC>` arithmetic, for inputs
/// bounded by `input_mag` and weights bounded by `weight_mag`.
///
/// Derivation (first-order forward error analysis; `ε = 2^−FRAC` is the
/// quantization step, every rounding is ≤ `ε/2`, and `β`, `γ`, `α` are
/// the max row 1-norms of `Bᵀ`, `G`, `Aᵀ`):
///
/// * data path: input quantization ≤ `ε/2` is amplified by the two-pass
///   data transform (`β²`), which adds its own `≤ n·ε/2` of multiply
///   rounding per pass → `e_U ≤ ε/2 · (β² + nβ + n)`;
/// * kernel path: symmetrically `e_V ≤ ε/2 · (γ² + rγ + r)`;
/// * transform-domain multiply over `C` channels, with `|U| ≤ β²·D`
///   and `|V| ≤ γ²·W`:
///   `e_M ≤ C · (|U|·e_V + |V|·e_U + ε/2)`;
/// * inverse transform: `e_Y ≤ α²·e_M + ε/2 · (nα + n)`.
///
/// The bound assumes no intermediate saturates (callers must keep
/// `C·β²γ²·D·W` inside the format's range) and is deliberately loose —
/// the property tests assert measured error stays below it, never that
/// it is tight.
///
/// # Panics
///
/// Panics when exact transform generation fails for `params` (only
/// possible for parameter combinations `WinogradParams` already
/// rejects).
pub fn quant_error_bound(
    params: WinogradParams,
    channels: usize,
    frac: u32,
    input_mag: f64,
    weight_mag: f64,
) -> f64 {
    let set = TransformSet::generate(params).expect("valid params generate transforms");
    let beta = row_norm(set.bt());
    let gamma = row_norm(set.g());
    let alpha = row_norm(set.at());
    let n = params.input_tile() as f64;
    let r = params.r() as f64;
    let c = channels as f64;
    let half_step = 0.5 / (1u64 << frac) as f64;

    let e_u = half_step * (beta * beta + n * beta + n);
    let e_v = half_step * (gamma * gamma + r * gamma + r);
    let u_mag = beta * beta * input_mag;
    let v_mag = gamma * gamma * weight_mag;
    let e_m = c * (u_mag * e_v + v_mag * e_u + half_step);
    alpha * alpha * e_m + half_step * (n * alpha + n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EnginePlan;
    use wino_baselines::spatial_convolve;
    use wino_tensor::{ErrorStats, Shape4, SplitMix64};

    #[test]
    fn uniform_and_per_layer_validate_widths() {
        assert!(QuantConfig::uniform_fixed(4, 10).is_ok());
        assert_eq!(QuantConfig::uniform_fixed(4, 40), Err(QuantError::UnsupportedFrac(40)));
        assert_eq!(
            QuantConfig::per_layer(vec![Precision::Float, Precision::Fixed { frac: 1 }]),
            Err(QuantError::UnsupportedFrac(1))
        );
        let q = QuantConfig::float(3);
        assert!(q.is_all_float());
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        assert!(QuantConfig::float(0).is_empty());
    }

    #[test]
    fn display_compresses_uniform_configs() {
        assert_eq!(QuantConfig::uniform_fixed(13, 8).unwrap().to_string(), "Q24.8 x13");
        assert_eq!(QuantConfig::float(2).to_string(), "f32 x2");
        let het =
            QuantConfig::per_layer(vec![Precision::Float, Precision::Fixed { frac: 12 }]).unwrap();
        assert_eq!(het.to_string(), "f32, Q20.12");
        assert_eq!(QuantConfig::float(0).to_string(), "(empty)");
        let e = QuantError::LayerCount { expected: 4, actual: 2 };
        assert!(e.to_string().contains("4"));
    }

    #[test]
    fn quantized_plan_tracks_the_float_oracle() {
        let shape = wino_core::ConvShape::same_padded(10, 10, 3, 4, 3);
        let mut rng = SplitMix64::new(42);
        let input = Tensor4::from_fn(Shape4 { n: 1, c: 3, h: 10, w: 10 }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let kernels = Tensor4::from_fn(Shape4 { n: 4, c: 3, h: 3, w: 3 }, |_, _, _, _| {
            rng.uniform_f32(-0.4, 0.4)
        });
        let oracle = spatial_convolve(&input, &kernels, 1);
        let cfg = ExecConfig::with_threads(2);
        for engine in
            [EnginePlan::Winograd(WinogradParams::new(2, 3).unwrap()), EnginePlan::Spatial]
        {
            let plan = LayerPlan { layer: "l".into(), shape, engine };
            let out = execute_plan_quantized(&plan, &input, &kernels, &cfg, 12).unwrap();
            let stats = ErrorStats::between(out.as_slice(), oracle.as_slice());
            assert!(stats.within_abs(2e-2), "{engine:?}: {stats}");
        }
    }

    #[test]
    fn error_bound_grows_with_m_and_shrinks_with_frac() {
        let bound = |m: usize, frac: u32| {
            quant_error_bound(WinogradParams::new(m, 3).unwrap(), 8, frac, 1.0, 0.5)
        };
        assert!(bound(4, 10) > bound(2, 10), "larger tiles are worse conditioned");
        assert!(bound(2, 6) > bound(2, 14), "more fractional bits mean less error");
        // Halving the step roughly halves the bound.
        let ratio = bound(2, 8) / bound(2, 9);
        assert!((1.5..=2.5).contains(&ratio), "{ratio}");
    }

    #[test]
    #[should_panic(expected = "no monomorphized kernel")]
    fn unsupported_frac_dispatch_panics() {
        let shape = wino_core::ConvShape::same_padded(4, 4, 1, 1, 3);
        let plan = LayerPlan { layer: "l".into(), shape, engine: EnginePlan::Spatial };
        let input = Tensor4::zeros(Shape4 { n: 1, c: 1, h: 4, w: 4 });
        let kernels = Tensor4::zeros(Shape4 { n: 1, c: 1, h: 3, w: 3 });
        let _ = execute_plan_quantized(&plan, &input, &kernels, &ExecConfig::with_threads(1), 99);
    }
}
