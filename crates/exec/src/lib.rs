//! # wino-exec
//!
//! A batched, thread-parallel CPU execution engine for whole CNNs under
//! Winograd fast convolution — the runnable counterpart of the analytical
//! models in the `winofpga` reproduction of Ahmad & Pasha (DATE 2019).
//!
//! Every other crate in the workspace *models* the fast algorithms; this
//! one *runs* them. Each eligible layer executes as tiled `F(m×m, r×r)`
//! Winograd convolution — input tiles packed into coordinate-major
//! panels, the transform-domain multiply run as `n²` channel GEMMs
//! through the packed, register-tiled, cache-blocked micro-kernel of
//! [`gemm`], then per-tile inverse transforms — with each phase fanned
//! across `std::thread` scoped workers under a deterministic
//! (work-stealing-free) chunk scheduler, so results are bitwise
//! identical at any thread count.
//! Strided or oversized-kernel layers fall back to a thread-parallel
//! spatial engine that matches `wino_baselines::spatial_convolve_strided`
//! bit for bit.
//!
//! The bridge from design space exploration to execution is the
//! [`Schedule`]: per-layer engine assignments lowered from the
//! heterogeneous designs `wino-search` produces
//! ([`Schedule::from_layer_designs`]), from a `wino-dse` workload mapping
//! ([`Schedule::from_mapping`]), or from the paper's homogeneous choice
//! ([`Schedule::homogeneous`]). A [`NetworkExecutor`] then runs the whole
//! network and can verify itself against the spatial oracle.
//!
//! Every kernel is generic over [`wino_tensor::Scalar`], so the same
//! code path runs the paper's `f32` datapath and the saturating
//! `Fixed<FRAC>` Q-format arithmetic of the quantization study: a
//! [`QuantConfig`] lowered through [`Schedule::with_quant`] assigns each
//! layer a [`Precision`], and the executor dispatches fixed-point layers
//! through [`execute_plan_quantized`] (DSP-block-style saturation
//! everywhere, `f32` in and out so errors are measurable against the
//! float oracle, analytically bounded by [`quant_error_bound`]).
//!
//! ```
//! use wino_core::{ConvShape, Workload};
//! use wino_exec::{ExecConfig, NetworkExecutor, Schedule};
//!
//! let mut wl = Workload::new("toy", 1);
//! wl.push("conv1", "Conv1", ConvShape::same_padded(8, 8, 2, 4, 3));
//! wl.push("conv2", "Conv2", ConvShape { h: 8, w: 8, c: 4, k: 4, r: 3, stride: 2, pad: 1 });
//!
//! // conv1 runs as F(2x2, 3x3); strided conv2 falls back to spatial.
//! let schedule = Schedule::homogeneous(&wl, 2)?;
//! let exec = NetworkExecutor::new(wl, schedule, ExecConfig::with_threads(2))?;
//! let report = exec.run();
//! assert_eq!(report.layers.len(), 2);
//! // Every layer's output matches the spatial oracle within fp32 noise.
//! assert!(exec.verify(1e-4)? < 1e-4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod backend;
mod continuous;
mod executor;
mod fft;
pub mod gemm;
mod layer;
mod prepared;
mod quant;
mod schedule;

pub use backend::{ConvBackend, PreparedSpatial};
pub use continuous::{run_layers_admitting, Boundary};
pub use executor::{LayerReport, NetworkExecutor, NetworkReport, VerifyError};
pub use fft::{fft_error_bound, PreparedFft};
pub use layer::{
    execute_plan, spatial_convolve_mt, winograd_convolve, ExecConfig, PreparedWinograd,
};
pub use prepared::PreparedPlan;
pub use quant::{
    execute_plan_quantized, quant_error_bound, Precision, QuantConfig, QuantError, SUPPORTED_FRAC,
};
pub use schedule::{EnginePlan, LayerPlan, Schedule, ScheduleError};
